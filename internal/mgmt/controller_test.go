package mgmt

import (
	"strings"
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// newManagedFabric builds a K=4 fabric with an attached controller and a
// steady background load.
func newManagedFabric(t *testing.T, cfg Config) (*sim.Simulator, *fabric.Net, *Controller) {
	t.Helper()
	cl, err := fabric.ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	fab, err := fabric.New(s, fabric.DefaultConfig(10e9, sim.Microsecond, 1), cl)
	if err != nil {
		t.Fatal(err)
	}
	ctl := Attach(fab, cfg)
	// Sustained permutation load: every FA sends a 512B cell every 2us.
	for fa := 0; fa < cl.NumFA; fa++ {
		fa := fa
		var inject func()
		inject = func() {
			c := netsim.NewPacket()
			c.Size = 512
			fab.Inject(c, fa, (fa+1)%cl.NumFA)
			s.After(2*sim.Microsecond, inject)
		}
		s.At(0, inject)
	}
	return s, fab, ctl
}

func TestControllerScrapesTelemetry(t *testing.T) {
	s, fab, ctl := newManagedFabric(t, Config{ScrapeEvery: 100 * sim.Microsecond})
	s.RunUntil(sim.Millisecond)
	st := ctl.Stats()
	if st.Scrapes < 9 {
		t.Fatalf("only %d scrapes in 1ms at 100us period", st.Scrapes)
	}
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("stats did not pick up traffic: %+v", st)
	}
	if st.Links != fab.NumLinks() || st.LinksDown != 0 {
		t.Fatalf("link accounting wrong: %+v", st)
	}
	tel := ctl.Telemetry()
	if len(tel) != 2*fab.NumLinks() {
		t.Fatalf("telemetry rows %d, want %d", len(tel), 2*fab.NumLinks())
	}
	var busy int
	for _, row := range tel {
		if row.RateBps > 0 {
			busy++
		}
		if row.A == "" || row.B == "" {
			t.Fatalf("telemetry row lacks endpoints: %+v", row)
		}
	}
	if busy == 0 {
		t.Fatal("no link shows a positive rate under sustained load")
	}
	series, err := ctl.LinkSeries(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 2 {
		t.Fatalf("series too short: %d", len(series))
	}
	if _, err := ctl.LinkSeries(fab.NumLinks(), 0); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestControllerEventsOnFailureAndRecovery(t *testing.T) {
	s, fab, ctl := newManagedFabric(t, Config{ScrapeEvery: 100 * sim.Microsecond})
	// Fail an FA-FE1 link mid-run, restore it later.
	victim := -1
	for i, lk := range fab.Topo.Links {
		if lk.A.Kind == topo.KindFA {
			victim = i
			break
		}
	}
	s.At(200*sim.Microsecond, func() { fab.FailLink(victim) })
	s.At(600*sim.Microsecond, func() { fab.RestoreLink(victim) })
	s.RunUntil(sim.Millisecond)

	evs := ctl.Bus().Since(0, 0)
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, string(e.Kind))
	}
	seq := strings.Join(kinds, ",")
	if !strings.Contains(seq, string(EventLinkDown)) {
		t.Fatalf("no link-down event: %s", seq)
	}
	if !strings.Contains(seq, string(EventLinkUp)) {
		t.Fatalf("no link-up event: %s", seq)
	}
	if !strings.Contains(seq, string(EventReachUpdate)) {
		t.Fatalf("no reachability update after an FA-link failure: %s", seq)
	}
	// The withdrawal lands ReachDelay after the failure, before recovery.
	var downAt, reachAt, upAt sim.Time = -1, -1, -1
	for _, e := range evs {
		switch e.Kind {
		case EventLinkDown:
			if downAt < 0 {
				downAt = e.Time
			}
		case EventReachUpdate:
			if reachAt < 0 {
				reachAt = e.Time
			}
		case EventLinkUp:
			if upAt < 0 {
				upAt = e.Time
			}
		}
	}
	if wantReach := downAt + fab.Cfg.ReachDelay; reachAt != wantReach {
		t.Fatalf("withdrawal at %v, want failure (%v) + ReachDelay (%v)", reachAt, downAt, fab.Cfg.ReachDelay)
	}
	if !(downAt < reachAt && reachAt < upAt) {
		t.Fatalf("event order broken: down=%v reach=%v up=%v", downAt, reachAt, upAt)
	}
	st := ctl.Stats()
	if st.LinkFailures != 1 || st.LinkRecovers != 1 || st.LinksDown != 0 {
		t.Fatalf("failure counters wrong: %+v", st)
	}
}

func TestControllerReachabilityHoleAnomaly(t *testing.T) {
	s, fab, ctl := newManagedFabric(t, Config{ScrapeEvery: 100 * sim.Microsecond})
	// Isolate FA0: every uplink down -> a reachability hole the §5.9
	// self-healing cannot repair.
	for i, lk := range fab.Topo.Links {
		if lk.A.Kind == topo.KindFA && lk.A.Index == 0 {
			s.At(200*sim.Microsecond, func() { fab.FailLink(i) })
		}
	}
	s.RunUntil(sim.Millisecond)
	anoms := ctl.Anomalies()
	found := false
	for _, a := range anoms {
		if a.Kind == AnomalyReachHole {
			found = true
		}
	}
	if !found {
		t.Fatalf("isolated FA did not raise a reachability-hole anomaly: %v", anoms)
	}
	// The raise must also be on the bus.
	sawRaise := false
	for _, e := range ctl.Bus().Since(0, 0) {
		if e.Kind == EventAnomaly && strings.Contains(e.Detail, AnomalyReachHole) {
			sawRaise = true
		}
	}
	if !sawRaise {
		t.Fatal("anomaly raise not published to the bus")
	}

	// Healing the links clears the anomaly (and publishes the clear).
	for i, lk := range fab.Topo.Links {
		if lk.A.Kind == topo.KindFA && lk.A.Index == 0 {
			fab.RestoreLink(i)
		}
	}
	s.RunUntil(2 * sim.Millisecond)
	for _, a := range ctl.Anomalies() {
		if a.Kind == AnomalyReachHole {
			t.Fatalf("reachability-hole anomaly survived healing: %+v", a)
		}
	}
	sawClear := false
	for _, e := range ctl.Bus().Since(0, 0) {
		if e.Kind == EventAnomalyCleared {
			sawClear = true
		}
	}
	if !sawClear {
		t.Fatal("anomaly clear not published")
	}
}

// The spray-imbalance detector works on per-interval deltas: feed one
// FA's uplink series a synthetic skew and check the finding (a healthy
// spreader cannot be coaxed into imbalance from outside, so the detector
// is tested white-box).
func TestSprayImbalanceDetector(t *testing.T) {
	_, fab, ctl := newManagedFabric(t, Config{
		ScrapeEvery: 100 * sim.Microsecond, SprayThreshold: 0.25, MinSprayBytes: 1000,
	})
	_ = fab
	ups := ctl.faUplinks[0]
	if len(ups) < 2 {
		t.Fatal("FA0 has fewer than 2 uplinks")
	}
	// Interval deltas: uplink 0 carries 10000B, the rest 100B.
	for i, li := range ups {
		var d uint64 = 100
		if i == 0 {
			d = 10000
		}
		ctl.series[li].Push(Sample{T: 0, FwdBytes: 0, Up: true})
		ctl.series[li].Push(Sample{T: 100 * sim.Microsecond, FwdBytes: d, Up: true})
	}
	ctl.detect(100 * sim.Microsecond)
	anoms := ctl.Anomalies()
	var hit *Anomaly
	for i, a := range anoms {
		if a.Kind == AnomalySprayImbalance && a.Device == "FA0" {
			hit = &anoms[i]
		}
	}
	if hit == nil {
		t.Fatalf("skewed uplinks did not raise spray-imbalance: %v", anoms)
	}

	// Balanced deltas below threshold clear it again.
	for _, li := range ups {
		last, _ := ctl.series[li].Last()
		ctl.series[li].Push(Sample{T: last.T + 100*sim.Microsecond, FwdBytes: last.FwdBytes + 5000, Up: true})
	}
	ctl.detect(200 * sim.Microsecond)
	for _, a := range ctl.Anomalies() {
		if a.Kind == AnomalySprayImbalance {
			t.Fatalf("balanced interval did not clear the finding: %+v", a)
		}
	}
}

// A healthy balanced fabric must not raise spray-imbalance findings under
// its normal load — the detector's false-positive guard.
func TestNoSprayImbalanceOnHealthyFabric(t *testing.T) {
	s, _, ctl := newManagedFabric(t, Config{ScrapeEvery: 100 * sim.Microsecond})
	s.RunUntil(2 * sim.Millisecond)
	for _, a := range ctl.Anomalies() {
		if a.Kind == AnomalySprayImbalance {
			t.Fatalf("healthy fabric flagged: %+v", a)
		}
	}
}

func TestFabricRunAdvanceAndChaos(t *testing.T) {
	fr, err := NewFabricRun(FabricRunConfig{
		K: 4, Load: 0.2, FailEvery: 2 * sim.Millisecond, HealAfter: sim.Millisecond,
		Controller: Config{ScrapeEvery: 500 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fr.Advance(sim.Millisecond)
	}
	st := fr.Ctl.Stats()
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("fabric run carried no traffic: %+v", st)
	}
	if st.LinkFailures == 0 || st.LinkRecovers == 0 {
		t.Fatalf("chaos schedule idle after 10ms: %+v", st)
	}
	if fr.Sim.Now() != 10*sim.Millisecond {
		t.Fatalf("sim at %v after ten 1ms steps", fr.Sim.Now())
	}
}
