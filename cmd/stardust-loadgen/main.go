// Command stardust-loadgen drives a stardustd serving tier with very
// large numbers of concurrent keep-alive clients and reports latency
// percentiles and cache-hit throughput.
//
// It first primes the cluster — submits one scenario run, waits for it
// to finish, and touches the result on every node so each holds the
// bytes locally — then hammers the pure byte-serving cache-hit path:
//
//	stardust-loadgen -targets http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	    -clients 100000 -duration 30s -scenario scaling/fig2 -seed 7
//
// With -path the priming step is skipped and the given path is hit
// as-is. -json emits the report as JSON (for CI job summaries).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"syscall"
	"time"

	"stardust/internal/loadgen"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stardust-loadgen: "+format+"\n", args...)
	os.Exit(1)
}

// raiseNoFile lifts the open-file soft limit to the hard limit: 10⁵
// concurrent connections need 10⁵+ descriptors.
func raiseNoFile() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}

// prime submits the scenario to the first target, waits for the run to
// finish, then fetches the result from every target so each node holds
// the bytes locally (owner hit or peer fetch). It returns the
// cache-hit path.
func prime(targets []string, scenario string, params map[string]string, seed int64) string {
	body, _ := json.Marshal(map[string]any{"scenario": scenario, "params": params, "seed": seed})
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Post(targets[0]+"/api/v1/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		fatalf("priming submit: %v", err)
	}
	var job struct {
		ID    string `json:"id"`
		Key   string `json:"cache_key"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || resp.StatusCode >= 400 {
		fatalf("priming submit: status %d err %v (%+v)", resp.StatusCode, err, job)
	}
	path := "/api/v1/cache/" + job.Key
	// Wait for the bytes to exist on the node that ran the job, then warm
	// every node's local store through its own cache endpoint.
	for _, t := range targets {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			resp, err := hc.Get(t + path)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				fatalf("priming %s%s never became a cache hit", t, path)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	return path
}

func main() {
	targetsFlag := flag.String("targets", "http://127.0.0.1:8080", "comma-separated stardustd base URLs")
	clients := flag.Int("clients", 1000, "concurrent keep-alive clients")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 1*time.Second, "warmup slice excluded from the stats")
	think := flag.Duration("think", 0, "per-client pause between requests (0 = closed loop)")
	stagger := flag.Duration("stagger", 0, "window over which client connections are established (0 = auto)")
	path := flag.String("path", "", "request path to hit as-is (skips scenario priming)")
	scenario := flag.String("scenario", "scaling/fig2", "scenario to prime the result cache with")
	paramsFlag := flag.String("params", "", "priming scenario params, k=v comma-separated")
	seed := flag.Int64("seed", 7, "priming scenario seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	raiseNoFile()
	targets := strings.Split(*targetsFlag, ",")
	p := *path
	if p == "" {
		params := map[string]string{}
		if *paramsFlag != "" {
			for _, kv := range strings.Split(*paramsFlag, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					fatalf("bad -params entry %q", kv)
				}
				params[k] = v
			}
		}
		p = prime(targets, *scenario, params, *seed)
		fmt.Fprintf(os.Stderr, "primed %s on %d node(s)\n", p, len(targets))
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:     targets,
		Path:        p,
		Clients:     *clients,
		Duration:    *duration,
		Warmup:      *warmup,
		Think:       *think,
		DialStagger: *stagger,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Println(rep)
	}
	if rep.Errors > 0 || rep.Requests == 0 {
		os.Exit(2)
	}
}
