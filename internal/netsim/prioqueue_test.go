package netsim

import (
	"testing"

	"stardust/internal/sim"
)

func prioSetup(s *sim.Simulator) (*PriorityQueue, *Counter, *Counter) {
	q := NewPriorityQueue(s, "pq", 8e9, 10_000, func(p *Packet) int {
		if tag, ok := p.Flow.(int); ok {
			return tag
		}
		return 0
	})
	var hi, lo Counter
	return q, &hi, &lo
}

func TestPriorityQueueStrictOrder(t *testing.T) {
	s := sim.New()
	q, hi, lo := prioSetup(s)
	var order []int
	tap := func(band int, c *Counter) Handler {
		return HandlerFunc(func(p *Packet) {
			order = append(order, band)
			c.Receive(p)
		})
	}
	// Enqueue lows first, then highs; highs must still exit first (after
	// the low currently in service).
	for i := 0; i < 3; i++ {
		p := &Packet{Size: 1000, Flow: 1}
		p.SetRoute([]Handler{q, tap(1, lo)})
		p.SendOn()
	}
	for i := 0; i < 3; i++ {
		p := &Packet{Size: 1000, Flow: 0}
		p.SetRoute([]Handler{q, tap(0, hi)})
		p.SendOn()
	}
	s.Run()
	if hi.Packets != 3 || lo.Packets != 3 {
		t.Fatalf("hi=%d lo=%d", hi.Packets, lo.Packets)
	}
	// First dequeue was already committed (a low); all highs before the
	// remaining lows.
	want := []int{1, 0, 0, 0, 1, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestPriorityQueueEvictsLowForHigh(t *testing.T) {
	s := sim.New()
	q := NewPriorityQueue(s, "pq", 1e6 /* slow */, 3000, func(p *Packet) int {
		return p.Flow.(int)
	})
	var delivered Counter
	push := func(band int) {
		p := &Packet{Size: 1000, Flow: band}
		p.SetRoute([]Handler{q, &delivered})
		p.SendOn()
	}
	push(1)
	push(1)
	push(1) // queue full of lows (one in service, two queued)
	push(0) // high arrival evicts a queued low
	if q.Drops[1] != 1 {
		t.Fatalf("low drops = %d, want 1 (evicted)", q.Drops[1])
	}
	if q.Drops[0] != 0 {
		t.Fatalf("high dropped: %d", q.Drops[0])
	}
	// With only lows left and the buffer full, further lows tail-drop.
	push(1)
	if q.Drops[1] != 2 {
		t.Fatalf("low drops = %d, want 2", q.Drops[1])
	}
}

func TestPriorityQueueHighDropsWhenFullOfHighs(t *testing.T) {
	s := sim.New()
	q := NewPriorityQueue(s, "pq", 1e6, 3000, func(p *Packet) int { return 0 })
	var c Counter
	for i := 0; i < 5; i++ {
		p := &Packet{Size: 1000, Flow: 0}
		p.SetRoute([]Handler{q, &c})
		p.SendOn()
	}
	if q.Drops[0] != 2 {
		t.Fatalf("high drops = %d, want 2", q.Drops[0])
	}
}

func TestPriorityQueueForwardedCounters(t *testing.T) {
	s := sim.New()
	q, hi, lo := prioSetup(s)
	for i := 0; i < 4; i++ {
		p := &Packet{Size: 500, Flow: i % 2}
		dst := hi
		if i%2 == 1 {
			dst = lo
		}
		p.SetRoute([]Handler{q, dst})
		p.SendOn()
	}
	s.Run()
	if q.Forwarded[0] != 2 || q.Forwarded[1] != 2 {
		t.Fatalf("forwarded = %v", q.Forwarded)
	}
}

func TestQueueStringer(t *testing.T) {
	s := sim.New()
	q := NewQueue(s, "x", 1e9, 1000, 0)
	if q.String() == "" {
		t.Fatal("empty description")
	}
}

func TestHandlerFuncAndCounter(t *testing.T) {
	called := false
	h := HandlerFunc(func(p *Packet) { called = true })
	h.Receive(&Packet{Size: 1})
	if !called {
		t.Fatal("HandlerFunc did not dispatch")
	}
	var c Counter
	c.Receive(&Packet{Size: 7})
	c.Receive(&Packet{Size: 3})
	if c.Packets != 2 || c.Bytes != 10 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestPacketRouteExhaustion(t *testing.T) {
	// A packet running off its route must simply stop (no panic).
	p := &Packet{Size: 1}
	p.SetRoute(nil)
	p.SendOn()
	var c Counter
	p.SetRoute([]Handler{&c})
	p.SendOn()
	p.SendOn() // past the end
	if c.Packets != 1 {
		t.Fatalf("delivered %d", c.Packets)
	}
}

func TestQueuePanicsOnBadConfig(t *testing.T) {
	s := sim.New()
	for _, fn := range []func(){
		func() { NewQueue(s, "q", 0, 100, 0) },
		func() { NewQueue(s, "q", 1e9, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
