package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Discrete draws values from an explicit (value, weight) table. It is used
// for the empirical packet-size and flow-size mixes derived from the
// production traces referenced by the paper [74].
type Discrete struct {
	values []int
	cum    []float64 // cumulative weights, last element == total
}

// NewDiscrete builds a sampler over values with matching positive weights.
func NewDiscrete(values []int, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic("stats: NewDiscrete needs equal-length non-empty values/weights")
	}
	d := &Discrete{values: append([]int(nil), values...), cum: make([]float64, len(weights))}
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic("stats: NewDiscrete weight must be non-negative")
		}
		total += w
		d.cum[i] = total
	}
	if total <= 0 {
		panic("stats: NewDiscrete needs positive total weight")
	}
	return d
}

// Sample draws one value.
func (d *Discrete) Sample(rng *rand.Rand) int {
	x := rng.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, x)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Mean returns the expectation of the distribution.
func (d *Discrete) Mean() float64 {
	var sum, prev float64
	for i, v := range d.values {
		w := d.cum[i] - prev
		prev = d.cum[i]
		sum += float64(v) * w
	}
	return sum / d.cum[len(d.cum)-1]
}

// Values returns the support of the distribution.
func (d *Discrete) Values() []int { return append([]int(nil), d.values...) }

// EmpiricalCDF samples a continuous quantity from a piecewise-linear CDF
// given as knots (x, P(X<=x)). It is used for flow-size distributions where
// the paper's source [74] publishes CDF plots.
type EmpiricalCDF struct {
	xs []float64
	ps []float64
}

// NewEmpiricalCDF builds the sampler. ps must start >= 0, end at 1, and be
// nondecreasing; xs must be increasing.
func NewEmpiricalCDF(xs, ps []float64) *EmpiricalCDF {
	if len(xs) < 2 || len(xs) != len(ps) {
		panic("stats: NewEmpiricalCDF needs >=2 equal-length knots")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] || ps[i] < ps[i-1] {
			panic("stats: NewEmpiricalCDF knots must be increasing")
		}
	}
	if ps[len(ps)-1] != 1 {
		panic("stats: NewEmpiricalCDF must end at probability 1")
	}
	return &EmpiricalCDF{xs: append([]float64(nil), xs...), ps: append([]float64(nil), ps...)}
}

// Sample draws one value by inverse-transform sampling with linear
// interpolation between knots.
func (e *EmpiricalCDF) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.ps, u)
	if i == 0 {
		return e.xs[0]
	}
	if i >= len(e.ps) {
		return e.xs[len(e.xs)-1]
	}
	p0, p1 := e.ps[i-1], e.ps[i]
	x0, x1 := e.xs[i-1], e.xs[i]
	if p1 == p0 {
		return x1
	}
	return x0 + (x1-x0)*(u-p0)/(p1-p0)
}

// Mean estimates the distribution mean by trapezoidal integration of the
// inverse CDF.
func (e *EmpiricalCDF) Mean() float64 {
	var sum float64
	for i := 1; i < len(e.xs); i++ {
		sum += (e.ps[i] - e.ps[i-1]) * (e.xs[i] + e.xs[i-1]) / 2
	}
	return sum
}

// Exp draws from an exponential distribution with the given mean; used for
// Poisson arrival processes.
func Exp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation is plenty for the burst-size draws we do.
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Permutation returns a random permutation of n elements with no fixed
// points (a derangement), used by the permutation traffic matrix so no host
// sends to itself.
func Permutation(rng *rand.Rand, n int) []int {
	if n < 2 {
		return make([]int, n)
	}
	for {
		p := rng.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}
