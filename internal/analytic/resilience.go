package analytic

import (
	"math"

	"stardust/internal/sim"
)

// Appendix E: time to recover from a link failure via reachability-message
// propagation, and the bandwidth overhead of those messages.

// ResilienceParams mirrors Table 4 of the paper.
type ResilienceParams struct {
	CoreHz           float64    // f: device core frequency (1 GHz)
	CyclesBetween    float64    // c: cycles between messages per link (10,000)
	BitmapBits       int        // b: FAs reported per message (128)
	MessageBytes     int        // B: reachability message size (24)
	HostsPerFA       int        // h: hosts per Fabric Adapter (40)
	Hosts            int        // N: hosts in the DCN (32,000)
	Tiers            int        // n: fabric tiers (2)
	Threshold        int        // th: consecutive updates before state change (3)
	LinkSpeedBps     float64    // s: link speed (50e9)
	PropagationDelay []sim.Time // per-hop fiber delay; len must be 2n-1 (nil = zero)
}

// DefaultResilience reproduces the Appendix E example: 652 us recovery.
var DefaultResilience = ResilienceParams{
	CoreHz:        1e9,
	CyclesBetween: 10000,
	BitmapBits:    128,
	MessageBytes:  24,
	HostsPerFA:    40,
	Hosts:         32000,
	Tiers:         2,
	Threshold:     3,
	LinkSpeedBps:  50e9,
	// Two 100m hops (last tier) and one 10m hop; 5 ns/m propagation.
	PropagationDelay: []sim.Time{500 * sim.Nanosecond, 500 * sim.Nanosecond, 50 * sim.Nanosecond},
}

// MessageInterval returns t' = c/f, the gap between successive reachability
// messages on a link.
func (p ResilienceParams) MessageInterval() sim.Time {
	return sim.Time(p.CyclesBetween / p.CoreHz * float64(sim.Second))
}

// MessagesPerTable returns M = ceil(N/(h*b)), the number of messages needed
// to carry a full reachability table.
func (p ResilienceParams) MessagesPerTable() int {
	fas := float64(p.Hosts) / float64(p.HostsPerFA)
	return int(math.Ceil(fas / float64(p.BitmapBits)))
}

// Hops returns 2n-1, the worst-case propagation distance of a failure.
func (p ResilienceParams) Hops() int { return 2*p.Tiers - 1 }

// PropagationTime returns t = t' * M * (2n-1), ignoring fiber delay — the
// §5.9 illustrative value (210 us for the defaults).
func (p ResilienceParams) PropagationTime() sim.Time {
	return sim.Time(int64(p.MessageInterval()) * int64(p.MessagesPerTable()) * int64(p.Hops()))
}

// RecoveryTime returns t*th including per-hop propagation delay:
//
//	sum_{i=1..2n-1} (t' + pd_i) * M * th
//
// 652 us for the defaults (630 us with zero fiber length).
func (p ResilienceParams) RecoveryTime() sim.Time {
	var total sim.Time
	ti := p.MessageInterval()
	m := int64(p.MessagesPerTable())
	th := int64(p.Threshold)
	for i := 0; i < p.Hops(); i++ {
		var pd sim.Time
		if i < len(p.PropagationDelay) {
			pd = p.PropagationDelay[i]
		}
		total += sim.Time((int64(ti) + int64(pd)) * m * th)
	}
	return total
}

// BandwidthOverhead returns the fraction of link bandwidth consumed by
// reachability messages: B*8*f/(c*s). 0.04% for the defaults.
func (p ResilienceParams) BandwidthOverhead() float64 {
	return float64(p.MessageBytes) * 8 * p.CoreHz / (p.CyclesBetween * p.LinkSpeedBps)
}
