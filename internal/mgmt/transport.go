package mgmt

import (
	"fmt"
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/tcp"
	"stardust/internal/workload"
)

// TransportStats is the management plane's snapshot of a sharded Stardust
// transport, taken at the last barrier scrape so HTTP readers never race
// the shard goroutines.
type TransportStats struct {
	Time    sim.Time `json:"sim_ps"`
	Scrapes uint64   `json:"scrapes"`
	Hosts   int      `json:"hosts"`
	netsim.TransportCounters
}

// TransportMonitor scrapes a ShardedStardustNet's counters in the parsim
// engine's barrier context — every shard quiescent at a synchronized
// instant — exactly like the fabric controller's AttachSharded path, so a
// live sharded transport is race-free under -race and its telemetry is
// identical at every shard count.
type TransportMonitor struct {
	net   *netsim.ShardedStardustNet
	every sim.Time
	next  sim.Time

	mu    sync.RWMutex
	stats TransportStats
}

// AttachTransport registers the barrier scrape on the transport's engine.
// every <= 0 defaults to one simulated millisecond. Call it before the
// engine runs.
func AttachTransport(n *netsim.ShardedStardustNet, every sim.Time) *TransportMonitor {
	if every <= 0 {
		every = sim.Millisecond
	}
	m := &TransportMonitor{net: n, every: every, next: every}
	m.stats.Hosts = n.Hosts()
	n.Engine().OnBarrier(func(now sim.Time) {
		for now >= m.next {
			m.scrape(m.next)
			m.next += m.every
		}
	})
	return m
}

// scrape runs in barrier context. The recorded instant is the scrape
// period boundary, a function of the period alone, so the series is
// byte-comparable across shard counts.
func (m *TransportMonitor) scrape(at sim.Time) {
	var tc netsim.TransportCounters
	m.net.ReadCounters(&tc)
	m.mu.Lock()
	m.stats.Time = at
	m.stats.Scrapes++
	m.stats.TransportCounters = tc
	m.mu.Unlock()
}

// Stats returns the last barrier snapshot.
func (m *TransportMonitor) Stats() TransportStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// buildTransport lays the sharded Stardust transport over the run's
// fabric and drives it with a permutation of long-running TCP flows (one
// per host), replacing the raw cell injectors as the load source. Called
// from NewFabricRun before the engine first advances (barrier context).
func (r *FabricRun) buildTransport(hostsPer int) error {
	if r.Eng == nil {
		return fmt.Errorf("mgmt: the transport overlay needs the sharded engine (Shards >= 1)")
	}
	// The overlay rides the Clos fabric: its credit scheduler is sized by
	// the uniform per-FA uplink count, and NewFabricRun rejects other
	// topologies before building it.
	fab, ok := r.Fab.(*fabric.Net)
	if !ok {
		return fmt.Errorf("mgmt: the transport overlay runs on the clos fabric only (topology %s)", r.Fab.Graph().Spec())
	}
	cl := fab.Topo
	hosts := cl.NumFA * hostsPer
	sdc := netsim.DefaultStardust(netsim.Bps(10e9), cl.FAUplinks, fab.Cfg.LinkDelay)
	net, err := netsim.NewShardedStardustNet(fab, sdc, hosts, hostsPer)
	if err != nil {
		return err
	}
	r.Net = net
	perm := workload.Permutation(r.rng, hosts)
	tcfg := tcp.DefaultConfig()
	for src := 0; src < hosts; src++ {
		dst := perm[src]
		if dst == src {
			continue
		}
		f := tcp.NewSource(net.HostSim(src), tcfg, fmt.Sprintf("mgmt-%d-%d", src, dst), 0, nil)
		sink := tcp.NewSink(net.HostSim(dst), tcfg, f, append(net.Route(dst, src), tcp.Ack))
		f.SetRoute(append(net.Route(src, dst), sink))
		// Stagger starts so the credit schedulers do not see every flow
		// request in the same window.
		f.StartAt(sim.Time(src) * 2 * sim.Microsecond)
	}
	r.Trans = AttachTransport(net, r.Cfg.Controller.ScrapeEvery)
	return nil
}
