package engine

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Emit writes results to w in the given format ("text", "json" or
// "csv"; "" means text). The byte stream is fully determined by the
// results' order and contents — never by timing — so identical jobs and
// seeds emit identical bytes at any worker count.
func Emit(w io.Writer, format string, results []RunResult) error {
	switch format {
	case "", "text":
		return emitText(w, results)
	case "json":
		return emitJSON(w, results)
	case "csv":
		return emitCSV(w, results)
	}
	return fmt.Errorf("engine: unknown format %q (want text, json or csv)", format)
}

// emitText prints each instance's preformatted report, with a scenario
// header whenever the scenario changes (so a per-protocol sweep reads as
// one table under one heading).
func emitText(w io.Writer, results []RunResult) error {
	prev := ""
	for _, r := range results {
		if r.Name != prev {
			if prev != "" {
				fmt.Fprintln(w)
			}
			desc := ""
			if sc, err := Lookup(r.Name); err == nil {
				desc = sc.Desc
			}
			fmt.Fprintf(w, "== %s: %s ==\n", r.Name, desc)
			prev = r.Name
		}
		if r.Err != nil {
			fmt.Fprintf(w, "ERROR [%s]: %v\n", r.Params, r.Err)
			continue
		}
		if _, err := io.WriteString(w, r.Result.Text); err != nil {
			return err
		}
	}
	return nil
}

// jsonResult is the stable JSON shape of one instance.
type jsonResult struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"` // keys sorted by encoding/json
	Seed     int64             `json:"seed"`
	Metrics  []Metric          `json:"metrics,omitempty"`
	Error    string            `json:"error,omitempty"`
}

func emitJSON(w io.Writer, results []RunResult) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{
			Scenario: r.Name,
			Params:   r.Params,
			Seed:     r.Seed,
			Metrics:  r.Result.Metrics,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitCSV writes long-format rows: scenario, params, seed, metric, value,
// unit. One row per metric keeps heterogeneous scenarios in one table.
func emitCSV(w io.Writer, results []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "params", "seed", "metric", "value", "unit"}); err != nil {
		return err
	}
	for _, r := range results {
		ps := r.Params.String()
		seed := strconv.FormatInt(r.Seed, 10)
		if r.Err != nil {
			if err := cw.Write([]string{r.Name, ps, seed, "error", "0", r.Err.Error()}); err != nil {
				return err
			}
			continue
		}
		for _, m := range r.Result.Metrics {
			val := strconv.FormatFloat(m.Value, 'g', -1, 64)
			if err := cw.Write([]string{r.Name, ps, seed, m.Name, val, m.Unit}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
