package experiments

import (
	"fmt"
	"io"

	"stardust/internal/analytic"
	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// RecoveryResult compares the measured self-healing time of the
// event-driven fabric against the Appendix E closed form.
type RecoveryResult struct {
	// LocalUs: a Fabric Adapter's own uplink dies; time until the adapter
	// stops spraying on it (keepalive-loss detection, ~th*interval).
	LocalUs float64
	// PropagatedUs: every uplink of a remote adapter dies; time until a
	// Fabric Adapter on the far side of the fabric sees it unreachable —
	// the full detection + advertisement chain Appendix E budgets.
	PropagatedUs float64
	AnalyticUs   float64 // Appendix E with the simulation's parameters
	DetectUs     float64 // th * interval detection bound
	Threshold    int
	IntervalUs   float64
}

// Recovery measures the self-healing fabric (§5.9): first local
// keepalive-loss detection, then the fabric-wide propagation of a
// destination becoming unreachable, both compared against the Appendix E
// model evaluated with the simulation's parameters.
func Recovery() (*RecoveryResult, error) {
	cfg := core.DefaultConfig()
	cfg.HostPortsPerFA = 2
	cfg.ReachInterval = 10 * sim.Microsecond
	cfg.ReachThreshold = 3
	clos, err := topo.NewClos2(8, 4, 4, 8, 8, 2)
	if err != nil {
		return nil, err
	}
	net, err := core.New(cfg, clos)
	if err != nil {
		return nil, err
	}
	if !net.WarmUp(10 * sim.Millisecond) {
		return nil, fmt.Errorf("experiments: fabric did not converge")
	}
	res := &RecoveryResult{
		Threshold:  cfg.ReachThreshold,
		IntervalUs: cfg.ReachInterval.Microseconds(),
		DetectUs:   float64(cfg.ReachThreshold) * cfg.ReachInterval.Microseconds(),
	}

	// Local detection: cut FA0's uplink 0 and watch FA0 withdraw it.
	cut := net.Sim.Now()
	if err := net.FailLink(topo.NodeID{Kind: topo.KindFA, Index: 0}, 0); err != nil {
		return nil, err
	}
	step := cfg.ReachInterval / 4
	deadline := cut + 1000*cfg.ReachInterval
	for net.Sim.Now() < deadline {
		net.Run(net.Sim.Now() + step)
		withdrawn := true
		for dst := 1; dst < clos.NumFA; dst++ {
			if net.FAs[0].Table().Links(dst).Get(0) {
				withdrawn = false
				break
			}
		}
		if withdrawn {
			res.LocalUs = (net.Sim.Now() - cut).Microseconds()
			break
		}
	}
	if res.LocalUs == 0 {
		return nil, fmt.Errorf("experiments: local link never withdrawn")
	}
	net.RestoreLink(topo.NodeID{Kind: topo.KindFA, Index: 0}, 0)
	net.Run(net.Sim.Now() + 20*cfg.ReachInterval)

	// Propagated withdrawal: cut every uplink of FA7; FA0 must learn that
	// FA7 is unreachable through detection at tier 1, advertisement to the
	// spine, and advertisement back down (§5.10).
	victim := topo.NodeID{Kind: topo.KindFA, Index: 7}
	cut = net.Sim.Now()
	for port := 0; port < clos.FAUplinks; port++ {
		if err := net.FailLink(victim, port); err != nil {
			return nil, err
		}
	}
	deadline = cut + 1000*cfg.ReachInterval
	for net.Sim.Now() < deadline {
		net.Run(net.Sim.Now() + step)
		if !net.FAs[0].Table().Reachable(7) {
			res.PropagatedUs = (net.Sim.Now() - cut).Microseconds()
			break
		}
	}
	if res.PropagatedUs == 0 {
		return nil, fmt.Errorf("experiments: unreachability never propagated")
	}

	p := analytic.ResilienceParams{
		CoreHz:        1e9,
		CyclesBetween: cfg.ReachInterval.Nanoseconds(), // cycles at 1 GHz = ns
		BitmapBits:    128,
		MessageBytes:  24,
		HostsPerFA:    40,
		Hosts:         clos.NumFA * 40,
		Tiers:         2,
		Threshold:     cfg.ReachThreshold,
		LinkSpeedBps:  cfg.LinkBps,
	}
	res.AnalyticUs = p.RecoveryTime().Microseconds()
	return res, nil
}

// WriteRecovery prints the measured-vs-analytic comparison.
func WriteRecovery(w io.Writer, r *RecoveryResult) {
	fmt.Fprintf(w, "== Self-healing measurement (th=%d, interval=%.0fus) ==\n", r.Threshold, r.IntervalUs)
	fmt.Fprintf(w, "local keepalive-loss withdrawal   : %8.1f us (bound th*t' = %.0fus)\n", r.LocalUs, r.DetectUs)
	fmt.Fprintf(w, "fabric-wide unreachability learned: %8.1f us\n", r.PropagatedUs)
	fmt.Fprintf(w, "Appendix E worst-case budget      : %8.1f us\n", r.AnalyticUs)
}
