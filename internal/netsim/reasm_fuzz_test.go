package netsim

import (
	"testing"

	"stardust/internal/sim"
)

// FuzzReassembly drives the destination adapter's reassembly path with
// adversarial cell schedules: the fuzz input programs, per cell, whether
// it is dropped or how long it is delayed, producing arbitrary arrival
// orders, skews and losses across interleaved flows. The invariants:
//
//   - no duplicate deliveries, and per-VOQ ship order is preserved;
//   - every shipped packet's fate is settled exactly once — delivered or
//     discarded by the reassembly timer (delivered + timeouts == shipped);
//   - cell conservation (delivered + dropped == sent);
//   - no leaked reasmState: every VOQ's flight ring drains empty.

// scriptedFabric implements CellFabric with a byte program: each injected
// cell consumes one op. op ≡ 0 (mod 8) loses the cell; anything else
// delivers it after (op mod 32) · 7µs, so later cells routinely overtake
// earlier ones and whole packets interleave at the destination.
type scriptedFabric struct {
	s       *sim.Simulator
	net     *StardustNet
	prog    []byte
	i       int
	sent    uint64
	dropped uint64
}

func (f *scriptedFabric) Inject(c *Packet, src, dst int) {
	f.sent++
	var op byte
	if len(f.prog) > 0 {
		op = f.prog[f.i%len(f.prog)]
		f.i++
	}
	if op%8 == 0 {
		f.dropped++
		c.Release()
		return
	}
	delay := sim.Time(op%32) * 7 * sim.Microsecond
	f.s.After(delay, func() { f.net.DeliverCell(c) })
}

func (f *scriptedFabric) Drops() uint64 { return f.dropped }

func FuzzReassembly(f *testing.F) {
	f.Add([]byte{1})                                 // every cell delivered, fixed small skew
	f.Add([]byte{0})                                 // every cell lost: pure timer-discard path
	f.Add([]byte{0, 9, 31, 2, 17, 8, 5, 255, 64, 3}) // mixed drops and heavy reordering
	f.Add([]byte{9, 1, 25, 1, 9, 1})                 // loss-free, oscillating skew
	f.Fuzz(func(t *testing.T, prog []byte) {
		s := sim.New()
		cfg := DefaultStardust(10e9, 2, sim.Microsecond)
		n, err := NewStardustNet(s, cfg, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		fab := &scriptedFabric{s: s, net: n, prog: prog}
		n.UseFabric(fab)

		// Interleaved flows, including a same-FA pair, with sizes drawn
		// from the program so fragmentation counts vary.
		flows := [][2]int{{0, 2}, {1, 3}, {3, 0}, {0, 1}}
		sizeAt := func(i int) int {
			op := byte(7)
			if len(prog) > 0 {
				op = prog[(i*13)%len(prog)]
			}
			return 100 + (int(op)*937)%11000
		}
		const perFlow = 12
		type recF struct {
			last      int64
			delivered uint64
		}
		recs := make([]recF, len(flows))
		var shipped int
		for fi, fl := range flows {
			fi := fi
			route := append(n.Route(fl[0], fl[1]), HandlerFunc(func(p *Packet) {
				r := &recs[fi]
				if p.Seq <= r.last {
					t.Errorf("flow %d: seq %d delivered after %d (duplicate or reorder)", fi, p.Seq, r.last)
				}
				r.last = p.Seq
				r.delivered++
				p.Release()
			}))
			for i := 0; i < perFlow; i++ {
				i := i
				shipped++
				s.At(sim.Time(i*len(flows)+fi)*3*sim.Microsecond, func() {
					p := NewPacket()
					p.Size = sizeAt(fi*perFlow + i)
					p.Seq = int64(i + 1)
					p.SetRoute(route)
					p.SendOn()
				})
			}
		}

		// Run far past the last injection, the maximum scripted skew
		// (31·7µs) and the reassembly timeout, so every fate settles.
		s.RunUntil(20 * sim.Millisecond)

		var delivered uint64
		for _, r := range recs {
			delivered += r.delivered
		}
		if delivered+n.ReasmTimeouts != uint64(shipped) {
			t.Fatalf("packet fates: %d delivered + %d timed out != %d shipped",
				delivered, n.ReasmTimeouts, shipped)
		}
		if n.CellsDelivered+fab.dropped != n.CellsSent {
			t.Fatalf("cell leak: %d delivered + %d dropped != %d sent",
				n.CellsDelivered, fab.dropped, n.CellsSent)
		}
		if fab.sent != n.CellsSent {
			t.Fatalf("fabric saw %d cells, net sent %d", fab.sent, n.CellsSent)
		}
		// No leaked reassembly state: every VOQ's in-order stream drained.
		for key, v := range n.voqs {
			if v.flight.len() != 0 {
				t.Fatalf("voq %v leaked %d reasmStates in its flight ring", key, v.flight.len())
			}
			if v.q.len() != 0 {
				t.Fatalf("voq %v still holds %d queued packets", key, v.q.len())
			}
		}
	})
}
