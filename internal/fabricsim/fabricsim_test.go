package fabricsim

import (
	"math"
	"testing"

	"stardust/internal/queueing"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	cfg := Fig9Config(0.8)
	cfg.NumFA = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("degenerate topology accepted")
	}
	cfg = Fig9Config(0.8)
	cfg.FE1Up = 63 // not a multiple of NumFE2
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad FE1Up accepted")
	}
}

func TestLosslessUnderSubscribed(t *testing.T) {
	for _, util := range []float64{0.66, 0.8, 0.92} {
		cfg := Scaled(util, 4)
		cfg.Slots = 6000
		res := run(t, cfg)
		if res.CellsDropped != 0 {
			t.Fatalf("util=%.2f: dropped %d cells", util, res.CellsDropped)
		}
		if res.CellsDelivered == 0 {
			t.Fatalf("util=%.2f: nothing delivered", util)
		}
		// Delivered load on last-stage links must match offered.
		if math.Abs(res.EffectiveUtil-util) > 0.05*util+0.02 {
			t.Fatalf("util=%.2f: effective %v", util, res.EffectiveUtil)
		}
	}
}

// Fig 9 (right): queue-size distribution decays exponentially with a rate
// tracking the M/D/1 model.
func TestQueueDistributionMatchesMD1(t *testing.T) {
	util := 0.8
	cfg := Scaled(util, 4)
	cfg.Slots = 20000
	res := run(t, cfg)

	md1, _ := queueing.NewMD1(util)
	want := md1.QueueCCDF(40)
	got := res.QueueHist.CCDF()

	// Compare at moderate depths where both have solid mass.
	for _, n := range []int{2, 5, 10, 15} {
		g, w := got[n], want[n]
		if w <= 0 {
			continue
		}
		ratio := g / w
		if ratio < 0.25 || ratio > 4 {
			t.Fatalf("P(Q>=%d): sim %v vs M/D/1 %v (ratio %v)", n, g, w, ratio)
		}
	}
}

// Queue tails grow with utilization (the exponential rate weakens), and
// latency distributions shift right — the ordering visible in Fig 9.
func TestTailOrderingAcrossUtilizations(t *testing.T) {
	var p99s []float64
	var means []float64
	for _, util := range []float64{0.66, 0.8, 0.92} {
		cfg := Scaled(util, 4)
		cfg.Slots = 8000
		res := run(t, cfg)
		p99s = append(p99s, res.Latency.Quantile(0.99))
		means = append(means, res.MeanQueue)
	}
	for i := 1; i < len(p99s); i++ {
		if p99s[i] <= p99s[i-1] {
			t.Fatalf("p99 latency not increasing with load: %v", p99s)
		}
		if means[i] <= means[i-1] {
			t.Fatalf("mean queue not increasing with load: %v", means)
		}
	}
}

// §6.2: "even at 95% utilization, the latency is bound by 13 microseconds".
func TestLatencyBoundAt95(t *testing.T) {
	cfg := Scaled(0.95, 4)
	cfg.Slots = 12000
	res := run(t, cfg)
	p999 := res.Latency.Quantile(0.999)
	if p999 > 13 {
		t.Fatalf("p99.9 latency %v us exceeds the paper's 13us bound", p999)
	}
	// And the floor is a couple of microseconds (4 hops of serialization
	// plus 4x100m fiber).
	if min := res.Latency.Quantile(0.001); min < 1.5 || min > 5 {
		t.Fatalf("latency floor %v us implausible", min)
	}
}

// Fig 9's 1.2-load curve: with FCI the over-subscribed fabric sheds load at
// the sources and the effective utilization settles near 0.9 with no loss
// in the fabric interior.
func TestOversubscribedWithFCI(t *testing.T) {
	cfg := Scaled(1.2, 4)
	cfg.Slots = 20000
	res := run(t, cfg)
	if res.ThrottleMean >= 0.99 {
		t.Fatal("FCI never throttled at 120% load")
	}
	if res.EffectiveUtil < 0.8 || res.EffectiveUtil > 1.0 {
		t.Fatalf("effective util %v, want ~0.9 (§6.2)", res.EffectiveUtil)
	}
	dropFrac := float64(res.CellsDropped) / float64(res.CellsOffered)
	if dropFrac > 0.02 {
		t.Fatalf("fabric dropped %.3f of cells; FCI should prevent loss", dropFrac)
	}
}

func TestOversubscribedWithoutFCIDrops(t *testing.T) {
	cfg := Scaled(1.2, 4)
	cfg.FCI = false
	cfg.Slots = 8000
	res := run(t, cfg)
	if res.CellsDropped == 0 {
		t.Fatal("120% load without FCI must overflow queues")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Scaled(0.8, 8)
	cfg.Slots = 2000
	a := run(t, cfg)
	b := run(t, cfg)
	if a.CellsDelivered != b.CellsDelivered || a.MeanQueue != b.MeanQueue {
		t.Fatal("same seed must reproduce identical results")
	}
	cfg.Seed = 2
	c := run(t, cfg)
	if a.CellsDelivered == c.CellsDelivered && a.MeanQueue == c.MeanQueue {
		t.Fatal("different seed gave identical results (suspicious)")
	}
}

func TestFullFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fabric in -short mode")
	}
	cfg := Fig9Config(0.8)
	cfg.Slots = 1200
	cfg.WarmupSlots = 400
	res := run(t, cfg)
	if res.CellsDropped != 0 {
		t.Fatalf("dropped %d", res.CellsDropped)
	}
	if math.Abs(res.EffectiveUtil-0.8) > 0.05 {
		t.Fatalf("effective util %v", res.EffectiveUtil)
	}
}
