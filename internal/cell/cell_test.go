package cell

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"stardust/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Flags: FlagFCI, Src: 513, Dst: 64000, Seq: 65535, TC: 7}
	h.SetPayloadBytes(256)
	var buf [HeaderSize]byte
	h.Encode(buf[:])
	got, err := Decode(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, h)
	}
	if got.PayloadBytes() != 256 {
		t.Fatalf("payload bytes = %d", got.PayloadBytes())
	}
}

func TestHeaderDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short buffer must fail")
	}
}

func TestSetPayloadBytesBounds(t *testing.T) {
	var h Header
	for _, n := range []int{0, 257, -1} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetPayloadBytes(%d) should panic", n)
				}
			}()
			h.SetPayloadBytes(n)
		}()
	}
	h.SetPayloadBytes(1)
	if h.PayloadBytes() != 1 {
		t.Fatal("1-byte payload broken")
	}
}

// Property: header encode/decode is the identity on the valid field ranges.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(flags, tc uint8, src, dst, seq uint16, plen uint8) bool {
		h := Header{Flags: flags & 0x0f, TC: tc & 0x0f, Src: src, Dst: dst, Seq: seq, PayloadLen: plen}
		var buf [HeaderSize]byte
		h.Encode(buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func refs(sizes ...int) []PacketRef {
	out := make([]PacketRef, len(sizes))
	for i, s := range sizes {
		out[i] = PacketRef{ID: uint64(i + 1), Size: s}
	}
	return out
}

func TestFragmentSinglePacket(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	// 500B packet + 4B framing = 504 stream bytes over 248B payloads -> 3 cells.
	cells := f.Fragment(1, 2, 0, refs(500))
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	if cells[0].PayloadSize != 248 || cells[1].PayloadSize != 248 || cells[2].PayloadSize != 8 {
		t.Fatalf("payload sizes: %d %d %d", cells[0].PayloadSize, cells[1].PayloadSize, cells[2].PayloadSize)
	}
	if !cells[0].Segments[0].First || !cells[2].Segments[0].Last {
		t.Fatal("first/last flags wrong")
	}
	for i, c := range cells {
		if c.Header.Seq != uint16(i) {
			t.Fatalf("seq[%d] = %d", i, c.Header.Seq)
		}
		if c.Header.Dst != 2 || c.Header.Src != 1 {
			t.Fatal("addressing wrong")
		}
	}
}

func TestFragmentPackingSharesCells(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	// Two 100B packets: 2*(100+4) = 208 stream bytes -> 1 cell when packed.
	cells := f.Fragment(0, 1, 0, refs(100, 100))
	if len(cells) != 1 {
		t.Fatalf("packed cells = %d, want 1", len(cells))
	}
	if len(cells[0].Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(cells[0].Segments))
	}
	// Unpacked: each packet gets its own cell.
	nf := NewFragmenter(DefaultCellSize, false)
	cells = nf.Fragment(0, 1, 0, refs(100, 100))
	if len(cells) != 2 {
		t.Fatalf("non-packed cells = %d, want 2", len(cells))
	}
	// Variable cell size: each cell carries exactly its packet's bytes.
	if cells[0].PayloadSize != 104 {
		t.Fatalf("non-packed payload = %d, want 104", cells[0].PayloadSize)
	}
}

func TestFragmentOneByteOverCell(t *testing.T) {
	// §3.4: "sending packets that are just one byte bigger than a cell size
	// can lead to 50% waste of throughput" (without packing).
	nf := NewFragmenter(DefaultCellSize, false)
	pkt := refs(249) // 249+4 = 253 > 248 payload -> 2 cells each, second nearly empty
	cells := nf.Fragment(0, 1, 0, append(pkt, refs(249)...))
	if len(cells) != 4 {
		t.Fatalf("non-packed cells = %d, want 4", len(cells))
	}
	f := NewFragmenter(DefaultCellSize, true)
	packed := f.Fragment(0, 1, 0, refs(249, 249))
	if len(packed) != 3 {
		t.Fatalf("packed cells = %d, want 3", len(packed))
	}
}

func TestCellCountMatchesFragment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, packing := range []bool{true, false} {
		f := NewFragmenter(DefaultCellSize, packing)
		g := NewFragmenter(DefaultCellSize, packing)
		for trial := 0; trial < 200; trial++ {
			var batch []PacketRef
			n := rng.Intn(6) + 1
			for i := 0; i < n; i++ {
				batch = append(batch, PacketRef{ID: uint64(trial*10 + i), Size: rng.Intn(1500) + 1})
			}
			want := len(f.Fragment(0, 1, 0, batch))
			if got := g.CellCount(batch); got != want {
				t.Fatalf("packing=%v CellCount=%d, Fragment=%d for %v", packing, got, want, batch)
			}
		}
	}
}

// Property: fragmentation conserves bytes — total segment lengths equal
// stream bytes, every packet's segments tile [0, size+4) exactly, and no
// cell exceeds the maximum payload.
func TestPropertyFragmentConservation(t *testing.T) {
	f := func(sizesRaw []uint16, packing bool) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 20 {
			return true
		}
		var batch []PacketRef
		for i, s := range sizesRaw {
			batch = append(batch, PacketRef{ID: uint64(i + 1), Size: int(s%9000) + 1})
		}
		fr := NewFragmenter(DefaultCellSize, packing)
		cells := fr.Fragment(3, 4, 1, batch)
		covered := make(map[uint64]int)
		firsts := make(map[uint64]int)
		lasts := make(map[uint64]int)
		prevOffset := make(map[uint64]int)
		for _, c := range cells {
			if c.PayloadSize > fr.MaxPayload() || c.PayloadSize < 1 {
				return false
			}
			sum := 0
			for _, seg := range c.Segments {
				sum += seg.Len
				if seg.Offset != prevOffset[seg.Packet.ID] {
					return false // segments must be contiguous and in order
				}
				prevOffset[seg.Packet.ID] += seg.Len
				covered[seg.Packet.ID] += seg.Len
				if seg.First {
					firsts[seg.Packet.ID]++
				}
				if seg.Last {
					lasts[seg.Packet.ID]++
				}
			}
			if sum != c.PayloadSize {
				return false // cells carry exactly their segments' bytes
			}
		}
		for _, p := range batch {
			if covered[p.ID] != p.Size+FrameOverhead {
				return false
			}
			if firsts[p.ID] != 1 || lasts[p.ID] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func pushAll(t *testing.T, r *Reassembler, cells []*Cell, order []int) []PacketRef {
	t.Helper()
	var done []PacketRef
	for _, i := range order {
		done = append(done, r.Push(0, cells[i])...)
	}
	return done
}

func TestReassembleInOrder(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	cells := f.Fragment(0, 1, 0, refs(500, 64, 1500))
	r := NewReassembler(64, sim.Millisecond)
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	done := pushAll(t, r, cells, order)
	if len(done) != 3 {
		t.Fatalf("completed %d packets, want 3", len(done))
	}
	if done[0].Size != 500 || done[1].Size != 64 || done[2].Size != 1500 {
		t.Fatalf("wrong completion order: %v", done)
	}
	if r.Pending() != 0 {
		t.Fatal("window should be empty")
	}
}

// Property: any arrival permutation of a batch's cells reassembles the
// exact packet sequence (out-of-order tolerance, §3.2).
func TestPropertyReassembleAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		var batch []PacketRef
		for i := 0; i < n; i++ {
			batch = append(batch, PacketRef{ID: uint64(i + 1), Size: rng.Intn(3000) + 1})
		}
		f := NewFragmenter(DefaultCellSize, true)
		cells := f.Fragment(0, 1, 0, batch)
		order := rng.Perm(len(cells))
		r := NewReassembler(1<<13, sim.Millisecond)
		done := pushAll(t, r, cells, order)
		if len(done) != n {
			t.Fatalf("trial %d: completed %d of %d (order %v)", trial, len(done), n, order)
		}
		for i, p := range done {
			if p.ID != uint64(i+1) {
				t.Fatalf("trial %d: packet order broken: %v", trial, done)
			}
		}
		if r.Completed != uint64(n) || r.Discarded != 0 {
			t.Fatalf("stats wrong: %+v", r)
		}
	}
}

func TestReassembleTimeout(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	cells := f.Fragment(0, 1, 0, refs(600)) // 3 cells
	r := NewReassembler(64, 10*sim.Microsecond)
	// Lose the middle cell.
	r.Push(0, cells[0])
	r.Push(1*sim.Microsecond, cells[2])
	if r.Expire(5*sim.Microsecond) != 0 {
		t.Fatal("expired too early")
	}
	if n := r.Expire(20 * sim.Microsecond); n != 1 {
		t.Fatalf("expired %d packets, want 1", n)
	}
	if r.Discarded != 1 || r.Completed != 0 {
		t.Fatalf("stats: %+v", r)
	}
	// Stream resynchronizes afterwards.
	f2cells := f.Fragment(0, 1, 0, refs(100))
	done := r.Push(30*sim.Microsecond, f2cells[0])
	if len(done) != 1 || done[0].Size != 100 {
		t.Fatalf("resync failed: %v", done)
	}
}

func TestReassembleLateCellAfterFlush(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	cells := f.Fragment(0, 1, 0, refs(600)) // 3 cells
	r := NewReassembler(64, 10*sim.Microsecond)
	r.Push(0, cells[0])
	r.Push(0, cells[1])
	r.Expire(20 * sim.Microsecond) // nothing stalled yet: 0,1 contiguous
	if r.Pending() != 0 {
		t.Fatal("contiguous cells should have drained")
	}
	// Now the tail arrives without a flush having hurt it.
	done := r.Push(25*sim.Microsecond, cells[2])
	if len(done) != 1 {
		t.Fatalf("tail completion failed: %v", done)
	}
}

func TestReassemblerStaleCell(t *testing.T) {
	r := NewReassembler(8, sim.Millisecond)
	f := NewFragmenter(DefaultCellSize, true)
	var cells []*Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, f.Fragment(0, 1, 0, refs(100))...)
	}
	// A cell far beyond the skew window resynchronizes the stream (the
	// cells before it are written off as a loss burst).
	if got := r.Push(0, cells[15]); len(got) != 1 {
		t.Fatalf("far-future cell should resync and complete: %v", got)
	}
	if r.Resyncs != 1 {
		t.Fatalf("Resyncs = %d", r.Resyncs)
	}
	// A cell behind the cursor is stale and dropped.
	if got := r.Push(0, cells[2]); got != nil {
		t.Fatalf("behind-cursor cell completed packets: %v", got)
	}
	if r.CellsStale != 1 {
		t.Fatalf("CellsStale = %d", r.CellsStale)
	}
	// The stream continues cleanly after the resync point.
	if got := r.Push(0, cells[16]); len(got) != 1 {
		t.Fatalf("stream did not continue after resync: %v", got)
	}
}

func TestByteCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var packets [][]byte
	for i := 0; i < 10; i++ {
		p := make([]byte, rng.Intn(2000)+1)
		rng.Read(p)
		packets = append(packets, p)
	}
	stream := PackStream(packets)
	cells, err := EncodeCells(7, 9, 3, 100, stream, DefaultCellSize)
	if err != nil {
		t.Fatal(err)
	}
	gotStream, hdrs, err := DecodeCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hdrs {
		if h.Seq != uint16(100+i) || h.Src != 7 || h.Dst != 9 || h.TC != 3 {
			t.Fatalf("header %d wrong: %+v", i, h)
		}
	}
	got, err := UnpackStream(gotStream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("got %d packets, want %d", len(got), len(packets))
	}
	for i := range got {
		if !bytes.Equal(got[i], packets[i]) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
}

// Property: the descriptor-level fragmenter and the byte-level codec agree
// on cell boundaries for the same batch.
func TestPropertyDescriptorMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(6) + 1
		var batch []PacketRef
		var packets [][]byte
		for i := 0; i < n; i++ {
			size := rng.Intn(1500) + 1
			batch = append(batch, PacketRef{ID: uint64(i), Size: size})
			packets = append(packets, make([]byte, size))
		}
		f := NewFragmenter(DefaultCellSize, true)
		descCells := f.Fragment(0, 1, 0, batch)
		stream := PackStream(packets)
		byteCells, err := EncodeCells(0, 1, 0, 0, stream, DefaultCellSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(descCells) != len(byteCells) {
			t.Fatalf("cell counts differ: %d vs %d", len(descCells), len(byteCells))
		}
		for i := range descCells {
			if descCells[i].PayloadSize != len(byteCells[i])-HeaderSize {
				t.Fatalf("cell %d payload: desc %d vs bytes %d",
					i, descCells[i].PayloadSize, len(byteCells[i])-HeaderSize)
			}
		}
	}
}

func TestUnpackStreamErrors(t *testing.T) {
	if _, err := UnpackStream([]byte{0, 0}); err == nil {
		t.Fatal("truncated frame header must fail")
	}
	if _, err := UnpackStream([]byte{0, 0, 0, 10, 1, 2}); err == nil {
		t.Fatal("truncated packet must fail")
	}
	got, err := UnpackStream(nil)
	if err != nil || len(got) != 0 {
		t.Fatal("empty stream must succeed")
	}
}

func TestSeqWraparound(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	// Advance the fragmenter near the wrap point.
	for f.Seq() < 65530 {
		f.Fragment(0, 1, 0, refs(1))
	}
	r := NewReassembler(64, sim.Millisecond)
	// Align the reassembler cursor by replaying everything quickly: instead
	// construct a fresh pair and force the cursor via pushes.
	r2 := NewReassembler(64, sim.Millisecond)
	var all []*Cell
	f2 := NewFragmenter(DefaultCellSize, true)
	for i := 0; i < 70000; i++ {
		all = f2.Fragment(0, 1, 0, refs(1))
		for _, c := range all {
			r2.Push(0, c)
		}
	}
	if r2.Completed != 70000 {
		t.Fatalf("wraparound lost packets: %d", r2.Completed)
	}
	_ = r
}

// Regression: after a burst loss (e.g. a dead spine ate a window of
// cells), a live stream must resynchronize immediately instead of
// deadlocking against the skew window.
func TestResyncAfterBurstLoss(t *testing.T) {
	f := NewFragmenter(DefaultCellSize, true)
	r := NewReassembler(64, sim.Millisecond)
	deliver := func(c *Cell) []PacketRef { return r.Push(0, c) }
	var completed int
	// Normal traffic.
	for i := 0; i < 50; i++ {
		for _, c := range f.Fragment(0, 1, 0, refs(200)) {
			completed += len(deliver(c))
		}
	}
	if completed != 50 {
		t.Fatalf("setup: %d", completed)
	}
	// A large burst of cells vanishes (never pushed).
	for i := 0; i < 300; i++ {
		f.Fragment(0, 1, 0, refs(200))
	}
	// The stream continues; the reassembler must resync and keep going.
	completed = 0
	for i := 0; i < 50; i++ {
		for _, c := range f.Fragment(0, 1, 0, refs(200)) {
			completed += len(deliver(c))
		}
	}
	if completed != 50 {
		t.Fatalf("post-loss completions = %d, want 50 (resyncs=%d)", completed, r.Resyncs)
	}
	if r.Resyncs == 0 {
		t.Fatal("no resync recorded")
	}
}
