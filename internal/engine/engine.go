// Package engine is the unified scenario engine: every experiment in the
// repository (the htsim protocol comparison, the cell-fabric simulation,
// the single-tier system measurement, the analytical scaling figures, …)
// is declared once as a Scenario in a global registry and executed through
// one parallel runner.
//
// A Scenario is a named, parameterized unit of work. The runner expands
// requested scenarios into independent instances (per-protocol,
// per-utilization, per-packet-size sweep points), fans them across a
// worker pool — each instance builds its own sim.Simulator, so per-run
// determinism is preserved bit-for-bit — and emits results in request
// order as text, JSON or CSV. Wall-clock timing goes to a separate writer
// so the result stream itself is byte-identical across runs and worker
// counts.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Params carries scenario parameters as strings (the flag-friendly common
// denominator) with typed accessors. A missing key falls back to the
// scenario's registered default, then to the accessor's fallback.
type Params map[string]string

// Clone returns a deep copy.
func (p Params) Clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Merge returns a copy of p with over's entries applied on top.
func (p Params) Merge(over Params) Params {
	q := p.Clone()
	for k, v := range over {
		q[k] = v
	}
	return q
}

// With returns a copy of p with one key set.
func (p Params) With(key, val string) Params {
	q := p.Clone()
	q[key] = val
	return q
}

// Str returns the string value of key, or def when absent/empty.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok && v != "" {
		return v
	}
	return def
}

// Int returns the integer value of key, or def when absent or malformed.
func (p Params) Int(key string, def int) int {
	if v, ok := p[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// Int64 returns the int64 value of key, or def.
func (p Params) Int64(key string, def int64) int64 {
	if v, ok := p[key]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// Float returns the float value of key, or def.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// Bool returns the boolean value of key, or def.
func (p Params) Bool(key string, def bool) bool {
	if v, ok := p[key]; ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

// Ints splits a comma-separated list of integers; malformed or
// non-positive entries are skipped. Returns def when the key is absent.
func (p Params) Ints(key string, def []int) []int {
	v, ok := p[key]
	if !ok || v == "" {
		return def
	}
	var out []int
	for _, s := range strings.Split(v, ",") {
		if n, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return def
	}
	return out
}

// Floats splits a comma-separated list of floats. Returns def when the
// key is absent.
func (p Params) Floats(key string, def []float64) []float64 {
	v, ok := p[key]
	if !ok || v == "" {
		return def
	}
	var out []float64
	for _, s := range strings.Split(v, ",") {
		if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return def
	}
	return out
}

// String renders the params as "k=v k=v" with sorted keys (deterministic).
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, p[k])
	}
	return b.String()
}

// Context is handed to a Scenario's Run with the fully resolved instance
// parameters and the seed for this run.
type Context struct {
	Params Params
	Seed   int64
	// Shards is the requested intra-instance event-loop parallelism (the
	// -shards flag): scenarios built on the sharded fabric partition one
	// simulation across this many cores. Most scenarios are single-loop
	// and ignore it. Always >= 1.
	Shards int
	// Topo is the fabric topology requested with the -topo flag ("clos",
	// "sshuffle", "star", or a full spec string; empty = clos).
	// Topology-aware scenarios resolve their own "topo" parameter first
	// and fall back to this.
	Topo string
	// DistPeers/DistListen mirror Options: when DistPeers > 0, a
	// dist-capable scenario serves its simulation as a distributed
	// coordinator on DistListen instead of running shards in-process.
	DistPeers  int
	DistListen string
}

// Metric is one named scalar of a scenario outcome; the ordered metric
// list is the structured (JSON/CSV) face of a result.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Result is what a scenario instance produces: an ordered list of metrics
// for structured emission plus a preformatted human-readable report.
type Result struct {
	Metrics []Metric `json:"metrics,omitempty"`
	Text    string   `json:"-"`
}

// Add appends a metric and returns the result for chaining.
func (r *Result) Add(name string, value float64, unit string) *Result {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
	return r
}

// ParamDoc is one documented parameter of a scenario: the structured
// form of the registry metadata that -list prints and the stardustd
// API serves.
type ParamDoc struct {
	Key     string `json:"key"`
	Default string `json:"default"`
	Desc    string `json:"desc,omitempty"`
}

// Scenario declares one registered experiment.
type Scenario struct {
	// Name identifies the scenario, conventionally "family/figure"
	// (e.g. "htsim/permutation", "fabric/fig9", "scaling/fig2").
	Name string
	// Desc is a one-line description shown by -list and as the text
	// header.
	Desc string
	// Defaults documents the accepted parameters and their default
	// values; requested params are merged on top.
	Defaults Params
	// Docs describes the accepted parameters (key -> one-line doc).
	// Every key must exist in Defaults — Register enforces it, so a
	// typo cannot document a parameter that does not exist.
	Docs map[string]string
	// Variants optionally expands one requested instance into several
	// (one per protocol, per sweep point, …). The runner executes each
	// variant as an independent parallel instance. nil = run as-is.
	Variants func(p Params) []Params
	// Run executes one instance.
	Run func(c Context) (Result, error)
}

// ParamDocs returns the scenario's full parameter table sorted by key:
// one entry per Defaults key, carrying its registered description (empty
// when the parameter is undocumented).
func (s *Scenario) ParamDocs() []ParamDoc {
	keys := make([]string, 0, len(s.Defaults))
	for k := range s.Defaults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ParamDoc, 0, len(keys))
	for _, k := range keys {
		out = append(out, ParamDoc{Key: k, Default: s.Defaults[k], Desc: s.Docs[k]})
	}
	return out
}
