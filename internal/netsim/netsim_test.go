package netsim

import (
	"testing"

	"stardust/internal/sim"
)

func TestQueueServesAtRate(t *testing.T) {
	s := sim.New()
	q := NewQueue(s, "q", 8e9, 1<<20, 0) // 1 byte/ns
	var c Counter
	for i := 0; i < 10; i++ {
		p := &Packet{Size: 1000}
		p.SetRoute([]Handler{q, &c})
		p.SendOn()
	}
	s.Run()
	if c.Packets != 10 {
		t.Fatalf("delivered %d", c.Packets)
	}
	// 10 x 1000B at 1B/ns = 10us total serialization.
	if got := s.Now(); got != 10*sim.Microsecond {
		t.Fatalf("finished at %v, want 10us", got)
	}
}

func TestQueueTailDrop(t *testing.T) {
	s := sim.New()
	q := NewQueue(s, "q", 1e9, 2500, 0)
	var c Counter
	for i := 0; i < 5; i++ {
		p := &Packet{Size: 1000}
		p.SetRoute([]Handler{q, &c})
		p.SendOn()
	}
	s.Run()
	if q.Drops != 3 || c.Packets != 2 {
		t.Fatalf("drops=%d delivered=%d, want 3/2", q.Drops, c.Packets)
	}
}

func TestQueueECNMarking(t *testing.T) {
	s := sim.New()
	q := NewQueue(s, "q", 1e9, 1<<20, 1500)
	marked := 0
	sink := HandlerFunc(func(p *Packet) {
		if p.CE {
			marked++
		}
	})
	for i := 0; i < 4; i++ {
		p := &Packet{Size: 1000}
		p.SetRoute([]Handler{q, sink})
		p.SendOn()
	}
	s.Run()
	// First packet sees empty queue, second sees 1000B (below 1500), the
	// rest see >= 1500.
	if marked != 2 {
		t.Fatalf("marked %d, want 2", marked)
	}
}

func TestPipeDelay(t *testing.T) {
	s := sim.New()
	p := NewPipe(s, 5*sim.Microsecond)
	var at sim.Time
	pk := &Packet{Size: 100}
	pk.SetRoute([]Handler{p, HandlerFunc(func(*Packet) { at = s.Now() })})
	pk.SendOn()
	s.Run()
	if at != 5*sim.Microsecond {
		t.Fatalf("arrived at %v", at)
	}
}

func TestFatTreeRouteTraversal(t *testing.T) {
	s := sim.New()
	cfg := DefaultFatTree()
	cfg.K = 4
	net, err := NewFatTreeNet(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	// Cross-pod route: 6 queues + 6 pipes.
	route := append(net.Route(0, 15, 0), &c)
	if len(route) != 13 {
		t.Fatalf("route handlers = %d, want 13", len(route))
	}
	p := &Packet{Size: 9000}
	p.SetRoute(route)
	p.SendOn()
	s.Run()
	if c.Packets != 1 {
		t.Fatal("packet lost")
	}
	// Latency: 6 hops x (serialization 7.2us @10G + 1us pipe).
	want := 6 * (sim.Time(float64(9000*8)/10e9*float64(sim.Second)) + cfg.LinkDelay)
	if got := s.Now(); got != want {
		t.Fatalf("latency %v, want %v", got, want)
	}
	if net.TotalDrops() != 0 {
		t.Fatal("unexpected drops")
	}
}

func TestFatTreePathDiversityDistinctQueues(t *testing.T) {
	s := sim.New()
	cfg := DefaultFatTree()
	cfg.K = 4
	net, _ := NewFatTreeNet(s, cfg)
	// The two intra-pod choices must use different aggregation queues.
	r0 := net.Route(0, 2, 0)
	r1 := net.Route(0, 2, 1)
	if r0[2] == r1[2] {
		t.Fatal("ECMP choices share the same aggregation queue")
	}
}

func TestStardustSubstrateDelivers(t *testing.T) {
	s := sim.New()
	cfg := DefaultStardust(10e9, 2, sim.Microsecond)
	net, err := NewStardustNet(s, cfg, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	route := append(net.Route(0, 5), &c)
	for i := 0; i < 20; i++ {
		p := &Packet{Size: 9000}
		p.SetRoute(route)
		p.SendOn()
	}
	s.RunUntil(5 * sim.Millisecond)
	if c.Packets != 20 {
		t.Fatalf("delivered %d of 20", c.Packets)
	}
	if net.FabricDrops() != 0 {
		t.Fatal("fabric dropped cells")
	}
	if net.CellsSent == 0 || net.CreditsSent == 0 {
		t.Fatal("no cells or credits recorded")
	}
	// 9000B packets over 504B payload cells: 18 cells each.
	if net.CellsSent != 20*18 {
		t.Fatalf("cells sent = %d, want 360", net.CellsSent)
	}
}

func TestStardustSizingValidation(t *testing.T) {
	s := sim.New()
	cfg := DefaultStardust(10e9, 2, sim.Microsecond)
	if _, err := NewStardustNet(s, cfg, 7, 2); err == nil {
		t.Fatal("non-divisible hosts accepted")
	}
	cfg.CellBytes = 4
	if _, err := NewStardustNet(s, cfg, 8, 2); err == nil {
		t.Fatal("tiny cells accepted")
	}
}

// LanePipe must deliver after its delay on its lane: two pipes into one
// endpoint at the same instant hand over in lane order, not send order.
func TestLanePipeLaneOrder(t *testing.T) {
	s := sim.New()
	var got []int64
	sink := HandlerFunc(func(p *Packet) { got = append(got, p.Seq); p.Release() })
	hi := &LanePipe{Sched: s, Delay: sim.Microsecond, Lane: 9}
	lo := &LanePipe{Sched: s, Delay: sim.Microsecond, Lane: 2}
	send := func(lp *LanePipe, seq int64) {
		p := NewPacket()
		p.Size = 100
		p.Seq = seq
		p.SetRoute([]Handler{lp, sink})
		p.SendOn()
	}
	send(hi, 9) // scheduled first, higher lane
	send(lo, 2)
	s.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("lane order violated: %v", got)
	}
	if s.Now() != sim.Microsecond {
		t.Fatalf("delivered at %d, want %d", s.Now(), sim.Microsecond)
	}
}

// Queue.OnDrop must observe exactly the tail-dropped packets, before the
// pool reclaims them.
func TestQueueOnDrop(t *testing.T) {
	s := sim.New()
	q := NewQueue(s, "q", 1e9, 1000, 0)
	var dropped []int64
	q.OnDrop = func(p *Packet) { dropped = append(dropped, p.Seq) }
	var c Counter
	for i := 0; i < 3; i++ {
		p := NewPacket()
		p.Size = 600 // second and third overflow the 1000B queue
		p.Seq = int64(i + 1)
		p.SetRoute([]Handler{q, &c})
		p.SendOn()
	}
	s.Run()
	if q.Drops != 2 || len(dropped) != 2 || dropped[0] != 2 || dropped[1] != 3 {
		t.Fatalf("drops=%d hook saw %v, want [2 3]", q.Drops, dropped)
	}
	if c.Packets != 1 {
		t.Fatalf("delivered %d, want 1", c.Packets)
	}
}
