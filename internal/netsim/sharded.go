// Sharded Stardust transport: the StardustNet substrate partitioned
// across the event loops of a parsim.Engine, so the §6.3 end-to-end
// scenarios scale with cores the way the bare fabric already does.
//
// Ownership follows the edge: every host — its NIC queue, egress port
// queue, credit scheduler and TCP endpoints — is pinned to the parsim
// shard that owns its edge Fabric Adapter in the underlying sharded cell
// fabric (fabric.SetEgress pins the delivery endpoint to the same shard).
// A VOQ for the flow src→dst is split in two: the source half (ingress
// queue, credit balance, cell fragmentation) lives on src's shard, the
// destination half (in-order reassembly stream, §4.1 timer) on dst's.
//
// Three control flows cross shards, each on its own event lane keyed by
// the ordered host pair so the execution order of same-instant events is
// a function of the traffic alone, never of the partitioning:
//
//   - requests   (src→dst): the VOQ advertises its backlog to the
//     destination port's credit scheduler after CtrlDelay;
//   - grants     (dst→src): the scheduler's credit reaches the VOQ after
//     CtrlDelay and releases packets as cells;
//   - ship notes (src→dst): each released packet's reassembly state
//     enters the destination's in-order delivery stream one link delay
//     after shipping — always before any of its cells can finish
//     crossing the fabric (minimum two hops), so the flight ring is
//     built in ship order on the owning shard.
//
// Cells themselves cross through the sharded fabric's per-link lanes.
// The same seed therefore yields byte-identical transport state at any
// shard count — the PR-4 determinism contract extended to the transport;
// the invariant suite and the CI matrix verify it rather than assume it.
//
// The hot path allocates nothing in steady state: packets, cells and
// reassembly states are pooled, every cross-shard message reuses a
// pre-bound sim.Action and a prebuilt lane scheduler, and the per-shard
// counters are plain fields summed only in barrier context.
package netsim

import (
	"fmt"
	"sync"

	"stardust/internal/parsim"
	"stardust/internal/sched"
	"stardust/internal/sim"
)

// ShardedCellFabric is the fabric surface the sharded transport builds
// on: cell injection plus the shard-pinning contract of a fabric built
// with fabric.NewSharded. *fabric.Net implements it.
type ShardedCellFabric interface {
	CellFabric
	// Engine returns the parsim engine the fabric is partitioned over
	// (nil means the fabric is solo and cannot carry a sharded transport).
	Engine() *parsim.Engine
	// NumFA returns the number of edge Fabric Adapters the fabric fronts.
	NumFA() int
	// ShardOfFA returns the shard owning Fabric Adapter fa; Inject must be
	// called from that shard and SetEgress handlers run pinned to it.
	ShardOfFA(fa int) int
	// SetEgress installs the delivery endpoint of destination FA fa.
	SetEgress(fa int, h Handler)
	// Lanes returns the first event lane not used by the fabric; the
	// transport allocates its lanes from there up.
	Lanes() int32
	// GroupOfFA returns the kernel event-group id of FA fa's migratable
	// device group (0 is the immovable remainder).
	GroupOfFA(fa int) int32
	// LaneGroups returns the fabric's lane -> group table; the transport
	// extends it over its own lanes and re-installs it on every shard.
	LaneGroups() []int32
	// OnMigrateFA registers a hook run (in barrier context) after the
	// fabric migrates FA fa between shards; the transport re-pins the
	// hosts behind the adapter from it.
	OnMigrateFA(fn func(fa, from, to int))
}

// sdShard is the per-shard slice of a ShardedStardustNet: the shard's
// event heap plus the counters its hosts increment, so the hot path never
// writes a counter another shard's goroutine could be writing.
type sdShard struct {
	id int
	sm *sim.Simulator

	cellsSent      uint64
	cellsDelivered uint64
	creditsSent    uint64
	creditBytes    uint64
	voqDrops       uint64
	reasmTimeouts  uint64
	shippedBytes   uint64 // cell bytes handed to the fabric (headers included)
	deliveredBytes uint64 // packet bytes released in order at the destination
}

// TransportCounters is a point-in-time aggregate snapshot of a sharded
// transport — the raw material of the management plane's barrier scrape.
type TransportCounters struct {
	CellsSent      uint64 `json:"cells_sent"`
	CellsDelivered uint64 `json:"cells_delivered"`
	CreditsSent    uint64 `json:"credits_sent"`
	CreditBytes    uint64 `json:"credit_bytes"`
	VOQDrops       uint64 `json:"voq_drops"`
	ReasmTimeouts  uint64 `json:"reasm_timeouts"`
	ShippedBytes   uint64 `json:"shipped_bytes"`
	DeliveredBytes uint64 `json:"delivered_bytes"`
	NICDrops       uint64 `json:"nic_drops"`
	PortDrops      uint64 `json:"port_drops"`
	FabricDrops    uint64 `json:"fabric_drops"`
}

// ShardedStardustNet is the Stardust transport substrate partitioned
// across the shards of a parsim.Engine. It is route-compatible with
// StardustNet — Route returns the same five-hop shape, so TCP endpoints
// plug in unchanged — but every host's state is pinned to its edge FA's
// shard and all cross-edge interactions travel on per-pair event lanes.
//
// Topology mutation (Route, and therefore flow creation) is only legal in
// barrier context: before the engine first runs, from Engine.At controls,
// or from OnBarrier hooks. Aggregate accessors carry the same caveat.
type ShardedStardustNet struct {
	Cfg StardustConfig

	eng      *parsim.Engine
	fab      ShardedCellFabric
	hosts    int
	hostsPer int
	laneBase int32

	shards []*sdShard
	hostSh []int   // shard of each host
	hpipes []*Pipe // per host: intra-shard propagation hop (follows migrations)

	hostUp []*Queue // per host: NIC into the source FA
	port   []*Queue // per host: egress port
	scheds []*sched.PortScheduler
	loops  []sdCreditLoop
	egress []sdEgress // per FA

	voqs    map[voqKey]*svoq   // barrier-context mutation only
	streams []map[int]*sstream // per dst host: src -> stream (dst shard reads)

	// OnVOQDrop and OnReasmDiscard observe ingress tail-drops and §4.1
	// reassembly-timer discards just before the packet is released — the
	// hooks that let the invariant harness account every packet's fate.
	// They run on the dropping host's shard and must only touch state that
	// is safe there (or be effectively serialized, as a sync'd recorder).
	OnVOQDrop      func(*Packet)
	OnReasmDiscard func(*Packet)
}

// NewShardedStardustNet builds the sharded substrate over fab (a fabric
// built with fabric.NewSharded) for hosts end hosts, hostsPer per edge
// Fabric Adapter. The fabric must span hosts/hostsPer FAs and its
// engine's lookahead must not exceed LinkDelay or CtrlDelay (every
// cross-shard flow needs at least one window of latency).
func NewShardedStardustNet(fab ShardedCellFabric, cfg StardustConfig, hosts, hostsPer int) (*ShardedStardustNet, error) {
	if hosts < 2 || hostsPer < 1 || hosts%hostsPer != 0 {
		return nil, fmt.Errorf("netsim: bad stardust sizing %d/%d", hosts, hostsPer)
	}
	if cfg.CellBytes <= cfg.CellHeader {
		return nil, fmt.Errorf("netsim: cell too small")
	}
	eng := fab.Engine()
	if eng == nil {
		return nil, fmt.Errorf("netsim: sharded transport needs a sharded fabric (fabric.NewSharded)")
	}
	if look := eng.Lookahead(); cfg.LinkDelay < look || cfg.CtrlDelay < look {
		return nil, fmt.Errorf("netsim: link delay %d / ctrl delay %d below engine lookahead %d",
			cfg.LinkDelay, cfg.CtrlDelay, look)
	}
	if got := fab.NumFA(); got != hosts/hostsPer {
		return nil, fmt.Errorf("netsim: %d hosts / %d per FA needs %d FAs, fabric has %d",
			hosts, hostsPer, hosts/hostsPer, got)
	}
	base := fab.Lanes()
	if int64(base)+3*int64(hosts)*int64(hosts) >= int64(sim.DefaultLane) {
		return nil, fmt.Errorf("netsim: %d hosts exhaust the transport lane space", hosts)
	}
	n := &ShardedStardustNet{
		Cfg:      cfg,
		eng:      eng,
		fab:      fab,
		hosts:    hosts,
		hostsPer: hostsPer,
		laneBase: base,
		voqs:     make(map[voqKey]*svoq),
	}
	n.shards = make([]*sdShard, eng.Shards())
	for i := range n.shards {
		n.shards[i] = &sdShard{id: i, sm: eng.Shard(i).Sim()}
	}
	n.hostSh = make([]int, hosts)
	n.hpipes = make([]*Pipe, hosts)
	n.hostUp = make([]*Queue, hosts)
	n.port = make([]*Queue, hosts)
	n.scheds = make([]*sched.PortScheduler, hosts)
	n.loops = make([]sdCreditLoop, hosts)
	n.streams = make([]map[int]*sstream, hosts)
	for h := 0; h < hosts; h++ {
		shID := fab.ShardOfFA(h / hostsPer)
		if shID < 0 || shID >= eng.Shards() {
			return nil, fmt.Errorf("netsim: fabric pinned FA %d to shard %d of %d", h/hostsPer, shID, eng.Shards())
		}
		sh := n.shards[shID]
		n.hostSh[h] = shID
		n.hpipes[h] = NewPipe(sh.sm, cfg.LinkDelay)
		n.hostUp[h] = NewQueue(sh.sm, fmt.Sprintf("ssd-nic%d", h), cfg.HostRate, cfg.NICBytes, 0)
		n.port[h] = NewQueue(sh.sm, fmt.Sprintf("ssd-port%d", h), cfg.HostRate, cfg.PortBytes, 0)
		n.scheds[h] = sched.New(sched.Config{
			PortRateBps:     float64(cfg.HostRate),
			CreditBytes:     cfg.CreditBytes,
			SpeedupFraction: cfg.SpeedUp - 1,
		})
		n.streams[h] = make(map[int]*sstream)
		l := &n.loops[h]
		l.net, l.h, l.sh = n, h, sh
		l.tmr = sim.NewTimer(sh.sm)
		l.fn = l.tick
		// Tag the credit loop's root event with the host's migration group
		// so the pacing chain (which re-arms causally) follows its FA when
		// rebalancing moves it.
		prev := sh.sm.Group()
		sh.sm.SetGroup(fab.GroupOfFA(h / hostsPer))
		l.tmr.Arm(n.scheds[h].CreditInterval(), l.fn)
		sh.sm.SetGroup(prev)
	}
	numFA := hosts / hostsPer
	n.egress = make([]sdEgress, numFA)
	for fa := 0; fa < numFA; fa++ {
		n.egress[fa] = sdEgress{net: n, sh: n.shards[fab.ShardOfFA(fa)]}
		fab.SetEgress(fa, &n.egress[fa])
	}
	// Extend the fabric's lane -> group table over the transport's pair
	// lanes: each control flow belongs to the group of the half it is
	// applied at (requests and ship notes run at the destination, grants at
	// the source), so ExtractGroup lifts a migrating FA's pending transport
	// events along with its fabric ones.
	tbl := make([]int32, int(base)+3*hosts*hosts)
	copy(tbl, fab.LaneGroups())
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			tbl[n.laneOf(src, dst, 0)] = fab.GroupOfFA(dst / hostsPer)
			tbl[n.laneOf(src, dst, 1)] = fab.GroupOfFA(src / hostsPer)
			tbl[n.laneOf(src, dst, 2)] = fab.GroupOfFA(dst / hostsPer)
		}
	}
	for _, sh := range n.shards {
		sh.sm.SetLaneGroups(tbl)
		sh.sm.EnsureGroups(numFA + 1)
	}
	fab.OnMigrateFA(n.migrate)
	return n, nil
}

// migrate re-pins the hosts behind FA fa after the fabric moved it to
// shard `to` — the transport half of an adaptive rebalancing step. The
// pending events already moved with the fabric's ExtractGroup (fabric and
// transport share the group id space), so this only re-points the homes
// future events are scheduled from: queues, propagation hops, timers and
// the pair lane schedulers of every flow touching a migrated host.
func (n *ShardedStardustNet) migrate(fa, _, to int) {
	sh := n.shards[to]
	lo, hi := fa*n.hostsPer, (fa+1)*n.hostsPer
	for h := lo; h < hi; h++ {
		n.hostSh[h] = to
		n.hpipes[h].Sim = sh.sm
		n.hostUp[h].Sim = sh.sm
		n.port[h].Sim = sh.sm
		n.loops[h].sh = sh
		n.loops[h].tmr.Rebind(sh.sm)
	}
	n.egress[fa].sh = sh
	// Every pair with a migrated half needs its cross-shard schedulers
	// rebuilt. Host-order iteration keeps this loop deterministic (map
	// range order is not), though the result would be order-independent.
	for src := 0; src < n.hosts; src++ {
		srcIn := src >= lo && src < hi
		for dst := 0; dst < n.hosts; dst++ {
			if !srcIn && (dst < lo || dst >= hi) {
				continue
			}
			v, ok := n.voqs[voqKey{src: src, dst: dst}]
			if !ok {
				continue
			}
			st := v.stream
			srcSh, dstSh := n.hostSh[src], n.hostSh[dst]
			v.sh = n.shards[srcSh]
			st.sh = n.shards[dstSh]
			st.reasmTmr.Rebind(n.shards[dstSh].sm)
			v.reqTo = n.eng.Shard(srcSh).To(dstSh)
			v.shipTo = n.eng.Shard(srcSh).To(dstSh)
			st.grantTo = n.eng.Shard(dstSh).To(srcSh)
		}
	}
}

// ScheduleHost schedules a.Act(arg) at absolute time at on host h's
// shard, tagged with h's migration group. Endpoint drivers that must
// survive adaptive rebalancing start their event chains here (and
// re-resolve HostSim per event) instead of caching a Simulator.
func (n *ShardedStardustNet) ScheduleHost(h int, at sim.Time, a sim.Action, arg uint64) {
	sm := n.shards[n.hostSh[h]].sm
	prev := sm.Group()
	sm.SetGroup(n.fab.GroupOfFA(h / n.hostsPer))
	sm.AtAction(at, a, arg)
	sm.SetGroup(prev)
}

// Engine returns the parsim engine the transport runs on.
func (n *ShardedStardustNet) Engine() *parsim.Engine { return n.eng }

// Hosts returns the number of end hosts.
func (n *ShardedStardustNet) Hosts() int { return n.hosts }

// ShardOfHost returns the shard owning host h's state.
func (n *ShardedStardustNet) ShardOfHost(h int) int { return n.hostSh[h] }

// HostSim returns the event heap host h is pinned to: schedule the host's
// endpoint work (TCP sources, sinks, injectors) here.
func (n *ShardedStardustNet) HostSim(h int) *sim.Simulator { return n.shards[n.hostSh[h]].sm }

// checkBarrier panics when multi-shard transport state is mutated outside
// barrier context — the misuse that would otherwise be a silent race.
func (n *ShardedStardustNet) checkBarrier() {
	if !n.eng.InBarrier() {
		panic("netsim: sharded transport topology must be changed in barrier context (before Run, Engine.At or OnBarrier)")
	}
}

// laneOf returns the event lane of one directed control flow for the host
// pair src→dst: kind 0 = request, 1 = grant, 2 = ship notification. Lanes
// are a function of the pair alone, so they are identical at every shard
// count, and each lane has exactly one sending entity.
func (n *ShardedStardustNet) laneOf(src, dst, kind int) int32 {
	return n.laneBase + int32(3*(src*n.hosts+dst)+kind)
}

// Route returns the forward route for a flow src -> dst: NIC queue,
// propagation, VOQ capture, then (after in-order reassembly at the
// destination) the egress port queue and a final propagation hop. The
// caller appends the receiving endpoint, which must live on dst's shard
// (HostSim(dst)). Barrier context only — it may create the pair's VOQ.
func (n *ShardedStardustNet) Route(src, dst int) []Handler {
	v := n.voq(src, dst)
	return []Handler{n.hostUp[src], n.hpipes[src], v, n.port[dst], n.hpipes[dst]}
}

// voq returns (creating on first use) the split VOQ of the pair src→dst.
func (n *ShardedStardustNet) voq(src, dst int) *svoq {
	k := voqKey{src: src, dst: dst}
	if v, ok := n.voqs[k]; ok {
		return v
	}
	n.checkBarrier()
	srcSh, dstSh := n.shards[n.hostSh[src]], n.shards[n.hostSh[dst]]
	st := &sstream{net: n, key: k, sh: dstSh, reasmTmr: sim.NewTimer(dstSh.sm)}
	st.reasmFn = st.deliver
	st.grantTo = n.eng.Shard(dstSh.id).To(srcSh.id)
	st.grantLane = n.laneOf(src, dst, 1)
	v := &svoq{
		net:      n,
		key:      k,
		sh:       srcSh,
		stream:   st,
		reqTo:    n.eng.Shard(srcSh.id).To(dstSh.id),
		reqLane:  n.laneOf(src, dst, 0),
		shipTo:   n.eng.Shard(srcSh.id).To(dstSh.id),
		shipLane: n.laneOf(src, dst, 2),
	}
	st.grantAct = sdGrant{v: v}
	st.reqAct = sdRequest{st: st}
	n.voqs[k] = v
	n.streams[dst][src] = st
	return v
}

// ReadCounters snapshots the aggregate transport counters into out.
// Barrier context only (the sums cross every shard).
func (n *ShardedStardustNet) ReadCounters(out *TransportCounters) {
	*out = TransportCounters{FabricDrops: n.fab.Drops()}
	for _, sh := range n.shards {
		out.CellsSent += sh.cellsSent
		out.CellsDelivered += sh.cellsDelivered
		out.CreditsSent += sh.creditsSent
		out.CreditBytes += sh.creditBytes
		out.VOQDrops += sh.voqDrops
		out.ReasmTimeouts += sh.reasmTimeouts
		out.ShippedBytes += sh.shippedBytes
		out.DeliveredBytes += sh.deliveredBytes
	}
	for _, q := range n.hostUp {
		out.NICDrops += q.Drops
	}
	for _, q := range n.port {
		out.PortDrops += q.Drops
	}
}

// counters returns the aggregate snapshot; the convenience accessors
// below are cold-path wrappers so ReadCounters stays the single
// aggregation site.
func (n *ShardedStardustNet) counters() TransportCounters {
	var tc TransportCounters
	n.ReadCounters(&tc)
	return tc
}

// CellsSent counts cells handed to the fabric (barrier context only).
func (n *ShardedStardustNet) CellsSent() uint64 { return n.counters().CellsSent }

// CellsDelivered counts cells that reached their destination adapter
// (barrier context only).
func (n *ShardedStardustNet) CellsDelivered() uint64 { return n.counters().CellsDelivered }

// CreditsSent counts credit grants issued (barrier context only).
func (n *ShardedStardustNet) CreditsSent() uint64 { return n.counters().CreditsSent }

// VOQDrops counts ingress tail-drops (barrier context only).
func (n *ShardedStardustNet) VOQDrops() uint64 { return n.counters().VOQDrops }

// ReasmTimeouts counts §4.1 reassembly-timer discards (barrier context
// only).
func (n *ShardedStardustNet) ReasmTimeouts() uint64 { return n.counters().ReasmTimeouts }

// FabricDrops counts cells lost inside the fabric (§5.5: zero on a
// healthy fabric under credit pacing). Barrier context only.
func (n *ShardedStardustNet) FabricDrops() uint64 { return n.fab.Drops() }

// TotalDrops counts packet and cell losses across every Stardust queue,
// the VOQs and the fabric. Barrier context only.
func (n *ShardedStardustNet) TotalDrops() uint64 {
	tc := n.counters()
	return tc.FabricDrops + tc.VOQDrops + tc.NICDrops + tc.PortDrops
}

// VisitQueues visits every host-side queue (NIC then port, host order) —
// for drop hooks and aggregate statistics. Barrier context only.
func (n *ShardedStardustNet) VisitQueues(fn func(q *Queue)) {
	for _, q := range n.hostUp {
		fn(q)
	}
	for _, q := range n.port {
		fn(q)
	}
}

// InFlight counts packets the transport still holds: queued in VOQs or
// awaiting in-order delivery at a destination. Zero at drain means every
// injected packet's fate is settled. Barrier context only.
func (n *ShardedStardustNet) InFlight() int {
	total := 0
	for _, v := range n.voqs {
		total += v.q.len() + v.stream.flight.len()
	}
	return total
}

// CheckInvariants verifies the transport bookkeeping identities on every
// VOQ — most importantly credit conservation: every granted byte is
// accounted as shipped, still banked, or forfeited on an empty queue.
// Barrier context only.
func (n *ShardedStardustNet) CheckInvariants() error {
	for k, v := range n.voqs {
		if v.granted != v.shippedB+v.credit+v.forfeited {
			return fmt.Errorf("netsim: voq %d->%d credit leak: granted %d != shipped %d + banked %d + forfeited %d",
				k.src, k.dst, v.granted, v.shippedB, v.credit, v.forfeited)
		}
		if v.credit > 0 && v.q.len() > 0 {
			// release() always runs the balance down to zero or empties the
			// queue; positive credit alongside backlog at a barrier means a
			// grant was banked without being spent.
			return fmt.Errorf("netsim: voq %d->%d banked credit %d left unspent with backlog", k.src, k.dst, v.credit)
		}
		var queued int64
		for i := 0; i < v.q.len(); i++ {
			queued += int64(v.q.at(i).Size)
		}
		if queued != v.bytes {
			return fmt.Errorf("netsim: voq %d->%d byte accounting drift: ring %d vs counter %d", k.src, k.dst, queued, v.bytes)
		}
	}
	return nil
}

// sdEgress terminates fabric cells at one destination FA, pinned to the
// FA's shard by fabric.SetEgress.
type sdEgress struct {
	net *ShardedStardustNet
	sh  *sdShard
}

// Receive implements Handler: one cell arrives at the destination
// adapter; tick its packet's outstanding byte count down and hand
// completed packets to the owning in-order stream.
func (e *sdEgress) Receive(c *Packet) {
	state, ok := c.Flow.(*sreasm)
	if !ok {
		c.Release()
		return
	}
	payload := c.Size - e.net.Cfg.CellHeader
	c.Release()
	e.sh.cellsDelivered++
	state.remaining -= payload
	if state.remaining > 0 {
		return
	}
	if state.discarded {
		// The reassembly timer gave up on this packet and its stragglers
		// have now all drained; the state can be reused.
		state.stream = nil
		sreasmPool.Put(state)
		return
	}
	state.done = true
	state.stream.deliver()
}

// sreasm tracks one packet's cells at the destination adapter. It doubles
// as the ship notification's sim.Action: shipping schedules the state
// itself onto the destination shard, so entering the in-order stream
// allocates nothing.
type sreasm struct {
	orig      *Packet
	remaining int
	stream    *sstream
	shippedAt sim.Time
	done      bool
	discarded bool
}

var sreasmPool = sync.Pool{New: func() any { return new(sreasm) }}

// Act implements sim.Action: the ship notification lands on the
// destination shard — enter the stream's flight ring in ship order.
func (st *sreasm) Act(uint64) { st.stream.enter(st) }

// sstream is the destination half of a split VOQ: the §4.1 in-order
// reassembly stream, owned by dst's shard. It also carries the pre-bound
// actions the pair needs on the destination side (request application,
// grant dispatch), so the hot path never allocates.
type sstream struct {
	net *ShardedStardustNet
	key voqKey
	sh  *sdShard

	flight   ring[*sreasm]
	reasmTmr *sim.Timer
	reasmFn  func()

	grantTo   sim.LaneScheduler
	grantLane int32
	grantAct  sdGrant
	reqAct    sdRequest
}

// enter adds a freshly shipped packet's state to the flight ring. Ship
// notifications arrive on the pair's ship lane in ship order, so the ring
// is ship-ordered on the owning shard. Cells of a hairpin (same-FA)
// packet can complete before the notification lands — deliver() handles
// a done head either way.
func (s *sstream) enter(st *sreasm) {
	s.flight.push(st)
	// deliver arms the reassembly timer for the blocked head (if any), so
	// entering needs no arm of its own.
	s.deliver()
}

// deliver releases completed packets in ship order; a head-of-line packet
// whose cells were lost in the fabric is discarded once it outlives the
// reassembly timer, exactly like the solo net.
func (s *sstream) deliver() {
	n := s.net
	now := s.sh.sm.Now()
	for s.flight.len() > 0 {
		head := s.flight.peek()
		if head.done {
			s.flight.pop()
			orig := head.orig
			s.sh.deliveredBytes += uint64(orig.Size)
			head.orig = nil
			head.stream = nil
			sreasmPool.Put(head)
			orig.SendOn()
			continue
		}
		if n.Cfg.ReasmTimeout > 0 && now-head.shippedAt > n.Cfg.ReasmTimeout {
			s.flight.pop()
			head.discarded = true
			if h := n.OnReasmDiscard; h != nil {
				h(head.orig)
			}
			head.orig.Release()
			head.orig = nil
			s.sh.reasmTimeouts++
			continue
		}
		break
	}
	// Re-arm for the blocked head's deadline so the discard fires even if
	// nothing else ever completes on this stream.
	if n.Cfg.ReasmTimeout > 0 && s.flight.len() > 0 && !s.reasmTmr.Armed() {
		head := s.flight.peek()
		s.reasmTmr.Arm(head.shippedAt+n.Cfg.ReasmTimeout-now+sim.Nanosecond, s.reasmFn)
	}
}

// sdRequest applies a VOQ's backlog advertisement at the destination
// scheduler; it executes on dst's shard with the backlog in the arg.
type sdRequest struct{ st *sstream }

// Act implements sim.Action.
func (r sdRequest) Act(backlog uint64) {
	st := r.st
	st.net.scheds[st.key.dst].Request(sched.Requester{SrcFA: uint16(st.key.src), TC: 0}, int64(backlog))
}

// sdGrant delivers a credit grant to the source VOQ; it executes on src's
// shard with the granted bytes in the arg.
type sdGrant struct{ v *svoq }

// Act implements sim.Action.
func (g sdGrant) Act(bytes uint64) { g.v.grant(int64(bytes)) }

// sdCreditLoop is one destination port's credit generator, owned by the
// port's shard. Each tick applies the §4.1 egress watermarks, asks the
// scheduler for the next grant and dispatches it toward the winning
// source VOQ on the pair's grant lane.
type sdCreditLoop struct {
	net *ShardedStardustNet
	h   int
	sh  *sdShard
	tmr *sim.Timer
	fn  func()
}

func (l *sdCreditLoop) tick() {
	n := l.net
	sc := n.scheds[l.h]
	if occ := n.port[l.h].Bytes(); occ > n.Cfg.PauseBytes {
		sc.Pause()
	} else if occ < n.Cfg.ResumeBytes {
		sc.Resume()
	}
	if c, ok := sc.NextCredit(); ok {
		// The stream table only changes in barrier context, so this read
		// is stable for the whole run.
		if st := n.streams[l.h][int(c.To.SrcFA)]; st != nil {
			l.sh.creditsSent++
			l.sh.creditBytes += uint64(c.Bytes)
			st.grantTo.AtLane(l.sh.sm.Now()+n.Cfg.CtrlDelay, st.grantLane, st.grantAct, uint64(c.Bytes))
		}
	}
	l.tmr.Arm(sc.CreditInterval(), l.fn)
}

// svoq is the source half of a split VOQ: it captures packets at the
// source Fabric Adapter until credits release them as cells (§3.3). Owned
// by src's shard.
type svoq struct {
	net *ShardedStardustNet
	key voqKey
	sh  *sdShard

	q     pktRing
	bytes int64

	// Credit bookkeeping; the identity granted == shippedB + credit +
	// forfeited is the conservation invariant CheckInvariants enforces.
	credit    int64
	granted   int64
	shippedB  int64
	forfeited int64

	stream   *sstream
	reqTo    sim.LaneScheduler
	reqLane  int32
	shipTo   sim.LaneScheduler
	shipLane int32
}

// Receive implements Handler: a packet arrives from the host NIC.
func (v *svoq) Receive(p *Packet) {
	if v.bytes+int64(p.Size) > int64(v.net.Cfg.VOQBytes) {
		v.sh.voqDrops++
		if h := v.net.OnVOQDrop; h != nil {
			h(p)
		}
		p.Release()
		return // ingress tail-drop, as a ToR would (§3.1)
	}
	v.q.push(p)
	v.bytes += int64(p.Size)
	v.refreshRequest()
	// Consume any banked credit immediately.
	if v.credit > 0 {
		v.release()
	}
}

// refreshRequest advertises the current backlog to the destination port's
// scheduler after the control-plane delay, on the pair's request lane.
func (v *svoq) refreshRequest() {
	v.reqTo.AtLane(v.sh.sm.Now()+v.net.Cfg.CtrlDelay, v.reqLane, v.stream.reqAct, uint64(v.bytes))
}

func (v *svoq) grant(bytes int64) {
	v.granted += bytes
	v.credit += bytes
	v.release()
	v.refreshRequest()
}

// release dequeues whole packets against the credit balance and ships
// them as cells across the fabric.
func (v *svoq) release() {
	for v.credit > 0 && v.q.len() > 0 {
		p := v.q.pop()
		v.bytes -= int64(p.Size)
		v.credit -= int64(p.Size)
		v.shippedB += int64(p.Size)
		v.ship(p)
	}
	if v.q.len() == 0 && v.credit > 0 {
		// Unused credit on an empty VOQ is forfeited. A negative balance
		// (overdraft from shipping a packet larger than the final grant)
		// is kept as debt against future grants — the same pacing rule as
		// the solo StardustNet, so the two models stay comparable.
		v.forfeited += v.credit
		v.credit = 0
	}
}

// ship fragments one packet into cells and injects them into the sharded
// fabric from the source FA's shard; the reassembly state itself is the
// ship notification scheduled onto the destination's shard.
func (v *svoq) ship(p *Packet) {
	n := v.net
	payload := n.Cfg.CellBytes - n.Cfg.CellHeader
	st := sreasmPool.Get().(*sreasm)
	st.orig = p
	st.remaining = p.Size
	st.stream = v.stream
	st.shippedAt = v.sh.sm.Now()
	st.done = false
	st.discarded = false
	// The notification beats every cell: a cell needs at least two fabric
	// hops (or, on the hairpin path, arrives at the same instant but on
	// the earlier fabric lane, which enter/deliver tolerate).
	v.shipTo.AtLane(st.shippedAt+n.Cfg.LinkDelay, v.shipLane, st, 0)
	srcFA, dstFA := v.key.src/n.hostsPer, v.key.dst/n.hostsPer
	for sent := 0; sent < p.Size; sent += payload {
		chunk := payload
		if sent+chunk > p.Size {
			chunk = p.Size - sent
		}
		c := NewPacket()
		c.Size = chunk + n.Cfg.CellHeader
		c.Flow = st
		v.sh.cellsSent++
		v.sh.shippedBytes += uint64(c.Size)
		n.fab.Inject(c, srcFA, dstFA)
	}
}
