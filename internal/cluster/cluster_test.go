package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stardust/internal/engine"
	"stardust/internal/mgmt"
)

func init() {
	engine.Register(engine.Scenario{
		Name:     "clustertest/echo",
		Desc:     "fast deterministic scenario for cluster tests",
		Defaults: engine.Params{"x": "1"},
		Docs:     map[string]string{"x": "the echoed value"},
		Run: func(c engine.Context) (engine.Result, error) {
			var r engine.Result
			r.Add("x", float64(c.Params.Int("x", 0)), "")
			r.Add("seed", float64(c.Seed), "")
			r.Text = fmt.Sprintf("x=%s seed=%d\n", c.Params["x"], c.Seed)
			return r, nil
		},
	})
	engine.Register(engine.Scenario{
		Name:     "clustertest/slow",
		Desc:     "sleeps ms then echoes the seed",
		Defaults: engine.Params{"ms": "100"},
		Docs:     map[string]string{"ms": "wall sleep in milliseconds"},
		Run: func(c engine.Context) (engine.Result, error) {
			time.Sleep(time.Duration(c.Params.Int("ms", 100)) * time.Millisecond)
			var r engine.Result
			r.Add("seed", float64(c.Seed), "")
			r.Text = fmt.Sprintf("slept seed=%d\n", c.Seed)
			return r, nil
		},
	})
}

// lateHandler lets httptest servers start before the handlers exist:
// peer URLs are only known once every listener is up, and each node's
// ring needs the full URL list.
type lateHandler struct{ h atomic.Value }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h, _ := l.h.Load().(http.Handler)
	if h == nil {
		http.Error(w, "node not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one in-process stardustd: queue + HTTP API + cluster face.
type testNode struct {
	url  string
	q    *mgmt.RunQueue
	ts   *httptest.Server
	node *Node
}

// newTestCluster brings up n fully-wired in-process nodes sharing one
// ring.
func newTestCluster(t *testing.T, n, depth int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	lhs := make([]*lateHandler, n)
	for i := range nodes {
		lhs[i] = &lateHandler{}
		ts := httptest.NewServer(lhs[i])
		urls[i] = ts.URL
		nodes[i] = &testNode{url: ts.URL, ts: ts}
	}
	for i, tn := range nodes {
		q := mgmt.NewRunQueue(depth, 1, 1)
		s := mgmt.NewServer(q, nil)
		node, err := New(Config{Self: urls[i], Peers: urls, Attempts: 2, Backoff: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		s.SetCluster(node)
		lhs[i].h.Store(http.Handler(s))
		tn.q, tn.node = q, node
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.ts.Close()
			tn.q.Shutdown()
		}
	})
	return nodes
}

// seedFor scans seeds until the request's cache key produces a ring
// order the test wants (e.g. owned by a specific node).
func seedFor(t *testing.T, r *Ring, scenario string, params engine.Params, want func(order []string) bool) mgmt.RunRequest {
	t.Helper()
	for seed := int64(1); seed < 100000; seed++ {
		req := mgmt.RunRequest{Scenario: scenario, Params: params, Seed: seed}
		if want(r.Order(req.CacheKey())) {
			return req
		}
	}
	t.Fatal("no seed produced the wanted placement")
	return mgmt.RunRequest{}
}

// submitTo POSTs a run to one node, optionally as a named client.
func submitTo(t *testing.T, url string, req mgmt.RunRequest, client string) (*http.Response, mgmt.Job) {
	t.Helper()
	blob, _ := json.Marshal(req)
	hr, _ := http.NewRequest("POST", url+"/api/v1/runs", bytes.NewReader(blob))
	hr.Header.Set("Content-Type", "application/json")
	if client != "" {
		hr.Header.Set("X-Stardust-Client", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var job mgmt.Job
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatalf("submit answer %d is not a job: %v %s", resp.StatusCode, err, body)
		}
	}
	return resp, job
}

// fetchCache GETs a result by content address from one node until it is
// available, returning the bytes and the X-Stardust-Cache header.
func fetchCache(t *testing.T, url, key string, timeout time.Duration) ([]byte, string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/api/v1/cache/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return body, resp.Header.Get("X-Stardust-Cache")
		}
		if time.Now().After(deadline) {
			t.Fatalf("result %s never appeared at %s (last status %d)", key, url, resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Submissions of one key from two non-owner nodes are both forwarded to
// the ring owner, coalesce onto a single run there, and every node then
// serves byte-identical result bytes by content address.
func TestClusterForwardCoalesceAndServeEverywhere(t *testing.T) {
	nodes := newTestCluster(t, 3, 8)
	ring := nodes[0].node.Ring()
	owner := nodes[1]
	req := seedFor(t, ring, "clustertest/echo", engine.Params{"x": "7"}, func(order []string) bool {
		return order[0] == owner.url
	})
	key := req.CacheKey()

	// Concurrent submissions from both non-owner nodes.
	var wg sync.WaitGroup
	jobs := make([]mgmt.Job, 2)
	served := make([]string, 2)
	for i, from := range []*testNode{nodes[0], nodes[2]} {
		wg.Add(1)
		go func(i int, from *testNode) {
			defer wg.Done()
			resp, job := submitTo(t, from.url, req, "")
			jobs[i], served[i] = job, resp.Header.Get("X-Stardust-Served-By")
		}(i, from)
	}
	wg.Wait()
	for i := range jobs {
		if served[i] != owner.url {
			t.Fatalf("submission %d served by %q, want owner %s", i, served[i], owner.url)
		}
		if jobs[i].Key != key {
			t.Fatalf("submission %d got key %s, want %s", i, jobs[i].Key, key)
		}
	}
	if jobs[0].ID != jobs[1].ID {
		t.Fatalf("submissions did not coalesce: %s vs %s", jobs[0].ID, jobs[1].ID)
	}

	// The job lives on the owner only.
	if resp, err := http.Get(owner.url + "/api/v1/runs/" + jobs[0].ID); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("job missing on owner: %v %v", err, resp.Status)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if resp, err := http.Get(nodes[0].url + "/api/v1/runs/" + jobs[0].ID); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forwarded job unexpectedly present on non-owner: %v %v", err, resp.Status)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Every node serves the result; non-owners fetch it from the peer
	// once, then serve from their local store.
	want, hdr := fetchCache(t, owner.url, key, 10*time.Second)
	if hdr != "hit" {
		t.Fatalf("owner cache header %q", hdr)
	}
	for _, other := range []*testNode{nodes[0], nodes[2]} {
		got, hdr := fetchCache(t, other.url, key, 10*time.Second)
		if !bytes.Equal(got, want) {
			t.Fatalf("node %s served %d bytes, owner served %d — not byte-identical", other.url, len(got), len(want))
		}
		if hdr != "peer "+owner.url {
			t.Fatalf("first fetch header %q, want peer %s", hdr, owner.url)
		}
		got2, hdr2 := fetchCache(t, other.url, key, time.Second)
		if !bytes.Equal(got2, want) || hdr2 != "hit" {
			t.Fatalf("second fetch: header %q, %d bytes", hdr2, len(got2))
		}
	}

	// Exactly one run executed, on the owner.
	if st := owner.q.Stats(); st.Completed != 1 {
		t.Fatalf("owner completed %d runs, want 1", st.Completed)
	}
	for _, other := range []*testNode{nodes[0], nodes[2]} {
		if st := other.q.Stats(); st.Completed != 0 {
			t.Fatalf("non-owner %s ran %d jobs", other.url, st.Completed)
		}
	}
}

// Killing the owner mid-run must not strand the key: a resubmission
// from any node walks the ring and lands on the owner's successor.
func TestClusterOwnerFailover(t *testing.T) {
	nodes := newTestCluster(t, 3, 8)
	ring := nodes[0].node.Ring()
	// A key owned by node 1 whose ring successor is node 2 — so the
	// failover target is a remote peer, not the submitting node itself.
	req := seedFor(t, ring, "clustertest/slow", engine.Params{"ms": "200"}, func(order []string) bool {
		return order[0] == nodes[1].url && order[1] == nodes[2].url
	})
	key := req.CacheKey()

	resp, _ := submitTo(t, nodes[0].url, req, "")
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Stardust-Served-By") != nodes[1].url {
		t.Fatalf("initial submit: %d served by %q", resp.StatusCode, resp.Header.Get("X-Stardust-Served-By"))
	}

	// Owner dies mid-run.
	nodes[1].ts.Close()

	// Resubmission from node 0 must land on the ring successor, node 2.
	resp, job := submitTo(t, nodes[0].url, req, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after owner death: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Stardust-Served-By"); got != nodes[2].url {
		t.Fatalf("resubmission served by %q, want ring successor %s", got, nodes[2].url)
	}
	if resp, err := http.Get(nodes[2].url + "/api/v1/runs/" + job.ID); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("job missing on successor: %v %v", err, resp.Status)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// And the result is reachable from the submitting node.
	if out, _ := fetchCache(t, nodes[0].url, key, 10*time.Second); len(out) == 0 {
		t.Fatal("empty result after failover")
	}
	if st := nodes[0].node.Stats(); st.Fallbacks == 0 {
		t.Fatalf("failover did not count a fallback: %+v", st)
	}
}

// Fair-share admission holds on the clustered submission path: with a
// greedy client at its share, the next greedy submission is refused
// with Retry-After while a second client is still admitted.
func TestClusterGreedyClientCannotStarve(t *testing.T) {
	nodes := newTestCluster(t, 3, 8)
	ring := nodes[0].node.Ring()
	local := func(order []string) bool { return order[0] == nodes[0].url }
	slowReq := func() mgmt.RunRequest {
		// Each call needs a distinct key owned by node 0; vary params so
		// seedFor's scan restarts cheaply.
		return mgmt.RunRequest{Scenario: "clustertest/slow", Params: engine.Params{"ms": "500"}}
	}
	var reqs []mgmt.RunRequest
	for seed := int64(1); seed < 100000 && len(reqs) < 9; seed++ {
		r := slowReq()
		r.Seed = seed
		if local(ring.Order(r.CacheKey())) {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) < 9 {
		t.Fatal("not enough node-0-owned keys")
	}

	// Greedy takes 4 of 8 slots, then a fair client takes one.
	for i := 0; i < 4; i++ {
		if resp, _ := submitTo(t, nodes[0].url, reqs[i], "greedy"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("greedy submit %d: %d", i, resp.StatusCode)
		}
	}
	if resp, _ := submitTo(t, nodes[0].url, reqs[4], "fair"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fair submit: %d", resp.StatusCode)
	}
	// Greedy is at its share (ceil(8/2)=4): refused despite free slots.
	resp, _ := submitTo(t, nodes[0].url, reqs[5], "greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-share greedy submit: %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 without usable Retry-After: %q", resp.Header.Get("Retry-After"))
	}
	// The fair client still gets its remaining share.
	for i := 6; i < 9; i++ {
		if resp, _ := submitTo(t, nodes[0].url, reqs[i], "fair"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fair submit %d: %d, greedy starved it", i, resp.StatusCode)
		}
	}
	if st := nodes[0].q.Stats(); st.RejectedFair != 1 || st.ActiveClients != 2 {
		t.Fatalf("fairness stats: %+v", st)
	}
}

// The cluster info endpoint reports membership, shares and counters.
func TestClusterInfoEndpoint(t *testing.T) {
	nodes := newTestCluster(t, 3, 4)
	resp, err := http.Get(nodes[0].url + "/api/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Self   string             `json:"self"`
		Peers  []string           `json:"peers"`
		VNodes int                `json:"vnodes"`
		Shares map[string]float64 `json:"shares"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Self != nodes[0].url || len(info.Peers) != 3 || info.VNodes != DefaultVNodes || len(info.Shares) != 3 {
		t.Fatalf("cluster info: %+v", info)
	}
}
