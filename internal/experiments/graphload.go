package experiments

import (
	"fmt"
	"io"
	"math"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
	"stardust/internal/workload"
)

// GraphLoadResult summarizes per-uplink byte spread of one raw-cell run
// on a pluggable topology — the §5.3 spray-vs-ECMP comparison carried to
// non-Clos graphs (Space Shuffle, star-replaced). Same shape as
// LinkLoadResult, plus the cell-fate counters, because on irregular
// graphs ECMP can also lose throughput outright, not just balance.
type GraphLoadResult struct {
	Topo         string
	Mode         string // "spray" or "ecmp"
	Links        int    // measured uplink directions
	MeanBytes    float64
	MinBytes     float64
	MaxBytes     float64
	CoVPct       float64 // global coefficient of variation, percent
	SpreadPct    float64 // global (max-min)/mean, percent
	DevSpreadPct float64 // worst per-device uplink spread, percent
	Injected     uint64
	Delivered    uint64
	Drops        uint64
}

// GraphLinkLoad runs a permutation of raw-cell flows between the edge
// devices of the named topology and measures how evenly each device
// spread its bytes over its own uplinks. Mode "spray" uses per-cell
// round-robin spraying (Stardust); mode "ecmp" pins each flow to one
// hash-chosen path — the comparison the paper makes on the Clos, here
// runnable on any topo.Graph. Both modes see the identical traffic
// matrix for a given seed.
func GraphLinkLoad(topoName string, k int, mode string, load float64, warmup, dur sim.Time, seed int64) (*GraphLoadResult, error) {
	g, err := topo.ByName(topoName, k)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	fcfg := fabric.DefaultConfig(netsim.Bps(10e9), sim.Microsecond, seed)
	fab, err := fabric.NewFabric(s, fcfg, g)
	if err != nil {
		return nil, err
	}
	switch mode {
	case "spray":
		// Both fabrics spray by default.
	case "ecmp":
		gn, ok := fab.(*fabric.GraphNet)
		if !ok {
			return nil, fmt.Errorf("experiments: ecmp mode needs a graph fabric; %s runs the clos reach protocol (use linkload for the fat-tree ECMP contender)", g.Spec())
		}
		gn.SetMode(fabric.ModeECMP)
	default:
		return nil, fmt.Errorf("experiments: graphload mode %q (want spray or ecmp)", mode)
	}

	uplinks := topo.EdgeUplinkDirs(g)
	numFA := g.NumEdge()
	perm := workload.Permutation(newMatrixRNG(seed), numFA)
	const cell = 512
	for fa := 0; fa < numFA; fa++ {
		dst := perm[fa]
		if dst == fa || len(uplinks[fa]) == 0 {
			continue
		}
		perFA := load * float64(len(uplinks[fa])) * float64(fcfg.LinkRate)
		gap := sim.Time(float64(cell*8) / perFA * float64(sim.Second))
		if gap < sim.Nanosecond {
			gap = sim.Nanosecond
		}
		j := fab.NewInjector(fa, gap, cell, 0, -1)
		j.FixDst(dst)
		j.Start(sim.Time(fa) * gap / sim.Time(numFA))
	}

	s.RunUntil(warmup)
	base := append([]uint64(nil), fab.FAUplinkBytes()...)
	s.RunUntil(warmup + dur)
	end := fab.FAUplinkBytes()

	res := &GraphLoadResult{
		Topo: g.Spec(), Mode: mode, Links: len(end),
		Injected: fab.Injected(), Delivered: fab.Delivered(), Drops: fab.Drops(),
	}
	var sum, sumSq float64
	res.MinBytes = math.Inf(1)
	for i := range end {
		b := float64(end[i] - base[i])
		sum += b
		sumSq += b * b
		res.MinBytes = math.Min(res.MinBytes, b)
		res.MaxBytes = math.Max(res.MaxBytes, b)
	}
	nl := float64(len(end))
	res.MeanBytes = sum / nl
	if res.MeanBytes > 0 {
		variance := sumSq/nl - res.MeanBytes*res.MeanBytes
		res.CoVPct = 100 * math.Sqrt(math.Max(variance, 0)) / res.MeanBytes
		res.SpreadPct = 100 * (res.MaxBytes - res.MinBytes) / res.MeanBytes
	}
	// Per-device spread over each edge device's own uplink group; group
	// sizes vary on irregular graphs, so walk the flat array by group.
	off := 0
	for fa := 0; fa < numFA; fa++ {
		n := len(uplinks[fa])
		if n < 2 {
			off += n
			continue
		}
		var dMin, dMax, dSum float64
		dMin = math.Inf(1)
		for p := 0; p < n; p++ {
			b := float64(end[off+p] - base[off+p])
			dSum += b
			dMin = math.Min(dMin, b)
			dMax = math.Max(dMax, b)
		}
		off += n
		if dSum > 0 {
			if sp := 100 * (dMax - dMin) / (dSum / float64(n)); sp > res.DevSpreadPct {
				res.DevSpreadPct = sp
			}
		}
	}
	return res, nil
}

// WriteGraphLoad prints one graphload row.
func WriteGraphLoad(w io.Writer, r *GraphLoadResult) {
	fmt.Fprintf(w, "%-24s %-6s links=%3d  mean=%9.0fB  dev-spread=%7.2f%%  spread=%7.2f%%  cov=%6.2f%%  delivered=%d drops=%d\n",
		r.Topo, r.Mode, r.Links, r.MeanBytes, r.DevSpreadPct, r.SpreadPct, r.CoVPct, r.Delivered, r.Drops)
}
