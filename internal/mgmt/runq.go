package mgmt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"stardust/internal/engine"
)

// RunRequest is one scenario-run submission.
type RunRequest struct {
	Scenario string        `json:"scenario"`
	Params   engine.Params `json:"params,omitempty"`
	Seed     int64         `json:"seed,omitempty"` // 0 = 1, the engine default
}

// normalized returns the request with the default seed applied, so
// equivalent requests share one cache entry.
func (r RunRequest) normalized() RunRequest {
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// CacheKey content-addresses the request: the SHA-256 of the scenario
// name, the seed, and the sorted parameter assignments. Engine runs are
// deterministic at any worker count, so (scenario, params, seed) fully
// determines the result bytes — the key is the result's address.
func (r RunRequest) CacheKey() string {
	r = r.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", r.Scenario, r.Seed)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\x00", k, r.Params[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobState is the lifecycle of a submitted run.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ProgressEvent is one line of a job's progress stream.
type ProgressEvent struct {
	Seq     int       `json:"seq"`
	Wall    time.Time `json:"wall"`
	Msg     string    `json:"msg"`
	Elapsed float64   `json:"elapsed_s,omitempty"` // instance wall time
}

// Job is one queued/running/finished scenario run. All fields are
// guarded by the owning queue's mutex; handlers read Snapshots.
type Job struct {
	ID        string          `json:"id"`
	Req       RunRequest      `json:"request"`
	Key       string          `json:"cache_key"`
	State     JobState        `json:"state"`
	Cached    bool            `json:"cached"` // served by coalescing onto an earlier submission
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started,omitzero"`
	Finished  time.Time       `json:"finished,omitzero"`
	Error     string          `json:"error,omitempty"`
	Progress  []ProgressEvent `json:"progress,omitempty"`

	output []byte // rendered engine JSON; served byte-identical
	done   chan struct{}
}

// QueueStats is the run queue's counter snapshot.
type QueueStats struct {
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted_total"`
	CacheHits uint64 `json:"cache_hits_total"`
	Completed uint64 `json:"completed_total"`
	Failed    uint64 `json:"failed_total"`
	Rejected  uint64 `json:"rejected_total"`
}

// RunQueue executes scenario runs on a bounded queue over the engine
// worker pool, deduplicating through a content-addressed result cache:
// a submission whose (scenario, params, seed) digest matches a live or
// completed job is coalesced onto that job instead of re-simulating, so
// repeated requests — concurrent or later — serve the identical bytes.
type RunQueue struct {
	engineWorkers int
	maxRetained   int // finished jobs kept (results + progress); older ones evicted

	mu      sync.Mutex
	queue   chan *Job
	jobs    map[string]*Job
	order   []string        // submission order, for listing
	byKey   map[string]*Job // content-addressed cache (queued, running or done)
	nextID  int
	running int
	stats   QueueStats

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewRunQueue starts workers goroutines serving a queue of the given
// depth; each job runs through engine.Run with engineWorkers parallel
// instances. Close it with Shutdown.
func NewRunQueue(depth, workers, engineWorkers int) *RunQueue {
	if depth < 1 {
		depth = 16
	}
	if workers < 1 {
		workers = 1
	}
	// engineWorkers <= 0 passes through: engine.Run reads it as "all
	// CPUs" (GOMAXPROCS), the daemon's documented -run-workers default.
	q := &RunQueue{
		engineWorkers: engineWorkers,
		maxRetained:   256,
		queue:         make(chan *Job, depth),
		jobs:          make(map[string]*Job),
		byKey:         make(map[string]*Job),
		stop:          make(chan struct{}),
	}
	q.stats.Capacity = depth
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Shutdown stops accepting jobs and waits for workers to drain.
func (q *RunQueue) Shutdown() {
	close(q.stop)
	q.wg.Wait()
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity.
var ErrQueueFull = fmt.Errorf("mgmt: run queue full")

// Submit validates and enqueues a run request. When the request's cache
// key matches a queued, running or completed job, that job is returned
// with cached=true and nothing is enqueued — the caller observes the
// identical result bytes. A full queue returns ErrQueueFull.
func (q *RunQueue) Submit(req RunRequest) (Job, bool, error) {
	req = req.normalized()
	if _, err := engine.Lookup(req.Scenario); err != nil {
		return Job{}, false, err
	}
	key := req.CacheKey()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats.Submitted++
	if j, ok := q.byKey[key]; ok && j.State != JobFailed {
		q.stats.CacheHits++
		snap := q.snapshotLocked(j)
		snap.Cached = true
		return snap, true, nil
	}
	q.nextID++
	j := &Job{
		ID:        fmt.Sprintf("run-%06d", q.nextID),
		Req:       req,
		Key:       key,
		State:     JobQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case q.queue <- j:
	default:
		q.stats.Rejected++
		q.nextID--
		return Job{}, false, ErrQueueFull
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.byKey[key] = j
	q.evictLocked()
	q.stats.Depth = len(q.queue)
	return q.snapshotLocked(j), false, nil
}

// evictLocked bounds total retention: when more than maxRetained jobs
// are tracked, the oldest *finished* jobs (and their cached result
// bytes) are dropped. Queued and running jobs are never evicted, so the
// map can only exceed the cap by the bounded queue depth plus the
// worker count.
func (q *RunQueue) evictLocked() {
	excess := len(q.order) - q.maxRetained
	if excess <= 0 {
		return
	}
	kept := q.order[:0]
	for _, id := range q.order {
		j := q.jobs[id]
		if excess > 0 && (j.State == JobDone || j.State == JobFailed) {
			delete(q.jobs, id)
			if q.byKey[j.Key] == j {
				delete(q.byKey, j.Key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

func (q *RunQueue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stop:
			return
		case j := <-q.queue:
			q.run(j)
		}
	}
}

func (q *RunQueue) run(j *Job) {
	q.mu.Lock()
	j.State = JobRunning
	j.Started = time.Now()
	q.running++
	q.stats.Depth = len(q.queue)
	q.addProgressLocked(j, fmt.Sprintf("running %s (%s) seed=%d", j.Req.Scenario, j.Req.Params, j.Req.Seed), 0)
	q.mu.Unlock()

	var out bytes.Buffer
	_, err := engine.Run(engine.Options{
		Workers: q.engineWorkers,
		Seed:    j.Req.Seed,
		Format:  "json",
		Out:     &out,
		Progress: func(r engine.RunResult) {
			q.mu.Lock()
			msg := fmt.Sprintf("instance %s (%s) finished", r.Name, r.Params)
			if r.Err != nil {
				msg = fmt.Sprintf("instance %s (%s) failed: %v", r.Name, r.Params, r.Err)
			}
			q.addProgressLocked(j, msg, r.Elapsed.Seconds())
			q.mu.Unlock()
		},
	}, []engine.Job{{Scenario: j.Req.Scenario, Params: j.Req.Params, Seed: j.Req.Seed}})

	q.mu.Lock()
	j.Finished = time.Now()
	q.running--
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		q.stats.Failed++
		// A failed job must not pin the cache slot: let a retry re-run.
		if q.byKey[j.Key] == j {
			delete(q.byKey, j.Key)
		}
		q.addProgressLocked(j, "failed: "+j.Error, 0)
	} else {
		j.State = JobDone
		j.output = out.Bytes()
		q.stats.Completed++
		q.addProgressLocked(j, fmt.Sprintf("done (%d result bytes)", len(j.output)), 0)
	}
	q.mu.Unlock()
	close(j.done)
}

func (q *RunQueue) addProgressLocked(j *Job, msg string, elapsed float64) {
	j.Progress = append(j.Progress, ProgressEvent{
		Seq: len(j.Progress) + 1, Wall: time.Now(), Msg: msg, Elapsed: elapsed,
	})
}

// snapshotLocked copies a job for handler consumption.
func (q *RunQueue) snapshotLocked(j *Job) Job {
	snap := *j
	snap.Progress = append([]ProgressEvent(nil), j.Progress...)
	snap.output = nil
	snap.done = nil
	return snap
}

// Get returns a snapshot of job id.
func (q *RunQueue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return q.snapshotLocked(j), true
}

// Result returns the stored result bytes of a completed job.
func (q *RunQueue) Result(id string) ([]byte, JobState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.output, j.State, true
}

// Wait blocks until job id leaves the queue/running states or the
// timeout elapses; it returns the final snapshot.
func (q *RunQueue) Wait(id string, timeout time.Duration) (Job, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	select {
	case <-j.done:
	case <-time.After(timeout):
	}
	return q.Get(id)
}

// List returns snapshots of the newest max jobs (all when max <= 0),
// newest first.
func (q *RunQueue) List(max int) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.order)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Job, 0, n)
	for i := len(q.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, q.snapshotLocked(q.jobs[q.order[i]]))
	}
	return out
}

// Stats returns the queue counters.
func (q *RunQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = len(q.queue)
	s.Running = q.running
	return s
}
