// Command stardust-system regenerates the §6.1.2 single-tier system
// measurement: line rate and latency versus packet size on an
// Arista-7500E-style platform of Fabric Adapters and Fabric Elements.
package main

import (
	"flag"
	"fmt"
	"os"

	"stardust/internal/experiments"
	"stardust/internal/sim"
)

func main() {
	numFA := flag.Int("fa", 6, "number of Fabric Adapters")
	ports := flag.Int("ports", 16, "host ports per adapter")
	packing := flag.Bool("packing", false, "enable packet packing (Arad: off)")
	durUs := flag.Int("dur", 300, "measurement duration per size in us")
	flag.Parse()

	cfg := experiments.ScaledArista()
	cfg.NumFA = *numFA
	cfg.PortsPerFA = *ports
	cfg.Packing = *packing
	cfg.Duration = sim.Time(*durUs) * sim.Microsecond
	rows, err := experiments.Arista(cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.WriteArista(os.Stdout, cfg, rows)
}
