// GraphNet is the cell fabric over an arbitrary topo.Graph: the same
// per-link serialization queues, propagation pipes, pooled cells and
// spreader-sprayed multipath as the Clos Net, but with forwarding state
// installed from Graph.Routes instead of the Clos reach protocol. It is
// how Space Shuffle, star-replaced server-centric graphs — any Graph —
// run the existing scenario family.
//
// Forwarding generalizes the §3.1 up/down rule: a node sprays each cell
// over the descend candidates for its destination (the distance-
// decreasing port set, loop-free under any spray by the Routes
// contract); a node with no descend candidate climbs, but only while
// the cell has never descended — the no-valley rule, verbatim. Graphs
// with no hierarchy (Space Shuffle, star-replaced) simply publish empty
// climb sets and route by descent alone. A per-flow ECMP mode replaces
// the spray with a deterministic hash pick over the same candidate
// sets, so spray-vs-ECMP comparisons run on identical topologies,
// routes and traffic.
//
// The control plane is centralized-but-delayed rather than protocol-
// simulated: FailLink/RestoreLink flip the administrative mask and prune
// dead ports at the adjacent devices immediately (local keepalive
// detection, §5.9), then reinstall Graph.Routes over the live mask after
// Cfg.ReachDelay — the same convergence lag the Clos fabric pays for
// reach propagation, without modeling a graph-specific protocol. During
// the window, cells steered onto pruned state are discarded exactly like
// the Clos convergence window. Recomputation runs in barrier context on
// a sharded fabric, so the instant is quantized to a window boundary —
// a function of the lookahead alone, hence byte-identical at every
// shard count.
package fabric

import (
	"fmt"
	"math/rand"

	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// RouteMode selects how a device picks among its candidate ports.
type RouteMode int

const (
	// ModeSpray sprays per cell with the §5.3 round-robin permutation
	// arbiter — Stardust's load balancing.
	ModeSpray RouteMode = iota
	// ModeECMP picks one candidate per flow by deterministic hash — the
	// classic per-flow ECMP baseline the paper argues against.
	ModeECMP
)

// glink is one direction of a physical link in a GraphNet, mirroring
// the Clos fabric's link type: queue on the sender's shard, arrival
// gate dropping cells when the link is down.
type glink struct {
	net *GraphNet
	sh  *shardState // receiving device's shard
	q   *netsim.Queue
	to  *gnode
	rt  []netsim.Handler
	up  bool
}

// Receive implements netsim.Handler.
func (l *glink) Receive(c *netsim.Packet) {
	if !l.up {
		l.sh.deadDrops++
		l.net.dropCell(c)
		return
	}
	l.to.Receive(c)
}

func (l *glink) send(c *netsim.Packet) {
	c.SetRoute(l.rt)
	c.SendOn()
}

// gEgress terminates cells at their destination edge device.
type gEgress struct {
	net *GraphNet
	sh  *shardState
	to  netsim.Handler // optional per-edge endpoint (SetEgress)
}

func (e *gEgress) deliver(c *netsim.Packet) {
	e.sh.delivered++
	if e.to != nil {
		e.to.Receive(c)
		return
	}
	if fn := e.net.onDeliver; fn != nil {
		fn(c)
		return
	}
	c.Release()
}

// gnode is one device of the graph: candidate tables per destination
// edge, a climb set, and the spreaders that spray over them.
type gnode struct {
	net  *GraphNet
	sh   *shardState
	id   int
	edge int32 // edge index, -1 for pure transit nodes

	out []*glink // per port; nil when the port is unwired

	// Installed forwarding state (rebuilt on recompute): bitmaps feed
	// the spreaders, port lists feed the ECMP hash.
	descend  []reach.Bitmap // per dst edge: candidate ports
	descendP [][]int
	climb    reach.Bitmap
	climbP   []int
	sprD     *reach.Spreader
	sprUp    *reach.Spreader
}

// Receive implements netsim.Handler: deliver or forward one cell.
func (d *gnode) Receive(c *netsim.Packet) {
	if d.edge == c.Dst {
		d.net.egress[d.edge].deliver(c)
		return
	}
	d.forward(c)
}

// forward applies the generalized up/down rule. The hot path allocates
// nothing: candidate sets are prebuilt bitmaps/slices, spreader
// reshuffles are in place, and the hash is arithmetic.
func (d *gnode) forward(c *netsim.Packet) {
	dst := int(c.Dst)
	if d.net.mode == ModeECMP {
		if ports := d.descendP[dst]; len(ports) > 0 {
			c.Down = true
			d.out[ports[ecmpHash(d.id, c.Seq)%uint64(len(ports))]].send(c)
			return
		}
		if !c.Down && len(d.climbP) > 0 {
			d.out[d.climbP[ecmpHash(d.id, c.Seq)%uint64(len(d.climbP))]].send(c)
			return
		}
	} else {
		if l := d.sprD.Next(d.descend[dst]); l >= 0 {
			c.Down = true
			d.out[l].send(c)
			return
		}
		if !c.Down {
			if l := d.sprUp.Next(d.climb); l >= 0 {
				d.out[l].send(c)
				return
			}
		}
	}
	d.sh.noRouteDrops++
	d.net.dropCell(c)
}

// ecmpHash mixes (device, flow id) into a uniform 64-bit value — a
// splitmix64 finalizer, deterministic everywhere.
func ecmpHash(node int, seq int64) uint64 {
	x := uint64(node)<<32 ^ uint64(seq)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// GraphNet owns every device and directed link of one topo.Graph
// instance. It implements Fabric.
type GraphNet struct {
	Cfg Config
	Sim *sim.Simulator // solo event heap; shard 0's heap when sharded
	G   topo.Graph

	mode RouteMode

	eng       *parsim.Engine // nil in solo mode
	shards    []*shardState  // len 1 in solo mode
	nodeShard []int          // device -> owning shard (sharded mode)

	nodes  []*gnode
	egress []gEgress
	wiring []topo.GraphLink
	// links holds both directions of every topology link: 2i is A->B,
	// 2i+1 is B->A.
	links    []*glink
	linkDown []bool
	adminUp  []bool // complement of linkDown, in Routes' input shape
	pipe     *netsim.Pipe
	hairpin  [][]netsim.Handler // per edge: local switching path

	laneGroups   []int32
	migrateHooks []func(fa, from, to int) // registered, never fired: nothing migrates

	onDeliver     func(*netsim.Packet)
	onCellDrop    func(*netsim.Packet)
	onLinkState   func(link int, up bool)
	onReachUpdate func(dev, reachable int)

	reachCnt []int // per node: dst edges currently routable, for update hooks
}

// NewGraphNet builds all devices and links of g on the single event
// loop s.
func NewGraphNet(s *sim.Simulator, cfg Config, g topo.Graph) (*GraphNet, error) {
	solo := &shardState{id: 0, sm: s}
	return buildGraph(cfg, g, []*shardState{solo}, nil, nil)
}

// NewGraphSharded builds the fabric across the shards of eng. assign
// maps each device to a shard; nil assigns contiguous node blocks. The
// lookahead constraints of NewSharded apply.
func NewGraphSharded(eng *parsim.Engine, cfg Config, g topo.Graph, assign []int) (*GraphNet, error) {
	if eng.Lookahead() > cfg.LinkDelay {
		return nil, fmt.Errorf("fabric: engine lookahead %d exceeds link delay %d", eng.Lookahead(), cfg.LinkDelay)
	}
	if cfg.ReachDelay < 2*eng.Lookahead() {
		return nil, fmt.Errorf("fabric: reach delay %d below two lookaheads (%d)", cfg.ReachDelay, 2*eng.Lookahead())
	}
	if assign == nil {
		assign = make([]int, g.NumNodes())
		for i := range assign {
			assign[i] = i * eng.Shards() / len(assign)
		}
	}
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("fabric: sharding shape %d does not match %d nodes", len(assign), g.NumNodes())
	}
	for _, s := range assign {
		if s < 0 || s >= eng.Shards() {
			return nil, fmt.Errorf("fabric: shard %d out of range [0,%d)", s, eng.Shards())
		}
	}
	shards := make([]*shardState, eng.Shards())
	for i := range shards {
		shards[i] = &shardState{id: i, sm: eng.Shard(i).Sim()}
	}
	return buildGraph(cfg, g, shards, assign, eng)
}

func buildGraph(cfg Config, g topo.Graph, shards []*shardState, assign []int, eng *parsim.Engine) (*GraphNet, error) {
	if cfg.LinkRate <= 0 || cfg.LinkBytes <= 0 {
		return nil, fmt.Errorf("fabric: need positive link rate and capacity")
	}
	if cfg.ReshuffleRounds < 1 {
		cfg.ReshuffleRounds = 64
	}
	if err := topo.ValidateGraph(g); err != nil {
		return nil, err
	}
	n := &GraphNet{
		Cfg:       cfg,
		Sim:       shards[0].sm,
		G:         g,
		eng:       eng,
		shards:    shards,
		nodeShard: assign,
		wiring:    g.GraphLinks(),
	}
	n.linkDown = make([]bool, len(n.wiring))
	n.adminUp = make([]bool, len(n.wiring))
	for i := range n.adminUp {
		n.adminUp[i] = true
	}
	if eng == nil {
		n.pipe = netsim.NewPipe(n.Sim, cfg.LinkDelay)
	}
	shardOf := func(node int) *shardState {
		if eng == nil {
			return shards[0]
		}
		return shards[assign[node]]
	}
	seeds := rand.New(rand.NewSource(cfg.Seed))
	edgeOf := topo.EdgeOfNode(g)
	nn := g.NumNodes()
	numEdge := g.NumEdge()
	n.nodes = make([]*gnode, nn)
	n.reachCnt = make([]int, nn)
	for i := range n.nodes {
		info := g.Node(i)
		d := &gnode{
			net:  n,
			sh:   shardOf(i),
			id:   i,
			edge: int32(edgeOf[i]),
			out:  make([]*glink, info.Ports),
			sprD: reach.NewSpreader(info.Ports, cfg.ReshuffleRounds, seeds.Int63()),
		}
		d.descend = make([]reach.Bitmap, numEdge)
		for e := range d.descend {
			d.descend[e] = reach.NewBitmap(info.Ports)
		}
		d.descendP = make([][]int, numEdge)
		d.climb = reach.NewBitmap(info.Ports)
		d.sprUp = reach.NewSpreader(info.Ports, cfg.ReshuffleRounds, seeds.Int63())
		n.nodes[i] = d
	}
	n.egress = make([]gEgress, numEdge)
	n.hairpin = make([][]netsim.Handler, numEdge)
	for e := range n.egress {
		sh := shardOf(g.EdgeNode(e))
		n.egress[e] = gEgress{net: n, sh: sh}
		if eng == nil {
			n.hairpin[e] = []netsim.Handler{n.pipe, &edgeSink{net: n, edge: e}}
		} else {
			lp := &netsim.LanePipe{Sched: sh.sm, Delay: cfg.LinkDelay, Lane: n.hairpinLaneG(e)}
			n.hairpin[e] = []netsim.Handler{lp, &edgeSink{net: n, edge: e}}
		}
	}
	// One directed glink per direction, lane = directed index — the same
	// lane discipline as the Clos fabric, so same-instant deliveries at
	// any device order identically at every shard count.
	mkLink := func(fromNode, fromPort int, to *gnode) *glink {
		fromSh := shardOf(fromNode)
		l := &glink{
			net: n,
			sh:  to.sh,
			q:   netsim.NewQueue(fromSh.sm, fmt.Sprintf("%s:%d", g.Node(fromNode).Name, fromPort), cfg.LinkRate, cfg.LinkBytes, 0),
			to:  to,
			up:  true,
		}
		if eng == nil {
			l.rt = []netsim.Handler{l.q, n.pipe, l}
		} else {
			lane := int32(len(n.links))
			lp := &netsim.LanePipe{
				Sched: eng.Shard(fromSh.id).To(to.sh.id),
				Delay: cfg.LinkDelay,
				Lane:  lane,
			}
			l.rt = []netsim.Handler{l.q, lp, l}
		}
		n.links = append(n.links, l)
		return l
	}
	for _, lk := range n.wiring {
		a, b := n.nodes[lk.A], n.nodes[lk.B]
		ab := mkLink(lk.A, lk.APort, b)
		a.out[lk.APort] = ab
		ba := mkLink(lk.B, lk.BPort, a)
		b.out[lk.BPort] = ba
	}
	if eng != nil {
		// Nothing migrates in a GraphNet, so every lane belongs to the
		// immovable group 0 — but the table must exist so a transport
		// layered on top can extend it with its own lanes.
		n.laneGroups = make([]int32, n.Lanes())
		for _, sh := range shards {
			sh.sm.SetLaneGroups(n.laneGroups)
			sh.sm.EnsureGroups(1)
		}
	}
	n.installRoutes(true)
	return n, nil
}

// edgeSink terminates the hairpin path (src edge == dst edge).
type edgeSink struct {
	net  *GraphNet
	edge int
}

// Receive implements netsim.Handler.
func (s *edgeSink) Receive(c *netsim.Packet) { s.net.egress[s.edge].deliver(c) }

// installRoutes recomputes Graph.Routes over the administrative mask and
// installs the candidate sets on every device. Construction-time and
// control-plane only (never on the per-cell path). With notify set,
// fires OnReachUpdate in node order for every device whose routable
// destination count changed; the initial install seeds the counts
// silently.
func (n *GraphNet) installRoutes(initial bool) {
	descend, climb := n.G.Routes(n.adminUp)
	for i, d := range n.nodes {
		cnt := 0
		for e := range d.descend {
			d.descend[e].Reset()
			for _, p := range descend[i][e] {
				d.descend[e].Set(p)
			}
			d.descendP[e] = descend[i][e]
			if len(descend[i][e]) > 0 {
				cnt++
			}
		}
		d.climb.Reset()
		for _, p := range climb[i] {
			d.climb.Set(p)
		}
		d.climbP = climb[i]
		if initial {
			n.reachCnt[i] = cnt
			continue
		}
		if cnt != n.reachCnt[i] {
			n.reachCnt[i] = cnt
			if n.onReachUpdate != nil {
				n.onReachUpdate(i, cnt)
			}
		}
	}
}

// hairpinLaneG is the event lane of edge e's local switching path.
func (n *GraphNet) hairpinLaneG(e int) int32 { return int32(2*len(n.wiring) + e) }

// Lanes implements Fabric: directed link lanes then hairpin lanes.
func (n *GraphNet) Lanes() int32 { return int32(2*len(n.wiring) + n.G.NumEdge()) }

// Graph implements Fabric.
func (n *GraphNet) Graph() topo.Graph { return n.G }

// Simulator implements Fabric.
func (n *GraphNet) Simulator() *sim.Simulator { return n.Sim }

// Engine implements Fabric.
func (n *GraphNet) Engine() *parsim.Engine { return n.eng }

// Sharded implements Fabric.
func (n *GraphNet) Sharded() bool { return n.eng != nil }

// NumFA implements Fabric: the edge device count (the injection and
// delivery points — FAs on a Clos, switches or servers elsewhere).
func (n *GraphNet) NumFA() int { return n.G.NumEdge() }

// NumLinks implements Fabric.
func (n *GraphNet) NumLinks() int { return len(n.wiring) }

// SetMode selects spray or per-flow ECMP forwarding. Call before the
// run starts.
func (n *GraphNet) SetMode(m RouteMode) { n.mode = m }

// Mode returns the forwarding mode.
func (n *GraphNet) Mode() RouteMode { return n.mode }

// EdgeSim implements Fabric.
func (n *GraphNet) EdgeSim(fa int) *sim.Simulator {
	if n.eng == nil {
		return n.Sim
	}
	return n.shards[n.nodeShard[n.G.EdgeNode(fa)]].sm
}

// ShardOfFA implements Fabric.
func (n *GraphNet) ShardOfFA(fa int) int {
	if n.eng == nil {
		return 0
	}
	return n.nodeShard[n.G.EdgeNode(fa)]
}

// SetEgress implements Fabric.
func (n *GraphNet) SetEgress(fa int, h netsim.Handler) { n.egress[fa].to = h }

// Inject implements Fabric: send one cell from edge device srcFA toward
// edge device dstFA. In ECMP mode the cell is stamped with its flow id
// (in Seq) so every hop hashes the same flow to the same path; ECMP
// fabrics therefore cannot carry a transport overlay that uses Seq.
func (n *GraphNet) Inject(c *netsim.Packet, srcFA, dstFA int) {
	d := n.nodes[n.G.EdgeNode(srcFA)]
	d.sh.injected++
	c.Dst = int32(dstFA)
	c.Down = false
	if srcFA == dstFA {
		c.SetRoute(n.hairpin[srcFA])
		c.SendOn()
		return
	}
	if n.mode == ModeECMP {
		c.Seq = int64(srcFA)*int64(n.G.NumEdge()) + int64(dstFA) + 1
	}
	d.forward(c)
}

// dropCell releases a cell lost inside the fabric, after showing it to
// the accounting hook.
func (n *GraphNet) dropCell(c *netsim.Packet) {
	if n.onCellDrop != nil {
		n.onCellDrop(c)
	}
	c.Release()
}

// Injected implements Fabric (quiescent/barrier context).
func (n *GraphNet) Injected() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.injected
	}
	return v
}

// Delivered implements Fabric (quiescent/barrier context).
func (n *GraphNet) Delivered() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.delivered
	}
	return v
}

// DeadDrops counts cells lost on a failed link.
func (n *GraphNet) DeadDrops() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.deadDrops
	}
	return v
}

// NoRouteDrops counts cells discarded with no live candidate — the
// convergence window.
func (n *GraphNet) NoRouteDrops() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.noRouteDrops
	}
	return v
}

// Drops implements Fabric.
func (n *GraphNet) Drops() uint64 {
	d := n.DeadDrops() + n.NoRouteDrops()
	for _, l := range n.links {
		d += l.q.Drops
	}
	return d
}

// QueueDrops implements Fabric.
func (n *GraphNet) QueueDrops() uint64 {
	var d uint64
	for _, l := range n.links {
		d += l.q.Drops
	}
	return d
}

// VisitQueues implements Fabric (barrier context when sharded).
func (n *GraphNet) VisitQueues(fn func(q *netsim.Queue)) {
	for _, l := range n.links {
		fn(l.q)
	}
}

// LinkUp implements Fabric.
func (n *GraphNet) LinkUp(i int) bool { return !n.linkDown[i] }

// FailLink implements Fabric: both directions of topology link i go
// down. The endpoints prune the dead port from every candidate set at
// once (local keepalive); the full tables reconverge on the live mask
// after Cfg.ReachDelay. Barrier context only when sharded.
func (n *GraphNet) FailLink(i int) {
	n.checkBarrierG()
	if n.linkDown[i] {
		return
	}
	n.linkDown[i] = true
	n.adminUp[i] = false
	n.links[2*i].up = false
	n.links[2*i+1].up = false
	lk := n.wiring[i]
	n.pruneLocal(lk.A, lk.APort)
	n.pruneLocal(lk.B, lk.BPort)
	n.scheduleRecompute()
	if n.onLinkState != nil {
		n.onLinkState(i, false)
	}
}

// RestoreLink implements Fabric: the link carries traffic again at
// once, and routes that want it back arrive with the reconvergence.
func (n *GraphNet) RestoreLink(i int) {
	n.checkBarrierG()
	if !n.linkDown[i] {
		return
	}
	n.linkDown[i] = false
	n.adminUp[i] = true
	n.links[2*i].up = true
	n.links[2*i+1].up = true
	n.scheduleRecompute()
	if n.onLinkState != nil {
		n.onLinkState(i, true)
	}
}

// pruneLocal clears one dead port from a device's installed candidate
// sets — the immediate local reaction to a failed keepalive. The port
// lists (ECMP) are filtered in place over the prebuilt backing arrays.
func (n *GraphNet) pruneLocal(node, port int) {
	d := n.nodes[node]
	for e := range d.descend {
		d.descend[e].Clear(port)
		d.descendP[e] = withoutPort(d.descendP[e], port)
	}
	d.climb.Clear(port)
	d.climbP = withoutPort(d.climbP, port)
}

// withoutPort removes port from a candidate list in place.
func withoutPort(ports []int, port int) []int {
	for i, p := range ports {
		if p == port {
			return append(ports[:i], ports[i+1:]...)
		}
	}
	return ports
}

// scheduleRecompute arranges the delayed global reconvergence. Each
// administrative change schedules its own; the recompute reads the
// administrative mask at execution time, so overlapping changes
// coalesce into the latest truth (idempotent reinstalls are harmless).
func (n *GraphNet) scheduleRecompute() {
	if n.eng != nil {
		// Barrier-context mutation of every shard's devices; the engine
		// quantizes the instant to a window boundary, a pure function of
		// the lookahead — identical at every shard count.
		n.eng.At(n.eng.Now()+n.Cfg.ReachDelay, func() { n.installRoutes(false) })
		return
	}
	n.Sim.After(n.Cfg.ReachDelay, func() { n.installRoutes(false) })
}

// checkBarrierG panics when multi-shard state is mutated outside
// barrier context.
func (n *GraphNet) checkBarrierG() {
	if n.eng != nil && !n.eng.InBarrier() {
		panic("fabric: sharded link state must be changed in barrier context (parsim Engine.At/OnBarrier)")
	}
}

// UnreachablePairs implements Fabric: ordered (src, dst) edge pairs the
// installed tables cannot begin to route — the src device has neither a
// descend candidate for dst nor any climb port. After reconvergence
// this is exact: Routes' BFS-backed tables have a candidate iff a live
// path exists. Barrier context only when sharded.
func (n *GraphNet) UnreachablePairs() int {
	bad := 0
	for e := 0; e < n.G.NumEdge(); e++ {
		d := n.nodes[n.G.EdgeNode(e)]
		for t := 0; t < n.G.NumEdge(); t++ {
			if t == e || int32(t) == d.edge {
				continue
			}
			if d.descend[t].Count() == 0 && len(d.climbP) == 0 {
				bad++
			}
		}
	}
	return bad
}

// ReadLinkCounters implements Fabric.
func (n *GraphNet) ReadLinkCounters(i int, out *[2]LinkCounters) {
	for d := 0; d < 2; d++ {
		l := n.links[2*i+d]
		out[d] = LinkCounters{
			Link:       i,
			Dir:        d,
			Up:         l.up,
			FwdBytes:   l.q.FwdBytes,
			FwdCells:   l.q.Forwarded,
			Drops:      l.q.Drops,
			QueueBytes: l.q.Bytes(),
			PeakBytes:  l.q.PeakBytes,
		}
	}
}

// DirCounters implements Fabric.
func (n *GraphNet) DirCounters(d int) (fwdBytes, fwdCells, drops uint64) {
	l := n.links[d]
	return l.q.FwdBytes, l.q.Forwarded, l.q.Drops
}

// DirTelemetry implements Fabric.
func (n *GraphNet) DirTelemetry(d int) (fwdBytes, fwdCells, drops uint64, queueBytes int) {
	l := n.links[d]
	return l.q.FwdBytes, l.q.Forwarded, l.q.Drops, l.q.Bytes()
}

// FAUplinkBytes implements Fabric: forwarded bytes of every edge
// device's outbound link, edge-major in ascending directed-link order —
// the per-link spread evidence of the linkload comparisons.
func (n *GraphNet) FAUplinkBytes() []uint64 {
	groups := topo.EdgeUplinkDirs(n.G)
	var out []uint64
	for _, dirs := range groups {
		for _, d := range dirs {
			out = append(out, n.links[d].q.FwdBytes)
		}
	}
	return out
}

// ShardEvents implements Fabric (barrier context).
func (n *GraphNet) ShardEvents() []uint64 {
	out := make([]uint64, len(n.shards))
	for i, sh := range n.shards {
		out[i] = sh.sm.Processed
	}
	return out
}

// TrafficOfShard implements Fabric (barrier context).
func (n *GraphNet) TrafficOfShard(s int) ShardTraffic {
	sh := n.shards[s]
	return ShardTraffic{
		Injected:     sh.injected,
		Delivered:    sh.delivered,
		DeadDrops:    sh.deadDrops,
		NoRouteDrops: sh.noRouteDrops,
	}
}

// OwnerOfLinkDir implements Fabric: the sending device's shard.
func (n *GraphNet) OwnerOfLinkDir(d int) int {
	if n.eng == nil {
		return 0
	}
	lk := n.wiring[d/2]
	if d%2 == 0 {
		return n.nodeShard[lk.A]
	}
	return n.nodeShard[lk.B]
}

// GroupOfFA implements Fabric: GraphNet devices never migrate, so every
// event belongs to the immovable group 0.
func (n *GraphNet) GroupOfFA(fa int) int32 { return 0 }

// LaneGroups implements Fabric.
func (n *GraphNet) LaneGroups() []int32 { return n.laneGroups }

// OnMigrateFA implements Fabric. Hooks are retained for interface
// parity but never fire: nothing migrates.
func (n *GraphNet) OnMigrateFA(fn func(fa, from, to int)) {
	n.migrateHooks = append(n.migrateHooks, fn)
}

// EnableRebalancing implements Fabric: adaptive rebalancing is a
// Clos-fabric feature (per-FA device groups); a GraphNet declines.
func (n *GraphNet) EnableRebalancing(cfg RebalanceConfig) error {
	return fmt.Errorf("fabric: adaptive rebalancing requires the Clos fabric (topology %s has no migratable device groups)", n.G.Spec())
}

// Migrations implements Fabric.
func (n *GraphNet) Migrations() uint64 { return 0 }

// EncodeMail implements Fabric. Only cells cross shard cuts in a
// GraphNet — reconvergence is a barrier control every replica runs
// locally — so the codec is the cell half of the Clos fabric's.
func (n *GraphNet) EncodeMail(m parsim.Mail) (kind byte, payload []byte, err error) {
	a, ok := m.Act.(*netsim.Packet)
	if !ok {
		return 0, nil, fmt.Errorf("fabric: cross-shard action %T on lane %d is not distributable", m.Act, m.Lane)
	}
	if a.Flow != nil {
		return 0, nil, fmt.Errorf("fabric: cell on lane %d carries transport flow state; the transport overlay is not distributable", m.Lane)
	}
	if int(m.Lane) >= 2*len(n.wiring) {
		return 0, nil, fmt.Errorf("fabric: packet on non-link lane %d is not distributable", m.Lane)
	}
	return MailCell, encodeCell(a), nil
}

// DecodeMail implements Fabric.
func (n *GraphNet) DecodeMail(kind byte, lane int32, payload []byte) (sim.Action, uint64, error) {
	if kind != MailCell {
		return nil, 0, fmt.Errorf("fabric: unknown mail kind %d for graph fabric", kind)
	}
	if int(lane) >= 2*len(n.wiring) || lane < 0 {
		return nil, 0, fmt.Errorf("fabric: cell on bad link lane %d", lane)
	}
	p, err := decodeCell(payload)
	if err != nil {
		return nil, 0, err
	}
	p.SetRoute(n.links[lane].rt[2:])
	return p, 0, nil
}

// SetOnDeliver implements Fabric.
func (n *GraphNet) SetOnDeliver(fn func(*netsim.Packet)) { n.onDeliver = fn }

// SetOnCellDrop implements Fabric.
func (n *GraphNet) SetOnCellDrop(fn func(*netsim.Packet)) { n.onCellDrop = fn }

// SetOnLinkState implements Fabric.
func (n *GraphNet) SetOnLinkState(fn func(link int, up bool)) { n.onLinkState = fn }

// SetOnReachUpdate implements Fabric.
func (n *GraphNet) SetOnReachUpdate(fn func(dev, reachable int)) { n.onReachUpdate = fn }

// HookOnLinkState implements Fabric.
func (n *GraphNet) HookOnLinkState() func(link int, up bool) { return n.onLinkState }

// HookOnReachUpdate implements Fabric.
func (n *GraphNet) HookOnReachUpdate() func(dev, reachable int) { return n.onReachUpdate }

// NewInjector implements Fabric.
func (n *GraphNet) NewInjector(fa int, gap sim.Time, cellBytes int, stop sim.Time, quota int) *Injector {
	return &Injector{
		net: n, fa: fa, numFA: n.G.NumEdge(),
		gap: gap, cell: cellBytes, stop: stop, quota: quota, dst: -1,
	}
}
