package experiments

import (
	"testing"

	"stardust/internal/sim"
)

// TestGraphSprayBeatsECMP is the §5.3 claim carried to non-Clos graphs:
// per-cell spraying spreads each device's bytes over its uplinks at
// least as evenly as hash-pinned per-flow ECMP, and loses no more
// throughput doing it. Run on both new families with identical traffic.
func TestGraphSprayBeatsECMP(t *testing.T) {
	const k, load, seed = 8, 0.6, 3
	warm, dur := 100*sim.Microsecond, 400*sim.Microsecond
	for _, topoName := range []string{"sshuffle", "star"} {
		t.Run(topoName, func(t *testing.T) {
			spray, err := GraphLinkLoad(topoName, k, "spray", load, warm, dur, seed)
			if err != nil {
				t.Fatal(err)
			}
			ecmp, err := GraphLinkLoad(topoName, k, "ecmp", load, warm, dur, seed)
			if err != nil {
				t.Fatal(err)
			}
			if spray.Delivered == 0 || ecmp.Delivered == 0 {
				t.Fatalf("no traffic delivered: spray %d, ecmp %d", spray.Delivered, ecmp.Delivered)
			}
			// Identical matrix, so injected counts agree; the comparison is
			// over fates and spread alone.
			if spray.Injected != ecmp.Injected {
				t.Fatalf("traffic matrices diverged: %d vs %d cells injected", spray.Injected, ecmp.Injected)
			}
			if spray.CoVPct > ecmp.CoVPct {
				t.Errorf("spray CoV %.2f%% worse than ecmp %.2f%%", spray.CoVPct, ecmp.CoVPct)
			}
			if spray.Delivered < ecmp.Delivered {
				t.Errorf("spray delivered %d < ecmp %d", spray.Delivered, ecmp.Delivered)
			}
			t.Logf("%s: spray cov=%.2f%% delivered=%d | ecmp cov=%.2f%% delivered=%d",
				spray.Topo, spray.CoVPct, spray.Delivered, ecmp.CoVPct, ecmp.Delivered)
		})
	}
}

// TestGraphECMPRejectsClos: the Clos fabric runs the paper's reach
// protocol, not the graph router; asking it for ECMP must error (the
// fat-tree ECMP contender lives in the linkload experiment).
func TestGraphECMPRejectsClos(t *testing.T) {
	if _, err := GraphLinkLoad("clos", 4, "ecmp", 0.5, sim.Microsecond, sim.Microsecond, 1); err == nil {
		t.Fatal("ecmp mode on the clos fabric should error")
	}
}

// TestGraphLoadDeterminism: same seed, same numbers — the scenario layer
// byte-diffs its output across worker counts, so the experiment must be
// a pure function of its arguments.
func TestGraphLoadDeterminism(t *testing.T) {
	a, err := GraphLinkLoad("sshuffle", 6, "spray", 0.5, 50*sim.Microsecond, 100*sim.Microsecond, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GraphLinkLoad("sshuffle", 6, "spray", 0.5, 50*sim.Microsecond, 100*sim.Microsecond, 11)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
