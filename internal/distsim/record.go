// Record / Replay: the digital-twin seam. Record runs a Spec while
// exporting the canonical STREC1 telemetry stream; Replay re-drives the
// fabric from a recorded stream's embedded spec (with what-if overrides)
// and reports the divergence between the recorded and replayed counters.
// An unchanged replay of a deterministic model reproduces the stream
// byte for byte — any divergence is exactly the effect of the overrides.
package distsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// streamHeaderFor builds the stream header for spec. The embedded spec
// has its shard count zeroed: sharding (and process placement) must
// never influence the stream, and the header is part of the stream.
func streamHeaderFor(spec Spec, m *Model, every sim.Time) (telemetry.StreamHeader, error) {
	ps := spec
	ps.Shards = 0
	raw, err := json.Marshal(ps)
	if err != nil {
		return telemetry.StreamHeader{}, err
	}
	return telemetry.StreamHeader{
		Format:   telemetry.Format,
		Dirs:     2 * m.Net.NumLinks(),
		FAs:      m.Net.NumFA(),
		Topo:     m.Graph.Spec(),
		K:        spec.K,
		Seed:     spec.Seed,
		ScrapePs: every,
		Spec:     raw,
	}, nil
}

// Record executes spec in this process (goroutine-sharded) while
// exporting its telemetry stream to out. Spec.Telem must be positive.
// The stream is a pure function of the spec minus its shard count: any
// Shards value, and any peer placement under Serve with a Stream sink,
// produces identical bytes.
func Record(spec Spec, out io.Writer) (Outcome, error) {
	if spec.Telem <= 0 {
		return Outcome{}, fmt.Errorf("distsim: Record needs Spec.Telem > 0")
	}
	m, err := NewModel(spec)
	if err != nil {
		return Outcome{}, err
	}
	every := spec.telemEvery(m.Eng.Lookahead())
	hdr, err := streamHeaderFor(spec, m, every)
	if err != nil {
		return Outcome{}, err
	}
	w, err := telemetry.NewWriter(out, hdr)
	if err != nil {
		return Outcome{}, err
	}
	rec := telemetry.NewRecorder(w, m.Net, func(fa int) (uint64, uint64) {
		s := m.Sinks[fa]
		return s.Cells, s.Bytes
	}, every)
	rec.AttachEngine(m.Eng)
	outc, err := m.RunLocal()
	if err != nil {
		return outc, err
	}
	if rerr := rec.Err(); rerr != nil {
		return outc, fmt.Errorf("distsim: telemetry stream: %w", rerr)
	}
	return outc, nil
}

// Overrides are the what-if knobs of a replay: zero values keep the
// recorded spec's parameters. Shards only changes how the replay
// executes (never the stream); everything else changes the simulated
// world and shows up in the divergence report.
type Overrides struct {
	Shards    int      `json:"shards,omitempty"`
	K         int      `json:"k,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Load      float64  `json:"load,omitempty"`
	Hotspot   float64  `json:"hotspot,omitempty"`
	FailLinks []int    `json:"fail_links,omitempty"`
	FailAt    sim.Time `json:"fail_at_ps,omitempty"`
	HealAt    sim.Time `json:"heal_at_ps,omitempty"`
}

// apply folds the overrides into spec.
func (o Overrides) apply(spec Spec) Spec {
	if o.Shards > 0 {
		spec.Shards = o.Shards
	}
	if o.K > 0 {
		spec.K = o.K
	}
	if o.Seed != 0 {
		spec.Seed = o.Seed
	}
	if o.Load > 0 {
		spec.Load = o.Load
	}
	if o.Hotspot > 0 {
		spec.Hotspot = o.Hotspot
	}
	if len(o.FailLinks) > 0 {
		spec.FailLinks = append(spec.FailLinks, o.FailLinks...)
		at := o.FailAt
		if at <= 0 {
			at = spec.Dur / 4 // default: fail mid-traffic so the effect is visible
		}
		spec.FailAt = at
		if o.HealAt > 0 {
			spec.HealAt = o.HealAt
		}
	}
	return spec
}

// SpecOf extracts the recorded spec embedded in a stream.
func SpecOf(stream []byte) (Spec, error) {
	hdr, err := telemetry.NewReader(bytes.NewReader(stream)).Header()
	if err != nil {
		return Spec{}, err
	}
	if len(hdr.Spec) == 0 {
		return Spec{}, fmt.Errorf("distsim: stream carries no spec; cannot replay")
	}
	var spec Spec
	if err := json.Unmarshal(hdr.Spec, &spec); err != nil {
		return Spec{}, fmt.Errorf("distsim: bad spec in stream header: %w", err)
	}
	return spec, nil
}

// Replay re-drives the fabric from a recorded stream: rebuild the world
// from the embedded spec with overrides applied, re-record it, and diff
// the two streams. Returns the divergence report, the replayed run's
// outcome, and the replayed stream (for chained what-ifs).
func Replay(stream []byte, ov Overrides) (*telemetry.Divergence, Outcome, []byte, error) {
	spec, err := SpecOf(stream)
	if err != nil {
		return nil, Outcome{}, nil, err
	}
	spec = ov.apply(spec)
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	var buf bytes.Buffer
	outc, err := Record(spec, &buf)
	if err != nil {
		return nil, outc, nil, err
	}
	div, err := telemetry.Compare(stream, buf.Bytes())
	if err != nil {
		return nil, outc, buf.Bytes(), err
	}
	return div, outc, buf.Bytes(), nil
}
