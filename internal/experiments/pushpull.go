// Package experiments contains one entry point per table and figure of the
// paper's evaluation, producing the same rows/series the paper reports.
// The cmd/ tools and the repository-root benchmarks are thin wrappers over
// this package.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// PushPullResult carries the Fig 7 / Fig 12 outcome: delivered fraction of
// each flow.
type PushPullResult struct {
	WithTC bool // Appendix F variant (A is high priority)

	// Delivered fraction per flow (1.0 = everything offered).
	EthernetA1, EthernetA2, EthernetB float64
	StardustA1, StardustA2, StardustB float64

	// Total egress throughput relative to port capacity (2 ports).
	EthernetTotal float64
	StardustTotal float64
}

// constSource injects fixed-size packets at a constant average rate with a
// few percent of deterministic jitter; without jitter, synchronized
// sources phase-lock against a shared tail-drop queue and the drops land
// on one victim flow instead of spreading (§5.3 discusses the same
// synchronization hazard for cell spraying).
func constSource(s *sim.Simulator, rate netsim.Bps, size int, route []netsim.Handler, tag int, offset, until sim.Time) {
	gap := float64(size*8) / float64(rate) * float64(sim.Second)
	rng := rand.New(rand.NewSource(int64(tag)*7919 + 13))
	var emit func()
	emit = func() {
		if s.Now() >= until {
			return
		}
		p := netsim.NewPacket()
		p.Size = size
		p.Flow = tag
		p.SetRoute(route)
		p.SendOn()
		jitter := 1 + 0.06*(rng.Float64()-0.5)
		s.After(sim.Time(gap*jitter), emit)
	}
	s.After(offset, emit)
}

// PushPull reproduces Fig 7 (withTC=false) and Fig 12 (withTC=true): two
// 100G flows toward port A from different ingress devices and one 100G
// flow toward port B, through a fabric whose egress device is reached over
// 200G of capacity.
//
// The Ethernet fabric pushes everything and drops at the oversubscribed
// egress trunk, so B loses throughput it was entitled to; Stardust's
// egress schedulers pull A at 50G per source and B at 100G, fitting the
// trunk exactly.
func PushPull(withTC bool) PushPullResult {
	const (
		port    = 100e9
		pkt     = 1500
		runFor  = 2 * sim.Millisecond
		bufferB = 150 * 1500
	)
	res := PushPullResult{WithTC: withTC}
	offered := float64(port) * runFor.Seconds() / 8 // bytes per flow

	// ---- Ethernet push fabric ----
	{
		s := sim.New()
		classify := func(p *netsim.Packet) int {
			if !withTC {
				return 0
			}
			if tag, ok := p.Flow.(int); ok && tag == 2 { // flow B is low priority
				return 1
			}
			return 0
		}
		// Egress device reached through a 200G oversubscribed trunk.
		trunk := netsim.NewPriorityQueue(s, "trunk", 2*port, bufferB, classify)
		portA := netsim.NewQueue(s, "A", port, bufferB, 0)
		portB := netsim.NewQueue(s, "B", port, bufferB, 0)
		var a1, a2, b netsim.Counter
		pipe := netsim.NewPipe(s, sim.Microsecond)
		demuxA1 := []netsim.Handler{trunk, pipe, portA, &a1}
		demuxA2 := []netsim.Handler{trunk, pipe, portA, &a2}
		demuxB := []netsim.Handler{trunk, pipe, portB, &b}
		gapSecs := float64(pkt*8) / port
		gap := sim.Time(gapSecs * float64(sim.Second))
		constSource(s, port, pkt, demuxA1, 0, 0, runFor)
		constSource(s, port, pkt, demuxA2, 1, gap/3, runFor)
		constSource(s, port, pkt, demuxB, 2, 2*gap/3, runFor)
		s.RunUntil(runFor + sim.Millisecond)
		res.EthernetA1 = float64(a1.Bytes) / offered
		res.EthernetA2 = float64(a2.Bytes) / offered
		res.EthernetB = float64(b.Bytes) / offered
		res.EthernetTotal = float64(a1.Bytes+a2.Bytes+b.Bytes) / (2 * offered)
	}

	// ---- Stardust pull fabric ----
	{
		s := sim.New()
		// Credits pace each source: A's port scheduler splits 100G between
		// two sources; B's gives its source the full rate. The paced flows
		// share the same 200G trunk without loss.
		trunk := netsim.NewQueue(s, "trunk", 2*port, bufferB, 0)
		portA := netsim.NewQueue(s, "A", port, bufferB, 0)
		portB := netsim.NewQueue(s, "B", port, bufferB, 0)
		var a1, a2, b netsim.Counter
		pipe := netsim.NewPipe(s, sim.Microsecond)
		// The egress schedulers' steady-state credit rates (§5.2).
		gapSecs := float64(pkt*8) / port
		gap := sim.Time(gapSecs * float64(sim.Second))
		constSource(s, port/2, pkt, []netsim.Handler{trunk, pipe, portA, &a1}, 0, 0, runFor)
		constSource(s, port/2, pkt, []netsim.Handler{trunk, pipe, portA, &a2}, 1, gap/3, runFor)
		constSource(s, port, pkt, []netsim.Handler{trunk, pipe, portB, &b}, 2, 2*gap/3, runFor)
		s.RunUntil(runFor + sim.Millisecond)
		// Delivered fraction of the *offered* 100G per flow.
		res.StardustA1 = float64(a1.Bytes) / offered
		res.StardustA2 = float64(a2.Bytes) / offered
		res.StardustB = float64(b.Bytes) / offered
		res.StardustTotal = float64(a1.Bytes+a2.Bytes+b.Bytes) / (2 * offered)
	}
	return res
}

// WritePushPull prints the Fig 7 / Fig 12 comparison.
func WritePushPull(w io.Writer, r PushPullResult) {
	label := "Fig 7 (no traffic classes)"
	if r.WithTC {
		label = "Fig 12 / Appendix F (A high priority, B low)"
	}
	fmt.Fprintf(w, "== Push vs Pull fabric: %s ==\n", label)
	fmt.Fprintf(w, "%-22s %8s %8s %8s %10s\n", "fabric", "A1", "A2", "B", "egress")
	fmt.Fprintf(w, "%-22s %7.0f%% %7.0f%% %7.0f%% %9.0f%%\n", "Ethernet (push)",
		100*r.EthernetA1, 100*r.EthernetA2, 100*r.EthernetB, 100*r.EthernetTotal)
	fmt.Fprintf(w, "%-22s %7.0f%% %7.0f%% %7.0f%% %9.0f%%\n", "Stardust (pull)",
		100*r.StardustA1, 100*r.StardustA2, 100*r.StardustB, 100*r.StardustTotal)
}
