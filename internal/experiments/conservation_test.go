package experiments

import (
	"fmt"
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/tcp"
	"stardust/internal/workload"
)

// Regression suite for StardustNet.TotalDrops/FabricDrops under
// UseFabric: for every fabric=true htsim scenario shape, every packet
// handed to the substrate must be accounted at drain —
//
//	injected == delivered + queue/VOQ drops + reassembly-timeout discards
//
// and every cell the adapters fragmented must be accounted too —
//
//	CellsSent == CellsDelivered + FabricDrops.
//
// Before this suite only the bare fabric asserted conservation; the
// transport's own accounting (the counters TotalDrops and FabricDrops
// aggregate) was unchecked on the end-to-end path.

// pktCounter counts packets passing one route position and forwards them.
type pktCounter struct{ n uint64 }

// Receive implements netsim.Handler.
func (c *pktCounter) Receive(p *netsim.Packet) {
	c.n++
	p.SendOn()
}

// runConservation drives the flow matrix with finite TCP flows over the
// per-link fabric, optionally failing links mid-run, and checks the
// accounting identities at drain.
func runConservation(t *testing.T, name string, flows []workload.Flow, flowBytes int64, failLinks []int) {
	t.Helper()
	cfg := QuickHtsim()
	cfg.FullFabric = true
	tb, err := newTestbed(cfg, ProtoStardust)
	if err != nil {
		t.Fatal(err)
	}
	var injected, delivered pktCounter
	var sources []*tcp.Source
	tcfg := tcp.DefaultConfig()
	tcfg.MSS = cfg.MSS
	for i, fl := range flows {
		f := tcp.NewSource(tb.s, tcfg, fmt.Sprintf("%s-%d", name, i), flowBytes, nil)
		fwd := append([]netsim.Handler{&injected}, tb.route(fl.Src, fl.Dst, 0)...)
		rev := append([]netsim.Handler{&injected}, tb.route(fl.Dst, fl.Src, 0)...)
		sink := tcp.NewSink(tb.s, tcfg, f, append(rev, &delivered, tcp.Ack))
		f.SetRoute(append(fwd, &delivered, sink))
		f.StartAt(sim.Time(i) * sim.Microsecond)
		sources = append(sources, f)
	}
	if len(failLinks) > 0 {
		// Fail early enough to land mid-transfer so dead-link cell losses
		// and reassembly discards are part of what is balanced.
		tb.s.At(300*sim.Microsecond, func() {
			for _, lk := range failLinks {
				tb.fab.FailLink(lk)
			}
		})
		tb.s.At(1500*sim.Microsecond, func() {
			for _, lk := range failLinks {
				tb.fab.RestoreLink(lk)
			}
		})
	}

	deadline := 400 * sim.Millisecond
	done := func() bool {
		for _, f := range sources {
			if !f.Done {
				return false
			}
		}
		return true
	}
	for tb.s.Now() < deadline && !done() {
		tb.s.RunUntil(tb.s.Now() + 5*sim.Millisecond)
	}
	if !done() {
		t.Fatalf("%s: flows did not complete within the budget", name)
	}
	// Grace: let duplicate ACKs, stragglers and reassembly timers settle so
	// nothing is in flight when the books are balanced.
	tb.s.RunUntil(tb.s.Now() + 5*sim.Millisecond)

	sd := tb.sd
	packetDrops := sd.TotalDrops() - sd.FabricDrops() // queue + VOQ tail-drops
	if injected.n != delivered.n+packetDrops+sd.ReasmTimeouts {
		t.Fatalf("%s: packet conservation violated: %d injected != %d delivered + %d dropped + %d discarded",
			name, injected.n, delivered.n, packetDrops, sd.ReasmTimeouts)
	}
	if sd.CellsSent != sd.CellsDelivered+sd.FabricDrops() {
		t.Fatalf("%s: cell conservation violated: %d sent != %d delivered + %d fabric drops",
			name, sd.CellsSent, sd.CellsDelivered, sd.FabricDrops())
	}
	if len(failLinks) == 0 {
		if sd.FabricDrops() != 0 {
			t.Fatalf("%s: healthy fabric dropped %d cells", name, sd.FabricDrops())
		}
		if sd.ReasmTimeouts != 0 {
			t.Fatalf("%s: healthy run discarded %d packets", name, sd.ReasmTimeouts)
		}
	} else if sd.FabricDrops() == 0 {
		// The whole point of the failure case is balancing the books with
		// real losses in them; a painless outage means the schedule missed.
		t.Fatalf("%s: link failures produced no cell losses", name)
	}
	if injected.n == 0 || delivered.n == 0 {
		t.Fatalf("%s: degenerate run (%d injected, %d delivered)", name, injected.n, delivered.n)
	}
}

// pairFlows adapts an (src → dst) permutation slice to workload.Flow.
func pairFlows(perm []int) []workload.Flow {
	var out []workload.Flow
	for src, dst := range perm {
		if src != dst {
			out = append(out, workload.Flow{Src: src, Dst: dst})
		}
	}
	return out
}

func TestFabricTransportConservation(t *testing.T) {
	hosts := 16 // K=4
	rng := newMatrixRNG(7)
	hotFlows, _ := workload.Hotspot(rng, hosts, 2, 0.4)
	incast := workload.NewIncast(rng, hosts, 8, 0)
	var incastFlows []workload.Flow
	for _, b := range incast.Backends {
		incastFlows = append(incastFlows, workload.Flow{Src: b, Dst: incast.Frontend})
	}
	cases := []struct {
		name  string
		flows []workload.Flow
		bytes int64
		fail  []int
	}{
		{"permutation", pairFlows(workload.Permutation(rng, hosts)), 150_000, nil},
		{"hotspot", hotFlows, 100_000, nil},
		{"alltoall", workload.AllToAll(hosts), 30_000, nil},
		{"incast", incastFlows, 150_000, nil},
		{"permutation-failures", pairFlows(workload.Permutation(rng, hosts)), 2_000_000, []int{0, 9, 17}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runConservation(t, tc.name, tc.flows, tc.bytes, tc.fail)
		})
	}
}
