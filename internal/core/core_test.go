package core

import (
	"testing"

	"stardust/internal/sim"
	"stardust/internal/topo"
)

// testConfig returns a small, fast configuration: 4 uplinks of 50G per FA,
// 100G host ports.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.HostPortsPerFA = 4
	cfg.ReachInterval = 5 * sim.Microsecond
	cfg.LinkDelay = 100 * sim.Nanosecond
	return cfg
}

func newTestNet(t *testing.T, cfg Config, clos *topo.Clos) *Network {
	t.Helper()
	n, err := New(cfg, clos)
	if err != nil {
		t.Fatal(err)
	}
	if !n.WarmUp(5 * sim.Millisecond) {
		t.Fatal("reachability did not converge")
	}
	return n
}

func clos1(t *testing.T) *topo.Clos {
	t.Helper()
	c, err := topo.NewClos1(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func clos2(t *testing.T) *topo.Clos {
	t.Helper()
	// 8 FAs x 4 uplinks; 4 FE1 (8 down + 8 up); 2 FE2 x 16 links.
	c, err := topo.NewClos2(8, 4, 4, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConvergence1Tier(t *testing.T) {
	n := newTestNet(t, testConfig(), clos1(t))
	for _, fa := range n.FAs {
		if !fa.Converged() {
			t.Fatalf("FA%d not converged", fa.ID)
		}
	}
}

func TestConvergence2Tier(t *testing.T) {
	n := newTestNet(t, testConfig(), clos2(t))
	if !n.Converged() {
		t.Fatal("2-tier network did not converge")
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n := newTestNet(t, testConfig(), clos1(t))
	var got *Packet
	n.OnDeliver = func(p *Packet) { got = p }
	ok, sent := n.Inject(0, 0, 1, 2, 0, 1500)
	if !ok {
		t.Fatal("inject failed")
	}
	n.Run(n.Sim.Now() + 2*sim.Millisecond)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.ID != sent.ID || got.Size != 1500 || got.DstFA != 1 || got.DstPort != 2 {
		t.Fatalf("wrong packet delivered: %+v", got)
	}
	lat := got.Latency()
	if lat <= 0 || lat > 100*sim.Microsecond {
		t.Fatalf("implausible latency %v us", lat.Microseconds())
	}
	// The credit round trip plus fabric traversal puts a floor on latency.
	if lat < sim.Microsecond {
		t.Fatalf("latency %v below physical floor", lat)
	}
}

func TestDelivery2Tier(t *testing.T) {
	n := newTestNet(t, testConfig(), clos2(t))
	delivered := 0
	n.OnDeliver = func(p *Packet) { delivered++ }
	// One packet between every FA pair.
	for s := 0; s < n.NumFA(); s++ {
		for d := 0; d < n.NumFA(); d++ {
			if s == d {
				continue
			}
			if ok, _ := n.Inject(uint16(s), 0, uint16(d), 0, 0, 700); !ok {
				t.Fatalf("inject %d->%d failed", s, d)
			}
		}
	}
	n.Run(n.Sim.Now() + 3*sim.Millisecond)
	want := n.NumFA() * (n.NumFA() - 1)
	if delivered != want {
		t.Fatalf("delivered %d of %d", delivered, want)
	}
	for _, fe := range n.FEs {
		if fe.Dropped != 0 || fe.NoRoute != 0 {
			t.Fatalf("FE %v dropped=%d noroute=%d", fe.ID, fe.Dropped, fe.NoRoute)
		}
	}
}

// Per-(src,dst,TC) streams must deliver packets in injection order: the
// reassembler enforces stream order even with cells sprayed across all
// links (§3.2, §4.1).
func TestInOrderDeliveryPerFlow(t *testing.T) {
	n := newTestNet(t, testConfig(), clos2(t))
	var order []uint64
	n.OnDeliver = func(p *Packet) {
		if p.DstFA == 3 {
			order = append(order, p.ID)
		}
	}
	var ids []uint64
	for i := 0; i < 200; i++ {
		_, p := n.Inject(0, 0, 3, 1, 0, 400+i%700)
		ids = append(ids, p.ID)
	}
	n.Run(n.Sim.Now() + 5*sim.Millisecond)
	if len(order) != len(ids) {
		t.Fatalf("delivered %d of %d", len(order), len(ids))
	}
	for i := range ids {
		if order[i] != ids[i] {
			t.Fatalf("reordering at %d: got %d want %d", i, order[i], ids[i])
		}
	}
}

// Sustained load at ~80% of a host port must be delivered at the offered
// rate through the scheduled fabric.
func TestSustainedThroughput(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos1(t))
	deliveredB := int64(0)
	n.OnDeliver = func(p *Packet) { deliveredB += int64(p.Size) }

	const pktSize = 1500
	rate := 0.8 * cfg.HostPortBps
	interval := sim.Time(float64(pktSize*8) / rate * float64(sim.Second))
	var injected int64
	duration := 400 * sim.Microsecond
	start := n.Sim.Now()
	var inject func()
	inject = func() {
		if n.Sim.Now()-start >= duration {
			return
		}
		if ok, _ := n.Inject(0, 0, 2, 1, 0, pktSize); ok {
			injected += pktSize
		}
		n.Sim.After(interval, inject)
	}
	n.Sim.After(0, inject)
	n.Run(start + duration + 300*sim.Microsecond) // drain

	if injected == 0 {
		t.Fatal("nothing injected")
	}
	frac := float64(deliveredB) / float64(injected)
	if frac < 0.99 {
		t.Fatalf("delivered %.3f of offered bytes (%d/%d)", frac, deliveredB, injected)
	}
	if n.FAs[0].UplinkDrops != 0 || n.FAs[0].NoRouteDrops != 0 {
		t.Fatalf("FA drops: uplink=%d noroute=%d", n.FAs[0].UplinkDrops, n.FAs[0].NoRouteDrops)
	}
}

// Incast (§5.4): many sources to one port. The fabric must stay lossless;
// the backlog accumulates in ingress VOQs; credits split bandwidth evenly.
func TestIncastLossless(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos2(t))
	delivered := make(map[uint16]int64)
	n.OnDeliver = func(p *Packet) { delivered[p.SrcFA] += int64(p.Size) }

	// 7 sources each dump 100KB toward FA0 port 0 instantly.
	const burst = 100 << 10
	const pktSize = 1000
	for src := 1; src < 8; src++ {
		for b := 0; b < burst; b += pktSize {
			if ok, _ := n.Inject(uint16(src), 0, 0, 0, 0, pktSize); !ok {
				t.Fatalf("ingress drop at src %d (buffer should absorb)", src)
			}
		}
	}
	// Run long enough for 700KB at 100G plus scheduling overheads.
	n.Run(n.Sim.Now() + 200*sim.Microsecond)

	for _, fe := range n.FEs {
		if fe.Dropped != 0 {
			t.Fatalf("fabric dropped %d cells during incast", fe.Dropped)
		}
	}
	var total int64
	min, max := int64(1<<62), int64(0)
	for src := uint16(1); src < 8; src++ {
		b := delivered[src]
		total += b
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if total < 6*burst {
		t.Fatalf("only %d of %d bytes delivered", total, 7*burst)
	}
	// Fairness: egress scheduler round-robins credits (§5.4), so per-source
	// progress must be close.
	if float64(min) < 0.9*float64(max) {
		t.Fatalf("unfair incast service: min=%d max=%d", min, max)
	}
}

// The packing ablation: packing strictly reduces the number of cells sent
// for small-packet traffic (§3.4, Fig 8).
func TestPackingReducesCells(t *testing.T) {
	run := func(packing bool) uint64 {
		cfg := testConfig()
		cfg.Packing = packing
		c, _ := topo.NewClos1(4, 4, 2)
		n, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		n.WarmUp(5 * sim.Millisecond)
		for i := 0; i < 500; i++ {
			n.Inject(0, 0, 1, 0, 0, 64) // 64B minimum-size packets
		}
		n.Run(n.Sim.Now() + sim.Millisecond)
		return n.FAs[0].CellsSent
	}
	packed := run(true)
	unpacked := run(false)
	if packed == 0 || unpacked == 0 {
		t.Fatal("no cells sent")
	}
	// 64+4=68B packed into 248B payloads: ~3.6 packets/cell vs 1.
	if float64(unpacked)/float64(packed) < 3.0 {
		t.Fatalf("packing gain too small: packed=%d unpacked=%d", packed, unpacked)
	}
}

// Link failure: the self-healing fabric withdraws the link within the
// detection window and traffic continues over the surviving links (§5.9).
func TestLinkFailureSelfHealing(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos2(t))
	delivered := 0
	n.OnDeliver = func(p *Packet) { delivered++ }

	// Fail one of FA0's uplinks, then keep injecting.
	if err := n.FailLink(topo.NodeID{Kind: topo.KindFA, Index: 0}, 0); err != nil {
		t.Fatal(err)
	}
	// Let the keepalive loss be detected (threshold * interval plus slack).
	n.Run(n.Sim.Now() + 10*cfg.ReachInterval)

	const count = 300
	for i := 0; i < count; i++ {
		n.Inject(0, 0, 5, 0, 0, 900)
	}
	n.Run(n.Sim.Now() + 3*sim.Millisecond)
	if delivered != count {
		t.Fatalf("delivered %d of %d after link failure", delivered, count)
	}
	// The failed uplink must be excluded from the FA's table.
	if n.FAs[0].table.Links(5).Get(0) {
		t.Fatal("failed link still eligible")
	}
}

// Device failure: an entire spine element dies; the fabric routes around
// it (§5.10).
func TestDeviceFailureBypass(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos2(t))
	delivered := 0
	n.OnDeliver = func(p *Packet) { delivered++ }

	if err := n.FailDevice(topo.NodeID{Kind: topo.KindFE2, Index: 0}); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Sim.Now() + 10*cfg.ReachInterval)

	const count = 200
	for i := 0; i < count; i++ {
		n.Inject(1, 0, 6, 0, 0, 800)
	}
	n.Run(n.Sim.Now() + 3*sim.Millisecond)
	if delivered != count {
		t.Fatalf("delivered %d of %d after spine failure", delivered, count)
	}
}

// Restoring a failed link re-adds it to forwarding after the threshold of
// good keepalives (§5.10).
func TestLinkRestore(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos2(t))
	id := topo.NodeID{Kind: topo.KindFA, Index: 0}
	n.FailLink(id, 1)
	n.Run(n.Sim.Now() + 10*cfg.ReachInterval)
	if n.FAs[0].table.Links(4).Get(1) {
		t.Fatal("link not withdrawn")
	}
	n.RestoreLink(id, 1)
	n.Run(n.Sim.Now() + 10*cfg.ReachInterval)
	if !n.FAs[0].table.Links(4).Get(1) {
		t.Fatal("link not restored")
	}
}

// Over-subscribing the fabric activates FCI and throttles credits instead
// of dropping (§4.2, §5.5, Fig 9's 1.2-load curve).
func TestFCIUnderFabricOversubscription(t *testing.T) {
	cfg := testConfig()
	// Choke the fabric: 2 uplinks of 10G per FA vs a 100G host port.
	cfg.LinkBps = 10e9
	c, err := topo.NewClos1(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if !n.WarmUp(5 * sim.Millisecond) {
		t.Fatal("no convergence")
	}
	// Two sources blast one destination FA (different ports so credits
	// flow at 2x port rate, exceeding the 40G fabric).
	const pktSize = 1000
	stop := n.Sim.Now() + 500*sim.Microsecond
	var inject func(src uint16, port uint8)
	inject = func(src uint16, port uint8) {
		if n.Sim.Now() >= stop {
			return
		}
		n.Inject(src, 0, 0, port, 0, pktSize)
		n.Sim.After(sim.Time(float64(pktSize*8)/cfg.HostPortBps*float64(sim.Second)), func() { inject(src, port) })
	}
	n.Sim.After(0, func() { inject(1, 0) })
	n.Sim.After(0, func() { inject(2, 1) })
	n.Run(stop + 200*sim.Microsecond)

	if n.FAs[0].FCIReceived == 0 {
		t.Fatal("no FCI received under fabric over-subscription")
	}
	thr := n.FAs[0].Scheduler(0).Throttle()
	if thr >= 1.0 {
		t.Fatalf("scheduler not throttled: %v", thr)
	}
	var dropped uint64
	for _, fe := range n.FEs {
		dropped += fe.Dropped
	}
	if dropped > 0 {
		t.Fatalf("fabric dropped %d cells despite FCI/shared pool", dropped)
	}
}

// Low-latency VOQs (§5.6) transmit without waiting for the credit round
// trip.
func TestLowLatencyClass(t *testing.T) {
	cfg := testConfig()
	cfg.LowLatencyTCs = map[uint8]bool{1: true}
	n := newTestNet(t, cfg, clos1(t))
	var normal, lowlat sim.Time
	n.OnDeliver = func(p *Packet) {
		if p.TC == 1 {
			lowlat = p.Latency()
		} else {
			normal = p.Latency()
		}
	}
	n.Inject(0, 0, 1, 0, 0, 256)
	n.Run(n.Sim.Now() + sim.Millisecond)
	n.Inject(0, 1, 1, 1, 1, 256)
	n.Run(n.Sim.Now() + sim.Millisecond)
	if normal == 0 || lowlat == 0 {
		t.Fatal("packets not delivered")
	}
	if lowlat >= normal {
		t.Fatalf("low-latency class (%v) not faster than credited (%v)", lowlat, normal)
	}
}

// Ingress buffer exhaustion drops at the edge (standard ToR behaviour,
// §3.1), never in the fabric.
func TestIngressDropOnPersistentOversubscription(t *testing.T) {
	cfg := testConfig()
	cfg.FAIngressBufBytes = 64 << 10 // tiny buffer
	n := newTestNet(t, cfg, clos1(t))
	drops := 0
	for i := 0; i < 1000; i++ {
		if ok, _ := n.Inject(1, 0, 0, 0, 0, 1000); !ok {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("expected ingress drops with a 64KB buffer and 1MB burst")
	}
	n.Run(n.Sim.Now() + 2*sim.Millisecond)
	for _, fe := range n.FEs {
		if fe.Dropped != 0 {
			t.Fatal("fabric must not drop")
		}
	}
}

func TestStoreAndForwardLatencyGrowsWithSize(t *testing.T) {
	cfg := testConfig()
	cfg.StoreAndForward = true
	n := newTestNet(t, cfg, clos1(t))
	lat := map[int]sim.Time{}
	n.OnDeliver = func(p *Packet) { lat[p.Size] = p.Latency() }
	n.Inject(0, 0, 1, 0, 0, 64)
	n.Run(n.Sim.Now() + sim.Millisecond)
	n.Inject(0, 0, 1, 1, 0, 9000)
	n.Run(n.Sim.Now() + sim.Millisecond)
	if lat[64] == 0 || lat[9000] == 0 {
		t.Fatal("not delivered")
	}
	if lat[9000] <= lat[64] {
		t.Fatalf("store-and-forward latency must grow with size: %v vs %v", lat[64], lat[9000])
	}
}

func TestInjectValidation(t *testing.T) {
	cfg := testConfig()
	cfg.HostPortsPerFA = 0
	if _, err := New(cfg, clos1(t)); err == nil {
		t.Fatal("zero host ports must be rejected")
	}
	cfg = testConfig()
	cfg.CellSize = 8
	if _, err := New(cfg, clos1(t)); err == nil {
		t.Fatal("tiny cell size must be rejected")
	}
}

func TestFailLinkErrors(t *testing.T) {
	n := newTestNet(t, testConfig(), clos1(t))
	if err := n.FailDevice(topo.NodeID{Kind: topo.KindFA, Index: 0}); err == nil {
		t.Fatal("failing an FA should be rejected")
	}
}
