// The coordinator: partitions the shard space over the joined peers,
// drives the lock-step window loop over TCP, relays cross-peer mail in a
// star, logs every delivered batch as the live checkpoint, and merges the
// peers' owned counters into the canonical Outcome.
package distsim

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"stardust/internal/fabric"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// CoordConfig configures one distributed run.
type CoordConfig struct {
	Spec  Spec
	Peers int
	// Rejoin keeps the run alive when a peer dies: the coordinator waits
	// up to RejoinTimeout for a replacement connection and restores it
	// from the mail-log checkpoint. Without it a disconnect aborts the
	// run deterministically.
	Rejoin        bool
	RejoinTimeout time.Duration // default 60s
	JoinTimeout   time.Duration // initial join wait, default 60s
	IOTimeout     time.Duration // per-frame deadline backstop, default 60s
	// CheckpointDir, when set, streams the mail-log checkpoint to one
	// append-only file per peer (see checkpoint.go).
	CheckpointDir string
	// OnWindow, when non-nil, observes every window number just before
	// its GO frames go out — progress reporting and the chaos tests'
	// kill trigger.
	OnWindow func(window int)
	// Log, when non-nil, receives human-readable progress lines (joins,
	// deaths, restores). Never written on the hot path.
	Log io.Writer
	// Stream, when non-nil and Spec.Telem > 0, receives the canonical
	// STREC1 telemetry stream assembled from the peers' owned counters —
	// byte-identical to what Record produces locally for the same Spec.
	Stream io.Writer
	// Stats receives window-loop metrics; nil means DefaultStats.
	Stats *CoordStats
}

// Listen binds the coordinator's TCP endpoint. Split from Serve so a
// caller can learn the bound address (":0") before starting peers.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// peerConn is one live peer connection with framing and deadlines. When
// stats is set (coordinator side), raw and wire byte counts flow into it.
type peerConn struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	io    time.Duration
	stats *CoordStats
}

// countConn counts the bytes that actually cross the wire (compressed
// bodies plus frame headers), under the bufio layers.
type countConn struct {
	conn  net.Conn
	stats *CoordStats
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.conn.Read(p)
	c.stats.addWire(n)
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.conn.Write(p)
	c.stats.addWire(n)
	return n, err
}

func newPeerConn(conn net.Conn, ioTimeout time.Duration, stats *CoordStats) *peerConn {
	var r io.Reader = conn
	var w io.Writer = conn
	if stats != nil {
		cc := countConn{conn: conn, stats: stats}
		r, w = cc, cc
	}
	return &peerConn{conn: conn, r: bufio.NewReader(r), w: bufio.NewWriter(w), io: ioTimeout, stats: stats}
}

func (pc *peerConn) write(typ byte, body []byte, compress bool) error {
	if pc.io > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(pc.io))
	}
	if pc.stats != nil {
		pc.stats.addRaw(len(body) + 2)
	}
	if err := writeFrame(pc.w, typ, body, compress); err != nil {
		return err
	}
	return pc.w.Flush()
}

func (pc *peerConn) read() (byte, []byte, error) {
	if pc.io > 0 {
		pc.conn.SetReadDeadline(time.Now().Add(pc.io))
	}
	typ, body, err := readFrame(pc.r)
	if err == nil && pc.stats != nil {
		pc.stats.addRaw(len(body) + 2)
	}
	return typ, body, err
}

// fail sends a best-effort ERROR frame and closes the connection.
func (pc *peerConn) fail(msg string) {
	pc.write(tError, []byte(msg), false)
	pc.conn.Close()
}

type coord struct {
	cfg    CoordConfig
	model  *Model
	owners []int
	hash   uint64
	conns  chan net.Conn
	peers  []*peerConn
	log    *mailLog
	none   []bool // all-false ownership: the coordinator executes nothing
	stats  *CoordStats
}

// Serve runs one distributed simulation on an already-bound listener and
// returns the canonical Outcome — bit-identical to Model.RunLocal on the
// same Spec. It owns the listener and closes it on return.
func Serve(lis net.Listener, cfg CoordConfig) (Outcome, error) {
	if cfg.Peers < 1 {
		return Outcome{}, fmt.Errorf("distsim: need at least one peer")
	}
	if cfg.Spec.Shards < cfg.Peers {
		return Outcome{}, fmt.Errorf("distsim: %d peers need at least that many shards, have %d", cfg.Peers, cfg.Spec.Shards)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 60 * time.Second
	}
	if cfg.RejoinTimeout <= 0 {
		cfg.RejoinTimeout = 60 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 60 * time.Second
	}
	if cfg.Stats == nil {
		cfg.Stats = DefaultStats
	}
	model, err := NewModel(cfg.Spec)
	if err != nil {
		lis.Close()
		return Outcome{}, err
	}
	owners := OwnersFor(cfg.Spec.Shards, cfg.Peers)
	c := &coord{
		cfg:    cfg,
		model:  model,
		owners: owners,
		hash:   modelHash(cfg.Spec, owners, model),
		conns:  make(chan net.Conn, 16),
		peers:  make([]*peerConn, cfg.Peers),
		none:   make([]bool, cfg.Spec.Shards),
		stats:  cfg.Stats,
	}
	c.log, err = newMailLog(cfg.Peers, cfg.CheckpointDir, cfg.Spec, owners)
	if err != nil {
		lis.Close()
		return Outcome{}, err
	}
	defer c.log.close()

	accepting := make(chan struct{})
	go func() {
		defer close(accepting)
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			select {
			case c.conns <- conn:
			default:
				newPeerConn(conn, cfg.IOTimeout, nil).fail("distsim: join queue full")
			}
		}
	}()
	defer func() {
		lis.Close()
		<-accepting
		// Reject stragglers deterministically — a double-join never
		// hangs, it reads an ERROR frame.
		for {
			select {
			case conn := <-c.conns:
				newPeerConn(conn, cfg.IOTimeout, nil).fail("distsim: no free peer slot: all peers already joined")
			default:
				return
			}
		}
	}()
	defer func() {
		for _, pc := range c.peers {
			if pc != nil {
				pc.conn.Close()
			}
		}
	}()

	for p := range c.peers {
		pc, err := c.join(p, 0, cfg.JoinTimeout)
		if err != nil {
			c.abort(err)
			return Outcome{}, err
		}
		c.peers[p] = pc
	}
	c.logf("distsim: %d peer(s) joined, %d shards, window %v", cfg.Peers, cfg.Spec.Shards, model.Eng.Lookahead())
	return c.run()
}

func (c *coord) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

// abort broadcasts err to every live peer so none is left blocked at a
// barrier that will never complete.
func (c *coord) abort(err error) {
	for _, pc := range c.peers {
		if pc != nil {
			pc.write(tError, []byte(err.Error()), false)
		}
	}
}

// join completes the handshake for peer slot p: wait for a connection,
// HELLO/version check, WELCOME with the partition map (and the resume
// checkpoint when restoring a dead peer), READY/model-hash check.
func (c *coord) join(p, resume int, wait time.Duration) (*peerConn, error) {
	var conn net.Conn
	select {
	case conn = <-c.conns:
	case <-time.After(wait):
		return nil, fmt.Errorf("distsim: timed out waiting for peer %d to join", p)
	}
	pc := newPeerConn(conn, c.cfg.IOTimeout, c.stats)
	typ, body, err := pc.read()
	if err != nil {
		pc.conn.Close()
		return nil, fmt.Errorf("distsim: peer %d handshake: %w", p, err)
	}
	if typ != tHello {
		pc.fail("expected HELLO")
		return nil, fmt.Errorf("distsim: peer %d sent frame %d instead of HELLO", p, typ)
	}
	var hello helloMsg
	if err := json.Unmarshal(body, &hello); err != nil {
		pc.fail("bad HELLO")
		return nil, fmt.Errorf("distsim: peer %d bad HELLO: %w", p, err)
	}
	if hello.Version != protoVersion {
		err := fmt.Errorf("distsim: peer %d handshake version mismatch: peer speaks v%d, coordinator v%d", p, hello.Version, protoVersion)
		pc.fail(err.Error())
		return nil, err
	}
	wm := welcomeMsg{
		Spec:   c.cfg.Spec,
		PeerID: p,
		NPeers: c.cfg.Peers,
		Owners: c.owners,
		Resume: resume,
	}
	if resume > 0 {
		wm.Mail = c.log.mailFor(p, resume)
	}
	wb, err := json.Marshal(wm)
	if err != nil {
		pc.conn.Close()
		return nil, err
	}
	if err := pc.write(tWelcome, wb, true); err != nil {
		pc.conn.Close()
		return nil, fmt.Errorf("distsim: peer %d welcome: %w", p, err)
	}
	typ, body, err = pc.read()
	if err != nil {
		pc.conn.Close()
		return nil, fmt.Errorf("distsim: peer %d ready: %w", p, err)
	}
	if typ != tReady {
		pc.fail("expected READY")
		return nil, fmt.Errorf("distsim: peer %d sent frame %d instead of READY", p, typ)
	}
	var ready readyMsg
	if err := json.Unmarshal(body, &ready); err != nil {
		pc.fail("bad READY")
		return nil, fmt.Errorf("distsim: peer %d bad READY: %w", p, err)
	}
	if ready.Hash != c.hash {
		err := fmt.Errorf("distsim: partition map disagreement: peer %d built model %016x, coordinator %016x", p, ready.Hash, c.hash)
		pc.fail(err.Error())
		return nil, err
	}
	return pc, nil
}

// replace restores dead peer slot p from the checkpoint: wait for a
// replacement connection, replay windows [0, w) via the WELCOME resume
// payload, and — when resendGo is set — re-deliver the GO frame of the
// window the peer died in.
func (c *coord) replace(p, w int, cause error, resendGo bool) error {
	c.peers[p].conn.Close()
	c.peers[p] = nil
	if !c.cfg.Rejoin {
		return fmt.Errorf("distsim: peer %d disconnected at window %d: %w", p, w, cause)
	}
	c.logf("distsim: peer %d died at window %d (%v); waiting %v for a replacement", p, w, cause, c.cfg.RejoinTimeout)
	pc, err := c.join(p, w, c.cfg.RejoinTimeout)
	if err != nil {
		return fmt.Errorf("distsim: restoring peer %d at window %d: %w", p, w, err)
	}
	c.peers[p] = pc
	if resendGo {
		frame := binary.AppendUvarint(nil, uint64(w))
		frame = append(frame, c.log.windows[p][w]...)
		if err := pc.write(tGo, frame, true); err != nil {
			return fmt.Errorf("distsim: restored peer %d window %d: %w", p, w, err)
		}
	}
	c.logf("distsim: peer %d restored from checkpoint at window %d", p, w)
	return nil
}

// readDone reads and parses peer p's DONE frame for window w. telem is
// whatever follows the mail batch — the peer's telemetry section when
// Spec.Telem > 0, empty otherwise.
func (c *coord) readDone(p, w int) (pending int, entries []mailEntry, telem []byte, err error) {
	typ, body, err := c.peers[p].read()
	if err != nil {
		return 0, nil, nil, err
	}
	if typ == tError {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d: %s", p, body)
	}
	if typ != tDone {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d sent frame %d instead of DONE", p, typ)
	}
	gotW, k1 := binary.Uvarint(body)
	if k1 <= 0 {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d truncated DONE", p)
	}
	if int(gotW) != w {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d answered window %d during window %d", p, gotW, w)
	}
	pend, k2 := binary.Uvarint(body[k1:])
	if k2 <= 0 {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d truncated DONE", p)
	}
	count, rest, err := batchCount(body[k1+k2:])
	if err != nil {
		return 0, nil, nil, fmt.Errorf("distsim: peer %d: %w", p, err)
	}
	entries = make([]mailEntry, 0, count)
	for i := 0; i < count; i++ {
		var e mailEntry
		e, rest, err = readEntry(rest)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("distsim: peer %d: %w", p, err)
		}
		if e.dst < 0 || e.dst >= c.cfg.Spec.Shards {
			return 0, nil, nil, fmt.Errorf("distsim: peer %d mailed nonexistent shard %d", p, e.dst)
		}
		entries = append(entries, e)
	}
	return int(pend), entries, rest, nil
}

// run drives the lock-step window loop: GO out, replica step, DONE in,
// route mail; stop when the fabric is quiet or the horizon is reached.
func (c *coord) run() (Outcome, error) {
	eng := c.model.Eng
	look := eng.Lookahead()
	until := (c.model.Horizon + c.model.Drain + look - 1) / look * look
	npeers := c.cfg.Peers

	// Telemetry assembly: peers ship their owned counters at scrape
	// boundaries inside DONE frames; the coordinator accumulates them
	// into absolute snapshots and writes canonical stream windows through
	// the same Emitter the local recorder uses — byte-identical output.
	every := c.cfg.Spec.telemEvery(look)
	var emit *telemetry.Emitter
	var acc telemetry.Snapshot
	ndirs := 2 * c.model.Net.NumLinks()
	numFA := c.model.Net.NumFA()
	if every > 0 && c.cfg.Stream != nil {
		hdr, err := streamHeaderFor(c.cfg.Spec, c.model, every)
		if err != nil {
			c.abort(err)
			return Outcome{}, err
		}
		tw, err := telemetry.NewWriter(c.cfg.Stream, hdr)
		if err != nil {
			c.abort(err)
			return Outcome{}, err
		}
		emit = telemetry.NewEmitter(tw)
		acc.Dirs = make([]telemetry.DirSample, ndirs)
		acc.Sinks = make([]telemetry.SinkSample, numFA)
	}
	telemSecs := make([][]byte, npeers)

	nextOut := make([][]byte, npeers) // per peer: the next GO's mail batch
	sumPending, lastMail := -1, 0
	quietNow := func() bool {
		return sumPending == 0 && lastMail == 0 && eng.ControlsPending() == 0
	}
	w := 0
	quiet := false
	for eng.Now() < until {
		if sumPending >= 0 && quietNow() {
			quiet = true
			break
		}
		if c.cfg.OnWindow != nil {
			c.cfg.OnWindow(w)
		}
		winStart := time.Now()
		mailRaw, mailFrames := 0, 0
		for p := 0; p < npeers; p++ {
			batch := nextOut[p]
			if batch == nil {
				batch = emptyBatch
			} else {
				mailRaw += len(batch)
				mailFrames++
			}
			if err := c.log.log(p, w, batch); err != nil {
				c.abort(err)
				return Outcome{}, err
			}
			frame := binary.AppendUvarint(nil, uint64(w))
			frame = append(frame, batch...)
			if err := c.peers[p].write(tGo, frame, true); err != nil {
				if err := c.replace(p, w, err, true); err != nil {
					c.abort(err)
					return Outcome{}, err
				}
			}
		}
		// The coordinator's replica steps too: controls run here exactly
		// as on every peer, and every unowned (that is: every) shard's
		// clock advances, keeping the replica's administrative state and
		// control schedule in lock-step for the final aggregation.
		eng.StepOwned(c.none, nil)

		sumPending, lastMail = 0, 0
		for p := range nextOut {
			nextOut[p] = nil
		}
		counts := make([]int, npeers)
		totalEntries := 0
		for p := 0; p < npeers; p++ {
			pend, entries, telem, err := c.readDone(p, w)
			if err != nil {
				if err := c.replace(p, w, err, true); err != nil {
					c.abort(err)
					return Outcome{}, err
				}
				if pend, entries, telem, err = c.readDone(p, w); err != nil {
					err = fmt.Errorf("distsim: restored peer %d failed window %d again: %w", p, w, err)
					c.abort(err)
					return Outcome{}, err
				}
			}
			telemSecs[p] = telem
			if len(entries) > 0 {
				mailFrames++
			}
			sumPending += pend
			lastMail += len(entries)
			totalEntries += len(entries)
			for _, e := range entries {
				dp := c.owners[e.dst]
				if nextOut[dp] == nil {
					nextOut[dp] = []byte{}
				}
				nextOut[dp] = appendEntry(nextOut[dp], e)
				counts[dp]++
			}
		}
		for p := range nextOut {
			if nextOut[p] != nil {
				nextOut[p] = append(binary.AppendUvarint(nil, uint64(counts[p])), nextOut[p]...)
				mailRaw += len(nextOut[p])
			}
		}
		if emit != nil {
			end := eng.Now()
			if boundary := ((end-look)/every + 1) * every; boundary <= end {
				if err := c.mergeTelem(telemSecs, boundary, &acc, ndirs, numFA); err != nil {
					c.abort(err)
					return Outcome{}, err
				}
				acc.T = boundary
				for d := 0; d < ndirs; d++ {
					acc.Dirs[d].Up = c.model.Net.LinkUp(d / 2)
				}
				if err := emit.Emit(&acc); err != nil {
					err = fmt.Errorf("distsim: telemetry stream: %w", err)
					c.abort(err)
					return Outcome{}, err
				}
				c.stats.telemWindow()
			}
		}
		c.stats.window(time.Since(winStart), mailRaw, mailFrames, totalEntries)
		w++
	}
	if !quiet && sumPending >= 0 {
		quiet = quietNow()
	}
	if !quiet {
		err := fmt.Errorf("fabric did not drain: work still pending past t=%d (%d heap events)", until, sumPending)
		c.abort(err)
		return Outcome{}, err
	}
	return c.finish(w)
}

// mergeTelem folds every peer's telemetry section for one scrape
// boundary into the accumulated absolute snapshot. Each entity is owned
// by exactly one peer, so the merge is plain assignment; the count check
// verifies complete coverage.
func (c *coord) mergeTelem(secs [][]byte, want sim.Time, acc *telemetry.Snapshot, ndirs, numFA int) error {
	dirsSeen, sinksSeen := 0, 0
	for p, b := range secs {
		nb, b, err := telemUv(b)
		if err != nil {
			return fmt.Errorf("peer %d: %w", p, err)
		}
		if nb != 1 {
			return fmt.Errorf("distsim: peer %d shipped %d telemetry boundaries, coordinator expected 1", p, nb)
		}
		t, b, err := telemUv(b)
		if err != nil {
			return fmt.Errorf("peer %d: %w", p, err)
		}
		if sim.Time(t) != want {
			return fmt.Errorf("distsim: peer %d scraped at t=%d, coordinator expected t=%d", p, t, want)
		}
		nd, b, err := telemUv(b)
		if err != nil {
			return fmt.Errorf("peer %d: %w", p, err)
		}
		for i := 0; i < int(nd); i++ {
			var d, fb, fc, dr, qb uint64
			for _, v := range []*uint64{&d, &fb, &fc, &dr, &qb} {
				if *v, b, err = telemUv(b); err != nil {
					return fmt.Errorf("peer %d: %w", p, err)
				}
			}
			if d >= uint64(ndirs) {
				return fmt.Errorf("distsim: peer %d reported nonexistent link dir %d", p, d)
			}
			s := &acc.Dirs[d]
			s.FwdBytes, s.FwdCells, s.Drops, s.QueueBytes = fb, fc, dr, qb
			dirsSeen++
		}
		ns, b, err := telemUv(b)
		if err != nil {
			return fmt.Errorf("peer %d: %w", p, err)
		}
		for i := 0; i < int(ns); i++ {
			var fa, cells, bytes uint64
			for _, v := range []*uint64{&fa, &cells, &bytes} {
				if *v, b, err = telemUv(b); err != nil {
					return fmt.Errorf("peer %d: %w", p, err)
				}
			}
			if fa >= uint64(numFA) {
				return fmt.Errorf("distsim: peer %d reported nonexistent sink %d", p, fa)
			}
			acc.Sinks[fa] = telemetry.SinkSample{Cells: cells, Bytes: bytes}
			sinksSeen++
		}
		if len(b) != 0 {
			return fmt.Errorf("distsim: peer %d telemetry section has %d trailing bytes", p, len(b))
		}
	}
	if dirsSeen != ndirs || sinksSeen != numFA {
		return fmt.Errorf("distsim: telemetry coverage hole: got %d/%d dirs, %d/%d sinks",
			dirsSeen, ndirs, sinksSeen, numFA)
	}
	return nil
}

// finish collects every peer's owned counters, verifies they cover the
// model disjointly and completely, and folds the canonical digest.
func (c *coord) finish(windows int) (Outcome, error) {
	for p := range c.peers {
		if err := c.peers[p].write(tFinish, nil, false); err != nil {
			if err := c.replace(p, windows, err, false); err != nil {
				c.abort(err)
				return Outcome{}, err
			}
			if err := c.peers[p].write(tFinish, nil, false); err != nil {
				c.abort(err)
				return Outcome{}, err
			}
		}
	}
	numFA := c.model.Net.NumFA()
	ndirs := 2 * c.model.Net.NumLinks()
	nspines := 0 // only the Clos fabric has owner-reported spine tables
	if cn, ok := c.model.Net.(*fabric.Net); ok {
		nspines = cn.Topo.NumFE2
	}
	nshards := c.cfg.Spec.Shards
	sinkCells := make([]uint64, numFA)
	sinkBytes := make([]uint64, numFA)
	dirs := make([][3]uint64, ndirs)
	shardEv := make([]uint64, nshards)
	seenSink := make([]bool, numFA)
	seenDir := make([]bool, ndirs)
	seenShard := make([]bool, nshards)
	seenSpine := make([]bool, nspines)
	var out Outcome
	readReport := func(p int) (peerReport, error) {
		typ, body, err := c.peers[p].read()
		if err != nil {
			return peerReport{}, fmt.Errorf("distsim: peer %d report: %w", p, err)
		}
		if typ == tError {
			return peerReport{}, fmt.Errorf("distsim: peer %d: %s", p, body)
		}
		if typ != tReport {
			return peerReport{}, fmt.Errorf("distsim: peer %d sent frame %d instead of REPORT", p, typ)
		}
		var rep peerReport
		if err := json.Unmarshal(body, &rep); err != nil {
			return peerReport{}, fmt.Errorf("distsim: peer %d bad report: %w", p, err)
		}
		return rep, nil
	}
	for p := range c.peers {
		rep, err := readReport(p)
		if err != nil {
			// A peer dying between its last DONE and its report is
			// restorable too: the replacement replays the whole run and
			// reports from the same deterministic state.
			if rerr := c.replace(p, windows, err, false); rerr != nil {
				c.abort(rerr)
				return Outcome{}, rerr
			}
			if err := c.peers[p].write(tFinish, nil, false); err != nil {
				c.abort(err)
				return Outcome{}, err
			}
			if rep, err = readReport(p); err != nil {
				c.abort(err)
				return Outcome{}, err
			}
		}
		for _, s := range rep.Shards {
			if s.ID < 0 || s.ID >= nshards || seenShard[s.ID] || c.owners[s.ID] != p {
				return Outcome{}, fmt.Errorf("distsim: peer %d reported shard %d it does not own", p, s.ID)
			}
			seenShard[s.ID] = true
			shardEv[s.ID] = s.Processed
			out.Events += s.Processed
			out.Injected += s.Injected
			out.Delivered += s.Delivered
			out.Drops += s.DeadDrops + s.NoRouteDrops
		}
		for _, s := range rep.Sinks {
			if s.FA < 0 || s.FA >= numFA || seenSink[s.FA] {
				return Outcome{}, fmt.Errorf("distsim: peer %d double-reported sink %d", p, s.FA)
			}
			seenSink[s.FA] = true
			sinkCells[s.FA] = s.Cells
			sinkBytes[s.FA] = s.Bytes
		}
		for _, d := range rep.Dirs {
			if d.Dir < 0 || d.Dir >= ndirs || seenDir[d.Dir] {
				return Outcome{}, fmt.Errorf("distsim: peer %d double-reported link dir %d", p, d.Dir)
			}
			seenDir[d.Dir] = true
			dirs[d.Dir] = [3]uint64{d.FwdBytes, d.FwdCells, d.Drops}
			out.Drops += d.Drops
		}
		for _, s := range rep.Spines {
			if s.Spine < 0 || s.Spine >= nspines || seenSpine[s.Spine] {
				return Outcome{}, fmt.Errorf("distsim: peer %d double-reported spine %d", p, s.Spine)
			}
			seenSpine[s.Spine] = true
			out.Unreachable += s.Unreachable
		}
	}
	for s, ok := range seenShard {
		if !ok {
			return Outcome{}, fmt.Errorf("distsim: no peer reported shard %d", s)
		}
	}
	for i, ok := range seenSink {
		if !ok {
			return Outcome{}, fmt.Errorf("distsim: no peer reported sink %d", i)
		}
	}
	for d, ok := range seenDir {
		if !ok {
			return Outcome{}, fmt.Errorf("distsim: no peer reported link dir %d", d)
		}
	}
	for i, ok := range seenSpine {
		if !ok {
			return Outcome{}, fmt.Errorf("distsim: no peer reported spine %d", i)
		}
	}
	// FA liveness on a Clos is control-replicated administrative state, so
	// the coordinator's own replica supplies the second half of the
	// paper's unreachable-pairs invariant. On a graph fabric the whole
	// reachability state is control-replicated (tables reinstall via
	// barrier controls every replica runs), so the coordinator reports all
	// of it.
	if cn, ok := c.model.Net.(*fabric.Net); ok {
		out.Unreachable += cn.DeadFAs()
	} else {
		out.Unreachable += c.model.Net.UnreachablePairs()
	}
	out.Digest = foldDigest(sinkCells, sinkBytes, dirs)
	out.ShardEvents = shardEv
	c.stats.runDone()
	c.logf("distsim: run complete after %d windows, digest %016x", windows, out.Digest)
	return out, nil
}
