// Package device models the data-path throughput experiment of §6.1.1
// (Fig 8): four switch designs sharing one source RTL lineage — the
// NetFPGA reference packet switch, the NDP switch, a Stardust cell switch
// fed with non-packed cells, and the Stardust packed-cell switch — running
// at a configurable core clock over a W-byte datapath.
//
// The model prices every design in datapath cycles per packet:
//
//   - reference:  ceil(S/W) payload beats + 1 arbiter bubble per packet
//   - NDP:        ceil((S+16)/W) beats (trimmed-header metadata travels
//     in-band) + 1 bubble
//   - cells:      2 beats per 64B cell, packets quantized to whole cells
//     (a packet one byte over a cell boundary burns a nearly
//     empty cell, §3.4)
//   - packed:     2 beats per cell with cells filled across packet
//     boundaries, so cost is fractional in packets
//
// Packet boundaries and cell headers ride the sideband (TLAST/TUSER), as
// in the NetFPGA AXI4-Stream fabric. Throughput for a given packet size is
// min(1, available cycles / demanded cycles) of the wire's goodput. The
// model reproduces the anchors of §6.1.1: the reference switch reaches
// full line rate for every size only at 180 MHz, NDP misses line rate at
// 65/97/129B even at 200 MHz, and packing wins by up to ~15% / ~30% /
// ~50% against the reference / NDP / non-packed cells at 150 MHz.
package device

import (
	"math"

	"stardust/internal/analytic"
)

// Design enumerates the four compared implementations.
type Design int

// The four designs of Fig 8.
const (
	Reference Design = iota // NetFPGA 4x10GE reference switch
	NDP                     // NDP switch (reference + trimming/priority logic)
	Cells                   // Stardust datapath fed non-packed cells
	Packed                  // Stardust packed cells
)

var designNames = map[Design]string{
	Reference: "Reference Switch",
	NDP:       "NDP Switch",
	Cells:     "Switch - Cells",
	Packed:    "Stardust - Packed Cells",
}

func (d Design) String() string { return designNames[d] }

// AllDesigns lists the designs in the paper's legend order.
var AllDesigns = []Design{Reference, Cells, NDP, Packed}

// Switch models one device under test.
type Switch struct {
	Design      Design
	ClockHz     float64 // datapath clock (150e6 in Fig 8)
	BusBytes    int     // datapath width (32 for NetFPGA SUME)
	Ports       int     // 4
	PortBps     float64 // 10e9
	CellBytes   int     // 64 (two beats per table lookup, §6.1.1)
	FrameBytes  int     // in-stream per-packet framing inside packed cells
	NDPOverhead int     // extra in-band bytes processed per packet by NDP
}

// NetFPGA returns the Fig 8 configuration for the given design and clock.
func NetFPGA(d Design, clockHz float64) Switch {
	return Switch{
		Design:      d,
		ClockHz:     clockHz,
		BusBytes:    32,
		Ports:       4,
		PortBps:     10e9,
		CellBytes:   64,
		FrameBytes:  4,
		NDPOverhead: 16,
	}
}

// WireRatePPS returns the aggregate line-rate packet arrival rate for
// packets of size s (on-wire gap included).
func (sw Switch) WireRatePPS(s int) float64 {
	return float64(sw.Ports) * sw.PortBps / (8 * float64(s+analytic.EthernetGap))
}

// LineGoodputBps returns the best possible goodput at size s: the wire
// rate minus inter-packet overhead.
func (sw Switch) LineGoodputBps(s int) float64 {
	return float64(sw.Ports) * sw.PortBps * float64(s) / float64(s+analytic.EthernetGap)
}

// CyclesPerPacket returns the (possibly fractional) datapath cycles one
// packet of size s costs this design.
//
// The reference switch's per-packet arbiter turnaround overlaps with the
// payload beats of packets longer than two beats, so its cost is
// max(ceil(S/W), 3): exactly the calibration at which it sustains line
// rate for every size at 180 MHz but not at 150 MHz (§6.1.1). NDP adds a
// non-overlapped cycle for trim/priority handling plus 16B of in-band
// trimmed-header metadata.
func (sw Switch) CyclesPerPacket(s int) float64 {
	w := float64(sw.BusBytes)
	switch sw.Design {
	case Reference:
		return math.Max(math.Ceil(float64(s)/w), 3)
	case NDP:
		return math.Max(math.Ceil(float64(s+sw.NDPOverhead)/w), 3) + 1
	case Cells:
		// Packets quantized to whole cells; each cell moves in
		// CellBytes/W beats regardless of fill.
		cells := math.Ceil(float64(s+sw.FrameBytes) / float64(sw.CellBytes))
		return cells * float64(sw.CellBytes) / w
	case Packed:
		return float64(s+sw.FrameBytes) / w
	}
	panic("device: unknown design")
}

// Throughput returns the achieved fraction of line rate for packets of
// size s: available cycles over demanded cycles, capped at 1.
func (sw Switch) Throughput(s int) float64 {
	demand := sw.WireRatePPS(s) * sw.CyclesPerPacket(s)
	if demand <= sw.ClockHz {
		return 1
	}
	return sw.ClockHz / demand
}

// GoodputBps returns the delivered goodput in bits/s at packet size s
// (Fig 8a's y-axis, aggregated over the four ports).
func (sw Switch) GoodputBps(s int) float64 {
	return sw.Throughput(s) * sw.LineGoodputBps(s)
}

// MixThroughput returns the fraction of offered load delivered for a
// packet-size mix (Fig 8b): sizes[i] appears with weight weights[i]. The
// bottleneck is the shared datapath, so the fraction is capacity over
// aggregate cycle demand at line rate.
func (sw Switch) MixThroughput(sizes []int, weights []float64) float64 {
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	// Offered load: line rate with the mixed sizes. Compute the demanded
	// cycles per offered byte and compare with capacity per byte.
	var meanWire, meanCycles float64
	for i, s := range sizes {
		p := weights[i] / wsum
		meanWire += p * float64(s+analytic.EthernetGap)
		meanCycles += p * sw.CyclesPerPacket(s)
	}
	pps := float64(sw.Ports) * sw.PortBps / (8 * meanWire)
	demand := pps * meanCycles
	if demand <= sw.ClockHz {
		return 1
	}
	return sw.ClockHz / demand
}

// Fig8aRow is one x-position of Fig 8(a).
type Fig8aRow struct {
	PacketBytes int
	Gbps        map[Design]float64
}

// Fig8a evaluates all four designs at the given clock for the given packet
// sizes (nil = 64..1518 sweep).
func Fig8a(clockHz float64, sizes []int) []Fig8aRow {
	if sizes == nil {
		for s := 64; s <= 1518; s += 2 {
			sizes = append(sizes, s)
		}
	}
	rows := make([]Fig8aRow, len(sizes))
	for i, s := range sizes {
		row := Fig8aRow{PacketBytes: s, Gbps: map[Design]float64{}}
		for _, d := range AllDesigns {
			row.Gbps[d] = NetFPGA(d, clockHz).GoodputBps(s) / 1e9
		}
		rows[i] = row
	}
	return rows
}
