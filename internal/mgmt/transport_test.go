package mgmt

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"stardust/internal/sim"
)

// Tests for the sharded transport telemetry path: the barrier scrape of
// the ShardedStardustNet's per-shard counters must be synchronized by the
// parsim window barrier, exactly like the fabric scrape.
//
// The latent race this guards against: TransportMonitor reading the
// transport's per-shard counters (cells, credits, VOQ drops, reassembly
// timeouts) while shard goroutines are incrementing them mid-window.
// Scraping only in barrier context — every shard quiescent — makes the
// race structurally impossible; TestShardedTransportScrapeRaceFree fails
// under -race if that ever regresses.

func newTransportRun(t *testing.T, shards int, seed int64) *FabricRun {
	t.Helper()
	fr, err := NewFabricRun(FabricRunConfig{
		K:                 4,
		FailEvery:         300 * sim.Microsecond,
		HealAfter:         500 * sim.Microsecond,
		Seed:              seed,
		Shards:            shards,
		TransportHostsPer: 2,
		Controller: Config{
			ScrapeEvery: 100 * sim.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestShardedTransportScrapeRaceFree drives a chaos-laden sharded
// transport (TCP permutation over the sharded Stardust substrate) while a
// reader goroutine hammers the transport and fabric snapshots. Run under
// -race (the CI race job does) this is the transport counterpart of
// TestShardedScrapeRaceFree.
func TestShardedTransportScrapeRaceFree(t *testing.T) {
	fr := newTransportRun(t, 4, 1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = fr.Trans.Stats()
			_ = fr.Ctl.Stats()
			_ = fr.Ctl.Telemetry()
		}
	}()
	for i := 0; i < 12; i++ {
		fr.Advance(150 * sim.Microsecond)
	}
	close(done)
	wg.Wait()

	ts := fr.Trans.Stats()
	if ts.Scrapes == 0 {
		t.Fatal("no transport barrier scrapes happened")
	}
	if ts.CellsSent == 0 || ts.CellsDelivered == 0 || ts.CreditsSent == 0 {
		t.Fatalf("no transport traffic observed: %+v", ts)
	}
	if fr.Ctl.Stats().LinkFailures == 0 {
		t.Fatal("chaos never fired")
	}
}

// TestShardedTransportRunDeterministic: the same seed must produce
// identical barrier-scraped transport statistics at different shard
// counts — chaos, flows and scrapes are all quantized to window
// boundaries.
func TestShardedTransportRunDeterministic(t *testing.T) {
	run := func(shards int) TransportStats {
		fr := newTransportRun(t, shards, 7)
		fr.Advance(1200 * sim.Microsecond)
		return fr.Trans.Stats()
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("sharded transport stats diverged across shard counts:\n  1: %+v\n  4: %+v", a, b)
	}
	if a.CellsSent == 0 || a.DeliveredBytes == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	c := run(2)
	if c != a {
		t.Fatalf("shards=2 diverged:\n  1: %+v\n  2: %+v", a, c)
	}
}

// The transport endpoint serves the barrier snapshot; without the overlay
// it must 404 rather than panic.
func TestTransportEndpoint(t *testing.T) {
	fr := newTransportRun(t, 2, 3)
	fr.Advance(500 * sim.Microsecond)
	srv := NewServer(NewRunQueue(4, 1, 1), fr)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/transport", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /api/v1/transport = %d: %s", rec.Code, rec.Body.String())
	}
	var ts TransportStats
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Hosts != 16 || ts.CellsSent == 0 {
		t.Fatalf("unexpected transport snapshot: %+v", ts)
	}

	// Metrics must include the transport counters.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	for _, want := range []string{"stardust_transport_cells_sent_total", "stardust_transport_credits_sent_total"} {
		if !containsLine(rec.Body.String(), want) {
			t.Fatalf("metrics output missing %s", want)
		}
	}

	// No overlay: 404, not a panic.
	bare, err := NewFabricRun(FabricRunConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(NewRunQueue(4, 1, 1), bare)
	rec = httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/transport", nil))
	if rec.Code != 404 {
		t.Fatalf("transport endpoint without overlay = %d, want 404", rec.Code)
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
