// Adaptive shard rebalancing: migrate Fabric Adapters (with everything
// pinned to them — egress endpoints, host transports layered above, their
// pending events) between parsim shards at window barriers, steered by
// deterministic per-group executed-event counts.
//
// The contiguous blocks of AssignShards are the right cut for uniform
// traffic, but a hotspot (incast toward one FA, a few hot sources) piles
// several busy adapters onto one shard while others idle. Rebalancing
// meters how many events each FA's device group executed per window —
// simulated state, never wall-clock, so the measurement is identical at
// every shard count and on every machine — and when the heaviest shard
// exceeds the lightest by a configured ratio, moves the hottest movable
// group over, greedily and deterministically.
//
// Migration preserves byte-determinism by construction. An FA's group is
// the closure of state only its own events touch: the adapter, its uplink
// serialization queues, its egress endpoint, and (via fabric.Net.OnMigrateFA)
// the transport state of the hosts behind it. All of the group's pending
// events are tagged — lane-keyed deliveries through the kernel's lane-group
// table, causal work by group inheritance — so sim.ExtractGroup can lift
// them out of the old shard's event store in (time, lane, seq) order and
// sim.InjectOrdered can replay them into the new shard's with their
// relative order intact. Events of different groups at the same instant on
// the default lane may interleave differently after a move, but such
// events touch disjoint state and emit only lane-keyed messages (the same
// commutativity argument that makes shard-count independence hold), so
// every observable outcome is unchanged. FEs are the fabric's shared core
// and never move (group 0).
package fabric

import (
	"fmt"

	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// GroupOfFA returns the kernel event-group id of Fabric Adapter fa's
// device group (FA fa, its egress, and any transport state pinned to it).
// Group 0 is the immovable remainder (FEs, links owned by FEs).
func (n *Net) GroupOfFA(fa int) int32 { return int32(fa) + 1 }

// LaneGroups returns the lane→group table installed on every shard's
// Simulator: tbl[lane] is the group owning deliveries on that lane. A
// transport layered on the fabric extends this table with its own lanes
// and re-installs it (sim.SetLaneGroups) on every shard.
func (n *Net) LaneGroups() []int32 { return n.laneGroups }

// OnMigrateFA registers fn to run whenever MigrateFA moves an adapter,
// after the fabric's own state is re-pinned but within the same barrier.
// A transport layered on the fabric uses this to move the hosts behind
// the adapter along with it.
func (n *Net) OnMigrateFA(fn func(fa, from, to int)) {
	n.migrateHooks = append(n.migrateHooks, fn)
}

// Migrations counts completed MigrateFA moves (telemetry; barrier context).
func (n *Net) Migrations() uint64 { return n.migrations }

// MigrateFA moves Fabric Adapter fa's device group to shard `to`: its
// pending events (fabric and any registered transport's alike — they share
// the group id) are lifted from the old shard's event store and replayed
// into the new one in order, and every queue, propagation hop and counter
// home of the group is re-pinned. Barrier context only, sharded mode only.
func (n *Net) MigrateFA(fa, to int) error {
	if n.eng == nil {
		return fmt.Errorf("fabric: MigrateFA needs a sharded fabric")
	}
	n.checkBarrier()
	if to < 0 || to >= n.eng.Shards() {
		return fmt.Errorf("fabric: shard %d out of range [0,%d)", to, n.eng.Shards())
	}
	from := n.assign.FA[fa]
	if from == to {
		return nil
	}
	// Move the group's pending events first: the barrier has already
	// flushed every mailbox, so the old shard's store holds all of them.
	evs := n.shards[from].sm.ExtractGroup(n.GroupOfFA(fa))
	n.shards[to].sm.InjectOrdered(evs)

	n.assign.FA[fa] = to
	sh := n.shards[to]
	n.fas[fa].sh = sh
	n.egress[fa].sh = sh
	// Re-pin the adapter's links: uplink queues serialize on the FA's
	// shard and their propagation hops re-source from it; down links
	// deliver onto it, so their propagation hops re-target it.
	for li, lk := range n.Topo.Links {
		if lk.A.Kind != topo.KindFA || lk.A.Index != fa {
			continue
		}
		fe := n.fe1[lk.B.Index]
		up, dn := n.links[2*li], n.links[2*li+1]
		up.q.Sim = sh.sm
		up.route[1].(*netsim.LanePipe).Sched = n.eng.Shard(to).To(fe.sh.id)
		dn.sh = sh
		dn.route[1].(*netsim.LanePipe).Sched = n.eng.Shard(fe.sh.id).To(to)
	}
	n.hairpin[fa][0].(*netsim.LanePipe).Sched = sh.sm
	n.migrations++
	for _, fn := range n.migrateHooks {
		fn(fa, from, to)
	}
	return nil
}

// RebalanceConfig tunes the adaptive planner.
type RebalanceConfig struct {
	// Interval is the number of windows between planning decisions.
	Interval int
	// Ratio triggers a move when the heaviest shard's per-interval event
	// count exceeds the lightest's by this factor (> 1).
	Ratio float64
	// MaxMoves bounds migrations per decision (hysteresis against
	// thrashing).
	MaxMoves int
}

// DefaultRebalance returns the planner configuration used by the
// scenarios: decide every 8 windows, act on a 4:3 imbalance, move at most
// two groups per decision.
func DefaultRebalance() RebalanceConfig {
	return RebalanceConfig{Interval: 8, Ratio: 4.0 / 3.0, MaxMoves: 2}
}

// EnableRebalancing installs the adaptive planner as a barrier hook: every
// cfg.Interval windows it meters per-group executed-event counts (via the
// kernel's group meters — deterministic simulated state), and while the
// heaviest shard exceeds the lightest by cfg.Ratio, migrates the hottest
// group whose move strictly improves the balance. All tie-breaks are by
// lowest index, so the decision sequence is a pure function of the
// simulated traffic: the same seed gives the same migrations, and a
// single-shard engine never moves anything — which is how rebalanced runs
// stay byte-identical across shard counts.
func (n *Net) EnableRebalancing(cfg RebalanceConfig) error {
	if n.eng == nil {
		return fmt.Errorf("fabric: rebalancing needs a sharded fabric")
	}
	if cfg.Interval < 1 || cfg.Ratio <= 1 || cfg.MaxMoves < 1 {
		return fmt.Errorf("fabric: bad rebalance config %+v", cfg)
	}
	numG := n.Topo.NumFA + 1
	lastGroup := make([]uint64, numG) // per group, summed across shards
	lastProc := make([]uint64, n.eng.Shards())
	windows := 0
	n.eng.OnBarrier(func(now sim.Time) {
		windows++
		if windows%cfg.Interval != 0 || n.eng.Shards() < 2 {
			return
		}
		// Per-group and per-shard event counts over the interval. A group
		// sits on one shard between decisions, so summing its meter across
		// shards attributes the whole delta to its current home.
		groupDelta := make([]uint64, numG)
		load := make([]uint64, n.eng.Shards())
		for si, sh := range n.shards {
			load[si] = sh.sm.Processed - lastProc[si]
			lastProc[si] = sh.sm.Processed
		}
		for g := 1; g < numG; g++ {
			var total uint64
			for _, sh := range n.shards {
				total += sh.sm.GroupProcessed(int32(g))
			}
			groupDelta[g] = total - lastGroup[g]
			lastGroup[g] = total
		}
		for move := 0; move < cfg.MaxMoves; move++ {
			heavy, light := 0, 0
			for si := range load {
				if load[si] > load[heavy] {
					heavy = si
				}
				if load[si] < load[light] {
					light = si
				}
			}
			if float64(load[heavy]) <= cfg.Ratio*float64(load[light]) {
				return
			}
			// Hottest group on the heavy shard whose move strictly improves
			// the pair; first (lowest FA) wins ties.
			best := -1
			for fa := 0; fa < n.Topo.NumFA; fa++ {
				if n.assign.FA[fa] != heavy {
					continue
				}
				d := groupDelta[fa+1]
				if d == 0 || load[light]+d >= load[heavy] {
					continue
				}
				if best < 0 || d > groupDelta[best+1] {
					best = fa
				}
			}
			if best < 0 {
				return
			}
			if err := n.MigrateFA(best, light); err != nil {
				panic(err) // barrier context with validated shards; unreachable
			}
			load[heavy] -= groupDelta[best+1]
			load[light] += groupDelta[best+1]
		}
	})
	return nil
}

// ShardEvents returns the cumulative executed-event count of every shard's
// event loop — the imbalance evidence the parscale scenario reports.
// Barrier context only.
func (n *Net) ShardEvents() []uint64 {
	out := make([]uint64, len(n.shards))
	for i, sh := range n.shards {
		out[i] = sh.sm.Processed
	}
	return out
}
