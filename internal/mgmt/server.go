package mgmt

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"stardust/internal/distsim"
	"stardust/internal/engine"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// Server is stardustd's HTTP face: scenario metadata, run submission
// over the bounded queue, run progress streaming, live fabric telemetry
// and events, and a Prometheus-style /metrics endpoint. The fabric run
// is optional (nil when the daemon serves scenario runs only).
type Server struct {
	mux     *http.ServeMux
	q       *RunQueue
	run     *FabricRun
	started time.Time
}

// NewServer wires the routes. fr may be nil.
func NewServer(q *RunQueue, fr *FabricRun) *Server {
	s := &Server{mux: http.NewServeMux(), q: q, run: fr, started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /api/v1/scenarios", s.scenarios)
	s.mux.HandleFunc("POST /api/v1/runs", s.submit)
	s.mux.HandleFunc("GET /api/v1/runs", s.listRuns)
	s.mux.HandleFunc("GET /api/v1/runs/{id}", s.getRun)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/result", s.getResult)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/stream", s.streamRun)
	s.mux.HandleFunc("GET /api/v1/fabric", s.fabricInfo)
	s.mux.HandleFunc("GET /api/v1/fabric/telemetry", s.telemetry)
	s.mux.HandleFunc("GET /api/v1/fabric/events", s.events)
	s.mux.HandleFunc("GET /api/v1/fabric/anomalies", s.anomalies)
	s.mux.HandleFunc("GET /api/v1/transport", s.transport)
	s.mux.HandleFunc("GET /api/v1/telemetry/stream", s.telemetryStream)
	s.mux.HandleFunc("GET /api/v1/telemetry/findings", s.telemetryFindings)
	s.mux.HandleFunc("POST /api/v1/replay", s.replay)
	s.mux.HandleFunc("GET /api/v1/distsim", s.distsimStats)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	// Live profiling of the daemon (the server uses its own mux, so the
	// net/http/pprof handlers are wired explicitly rather than relying on
	// that package's DefaultServeMux side effect):
	//
	//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
		"fabric": s.run != nil,
	})
}

// scenarioInfo is the API face of one registry entry — the same
// metadata engine's -list prints, structured.
type scenarioInfo struct {
	Name   string            `json:"name"`
	Desc   string            `json:"desc"`
	Params []engine.ParamDoc `json:"params,omitempty"`
}

func (s *Server) scenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, sc := range engine.List() {
		out = append(out, scenarioInfo{Name: sc.Name, Desc: sc.Desc, Params: sc.ParamDocs()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, cached, err := s.q.Submit(req)
	switch {
	case err == ErrQueueFull:
		writeErr(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

func (s *Server) listRuns(w http.ResponseWriter, r *http.Request) {
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	writeJSON(w, http.StatusOK, s.q.List(max))
}

func (s *Server) getRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) getResult(w http.ResponseWriter, r *http.Request) {
	out, state, ok := s.q.Result(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	if state != JobDone {
		writeErr(w, http.StatusConflict, "run %s is %s", r.PathValue("id"), state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// streamRun emits the job's progress as NDJSON, following the job until
// it finishes (or the client goes away). Each line is one ProgressEvent;
// the final line is the job snapshot.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no run %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		job, ok := s.q.Get(id)
		if !ok {
			return
		}
		for _, p := range job.Progress[sent:] {
			enc.Encode(p)
			sent++
		}
		if job.State == JobDone || job.State == JobFailed {
			enc.Encode(job)
			if fl != nil {
				fl.Flush()
			}
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (s *Server) needFabric(w http.ResponseWriter) bool {
	if s.run == nil {
		writeErr(w, http.StatusNotFound, "no fabric run attached (start stardustd with -fabric-k)")
		return false
	}
	return true
}

func (s *Server) fabricInfo(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	info := map[string]any{
		"config":    s.run.Cfg,
		"inventory": s.run.Ctl.Inventory(),
		"stats":     s.run.Ctl.Stats(),
	}
	if s.run.Rec != nil {
		info["telemetry_stream"] = s.run.Rec.Stats()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) telemetry(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	qs := r.URL.Query()
	if ls := qs.Get("link"); ls != "" {
		link, err := strconv.Atoi(ls)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad link %q", ls)
			return
		}
		dir, _ := strconv.Atoi(qs.Get("dir"))
		series, err := s.run.Ctl.LinkSeries(link, dir)
		if err != nil {
			writeErr(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"link": link, "dir": dir, "series": series})
		return
	}
	writeJSON(w, http.StatusOK, s.run.Ctl.Telemetry())
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	bus := s.run.Ctl.Bus()
	evs := bus.Since(since, max)
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": bus.LastSeq(),
		"events":   evs,
		"bus":      bus.Stats(),
	})
}

func (s *Server) needRecorder(w http.ResponseWriter) bool {
	if s.run == nil || s.run.Rec == nil {
		writeErr(w, http.StatusNotFound, "no telemetry recorder attached (start stardustd with -fabric-telem)")
		return false
	}
	return true
}

// telemetryStream downloads the recorded STREC1 stream as captured so
// far — a consistent prefix of the durable trace, replayable offline.
func (s *Server) telemetryStream(w http.ResponseWriter, r *http.Request) {
	if !s.needRecorder(w) {
		return
	}
	data := s.run.TelemBuf.Bytes()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=\"fabric.strec\"")
	if s.run.TelemBuf.Truncated() {
		w.Header().Set("X-Stardust-Stream-Truncated", "true")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// telemetryFindings serves the online analyzers' findings: a JSON page
// by default, or an NDJSON live tail with ?follow=1 (one finding per
// line as the analyzers emit them, until the client disconnects).
func (s *Server) telemetryFindings(w http.ResponseWriter, r *http.Request) {
	if !s.needRecorder(w) {
		return
	}
	log := s.run.Findings
	since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	if max <= 0 {
		max = 256
	}
	if r.URL.Query().Get("follow") == "" {
		fs, next := log.Since(since, max)
		writeJSON(w, http.StatusOK, map[string]any{
			"total":    log.Total(),
			"next":     next,
			"findings": fs,
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := since
	for {
		fs, next := log.Since(cursor, max)
		for i := range fs {
			enc.Encode(&fs[i])
		}
		if len(fs) > 0 && fl != nil {
			fl.Flush()
		}
		cursor = next
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// replayOverrides parses the what-if knobs off a replay request's query
// string into distsim overrides.
func replayOverrides(r *http.Request) (distsim.Overrides, error) {
	var ov distsim.Overrides
	q := r.URL.Query()
	var err error
	geti := func(key string) int {
		if err != nil || q.Get(key) == "" {
			return 0
		}
		var v int
		if v, err = strconv.Atoi(q.Get(key)); err != nil {
			err = fmt.Errorf("bad %s %q", key, q.Get(key))
		}
		return v
	}
	getf := func(key string) float64 {
		if err != nil || q.Get(key) == "" {
			return 0
		}
		var v float64
		if v, err = strconv.ParseFloat(q.Get(key), 64); err != nil {
			err = fmt.Errorf("bad %s %q", key, q.Get(key))
		}
		return v
	}
	ov.Shards = geti("shards")
	ov.K = geti("k")
	ov.Seed = int64(geti("seed"))
	ov.Load = getf("load")
	ov.Hotspot = getf("hotspot")
	ov.FailAt = sim.Time(geti("fail_at_ps"))
	ov.HealAt = sim.Time(geti("heal_at_ps"))
	for _, ls := range q["fail_link"] {
		lk, cerr := strconv.Atoi(ls)
		if cerr != nil {
			return ov, fmt.Errorf("bad fail_link %q", ls)
		}
		ov.FailLinks = append(ov.FailLinks, lk)
	}
	return ov, err
}

// replay is the digital-twin endpoint: POST a recorded STREC1 stream
// (the body), optionally with what-if overrides as query parameters
// (fail_link, k, seed, shards, load, hotspot, fail_at_ps, heal_at_ps),
// and the daemon re-drives the fabric from the stream's embedded spec
// and returns the divergence report. An unchanged replay of a recorded
// run reports zero divergence; anything else is exactly the effect of
// the overrides.
func (s *Server) replay(w http.ResponseWriter, r *http.Request) {
	stream, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading stream body: %v", err)
		return
	}
	if len(stream) == 0 {
		writeErr(w, http.StatusBadRequest,
			"empty body: POST a recorded STREC1 stream (record one with the trace/record scenario)")
		return
	}
	ov, err := replayOverrides(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	div, outc, replayed, err := distsim.Replay(stream, ov)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "replay failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"divergence":     div,
		"summary":        div.String(),
		"overrides":      ov,
		"outcome":        outc,
		"replayed_bytes": len(replayed),
	})
}

// distsimStats serves the distributed coordinator's window-loop metrics
// as JSON (the same counters /metrics renders in Prometheus form).
func (s *Server) distsimStats(w http.ResponseWriter, r *http.Request) {
	snap := distsim.DefaultStats.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"coord":             snap,
		"barrier_seconds":   snap.BarrierLatency,
		"window_mail_bytes": snap.WindowMailBytes,
	})
}

func (s *Server) anomalies(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.run.Ctl.Anomalies())
}

// transport serves the barrier-scraped counters of the sharded Stardust
// transport overlay.
func (s *Server) transport(w http.ResponseWriter, r *http.Request) {
	if s.run == nil || s.run.Trans == nil {
		writeErr(w, http.StatusNotFound, "no transport overlay attached (start stardustd with -transport-hosts-per)")
		return
	}
	writeJSON(w, http.StatusOK, s.run.Trans.Stats())
}

// metrics is the Prometheus text exposition: queue and cache counters,
// and — when a fabric run is attached — the chassis aggregates including
// the failure/recovery event counters.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	qs := s.q.Stats()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	counter("stardustd_runs_submitted_total", "scenario-run submissions", float64(qs.Submitted))
	counter("stardustd_runs_cache_hits_total", "submissions served from the content-addressed result cache", float64(qs.CacheHits))
	counter("stardustd_runs_completed_total", "scenario runs completed", float64(qs.Completed))
	counter("stardustd_runs_failed_total", "scenario runs failed", float64(qs.Failed))
	counter("stardustd_runs_rejected_total", "submissions rejected by the bounded queue", float64(qs.Rejected))
	gauge("stardustd_runs_queued", "jobs waiting in the bounded queue", float64(qs.Depth))
	gauge("stardustd_runs_running", "jobs currently executing", float64(qs.Running))
	gauge("stardustd_run_queue_capacity", "bounded queue capacity", float64(qs.Capacity))
	// Distributed-coordinator metrics are process-wide (any distsim run
	// this daemon coordinated), so they render with or without a fabric.
	ds := distsim.DefaultStats.Snapshot()
	counter("stardust_distsim_runs_total", "distributed runs coordinated", float64(ds.Runs))
	counter("stardust_distsim_windows_total", "lock-step windows driven by the coordinator", float64(ds.Windows))
	counter("stardust_distsim_telemetry_windows_total", "telemetry stream windows emitted by the coordinator", float64(ds.TelemetryWindows))
	counter("stardust_distsim_mail_frames_total", "GO/DONE frames carrying cross-peer mail", float64(ds.MailFrames))
	counter("stardust_distsim_mail_entries_total", "cross-peer mail entries relayed", float64(ds.MailEntries))
	counter("stardust_distsim_raw_bytes_total", "frame body bytes before compression", float64(ds.RawBytes))
	counter("stardust_distsim_wire_bytes_total", "bytes on the wire, frame headers included", float64(ds.WireBytes))
	gauge("stardust_distsim_compression_ratio", "raw/wire byte ratio of coordinator traffic", ds.CompressionRatio)
	telemetry.WriteProm(w, "stardust_distsim_barrier_seconds", "wall-clock latency of one lock-step window barrier", ds.BarrierLatency)
	telemetry.WriteProm(w, "stardust_distsim_window_mail_bytes", "raw mail batch bytes relayed per window", ds.WindowMailBytes)
	if s.run == nil {
		return
	}
	st := s.run.Ctl.Stats()
	gauge("stardust_fabric_sim_seconds", "simulated time of the managed fabric", st.Time.Seconds())
	counter("stardust_mgmt_scrapes_total", "telemetry scrapes", float64(st.Scrapes))
	counter("stardust_fabric_cells_injected_total", "cells injected into the fabric", float64(st.Injected))
	counter("stardust_fabric_cells_delivered_total", "cells delivered to their destination FA", float64(st.Delivered))
	counter("stardust_fabric_cells_dropped_total", "cells lost in the fabric", float64(st.Drops))
	gauge("stardust_fabric_links", "full-duplex serial links", float64(st.Links))
	gauge("stardust_fabric_links_down", "links currently failed", float64(st.LinksDown))
	gauge("stardust_fabric_unreachable_pairs", "reachability holes ((spine,FA) pairs with no live path)", float64(st.Unreachable))
	gauge("stardust_fabric_queue_bytes", "bytes queued across all link serializers", float64(st.QueueBytes))
	counter("stardust_fabric_link_failures_total", "link failure events", float64(st.LinkFailures))
	counter("stardust_fabric_link_recoveries_total", "link recovery events", float64(st.LinkRecovers))
	counter("stardust_mgmt_reach_updates_total", "reachability withdrawals/readvertisements observed at the spine", float64(st.ReachUpdates))
	counter("stardust_mgmt_events_total", "management events published", float64(s.run.Ctl.Bus().LastSeq()))
	bs := s.run.Ctl.Bus().Stats()
	counter("stardust_mgmt_events_dropped_total", "events lost to full subscriber channels", float64(bs.Dropped))
	counter("stardust_mgmt_events_evicted_total", "retained events overwritten by ring wrap-around", float64(bs.Evicted))
	gauge("stardust_mgmt_event_subscribers", "live event bus subscribers", float64(bs.Subscribers))
	gauge("stardust_mgmt_anomalies", "active anomaly findings", float64(len(s.run.Ctl.Anomalies())))
	if s.run.Rec != nil {
		rs := s.run.Rec.Stats()
		counter("stardust_telemetry_windows_total", "STREC1 windows recorded", float64(rs.Windows))
		gauge("stardust_telemetry_stream_bytes", "recorded stream size in memory", float64(rs.Bytes))
		counter("stardust_telemetry_findings_total", "online analyzer findings", float64(rs.Findings))
	}
	if s.run.Trans == nil {
		return
	}
	ts := s.run.Trans.Stats()
	counter("stardust_transport_scrapes_total", "transport barrier scrapes", float64(ts.Scrapes))
	counter("stardust_transport_cells_sent_total", "cells fragmented by the source adapters", float64(ts.CellsSent))
	counter("stardust_transport_cells_delivered_total", "cells reassembled at destination adapters", float64(ts.CellsDelivered))
	counter("stardust_transport_credits_sent_total", "credit grants issued by the egress schedulers", float64(ts.CreditsSent))
	counter("stardust_transport_voq_drops_total", "ingress VOQ tail-drops", float64(ts.VOQDrops))
	counter("stardust_transport_reasm_timeouts_total", "reassembly-timer packet discards", float64(ts.ReasmTimeouts))
	counter("stardust_transport_delivered_bytes_total", "packet bytes delivered in order", float64(ts.DeliveredBytes))
}
