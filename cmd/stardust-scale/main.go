// Command stardust-scale regenerates the paper's analytical tables and
// figures: Fig 2 (scalability), Table 2 (element counts), Fig 3 (required
// parallelism), Fig 10d (silicon area), Fig 11 (cost and power) and
// Appendix E (resilience timing).
package main

import (
	"flag"
	"fmt"
	"os"

	"stardust/internal/experiments"
	"stardust/internal/topo"
)

func main() {
	fig := flag.String("fig", "all", "which output: 2, 3, 10d, 11, table2, appE, or all")
	k := flag.Int("k", 8, "switch radix for -fig table2")
	t := flag.Int("t", 4, "ToR uplink ports for -fig table2")
	l := flag.Int("l", 2, "links per bundle for -fig table2")
	flag.Parse()

	w := os.Stdout
	show := func(name string) bool { return *fig == "all" || *fig == name }
	if show("2") {
		experiments.WriteFig2(w)
		fmt.Fprintln(w)
	}
	if show("table2") {
		experiments.WriteTable2(w, topo.Params{K: *k, T: *t, L: *l})
		fmt.Fprintln(w)
	}
	if show("3") {
		experiments.WriteFig3(w, nil)
		fmt.Fprintln(w)
	}
	if show("10d") {
		experiments.WriteFig10d(w)
		fmt.Fprintln(w)
	}
	if show("11") {
		if err := experiments.WriteFig11(w, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if show("appE") {
		experiments.WriteAppendixE(w)
	}
}
