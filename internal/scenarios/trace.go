package scenarios

// Digital-twin scenarios over the STREC1 telemetry pipeline: trace/record
// executes a fabric run while exporting its canonical telemetry stream
// (in-process at any shard count, or distributed with -peers — the bytes
// are identical either way, which is what the CI telemetry job diffs);
// trace/replay ingests a recorded stream, re-drives the fabric from the
// embedded spec with optional what-if overrides (fail a link, change K,
// seed, load), and reports the divergence between recorded and replayed
// counters. An unchanged replay is byte-identical — zero divergence.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"

	"stardust/internal/distsim"
	"stardust/internal/distsim/devnet"
	"stardust/internal/engine"
	"stardust/internal/telemetry"
)

// traceSpec assembles the recording spec from the scenario parameters.
func traceSpec(c engine.Context) distsim.Spec {
	return distsim.Spec{
		K:         c.Params.Int("k", 4),
		Topo:      effectiveTopo(c),
		Seed:      c.Seed,
		Shards:    effectiveShards(c),
		Dur:       usTime(c.Params.Int("dur_us", 200)),
		Load:      c.Params.Float("load", 0.5),
		CellBytes: c.Params.Int("cell", 512),
		Hotspot:   c.Params.Float("hotspot", 1),
		FailN:     c.Params.Int("fail", 0),
		FailAt:    usTime(c.Params.Int("fail_us", 0)),
		HealAt:    usTime(c.Params.Int("heal_us", 0)),
		Telem:     usTime(c.Params.Int("telem_us", 20)),
	}
}

// runRecord produces the stream for spec: in-process goroutine shards, or
// a distributed coordinator when the run was started with -peers. Both
// paths emit through the same telemetry.Emitter, so the bytes agree.
func runRecord(spec distsim.Spec, c engine.Context) ([]byte, distsim.Outcome, error) {
	var buf bytes.Buffer
	if c.DistPeers > 0 {
		l, err := distsim.Listen(c.DistListen)
		if err != nil {
			return nil, distsim.Outcome{}, err
		}
		fmt.Fprintf(os.Stderr, "distsim: coordinator listening on %s for %d peer(s)\n", l.Addr(), c.DistPeers)
		out, err := distsim.Serve(l, distsim.CoordConfig{
			Spec:   spec,
			Peers:  c.DistPeers,
			Rejoin: true,
			Stream: &buf,
		})
		return buf.Bytes(), out, err
	}
	out, err := distsim.Record(spec, &buf)
	return buf.Bytes(), out, err
}

// distRecord serves spec to npeers forked peer processes (the same
// devnet seam fabric/distscale uses; the hosting main or TestMain must
// call distsim.MaybeRunPeer) and returns the stream the coordinator
// emitted.
func distRecord(spec distsim.Spec, npeers int) ([]byte, error) {
	l, err := distsim.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("trace/record: loopback listen: %w", err)
	}
	addr := l.Addr().String()
	peers := make([]*devnet.Peer, 0, npeers)
	defer func() {
		for _, p := range peers {
			p.Kill()
			p.Wait()
		}
	}()
	for i := 0; i < npeers; i++ {
		p, err := devnet.Spawn(addr)
		if err != nil {
			l.Close()
			return nil, err
		}
		peers = append(peers, p)
	}
	var buf bytes.Buffer
	if _, err := distsim.Serve(l, distsim.CoordConfig{Spec: spec, Peers: npeers, Stream: &buf}); err != nil {
		return nil, err
	}
	for _, p := range peers {
		if werr := p.Wait(); werr != nil {
			return nil, fmt.Errorf("trace/record: peer exited uncleanly: %w", werr)
		}
	}
	peers = nil
	return buf.Bytes(), nil
}

// streamDigest fingerprints a stream for the deterministic text report.
func streamDigest(stream []byte) uint64 {
	h := fnv.New64a()
	h.Write(stream)
	return h.Sum64()
}

// streamShape counts the records in a stream for the report.
func streamShape(stream []byte) (windows, events int, err error) {
	r := telemetry.NewReader(bytes.NewReader(stream))
	for {
		w, e, rerr := r.Next()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return windows, events, nil
			}
			return windows, events, rerr
		}
		if w != nil {
			windows++
		}
		if e != nil {
			events++
		}
	}
}

// addStreamMetrics emits the deterministic stream identity: shape, size
// and content digest — the values the CI determinism matrix diffs across
// {workers}×{shards} and against the 2-peer distributed run.
func addStreamMetrics(res *engine.Result, stream []byte) error {
	windows, events, err := streamShape(stream)
	if err != nil {
		return fmt.Errorf("recorded stream does not parse: %w", err)
	}
	d := streamDigest(stream)
	res.Add("stream_bytes", float64(len(stream)), "B")
	res.Add("stream_windows", float64(windows), "")
	res.Add("stream_events", float64(events), "")
	res.Add("stream_digest_lo", float64(uint32(d)), "")
	res.Add("stream_digest_hi", float64(d>>32), "")
	return nil
}

// replayOverrides assembles the what-if knobs from scenario parameters.
// All default to "keep the recorded value".
func traceOverrides(c engine.Context) (distsim.Overrides, error) {
	ov := distsim.Overrides{
		Shards:  c.Params.Int("replay_shards", 0),
		K:       c.Params.Int("new_k", 0),
		Seed:    int64(c.Params.Int("new_seed", 0)),
		Load:    c.Params.Float("new_load", 0),
		Hotspot: c.Params.Float("new_hotspot", 0),
		FailAt:  usTime(c.Params.Int("fail_at_us", 0)),
		HealAt:  usTime(c.Params.Int("heal_at_us", 0)),
	}
	for _, ls := range splitList(c.Params.Str("fail_link", "")) {
		var lk int
		if _, err := fmt.Sscanf(ls, "%d", &lk); err != nil {
			return ov, fmt.Errorf("bad fail_link %q", ls)
		}
		ov.FailLinks = append(ov.FailLinks, lk)
	}
	return ov, nil
}

func init() {
	engine.Register(engine.Scenario{
		Name: "trace/record",
		Desc: "record a fabric run as a durable STREC1 telemetry stream (byte-identical at any shard/worker/peer count) and run the offline analyzers over it",
		Defaults: engine.Params{
			"k": "4", "shards": "0", "topo": "", "dur_us": "200", "load": "0.5", "cell": "512",
			"hotspot": "1", "fail": "0", "fail_us": "0", "heal_us": "0",
			"telem_us": "20", "out": "", "peers": "",
		},
		Docs: map[string]string{
			"k":        "fat-tree K sizing the Clos",
			"shards":   "event-loop shards; 0 = the -shards flag. Never changes the stream bytes",
			"topo":     "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag",
			"dur_us":   "injection duration in µs",
			"load":     "offered load per FA as a fraction of its uplink capacity",
			"cell":     "cell size in bytes",
			"hotspot":  "boost factor for the first quarter of the FAs (>1 = skewed matrix)",
			"fail":     "seed-chosen links to fail at fail_us (healed at heal_us)",
			"fail_us":  "failure instant in µs",
			"heal_us":  "heal instant in µs",
			"telem_us": "scrape period in µs (rounded up to whole lookahead windows)",
			"out":      "file to write the stream to (empty = in-memory only)",
			"peers":    "comma list of peer-process counts to fork and verify stream byte-identity against (each must be <= the shard count)",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			spec := traceSpec(c)
			stream, outc, err := runRecord(spec, c)
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("k", float64(spec.K), "")
			res.Add("injected_cells", float64(outc.Injected), "")
			res.Add("delivered_cells", float64(outc.Delivered), "")
			res.Add("dropped_cells", float64(outc.Drops), "")
			if err := addStreamMetrics(&res, stream); err != nil {
				return engine.Result{}, err
			}
			// Offline analytics over the just-recorded stream: the same
			// Analyzer stages the live daemon runs online.
			findings, err := telemetry.Analyze(bytes.NewReader(stream), nil, telemetry.DefaultAnalyzers()...)
			if err != nil {
				return engine.Result{}, fmt.Errorf("trace/record: offline analysis: %w", err)
			}
			critical := 0
			for _, f := range findings {
				if f.Severity == telemetry.SevCritical {
					critical++
				}
			}
			res.Add("findings", float64(len(findings)), "")
			res.Add("findings_critical", float64(critical), "")
			if out := c.Params.Str("out", ""); out != "" {
				if err := os.WriteFile(out, stream, 0o644); err != nil {
					return engine.Result{}, err
				}
			}
			windows, events, _ := streamShape(stream)
			var b strings.Builder
			fmt.Fprintf(&b, "trace/record K=%d%s%s: %d windows, %d link events, %d bytes, digest %016x\n",
				spec.K, topoLabel(c), shardLabel(c), windows, events, len(stream), streamDigest(stream))
			fmt.Fprintf(&b, "  %d cells injected, %d delivered, %d dropped; %d analyzer findings (%d critical)\n",
				outc.Injected, outc.Delivered, outc.Drops, len(findings), critical)
			for _, ps := range splitList(c.Params.Str("peers", "")) {
				np, aerr := strconv.Atoi(ps)
				if aerr != nil || np < 1 || np > spec.Shards {
					return engine.Result{}, fmt.Errorf("trace/record: peer count %q must be in [1, shards=%d]", ps, spec.Shards)
				}
				dstream, err := distRecord(spec, np)
				if err != nil {
					return engine.Result{}, err
				}
				if !bytes.Equal(dstream, stream) {
					return engine.Result{}, fmt.Errorf("trace/record: %d-peer stream diverged from in-process: %d vs %d bytes, digest %016x vs %016x",
						np, len(dstream), len(stream), streamDigest(dstream), streamDigest(stream))
				}
				res.Add(fmt.Sprintf("stream_match_%dpeers", np), 1, "")
				fmt.Fprintf(&b, "  %d peer processes: stream byte-identical\n", np)
			}
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "trace/replay",
		Desc: "digital-twin replay: re-drive the fabric from a recorded stream (unchanged = zero divergence) with optional what-if overrides, and report the divergence",
		Defaults: engine.Params{
			"in": "", "expect_zero": "false", "replay_shards": "0",
			"fail_link": "", "fail_at_us": "0", "heal_at_us": "0",
			"new_k": "0", "new_seed": "0", "new_load": "0", "new_hotspot": "0",
			// Inline-record parameters, used when in is empty:
			"k": "4", "shards": "0", "topo": "", "dur_us": "200", "load": "0.5", "cell": "512",
			"hotspot": "1", "fail": "0", "fail_us": "0", "heal_us": "0", "telem_us": "20",
		},
		Docs: map[string]string{
			"topo":          "inline record: topology family sized by k (clos, sshuffle, star, or a full spec); empty = the -topo flag",
			"in":            "recorded stream file (empty = record one inline with the k/dur_us/... parameters)",
			"expect_zero":   "true fails the run unless the replay reports zero divergence",
			"replay_shards": "shard count for the replay execution (0 = recorded); never affects the divergence",
			"fail_link":     "topology links to fail during the replay (comma list) — the what-if knob",
			"fail_at_us":    "what-if failure instant in µs (0 = a quarter into the run)",
			"heal_at_us":    "what-if heal instant in µs (0 = never)",
			"new_k":         "override the fabric K (0 = recorded)",
			"new_seed":      "override the traffic seed (0 = recorded)",
			"new_load":      "override the offered load (0 = recorded)",
			"new_hotspot":   "override the hotspot factor (0 = recorded)",
			"k":             "inline record: fat-tree K",
			"shards":        "inline record: event-loop shards; 0 = the -shards flag",
			"dur_us":        "inline record: injection duration in µs",
			"load":          "inline record: offered load",
			"cell":          "inline record: cell size in bytes",
			"hotspot":       "inline record: hotspot factor",
			"fail":          "inline record: seed-chosen links to fail",
			"fail_us":       "inline record: failure instant in µs",
			"heal_us":       "inline record: heal instant in µs",
			"telem_us":      "inline record: scrape period in µs",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			var stream []byte
			if in := c.Params.Str("in", ""); in != "" {
				var err error
				if stream, err = os.ReadFile(in); err != nil {
					return engine.Result{}, err
				}
			} else {
				var err error
				if stream, _, err = runRecord(traceSpec(c), c); err != nil {
					return engine.Result{}, err
				}
			}
			ov, err := traceOverrides(c)
			if err != nil {
				return engine.Result{}, err
			}
			div, outc, _, err := distsim.Replay(stream, ov)
			if err != nil {
				return engine.Result{}, err
			}
			if c.Params.Bool("expect_zero", false) && !div.Zero {
				return engine.Result{}, fmt.Errorf("trace/replay: expected zero divergence, got: %s", div)
			}
			var res engine.Result
			zero := 0.0
			if div.Zero {
				zero = 1
			}
			ident := 0.0
			if div.ByteIdentical {
				ident = 1
			}
			res.Add("zero_divergence", zero, "")
			res.Add("byte_identical", ident, "")
			res.Add("recorded_windows", float64(div.RecordedWindows), "")
			res.Add("replayed_windows", float64(div.ReplayedWindows), "")
			res.Add("divergent_windows", float64(div.DivergentWindows), "")
			res.Add("first_divergent_window", float64(div.FirstDivergentWindow), "")
			res.Add("max_cell_delta", float64(div.MaxCellDelta), "")
			res.Add("max_drop_delta", float64(div.MaxDropDelta), "")
			res.Add("replayed_delivered_cells", float64(outc.Delivered), "")
			res.Text = fmt.Sprintf("trace/replay: %s\n", div)
			return res, nil
		},
	})
}
