package experiments

import (
	"testing"

	"stardust/internal/sim"
)

func TestPushPullFig7(t *testing.T) {
	r := PushPull(false)
	// Paper Fig 7: Ethernet delivers only ~66% of B despite B not being
	// oversubscribed; Stardust delivers 100% of B and 50% of each A.
	if r.EthernetB > 0.75 {
		t.Fatalf("Ethernet push should hurt B: got %.2f", r.EthernetB)
	}
	if r.StardustB < 0.95 {
		t.Fatalf("Stardust B = %.2f, want ~1.0", r.StardustB)
	}
	if r.StardustA1 < 0.45 || r.StardustA1 > 0.55 {
		t.Fatalf("Stardust A1 = %.2f, want ~0.5", r.StardustA1)
	}
	if r.StardustTotal < 0.95 {
		t.Fatalf("Stardust egress = %.2f, want ~1.0", r.StardustTotal)
	}
	if r.EthernetTotal >= r.StardustTotal {
		t.Fatal("push fabric should not beat pull fabric")
	}
}

func TestPushPullFig12TrafficClasses(t *testing.T) {
	r := PushPull(true)
	// Appendix F: with A high-priority, B is entirely starved in the push
	// fabric and the egress throughput is half of Stardust's.
	if r.EthernetB > 0.05 {
		t.Fatalf("Ethernet B with TCs = %.2f, want ~0", r.EthernetB)
	}
	if r.StardustB < 0.95 {
		t.Fatalf("Stardust B with TCs = %.2f, want ~1.0", r.StardustB)
	}
	ratio := r.EthernetTotal / r.StardustTotal
	if ratio < 0.4 || ratio > 0.65 {
		t.Fatalf("push/pull egress ratio = %.2f, want ~0.5", ratio)
	}
}

func TestPermutationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol permutation in -short mode")
	}
	cfg := QuickHtsim()
	cfg.Duration = 10 * sim.Millisecond
	cfg.Warmup = 5 * sim.Millisecond
	util := map[Protocol]float64{}
	for _, p := range Protocols {
		r, err := Permutation(cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		util[p] = r.MeanUtilPct
		if len(r.Gbps) != 16 {
			t.Fatalf("%s: %d flows", p, len(r.Gbps))
		}
		if p == ProtoStardust && r.FabricDrops != 0 {
			t.Fatalf("Stardust fabric dropped %d", r.FabricDrops)
		}
	}
	// Fig 10a ordering: Stardust > MPTCP > DCTCP, DCQCN (single-path ECMP
	// collisions cap the single-path protocols).
	if util[ProtoStardust] < 80 {
		t.Fatalf("Stardust mean utilization %.1f%%, want > 80%%", util[ProtoStardust])
	}
	if util[ProtoStardust] <= util[ProtoDCTCP] {
		t.Fatalf("Stardust (%.1f%%) should beat DCTCP (%.1f%%)", util[ProtoStardust], util[ProtoDCTCP])
	}
	if util[ProtoStardust] <= util[ProtoDCQCN] {
		t.Fatalf("Stardust (%.1f%%) should beat DCQCN (%.1f%%)", util[ProtoStardust], util[ProtoDCQCN])
	}
	if util[ProtoMPTCP] <= util[ProtoDCTCP] {
		t.Fatalf("MPTCP (%.1f%%) should beat single-path DCTCP (%.1f%%)", util[ProtoMPTCP], util[ProtoDCTCP])
	}
}

func TestIncastStardustFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("incast comparison in -short mode")
	}
	cfg := QuickHtsim()
	sd, err := Incast(cfg, ProtoStardust, 12, 450_000)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := Incast(cfg, ProtoDCTCP, 12, 450_000)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10c: Stardust's spread between first and last completion is
	// small (fair round-robin credits); DCTCP's is much larger.
	sdSpread := sd.LastMs / sd.FirstMs
	dcSpread := dc.LastMs / dc.FirstMs
	if sdSpread > 2.0 {
		t.Fatalf("Stardust incast spread %.2fx, want near 1", sdSpread)
	}
	if dcSpread < sdSpread {
		t.Fatalf("DCTCP spread (%.2f) should exceed Stardust (%.2f)", dcSpread, sdSpread)
	}
	// Last-completion times are bandwidth-bound and comparable (§6.3).
	if sd.LastMs > 3*dc.LastMs {
		t.Fatalf("Stardust last FCT %.2fms vs DCTCP %.2fms", sd.LastMs, dc.LastMs)
	}
}

func TestFCTStardustFast(t *testing.T) {
	if testing.Short() {
		t.Skip("FCT comparison in -short mode")
	}
	cfg := QuickHtsim()
	sd, err := FCT(cfg, ProtoStardust, 30)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := FCT(cfg, ProtoDCTCP, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Ms.N() < 20 || dc.Ms.N() < 20 {
		t.Fatalf("not enough measured flows: %d / %d", sd.Ms.N(), dc.Ms.N())
	}
	// Fig 10b: the scheduled fabric completes short flows much faster at
	// the tail.
	if sd.Ms.Quantile(0.9) >= dc.Ms.Quantile(0.9) {
		t.Fatalf("Stardust p90 %.3fms not better than DCTCP %.3fms",
			sd.Ms.Quantile(0.9), dc.Ms.Quantile(0.9))
	}
}
