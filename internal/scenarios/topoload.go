package scenarios

// Topology-pluggable scenarios: the workloads of the evaluation run on
// any topo.Graph — the paper's Clos, the Space Shuffle ring-space graph,
// or the star-replaced server-centric graph — through the same fabric
// interface. fabric/graphload records the spray-vs-ECMP per-uplink
// spread comparison on the non-Clos graphs; fabric/collective drives
// phase-synchronized ring/tree all-reduce collectives; fabric/openloop
// offers diurnal bursty storage traffic. Each is a deterministic
// function of (seed, parameters): one solo event heap per instance, so
// the output is byte-identical at any -workers/-shards count.

import (
	"fmt"
	"math/rand"
	"strings"

	"stardust/internal/engine"
	"stardust/internal/experiments"
	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
	"stardust/internal/workload"
)

// buildGraphFabric assembles the solo fabric for one topology-pluggable
// scenario instance: resolved topology, simulator, default 10G config.
func buildGraphFabric(c engine.Context, k int) (topo.Graph, *sim.Simulator, fabric.Fabric, error) {
	g, err := topo.ByName(effectiveTopo(c), k)
	if err != nil {
		return nil, nil, nil, err
	}
	s := sim.New()
	fcfg := fabric.DefaultConfig(netsim.Bps(10e9), sim.Microsecond, c.Seed)
	fab, err := fabric.NewFabric(s, fcfg, g)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, s, fab, nil
}

// runUntilAccounted advances the solo simulator in fixed quanta until
// every injected cell has a recorded fate (delivered or dropped) and at
// least want cells went in, or the deadline passes. The quantized stop
// instant is deterministic because the counters are.
func runUntilAccounted(s *sim.Simulator, fab fabric.Fabric, want uint64, deadline sim.Time) {
	const quantum = sim.Microsecond
	for s.Now() < deadline {
		if fab.Injected() >= want && fab.Delivered()+fab.Drops() >= fab.Injected() {
			return
		}
		s.RunUntil(s.Now() + quantum)
	}
}

// cellGap returns the pacing gap that offers `load` of one edge device's
// aggregate uplink capacity in cells of cellBytes.
func cellGap(g topo.Graph, fa, cellBytes int, rate netsim.Bps, load float64) sim.Time {
	uplinks := topo.EdgeUplinkDirs(g)
	n := len(uplinks[fa])
	if n == 0 {
		n = 1
	}
	gap := sim.Time(float64(cellBytes*8) / (load * float64(n) * float64(rate)) * float64(sim.Second))
	if gap < sim.Nanosecond {
		gap = sim.Nanosecond
	}
	return gap
}

func init() {
	engine.Register(engine.Scenario{
		Name: "fabric/graphload",
		Desc: "spray vs ECMP per-uplink byte spread on pluggable topologies (Space Shuffle, star-replaced) — §5.3 carried beyond the Clos",
		Defaults: engine.Params{
			"topo": "sshuffle,star", "mode": "spray,ecmp", "k": "8",
			"load": "0.6", "warm_us": "100", "dur_us": "400",
		},
		Docs: map[string]string{
			"topo":    "topology families sized by k (comma list sweeps); clos is spray-only (use fabric/linkload for the fat-tree ECMP contender)",
			"mode":    "routing mode: spray (per-cell round robin) or ecmp (per-flow hash-pinned path); comma list sweeps",
			"k":       "sizing parameter handed to topo.ByName (edge devices = k*k/2)",
			"load":    "offered load per edge device as a fraction of its uplink capacity",
			"warm_us": "warmup before measurement, in µs",
			"dur_us":  "measurement window in µs",
		},
		Variants: func(p engine.Params) []engine.Params {
			var out []engine.Params
			for _, t := range splitList(p.Str("topo", "sshuffle,star")) {
				for _, m := range splitList(p.Str("mode", "spray,ecmp")) {
					out = append(out, p.With("topo", t).With("mode", m))
				}
			}
			return out
		},
		Run: func(c engine.Context) (engine.Result, error) {
			r, err := experiments.GraphLinkLoad(
				c.Params.Str("topo", "sshuffle"),
				c.Params.Int("k", 8),
				c.Params.Str("mode", "spray"),
				c.Params.Float("load", 0.6),
				usTime(c.Params.Int("warm_us", 100)),
				usTime(c.Params.Int("dur_us", 400)),
				c.Seed)
			if err != nil {
				return engine.Result{}, err
			}
			if r.Delivered == 0 {
				return engine.Result{}, fmt.Errorf("graphload: %s %s delivered no cells", r.Topo, r.Mode)
			}
			var res engine.Result
			res.Add("links", float64(r.Links), "")
			res.Add("mean_bytes", r.MeanBytes, "B")
			res.Add("cov_pct", r.CoVPct, "%")
			res.Add("spread_pct", r.SpreadPct, "%")
			res.Add("dev_spread_pct", r.DevSpreadPct, "%")
			res.Add("injected_cells", float64(r.Injected), "")
			res.Add("delivered_cells", float64(r.Delivered), "")
			res.Add("dropped_cells", float64(r.Drops), "")
			var b strings.Builder
			experiments.WriteGraphLoad(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "fabric/collective",
		Desc: "ML-collective all-reduce (ring or binomial tree) over any topology: phase-synchronized cell traffic, completion time and conservation",
		Defaults: engine.Params{
			"topo": "", "k": "4", "collective": "ring", "kb": "64",
			"cell": "512", "load": "1",
		},
		Docs: map[string]string{
			"topo":       "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag",
			"k":          "sizing parameter handed to topo.ByName",
			"collective": "schedule: ring (bandwidth-optimal reduce-scatter + all-gather) or tree (binomial reduce + broadcast)",
			"kb":         "all-reduce payload per rank in KB",
			"cell":       "cell size in bytes",
			"load":       "per-flow pacing as a fraction of the source's uplink capacity",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			cell := c.Params.Int("cell", 512)
			load := c.Params.Float("load", 1)
			bytes := int64(c.Params.Int("kb", 64)) * 1024
			g, s, fab, err := buildGraphFabric(c, k)
			if err != nil {
				return engine.Result{}, err
			}
			numFA := g.NumEdge()
			var phases [][]workload.CollectiveFlow
			switch coll := c.Params.Str("collective", "ring"); coll {
			case "ring":
				phases = workload.RingAllReduce(numFA, bytes)
			case "tree":
				phases = workload.TreeAllReduce(numFA, bytes)
			default:
				return engine.Result{}, fmt.Errorf("collective: unknown schedule %q (want ring or tree)", coll)
			}
			rate := netsim.Bps(10e9)
			var want uint64
			var worstPhase sim.Time
			for _, flows := range phases {
				start := s.Now()
				for fi, f := range flows {
					if f.Src == f.Dst {
						continue
					}
					n := int((f.Bytes + int64(cell) - 1) / int64(cell))
					gap := cellGap(g, f.Src, cell, rate, load)
					j := fab.NewInjector(f.Src, gap, cell, 0, n)
					j.FixDst(f.Dst)
					j.Start(start + sim.Time(fi)*gap/sim.Time(len(flows)+1))
					want += uint64(n)
				}
				runUntilAccounted(s, fab, want, start+100*sim.Millisecond)
				if d := s.Now() - start; d > worstPhase {
					worstPhase = d
				}
			}
			if leak := fab.Injected() - fab.Delivered() - fab.Drops(); leak != 0 {
				return engine.Result{}, fmt.Errorf("collective: %d cells unaccounted for", leak)
			}
			if fab.Injected() < want {
				return engine.Result{}, fmt.Errorf("collective: injected %d of %d scheduled cells before the deadline", fab.Injected(), want)
			}
			total := s.Now()
			// Algorithmic bus bandwidth of the all-reduce: 2(n-1)/n of the
			// payload crosses the fabric per rank.
			algBW := 2 * float64(numFA-1) / float64(numFA) * float64(bytes) * 8 / (float64(total) / float64(sim.Second))
			var res engine.Result
			res.Add("ranks", float64(numFA), "")
			res.Add("phases", float64(len(phases)), "")
			res.Add("injected_cells", float64(fab.Injected()), "")
			res.Add("delivered_cells", float64(fab.Delivered()), "")
			res.Add("dropped_cells", float64(fab.Drops()), "")
			res.Add("completion_us", float64(total)/float64(sim.Microsecond), "us")
			res.Add("worst_phase_us", float64(worstPhase)/float64(sim.Microsecond), "us")
			res.Add("algo_gbps", algBW/1e9, "Gb/s")
			res.Text = fmt.Sprintf("collective %s on %s: %d ranks, %d phases, %d cells (%d dropped), done in %.0fµs (worst phase %.0fµs, %.2f Gb/s algorithmic)\n",
				c.Params.Str("collective", "ring"), g.Spec(), numFA, len(phases),
				fab.Injected(), fab.Drops(),
				float64(total)/float64(sim.Microsecond), float64(worstPhase)/float64(sim.Microsecond), algBW/1e9)
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "fabric/openloop",
		Desc: "diurnal bursty open-loop arrivals with storage-style mixed flow sizes over any topology: conservation under a daily load cycle",
		Defaults: engine.Params{
			"topo": "", "k": "4", "rate_kfps": "200", "trough": "0.2",
			"period_us": "2000", "dur_us": "2000", "cap_kb": "64",
			"sizes": "storage", "cell": "512", "load": "1",
		},
		Docs: map[string]string{
			"topo":      "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag",
			"k":         "sizing parameter handed to topo.ByName",
			"rate_kfps": "peak flow arrival rate in thousands of flows per second",
			"trough":    "trough-to-peak rate ratio of the diurnal cycle (0..1)",
			"period_us": "diurnal period in µs (scaled-down day)",
			"dur_us":    "arrival horizon in µs",
			"cap_kb":    "clamp individual flow sizes at this many KB (keeps the chunk tail simulable)",
			"sizes":     "flow-size distribution: storage (bimodal metadata+chunks) or web (Fig 10b)",
			"cell":      "cell size in bytes",
			"load":      "per-flow pacing as a fraction of the source's uplink capacity",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			cell := c.Params.Int("cell", 512)
			load := c.Params.Float("load", 1)
			capB := int64(c.Params.Int("cap_kb", 64)) * 1024
			dur := usTime(c.Params.Int("dur_us", 2000))
			g, s, fab, err := buildGraphFabric(c, k)
			if err != nil {
				return engine.Result{}, err
			}
			numFA := g.NumEdge()
			var sizes interface{ Sample(*rand.Rand) float64 }
			switch sz := c.Params.Str("sizes", "storage"); sz {
			case "storage":
				sizes = workload.StorageFlowSizes()
			case "web":
				sizes = workload.WebFlowSizes()
			default:
				return engine.Result{}, fmt.Errorf("openloop: unknown size distribution %q (want storage or web)", sz)
			}
			rng := rand.New(rand.NewSource(c.Seed ^ 0x5ee0_10ad))
			arrivals := workload.DiurnalArrivals(rng,
				c.Params.Float("rate_kfps", 200)*1e3,
				c.Params.Float("trough", 0.2),
				float64(usTime(c.Params.Int("period_us", 2000)))/float64(sim.Second),
				float64(dur)/float64(sim.Second))
			rate := netsim.Bps(10e9)
			var want uint64
			var flowBytes int64
			for _, at := range arrivals {
				src := rng.Intn(numFA)
				dst := rng.Intn(numFA - 1)
				if dst >= src {
					dst++
				}
				fb := int64(sizes.Sample(rng))
				if fb > capB {
					fb = capB
				}
				if fb < 1 {
					fb = 1
				}
				flowBytes += fb
				n := int((fb + int64(cell) - 1) / int64(cell))
				j := fab.NewInjector(src, cellGap(g, src, cell, rate, load), cell, 0, n)
				j.FixDst(dst)
				j.Start(sim.Time(at * float64(sim.Second)))
				want += uint64(n)
			}
			runUntilAccounted(s, fab, want, dur+100*sim.Millisecond)
			if leak := fab.Injected() - fab.Delivered() - fab.Drops(); leak != 0 {
				return engine.Result{}, fmt.Errorf("openloop: %d cells unaccounted for", leak)
			}
			if fab.Injected() < want {
				return engine.Result{}, fmt.Errorf("openloop: injected %d of %d scheduled cells before the deadline", fab.Injected(), want)
			}
			var res engine.Result
			res.Add("flows", float64(len(arrivals)), "")
			res.Add("flow_bytes", float64(flowBytes), "B")
			res.Add("injected_cells", float64(fab.Injected()), "")
			res.Add("delivered_cells", float64(fab.Delivered()), "")
			res.Add("dropped_cells", float64(fab.Drops()), "")
			res.Add("drain_us", float64(s.Now())/float64(sim.Microsecond), "us")
			res.Text = fmt.Sprintf("openloop %s on %s: %d flows (%d KB), %d cells injected, %d delivered, %d dropped, drained by %.0fµs\n",
				c.Params.Str("sizes", "storage"), g.Spec(), len(arrivals), flowBytes/1024,
				fab.Injected(), fab.Delivered(), fab.Drops(), float64(s.Now())/float64(sim.Microsecond))
			return res, nil
		},
	})
}
