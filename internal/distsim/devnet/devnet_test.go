package devnet

import (
	"os"
	"reflect"
	"testing"
	"time"

	"stardust/internal/distsim"
	"stardust/internal/sim"
)

// TestMain routes forked children into the peer loop: Spawn re-executes
// this test binary with STARDUST_PEER_JOIN set, and MaybeRunPeer must win
// before the test framework does anything else.
func TestMain(m *testing.M) {
	distsim.MaybeRunPeer()
	os.Exit(m.Run())
}

func devSpec() distsim.Spec {
	return distsim.Spec{K: 4, Seed: 7, Shards: 4, Dur: 200 * sim.Microsecond, Load: 0.5, CellBytes: 512, Hotspot: 1}
}

func localOutcome(t *testing.T, spec distsim.Spec) distsim.Outcome {
	t.Helper()
	m, err := distsim.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDevnetMatchesLocal: two real forked peer processes produce the same
// outcome as the single-process run.
func TestDevnetMatchesLocal(t *testing.T) {
	spec := devSpec()
	want := localOutcome(t, spec)

	l, err := distsim.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	addr := l.Addr().String()
	var peers []*Peer
	for i := 0; i < 2; i++ {
		p, err := Spawn(addr)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	got, err := distsim.Serve(l, distsim.CoordConfig{Spec: spec, Peers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if werr := p.Wait(); werr != nil {
			t.Errorf("peer exited uncleanly: %v", werr)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("devnet outcome diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestDevnetKillRestore is the chaos case: SIGKILL a real peer process
// mid-run, fork a replacement, and require the restored run's final
// outcome — digest included — to be byte-identical to the uninterrupted
// single-process run.
func TestDevnetKillRestore(t *testing.T) {
	spec := devSpec()
	want := localOutcome(t, spec)

	l, err := distsim.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	addr := l.Addr().String()
	var peers []*Peer
	for i := 0; i < 2; i++ {
		p, err := Spawn(addr)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	var replacement *Peer
	killed := false
	cfg := distsim.CoordConfig{
		Spec:          spec,
		Peers:         2,
		Rejoin:        true,
		RejoinTimeout: 120 * time.Second,
		// OnWindow runs on the coordinator's barrier loop, so the kill
		// lands between two windows — mid-run, with live mail in flight.
		OnWindow: func(w int) {
			if w == 150 && !killed {
				killed = true
				if err := peers[0].Kill(); err != nil {
					t.Errorf("kill: %v", err)
				}
				r, err := Spawn(addr)
				if err != nil {
					t.Errorf("respawn: %v", err)
					return
				}
				replacement = r
			}
		},
	}
	got, err := distsim.Serve(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("run finished before the kill window — spec too short for the chaos test")
	}
	peers[0].Wait() // reaps the SIGKILLed child; its exit status is the signal
	if werr := peers[1].Wait(); werr != nil {
		t.Errorf("surviving peer exited uncleanly: %v", werr)
	}
	if replacement != nil {
		if werr := replacement.Wait(); werr != nil {
			t.Errorf("replacement peer exited uncleanly: %v", werr)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kill/restore outcome diverged:\n got %+v\nwant %+v", got, want)
	}
}
