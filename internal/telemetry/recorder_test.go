package telemetry

import (
	"bytes"
	"io"
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// TestEmitterEventSemantics pins the prime rule: the first window sets
// the link-state baseline, but a link already down at the first scrape IS
// an event (the recorder did not see it go down, the consumer still must).
func TestEmitterEventSemantics(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, StreamHeader{Dirs: 4, FAs: 0, ScrapePs: sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEmitter(w)
	snap := Snapshot{Dirs: make([]DirSample, 4)}
	up := func(states ...bool) {
		for lk, s := range states {
			snap.Dirs[2*lk].Up = s
			snap.Dirs[2*lk+1].Up = s
		}
	}
	up(true, false) // link 1 already down at first scrape
	snap.T = sim.Microsecond
	if err := e.Emit(&snap); err != nil {
		t.Fatal(err)
	}
	up(false, false) // link 0 goes down
	snap.T = 2 * sim.Microsecond
	if err := e.Emit(&snap); err != nil {
		t.Fatal(err)
	}
	up(true, true) // both recover
	snap.T = 3 * sim.Microsecond
	if err := e.Emit(&snap); err != nil {
		t.Fatal(err)
	}

	sr := NewReader(bytes.NewReader(buf.Bytes()))
	type evt struct {
		kind byte
		link int
		t    sim.Time
	}
	var evs []evt
	wins := 0
	for {
		win, ev, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if win != nil {
			wins++
			continue
		}
		evs = append(evs, evt{ev.Kind, ev.Link, ev.T})
	}
	want := []evt{
		{EvLinkDown, 1, sim.Microsecond},
		{EvLinkDown, 0, 2 * sim.Microsecond},
		{EvLinkUp, 0, 3 * sim.Microsecond},
		{EvLinkUp, 1, 3 * sim.Microsecond},
	}
	if wins != 3 || len(evs) != len(want) {
		t.Fatalf("%d windows, events %v", wins, evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

// liveFabric builds a small loaded fabric for recorder tests.
func liveFabric(t *testing.T) (*sim.Simulator, *fabric.Net) {
	t.Helper()
	cl, err := fabric.ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	fab, err := fabric.New(s, fabric.DefaultConfig(10e9, sim.Microsecond, 1), cl)
	if err != nil {
		t.Fatal(err)
	}
	for fa := 0; fa < cl.NumFA; fa++ {
		fa := fa
		var inject func()
		inject = func() {
			c := netsim.NewPacket()
			c.Size = 512
			fab.Inject(c, fa, (fa+1)%cl.NumFA)
			s.After(2*sim.Microsecond, inject)
		}
		s.At(0, inject)
	}
	return s, fab
}

// TestRecorderOnSoloSim drives the unsharded path end to end: AttachSim
// scrapes on period, the stream decodes, counters are monotonic, online
// analyzers feed the finding log, and stats reflect all of it.
func TestRecorderOnSoloSim(t *testing.T) {
	s, fab := liveFabric(t)
	hdr := StreamHeader{Dirs: 2 * fab.NumLinks(), FAs: 0, K: 4, ScrapePs: 100 * sim.Microsecond}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w, fab, nil, 100*sim.Microsecond)
	log := rec.Observe(MetaFor(fab.Topo), DefaultAnalyzers()...)
	rec.AttachSim(s)

	// Isolate FA0 mid-run: a reachability hole the online analyzers must
	// flag, and down events the stream must carry.
	var failed []int
	for i, lk := range fab.Topo.Links {
		if lk.A.Kind == topo.KindFA && lk.A.Index == 0 {
			failed = append(failed, i)
		}
	}
	s.At(250*sim.Microsecond, func() {
		for _, i := range failed {
			fab.FailLink(i)
		}
	})
	s.RunUntil(sim.Millisecond)

	st := rec.Stats()
	if st.Windows < 9 || st.Bytes == 0 || st.LastT == 0 {
		t.Fatalf("recorder stats idle: %+v", st)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}

	// The stream must decode cleanly, carry traffic, and include the
	// link-0 down event.
	sr := NewReader(bytes.NewReader(buf.Bytes()))
	var cells uint64
	sawDown := false
	for {
		win, ev, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			if ev.Kind == EvLinkDown && ev.Link == failed[0] {
				sawDown = true
			}
			continue
		}
		for _, c := range win.DFwdCells {
			cells += c
		}
	}
	if cells == 0 {
		t.Fatal("recorded stream carries no traffic")
	}
	if !sawDown {
		t.Fatal("link failure missing from the stream")
	}
	if log.Total() == 0 || st.Findings != log.Total() {
		t.Fatalf("online analyzers silent: log=%d stats=%d", log.Total(), st.Findings)
	}
}

// TestRecorderLatchesWriteError: a full stream buffer stops the recorder
// at the first failed write, surfaces in Stats, and further captures are
// no-ops instead of corrupting the tail.
func TestRecorderLatchesWriteError(t *testing.T) {
	s, fab := liveFabric(t)
	sink := NewBuffer(512) // fits the header, not the windows
	w, err := NewWriter(sink, StreamHeader{Dirs: 2 * fab.NumLinks(), FAs: 0, ScrapePs: 50 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w, fab, nil, 50*sim.Microsecond)
	rec.AttachSim(s)
	s.RunUntil(sim.Millisecond)

	if rec.Err() != ErrStreamFull {
		t.Fatalf("latched error = %v, want ErrStreamFull", rec.Err())
	}
	st := rec.Stats()
	if st.Err == "" {
		t.Fatalf("stats hide the error: %+v", st)
	}
	if !sink.Truncated() {
		t.Fatal("buffer never refused a write")
	}
	wins := st.Windows
	rec.Capture(2 * sim.Millisecond)
	if rec.Stats().Windows != wins {
		t.Fatal("capture after latched error still wrote")
	}
}
