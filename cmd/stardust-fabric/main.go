// Command stardust-fabric regenerates Fig 9: latency and queue-size
// distributions of the two-tier cell fabric at several utilizations, with
// the M/D/1 analytical reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"stardust/internal/experiments"
	"stardust/internal/fabricsim"
)

func main() {
	scale := flag.Int("scale", 4, "scale divisor of the 256-FA topology (1 = paper scale)")
	util := flag.Float64("util", 0, "run a single utilization instead of the paper's set")
	dist := flag.Bool("dist", false, "dump the full latency/queue distributions (TSV)")
	flag.Parse()

	if *dist && *util > 0 {
		var cfg fabricsim.Config
		if *scale <= 1 {
			cfg = fabricsim.Fig9Config(*util)
		} else {
			cfg = fabricsim.Scaled(*util, *scale)
		}
		res, err := fabricsim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("# latency distribution (us, probability)")
		res.Latency.WriteTSV(os.Stdout)
		fmt.Println("# queue-size distribution (cells, probability)")
		res.QueueHist.WriteTSV(os.Stdout)
		return
	}
	var utils []float64
	if *util > 0 {
		utils = []float64{*util}
	}
	if err := experiments.WriteFig9(os.Stdout, *scale, utils); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
