package mgmt

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stardust/internal/distsim"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// TestBusStatsAccountsEveryLossPath pins the fix for the silently lossy
// event bus: fan-out drops are counted in total and per subscriber, ring
// evictions are counted, and unsubscribe drops the per-subscriber entry.
func TestBusStatsAccountsEveryLossPath(t *testing.T) {
	b := NewBus(4)
	_, cancel := b.Subscribe(2) // never drained: capacity 2, then drops
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: EventLinkDown, Link: i})
	}
	st := b.Stats()
	if st.Published != 10 || st.Retained != 4 || st.Capacity != 4 {
		t.Fatalf("ring accounting wrong: %+v", st)
	}
	if st.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", st.Evicted)
	}
	if st.Dropped != 8 || st.Subscribers != 1 {
		t.Fatalf("fan-out loss accounting wrong: %+v", st)
	}
	if len(st.PerSubscriber) != 1 {
		t.Fatalf("per-subscriber map: %+v", st.PerSubscriber)
	}
	for _, n := range st.PerSubscriber {
		if n != 8 {
			t.Fatalf("per-subscriber drops = %d, want 8", n)
		}
	}
	cancel()
	st = b.Stats()
	if st.Subscribers != 0 || len(st.PerSubscriber) != 0 {
		t.Fatalf("cancel left state behind: %+v", st)
	}
	// The totals survive the unsubscribe.
	if st.Dropped != 8 || st.Evicted != 6 {
		t.Fatalf("totals reset on cancel: %+v", st)
	}
}

// telemDaemon builds a daemon whose fabric records a STREC1 stream, with
// some simulated time already on the clock.
func telemDaemon(t *testing.T) (*httptest.Server, *FabricRun) {
	t.Helper()
	fr, err := NewFabricRun(FabricRunConfig{
		K: 4, Load: 0.3, Seed: 1,
		Telem:      100 * sim.Microsecond,
		TelemCap:   1 << 20,
		Controller: Config{ScrapeEvery: 500 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fr.Advance(sim.Millisecond)
	}
	q := NewRunQueue(2, 1, 1)
	t.Cleanup(q.Shutdown)
	ts := httptest.NewServer(NewServer(q, fr))
	t.Cleanup(ts.Close)
	return ts, fr
}

func TestTelemetryStreamDownload(t *testing.T) {
	ts, fr := telemDaemon(t)
	if fr.Rec == nil || fr.TelemBuf == nil {
		t.Fatal("fabric run did not build the recorder")
	}
	resp, err := http.Get(ts.URL + "/api/v1/telemetry/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sr := telemetry.NewReader(bytes.NewReader(blob))
	hdr, err := sr.Header()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.K != 4 || hdr.ScrapePs != 100*sim.Microsecond {
		t.Fatalf("live stream header wrong: %+v", hdr)
	}
	wins := 0
	for {
		win, _, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if win != nil {
			wins++
		}
	}
	// 3ms at a 100us scrape period: ~30 windows.
	if wins < 25 {
		t.Fatalf("only %d windows after 3ms", wins)
	}

	// The findings endpoint pages the same run's analyzer output.
	var page struct {
		Total    uint64              `json:"total"`
		Next     uint64              `json:"next"`
		Findings []telemetry.Finding `json:"findings"`
	}
	getJSON(t, ts.URL+"/api/v1/telemetry/findings?max=5", &page)
	if len(page.Findings) > 5 {
		t.Fatalf("max ignored: %d findings", len(page.Findings))
	}

	// Recorder stats surface in the fabric info document.
	var info map[string]json.RawMessage
	getJSON(t, ts.URL+"/api/v1/fabric", &info)
	if _, ok := info["telemetry_stream"]; !ok {
		t.Fatal("fabric info lacks telemetry_stream")
	}
}

func TestTelemetryEndpointsNeedRecorder(t *testing.T) {
	ts, _, _ := newTestDaemon(t, true) // fabric without Telem
	for _, path := range []string{"/api/v1/telemetry/stream", "/api/v1/telemetry/findings"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without recorder: status %d", path, resp.StatusCode)
		}
	}
}

// TestReplayEndpoint round-trips the digital twin over HTTP: a recorded
// spec-bearing stream replays with zero divergence; a what-if override
// diverges; an empty body is rejected with guidance.
func TestReplayEndpoint(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	spec := distsim.Spec{
		K: 4, Seed: 7, Shards: 1, Dur: 200 * sim.Microsecond,
		Load: 0.5, CellBytes: 512, Hotspot: 1, Telem: 20 * sim.Microsecond,
	}
	var stream bytes.Buffer
	if _, err := distsim.Record(spec, &stream); err != nil {
		t.Fatal(err)
	}

	post := func(url string, body []byte) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]json.RawMessage
		blob, _ := io.ReadAll(resp.Body)
		json.Unmarshal(blob, &doc)
		return resp, doc
	}

	resp, doc := post(ts.URL+"/api/v1/replay", stream.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d: %v", resp.StatusCode, doc)
	}
	var div telemetry.Divergence
	if err := json.Unmarshal(doc["divergence"], &div); err != nil {
		t.Fatal(err)
	}
	if !div.ByteIdentical || !div.Zero {
		t.Fatalf("unchanged replay diverged: %+v", div)
	}

	resp, doc = post(ts.URL+"/api/v1/replay?fail_link=0&fail_at_us=50", stream.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("what-if status %d: %v", resp.StatusCode, doc)
	}
	if err := json.Unmarshal(doc["divergence"], &div); err != nil {
		t.Fatal(err)
	}
	if div.Zero || div.DivergentWindows == 0 {
		t.Fatalf("what-if failure did not diverge: %+v", div)
	}

	resp, err := http.Post(ts.URL+"/api/v1/replay", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(blob), "trace/record") {
		t.Fatalf("empty replay body: status %d, %q", resp.StatusCode, blob)
	}
}

// The new observability surfaces: bus stats in /api/v1/events, distsim
// coordinator stats as JSON and on /metrics, telemetry families when a
// recorder is live.
func TestObservabilityMetricsFamilies(t *testing.T) {
	ts, _ := telemDaemon(t)

	var events struct {
		Bus BusStats `json:"bus"`
	}
	getJSON(t, ts.URL+"/api/v1/fabric/events?max=1", &events)
	if events.Bus.Capacity == 0 {
		t.Fatal("events document lacks bus stats")
	}

	var ds struct {
		Coord distsim.CoordStatsSnapshot `json:"coord"`
	}
	getJSON(t, ts.URL+"/api/v1/distsim", &ds)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(blob)
	for _, family := range []string{
		"stardust_mgmt_events_dropped_total",
		"stardust_mgmt_events_evicted_total",
		"stardust_mgmt_event_subscribers",
		"stardust_distsim_runs_total",
		"stardust_distsim_barrier_seconds_bucket",
		"stardust_distsim_window_mail_bytes_bucket",
		"stardust_distsim_compression_ratio",
		"stardust_telemetry_windows_total",
		"stardust_telemetry_stream_bytes",
		"stardust_telemetry_findings_total",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics lacks %s", family)
		}
	}
}
