// Package stardust is a from-scratch Go reproduction of "Stardust: Divide
// and Conquer in the Data Center Network" (Zilberman, Bracha, Schzukin;
// NSDI 2019).
//
// Stardust splits the data-center network into two device classes:
//
//   - Fabric Adapters at the edge (internal/core.FabricAdapter): packet
//     processing, virtual output queues, credit-scheduled egress, cell
//     fragmentation with packet packing, and out-of-order reassembly.
//   - Fabric Elements in the fabric (internal/core.FabricElement): simple
//     cell switches with reachability-driven self-routing tables, per-link
//     shallow queues, FCI congestion marking, and per-cell load balancing.
//
// The repository reproduces the paper's full evaluation:
//
//   - internal/topo, internal/analytic: the scalability, cost, power, area
//     and resilience models (Fig 2, Fig 3, Fig 10d, Fig 11, Table 2,
//     Appendix A/B/C/D/E).
//   - internal/device: the NetFPGA data-path throughput experiment
//     (Fig 8).
//   - internal/core: the event-driven device model and the single-tier
//     system measurement (§6.1.2).
//   - internal/fabricsim + internal/queueing: the two-tier cell fabric
//     simulation with its M/D/1 reference (Fig 9, §4.2.1).
//   - internal/netsim + internal/tcp: an htsim-equivalent packet simulator
//     with TCP NewReno, DCTCP, DCQCN, MPTCP and a Stardust substrate model
//     (Fig 10a-c, §6.3).
//   - internal/experiments: one entry point per table/figure, used by the
//     cmd/ tools and the benchmarks in bench_test.go.
//
// See DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-vs-measured results.
package stardust
