package fabric

import (
	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// Injector paces synthetic cells out of one edge device toward rotating
// destinations — the shared traffic source of the parscale/parheal
// scenarios, the managed FabricRun, and the sharded cell-path benchmark.
// It works over any Fabric. Everything it does is a function of
// (edge, instant) alone: it lives on its device's shard and keeps its
// own rotation counter, so the offered traffic is identical at every
// shard count. The shard is resolved per event rather than cached, so
// the injector follows its FA through adaptive rebalancing migrations
// on a Clos fabric.
type Injector struct {
	net   Fabric
	fa    int
	numFA int
	gap   sim.Time
	cell  int
	stop  sim.Time // 0 = no time limit
	quota int      // < 0 = no cell limit
	dst   int      // fixed destination; -1 = rotate
	n     int
	sent  uint64
	boost sim.Time // hotspot mode: gap override while Now < boostEnd
	until sim.Time
}

// NewInjector builds an injector for FA fa pacing one cell of cellBytes
// every gap. Injection ends at time stop (0 = unbounded) or after quota
// cells (< 0 = unbounded), whichever comes first. Call Start to schedule
// the first cell.
func (n *Net) NewInjector(fa int, gap sim.Time, cellBytes int, stop sim.Time, quota int) *Injector {
	return &Injector{
		net: n, fa: fa, numFA: n.Topo.NumFA,
		gap: gap, cell: cellBytes, stop: stop, quota: quota, dst: -1,
	}
}

// Boost overrides the pacing gap with `gap` until time until — the
// hotspot knob of the parscale imbalance experiments. Call before Start.
func (j *Injector) Boost(gap, until sim.Time) { j.boost, j.until = gap, until }

// FixDst pins every cell to one destination edge instead of rotating —
// the building block of collective and incast patterns. Call before
// Start.
func (j *Injector) FixDst(dst int) { j.dst = dst }

// Start schedules the first injection at absolute time at — stagger
// starts across FAs so they do not inject in lockstep. In sharded mode
// the event is tagged with the FA's migration group, so the pacing chain
// follows the FA when rebalancing moves it.
func (j *Injector) Start(at sim.Time) {
	sm := j.net.EdgeSim(j.fa)
	if j.net.Sharded() {
		prev := sm.Group()
		sm.SetGroup(j.net.GroupOfFA(j.fa))
		sm.AtAction(at, j, 0)
		sm.SetGroup(prev)
		return
	}
	sm.AtAction(at, j, 0)
}

// Sent returns the number of cells injected so far.
func (j *Injector) Sent() uint64 { return j.sent }

// Act implements sim.Action: inject one cell and reschedule.
func (j *Injector) Act(uint64) {
	sm := j.net.EdgeSim(j.fa)
	if j.stop != 0 && sm.Now() >= j.stop {
		return
	}
	if j.quota == 0 {
		return
	}
	if j.quota > 0 {
		j.quota--
	}
	c := netsim.NewPacket()
	c.Size = j.cell
	j.n++
	dst := j.dst
	if dst < 0 {
		dst = (j.fa + 1 + j.n%(j.numFA-1)) % j.numFA
	}
	j.net.Inject(c, j.fa, dst)
	j.sent++
	gap := j.gap
	if j.boost != 0 && sm.Now() < j.until {
		gap = j.boost
	}
	sm.AfterAction(gap, j, 0)
}
