package core

import (
	"stardust/internal/cell"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// FabricElement is the Stardust cell switch (§4.2): no packet parsing, no
// protocol tables — only a reachability-driven forwarding table, per-link
// shallow output queues with FCI marking, and per-cell load balancing with
// up-down discipline in multi-tier fabrics.
type FabricElement struct {
	net    *Network
	ID     topo.NodeID
	links  []*link
	downN  int // ports [0,downN) face the tier below (FAs for FE1)
	failed bool

	table    *reach.Table
	monitors []*reach.Monitor
	spreader *reach.Spreader
	reachTmr *sim.Timer

	// Per-output-link queues (cells waiting for the serializer) with a
	// shared overflow pool (§5.5).
	queues     [][]*cell.Cell
	sending    []bool
	sharedUsed int

	// Stats
	Forwarded     uint64
	Dropped       uint64 // queue overflow (§5.5: probability infinitesimal)
	NoRoute       uint64
	FCIMarked     uint64
	QueuePeak     int
	queueDepthSum uint64
	queueSamples  uint64
}

func newFabricElement(n *Network, id topo.NodeID, numLinks int) *FabricElement {
	downN := numLinks
	if id.Kind == topo.KindFE1 && n.clos.Tiers == 2 {
		downN = n.clos.FE1Down
	}
	fe := &FabricElement{
		net:      n,
		ID:       id,
		links:    make([]*link, numLinks),
		downN:    downN,
		table:    reach.NewTable(n.clos.NumFA, numLinks),
		spreader: reach.NewSpreader(numLinks, 4, n.Cfg.Seed+int64(id.Index)*7919+int64(id.Kind)*104729),
		queues:   make([][]*cell.Cell, numLinks),
		sending:  make([]bool, numLinks),
	}
	for i := 0; i < numLinks; i++ {
		fe.monitors = append(fe.monitors, reach.NewMonitor(n.Cfg.ReachInterval, n.Cfg.ReachThreshold))
	}
	return fe
}

func (fe *FabricElement) start() {
	fe.reachTmr = sim.NewTimer(fe.net.Sim)
	var tick func()
	tick = func() {
		fe.reachTick()
		fe.reachTmr.Arm(fe.net.Cfg.ReachInterval, tick)
	}
	// Stagger device start times within one interval so advertisement
	// bursts do not synchronize.
	offset := sim.Time((int64(fe.ID.Index)*2654435761 + int64(fe.ID.Kind)) % int64(fe.net.Cfg.ReachInterval))
	fe.net.Sim.After(offset, tick)
}

// reachTick sends this element's advertisements and checks link health.
func (fe *FabricElement) reachTick() {
	if fe.failed {
		return
	}
	now := fe.net.Sim.Now()
	// Keepalive loss detection.
	for port, mon := range fe.monitors {
		if fe.links[port] == nil {
			continue
		}
		if mon.Tick(now) {
			fe.table.LinkDown(port)
		}
	}
	// What this element can deliver toward the FAs: the union of its
	// down-facing links' advertised sets. Advertising only down-derived
	// reachability upward preserves the up-down discipline (no routing
	// loops); downward we advertise everything we can reach so lower tiers
	// and FAs learn about failures above them (§5.10).
	downSet := reach.NewBitmap(fe.net.clos.NumFA)
	allSet := reach.NewBitmap(fe.net.clos.NumFA)
	for port := 0; port < len(fe.links); port++ {
		if fe.monitors[port].State() != reach.LinkUpState {
			continue
		}
		if port < fe.downN {
			downSet.Or(fe.table.LinkSet(port))
		}
		allSet.Or(fe.table.LinkSet(port))
	}
	id := uint16(fe.ID.Index)
	upMsgs := reach.BuildMessages(id, downSet, fe.net.clos.NumFA)
	downMsgs := reach.BuildMessages(id, allSet, fe.net.clos.NumFA)
	for port, l := range fe.links {
		if l == nil {
			continue
		}
		msgs := downMsgs
		if port >= fe.downN {
			msgs = upMsgs
		}
		for _, m := range msgs {
			m.Faulty = l.faulty
			l.sendMsg(reachMsg{msg: m})
		}
	}
}

// onCtrl handles a control message arriving on port.
func (fe *FabricElement) onCtrl(port int, m any) {
	if fe.failed {
		return
	}
	switch v := m.(type) {
	case reachMsg:
		now := fe.net.Sim.Now()
		mon := fe.monitors[port]
		wasUp := mon.State() == reach.LinkUpState
		mon.OnMessage(now, v.msg.Faulty)
		if mon.State() == reach.LinkUpState {
			fe.table.ApplyMessage(port, v.msg)
		} else if wasUp {
			fe.table.LinkDown(port)
		}
	}
}

// onCell forwards a data cell (§4.2): table lookup, load-balanced link
// choice, shallow queueing, FCI marking above threshold.
func (fe *FabricElement) onCell(port int, c *cell.Cell) {
	if fe.failed {
		return
	}
	dst := int(c.Header.Dst)
	eligible := fe.table.Links(dst)
	out := -1
	if port >= fe.downN {
		// Up-down discipline: cells descending from the tier above may
		// only continue downward.
		out = fe.pickDown(eligible)
	} else {
		out = fe.spreader.Next(eligible)
	}
	if out < 0 {
		fe.NoRoute++
		fe.net.discard(discardIDs(c)...)
		return
	}
	// Pipeline latency, then enqueue on the output link.
	fe.net.Sim.After(fe.net.Cfg.FELatency, func() { fe.enqueue(out, c) })
}

// pickDown spreads among eligible down-facing links only.
func (fe *FabricElement) pickDown(eligible reach.Bitmap) int {
	for tries := 0; tries < len(fe.links); tries++ {
		l := fe.spreader.Next(eligible)
		if l < 0 {
			return -1
		}
		if l < fe.downN {
			return l
		}
	}
	return -1
}

// enqueue admits a cell to an output-link queue. Occupancy beyond the
// per-link capacity borrows from the device's shared pool (§5.5); the
// invariant is sharedUsed == sum over ports of max(0, depth - capacity).
func (fe *FabricElement) enqueue(port int, c *cell.Cell) {
	q := fe.queues[port]
	if len(q) >= fe.net.Cfg.FEQueueCells {
		if fe.sharedUsed >= fe.net.Cfg.FESharedCells {
			fe.Dropped++
			fe.net.discard(discardIDs(c)...)
			return
		}
		fe.sharedUsed++
	}
	if len(q) >= fe.net.Cfg.FCIThreshCells {
		c.Header.Flags |= cell.FlagFCI
		fe.FCIMarked++
	}
	fe.queues[port] = append(q, c)
	depth := len(fe.queues[port])
	if depth > fe.QueuePeak {
		fe.QueuePeak = depth
	}
	fe.queueDepthSum += uint64(depth)
	fe.queueSamples++
	if !fe.sending[port] {
		fe.drain(port)
	}
}

func (fe *FabricElement) drain(port int) {
	q := fe.queues[port]
	if len(q) == 0 {
		fe.sending[port] = false
		return
	}
	fe.sending[port] = true
	c := q[0]
	fe.queues[port] = q[1:]
	if len(q) > fe.net.Cfg.FEQueueCells {
		// The departing cell shrinks an over-capacity queue: release the
		// shared-pool slot it was borrowing.
		fe.sharedUsed--
	}
	fe.Forwarded++
	txDone := fe.links[port].sendCell(c)
	fe.net.Sim.At(txDone, func() { fe.drain(port) })
}

// MeanQueueDepth returns the average output-queue depth observed at
// enqueue instants (cells).
func (fe *FabricElement) MeanQueueDepth() float64 {
	if fe.queueSamples == 0 {
		return 0
	}
	return float64(fe.queueDepthSum) / float64(fe.queueSamples)
}

// discardIDs collects the packet IDs whose segments a dropped cell
// carried, so the network can forget those in-flight packets.
func discardIDs(c *cell.Cell) []uint64 {
	out := make([]uint64, 0, len(c.Segments))
	for _, s := range c.Segments {
		out = append(out, s.Packet.ID)
	}
	return out
}
