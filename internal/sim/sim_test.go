package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("Now = %d, want 0", s.Now())
	}
	if s.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", s.Processed)
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(100, func() {
		s.At(50, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(1000, func() {
		s.After(234, func() { at = s.Now() })
	})
	s.Run()
	if at != 1234 {
		t.Fatalf("After fired at %d, want 1234", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*100, func() { count++ })
	}
	s.RunUntil(500)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %d, want 500", s.Now())
	}
	s.RunUntil(2000)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	// Clock advances to the deadline even with no events.
	if s.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestTimerFires(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := false
	tm.Arm(500, func() { fired = true })
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Armed() {
		t.Fatal("timer should be disarmed after firing")
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := false
	tm.Arm(500, func() { fired = true })
	s.At(100, func() { tm.Cancel() })
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerRearm(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	var fireTimes []Time
	tm.Arm(500, func() { fireTimes = append(fireTimes, s.Now()) })
	s.At(100, func() {
		tm.Arm(1000, func() { fireTimes = append(fireTimes, s.Now()) })
	})
	s.Run()
	if len(fireTimes) != 1 || fireTimes[0] != 1100 {
		t.Fatalf("fireTimes = %v, want [1100]", fireTimes)
	}
}

// Cancel then re-arm: the event scheduled by the first Arm is stale (its
// generation no longer matches) and must not fire the new callback early.
func TestTimerCancelThenRearm(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	var fireTimes []Time
	tm.Arm(100, func() { fireTimes = append(fireTimes, s.Now()) })
	s.At(50, func() {
		tm.Cancel()
		tm.Arm(500, func() { fireTimes = append(fireTimes, s.Now()) })
	})
	s.Run()
	if len(fireTimes) != 1 || fireTimes[0] != 550 {
		t.Fatalf("fireTimes = %v, want [550]", fireTimes)
	}
}

// Re-arming to an EARLIER deadline must fire at the earlier time and must
// not fire again when the first (later, stale) event comes due.
func TestTimerRearmEarlier(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	var fireTimes []Time
	fn := func() { fireTimes = append(fireTimes, s.Now()) }
	tm.Arm(1000, fn)
	s.At(100, func() { tm.Arm(50, fn) })
	s.Run()
	if len(fireTimes) != 1 || fireTimes[0] != 150 {
		t.Fatalf("fireTimes = %v, want [150]", fireTimes)
	}
	if s.Now() != 1000 {
		t.Fatalf("stale event not drained: Now = %d", s.Now())
	}
}

// Arming from inside the timer's own callback (the periodic idiom) starts
// a fresh generation; the just-fired event must not suppress it.
func TestTimerRearmInsideCallback(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	var fireTimes []Time
	tm.Arm(10, func() {
		fireTimes = append(fireTimes, s.Now())
		tm.Arm(30, func() { fireTimes = append(fireTimes, s.Now()) })
	})
	s.Run()
	if len(fireTimes) != 2 || fireTimes[0] != 10 || fireTimes[1] != 40 {
		t.Fatalf("fireTimes = %v, want [10 40]", fireTimes)
	}
}

// Many generations at the same instant: only the last Arm wins.
func TestTimerGenerationsSameInstant(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := 0
	for i := 0; i < 10; i++ {
		tm.Arm(100, func() { fired++ })
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1 (only the last generation)", fired)
	}
}

func TestTimerCancelIdempotentAndExpires(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	tm.Cancel() // cancel unarmed: must not panic
	tm.Cancel()
	if tm.Armed() {
		t.Fatal("unarmed timer reports armed")
	}
	s.At(100, func() {
		tm.Arm(250, func() {})
	})
	s.Run()
	if got := tm.Expires(); got != 350 {
		t.Fatalf("Expires = %d, want 350", got)
	}
}

// RunUntil with a deadline past the last event leaves the clock at the
// deadline, not at the last event.
func TestRunUntilDeadlinePastLastEvent(t *testing.T) {
	s := New()
	var last Time
	s.At(300, func() { last = s.Now() })
	s.RunUntil(1000)
	if last != 300 {
		t.Fatalf("event fired at %d, want 300", last)
	}
	if s.Now() != 1000 {
		t.Fatalf("Now = %d, want deadline 1000", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

// RunUntil with a deadline before the first event runs nothing, leaves
// the event queued, and still advances the clock to the deadline; the
// queued event then fires at its original timestamp.
func TestRunUntilLeavesFutureEventsQueued(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(500, func() { fired = s.Now() })
	s.RunUntil(200)
	if fired != -1 {
		t.Fatalf("future event fired early at %d", fired)
	}
	if s.Now() != 200 || s.Pending() != 1 {
		t.Fatalf("Now = %d Pending = %d, want 200/1", s.Now(), s.Pending())
	}
	s.RunUntil(600)
	if fired != 500 {
		t.Fatalf("queued event fired at %d, want 500", fired)
	}
	if s.Now() != 600 {
		t.Fatalf("Now = %d, want 600", s.Now())
	}
}

// An event exactly at the deadline is included.
func TestRunUntilInclusiveDeadline(t *testing.T) {
	s := New()
	count := 0
	s.At(100, func() { count++ })
	s.At(101, func() { count++ })
	s.RunUntil(100)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (deadline inclusive)", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

// actionRecorder tests the allocation-free Action scheduling form.
type actionRecorder struct {
	s    *Simulator
	at   []Time
	args []uint64
}

func (a *actionRecorder) Act(arg uint64) {
	a.at = append(a.at, a.s.Now())
	a.args = append(a.args, arg)
}

func TestActionScheduling(t *testing.T) {
	s := New()
	rec := &actionRecorder{s: s}
	s.AtAction(200, rec, 7)
	s.AtAction(100, rec, 5)
	s.At(150, func() { s.AfterAction(25, rec, 6) })
	s.Run()
	wantAt := []Time{100, 175, 200}
	wantArg := []uint64{5, 6, 7}
	for i := range wantAt {
		if rec.at[i] != wantAt[i] || rec.args[i] != wantArg[i] {
			t.Fatalf("actions fired at %v with args %v, want %v / %v", rec.at, rec.args, wantAt, wantArg)
		}
	}
}

func BenchmarkActionSchedule(b *testing.B) {
	s := New()
	rec := &actionRecorder{s: s}
	rec.at = make([]Time, 0, 2048)
	rec.args = make([]uint64, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AtAction(Time(i), rec, 0)
		if s.Pending() > 1024 {
			s.RunUntil(Time(i))
			rec.at = rec.at[:0]
			rec.args = rec.args[:0]
		}
	}
	s.Run()
}

func TestTimerPeriodic(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			tm.Arm(10, tick)
		}
	}
	tm.Arm(10, tick)
	s.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if s.Now() != 50 {
		t.Fatalf("Now = %d, want 50", s.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if Second != 1e12 {
		t.Fatalf("Second = %d", Second)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v, want 2.5", got)
	}
	if got := (3 * Microsecond).Seconds(); got != 3e-6 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (5 * Nanosecond).Nanoseconds(); got != 5 {
		t.Fatalf("Nanoseconds = %v", got)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var fired []Time
		for _, d := range delays {
			s.At(Time(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved scheduling from inside events preserves global order.
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	var last Time
	ok := true
	var spawn func(depth int)
	spawn = func(depth int) {
		if s.Now() < last {
			ok = false
		}
		last = s.Now()
		if depth <= 0 {
			return
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(1000))
			s.After(d, func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		s.At(Time(rng.Intn(10000)), func() { spawn(4) })
	}
	s.Run()
	if !ok {
		t.Fatal("time went backwards during nested scheduling")
	}
}

func BenchmarkSchedule(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Time(i), fn)
		if s.Pending() > 1024 {
			s.RunUntil(Time(i))
		}
	}
	s.Run()
}

// Same-instant events must fire in lane order, with default-lane events
// last, and scheduling order breaking ties only within one lane.
func TestLaneOrdering(t *testing.T) {
	s := New()
	var got []int
	rec := func(id int) ActionFunc { return func(uint64) { got = append(got, id) } }
	const at = 100 * Nanosecond
	s.At(at, func() { got = append(got, 99) }) // default lane, scheduled first
	s.AtLane(at, 7, rec(7), 0)
	s.AtLane(at, 3, rec(3), 0)
	s.AtLane(at, 7, rec(8), 0) // same lane as 7: scheduling order after it
	s.AtLane(at, 0, rec(0), 0)
	s.Run()
	want := []int{0, 3, 7, 8, 99}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Lane ordering must hold regardless of the interleaving in which the
// events were scheduled — the property sharded execution relies on.
func TestLaneOrderingSchedulingOrderIndependent(t *testing.T) {
	perm := rand.New(rand.NewSource(5)).Perm(16)
	var a, b []int
	for _, dst := range []*[]int{&a, &b} {
		s := New()
		dst := dst
		rec := func(id int) ActionFunc { return func(uint64) { *dst = append(*dst, id) } }
		if dst == &a {
			for i := 0; i < 16; i++ {
				s.AtLane(Microsecond, int32(i%4), rec(i%4*100+i), 0)
			}
		} else {
			for _, i := range perm {
				s.AtLane(Microsecond, int32(i%4), rec(i%4*100+i), 0)
			}
		}
		s.Run()
	}
	// Within a lane the scheduling order differs between the two runs, so
	// compare only the lane sequence: it must be non-decreasing in both.
	laneOf := func(id int) int { return id / 100 }
	for _, seq := range [][]int{a, b} {
		for i := 1; i < len(seq); i++ {
			if laneOf(seq[i]) < laneOf(seq[i-1]) {
				t.Fatalf("lane order violated: %v", seq)
			}
		}
	}
}

func TestRunBefore(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunBefore(20)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("RunBefore(20) fired %v, want [10]", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("clock %d, want 20 (exactly at the window end)", s.Now())
	}
	s.RunBefore(31)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all three", fired)
	}
	if s.Now() != 31 {
		t.Fatalf("clock %d, want 31", s.Now())
	}
}

// An event scheduled exactly at a window boundary runs in the next window
// together with (and ordered against) cross-window lane arrivals.
func TestRunBeforeBoundaryEvent(t *testing.T) {
	s := New()
	var got []int
	s.At(20, func() { got = append(got, 1) })
	s.RunBefore(20)
	if len(got) != 0 {
		t.Fatal("boundary event ran in the earlier window")
	}
	// A lane arrival inserted at the barrier for the same instant must
	// still fire first (explicit lanes sort before the default lane).
	s.AtLane(20, 5, ActionFunc(func(uint64) { got = append(got, 0) }), 0)
	s.RunBefore(40)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("got %v, want [0 1]", got)
	}
}
