// Coordinator observability: until now the distributed runtime ran
// blind — no way to see window barrier latency, how much mail crosses
// the wire, or what compression buys. CoordStats is the snapshot API the
// serving tier renders on /metrics.
package distsim

import (
	"sync"
	"time"

	"stardust/internal/telemetry"
)

// CoordStats accumulates coordinator window-loop metrics across runs.
// Safe for concurrent use; Serve updates it while HTTP handlers read
// snapshots.
type CoordStats struct {
	mu           sync.Mutex
	runs         uint64
	windows      uint64
	telemWindows uint64
	mailFrames   uint64 // GO + DONE frames carrying mail
	mailEntries  uint64
	rawBytes     uint64 // frame bodies before compression
	wireBytes    uint64 // bytes actually on the wire (headers included)
	barrier      *telemetry.Histogram
	mailBytes    *telemetry.Histogram
}

// NewCoordStats builds an empty stats accumulator.
func NewCoordStats() *CoordStats {
	return &CoordStats{
		// Window barrier latency in seconds: 10µs .. ~0.6s.
		barrier: telemetry.NewHistogram(telemetry.ExpBuckets(10e-6, 4, 9)...),
		// Mail payload per window in bytes: 64B .. ~1MB.
		mailBytes: telemetry.NewHistogram(telemetry.ExpBuckets(64, 4, 8)...),
	}
}

// DefaultStats is the process-wide accumulator: Serve updates it when
// CoordConfig.Stats is nil, and stardustd's /metrics renders it.
var DefaultStats = NewCoordStats()

// CoordStatsSnapshot is a point-in-time copy of the coordinator metrics.
type CoordStatsSnapshot struct {
	Runs             uint64                 `json:"runs"`
	Windows          uint64                 `json:"windows"`
	TelemetryWindows uint64                 `json:"telemetry_windows"`
	MailFrames       uint64                 `json:"mail_frames"`
	MailEntries      uint64                 `json:"mail_entries"`
	RawBytes         uint64                 `json:"raw_bytes"`
	WireBytes        uint64                 `json:"wire_bytes"`
	CompressionRatio float64                `json:"compression_ratio"` // raw/wire, 0 until traffic flows
	BarrierLatency   telemetry.HistSnapshot `json:"-"`
	WindowMailBytes  telemetry.HistSnapshot `json:"-"`
}

// Snapshot copies the current counters.
func (s *CoordStats) Snapshot() CoordStatsSnapshot {
	s.mu.Lock()
	snap := CoordStatsSnapshot{
		Runs:             s.runs,
		Windows:          s.windows,
		TelemetryWindows: s.telemWindows,
		MailFrames:       s.mailFrames,
		MailEntries:      s.mailEntries,
		RawBytes:         s.rawBytes,
		WireBytes:        s.wireBytes,
	}
	s.mu.Unlock()
	if snap.WireBytes > 0 {
		snap.CompressionRatio = float64(snap.RawBytes) / float64(snap.WireBytes)
	}
	snap.BarrierLatency = s.barrier.Snapshot()
	snap.WindowMailBytes = s.mailBytes.Snapshot()
	return snap
}

// BarrierHist exposes the barrier-latency histogram for /metrics.
func (s *CoordStats) BarrierHist() telemetry.HistSnapshot { return s.barrier.Snapshot() }

// MailHist exposes the per-window mail-bytes histogram for /metrics.
func (s *CoordStats) MailHist() telemetry.HistSnapshot { return s.mailBytes.Snapshot() }

func (s *CoordStats) addWire(n int) {
	s.mu.Lock()
	s.wireBytes += uint64(n)
	s.mu.Unlock()
}

func (s *CoordStats) addRaw(n int) {
	s.mu.Lock()
	s.rawBytes += uint64(n)
	s.mu.Unlock()
}

// window records one completed lock-step window: wall-clock barrier
// latency, mail volume (raw batch bytes through the star), frames and
// entries relayed.
func (s *CoordStats) window(d time.Duration, mailBytes, frames, entries int) {
	s.mu.Lock()
	s.windows++
	s.mailFrames += uint64(frames)
	s.mailEntries += uint64(entries)
	s.mu.Unlock()
	s.barrier.Observe(d.Seconds())
	s.mailBytes.Observe(float64(mailBytes))
}

func (s *CoordStats) telemWindow() {
	s.mu.Lock()
	s.telemWindows++
	s.mu.Unlock()
}

func (s *CoordStats) runDone() {
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
}
