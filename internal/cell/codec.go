package cell

import (
	"encoding/binary"
	"fmt"
)

// Byte-level codec: the wire form of the descriptor-level fragmentation.
// Packets are framed in a per-VOQ byte stream with a 4-byte big-endian
// length prefix and the stream is chopped into cell payloads.

// PackStream serializes packets into the framed byte stream that the
// fragmenter chops into cells.
func PackStream(packets [][]byte) []byte {
	total := 0
	for _, p := range packets {
		total += FrameOverhead + len(p)
	}
	out := make([]byte, 0, total)
	var lenbuf [FrameOverhead]byte
	for _, p := range packets {
		binary.BigEndian.PutUint32(lenbuf[:], uint32(len(p)))
		out = append(out, lenbuf[:]...)
		out = append(out, p...)
	}
	return out
}

// UnpackStream cuts a framed byte stream back into packets. It returns an
// error if the stream is truncated or a frame is corrupt.
func UnpackStream(stream []byte) ([][]byte, error) {
	var out [][]byte
	for len(stream) > 0 {
		if len(stream) < FrameOverhead {
			return nil, fmt.Errorf("cell: truncated frame header (%d bytes left)", len(stream))
		}
		n := binary.BigEndian.Uint32(stream)
		stream = stream[FrameOverhead:]
		if uint32(len(stream)) < n {
			return nil, fmt.Errorf("cell: truncated packet: need %d, have %d", n, len(stream))
		}
		pkt := make([]byte, n)
		copy(pkt, stream[:n])
		out = append(out, pkt)
		stream = stream[n:]
	}
	return out, nil
}

// EncodeCells chops a framed stream into wire cells of the given total cell
// size, assigning sequence numbers starting at seq0. The final cell may be
// shorter (credit-worth tail, §5.3).
func EncodeCells(src, dst uint16, tc uint8, seq0 uint16, stream []byte, cellSize int) ([][]byte, error) {
	maxPayload := cellSize - HeaderSize
	if maxPayload < 1 || maxPayload > 256 {
		return nil, fmt.Errorf("cell: bad cell size %d", cellSize)
	}
	var cells [][]byte
	seq := seq0
	for off := 0; off < len(stream); off += maxPayload {
		end := off + maxPayload
		if end > len(stream) {
			end = len(stream)
		}
		payload := stream[off:end]
		h := Header{Src: src, Dst: dst, TC: tc & 0x0f, Seq: seq}
		h.SetPayloadBytes(len(payload))
		buf := make([]byte, HeaderSize+len(payload))
		h.Encode(buf)
		copy(buf[HeaderSize:], payload)
		cells = append(cells, buf)
		seq++
	}
	return cells, nil
}

// DecodeCells reverses EncodeCells for cells that are already in sequence
// order, returning the concatenated stream and the parsed headers.
func DecodeCells(cells [][]byte) ([]byte, []Header, error) {
	var stream []byte
	var hdrs []Header
	for i, c := range cells {
		h, err := Decode(c)
		if err != nil {
			return nil, nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if len(c) != HeaderSize+h.PayloadBytes() {
			return nil, nil, fmt.Errorf("cell %d: size %d does not match header payload %d",
				i, len(c), h.PayloadBytes())
		}
		hdrs = append(hdrs, h)
		stream = append(stream, c[HeaderSize:]...)
	}
	return stream, hdrs, nil
}
