// Failover (§5.9, §5.10): kill a spine Fabric Element under live traffic.
// The reachability keepalives detect the failure, every device withdraws
// the dead paths, and the cell spray heals around it — no routing
// protocol, no controller.
package main

import (
	"fmt"
	"log"

	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

func main() {
	clos, err := topo.NewClos2(8, 4, 4, 8, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.HostPortsPerFA = 2
	net, err := core.New(cfg, clos)
	if err != nil {
		log.Fatal(err)
	}
	if !net.WarmUp(5 * sim.Millisecond) {
		log.Fatal("no convergence")
	}

	delivered := 0
	net.OnDeliver = func(*core.Packet) { delivered++ }

	// Continuous traffic FA1 -> FA6 at ~40G.
	stop := net.Sim.Now() + 3*sim.Millisecond
	gap := 300 * sim.Nanosecond
	sent := 0
	var inject func()
	inject = func() {
		if net.Sim.Now() >= stop {
			return
		}
		net.Inject(1, 0, 6, 0, 0, 1500)
		sent++
		net.Sim.After(gap, inject)
	}
	net.Sim.After(0, inject)

	// Let traffic flow, then kill spine 0.
	net.Run(net.Sim.Now() + sim.Millisecond)
	before := delivered
	victim := topo.NodeID{Kind: topo.KindFE2, Index: 0}
	fmt.Printf("t=%.0fus: killing %v (half the spine capacity)\n", net.Sim.Now().Microseconds(), victim)
	if err := net.FailDevice(victim); err != nil {
		log.Fatal(err)
	}
	net.Run(stop + sim.Millisecond)

	fmt.Printf("sent %d packets, delivered %d\n", sent, delivered)
	fmt.Printf("delivered after failure: %d\n", delivered-before)
	lost := sent - delivered
	fmt.Printf("packets lost in the failure transient: %d (reassembly timers discard cells caught on the dead spine)\n", lost)
	if delivered-before == 0 {
		log.Fatal("traffic did not heal around the failed spine")
	}
	fmt.Println("fabric healed: cells now spray over the surviving spine only")
}
