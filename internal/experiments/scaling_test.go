package experiments

import (
	"bytes"
	"strings"
	"testing"

	"stardust/internal/topo"
)

func TestWriteScalingOutputs(t *testing.T) {
	var b bytes.Buffer
	WriteFig2(&b)
	WriteTable2(&b, topo.Params{K: 8, T: 4, L: 2})
	WriteFig3(&b, nil)
	WriteFig8a(&b, 150e6, nil)
	WriteFig8b(&b, 150e6)
	WriteFig10d(&b)
	if err := WriteFig11(&b, []int{1000, 100000}); err != nil {
		t.Fatal(err)
	}
	WriteAppendixE(&b)
	out := b.String()
	for _, want := range []string{"Fig 2(a)", "Table 2", "Fig 3", "Fig 8(a)", "Fig 8(b)", "Fig 10(d)", "Fig 11(a)", "Appendix E", "652"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestWriteFig9Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric sim in -short mode")
	}
	var b bytes.Buffer
	if err := WriteFig9(&b, 8, []float64{0.8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig 9") {
		t.Fatal("missing header")
	}
}

func TestAristaScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("arista system in -short mode")
	}
	cfg := ScaledArista()
	cfg.Duration = 150_000_000 // 150us in ps
	rows, err := Arista(cfg, []int{128, 384, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// §6.1.2: full line rate for 384B+ without packing; latency floor a
		// few microseconds, growing with packet size (store-and-forward).
		if r.PacketBytes >= 384 && r.LineRatePct < 95 {
			t.Fatalf("%dB: line rate %.1f%%", r.PacketBytes, r.LineRatePct)
		}
		if r.MinUs <= 0 || r.MaxUs < r.AvgUs || r.AvgUs < r.MinUs {
			t.Fatalf("latency stats inconsistent: %+v", r)
		}
	}
	// Store-and-forward: the latency floor grows with packet size
	// (§6.1.2: "minimum latency ... increases with packet size").
	if !(rows[2].MinUs > rows[0].MinUs) {
		t.Fatalf("store-and-forward latency floor must grow with size: %+v", rows)
	}
}

func TestRecoveryMatchesAppendixE(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sim in -short mode")
	}
	r, err := Recovery()
	if err != nil {
		t.Fatal(err)
	}
	// Local detection is bounded by th*interval plus one tick of slack.
	if r.LocalUs <= 0 || r.LocalUs > r.DetectUs+2*r.IntervalUs {
		t.Fatalf("local withdrawal %vus vs bound %vus", r.LocalUs, r.DetectUs)
	}
	// Fabric-wide propagation includes detection plus the advertisement
	// chain; it must exceed local detection and stay within the Appendix E
	// worst-case budget (with a tick of slack).
	if r.PropagatedUs < r.LocalUs {
		t.Fatalf("propagated (%vus) faster than local (%vus)", r.PropagatedUs, r.LocalUs)
	}
	if r.PropagatedUs > r.AnalyticUs+3*r.IntervalUs {
		t.Fatalf("propagated %vus exceeds Appendix E budget %vus", r.PropagatedUs, r.AnalyticUs)
	}
}
