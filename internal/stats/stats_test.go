package stats

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic dataset is 32/7.
	if got := w.Var(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford must be zero")
	}
}

// Property: Welford matches the two-pass formulas.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			ss += (float64(v) - mean) * (float64(v) - mean)
		}
		variance := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-variance) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	bins := h.Bins()
	for i, c := range bins {
		if c != 1 {
			t.Fatalf("bin %d = %d, want 1", i, c)
		}
	}
	if h.N() != 10 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	bins := h.Bins()
	if bins[0] != 1 || bins[9] != 1 {
		t.Fatalf("clamping failed: %v", bins)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); math.Abs(q-50.5) > 1.0 {
		t.Fatalf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-99.5) > 1.0 {
		t.Fatalf("p99 = %v, want ~99", q)
	}
}

func TestHistogramCCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(2.5)
	h.Add(3.5)
	ccdf := h.CCDF()
	want := []float64{1, 0.75, 0.5, 0.25}
	for i := range want {
		if math.Abs(ccdf[i]-want[i]) > 1e-12 {
			t.Fatalf("CCDF = %v, want %v", ccdf, want)
		}
	}
}

func TestHistogramWriteTSV(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	var buf bytes.Buffer
	if err := h.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty TSV output")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSampleQuantilesAndCDF(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if q := s.Quantile(0.5); q != 51 {
		t.Fatalf("median = %v, want 51", q)
	}
	xs, ps := s.CDF()
	if xs[0] != 1 || ps[0] != 0.01 || xs[99] != 100 || ps[99] != 1.0 {
		t.Fatalf("CDF endpoints wrong: %v %v", xs[0], ps[99])
	}
	if f := s.FractionAtLeast(91); math.Abs(f-0.1) > 1e-12 {
		t.Fatalf("FractionAtLeast = %v, want 0.1", f)
	}
}

func TestDiscrete(t *testing.T) {
	d := NewDiscrete([]int{64, 1500}, []float64{3, 1})
	rng := rand.New(rand.NewSource(1))
	n64 := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := d.Sample(rng)
		if v != 64 && v != 1500 {
			t.Fatalf("unexpected value %d", v)
		}
		if v == 64 {
			n64++
		}
	}
	frac := float64(n64) / draws
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("P(64) = %v, want ~0.75", frac)
	}
	if m := d.Mean(); math.Abs(m-(0.75*64+0.25*1500)) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	// Uniform on [0, 10].
	e := NewEmpiricalCDF([]float64{0, 10}, []float64{0, 1})
	rng := rand.New(rand.NewSource(7))
	var w Welford
	for i := 0; i < 200000; i++ {
		x := e.Sample(rng)
		if x < 0 || x > 10 {
			t.Fatalf("sample %v out of range", x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", w.Mean())
	}
	if m := e.Mean(); math.Abs(m-5) > 1e-12 {
		t.Fatalf("analytic mean = %v", m)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0.5, 4, 30, 200} {
		var w Welford
		for i := 0; i < 20000; i++ {
			w.Add(float64(Poisson(rng, mean)))
		}
		if math.Abs(w.Mean()-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, w.Mean())
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(Exp(rng, 3.0))
	}
	if math.Abs(w.Mean()-3.0) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3", w.Mean())
	}
}

// Property: Permutation returns a derangement (no host sends to itself).
func TestPropertyPermutationDerangement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 2; n < 64; n++ {
		p := Permutation(rng, n)
		if len(p) != n {
			t.Fatalf("len = %d", len(p))
		}
		seen := make([]bool, n)
		for i, v := range p {
			if i == v {
				t.Fatalf("fixed point at %d in %v", i, p)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in %v", v, p)
			}
			seen[v] = true
		}
	}
}
