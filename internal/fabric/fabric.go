// Package fabric is the topology-faithful cell fabric: every Fabric
// Adapter and Fabric Element of a topo.Clos instance is its own device,
// every serial link its own serialization queue + propagation pipe, and
// cells are sprayed per-link at every tier with the §5.3 round-robin
// permutation arbiter (reach.Spreader). It replaces the abstract
// FabricHops-deep pipe of netsim's fluid Stardust model for experiments
// that need per-link load balance, tier-by-tier buffering or link
// failures: it implements netsim.CellFabric, so the Stardust transport
// substrate plugs in unchanged.
//
// Routing is the up/down scheme of §3.1: the source FA sprays each cell
// over its live uplinks; a first-tier FE delivers directly when it has a
// live down link to the destination FA and sprays upward otherwise; a
// spine FE sprays over the down links that reach the destination. The
// per-device forwarding state is the hardware reachability table of
// §5.8 (reach.Table): link failures are detected locally at once
// (keepalive, §5.9) and the lost reachability propagates to the spine
// after Cfg.ReachDelay via reach messages, exactly the protocol the paper
// sizes in Appendix E.
//
// The per-cell hot path allocates nothing: cells are pooled
// netsim.Packets, every directed link's route is prebuilt once, spreader
// reshuffles are in place, and forwarding state lives in dense bitmaps.
package fabric

import (
	"fmt"
	"math/rand"

	"stardust/internal/netsim"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Config sizes the fabric's links and control plane.
type Config struct {
	LinkRate  netsim.Bps // per serial link (the paper runs the fabric ~5% over the edge)
	LinkDelay sim.Time   // per-hop propagation
	LinkBytes int        // per-link queue capacity
	// ReshuffleRounds is how many full traversals a spreader keeps one
	// permutation before reshuffling (§5.3's anti-synchronization).
	ReshuffleRounds int
	// ReachDelay is the latency for a reachability withdrawal to reach the
	// spine tier after a local failure (Appendix E's propagation step).
	ReachDelay sim.Time
	Seed       int64
}

// DefaultConfig returns a fabric configuration for the given link speed
// and hop delay.
func DefaultConfig(rate netsim.Bps, delay sim.Time, seed int64) Config {
	return Config{
		LinkRate:        rate,
		LinkDelay:       delay,
		LinkBytes:       256 << 10,
		ReshuffleRounds: 64,
		ReachDelay:      50 * sim.Microsecond,
		Seed:            seed,
	}
}

// ClosFor returns a two-tier Clos sized to front a k-ary fat-tree's edge:
// one FA per edge switch (k²/2 of them) with k/2 uplinks each, k
// first-tier FEs and k spines, with the FE1 uplink count rounded up to a
// multiple of the spine count so every FE1 reaches every FE2 at full
// bisection bandwidth.
func ClosFor(k int) (*topo.Clos, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("fabric: k must be even and >= 4, got %d", k)
	}
	fe1Up := (k + 3) / 4 * k // >= k²/4 down links, and a multiple of k spines
	return topo.NewClos2(k*k/2, k/2, k, k*k/4, fe1Up, k)
}

// link is one direction of a physical serial link: a serialization queue,
// the shared propagation pipe, and an arrival gate (the link itself) that
// loses cells when the link is down — cells already serialized into a
// failed link are lost on the wire, like the real thing.
type link struct {
	net   *Net
	q     *netsim.Queue
	to    netsim.Handler // receiving device
	route []netsim.Handler
	up    bool
}

// Receive implements netsim.Handler: the cell reaches the far end.
func (l *link) Receive(c *netsim.Packet) {
	if !l.up {
		l.net.DeadDrops++
		c.Release()
		return
	}
	l.to.Receive(c)
}

func (l *link) send(c *netsim.Packet) {
	c.SetRoute(l.route)
	c.SendOn()
}

// faDev is a Fabric Adapter's fabric-facing side: the uplink sprayer.
type faDev struct {
	net  *Net
	id   int
	up   []*link
	live reach.Bitmap // uplinks passing keepalive
	spr  *reach.Spreader
}

// faEgress terminates cells at their destination Fabric Adapter.
type faEgress struct {
	net *Net
	id  int
}

// Receive implements netsim.Handler.
func (e *faEgress) Receive(c *netsim.Packet) {
	e.net.Delivered++
	if fn := e.net.OnDeliver; fn != nil {
		fn(c)
		return
	}
	c.Release()
}

// feDev is a Fabric Element (either tier). FE1s have both down links
// (to FAs) and uplinks (to FE2s); FE2s have down links only (to FE1s).
type feDev struct {
	net      *Net
	id       topo.NodeID
	down     []*link
	ups      []*link      // nil on FE2s and in single-tier fabrics
	downPeer []int        // peer device index per down port
	tbl      *reach.Table // destination FA -> down links that reach it
	liveUp   reach.Bitmap // FE1 only: uplinks passing keepalive
	sprDown  *reach.Spreader
	sprUp    *reach.Spreader
}

// Receive implements netsim.Handler: forward one cell. Down beats up
// (shortest path); a cell that already descended must not climb again
// (no valleys), so during reachability convergence a mis-steered cell is
// discarded rather than looped — the paper's packet-discard window.
func (d *feDev) Receive(c *netsim.Packet) {
	if l := d.sprDown.Next(d.tbl.Links(int(c.Dst))); l >= 0 {
		c.Down = true
		d.down[l].send(c)
		return
	}
	if d.ups != nil && !c.Down {
		if l := d.sprUp.Next(d.liveUp); l >= 0 {
			d.ups[l].send(c)
			return
		}
	}
	d.net.NoRouteDrops++
	c.Release()
}

// Net owns every device and directed link of one Clos instance. It
// implements netsim.CellFabric.
type Net struct {
	Cfg  Config
	Sim  *sim.Simulator
	Topo *topo.Clos

	fas    []*faDev
	egress []faEgress
	fe1    []*feDev
	fe2    []*feDev
	// links holds both directions of every topology link: 2i is A->B,
	// 2i+1 is B->A.
	links    []*link
	linkDown []bool // per topology link
	pipe     *netsim.Pipe
	hairpin  [][]netsim.Handler // per FA: local switching path (src FA == dst FA)

	// OnDeliver receives every cell that reaches its destination FA. The
	// callback owns the cell (must forward or Release it). When nil,
	// delivered cells are Released.
	OnDeliver func(*netsim.Packet)

	// OnLinkState, when non-nil, observes every administrative state
	// change of a topology link (FailLink/RestoreLink), at the sim time
	// the adjacent devices detect it (keepalive, §5.9). The management
	// plane's event bus hangs off this hook.
	OnLinkState func(link int, up bool)
	// OnReachUpdate, when non-nil, observes every reachability update
	// landing on the spine tier: the delayed withdrawal/readvertisement
	// of an FE1's reachable set (§5.8). reachable is the FA count the FE1
	// advertises after the update.
	OnReachUpdate func(fe1 int, reachable int)

	// Stats
	Injected     uint64
	Delivered    uint64
	DeadDrops    uint64 // cells lost on a failed link
	NoRouteDrops uint64 // cells with no live next hop (convergence window)
}

// New builds all devices and links of the Clos instance c.
func New(s *sim.Simulator, cfg Config, c *topo.Clos) (*Net, error) {
	if cfg.LinkRate <= 0 || cfg.LinkBytes <= 0 {
		return nil, fmt.Errorf("fabric: need positive link rate and capacity")
	}
	if cfg.ReshuffleRounds < 1 {
		cfg.ReshuffleRounds = 64
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := &Net{
		Cfg:      cfg,
		Sim:      s,
		Topo:     c,
		pipe:     netsim.NewPipe(s, cfg.LinkDelay),
		linkDown: make([]bool, len(c.Links)),
	}
	seeds := rand.New(rand.NewSource(cfg.Seed))

	n.fas = make([]*faDev, c.NumFA)
	n.egress = make([]faEgress, c.NumFA)
	n.hairpin = make([][]netsim.Handler, c.NumFA)
	for i := range n.fas {
		n.egress[i] = faEgress{net: n, id: i}
		n.fas[i] = &faDev{
			net:  n,
			id:   i,
			up:   make([]*link, c.FAUplinks),
			live: reach.NewBitmap(c.FAUplinks),
			spr:  reach.NewSpreader(c.FAUplinks, cfg.ReshuffleRounds, seeds.Int63()),
		}
		n.hairpin[i] = []netsim.Handler{n.pipe, &n.egress[i]}
	}
	mkFE := func(id topo.NodeID, downs, ups int) *feDev {
		d := &feDev{
			net:      n,
			id:       id,
			down:     make([]*link, downs),
			downPeer: make([]int, downs),
			tbl:      reach.NewTable(c.NumFA, downs),
			sprDown:  reach.NewSpreader(downs, cfg.ReshuffleRounds, seeds.Int63()),
		}
		if ups > 0 {
			d.ups = make([]*link, ups)
			d.liveUp = reach.NewBitmap(ups)
			d.sprUp = reach.NewSpreader(ups, cfg.ReshuffleRounds, seeds.Int63())
		}
		return d
	}
	n.fe1 = make([]*feDev, c.NumFE1)
	for i := range n.fe1 {
		n.fe1[i] = mkFE(topo.NodeID{Kind: topo.KindFE1, Index: i}, c.FE1Down, c.FE1Up)
	}
	n.fe2 = make([]*feDev, c.NumFE2)
	for i := range n.fe2 {
		n.fe2[i] = mkFE(topo.NodeID{Kind: topo.KindFE2, Index: i}, c.FE2Down, 0)
	}

	mkLink := func(from topo.NodeID, port int, to netsim.Handler) *link {
		l := &link{
			net: n,
			q:   netsim.NewQueue(s, fmt.Sprintf("%v:%d", from, port), cfg.LinkRate, cfg.LinkBytes, 0),
			to:  to,
			up:  true,
		}
		l.route = []netsim.Handler{l.q, n.pipe, l}
		return l
	}
	for _, lk := range c.Links {
		switch {
		case lk.A.Kind == topo.KindFA && lk.B.Kind == topo.KindFE1:
			fa, fe := n.fas[lk.A.Index], n.fe1[lk.B.Index]
			upL := mkLink(lk.A, lk.APort, fe)
			fa.up[lk.APort] = upL
			fa.live.Set(lk.APort)
			dnL := mkLink(lk.B, lk.BPort, &n.egress[lk.A.Index])
			fe.down[lk.BPort] = dnL
			fe.downPeer[lk.BPort] = lk.A.Index
			n.links = append(n.links, upL, dnL)
		case lk.A.Kind == topo.KindFE1 && lk.B.Kind == topo.KindFE2:
			fe, sp := n.fe1[lk.A.Index], n.fe2[lk.B.Index]
			u := lk.APort - c.FE1Down
			upL := mkLink(lk.A, lk.APort, sp)
			fe.ups[u] = upL
			fe.liveUp.Set(u)
			dnL := mkLink(lk.B, lk.BPort, fe)
			sp.down[lk.BPort] = dnL
			sp.downPeer[lk.BPort] = lk.A.Index
			n.links = append(n.links, upL, dnL)
		default:
			return nil, fmt.Errorf("fabric: unsupported link %v-%v", lk.A, lk.B)
		}
	}

	// Seed the reachability tables from the wiring: each FE1 down port
	// advertises its attached FA; each FE2 down port carries the full
	// reachable set of the FE1 behind it (§5.8).
	one := reach.NewBitmap(c.NumFA)
	for _, fe := range n.fe1 {
		for p, fa := range fe.downPeer {
			one.Reset()
			one.Set(fa)
			applySet(fe.tbl, p, one, c.NumFA)
		}
	}
	for _, sp := range n.fe2 {
		for p, f := range sp.downPeer {
			applySet(sp.tbl, p, n.fe1[f].tbl.ReachableSet(), c.NumFA)
		}
	}
	return n, nil
}

// applySet installs set as the advertised reachability of one link via
// the wire-format message sequence (exercising the real protocol path).
func applySet(t *reach.Table, port int, set reach.Bitmap, numFA int) {
	for _, m := range reach.BuildMessages(0, set, numFA) {
		if err := t.ApplyMessage(port, m); err != nil {
			panic(err) // construction-time wiring bug
		}
	}
}

// Inject sends one cell from srcFA toward dstFA. The cell's Flow field is
// opaque to the fabric and travels with it; delivered cells are handed to
// OnDeliver, lost cells are Released. Implements netsim.CellFabric.
func (n *Net) Inject(c *netsim.Packet, srcFA, dstFA int) {
	n.Injected++
	c.Dst = int32(dstFA)
	c.Down = false
	if srcFA == dstFA {
		// Local switching inside the adapter: no fabric crossing.
		c.SetRoute(n.hairpin[srcFA])
		c.SendOn()
		return
	}
	d := n.fas[srcFA]
	if l := d.spr.Next(d.live); l >= 0 {
		d.up[l].send(c)
		return
	}
	n.NoRouteDrops++
	c.Release()
}

// Drops counts every cell lost inside the fabric: failed-link losses,
// no-route discards during convergence, and link-queue tail drops.
// Implements netsim.CellFabric.
func (n *Net) Drops() uint64 {
	d := n.DeadDrops + n.NoRouteDrops
	for _, l := range n.links {
		d += l.q.Drops
	}
	return d
}

// FailLink takes down both directions of topology link i (an index into
// Topo.Links). The adjacent devices detect the loss immediately
// (keepalive, §5.9); withdrawal of any lost FA reachability reaches the
// spine tier after Cfg.ReachDelay (§5.8, Appendix E).
func (n *Net) FailLink(i int) {
	if n.linkDown[i] {
		return
	}
	n.linkDown[i] = true
	n.links[2*i].up = false
	n.links[2*i+1].up = false
	n.applyLinkState(n.Topo.Links[i], false)
	if n.OnLinkState != nil {
		n.OnLinkState(i, false)
	}
}

// RestoreLink brings topology link i back up and re-advertises the
// recovered reachability after the same propagation delay.
func (n *Net) RestoreLink(i int) {
	if !n.linkDown[i] {
		return
	}
	n.linkDown[i] = false
	n.links[2*i].up = true
	n.links[2*i+1].up = true
	n.applyLinkState(n.Topo.Links[i], true)
	if n.OnLinkState != nil {
		n.OnLinkState(i, true)
	}
}

func (n *Net) applyLinkState(lk topo.Link, up bool) {
	switch lk.A.Kind {
	case topo.KindFA: // FA <-> FE1
		fa, fe := n.fas[lk.A.Index], n.fe1[lk.B.Index]
		if up {
			fa.live.Set(lk.APort)
			one := reach.NewBitmap(n.Topo.NumFA)
			one.Set(lk.A.Index)
			applySet(fe.tbl, lk.BPort, one, n.Topo.NumFA)
		} else {
			fa.live.Clear(lk.APort)
			fe.tbl.LinkDown(lk.BPort)
		}
		n.readvertise(fe)
	case topo.KindFE1: // FE1 <-> FE2
		fe, sp := n.fe1[lk.A.Index], n.fe2[lk.B.Index]
		u := lk.APort - n.Topo.FE1Down
		if up {
			fe.liveUp.Set(u)
			applySet(sp.tbl, lk.BPort, fe.tbl.ReachableSet(), n.Topo.NumFA)
		} else {
			fe.liveUp.Clear(u)
			sp.tbl.LinkDown(lk.BPort)
		}
	}
}

// readvertise propagates fe's (changed) reachable set to every spine it
// still has a live link to, after the protocol's propagation delay. The
// set is recomputed at delivery time, so overlapping failures coalesce
// into the latest truth.
func (n *Net) readvertise(fe *feDev) {
	if len(n.fe2) == 0 {
		return // single-tier fabric: FAs spray blindly, nothing upstream
	}
	n.Sim.After(n.Cfg.ReachDelay, func() {
		set := fe.tbl.ReachableSet()
		msgs := reach.BuildMessages(uint16(fe.id.Index), set, n.Topo.NumFA)
		for _, sp := range n.fe2 {
			for p, peer := range sp.downPeer {
				if peer != fe.id.Index || !sp.down[p].up {
					continue
				}
				for _, m := range msgs {
					if err := sp.tbl.ApplyMessage(p, m); err != nil {
						panic(err)
					}
				}
			}
		}
		if n.OnReachUpdate != nil {
			n.OnReachUpdate(fe.id.Index, set.Count())
		}
	})
}

// UnreachablePairs cross-checks the reachability state after failures: it
// counts (spine, destination FA) pairs with no live down path plus FAs
// with no live uplink at all. Zero means every destination is still
// deliverable from everywhere — the §5.9 self-healing invariant.
func (n *Net) UnreachablePairs() int {
	bad := 0
	for _, sp := range n.fe2 {
		for fa := 0; fa < n.Topo.NumFA; fa++ {
			if !sp.tbl.Reachable(fa) {
				bad++
			}
		}
	}
	for _, d := range n.fas {
		if d.live.Count() == 0 {
			bad++
		}
	}
	return bad
}

// FAUplinkBytes returns the forwarded byte count of every FA uplink
// queue in device-major order — the per-link load-balance evidence for
// the linkload experiment.
func (n *Net) FAUplinkBytes() []uint64 {
	out := make([]uint64, 0, n.Topo.NumFA*n.Topo.FAUplinks)
	for _, d := range n.fas {
		for _, l := range d.up {
			out = append(out, l.q.FwdBytes)
		}
	}
	return out
}

// LinkCounters is a point-in-time snapshot of one directed link's
// counters — the raw material of the management plane's telemetry scrape.
type LinkCounters struct {
	Link       int  // topology link index (into Topo.Links)
	Dir        int  // 0 = A->B, 1 = B->A
	Up         bool // administrative state
	FwdBytes   uint64
	FwdCells   uint64
	Drops      uint64 // serialization-queue tail drops
	QueueBytes int    // instantaneous occupancy
	PeakBytes  int
}

// NumLinks returns the number of full-duplex topology links.
func (n *Net) NumLinks() int { return len(n.linkDown) }

// LinkUp reports the administrative state of topology link i.
func (n *Net) LinkUp(i int) bool { return !n.linkDown[i] }

// ReadLinkCounters snapshots both directions of topology link i into out
// (a 2-element window), so a periodic scraper can read the whole fabric
// without allocating. out[0] is the A->B direction.
func (n *Net) ReadLinkCounters(i int, out *[2]LinkCounters) {
	for d := 0; d < 2; d++ {
		l := n.links[2*i+d]
		out[d] = LinkCounters{
			Link:       i,
			Dir:        d,
			Up:         l.up,
			FwdBytes:   l.q.FwdBytes,
			FwdCells:   l.q.Forwarded,
			Drops:      l.q.Drops,
			QueueBytes: l.q.Bytes(),
			PeakBytes:  l.q.PeakBytes,
		}
	}
}

// VisitQueues visits every directed link's serialization queue (for
// aggregate statistics).
func (n *Net) VisitQueues(fn func(q *netsim.Queue)) {
	for _, l := range n.links {
		fn(l.q)
	}
}

// QueueDrops sums tail drops across all link queues.
func (n *Net) QueueDrops() uint64 {
	var d uint64
	n.VisitQueues(func(q *netsim.Queue) { d += q.Drops })
	return d
}
