//go:build race

package fabric

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are meaningless under it.
const raceEnabled = true
