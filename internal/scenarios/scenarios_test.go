package scenarios

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"stardust/internal/distsim"
	"stardust/internal/engine"
)

// TestMain routes forked peer children into the peer loop: the
// fabric/distscale scenario re-executes the current binary — this test
// binary, when run under go test — with STARDUST_PEER_JOIN set.
func TestMain(m *testing.M) {
	distsim.MaybeRunPeer()
	os.Exit(m.Run())
}

// The full scenario set the six cmd binaries rely on.
var wantScenarios = []string{
	"htsim/permutation", "htsim/fct", "htsim/incast", "htsim/parperm",
	"fabric/fig9", "fabric/pushpull", "fabric/recovery",
	"fabric/linkload", "fabric/failures",
	"fabric/parscale", "fabric/parheal", "fabric/distscale",
	"trace/record", "trace/replay",
	"system/arista",
	"pack/fig8a", "pack/fig8b",
	"scaling/fig2", "scaling/table2", "scaling/fig3",
	"scaling/fig10d", "scaling/fig11", "scaling/appendixE",
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range wantScenarios {
		sc, err := engine.Lookup(name)
		if err != nil {
			t.Errorf("missing scenario %s: %v", name, err)
			continue
		}
		if sc.Desc == "" {
			t.Errorf("%s has no description", name)
		}
	}
}

func runBytes(t *testing.T, opts engine.Options, jobs []engine.Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts.Out = &buf
	if _, err := engine.Run(opts, jobs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance-critical guarantee: running the same scenarios with the
// same seed twice — and at different worker counts — yields byte-identical
// output, even though instances share the global packet free list.
func TestScenarioDeterminism(t *testing.T) {
	jobs := []engine.Job{
		{Scenario: "fabric/pushpull"},
		{Scenario: "htsim/permutation", Params: engine.Params{"k": "4", "dur_ms": "3", "warmup_ms": "2"}},
		{Scenario: "scaling/appendixE"},
	}
	for _, format := range []string{"text", "json", "csv"} {
		a := runBytes(t, engine.Options{Workers: 1, Seed: 1, Format: format}, jobs)
		b := runBytes(t, engine.Options{Workers: 4, Seed: 1, Format: format}, jobs)
		if !bytes.Equal(a, b) {
			t.Fatalf("format %s: workers=1 vs workers=4 outputs differ:\n%s\n----\n%s", format, a, b)
		}
		c := runBytes(t, engine.Options{Workers: 4, Seed: 1, Format: format}, jobs)
		if !bytes.Equal(b, c) {
			t.Fatalf("format %s: repeated run differs", format)
		}
	}
}

// The sharded-engine acceptance criterion: the same seed must produce a
// byte-identical result stream for shards ∈ {1, 2, 4}, at any worker
// count, across every output format. The parscale/parheal digests cover
// the full per-link counter state, so this is not merely an aggregate
// comparison.
func TestShardedScenarioDeterminism(t *testing.T) {
	jobs := []engine.Job{
		{Scenario: "fabric/parscale", Params: engine.Params{"k": "4", "dur_ms": "2"}},
		// fail at 1ms, heal at 2ms: the outage must span real windows so
		// the dead-link/withdrawal paths are part of what is compared.
		{Scenario: "fabric/parheal", Params: engine.Params{"k": "4", "dur_ms": "3", "fail_ms": "1", "heal_ms": "2"}},
	}
	for _, format := range []string{"text", "json", "csv"} {
		ref := runBytes(t, engine.Options{Workers: 1, Shards: 1, Seed: 1, Format: format}, jobs)
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{1, 2, 4} {
				got := runBytes(t, engine.Options{Workers: workers, Shards: shards, Seed: 1, Format: format}, jobs)
				if !bytes.Equal(got, ref) {
					t.Fatalf("workers=%d shards=%d format=%s diverged from the 1x1 reference:\n%s\n----\n%s",
						workers, shards, format, got, ref)
				}
			}
		}
	}

	// The end-to-end transport jobs are an order of magnitude heavier
	// (full TCP flows), so they cover the same workers×shards grid in one
	// format — the per-format emission machinery is already exercised
	// above, and CI's determinism matrix diffs the CLI output too.
	tjobs := []engine.Job{
		// TCP over the sharded Stardust substrate, full digest of the
		// delivered-byte vector.
		{Scenario: "htsim/parperm", Params: engine.Params{"k": "4", "dur_ms": "3", "warmup_ms": "1"}},
		// And the regular Fig 10(a) scenario in fabric=true mode, which
		// routes through the same sharded transport under the -shards flag.
		{Scenario: "htsim/permutation", Params: engine.Params{
			"k": "4", "dur_ms": "3", "warmup_ms": "2", "proto": "Stardust", "fabric": "true"}},
	}
	ref := runBytes(t, engine.Options{Workers: 1, Shards: 1, Seed: 1, Format: "json"}, tjobs)
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4} {
			if workers == 1 && shards == 1 {
				continue
			}
			got := runBytes(t, engine.Options{Workers: workers, Shards: shards, Seed: 1, Format: "json"}, tjobs)
			if !bytes.Equal(got, ref) {
				t.Fatalf("transport workers=%d shards=%d diverged from the 1x1 reference:\n%s\n----\n%s",
					workers, shards, got, ref)
			}
		}
	}
}

// The telemetry-pipeline acceptance criteria at the scenario layer: the
// recorded stream (identified by its digest in the output) must be
// byte-identical across {workers}×{shards}, and an unchanged replay must
// report zero divergence — expect_zero=true makes the scenario itself
// fail otherwise.
func TestTraceScenarioDeterminism(t *testing.T) {
	jobs := []engine.Job{
		{Scenario: "trace/record", Params: engine.Params{
			"dur_us": "150", "fail": "1", "fail_us": "60", "heal_us": "100"}},
		{Scenario: "trace/replay", Params: engine.Params{
			"dur_us": "150", "expect_zero": "true"}},
	}
	ref := runBytes(t, engine.Options{Workers: 1, Shards: 1, Seed: 1, Format: "json"}, jobs)
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4} {
			if workers == 1 && shards == 1 {
				continue
			}
			got := runBytes(t, engine.Options{Workers: workers, Shards: shards, Seed: 1, Format: "json"}, jobs)
			if !bytes.Equal(got, ref) {
				t.Fatalf("trace workers=%d shards=%d diverged from the 1x1 reference:\n%s\n----\n%s",
					workers, shards, got, ref)
			}
		}
	}
}

// Record to a file, replay it unchanged (zero divergence required), then
// replay with a what-if link failure and require real divergence.
func TestTraceReplayWhatIf(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.strec")
	if _, err := engine.Run(engine.Options{Seed: 3}, []engine.Job{{
		Scenario: "trace/record",
		Params:   engine.Params{"dur_us": "200", "out": out},
	}}); err != nil {
		t.Fatal(err)
	}
	metric := func(rs []engine.RunResult, name string) float64 {
		t.Helper()
		for _, m := range rs[0].Result.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s missing", name)
		return 0
	}
	rs, err := engine.Run(engine.Options{Seed: 3}, []engine.Job{{
		Scenario: "trace/replay",
		Params:   engine.Params{"in": out, "expect_zero": "true"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if metric(rs, "byte_identical") != 1 {
		t.Fatalf("unchanged replay not byte-identical: %s", rs[0].Result.Text)
	}
	rs, err = engine.Run(engine.Options{Seed: 3}, []engine.Job{{
		Scenario: "trace/replay",
		Params:   engine.Params{"in": out, "fail_link": "0", "fail_at_us": "50"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if metric(rs, "zero_divergence") != 0 || metric(rs, "divergent_windows") == 0 {
		t.Fatalf("what-if link failure reported no divergence: %s", rs[0].Result.Text)
	}
}

// The 2-peer distributed recording must produce the same stream bytes as
// the in-process run — asserted inside trace/record via the peers param,
// which forks real peer processes.
func TestTraceDistRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: forks peer processes")
	}
	got := runBytes(t, engine.Options{Seed: 7, Format: "text"}, []engine.Job{{
		Scenario: "trace/record",
		Params:   engine.Params{"shards": "2", "dur_us": "150", "peers": "2"},
	}})
	if !strings.Contains(string(got), "2 peer processes: stream byte-identical") {
		t.Fatalf("trace/record missing 2-peer verification line:\n%s", got)
	}
}

// A different seed must actually change a randomized experiment.
func TestScenarioSeedMatters(t *testing.T) {
	jobs := []engine.Job{{Scenario: "htsim/permutation",
		Params: engine.Params{"k": "4", "dur_ms": "3", "warmup_ms": "2", "proto": "Stardust"}}}
	a := runBytes(t, engine.Options{Seed: 1, Format: "json"}, jobs)
	b := runBytes(t, engine.Options{Seed: 2, Format: "json"}, jobs)
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical permutation results")
	}
}

// Analytic scenarios are cheap; exercise every one end to end.
func TestAnalyticScenariosRun(t *testing.T) {
	jobs := []engine.Job{
		{Scenario: "scaling/fig2"},
		{Scenario: "scaling/table2"},
		{Scenario: "scaling/fig3"},
		{Scenario: "scaling/fig10d"},
		{Scenario: "scaling/fig11"},
		{Scenario: "scaling/appendixE"},
		{Scenario: "pack/fig8a"},
		{Scenario: "pack/fig8b"},
	}
	results, err := engine.Run(engine.Options{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Result.Text == "" {
			t.Errorf("%s produced no text", r.Name)
		}
	}
}

func TestFabricFig9Variants(t *testing.T) {
	results, err := engine.Run(engine.Options{Workers: 2}, []engine.Job{{
		Scenario: "fabric/fig9",
		Params:   engine.Params{"scale": "8", "utils": "0.66,0.8"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d instances, want 2 (one per utilization)", len(results))
	}
	for _, r := range results {
		if r.Result.Metrics[0].Name != "lat_p50_us" {
			t.Fatalf("unexpected first metric %q", r.Result.Metrics[0].Name)
		}
	}
}

func TestSystemAristaVariant(t *testing.T) {
	results, err := engine.Run(engine.Options{}, []engine.Job{{
		Scenario: "system/arista",
		Params:   engine.Params{"sizes": "384", "dur_us": "50"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d instances", len(results))
	}
	var lineRate float64
	for _, m := range results[0].Result.Metrics {
		if m.Name == "line_rate_pct" {
			lineRate = m.Value
		}
	}
	if lineRate < 90 {
		t.Fatalf("384B below line rate: %v", lineRate)
	}
}

// On a multicore machine, a sweep at -workers=4 must beat -workers=1 on
// wall clock. Single-CPU machines cannot show a speedup; skip there.
func TestParallelSweepSpeedup(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine: parallel instances time-share one core")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	jobs := []engine.Job{{Scenario: "htsim/permutation",
		Params: engine.Params{"k": "4", "dur_ms": "5", "warmup_ms": "2"}}}
	measure := func(workers int) time.Duration {
		t0 := time.Now()
		var buf bytes.Buffer
		if _, err := engine.Run(engine.Options{Workers: workers, Out: &buf}, jobs); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	serial := measure(1)
	parallel := measure(4)
	// Four independent ~equal instances on >= 2 CPUs must comfortably beat
	// serial; 0.85 leaves headroom for scheduler noise on loaded machines
	// while still catching an accidentally serialized worker pool.
	if float64(parallel) >= 0.85*float64(serial) {
		t.Fatalf("workers=4 (%v) not faster than workers=1 (%v)", parallel, serial)
	}
}

// Every registered scenario must document every parameter it accepts:
// the -list output and the stardustd scenario API both promise a full
// table, so an undocumented knob is a regression.
// TestDistscaleScenario exercises the full distributed path from the
// scenario layer: fork two real peer processes, serve the run over TCP,
// and require the byte-identical verdict in the report.
func TestDistscaleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: forks peer processes")
	}
	out := runBytes(t, engine.Options{Seed: 7, Format: "text"}, []engine.Job{{
		Scenario: "fabric/distscale",
		Params:   engine.Params{"peers": "2", "dur_ms": "1"},
	}})
	if !strings.Contains(string(out), "2 peer processes: byte-identical") {
		t.Fatalf("distscale report missing verification line:\n%s", out)
	}
}

func TestAllParamsDocumented(t *testing.T) {
	for _, sc := range engine.List() {
		if strings.HasPrefix(sc.Name, "test/") {
			continue
		}
		for _, d := range sc.ParamDocs() {
			if d.Desc == "" {
				t.Errorf("%s: parameter %q (default %q) has no doc string", sc.Name, d.Key, d.Default)
			}
		}
	}
}
