package mgmt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"strconv"
	"time"

	"stardust/internal/distsim"
	"stardust/internal/engine"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// maxBodyBytes caps every body-decoding endpoint (run submission, twin
// replay). Oversized bodies get 413 with a JSON error instead of an
// unbounded read.
const maxBodyBytes = 64 << 20

// Cluster is the peer-ring view the server consults when stardustd runs
// as part of a multi-node serving tier (implemented by
// internal/cluster; nil for a solo daemon).
type Cluster interface {
	// Owner maps a cache key to its ring owner and reports whether that
	// owner is this node.
	Owner(key string) (addr string, local bool)
	// ForwardSubmit relays a submission toward the key's owner, walking
	// ring successors with bounded retry/backoff on failure. It returns
	// the answering peer's response. ErrPlaceLocal means placement fell
	// through to this node (owner and every earlier successor
	// unreachable, or this node is next in ring order): the caller must
	// submit locally.
	ForwardSubmit(ctx context.Context, req RunRequest, client string) (*ForwardResult, error)
	// FetchResult retrieves the result bytes for a cache key from the
	// first peer (in ring order) that has them.
	FetchResult(ctx context.Context, key string) (out []byte, from string, err error)
	// Info describes ring membership and forwarding counters.
	Info() any
}

// ErrPlaceLocal is returned by Cluster.ForwardSubmit when ring
// placement lands on the local node.
var ErrPlaceLocal = errors.New("cluster: placement is local")

// ForwardResult is the answering peer's response to a forwarded
// submission, proxied back to the client verbatim.
type ForwardResult struct {
	Status     int
	Body       []byte
	Served     string // address of the peer that answered
	RetryAfter string // peer's Retry-After header on 429 backpressure
}

// Server is stardustd's HTTP face: scenario metadata, run submission
// over the bounded queue, run progress streaming, live fabric telemetry
// and events, and a Prometheus-style /metrics endpoint. The fabric run
// is optional (nil when the daemon serves scenario runs only).
type Server struct {
	mux     *http.ServeMux
	q       *RunQueue
	run     *FabricRun
	cluster Cluster
	started time.Time
}

// NewServer wires the routes. fr may be nil.
func NewServer(q *RunQueue, fr *FabricRun) *Server {
	s := &Server{mux: http.NewServeMux(), q: q, run: fr, started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /api/v1/scenarios", s.scenarios)
	s.mux.HandleFunc("POST /api/v1/runs", s.submit)
	s.mux.HandleFunc("GET /api/v1/runs", s.listRuns)
	s.mux.HandleFunc("GET /api/v1/runs/{id}", s.getRun)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/result", s.getResult)
	s.mux.HandleFunc("GET /api/v1/runs/{id}/stream", s.streamRun)
	s.mux.HandleFunc("GET /api/v1/cache/{key}", s.cacheGet)
	s.mux.HandleFunc("GET /api/v1/cluster", s.clusterInfo)
	s.mux.HandleFunc("GET /api/v1/fabric", s.fabricInfo)
	s.mux.HandleFunc("GET /api/v1/fabric/telemetry", s.telemetry)
	s.mux.HandleFunc("GET /api/v1/fabric/events", s.events)
	s.mux.HandleFunc("GET /api/v1/fabric/anomalies", s.anomalies)
	s.mux.HandleFunc("GET /api/v1/transport", s.transport)
	s.mux.HandleFunc("GET /api/v1/telemetry/stream", s.telemetryStream)
	s.mux.HandleFunc("GET /api/v1/telemetry/findings", s.telemetryFindings)
	s.mux.HandleFunc("POST /api/v1/replay", s.replay)
	s.mux.HandleFunc("GET /api/v1/distsim", s.distsimStats)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	// Live profiling of the daemon (the server uses its own mux, so the
	// net/http/pprof handlers are wired explicitly rather than relying on
	// that package's DefaultServeMux side effect):
	//
	//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
		"fabric": s.run != nil,
	})
}

// scenarioInfo is the API face of one registry entry — the same
// metadata engine's -list prints, structured.
type scenarioInfo struct {
	Name   string            `json:"name"`
	Desc   string            `json:"desc"`
	Params []engine.ParamDoc `json:"params,omitempty"`
}

func (s *Server) scenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, sc := range engine.List() {
		out = append(out, scenarioInfo{Name: sc.Name, Desc: sc.Desc, Params: sc.ParamDocs()})
	}
	writeJSON(w, http.StatusOK, out)
}

// SetCluster attaches the peer-ring view. Call before serving.
func (s *Server) SetCluster(c Cluster) { s.cluster = c }

// headerClient identifies the submitting client for fair-share
// accounting: the X-Stardust-Client header when present (preserved
// across peer forwarding), otherwise the remote host.
func headerClient(r *http.Request) string {
	if c := r.Header.Get("X-Stardust-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// decodeBody JSON-decodes a capped request body, distinguishing an
// oversized body (413) from malformed JSON (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	var tooBig *http.MaxBytesError
	switch {
	case err == nil:
		return true
	case errors.As(err, &tooBig):
		writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
	default:
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	return false
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	client := headerClient(r)
	// Clustered placement: a submission for a key owned by a peer is
	// forwarded there (unless already cached here, or it arrived via a
	// peer — forwarded submissions always execute locally, so placement
	// cannot loop). Owner failure walks ring successors; if every
	// candidate peer is unreachable this node is the fallback.
	if s.cluster != nil && r.Header.Get("X-Stardust-Forwarded") == "" {
		key := req.CacheKey()
		if _, cached := s.q.Cached(key); !cached {
			if _, local := s.cluster.Owner(key); !local {
				fwd, err := s.cluster.ForwardSubmit(r.Context(), req, client)
				if err == nil {
					w.Header().Set("Content-Type", "application/json")
					w.Header().Set("X-Stardust-Served-By", fwd.Served)
					if fwd.RetryAfter != "" {
						w.Header().Set("Retry-After", fwd.RetryAfter)
					}
					w.WriteHeader(fwd.Status)
					w.Write(fwd.Body)
					return
				}
				if !errors.Is(err, ErrPlaceLocal) {
					writeErr(w, http.StatusServiceUnavailable, "forwarding to ring owner failed: %v", err)
					return
				}
			}
		}
	}
	job, cached, err := s.q.Submit(req, client)
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		w.Header().Set("Retry-After", strconv.Itoa(int(ov.RetryAfter.Round(time.Second)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// cacheKeyPat is the shape of a content address: 64 hex chars.
var cacheKeyPat = regexp.MustCompile(`^[0-9a-f]{64}$`)

// cacheGet serves result bytes by content address. A local hit — a run
// completed here or a result already fetched from a peer — is pure
// byte-serving. On a miss, a clustered node fetches the bytes from the
// ring (owner first) and installs them in its local store, so the next
// read of the same key is a local hit; ?local=1 disables the peer fetch
// (that is what peers themselves ask for, so fetches cannot loop).
func (s *Server) cacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyPat.MatchString(key) {
		writeErr(w, http.StatusBadRequest, "bad cache key %q (want 64 hex chars)", key)
		return
	}
	if out, ok := s.q.ResultByKey(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(out)))
		w.Header().Set("X-Stardust-Cache", "hit")
		w.Write(out)
		return
	}
	if s.cluster == nil || r.URL.Query().Get("local") == "1" {
		writeErr(w, http.StatusNotFound, "no cached result for %s", key)
		return
	}
	out, from, err := s.cluster.FetchResult(r.Context(), key)
	if err != nil {
		writeErr(w, http.StatusNotFound, "no node holds a result for %s: %v", key, err)
		return
	}
	s.q.PutRemote(key, out)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.Header().Set("X-Stardust-Cache", "peer "+from)
	w.Write(out)
}

// clusterInfo describes ring membership and forwarding counters.
func (s *Server) clusterInfo(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeErr(w, http.StatusNotFound, "not clustered (start stardustd with -cluster-peers)")
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Info())
}

func (s *Server) listRuns(w http.ResponseWriter, r *http.Request) {
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	writeJSON(w, http.StatusOK, s.q.List(max))
}

func (s *Server) getRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) getResult(w http.ResponseWriter, r *http.Request) {
	out, state, ok := s.q.Result(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	if state != JobDone {
		writeErr(w, http.StatusConflict, "run %s is %s", r.PathValue("id"), state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// streamRun emits the job's progress as NDJSON, following the job until
// it finishes (or the client goes away). Each line is one ProgressEvent;
// the final line is the job snapshot.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no run %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	tick := newPollTimer()
	defer tick.Stop()
	for {
		extendWriteDeadline(w)
		job, ok := s.q.Get(id)
		if !ok {
			return
		}
		for _, p := range job.Progress[sent:] {
			enc.Encode(p)
			sent++
		}
		if job.State == JobDone || job.State == JobFailed {
			enc.Encode(job)
			if fl != nil {
				fl.Flush()
			}
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.wait(50 * time.Millisecond):
		}
	}
}

// pollTimer is a reused timer for the NDJSON polling loops — one
// allocation for the whole stream instead of a fresh time.After timer
// every tick.
type pollTimer struct{ t *time.Timer }

func newPollTimer() pollTimer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return pollTimer{t}
}

// wait re-arms the timer; the caller must consume the returned channel
// (or return, after which Stop cleans up).
func (p pollTimer) wait(d time.Duration) <-chan time.Time {
	p.t.Reset(d)
	return p.t.C
}

func (p pollTimer) Stop() { p.t.Stop() }

// extendWriteDeadline pushes the connection's write deadline out for
// one more polling interval, so long-lived streaming responses (run
// progress, finding tails) keep flowing under a server-wide
// WriteTimeout while a genuinely stalled client still times out.
func extendWriteDeadline(w http.ResponseWriter) {
	// Errors ignored: httptest recorders and exotic wrappers don't
	// support deadlines, and a failure here only means the server-wide
	// timeout stays in force.
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(30 * time.Second))
}

func (s *Server) needFabric(w http.ResponseWriter) bool {
	if s.run == nil {
		writeErr(w, http.StatusNotFound, "no fabric run attached (start stardustd with -fabric-k)")
		return false
	}
	return true
}

func (s *Server) fabricInfo(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	info := map[string]any{
		"config":    s.run.Cfg,
		"inventory": s.run.Ctl.Inventory(),
		"stats":     s.run.Ctl.Stats(),
	}
	if s.run.Rec != nil {
		info["telemetry_stream"] = s.run.Rec.Stats()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) telemetry(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	qs := r.URL.Query()
	if ls := qs.Get("link"); ls != "" {
		link, err := strconv.Atoi(ls)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad link %q", ls)
			return
		}
		dir, _ := strconv.Atoi(qs.Get("dir"))
		series, err := s.run.Ctl.LinkSeries(link, dir)
		if err != nil {
			writeErr(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"link": link, "dir": dir, "series": series})
		return
	}
	writeJSON(w, http.StatusOK, s.run.Ctl.Telemetry())
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	bus := s.run.Ctl.Bus()
	evs := bus.Since(since, max)
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": bus.LastSeq(),
		"events":   evs,
		"bus":      bus.Stats(),
	})
}

func (s *Server) needRecorder(w http.ResponseWriter) bool {
	if s.run == nil || s.run.Rec == nil {
		writeErr(w, http.StatusNotFound, "no telemetry recorder attached (start stardustd with -fabric-telem)")
		return false
	}
	return true
}

// telemetryStream downloads the recorded STREC1 stream as captured so
// far — a consistent prefix of the durable trace, replayable offline.
func (s *Server) telemetryStream(w http.ResponseWriter, r *http.Request) {
	if !s.needRecorder(w) {
		return
	}
	data := s.run.TelemBuf.Bytes()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=\"fabric.strec\"")
	if s.run.TelemBuf.Truncated() {
		w.Header().Set("X-Stardust-Stream-Truncated", "true")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// telemetryFindings serves the online analyzers' findings: a JSON page
// by default, or an NDJSON live tail with ?follow=1 (one finding per
// line as the analyzers emit them, until the client disconnects).
func (s *Server) telemetryFindings(w http.ResponseWriter, r *http.Request) {
	if !s.needRecorder(w) {
		return
	}
	log := s.run.Findings
	since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))
	if max <= 0 {
		max = 256
	}
	if r.URL.Query().Get("follow") == "" {
		fs, next := log.Since(since, max)
		writeJSON(w, http.StatusOK, map[string]any{
			"total":    log.Total(),
			"next":     next,
			"findings": fs,
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := since
	tick := newPollTimer()
	defer tick.Stop()
	for {
		extendWriteDeadline(w)
		fs, next := log.Since(cursor, max)
		for i := range fs {
			enc.Encode(&fs[i])
		}
		if len(fs) > 0 && fl != nil {
			fl.Flush()
		}
		cursor = next
		select {
		case <-r.Context().Done():
			return
		case <-tick.wait(100 * time.Millisecond):
		}
	}
}

// replayOverrides parses the what-if knobs off a replay request's query
// string into distsim overrides.
func replayOverrides(r *http.Request) (distsim.Overrides, error) {
	var ov distsim.Overrides
	q := r.URL.Query()
	var err error
	geti := func(key string) int {
		if err != nil || q.Get(key) == "" {
			return 0
		}
		var v int
		if v, err = strconv.Atoi(q.Get(key)); err != nil {
			err = fmt.Errorf("bad %s %q", key, q.Get(key))
		}
		return v
	}
	getf := func(key string) float64 {
		if err != nil || q.Get(key) == "" {
			return 0
		}
		var v float64
		if v, err = strconv.ParseFloat(q.Get(key), 64); err != nil {
			err = fmt.Errorf("bad %s %q", key, q.Get(key))
		}
		return v
	}
	ov.Shards = geti("shards")
	ov.K = geti("k")
	ov.Seed = int64(geti("seed"))
	ov.Load = getf("load")
	ov.Hotspot = getf("hotspot")
	ov.FailAt = sim.Time(geti("fail_at_ps"))
	ov.HealAt = sim.Time(geti("heal_at_ps"))
	for _, ls := range q["fail_link"] {
		lk, cerr := strconv.Atoi(ls)
		if cerr != nil {
			return ov, fmt.Errorf("bad fail_link %q", ls)
		}
		ov.FailLinks = append(ov.FailLinks, lk)
	}
	return ov, err
}

// replay is the digital-twin endpoint: POST a recorded STREC1 stream
// (the body), optionally with what-if overrides as query parameters
// (fail_link, k, seed, shards, load, hotspot, fail_at_ps, heal_at_ps),
// and the daemon re-drives the fabric from the stream's embedded spec
// and returns the divergence report. An unchanged replay of a recorded
// run reports zero divergence; anything else is exactly the effect of
// the overrides.
func (s *Server) replay(w http.ResponseWriter, r *http.Request) {
	stream, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "stream body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading stream body: %v", err)
		return
	}
	if len(stream) == 0 {
		writeErr(w, http.StatusBadRequest,
			"empty body: POST a recorded STREC1 stream (record one with the trace/record scenario)")
		return
	}
	ov, err := replayOverrides(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	div, outc, replayed, err := distsim.Replay(stream, ov)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "replay failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"divergence":     div,
		"summary":        div.String(),
		"overrides":      ov,
		"outcome":        outc,
		"replayed_bytes": len(replayed),
	})
}

// distsimStats serves the distributed coordinator's window-loop metrics
// as JSON (the same counters /metrics renders in Prometheus form).
func (s *Server) distsimStats(w http.ResponseWriter, r *http.Request) {
	snap := distsim.DefaultStats.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"coord":             snap,
		"barrier_seconds":   snap.BarrierLatency,
		"window_mail_bytes": snap.WindowMailBytes,
	})
}

func (s *Server) anomalies(w http.ResponseWriter, r *http.Request) {
	if !s.needFabric(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.run.Ctl.Anomalies())
}

// transport serves the barrier-scraped counters of the sharded Stardust
// transport overlay.
func (s *Server) transport(w http.ResponseWriter, r *http.Request) {
	if s.run == nil || s.run.Trans == nil {
		writeErr(w, http.StatusNotFound, "no transport overlay attached (start stardustd with -transport-hosts-per)")
		return
	}
	writeJSON(w, http.StatusOK, s.run.Trans.Stats())
}

// metrics is the Prometheus text exposition: queue and cache counters,
// and — when a fabric run is attached — the chassis aggregates including
// the failure/recovery event counters.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	qs := s.q.Stats()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	counter("stardustd_runs_submitted_total", "scenario-run submissions", float64(qs.Submitted))
	counter("stardustd_runs_cache_hits_total", "submissions served from the content-addressed result cache", float64(qs.CacheHits))
	counter("stardustd_runs_completed_total", "scenario runs completed", float64(qs.Completed))
	counter("stardustd_runs_failed_total", "scenario runs failed", float64(qs.Failed))
	counter("stardustd_runs_rejected_total", "submissions rejected by admission control", float64(qs.Rejected))
	counter("stardustd_runs_rejected_fair_total", "submissions rejected by the per-client fair-share policy", float64(qs.RejectedFair))
	counter("stardustd_runs_remote_hits_total", "submissions served from peer-fetched results", float64(qs.RemoteHits))
	gauge("stardustd_runs_queued", "jobs waiting in the bounded queue", float64(qs.Depth))
	gauge("stardustd_runs_running", "jobs currently executing", float64(qs.Running))
	gauge("stardustd_run_queue_capacity", "bounded queue capacity (total pending jobs)", float64(qs.Capacity))
	gauge("stardustd_run_queue_active_clients", "clients with pending runs", float64(qs.ActiveClients))
	gauge("stardustd_remote_results", "peer-fetched results held in the local store", float64(qs.RemoteResults))
	gauge("stardustd_remote_result_bytes", "bytes held in the peer-fetched result store", float64(qs.RemoteBytes))
	// Distributed-coordinator metrics are process-wide (any distsim run
	// this daemon coordinated), so they render with or without a fabric.
	ds := distsim.DefaultStats.Snapshot()
	counter("stardust_distsim_runs_total", "distributed runs coordinated", float64(ds.Runs))
	counter("stardust_distsim_windows_total", "lock-step windows driven by the coordinator", float64(ds.Windows))
	counter("stardust_distsim_telemetry_windows_total", "telemetry stream windows emitted by the coordinator", float64(ds.TelemetryWindows))
	counter("stardust_distsim_mail_frames_total", "GO/DONE frames carrying cross-peer mail", float64(ds.MailFrames))
	counter("stardust_distsim_mail_entries_total", "cross-peer mail entries relayed", float64(ds.MailEntries))
	counter("stardust_distsim_raw_bytes_total", "frame body bytes before compression", float64(ds.RawBytes))
	counter("stardust_distsim_wire_bytes_total", "bytes on the wire, frame headers included", float64(ds.WireBytes))
	gauge("stardust_distsim_compression_ratio", "raw/wire byte ratio of coordinator traffic", ds.CompressionRatio)
	telemetry.WriteProm(w, "stardust_distsim_barrier_seconds", "wall-clock latency of one lock-step window barrier", ds.BarrierLatency)
	telemetry.WriteProm(w, "stardust_distsim_window_mail_bytes", "raw mail batch bytes relayed per window", ds.WindowMailBytes)
	if s.run == nil {
		return
	}
	st := s.run.Ctl.Stats()
	gauge("stardust_fabric_sim_seconds", "simulated time of the managed fabric", st.Time.Seconds())
	counter("stardust_mgmt_scrapes_total", "telemetry scrapes", float64(st.Scrapes))
	counter("stardust_fabric_cells_injected_total", "cells injected into the fabric", float64(st.Injected))
	counter("stardust_fabric_cells_delivered_total", "cells delivered to their destination FA", float64(st.Delivered))
	counter("stardust_fabric_cells_dropped_total", "cells lost in the fabric", float64(st.Drops))
	gauge("stardust_fabric_links", "full-duplex serial links", float64(st.Links))
	gauge("stardust_fabric_links_down", "links currently failed", float64(st.LinksDown))
	gauge("stardust_fabric_unreachable_pairs", "reachability holes ((spine,FA) pairs with no live path)", float64(st.Unreachable))
	gauge("stardust_fabric_queue_bytes", "bytes queued across all link serializers", float64(st.QueueBytes))
	counter("stardust_fabric_link_failures_total", "link failure events", float64(st.LinkFailures))
	counter("stardust_fabric_link_recoveries_total", "link recovery events", float64(st.LinkRecovers))
	counter("stardust_mgmt_reach_updates_total", "reachability withdrawals/readvertisements observed at the spine", float64(st.ReachUpdates))
	counter("stardust_mgmt_events_total", "management events published", float64(s.run.Ctl.Bus().LastSeq()))
	bs := s.run.Ctl.Bus().Stats()
	counter("stardust_mgmt_events_dropped_total", "events lost to full subscriber channels", float64(bs.Dropped))
	counter("stardust_mgmt_events_evicted_total", "retained events overwritten by ring wrap-around", float64(bs.Evicted))
	gauge("stardust_mgmt_event_subscribers", "live event bus subscribers", float64(bs.Subscribers))
	gauge("stardust_mgmt_anomalies", "active anomaly findings", float64(len(s.run.Ctl.Anomalies())))
	if s.run.Rec != nil {
		rs := s.run.Rec.Stats()
		counter("stardust_telemetry_windows_total", "STREC1 windows recorded", float64(rs.Windows))
		gauge("stardust_telemetry_stream_bytes", "recorded stream size in memory", float64(rs.Bytes))
		counter("stardust_telemetry_findings_total", "online analyzer findings", float64(rs.Findings))
	}
	if s.run.Trans == nil {
		return
	}
	ts := s.run.Trans.Stats()
	counter("stardust_transport_scrapes_total", "transport barrier scrapes", float64(ts.Scrapes))
	counter("stardust_transport_cells_sent_total", "cells fragmented by the source adapters", float64(ts.CellsSent))
	counter("stardust_transport_cells_delivered_total", "cells reassembled at destination adapters", float64(ts.CellsDelivered))
	counter("stardust_transport_credits_sent_total", "credit grants issued by the egress schedulers", float64(ts.CreditsSent))
	counter("stardust_transport_voq_drops_total", "ingress VOQ tail-drops", float64(ts.VOQDrops))
	counter("stardust_transport_reasm_timeouts_total", "reassembly-timer packet discards", float64(ts.ReasmTimeouts))
	counter("stardust_transport_delivered_bytes_total", "packet bytes delivered in order", float64(ts.DeliveredBytes))
}
