package fabric

import (
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Fabric is the topology-independent surface of a cell fabric: everything
// the transport substrate, the management plane, the telemetry recorder
// and the distributed runtime consume. *Net (the Clos fabric with the
// full reach protocol) and *GraphNet (the generic fabric over any
// topo.Graph) both implement it; NewFabric/NewShardedFabric pick the
// right one for a graph. It is a superset of netsim.ShardedCellFabric,
// so either fabric carries the sharded Stardust transport unchanged.
//
// The quiescence rules of the concrete types carry over verbatim:
// aggregate counters only between runs (solo) or in barrier context
// (sharded); link administration in barrier context on a sharded fabric.
type Fabric interface {
	// Identity and structure.
	Graph() topo.Graph
	Simulator() *sim.Simulator // solo event heap; shard 0's when sharded
	Engine() *parsim.Engine    // nil in solo mode
	Sharded() bool
	NumFA() int
	NumLinks() int
	Lanes() int32

	// Traffic.
	Inject(c *netsim.Packet, srcFA, dstFA int)
	SetEgress(fa int, h netsim.Handler)
	NewInjector(fa int, gap sim.Time, cellBytes int, stop sim.Time, quota int) *Injector
	EdgeSim(fa int) *sim.Simulator // the event heap edge device fa's events run on

	// Counters.
	Injected() uint64
	Delivered() uint64
	Drops() uint64
	QueueDrops() uint64
	DirCounters(d int) (fwdBytes, fwdCells, drops uint64)
	DirTelemetry(d int) (fwdBytes, fwdCells, drops uint64, queueBytes int)
	ReadLinkCounters(i int, out *[2]LinkCounters)
	VisitQueues(fn func(q *netsim.Queue))
	FAUplinkBytes() []uint64
	ShardEvents() []uint64
	TrafficOfShard(s int) ShardTraffic

	// Link administration and reachability.
	LinkUp(i int) bool
	FailLink(i int)
	RestoreLink(i int)
	UnreachablePairs() int

	// Sharding, migration and the distributed wire.
	ShardOfFA(fa int) int
	OwnerOfLinkDir(d int) int
	GroupOfFA(fa int) int32
	LaneGroups() []int32
	OnMigrateFA(fn func(fa, from, to int))
	EnableRebalancing(cfg RebalanceConfig) error
	Migrations() uint64
	EncodeMail(m parsim.Mail) (kind byte, payload []byte, err error)
	DecodeMail(kind byte, lane int32, payload []byte) (sim.Action, uint64, error)

	// Hooks. The Set forms replace; the Hook forms return the current
	// value so a layer can chain (save the previous hook, call it from
	// its own).
	SetOnDeliver(fn func(*netsim.Packet))
	SetOnCellDrop(fn func(*netsim.Packet))
	SetOnLinkState(fn func(link int, up bool))
	SetOnReachUpdate(fn func(dev, reachable int))
	HookOnLinkState() func(link int, up bool)
	HookOnReachUpdate() func(dev, reachable int)
}

// Compile-time checks: both fabrics present the full surface, and the
// surface still satisfies the transport's contract.
var (
	_ Fabric                   = (*Net)(nil)
	_ Fabric                   = (*GraphNet)(nil)
	_ netsim.ShardedCellFabric = (Fabric)(nil)
)

// NewFabric builds the right solo fabric for g on the single event loop
// s: the Clos fabric (with its reach-protocol control plane) when g is a
// *topo.Clos, the generic graph fabric otherwise.
func NewFabric(s *sim.Simulator, cfg Config, g topo.Graph) (Fabric, error) {
	if cl, ok := g.(*topo.Clos); ok {
		return New(s, cfg, cl)
	}
	return NewGraphNet(s, cfg, g)
}

// NewShardedFabric is NewFabric for a parsim engine: devices partition
// across the engine's shards and the run is byte-identical at any shard
// count.
func NewShardedFabric(eng *parsim.Engine, cfg Config, g topo.Graph) (Fabric, error) {
	if cl, ok := g.(*topo.Clos); ok {
		return NewSharded(eng, cfg, cl, nil)
	}
	return NewGraphSharded(eng, cfg, g, nil)
}

// Graph implements Fabric.
func (n *Net) Graph() topo.Graph { return n.Topo }

// Simulator implements Fabric.
func (n *Net) Simulator() *sim.Simulator { return n.Sim }

// EdgeSim implements Fabric: FA fa's owning event heap, re-resolved per
// call because rebalancing migrations may move the FA.
func (n *Net) EdgeSim(fa int) *sim.Simulator {
	if n.eng == nil {
		return n.Sim
	}
	return n.shards[n.assign.FA[fa]].sm
}

// SetOnDeliver implements Fabric.
func (n *Net) SetOnDeliver(fn func(*netsim.Packet)) { n.OnDeliver = fn }

// SetOnCellDrop implements Fabric.
func (n *Net) SetOnCellDrop(fn func(*netsim.Packet)) { n.OnCellDrop = fn }

// SetOnLinkState implements Fabric.
func (n *Net) SetOnLinkState(fn func(link int, up bool)) { n.OnLinkState = fn }

// SetOnReachUpdate implements Fabric.
func (n *Net) SetOnReachUpdate(fn func(dev, reachable int)) { n.OnReachUpdate = fn }

// HookOnLinkState implements Fabric.
func (n *Net) HookOnLinkState() func(link int, up bool) { return n.OnLinkState }

// HookOnReachUpdate implements Fabric.
func (n *Net) HookOnReachUpdate() func(dev, reachable int) { return n.OnReachUpdate }
