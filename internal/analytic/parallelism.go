// Package analytic implements the paper's closed-form models: the
// packet-processing parallelism requirement of Appendix B (Fig 3), the
// silicon area/power comparison of Appendix C (Fig 10d), the cost model of
// Appendix D (Fig 11a, Table 3), the power model (Fig 11b) and the
// resilience timing of Appendix E.
package analytic

import "math"

// EthernetGap is the per-packet on-wire overhead: 12B inter-frame gap plus
// 8B preamble/SFD (Appendix B).
const EthernetGap = 20

// SwitchModel captures the device parameters of §2.3 / Appendix B.
type SwitchModel struct {
	BandwidthBps float64 // B: device bandwidth in bits/s (e.g. 12.8e12)
	ClockHz      float64 // f: data-path clock (e.g. 1e9)
	CyclesPerOp  float64 // c: clock cycles per pipeline stage (>= 1)
	BusWidth     int     // W: data-path width in bytes (e.g. 256)
	CellHeader   int     // Stardust cell header bytes carried in each cell
}

// DefaultSwitch is the 12.8 Tbps, 1 GHz, 256B-bus device used in Fig 3.
var DefaultSwitch = SwitchModel{
	BandwidthBps: 12.8e12,
	ClockHz:      1e9,
	CyclesPerOp:  1,
	BusWidth:     256,
	CellHeader:   6,
}

// PacketRate returns R = B / (8 * (S + G)), the packets/second the device
// must sustain at full line rate for packet size S (Appendix B, Eq. 1).
func (m SwitchModel) PacketRate(pktBytes int) float64 {
	return m.BandwidthBps / (8 * float64(pktBytes+EthernetGap))
}

// PipelineRate returns r = f / c, the packets/second one pipeline can
// process (Appendix B, Eq. 2).
func (m SwitchModel) PipelineRate() float64 { return m.ClockHz / m.CyclesPerOp }

// ParallelismStandard returns P = R/r for a standard packet switch whose
// pipeline additionally occupies ceil(S/W) bus slots per packet — the
// sawtooth curve of Fig 3.
func (m SwitchModel) ParallelismStandard(pktBytes int) float64 {
	slots := math.Ceil(float64(pktBytes) / float64(m.BusWidth))
	return slots * m.PacketRate(pktBytes) / m.PipelineRate()
}

// ParallelismStardust returns the constant parallelism of a Stardust Fabric
// Element, which packs payload into full bus-width cells: every cycle moves
// BusWidth-CellHeader payload bytes per pipeline, independent of packet
// size (Fig 3's flat line).
func (m SwitchModel) ParallelismStardust() float64 {
	payload := float64(m.BusWidth - m.CellHeader)
	return m.BandwidthBps / (8 * payload * m.PipelineRate() * m.CyclesPerOp)
}

// Fig3Row is one x-position of Fig 3.
type Fig3Row struct {
	PacketBytes int
	Standard    float64
	Stardust    float64
}

// Fig3 evaluates both curves for the given packet sizes (nil = the paper's
// 64..2500B sweep).
func Fig3(m SwitchModel, sizes []int) []Fig3Row {
	if sizes == nil {
		for s := 64; s <= 2500; s += 4 {
			sizes = append(sizes, s)
		}
	}
	fe := m.ParallelismStardust()
	rows := make([]Fig3Row, len(sizes))
	for i, s := range sizes {
		rows[i] = Fig3Row{PacketBytes: s, Standard: m.ParallelismStandard(s), Stardust: fe}
	}
	return rows
}
