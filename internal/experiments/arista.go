package experiments

import (
	"fmt"
	"io"

	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/stats"
	"stardust/internal/topo"
)

// AristaConfig sizes the §6.1.2 single-tier system reproduction: a
// chassis-style network of Fabric Adapters and one tier of Fabric
// Elements, all host ports loaded at line rate. The paper's platform is 24
// Arad adapters (48x10GE each = 1152 ports) over 12 Fabric Elements; the
// default here is a scaled version with the same ratios.
type AristaConfig struct {
	NumFA        int
	PortsPerFA   int
	NumFE        int
	UplinksPerFA int
	PortGbps     float64
	LinkGbps     float64
	Packing      bool // Arad (§6.1.2) does not support packing
	Duration     sim.Time
	Seed         int64
}

// ScaledArista returns a scaled single-tier system: 6 FAs x 16 ports with
// a fabric speed-up of 1.0625 — the ratio at which variable-size 256B-max
// cells sustain line rate for 384B+ packets but not below, matching the
// paper's 1152-port measurement (§6.1.2).
func ScaledArista() AristaConfig {
	return AristaConfig{
		NumFA:        6,
		PortsPerFA:   16,
		NumFE:        17,
		UplinksPerFA: 17,
		PortGbps:     10,
		LinkGbps:     10,
		Packing:      false,
		Duration:     300 * sim.Microsecond,
		Seed:         1,
	}
}

// AristaRow is one packet-size measurement of the §6.1.2 experiment.
type AristaRow struct {
	PacketBytes int
	LineRatePct float64 // delivered / offered
	MinUs       float64 // port-to-port latency
	AvgUs       float64
	MaxUs       float64
	JitterNs    float64 // mean successive latency difference (§6.1.2: ns-scale)
}

// Arista loads every host port at line rate with fixed-size packets in a
// port-permutation pattern and reports delivered throughput plus latency
// statistics — the §6.1.2 measurement.
func Arista(cfg AristaConfig, packetSizes []int) ([]AristaRow, error) {
	if packetSizes == nil {
		packetSizes = []int{64, 128, 256, 384, 512, 1024, 1518}
	}
	var rows []AristaRow
	for _, size := range packetSizes {
		row, err := aristaOne(cfg, size)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func aristaOne(cfg AristaConfig, pktSize int) (AristaRow, error) {
	clos, err := topo.NewClos1(cfg.NumFA, cfg.UplinksPerFA, cfg.NumFE)
	if err != nil {
		return AristaRow{}, err
	}
	ccfg := core.DefaultConfig()
	ccfg.Packing = cfg.Packing
	ccfg.StoreAndForward = true // Arad is store-and-forward (§6.1.2)
	ccfg.HostPortBps = cfg.PortGbps * 1e9
	ccfg.HostPortsPerFA = cfg.PortsPerFA
	ccfg.LinkBps = cfg.LinkGbps * 1e9
	ccfg.LinkDelay = 50 * sim.Nanosecond // chassis-scale traces
	ccfg.Credit.PortRateBps = ccfg.HostPortBps
	ccfg.Seed = cfg.Seed
	net, err := core.New(ccfg, clos)
	if err != nil {
		return AristaRow{}, err
	}
	if !net.WarmUp(10 * sim.Millisecond) {
		return AristaRow{}, fmt.Errorf("experiments: arista fabric did not converge")
	}

	lat := &stats.Sample{}
	var deliveredB int64
	var prevLat sim.Time
	var jitterSum float64
	var jitterN int
	net.OnDeliver = func(p *core.Packet) {
		deliveredB += int64(p.Size)
		lat.Add(p.Latency().Microseconds())
		if prevLat != 0 {
			d := p.Latency() - prevLat
			if d < 0 {
				d = -d
			}
			jitterSum += d.Nanoseconds()
			jitterN++
		}
		prevLat = p.Latency()
	}

	// Port permutation at full line rate: port p of FA i sends to port p of
	// FA (i+1) mod N.
	start := net.Sim.Now()
	gapSecs := float64(pktSize*8) / ccfg.HostPortBps
	gap := sim.Time(gapSecs * float64(sim.Second))
	var offeredB int64
	for fa := 0; fa < cfg.NumFA; fa++ {
		for port := 0; port < cfg.PortsPerFA; port++ {
			fa, port := uint16(fa), uint8(port)
			dst := uint16((int(fa) + 1) % cfg.NumFA)
			var inject func()
			inject = func() {
				if net.Sim.Now()-start >= cfg.Duration {
					return
				}
				if ok, _ := net.Inject(fa, port, dst, port, 0, pktSize); ok {
					offeredB += int64(pktSize)
				}
				net.Sim.After(gap, inject)
			}
			// Stagger port phases to avoid synchronized bursts.
			net.Sim.After(gap*sim.Time(int64(port))/sim.Time(int64(cfg.PortsPerFA)), inject)
		}
	}
	net.Run(start + cfg.Duration + 200*sim.Microsecond)

	row := AristaRow{PacketBytes: pktSize}
	if offeredB > 0 {
		row.LineRatePct = 100 * float64(deliveredB) / float64(offeredB)
	}
	if lat.N() > 0 {
		row.MinUs = lat.Min()
		row.AvgUs = lat.Mean()
		row.MaxUs = lat.Max()
	}
	if jitterN > 0 {
		row.JitterNs = jitterSum / float64(jitterN)
	}
	return row, nil
}

// WriteArista prints the §6.1.2 table.
func WriteArista(w io.Writer, cfg AristaConfig, rows []AristaRow) {
	fmt.Fprintf(w, "== §6.1.2 single-tier system: %d FA x %d ports over %d FE (packing=%v) ==\n",
		cfg.NumFA, cfg.PortsPerFA, cfg.NumFE, cfg.Packing)
	fmt.Fprintf(w, "%8s %10s %8s %8s %8s %11s\n", "pkt[B]", "line-rate", "min[us]", "avg[us]", "max[us]", "jitter[ns]")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %9.1f%% %8.2f %8.2f %8.2f %11.0f\n", r.PacketBytes, r.LineRatePct, r.MinUs, r.AvgUs, r.MaxUs, r.JitterNs)
	}
}
