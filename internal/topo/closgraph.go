// Clos as one Graph implementation. Flat node order is FA [0, NumFA),
// FE1 [NumFA, NumFA+NumFE1), FE2 after that; edge devices are the FAs.
// Routes reproduces the converged up/down forwarding of §3.1 over any
// live-link mask: FAs climb over their live uplinks, FE1s descend
// directly to an attached destination FA or climb to the spines, spines
// descend over the live paths that still reach the destination — the same
// candidate sets the reach protocol's tables hold after convergence.
package topo

import "fmt"

// ClosForK sizes a two-tier Clos to front a k-ary fat-tree's edge: one FA
// per edge switch (k²/2 of them) with k/2 uplinks each, k first-tier FEs
// and k spines, with the FE1 uplink count rounded up to a multiple of the
// spine count so every FE1 reaches every FE2 at full bisection bandwidth.
// This is the single source of the K -> dimensions derivation: cmd
// binaries, distsim specs and telemetry headers all size through it (via
// fabric.ClosFor or ParseSpec), so two peers can never hash different
// models from the same flags.
func ClosForK(k int) (*Clos, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topo: clos k must be even and >= 4, got %d", k)
	}
	fe1Up := (k + 3) / 4 * k // >= k²/4 down links, and a multiple of k spines
	c, err := NewClos2(k*k/2, k/2, k, k*k/4, fe1Up, k)
	if err != nil {
		return nil, err
	}
	c.spec = fmt.Sprintf("clos:k=%d", k)
	return c, nil
}

// Spec implements Graph.
func (c *Clos) Spec() string {
	if c.spec != "" {
		return c.spec
	}
	if c.Tiers == 1 {
		return fmt.Sprintf("clos1:fa=%d,up=%d,fe1=%d", c.NumFA, c.FAUplinks, c.NumFE1)
	}
	return fmt.Sprintf("clos2:fa=%d,up=%d,fe1=%d,dn=%d,fe1up=%d,fe2=%d",
		c.NumFA, c.FAUplinks, c.NumFE1, c.FE1Down, c.FE1Up, c.NumFE2)
}

// NumNodes implements Graph.
func (c *Clos) NumNodes() int { return c.NumFA + c.NumFE1 + c.NumFE2 }

// NumTiers implements Graph: the FA tier plus the FE tiers.
func (c *Clos) NumTiers() int { return c.Tiers + 1 }

// NumEdge implements Graph: the Fabric Adapters are the edge.
func (c *Clos) NumEdge() int { return c.NumFA }

// EdgeNode implements Graph.
func (c *Clos) EdgeNode(e int) int { return e }

// NodeIndex flattens a NodeID into the Graph node order.
func (c *Clos) NodeIndex(id NodeID) int {
	switch id.Kind {
	case KindFA:
		return id.Index
	case KindFE1:
		return c.NumFA + id.Index
	default:
		return c.NumFA + c.NumFE1 + id.Index
	}
}

// Node implements Graph.
func (c *Clos) Node(i int) NodeInfo {
	switch {
	case i < c.NumFA:
		return NodeInfo{Name: fmt.Sprintf("FA%d", i), Role: "FA", Tier: 0, Ports: c.FAUplinks}
	case i < c.NumFA+c.NumFE1:
		return NodeInfo{Name: fmt.Sprintf("FE1_%d", i-c.NumFA), Role: "FE1", Tier: 1, Ports: c.FE1Down + c.FE1Up}
	default:
		return NodeInfo{Name: fmt.Sprintf("FE2_%d", i-c.NumFA-c.NumFE1), Role: "FE2", Tier: 2, Ports: c.FE2Down}
	}
}

// GraphLinks implements Graph: Links flattened to node indices, in the
// same order, so topology link i keeps directed lanes 2i/2i+1.
func (c *Clos) GraphLinks() []GraphLink {
	out := make([]GraphLink, len(c.Links))
	for i, lk := range c.Links {
		out[i] = GraphLink{
			A: c.NodeIndex(lk.A), APort: lk.APort,
			B: c.NodeIndex(lk.B), BPort: lk.BPort,
		}
	}
	return out
}

// Routes implements Graph with the converged up/down candidate sets.
func (c *Clos) Routes(up []bool) (descend [][][]int, climb [][]int) {
	nn := c.NumNodes()
	descend = make([][][]int, nn)
	for n := range descend {
		descend[n] = make([][]int, c.NumFA)
	}
	climb = make([][]int, nn)
	// fe1Reach[f] = set of FAs FE1 f has a live down link to, with the
	// port reaching each; built from the wiring in link order (ports of a
	// device are wired ascending by both constructors).
	fe1Reach := make([]map[int]int, c.NumFE1) // fa -> FE1 down port
	for f := range fe1Reach {
		fe1Reach[f] = make(map[int]int)
	}
	for i, lk := range c.Links {
		live := up == nil || up[i]
		switch lk.A.Kind {
		case KindFA: // FA <-> FE1
			if live {
				fa, f := lk.A.Index, lk.B.Index
				climb[fa] = append(climb[fa], lk.APort)
				descend[c.NumFA+f][fa] = append(descend[c.NumFA+f][fa], lk.BPort)
				fe1Reach[f][fa] = lk.BPort
			}
		case KindFE1: // FE1 <-> FE2
			if live {
				climb[c.NumFA+lk.A.Index] = append(climb[c.NumFA+lk.A.Index], lk.APort)
			}
		}
	}
	// Spines descend over every live down link whose FE1 still reaches
	// the destination — the post-convergence reach.Table contents.
	for i, lk := range c.Links {
		if lk.A.Kind != KindFE1 {
			continue
		}
		if up != nil && !up[i] {
			continue
		}
		f, sp := lk.A.Index, c.NumFA+c.NumFE1+lk.B.Index
		for fa := range fe1Reach[f] {
			descend[sp][fa] = append(descend[sp][fa], lk.BPort)
		}
	}
	for n := range descend {
		for e := range descend[n] {
			sortInts(descend[n][e])
		}
		sortInts(climb[n])
	}
	return descend, climb
}

// sortInts is an allocation-free insertion sort for the short port lists
// route construction builds (control plane, but called per (node, dst)).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
