// Command benchguard is the CI benchmark-regression gate. It parses the
// text output of `go test -bench` (multiple -count repetitions expected),
// writes the per-benchmark medians as JSON, and fails when a guarded
// benchmark's median ns/op regresses beyond the tolerance against a
// committed baseline:
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 . | tee bench.txt
//	benchguard -in bench.txt -out BENCH_ci.json \
//	    -baseline BENCH_baseline.json -guard BenchmarkPacketPath -tolerance 0.20 \
//	    -allocguard BenchmarkFabricCellPath
//
// -guard gates median ns/op (within -tolerance) plus allocs/op; the
// comma-separated -allocguard benchmarks are gated on allocs/op only —
// the hardware-independent half — so hot paths whose wall time is too
// noisy for a CI gate still cannot silently start allocating.
//
// Benchmarks that report the custom events/sec/core metric (the sharded
// engine's per-core kernel throughput) are additionally gated on it when
// guarded: the median must not drop more than -tolerance below the
// baseline (lower is worse, the mirror image of the ns/op gate).
//
// Refresh the baseline after an intentional performance change with:
//
//	benchguard -in bench.txt -out BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated result.
type Entry struct {
	// Samples are the individual ns/op values in input order.
	Samples []float64 `json:"samples_ns_op"`
	// MedianNsOp is the wall-time regression statistic: robust against
	// one noisy repetition, but still tied to the runner's hardware.
	MedianNsOp float64 `json:"median_ns_op"`
	// AllocSamples are the allocs/op values (only for benchmarks that
	// call ReportAllocs).
	AllocSamples []float64 `json:"samples_allocs_op,omitempty"`
	// MedianAllocs is the hardware-independent regression statistic: an
	// allocation creeping into a free-list hot path shows up here no
	// matter what machine runs the benchmark.
	MedianAllocs float64 `json:"median_allocs_op,omitempty"`
	// EventSamples are the events/sec/core values (only for benchmarks
	// that call ReportMetric with the sharded kernel-throughput metric).
	EventSamples []float64 `json:"samples_events_sec_core,omitempty"`
	// MedianEvents is the per-core kernel-throughput statistic — the
	// inverse-direction twin of MedianNsOp: guarded benchmarks fail when
	// it drops below baseline*(1-tolerance).
	MedianEvents float64 `json:"median_events_sec_core,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkPacketPath-4   200000   521.5 ns/op   0 B/op   0 allocs/op"
// with an optional custom-metric column, which `go test` prints between
// ns/op and B/op:
// "BenchmarkTransportPathSharded-4  20000  6500 ns/op  1.5e+06 events/sec/core  0 B/op  0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) events/sec/core)?(?:\s+[0-9.e+]+ B/op\s+([0-9.e+]+) allocs/op)?`)

func parse(path string) (map[string]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*Entry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := out[m[1]]
		if e == nil {
			e = &Entry{}
			out[m[1]] = e
		}
		e.Samples = append(e.Samples, ns)
		if m[3] != "" {
			if ev, err := strconv.ParseFloat(m[3], 64); err == nil {
				e.EventSamples = append(e.EventSamples, ev)
			}
		}
		if m[4] != "" {
			if allocs, err := strconv.ParseFloat(m[4], 64); err == nil {
				e.AllocSamples = append(e.AllocSamples, allocs)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range out {
		e.MedianNsOp = median(e.Samples)
		if len(e.AllocSamples) > 0 {
			e.MedianAllocs = median(e.AllocSamples)
		}
		if len(e.EventSamples) > 0 {
			e.MedianEvents = median(e.EventSamples)
		}
	}
	return out, nil
}

func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func main() {
	in := flag.String("in", "", "go test -bench output to parse")
	out := flag.String("out", "", "write aggregated results as JSON (e.g. BENCH_ci.json)")
	baseline := flag.String("baseline", "", "committed baseline JSON to compare against")
	guard := flag.String("guard", "BenchmarkPacketPath", "comma-separated benchmarks gated on median ns/op (within -tolerance) plus allocs/op")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression")
	allocGuard := flag.String("allocguard", "", "comma-separated benchmarks gated on allocs/op only (no tolerance)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -in is required")
		os.Exit(2)
	}

	results, err := parse(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines found in", *in)
		os.Exit(2)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	}
	if *baseline == "" {
		return
	}

	blob, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	base := make(map[string]*Entry)
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: bad baseline:", err)
		os.Exit(2)
	}
	lookup := func(name string) (want, got *Entry) {
		want, ok := base[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from baseline %s\n", name, *baseline)
			os.Exit(2)
		}
		got, ok = results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from %s\n", name, *in)
			os.Exit(2)
		}
		return want, got
	}
	// fail prints the regression verdict plus the full evidence: both
	// sides' raw sample lists and the baseline-refresh command, so the CI
	// log alone is enough to judge noise vs real regression.
	fail := func(want, got *Entry, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: "+format+"\n", args...)
		fmt.Fprintf(os.Stderr, "  baseline ns/op samples: %v (median %.1f)\n", want.Samples, want.MedianNsOp)
		fmt.Fprintf(os.Stderr, "  measured ns/op samples: %v (median %.1f)\n", got.Samples, got.MedianNsOp)
		if len(want.AllocSamples) > 0 || len(got.AllocSamples) > 0 {
			fmt.Fprintf(os.Stderr, "  baseline allocs/op samples: %v (median %.0f)\n", want.AllocSamples, want.MedianAllocs)
			fmt.Fprintf(os.Stderr, "  measured allocs/op samples: %v (median %.0f)\n", got.AllocSamples, got.MedianAllocs)
		}
		if len(want.EventSamples) > 0 || len(got.EventSamples) > 0 {
			fmt.Fprintf(os.Stderr, "  baseline events/sec/core samples: %v (median %.0f)\n", want.EventSamples, want.MedianEvents)
			fmt.Fprintf(os.Stderr, "  measured events/sec/core samples: %v (median %.0f)\n", got.EventSamples, got.MedianEvents)
		}
		fmt.Fprintf(os.Stderr, "  if this change is intentional, refresh the baseline:\n")
		fmt.Fprintf(os.Stderr, "    go run ./cmd/benchguard -in %s -out %s\n", *in, *baseline)
		os.Exit(1)
	}
	// allocs/op is hardware-independent, so it gets no tolerance: any
	// allocation creeping into a guarded free-list hot path fails the
	// gate even on a runner much faster than the baseline machine.
	gateAllocs := func(name string, want, got *Entry) {
		if len(want.AllocSamples) == 0 || len(got.AllocSamples) == 0 {
			return
		}
		fmt.Printf("benchguard: %s median %.0f allocs/op (baseline %.0f)\n",
			name, got.MedianAllocs, want.MedianAllocs)
		if got.MedianAllocs > want.MedianAllocs {
			fail(want, got, "%s %.0f allocs/op exceeds baseline %.0f",
				name, got.MedianAllocs, want.MedianAllocs)
		}
	}

	for _, name := range strings.Split(*guard, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want, got := lookup(name)
		limit := want.MedianNsOp * (1 + *tolerance)
		fmt.Printf("benchguard: %s median %.1f ns/op (baseline %.1f, limit %.1f)\n",
			name, got.MedianNsOp, want.MedianNsOp, limit)
		if got.MedianNsOp > limit {
			fail(want, got, "%s %.1f ns/op exceeds %.1f (baseline %.1f +%.0f%%)",
				name, got.MedianNsOp, limit, want.MedianNsOp, 100**tolerance)
		}
		// Throughput gate: only for benchmarks whose baseline carries the
		// events/sec/core metric; lower is worse, so the floor mirrors the
		// ns/op ceiling.
		if len(want.EventSamples) > 0 {
			if len(got.EventSamples) == 0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s has no events/sec/core in %s (ReportMetric missing?)\n", name, *in)
				os.Exit(2)
			}
			floor := want.MedianEvents * (1 - *tolerance)
			fmt.Printf("benchguard: %s median %.0f events/sec/core (baseline %.0f, floor %.0f)\n",
				name, got.MedianEvents, want.MedianEvents, floor)
			if got.MedianEvents < floor {
				fail(want, got, "%s %.0f events/sec/core below %.0f (baseline %.0f -%.0f%%)",
					name, got.MedianEvents, floor, want.MedianEvents, 100**tolerance)
			}
		}
		gateAllocs(name, want, got)
	}
	if *allocGuard != "" {
		for _, name := range strings.Split(*allocGuard, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			want, got := lookup(name)
			// Both sides must carry allocs/op: a missing column (dropped
			// ReportAllocs, changed output format) must fail loudly, not
			// turn the no-tolerance gate green with zero comparisons.
			if len(want.AllocSamples) == 0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s has no allocs/op in the baseline (ReportAllocs missing?)\n", name)
				os.Exit(2)
			}
			if len(got.AllocSamples) == 0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s has no allocs/op in %s (ReportAllocs missing?)\n", name, *in)
				os.Exit(2)
			}
			gateAllocs(name, want, got)
		}
	}
}
