package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"stardust/internal/sim"
)

// synthStream builds a stream from a window script: each step mutates the
// running absolute snapshot (deltas are what analyzers see).
func synthStream(t *testing.T, dirs, fas int, steps []func(s *Snapshot)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, StreamHeader{Dirs: dirs, FAs: fas, ScrapePs: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Dirs: make([]DirSample, dirs), Sinks: make([]SinkSample, fas)}
	for d := range snap.Dirs {
		snap.Dirs[d].Up = true
	}
	for i, step := range steps {
		snap.T = sim.Time(i+1) * 10 * sim.Microsecond
		step(&snap)
		if err := w.WriteWindow(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// twoUplinkMeta: one FA with dirs 0,1 as uplinks, one spine fed by dir 1.
func twoUplinkMeta() *Meta {
	return &Meta{
		Dirs:      2,
		FAs:       1,
		FAUplinks: [][]int{{0, 1}},
		SpineDown: [][]int{{1}},
		DirNames:  []string{"FA0->FE1_0", "FA0->FE1_1"},
	}
}

func bySeverity(fs []Finding, stage, sev string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Stage == stage && f.Severity == sev {
			out = append(out, f)
		}
	}
	return out
}

func TestSprayImbalanceAnalyzer(t *testing.T) {
	stream := synthStream(t, 2, 1, []func(*Snapshot){
		// Balanced: 100 cells each way.
		func(s *Snapshot) { s.Dirs[0].FwdCells += 100; s.Dirs[1].FwdCells += 100 },
		// Skewed: 190 vs 10 — ratio (max-min)/mean = 1.8.
		func(s *Snapshot) { s.Dirs[0].FwdCells += 190; s.Dirs[1].FwdCells += 10 },
	})
	fs, err := Analyze(bytes.NewReader(stream), twoUplinkMeta(), &SprayImbalance{})
	if err != nil {
		t.Fatal(err)
	}
	warns := bySeverity(fs, "spray-imbalance", SevWarn)
	if len(warns) != 1 {
		t.Fatalf("want 1 imbalance warning, got %d: %v", len(warns), fs)
	}
	if warns[0].Window != 1 || warns[0].Value < 1.7 || warns[0].Value > 1.9 {
		t.Fatalf("warning at wrong window or ratio: %+v", warns[0])
	}
	finish := bySeverity(fs, "spray-imbalance", SevInfo)
	if len(finish) != 1 || !strings.Contains(finish[0].Detail, "FA0") {
		t.Fatalf("missing worst-FA summary: %v", finish)
	}

	// A down link carrying nothing is not imbalance: with dir 1 down only
	// one live uplink remains, which cannot be compared against itself.
	down := synthStream(t, 2, 1, []func(*Snapshot){
		func(s *Snapshot) { s.Dirs[1].Up = false; s.Dirs[0].FwdCells += 200 },
	})
	fs, err = Analyze(bytes.NewReader(down), twoUplinkMeta(), &SprayImbalance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bySeverity(fs, "spray-imbalance", SevWarn)) != 0 {
		t.Fatalf("failed link flagged as imbalance: %v", fs)
	}
}

func TestCongestionOnsetAnalyzer(t *testing.T) {
	stream := synthStream(t, 2, 0, []func(*Snapshot){
		func(s *Snapshot) { s.Dirs[0].QueueBytes = 5000 },
		func(s *Snapshot) { s.Dirs[0].QueueBytes = 6000 },
		// Third consecutive rise above the floor -> ramp warning; first
		// drops after a clean window -> onset critical.
		func(s *Snapshot) { s.Dirs[0].QueueBytes = 7000; s.Dirs[0].Drops += 4 },
		// Drops continue: no second onset.
		func(s *Snapshot) { s.Dirs[0].QueueBytes = 2000; s.Dirs[0].Drops += 9 },
	})
	fs, err := Analyze(bytes.NewReader(stream), nil, &CongestionOnset{})
	if err != nil {
		t.Fatal(err)
	}
	crits := bySeverity(fs, "congestion-onset", SevCritical)
	if len(crits) != 1 || crits[0].Window != 2 || crits[0].Value != 4 {
		t.Fatalf("want one onset at window 2 with 4 drops: %v", crits)
	}
	warns := bySeverity(fs, "congestion-onset", SevWarn)
	if len(warns) != 1 || warns[0].Window != 2 {
		t.Fatalf("want one ramp warning at window 2: %v", warns)
	}
	finish := bySeverity(fs, "congestion-onset", SevInfo)
	if len(finish) != 1 || finish[0].Value != 1 {
		t.Fatalf("onset count summary wrong: %v", finish)
	}
}

func TestReachHolesAnalyzer(t *testing.T) {
	stream := synthStream(t, 2, 1, []func(*Snapshot){
		func(s *Snapshot) {},
		// Both uplinks down: FA0 isolated; dir 1 down also kills the spine.
		func(s *Snapshot) { s.Dirs[0].Up = false; s.Dirs[1].Up = false },
		func(s *Snapshot) {}, // still down: no repeated finding
		func(s *Snapshot) { s.Dirs[0].Up = true; s.Dirs[1].Up = true },
	})
	fs, err := Analyze(bytes.NewReader(stream), twoUplinkMeta(), &ReachHoles{})
	if err != nil {
		t.Fatal(err)
	}
	opened := bySeverity(fs, "reach-holes", SevCritical)
	if len(opened) != 2 { // FA0 and FE2_0
		t.Fatalf("want FA and spine holes opened, got %v", opened)
	}
	for _, f := range opened {
		if f.Window != 1 {
			t.Fatalf("hole opened at window %d, want 1: %+v", f.Window, f)
		}
	}
	var closed int
	for _, f := range bySeverity(fs, "reach-holes", SevInfo) {
		if strings.Contains(f.Detail, "closed") {
			closed++
		}
	}
	if closed != 2 {
		t.Fatalf("want both holes closed, got %d: %v", closed, fs)
	}
}

func TestFAHeatmapFoldsColumns(t *testing.T) {
	var steps []func(*Snapshot)
	for i := 0; i < 10; i++ {
		steps = append(steps, func(s *Snapshot) {
			s.Sinks[0].Bytes += 100
			s.Sinks[1].Bytes += 300
		})
	}
	hm := &FAHeatmap{MaxCols: 4}
	stream := synthStream(t, 2, 2, steps)
	fs, err := Analyze(bytes.NewReader(stream), nil, hm)
	if err != nil {
		t.Fatal(err)
	}
	rows := hm.Rows()
	if len(rows) != 2 {
		t.Fatalf("want 2 FA rows, got %d", len(rows))
	}
	if len(rows[0]) > 4 {
		t.Fatalf("heatmap exceeded MaxCols: %d columns", len(rows[0]))
	}
	// Folding must conserve the totals.
	var t0, t1 uint64
	for _, v := range rows[0] {
		t0 += v
	}
	for _, v := range rows[1] {
		t1 += v
	}
	if t0 != 1000 || t1 != 3000 {
		t.Fatalf("fold lost bytes: FA0=%d FA1=%d", t0, t1)
	}
	finish := bySeverity(fs, "fa-heatmap", SevInfo)
	if len(finish) != 1 || !strings.Contains(finish[0].Detail, "hottest FA1") {
		t.Fatalf("summary wrong: %v", finish)
	}
}

func TestFindingLogRingAndSince(t *testing.T) {
	l := NewFindingLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Finding{Stage: "s", Window: uint64(i)})
	}
	if l.Total() != 10 {
		t.Fatalf("Total %d, want 10", l.Total())
	}
	// A tailer starting from 0 fell behind: it sees only the retained
	// tail, and the first seq exposes the gap.
	out, next := l.Since(0, 100)
	if len(out) != 4 || out[0].Seq != 6 || out[3].Seq != 9 || next != 10 {
		t.Fatalf("Since(0): %d findings, first seq %d, next %d", len(out), out[0].Seq, next)
	}
	// Resuming from next returns nothing until more findings land.
	out, next2 := l.Since(next, 100)
	if len(out) != 0 || next2 != 10 {
		t.Fatalf("Since(%d): %d findings, next %d", next, len(out), next2)
	}
	// max bounds a page.
	out, next3 := l.Since(6, 2)
	if len(out) != 2 || next3 != 8 {
		t.Fatalf("paged Since: %d findings, next %d", len(out), next3)
	}
}

func TestMetaFromHeader(t *testing.T) {
	// K regenerates the exact wiring.
	m, err := MetaFromHeader(StreamHeader{K: 4, Dirs: 64, FAs: 8})
	if err == nil {
		// Only valid if ClosFor(4) really has 32 links/8 FAs; if the dims
		// disagree the constructor must say so instead.
		if m.Dirs != 64 || m.FAs != 8 || len(m.FAUplinks) != 8 {
			t.Fatalf("meta from K=4 header wrong: %+v", m)
		}
	} else if !strings.Contains(err.Error(), "implies") {
		t.Fatal(err)
	}
	// Mismatched dims are rejected.
	if _, err := MetaFromHeader(StreamHeader{K: 4, Dirs: 2, FAs: 1}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	// Headerless shape degrades to device-less metadata.
	m, err = MetaFromHeader(StreamHeader{Dirs: 6, FAs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dirs != 6 || m.FAs != 3 || m.FAUplinks != nil {
		t.Fatalf("device-less meta wrong: %+v", m)
	}
}

func TestDirLabel(t *testing.T) {
	m := twoUplinkMeta()
	if got := dirLabel(m, 1); got != "FA0->FE1_1" {
		t.Fatalf("dirLabel named meta: %q", got)
	}
	if got := dirLabel(nil, 3); got != "dir3" {
		t.Fatalf("dirLabel nil meta: %q", got)
	}
	if got := dirLabel(&Meta{}, 0); got != "dir0" {
		t.Fatalf("dirLabel empty meta: %q", got)
	}
}
