// Package mgmt is the chassis management plane of the Stardust fabric:
// the control layer that makes thousands of Fabric Elements behave like
// one managed device, the paper's headline operational claim (§1, §7).
//
// It attaches to a running fabric.Fabric and provides what a chassis
// supervisor provides for a monolithic switch: a device/link inventory
// derived from the wiring (any topo.Graph), periodic telemetry scraping of
// per-link counters into ring-buffered time series, an event bus carrying
// link failure/withdrawal/recovery notifications (hooked into the
// fabric's reachability-withdrawal path), and an anomaly detector that
// flags spray imbalance (§5.3 violated) and reachability holes (§5.9
// violated). Package mgmt also hosts the serving layer of cmd/stardustd:
// a bounded scenario-run queue over the engine worker pool with a
// content-addressed result cache, and the HTTP/JSON + Prometheus API.
//
// Concurrency model: the simulation (and therefore every fabric hook and
// scheduled scrape) runs in a single goroutine; HTTP handlers run in
// others. All state shared across that boundary lives behind the
// Controller's lock — handlers read consistent snapshots and never touch
// the fabric directly.
package mgmt

import (
	"fmt"

	"stardust/internal/topo"
)

// Device is one inventory entry: a Fabric Adapter or Fabric Element of
// the chassis.
type Device struct {
	ID    string `json:"id"`   // e.g. "FA3", "FE1-2", "FE2-0"
	Kind  string `json:"kind"` // "FA", "FE1", "FE2"
	Index int    `json:"index"`
	Ports int    `json:"ports"`
}

// Link is one full-duplex serial link of the inventory.
type Link struct {
	ID    int    `json:"id"` // topology link index
	A     string `json:"a"`
	APort int    `json:"a_port"`
	B     string `json:"b"`
	BPort int    `json:"b_port"`
}

// Inventory is the chassis view of one Clos instance: every device and
// every serial link, derived from the wiring.
type Inventory struct {
	Tiers   int      `json:"tiers"`
	Devices []Device `json:"devices"`
	Links   []Link   `json:"links"`
}

// deviceID renders the canonical inventory ID of a node. Fabric Elements
// get a dash between tier and index ("FE1-12") so the ID never collides
// across tiers the way the bare NodeID rendering can ("FE112").
func deviceID(n topo.NodeID) string {
	if n.Kind == topo.KindFA {
		return fmt.Sprintf("FA%d", n.Index)
	}
	return fmt.Sprintf("%s-%d", n.Kind, n.Index)
}

// NewInventory derives the chassis inventory from the wiring of any
// topology. A Clos keeps the legacy device IDs ("FA3", "FE1-2"); other
// graphs use their nodes' canonical names.
func NewInventory(g topo.Graph) *Inventory {
	if cl, ok := g.(*topo.Clos); ok {
		return newClosInventory(cl)
	}
	inv := &Inventory{Tiers: g.NumTiers()}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		inv.Devices = append(inv.Devices, Device{
			ID: n.Name, Kind: n.Role, Index: i, Ports: n.Ports,
		})
	}
	for i, lk := range g.GraphLinks() {
		inv.Links = append(inv.Links, Link{
			ID: i,
			A:  g.Node(lk.A).Name, APort: lk.APort,
			B: g.Node(lk.B).Name, BPort: lk.BPort,
		})
	}
	return inv
}

// newClosInventory is the legacy Clos derivation, kept so device IDs in
// the HTTP API do not change shape ("FE1-2", not "FE1_2").
func newClosInventory(c *topo.Clos) *Inventory {
	inv := &Inventory{Tiers: c.Tiers}
	for i := 0; i < c.NumFA; i++ {
		n := topo.NodeID{Kind: topo.KindFA, Index: i}
		inv.Devices = append(inv.Devices, Device{
			ID: deviceID(n), Kind: topo.KindFA.String(), Index: i, Ports: c.FAUplinks,
		})
	}
	for i := 0; i < c.NumFE1; i++ {
		n := topo.NodeID{Kind: topo.KindFE1, Index: i}
		inv.Devices = append(inv.Devices, Device{
			ID: deviceID(n), Kind: topo.KindFE1.String(), Index: i, Ports: c.FE1Down + c.FE1Up,
		})
	}
	for i := 0; i < c.NumFE2; i++ {
		n := topo.NodeID{Kind: topo.KindFE2, Index: i}
		inv.Devices = append(inv.Devices, Device{
			ID: deviceID(n), Kind: topo.KindFE2.String(), Index: i, Ports: c.FE2Down,
		})
	}
	for i, lk := range c.Links {
		inv.Links = append(inv.Links, Link{
			ID: i,
			A:  deviceID(lk.A), APort: lk.APort,
			B: deviceID(lk.B), BPort: lk.BPort,
		})
	}
	return inv
}
