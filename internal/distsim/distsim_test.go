package distsim

import (
	"encoding/json"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// smallSpec is a fast parscale-shaped run: ~400 windows on a K=4 Clos.
func smallSpec(shards int) Spec {
	return Spec{K: 4, Seed: 7, Shards: shards, Dur: 200 * sim.Microsecond, Load: 0.5, CellBytes: 512, Hotspot: 1}
}

// healSpec exercises the control plane: link failures mid-run, heals, and
// the cross-shard reach re-advertisements they trigger.
func healSpec(shards int) Spec {
	s := smallSpec(shards)
	s.Dur = 150 * sim.Microsecond
	s.FailN = 2
	s.FailAt = 100 * sim.Microsecond
	s.HealAt = 160 * sim.Microsecond
	return s
}

func localOutcome(t *testing.T, spec Spec) Outcome {
	t.Helper()
	m, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	return l
}

type serveResult struct {
	out Outcome
	err error
}

// serveWith runs a coordinator plus npeers in-process peer goroutines and
// returns the coordinator's outcome.
func serveWith(t *testing.T, spec Spec, npeers int, cfg CoordConfig) (Outcome, error) {
	t.Helper()
	l := mustListen(t)
	addr := l.Addr().String()
	cfg.Spec = spec
	cfg.Peers = npeers
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, cfg)
		ch <- serveResult{out, err}
	}()
	for i := 0; i < npeers; i++ {
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			runPeerConn(conn, -1)
		}()
	}
	select {
	case r := <-ch:
		return r.out, r.err
	case <-time.After(120 * time.Second):
		t.Fatal("distributed run deadlocked")
		return Outcome{}, nil
	}
}

// TestStepOwnedMatchesRun pins the transport seam itself: driving the
// engine through StepOwned with every shard owned must be bit-identical
// to the internal RunUntilQuiet loop.
func TestStepOwnedMatchesRun(t *testing.T) {
	spec := healSpec(4)
	want := localOutcome(t, spec)

	m, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]bool, spec.Shards)
	for i := range all {
		all[i] = true
	}
	look := m.Eng.Lookahead()
	until := (m.Horizon + m.Drain + look - 1) / look * look
	for m.Eng.Now() < until && !m.Eng.Quiet() {
		m.Eng.StepOwned(all, nil)
	}
	if !m.Eng.Quiet() {
		t.Fatalf("StepOwned loop did not drain")
	}
	sc, sb, dirs := m.gather()
	got := Outcome{
		Injected:    m.Net.Injected(),
		Delivered:   m.Net.Delivered(),
		Drops:       m.Net.Drops(),
		Events:      m.Eng.Processed(),
		Unreachable: m.Net.UnreachablePairs(),
		Digest:      foldDigest(sc, sb, dirs),
		ShardEvents: m.Net.ShardEvents(),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StepOwned outcome diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestDistributedMatchesLocal is the core guarantee: same seed, same
// bytes, whether the shards are goroutines or remote peers — including
// uneven partition maps and a fail/heal control schedule.
func TestDistributedMatchesLocal(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		npeers int
	}{
		{"2peers", smallSpec(4), 2},
		{"3peers-uneven", smallSpec(4), 3},
		{"4peers", smallSpec(4), 4},
		{"heal-2peers", healSpec(4), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := localOutcome(t, tc.spec)
			got, err := serveWith(t, tc.spec, tc.npeers, CoordConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("distributed outcome diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestVersionMismatch: a peer speaking the wrong protocol version gets a
// deterministic ERROR frame and the coordinator aborts — no hang.
func TestVersionMismatch(t *testing.T) {
	l := mustListen(t)
	addr := l.Addr().String()
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, CoordConfig{Spec: smallSpec(2), Peers: 1, JoinTimeout: 30 * time.Second})
		ch <- serveResult{out, err}
	}()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hb, _ := json.Marshal(helloMsg{Version: 99})
	if err := writeFrame(conn, tHello, hb, false); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	typ, body, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != tError || !strings.Contains(string(body), "version mismatch") {
		t.Fatalf("expected version-mismatch ERROR frame, got type %d %q", typ, body)
	}
	select {
	case r := <-ch:
		if r.err == nil || !strings.Contains(r.err.Error(), "version mismatch") {
			t.Fatalf("coordinator error = %v, want version mismatch", r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung on version mismatch")
	}
}

// TestPartitionDisagreement: a peer whose replica hashes differently from
// the coordinator's is rejected at READY, before any window runs.
func TestPartitionDisagreement(t *testing.T) {
	l := mustListen(t)
	addr := l.Addr().String()
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, CoordConfig{Spec: smallSpec(2), Peers: 1, JoinTimeout: 30 * time.Second})
		ch <- serveResult{out, err}
	}()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hb, _ := json.Marshal(helloMsg{Version: protoVersion})
	if err := writeFrame(conn, tHello, hb, false); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	typ, _, err := readFrame(conn)
	if err != nil || typ != tWelcome {
		t.Fatalf("expected WELCOME, got type %d err %v", typ, err)
	}
	rb, _ := json.Marshal(readyMsg{Hash: 0xdeadbeef})
	if err := writeFrame(conn, tReady, rb, false); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != tError || !strings.Contains(string(body), "partition map disagreement") {
		t.Fatalf("expected partition-disagreement ERROR frame, got type %d %q", typ, body)
	}
	select {
	case r := <-ch:
		if r.err == nil || !strings.Contains(r.err.Error(), "partition map disagreement") {
			t.Fatalf("coordinator error = %v, want partition map disagreement", r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung on partition disagreement")
	}
}

// TestMidWindowDisconnect: without Rejoin, a peer dropping mid-run aborts
// the whole run with a deterministic error instead of deadlocking the
// barrier.
func TestMidWindowDisconnect(t *testing.T) {
	l := mustListen(t)
	addr := l.Addr().String()
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, CoordConfig{Spec: smallSpec(2), Peers: 1})
		ch <- serveResult{out, err}
	}()
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		runPeerConn(conn, 3) // die on reaching window 3
	}()
	select {
	case r := <-ch:
		if r.err == nil || !strings.Contains(r.err.Error(), "disconnected at window") {
			t.Fatalf("coordinator error = %v, want mid-window disconnect", r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung on mid-window disconnect")
	}
}

// TestDoubleJoin: a second connection while every peer slot is taken is
// parked and then deterministically rejected — it never steals a slot and
// never hangs.
func TestDoubleJoin(t *testing.T) {
	l := mustListen(t)
	addr := l.Addr().String()
	started := make(chan struct{})
	var once bool
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, CoordConfig{
			Spec:  smallSpec(2),
			Peers: 1,
			OnWindow: func(w int) {
				if !once {
					once = true
					close(started)
				}
			},
		})
		ch <- serveResult{out, err}
	}()
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		runPeerConn(conn, -1)
	}()
	<-started // the legitimate peer owns the run now
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hb, _ := json.Marshal(helloMsg{Version: protoVersion})
	if err := writeFrame(conn, tHello, hb, false); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("run with a double-join attempt failed: %v", r.err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator hung with a double-join attempt")
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	typ, body, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != tError || !strings.Contains(string(body), "no free peer slot") {
		t.Fatalf("expected no-free-slot ERROR frame, got type %d %q", typ, body)
	}
}

// TestRejoinRestoresDigest: a peer dies mid-run, a replacement joins,
// restores from the mail-log checkpoint by replay, and the final outcome
// is byte-identical to the uninterrupted run.
func TestRejoinRestoresDigest(t *testing.T) {
	spec := smallSpec(4)
	want := localOutcome(t, spec)

	l := mustListen(t)
	addr := l.Addr().String()
	ch := make(chan serveResult, 1)
	go func() {
		out, err := Serve(l, CoordConfig{Spec: spec, Peers: 2, Rejoin: true, RejoinTimeout: 60 * time.Second})
		ch <- serveResult{out, err}
	}()
	// Peer 0 crashes at window 40; its death triggers the replacement.
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		runPeerConn(conn, 40)
		conn.Close()
		replacement, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer replacement.Close()
		runPeerConn(replacement, -1)
	}()
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		runPeerConn(conn, -1)
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !reflect.DeepEqual(r.out, want) {
			t.Fatalf("restored outcome diverged:\n got %+v\nwant %+v", r.out, want)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("restore run deadlocked")
	}
}

// TestCheckpointFileReplay round-trips the on-disk checkpoint format: the
// logged mail history of one peer, replayed offline against a fresh
// replica, reproduces that peer's exact owned counters.
func TestCheckpointFileReplay(t *testing.T) {
	spec := healSpec(4)
	dir := t.TempDir()
	out, err := serveWith(t, spec, 2, CoordConfig{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hdr, batches, err := LoadCheckpoint(filepath.Join(dir, "peer0.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hdr.Spec, spec) || hdr.Peer != 0 || hdr.NPeers != 2 {
		t.Fatalf("checkpoint header mismatch: %+v", hdr)
	}
	if len(batches) == 0 {
		t.Fatal("checkpoint logged no windows")
	}
	m, err := NewModel(hdr.Spec)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]bool, hdr.Spec.Shards)
	for s, o := range hdr.Owners {
		owned[s] = o == hdr.Peer
	}
	for _, batch := range batches {
		if err := deliverBatch(m, batch); err != nil {
			t.Fatal(err)
		}
		m.Eng.StepOwned(owned, func(src, dst int, mail parsim.Mail) { m.Net.EncodeMail(mail) })
	}
	// The replayed replica's owned sinks must match the real run's: fold
	// them against the distributed outcome's digest inputs indirectly by
	// checking the owned slice of delivered cells is internally consistent.
	rep := buildReport(m, owned)
	var cells uint64
	for _, s := range rep.Sinks {
		cells += s.Cells
	}
	var shardDelivered uint64
	for _, s := range rep.Shards {
		shardDelivered += s.Delivered
	}
	if cells != shardDelivered {
		t.Fatalf("offline replay inconsistent: %d sink cells vs %d delivered on owned shards", cells, shardDelivered)
	}
	if out.Delivered < cells {
		t.Fatalf("owned replay delivered %d > total %d", cells, out.Delivered)
	}
}
