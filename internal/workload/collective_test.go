package workload

import (
	"math/rand"
	"testing"
)

func TestRingAllReduce(t *testing.T) {
	const n, bytes = 8, 1 << 20
	phases := RingAllReduce(n, bytes)
	if got, want := len(phases), 2*(n-1); got != want {
		t.Fatalf("phases = %d, want %d", got, want)
	}
	for pi, flows := range phases {
		if len(flows) != n {
			t.Fatalf("phase %d: %d flows, want %d", pi, len(flows), n)
		}
		for _, f := range flows {
			if f.Dst != (f.Src+1)%n {
				t.Fatalf("phase %d: flow %d->%d breaks the ring", pi, f.Src, f.Dst)
			}
			if f.Bytes != bytes/n {
				t.Fatalf("phase %d: chunk %d bytes, want %d", pi, f.Bytes, bytes/n)
			}
		}
	}
}

func TestTreeAllReduce(t *testing.T) {
	for _, n := range []int{2, 5, 8, 16} {
		phases := TreeAllReduce(n, 4096)
		log2 := 0
		for s := 1; s < n; s *= 2 {
			log2++
		}
		if got, want := len(phases), 2*log2; got != want {
			t.Fatalf("n=%d: phases = %d, want %d", n, got, want)
		}
		// Broadcast phases mirror the reduce phases in reverse order.
		for i := 0; i < log2; i++ {
			red, bc := phases[i], phases[2*log2-1-i]
			if len(red) != len(bc) {
				t.Fatalf("n=%d: reduce phase %d has %d flows, mirror has %d", n, i, len(red), len(bc))
			}
			for j := range red {
				if red[j].Src != bc[j].Dst || red[j].Dst != bc[j].Src {
					t.Fatalf("n=%d: phase %d flow %d->%d not mirrored by %d->%d",
						n, i, red[j].Src, red[j].Dst, bc[j].Src, bc[j].Dst)
				}
			}
		}
		// Every reduce flow lands on a lower rank (tree rooted at 0).
		for i := 0; i < log2; i++ {
			for _, f := range phases[i] {
				if f.Dst >= f.Src {
					t.Fatalf("n=%d: reduce flow %d->%d does not descend", n, f.Src, f.Dst)
				}
			}
		}
	}
}

func TestStorageFlowSizes(t *testing.T) {
	cdf := StorageFlowSizes()
	rng := rand.New(rand.NewSource(7))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := cdf.Sample(rng)
		if s < 256 || s > 64e6 {
			t.Fatalf("sample %g outside [256, 64e6]", s)
		}
		if s <= 4e3 {
			small++
		}
		if s >= 4e6 {
			large++
		}
	}
	if small < 4000 {
		t.Fatalf("only %d/10000 samples <= 4KB; the mix should be metadata-dominated", small)
	}
	if large < 500 {
		t.Fatalf("only %d/10000 samples >= 4MB; the chunk tail is missing", large)
	}
}

func TestDiurnalArrivals(t *testing.T) {
	const peak, trough, period, dur = 1000.0, 0.2, 10.0, 20.0
	a := DiurnalArrivals(rand.New(rand.NewSource(42)), peak, trough, period, dur)
	b := DiurnalArrivals(rand.New(rand.NewSource(42)), peak, trough, period, dur)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("determinism broken: %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at arrival %d: %g vs %g", i, a[i], b[i])
		}
	}
	prev := -1.0
	for _, x := range a {
		if x <= prev || x >= dur {
			t.Fatalf("arrival %g not strictly increasing within [0, %g)", x, dur)
		}
		prev = x
	}
	// The sinusoid peaks in the first half-period and bottoms out in the
	// second: the arrival counts must reflect the modulation.
	var peakN, troughN int
	for _, x := range a {
		switch {
		case x < period/2:
			peakN++
		case x < period:
			troughN++
		}
	}
	if peakN <= troughN {
		t.Fatalf("peak half-period got %d arrivals, trough half got %d; modulation missing", peakN, troughN)
	}
}
