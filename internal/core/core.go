// Package core implements the Stardust architecture (§3, §4) as an
// event-driven model: Fabric Adapter devices at the edge (VOQ ingress
// buffering, credit-scheduled egress, cell fragmentation with packet
// packing, out-of-order reassembly) and Fabric Element cell switches in the
// fabric (reachability-table forwarding, per-link shallow queues, FCI
// marking, dynamic per-cell load balancing), wired by serial links with
// real serialization and propagation delay.
//
// Data cells contend for link bandwidth exactly as on the wire. Control
// traffic (credit requests, credits, reachability messages) is modelled as
// delay-only messages: the paper budgets these at well under 0.1% of link
// bandwidth (Appendix E), so they do not contend for capacity in the model.
//
// Package core is deliberately Clos-only: the FA/FE device split, the
// control-crossbar hop budget and the reachability advertisement schedule
// are the paper's chassis architecture, defined over the Clos wiring.
// Topology-pluggable simulation (Space Shuffle, star-replaced graphs, …)
// lives in internal/fabric, whose fabric.Fabric interface runs over any
// topo.Graph; core keeps the device-faithful model it reproduces from
// §3–§4 and never labels non-Clos roles.
package core

import (
	"fmt"

	"stardust/internal/sched"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Config parameterizes a Stardust network.
type Config struct {
	CellSize int  // maximum cell size incl. header (e.g. 256)
	Packing  bool // packet packing within credit batches (§3.4)

	LinkBps   float64  // fabric serial link rate (e.g. 50e9)
	LinkDelay sim.Time // per-link propagation (e.g. 500ns for 100m fiber)
	FELatency sim.Time // Fabric Element pipeline latency per hop

	HostPortBps    float64 // edge (host-facing) port rate
	HostPortsPerFA int     // number of host ports per Fabric Adapter

	FAIngressBufBytes  int64 // shared VOQ buffer per FA (§3.3: MBs to GBs)
	FAEgressBufBytes   int64 // egress buffer per port
	FAUplinkQueueCells int   // per-uplink output queue at the FA, in cells

	FEQueueCells    int  // per-output-link queue capacity (cells)
	FESharedCells   int  // extra shared pool on top of per-link capacity
	FCIThreshCells  int  // queue depth that sets FCI on passing cells (§4.2)
	StoreAndForward bool // FA waits for full packet before fragmenting (Arad-style, §6.1.2)

	Credit sched.Config // egress credit scheduler parameters

	ReassemblySkew    int      // max out-of-order cell distance (§4.1)
	ReassemblyTimeout sim.Time // reassembly timer (§4.1)

	ReachInterval  sim.Time // reachability message period per link (App E: c/f)
	ReachThreshold int      // consecutive evidence to flip link state (th)

	// LowLatencyTCs marks traffic classes whose VOQs transmit immediately
	// on activation without waiting for a credit (§5.6).
	LowLatencyTCs map[uint8]bool

	Seed int64
}

// DefaultConfig returns the paper's canonical parameters for a fabric of
// 50G links and 100G host ports.
func DefaultConfig() Config {
	return Config{
		CellSize:           256,
		Packing:            true,
		LinkBps:            50e9,
		LinkDelay:          500 * sim.Nanosecond, // 100m fiber
		FELatency:          300 * sim.Nanosecond,
		HostPortBps:        100e9,
		HostPortsPerFA:     40,
		FAIngressBufBytes:  32 << 20,
		FAEgressBufBytes:   2 << 20,
		FAUplinkQueueCells: 256,
		FEQueueCells:       256,
		FESharedCells:      4096, // ~1MB shared pool (§5.5; §6.2 sizes 8MB/FE)
		FCIThreshCells:     64,
		StoreAndForward:    false,
		Credit:             sched.DefaultConfig(100e9),
		ReassemblySkew:     4096,
		ReassemblyTimeout:  500 * sim.Microsecond,
		ReachInterval:      10 * sim.Microsecond,
		ReachThreshold:     3,
		Seed:               1,
	}
}

// Packet is the unit handed to a Fabric Adapter by a host and delivered to
// a host on the far side.
type Packet struct {
	ID      uint64
	Size    int // bytes as received from the host
	SrcFA   uint16
	SrcPort uint8
	DstFA   uint16
	DstPort uint8
	TC      uint8

	Injected    sim.Time // when the ingress FA accepted it
	Dequeued    sim.Time // when a credit released it from its VOQ
	Reassembled sim.Time
	Delivered   sim.Time // when the egress port finished transmitting it
}

// Latency returns the end-to-end latency of a delivered packet.
func (p *Packet) Latency() sim.Time { return p.Delivered - p.Injected }

// Network is a complete Stardust instance: Fabric Adapters, Fabric
// Elements, and the links between them, sharing one event simulator.
type Network struct {
	Cfg Config
	Sim *sim.Simulator

	FAs []*FabricAdapter
	FEs []*FabricElement // tier-1 elements first, then tier-2

	clos *topo.Clos

	// OnDeliver, when set, observes every packet delivered to a host.
	OnDeliver func(*Packet)

	nextPktID uint64
	inflight  map[uint64]*Packet

	// Metrics
	Delivered  uint64
	DeliveredB uint64
}

// New builds a Stardust network over the given Clos fabric instance.
func New(cfg Config, clos *topo.Clos) (*Network, error) {
	if err := clos.Validate(); err != nil {
		return nil, err
	}
	if cfg.CellSize <= 16 || cfg.LinkBps <= 0 || cfg.HostPortBps <= 0 {
		return nil, fmt.Errorf("core: invalid config")
	}
	if cfg.HostPortsPerFA < 1 || cfg.HostPortsPerFA > 256 {
		return nil, fmt.Errorf("core: host ports per FA out of range")
	}
	n := &Network{
		Cfg:      cfg,
		Sim:      sim.New(),
		clos:     clos,
		inflight: make(map[uint64]*Packet),
	}
	for i := 0; i < clos.NumFA; i++ {
		n.FAs = append(n.FAs, newFabricAdapter(n, uint16(i), clos.FAUplinks))
	}
	for i := 0; i < clos.NumFE1; i++ {
		n.FEs = append(n.FEs, newFabricElement(n, topo.NodeID{Kind: topo.KindFE1, Index: i}, clos.FE1Down+clos.FE1Up))
	}
	for i := 0; i < clos.NumFE2; i++ {
		n.FEs = append(n.FEs, newFabricElement(n, topo.NodeID{Kind: topo.KindFE2, Index: i}, clos.FE2Down))
	}
	for _, l := range clos.Links {
		a := n.endpoint(l.A, l.APort)
		b := n.endpoint(l.B, l.BPort)
		wire(n, a, b)
	}
	// Start periodic reachability advertisement on every device.
	for _, fa := range n.FAs {
		fa.start()
	}
	for _, fe := range n.FEs {
		fe.start()
	}
	return n, nil
}

// fe returns the element for a topo node id.
func (n *Network) fe(id topo.NodeID) *FabricElement {
	switch id.Kind {
	case topo.KindFE1:
		return n.FEs[id.Index]
	case topo.KindFE2:
		return n.FEs[n.clos.NumFE1+id.Index]
	}
	panic("core: not a fabric element: " + id.String())
}

type endpointRef struct {
	fa   *FabricAdapter
	fe   *FabricElement
	port int
}

func (n *Network) endpoint(id topo.NodeID, port int) endpointRef {
	if id.Kind == topo.KindFA {
		return endpointRef{fa: n.FAs[id.Index], port: port}
	}
	return endpointRef{fe: n.fe(id), port: port}
}

// NumFA returns the number of Fabric Adapters.
func (n *Network) NumFA() int { return len(n.FAs) }

// Inject hands a packet to the ingress Fabric Adapter at the current
// simulation time. It returns false if the ingress buffer dropped it.
func (n *Network) Inject(srcFA uint16, srcPort uint8, dstFA uint16, dstPort uint8, tc uint8, size int) (bool, *Packet) {
	n.nextPktID++
	p := &Packet{
		ID:       n.nextPktID,
		Size:     size,
		SrcFA:    srcFA,
		SrcPort:  srcPort,
		DstFA:    dstFA,
		DstPort:  dstPort,
		TC:       tc,
		Injected: n.Sim.Now(),
	}
	n.inflight[p.ID] = p
	if ok := n.FAs[srcFA].ingress(p); !ok {
		return false, p
	}
	return true, p
}

func (n *Network) deliver(p *Packet) {
	p.Delivered = n.Sim.Now()
	n.Delivered++
	n.DeliveredB += uint64(p.Size)
	delete(n.inflight, p.ID)
	if n.OnDeliver != nil {
		n.OnDeliver(p)
	}
}

func (n *Network) packet(id uint64) *Packet { return n.inflight[id] }

func (n *Network) discard(ids ...uint64) {
	for _, id := range ids {
		delete(n.inflight, id)
	}
}

// sendFAtoFA delivers an end-to-end control message (credit request or
// grant) between Fabric Adapters. Control messages ride the fabric's
// dedicated control crossbar (§4.2); they are modelled as delay-only with
// the worst-case hop count of the fabric.
func (n *Network) sendFAtoFA(src, dst uint16, m any) {
	if src == dst {
		n.Sim.After(0, func() { n.FAs[dst].onFAMsg(m) })
		return
	}
	links := int64(2 * n.clos.Tiers)
	fes := links - 1
	msgTx := sim.Time(int64(24) * int64(8e12/n.Cfg.LinkBps))
	delay := sim.Time(links)*(n.Cfg.LinkDelay+msgTx) + sim.Time(fes)*n.Cfg.FELatency
	n.Sim.After(delay, func() { n.FAs[dst].onFAMsg(m) })
}

// Run drives the simulation until the given time.
func (n *Network) Run(until sim.Time) { n.Sim.RunUntil(until) }

// Converged reports whether every Fabric Adapter has a live path to every
// other Fabric Adapter.
func (n *Network) Converged() bool {
	for _, fa := range n.FAs {
		if !fa.Converged() {
			return false
		}
	}
	return true
}

// WarmUp runs the simulation until reachability converges or the budget
// elapses. Returns the convergence state.
func (n *Network) WarmUp(budget sim.Time) bool {
	deadline := n.Sim.Now() + budget
	step := sim.Time(int64(n.Cfg.ReachInterval))
	for n.Sim.Now() < deadline {
		n.Sim.RunUntil(n.Sim.Now() + step)
		if n.Converged() {
			return true
		}
	}
	return n.Converged()
}

// FailLink takes down the link attached to the given device port in both
// directions (the fiber is cut). Reachability keepalive loss withdraws the
// paths within the configured detection time (§5.9).
func (n *Network) FailLink(id topo.NodeID, port int) error {
	ep := n.endpoint(id, port)
	var l *link
	if ep.fa != nil {
		l = ep.fa.uplinks[port]
	} else {
		l = ep.fe.links[port]
	}
	if l == nil {
		return fmt.Errorf("core: no link at %v port %d", id, port)
	}
	l.fail()
	l.peerLink().fail()
	return nil
}

// RestoreLink brings a failed link back up.
func (n *Network) RestoreLink(id topo.NodeID, port int) error {
	ep := n.endpoint(id, port)
	var l *link
	if ep.fa != nil {
		l = ep.fa.uplinks[port]
	} else {
		l = ep.fe.links[port]
	}
	if l == nil {
		return fmt.Errorf("core: no link at %v port %d", id, port)
	}
	l.restore()
	l.peerLink().restore()
	return nil
}

// SetLinkFaulty marks (or clears) the link at the given device port as
// error-degraded: the transmitting side flags itself faulty on its
// reachability cells and the receiver excludes it from forwarding until
// the flag clears and the threshold of good messages passes (§5.10).
func (n *Network) SetLinkFaulty(id topo.NodeID, port int, faulty bool) error {
	ep := n.endpoint(id, port)
	var l *link
	if ep.fa != nil {
		l = ep.fa.uplinks[port]
	} else {
		l = ep.fe.links[port]
	}
	if l == nil {
		return fmt.Errorf("core: no link at %v port %d", id, port)
	}
	l.faulty = faulty
	l.peerLink().faulty = faulty
	return nil
}

// FailDevice silences a Fabric Element entirely (§5.10: it stops sending
// reachability messages and forwards nothing).
func (n *Network) FailDevice(id topo.NodeID) error {
	if id.Kind == topo.KindFA {
		return fmt.Errorf("core: failing Fabric Adapters is not modelled")
	}
	fe := n.fe(id)
	fe.failed = true
	for _, l := range fe.links {
		if l != nil {
			l.fail()
			l.peerLink().fail()
		}
	}
	return nil
}
