// Package netsim is the packet-level network simulator used for the
// protocol comparison of §6.3 (Fig 10) — the role htsim plays in the
// paper. It provides serialization queues with tail-drop and ECN marking,
// propagation pipes, and a k-ary fat-tree plumbing with per-flow ECMP path
// selection. Transport endpoints (TCP NewReno, DCTCP, DCQCN, MPTCP and the
// Stardust Fabric Adapter model) live in package tcp and netsim's
// stardust.go.
package netsim

import (
	"fmt"

	"stardust/internal/sim"
)

// Bps is a link rate in bits per second.
type Bps float64

// Handler consumes packets; queues, pipes and endpoints all implement it.
type Handler interface {
	Receive(p *Packet)
}

// Packet is the unit moved through the simulated network. A packet carries
// its forward route and advances itself hop by hop.
type Packet struct {
	Size  int   // bytes on the wire
	Seq   int64 // first byte carried (data) / echoed cumulative ack (ACK)
	Ack   bool
	CE    bool // congestion-experienced mark (set by queues)
	Echo  bool // ECN echo on an ACK
	Flow  any  // owning endpoint state (opaque to the network)
	route []Handler
	hop   int
}

// SetRoute installs the forward route and resets the hop cursor.
func (p *Packet) SetRoute(route []Handler) {
	p.route = route
	p.hop = 0
}

// SendOn advances the packet to its next hop. Packets that run off the end
// of their route are dropped (the route must terminate in an endpoint that
// does not call SendOn).
func (p *Packet) SendOn() {
	if p.hop >= len(p.route) {
		return
	}
	h := p.route[p.hop]
	p.hop++
	h.Receive(p)
}

// Queue is a store-and-forward output queue draining at a fixed rate, with
// tail-drop at MaxBytes and optional ECN marking above ECNThreshBytes
// (instantaneous queue, DCTCP-style).
type Queue struct {
	Name           string
	Sim            *sim.Simulator
	Rate           Bps
	MaxBytes       int
	ECNThreshBytes int // 0 disables marking

	q     []*Packet
	head  int
	bytes int
	busy  bool

	// Stats
	Drops     uint64
	Marks     uint64
	Forwarded uint64
	PeakBytes int
}

// NewQueue builds a queue bound to the simulator.
func NewQueue(s *sim.Simulator, name string, rate Bps, maxBytes int, ecnThresh int) *Queue {
	if rate <= 0 || maxBytes <= 0 {
		panic("netsim: queue needs positive rate and capacity")
	}
	return &Queue{Name: name, Sim: s, Rate: rate, MaxBytes: maxBytes, ECNThreshBytes: ecnThresh}
}

func (q *Queue) txTime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / float64(q.Rate) * float64(sim.Second))
}

// Bytes returns the current occupancy.
func (q *Queue) Bytes() int { return q.bytes }

// Receive implements Handler.
func (q *Queue) Receive(p *Packet) {
	if q.bytes+p.Size > q.MaxBytes {
		q.Drops++
		return
	}
	if q.ECNThreshBytes > 0 && q.bytes >= q.ECNThreshBytes {
		p.CE = true
		q.Marks++
	}
	q.q = append(q.q, p)
	q.bytes += p.Size
	if q.bytes > q.PeakBytes {
		q.PeakBytes = q.bytes
	}
	if !q.busy {
		q.busy = true
		q.serve()
	}
}

func (q *Queue) serve() {
	if q.head >= len(q.q) {
		q.q = q.q[:0]
		q.head = 0
		q.busy = false
		return
	}
	p := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	if q.head > 256 && q.head*2 >= len(q.q) {
		q.q = append(q.q[:0], q.q[q.head:]...)
		q.head = 0
	}
	q.Sim.After(q.txTime(p.Size), func() {
		q.bytes -= p.Size
		q.Forwarded++
		p.SendOn()
		q.serve()
	})
}

// Pipe is a pure propagation delay.
type Pipe struct {
	Sim   *sim.Simulator
	Delay sim.Time
}

// NewPipe builds a pipe.
func NewPipe(s *sim.Simulator, delay sim.Time) *Pipe { return &Pipe{Sim: s, Delay: delay} }

// Receive implements Handler.
func (p *Pipe) Receive(pkt *Packet) {
	p.Sim.After(p.Delay, pkt.SendOn)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*Packet)

// Receive implements Handler.
func (f HandlerFunc) Receive(p *Packet) { f(p) }

// Counter is a terminal handler counting packets and bytes (a debugging
// sink).
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Receive implements Handler.
func (c *Counter) Receive(p *Packet) {
	c.Packets++
	c.Bytes += uint64(p.Size)
}

func (q *Queue) String() string {
	return fmt.Sprintf("queue %s: %dB queued, %d fwd, %d drops, %d marks", q.Name, q.bytes, q.Forwarded, q.Drops, q.Marks)
}
