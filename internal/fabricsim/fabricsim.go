// Package fabricsim is the cell-level two-tier fabric simulator of §6.2
// (Fig 9): Fabric Adapters spraying fixed-size cells over a Clos of Fabric
// Elements, with per-link output queues, FCI feedback, and strict up-down
// routing.
//
// The simulator is time-slotted at "fabric cell time" granularity (the
// time to transmit one cell on a serial link, §4.2.1): every link forwards
// at most one cell per slot. Within a slot, pipeline stages execute from
// the last hop backwards, so each queue serves before it receives and a
// cell advances at most one hop per slot — the store-and-forward
// discipline whose stationary queue distribution matches the continuous
// M/D/1 model the paper validates against. The slotted structure is what
// lets the simulator cover the paper's full 256-adapter, 192-element
// configuration with enough samples to resolve 1e-7 tail probabilities.
package fabricsim

import (
	"fmt"
	"math/rand"

	"stardust/internal/sim"
	"stardust/internal/stats"
)

// Config parameterizes a run.
type Config struct {
	NumFA     int // Fabric Adapters (paper: 256)
	FAUplinks int // links from each FA into tier 1 (paper: 32)
	NumFE1    int // first-tier elements (paper: 128)
	FE1Up     int // up-links per FE1 (paper: 64); FE1Down derived
	NumFE2    int // spine elements (paper: 64)

	Utilization float64 // raw-data fabric load, fraction of link rate (0..1.2+)

	CellBytes   int     // 256
	LinkBps     float64 // 50e9
	FiberMeters float64 // per-link length (paper: 100m)

	QueueCap   int  // per-link queue capacity in cells
	FCI        bool // enable congestion indication feedback (§4.2)
	FCIThresh  int  // queue depth that marks cells
	FCIBeta    float64
	FCIRecover float64
	FCIFloor   float64

	Slots       int // measured slots
	WarmupSlots int // slots before measurement starts
	Seed        int64
}

// Fig9Config returns the §6.2 topology at the given utilization.
func Fig9Config(util float64) Config {
	return Config{
		NumFA:       256,
		FAUplinks:   32,
		NumFE1:      128,
		FE1Up:       64,
		NumFE2:      64,
		Utilization: util,
		CellBytes:   256,
		LinkBps:     50e9,
		FiberMeters: 100,
		QueueCap:    256,
		FCI:         util > 1,
		FCIThresh:   40,
		FCIBeta:     0.004,
		FCIRecover:  0.00003,
		FCIFloor:    0.5,
		Slots:       30000,
		WarmupSlots: 3000,
		Seed:        1,
	}
}

// Scaled returns a proportionally smaller topology for tests and quick
// benchmarks (factor 4 = quarter scale).
func Scaled(util float64, factor int) Config {
	c := Fig9Config(util)
	c.NumFA /= factor
	c.FAUplinks /= factor
	c.NumFE1 /= factor
	c.FE1Up /= factor
	c.NumFE2 /= factor
	c.Slots /= 2
	return c
}

// Result carries the measured distributions.
type Result struct {
	Cfg Config

	SlotTime sim.Time // one fabric cell time
	// FixedLatency is the non-queueing traversal time added to the slotted
	// waits: fiber propagation over the four links of an up-down path.
	FixedLatency sim.Time

	Latency   *stats.Histogram // cell fabric-traversal latency (us)
	QueueHist *stats.Histogram // last-stage link queue depth (cells), sampled per slot

	CellsDelivered uint64
	CellsDropped   uint64
	CellsOffered   uint64
	MeanQueue      float64
	EffectiveUtil  float64 // delivered load on last-stage links
	ThrottleMean   float64 // mean FCI throttle at the end (1 = none)
}

type cellRec struct {
	born int32
	dst  uint16
}

// queue is a fixed-capacity ring buffer; all queues of a stage share one
// backing slab so the hot loop never allocates.
type queue struct {
	buf  []cellRec
	head int
	n    int
}

func newQueues(count, capacity int) []queue {
	slab := make([]cellRec, count*capacity)
	qs := make([]queue, count)
	for i := range qs {
		qs[i].buf = slab[i*capacity : (i+1)*capacity]
	}
	return qs
}

func (q *queue) len() int { return q.n }

// push stores c; the caller is responsible for checking capacity first.
func (q *queue) push(c cellRec) {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = c
	q.n++
}

func (q *queue) pop() (cellRec, bool) {
	if q.n == 0 {
		return cellRec{}, false
	}
	c := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return c, true
}

type fabric struct {
	cfg     Config
	rng     *rand.Rand
	fe1Down int
	perFE2  int // parallel links per (FE1, FE2) pair

	// attachments[i] lists (fe1, downLink) for FA i's uplinks; linkOf
	// resolves (fe1, dstFA) to the fe1's down-link index (-1 if the FA is
	// not served by that element).
	attachFE1  [][]int32
	attachLink [][]int32
	linkOf     []int32 // [fe1*NumFA + fa]

	faUp     []queue // FA uplink serializers
	fe1Up    []queue // FE1 -> FE2
	fe2Down  []queue // FE2 -> FE1, one per pair group
	fe1DownQ []queue // FE1 -> FA (last stage)

	faSpray  []int
	fe1Spray []int
	fe2Spray []int

	throttle []float64
	acc      []float64
}

func newFabric(cfg Config) *fabric {
	f := &fabric{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		fe1Down: cfg.NumFA * cfg.FAUplinks / cfg.NumFE1,
		perFE2:  cfg.FE1Up / cfg.NumFE2,
	}
	f.attachFE1 = make([][]int32, cfg.NumFA)
	f.attachLink = make([][]int32, cfg.NumFA)
	f.linkOf = make([]int32, cfg.NumFE1*cfg.NumFA)
	for i := range f.linkOf {
		f.linkOf[i] = -1
	}
	cnt := make([]int32, cfg.NumFE1)
	for i := 0; i < cfg.NumFA; i++ {
		for j := 0; j < cfg.FAUplinks; j++ {
			fe1 := int32((i*cfg.FAUplinks + j) % cfg.NumFE1)
			f.attachFE1[i] = append(f.attachFE1[i], fe1)
			f.attachLink[i] = append(f.attachLink[i], cnt[fe1])
			f.linkOf[int(fe1)*cfg.NumFA+i] = cnt[fe1]
			cnt[fe1]++
		}
	}
	f.faUp = newQueues(cfg.NumFA*cfg.FAUplinks, cfg.QueueCap)
	f.fe1Up = newQueues(cfg.NumFE1*cfg.FE1Up, cfg.QueueCap)
	f.fe2Down = newQueues(cfg.NumFE2*cfg.NumFE1, cfg.QueueCap*f.perFE2)
	f.fe1DownQ = newQueues(cfg.NumFE1*f.fe1Down, cfg.QueueCap)
	f.faSpray = make([]int, cfg.NumFA)
	f.fe1Spray = make([]int, cfg.NumFE1)
	f.fe2Spray = make([]int, cfg.NumFE2)
	f.throttle = make([]float64, cfg.NumFA)
	for i := range f.throttle {
		f.throttle[i] = 1
	}
	f.acc = make([]float64, cfg.NumFA)
	return f
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.NumFA < 2 || cfg.FAUplinks < 1 || cfg.NumFE1 < 1 || cfg.NumFE2 < 1 || cfg.FE1Up < 1 {
		return nil, fmt.Errorf("fabricsim: degenerate topology")
	}
	if cfg.NumFA*cfg.FAUplinks%cfg.NumFE1 != 0 || cfg.NumFE1*cfg.FE1Up%cfg.NumFE2 != 0 {
		return nil, fmt.Errorf("fabricsim: boundary capacities must divide evenly")
	}
	if cfg.FE1Up%cfg.NumFE2 != 0 {
		return nil, fmt.Errorf("fabricsim: FE1Up must be a multiple of NumFE2")
	}
	fb := newFabric(cfg)

	slotTime := sim.Time(float64(cfg.CellBytes*8) / cfg.LinkBps * float64(sim.Second))
	prop := sim.Time(cfg.FiberMeters * 5 * float64(sim.Nanosecond)) // 5 ns/m
	fixed := 4 * prop

	res := &Result{
		Cfg:          cfg,
		SlotTime:     slotTime,
		FixedLatency: fixed,
		Latency:      stats.NewHistogram(0, 50, 500), // microseconds
		QueueHist:    stats.NewHistogram(0, float64(cfg.QueueCap), cfg.QueueCap),
	}

	genRate := cfg.Utilization * float64(cfg.FAUplinks)
	totalSlots := cfg.WarmupSlots + cfg.Slots
	lastStageDeliveries := uint64(0)

	for slot := 0; slot < totalSlots; slot++ {
		measuring := slot >= cfg.WarmupSlots

		// Stage 5 (runs first): last-stage links deliver to FAs.
		for qi := range fb.fe1DownQ {
			c, ok := fb.fe1DownQ[qi].pop()
			if !ok {
				continue
			}
			if measuring {
				waited := slot - int(c.born)
				lat := sim.Time(waited)*slotTime + fixed
				res.Latency.Add(lat.Microseconds())
				res.CellsDelivered++
				lastStageDeliveries++
			}
		}

		// Stage 4: FE2 down-links move cells into last-stage queues.
		for s := 0; s < cfg.NumFE2; s++ {
			base := s * cfg.NumFE1
			for f := 0; f < cfg.NumFE1; f++ {
				for k := 0; k < fb.perFE2; k++ {
					c, ok := fb.fe2Down[base+f].pop()
					if !ok {
						break
					}
					link := fb.linkOf[f*cfg.NumFA+int(c.dst)]
					if link < 0 {
						panic("fabricsim: cell routed to non-serving FE1")
					}
					q := &fb.fe1DownQ[f*fb.fe1Down+int(link)]
					depth := q.len()
					if depth >= cfg.QueueCap {
						if measuring {
							res.CellsDropped++
						}
						continue
					}
					if cfg.FCI && depth >= cfg.FCIThresh {
						fb.throttle[c.dst] *= 1 - cfg.FCIBeta
						if fb.throttle[c.dst] < cfg.FCIFloor {
							fb.throttle[c.dst] = cfg.FCIFloor
						}
					}
					q.push(c)
				}
			}
		}

		// Stage 3: FE1 up-links move cells to spines; the spine picks one
		// of the destination's serving FE1s round-robin.
		for f := 0; f < cfg.NumFE1; f++ {
			for u := 0; u < cfg.FE1Up; u++ {
				c, ok := fb.fe1Up[f*cfg.FE1Up+u].pop()
				if !ok {
					continue
				}
				s := u % cfg.NumFE2
				at := fb.attachFE1[c.dst]
				pick := at[fb.fe2Spray[s]%len(at)]
				fb.fe2Spray[s]++
				q := &fb.fe2Down[s*cfg.NumFE1+int(pick)]
				if q.len() >= cfg.QueueCap*fb.perFE2 {
					if measuring {
						res.CellsDropped++
					}
					continue
				}
				q.push(c)
			}
		}

		// Stage 2: FA uplinks hand cells to tier 1, sprayed over up-links.
		for i := 0; i < cfg.NumFA; i++ {
			for j := 0; j < cfg.FAUplinks; j++ {
				c, ok := fb.faUp[i*cfg.FAUplinks+j].pop()
				if !ok {
					continue
				}
				f := int(fb.attachFE1[i][j])
				up := fb.fe1Spray[f]
				fb.fe1Spray[f] = (up + 1) % cfg.FE1Up
				q := &fb.fe1Up[f*cfg.FE1Up+up]
				if q.len() >= cfg.QueueCap {
					if measuring {
						res.CellsDropped++
					}
					continue
				}
				q.push(c)
			}
		}

		// Stage 1: credit-paced generation at the FAs (FCI throttles per
		// destination).
		for i := 0; i < cfg.NumFA; i++ {
			fb.acc[i] += genRate
			for fb.acc[i] >= 1 {
				fb.acc[i]--
				dst := fb.rng.Intn(cfg.NumFA - 1)
				if dst >= i {
					dst++
				}
				if cfg.FCI && fb.throttle[dst] < 1 && fb.rng.Float64() > fb.throttle[dst] {
					continue // credit withheld at the source
				}
				if measuring {
					res.CellsOffered++
				}
				up := fb.faSpray[i]
				fb.faSpray[i] = (up + 1) % cfg.FAUplinks
				q := &fb.faUp[i*cfg.FAUplinks+up]
				if q.len() >= cfg.QueueCap {
					if measuring {
						res.CellsDropped++
					}
					continue
				}
				q.push(cellRec{born: int32(slot), dst: uint16(dst)})
			}
		}

		// Sample last-stage queue depths (Fig 9 right).
		if measuring {
			for qi := range fb.fe1DownQ {
				res.QueueHist.Add(float64(fb.fe1DownQ[qi].len()))
			}
		}

		// FCI recovery.
		if cfg.FCI {
			for d := range fb.throttle {
				fb.throttle[d] += cfg.FCIRecover
				if fb.throttle[d] > 1 {
					fb.throttle[d] = 1
				}
			}
		}
	}

	res.MeanQueue = res.QueueHist.Mean()
	lastLinks := cfg.NumFE1 * fb.fe1Down
	res.EffectiveUtil = float64(lastStageDeliveries) / float64(cfg.Slots*lastLinks)
	var tsum float64
	for _, t := range fb.throttle {
		tsum += t
	}
	res.ThrottleMean = tsum / float64(len(fb.throttle))
	return res, nil
}
