package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketMixesWellFormed(t *testing.T) {
	for _, name := range Traces {
		sizes, weights := PacketMix(name)
		if len(sizes) != len(weights) || len(sizes) == 0 {
			t.Fatalf("%s: malformed mix", name)
		}
		var sum float64
		for i, w := range weights {
			if w <= 0 || sizes[i] < 64 || sizes[i] > 1500 {
				t.Fatalf("%s: bad entry %d", name, i)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: weights sum to %v", name, sum)
		}
	}
}

func TestTraceCharacter(t *testing.T) {
	// Hadoop must skew large, Web small (the property Fig 8b relies on).
	hadoop := PacketSampler(TraceHadoop).Mean()
	web := PacketSampler(TraceWeb).Mean()
	db := PacketSampler(TraceDB).Mean()
	if hadoop < 1000 {
		t.Fatalf("hadoop mean %v too small", hadoop)
	}
	if web > 600 {
		t.Fatalf("web mean %v too large", web)
	}
	if db < web || db > hadoop {
		t.Fatalf("db mean %v should sit between web and hadoop", db)
	}
}

func TestWebFlowSizes(t *testing.T) {
	d := WebFlowSizes()
	rng := rand.New(rand.NewSource(1))
	small, large := 0, 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := d.Sample(rng)
		if v < 300 || v > 1e7 {
			t.Fatalf("flow size %v out of range", v)
		}
		if v <= 10e3 {
			small++
		}
		if v >= 1e6 {
			large++
		}
	}
	if frac := float64(small) / draws; frac < 0.55 || frac > 0.75 {
		t.Fatalf("P(<=10KB) = %v, want ~0.65", frac)
	}
	if frac := float64(large) / draws; frac > 0.05 {
		t.Fatalf("P(>=1MB) = %v, want <= 0.05 (heavy tail, not heavy body)", frac)
	}
}

func TestNewIncast(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inc := NewIncast(rng, 100, 10, 450_000)
	if len(inc.Backends) != 10 {
		t.Fatalf("backends = %d", len(inc.Backends))
	}
	seen := map[int]bool{inc.Frontend: true}
	for _, b := range inc.Backends {
		if seen[b] {
			t.Fatalf("duplicate node %d", b)
		}
		seen[b] = true
	}
	// Clamp: n >= nodes.
	inc = NewIncast(rng, 5, 10, 1)
	if len(inc.Backends) != 4 {
		t.Fatalf("clamped backends = %d", len(inc.Backends))
	}
}

func TestFlowArrivalsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	next := FlowArrivals(rng, 1000) // 1000 flows/s -> mean 1ms
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += next()
	}
	mean := sum / n
	if mean < 0.0009 || mean > 0.0011 {
		t.Fatalf("mean inter-arrival %v, want ~0.001", mean)
	}
}

// Property: SplitFlow conserves bytes, respects the MTU, and only the last
// packet is short.
func TestPropertySplitFlow(t *testing.T) {
	f := func(bytesRaw uint32, mtuRaw uint16) bool {
		bytes := int64(bytesRaw % 10_000_000)
		mtu := int(mtuRaw%9000) + 1
		pkts := SplitFlow(bytes, mtu)
		if bytes == 0 {
			return len(pkts) == 0
		}
		var sum int64
		for i, p := range pkts {
			if p <= 0 || p > mtu {
				return false
			}
			if i < len(pkts)-1 && p != mtu {
				return false
			}
			sum += int64(p)
		}
		return sum == bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
