package scenarios

import (
	"fmt"
	"strings"

	"stardust/internal/engine"
	"stardust/internal/experiments"
)

func htsimConfig(c engine.Context) experiments.HtsimConfig {
	cfg := experiments.DefaultHtsim()
	cfg.K = c.Params.Int("k", cfg.K)
	cfg.Duration = msTime(c.Params.Int("dur_ms", 20))
	cfg.Warmup = msTime(c.Params.Int("warmup_ms", 10))
	cfg.MSS = c.Params.Int("mss", cfg.MSS)
	cfg.Subflows = c.Params.Int("subflows", cfg.Subflows)
	cfg.StardustCredit = c.Params.Int64("credit", 0)
	cfg.StardustSpeedup = c.Params.Float("speedup", 0)
	cfg.FullFabric = c.Params.Bool("fabric", false)
	if cfg.FullFabric {
		// Every fabric=true run goes through the sharded transport so the
		// -shards flag scales it across cores; the result stream is
		// byte-identical at any shard count for the same seed.
		cfg.Shards = effectiveShards(c)
	}
	cfg.Seed = c.Seed
	return cfg
}

// protoList resolves the "proto" parameter ("all" or a comma list) into
// the Fig 10 contenders in the paper's legend order.
func protoList(p engine.Params) []experiments.Protocol {
	sel := p.Str("proto", "all")
	if sel == "all" {
		return experiments.Protocols
	}
	var out []experiments.Protocol
	for _, s := range splitList(sel) {
		out = append(out, experiments.Protocol(s))
	}
	return out
}

// protoVariants expands one instance per selected protocol.
func protoVariants(p engine.Params) []engine.Params {
	var out []engine.Params
	for _, pr := range protoList(p) {
		out = append(out, p.With("proto", string(pr)))
	}
	return out
}

// Shared parameter docs for the htsim family (the htsimConfig knobs).
var htsimDocs = map[string]string{
	"k":         "fat-tree K (12 = the paper's 432 hosts)",
	"dur_ms":    "measurement window in ms, after warmup",
	"warmup_ms": "warmup before measurement starts, in ms",
	"proto":     "protocols to run: all, or a comma list of MPTCP,DCTCP,DCQCN,Stardust",
	"fabric":    "run Stardust over the per-link cell fabric instead of the fluid trunk; honors -shards (sharded transport, byte-identical at any shard count)",
}

// withDocs merges extra entries over a copy of base.
func withDocs(base map[string]string, extra map[string]string) map[string]string {
	out := make(map[string]string, len(base)+len(extra))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// pickDocs selects keys from htsimDocs and merges extra entries, for
// scenarios that accept only a subset of the shared htsim knobs.
func pickDocs(keys []string, extra map[string]string) map[string]string {
	out := make(map[string]string, len(keys)+len(extra))
	for _, k := range keys {
		out[k] = htsimDocs[k]
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

func init() {
	engine.Register(engine.Scenario{
		Name: "htsim/permutation",
		Desc: "Fig 10(a) permutation throughput on a K-ary fat-tree, per protocol",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "20", "warmup_ms": "10", "proto": "all", "fabric": "false",
		},
		Docs:     htsimDocs,
		Variants: protoVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			proto := experiments.Protocol(c.Params.Str("proto", string(experiments.ProtoStardust)))
			r, err := experiments.Permutation(cfg, proto)
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			n := len(r.Gbps)
			res.Add("mean_util_pct", r.MeanUtilPct, "%")
			res.Add("p5_gbps", r.Gbps[n/20], "Gbps")
			res.Add("median_gbps", r.Gbps[n/2], "Gbps")
			res.Add("min_gbps", r.Gbps[0], "Gbps")
			res.Add("max_gbps", r.Gbps[n-1], "Gbps")
			res.Add("fabric_drops", float64(r.FabricDrops), "")
			var b strings.Builder
			experiments.WritePermutation(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "htsim/fct",
		Desc: "Fig 10(b) Web-workload flow completion times under background load, per protocol",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "20", "warmup_ms": "10", "proto": "all", "flows": "100", "fabric": "false",
		},
		Docs: withDocs(htsimDocs, map[string]string{
			"flows": "Web-workload flows to measure on the clean pair",
		}),
		Variants: protoVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			proto := experiments.Protocol(c.Params.Str("proto", string(experiments.ProtoStardust)))
			r, err := experiments.FCT(cfg, proto, c.Params.Int("flows", 100))
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("flows", float64(r.Ms.N()), "")
			res.Add("p50_ms", r.Ms.Quantile(0.5), "ms")
			res.Add("p90_ms", r.Ms.Quantile(0.9), "ms")
			res.Add("p99_ms", r.Ms.Quantile(0.99), "ms")
			res.Add("max_ms", r.Ms.Max(), "ms")
			var b strings.Builder
			experiments.WriteFCT(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "htsim/incast",
		Desc: "Fig 10(c) incast completion (first/last backend), per protocol and fan-in",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "20", "warmup_ms": "10", "proto": "all",
			"n": "4,8,16,32", "response_bytes": "450000", "fabric": "false",
		},
		Docs: withDocs(htsimDocs, map[string]string{
			"n":              "comma list of backend counts (one instance per fan-in)",
			"response_bytes": "bytes each backend sends to the frontend",
		}),
		Variants: func(p engine.Params) []engine.Params {
			var out []engine.Params
			for _, pr := range protoList(p) {
				for _, n := range p.Ints("n", []int{8}) {
					out = append(out, p.Merge(engine.Params{
						"proto": string(pr), "n": fmt.Sprint(n),
					}))
				}
			}
			return out
		},
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			proto := experiments.Protocol(c.Params.Str("proto", string(experiments.ProtoStardust)))
			backends := c.Params.Int("n", 8)
			r, err := experiments.Incast(cfg, proto, backends, c.Params.Int64("response_bytes", 450_000))
			if err != nil && r == nil {
				return engine.Result{}, err
			}
			// A partial incast (some backends unfinished inside the budget)
			// is still a Fig 10(c) data point; the completed count is
			// reported alongside.
			var res engine.Result
			res.Add("backends_done", float64(r.Backends), "")
			res.Add("first_ms", r.FirstMs, "ms")
			res.Add("last_ms", r.LastMs, "ms")
			if r.FirstMs > 0 {
				res.Add("spread", r.LastMs/r.FirstMs, "x")
			}
			var b strings.Builder
			experiments.WriteIncast(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})
}
