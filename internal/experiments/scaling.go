package experiments

import (
	"fmt"
	"io"

	"stardust/internal/analytic"
	"stardust/internal/device"
	"stardust/internal/fabricsim"
	"stardust/internal/queueing"
	"stardust/internal/topo"
	"stardust/internal/workload"
)

// WriteFig2 prints the three panels of Fig 2: end-host scalability vs
// tiers, devices vs hosts, serial links vs hosts, for the four 12.8 Tbps
// device configurations.
func WriteFig2(w io.Writer) {
	fmt.Fprintln(w, "== Fig 2(a): maximum end hosts vs tiers ==")
	fmt.Fprintf(w, "%-22s", "device")
	for n := 1; n <= 4; n++ {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%d-tier", n))
	}
	fmt.Fprintln(w)
	for _, dev := range topo.Fig2Devices {
		fmt.Fprintf(w, "%-22s", dev.Name)
		for n := 1; n <= 4; n++ {
			fmt.Fprintf(w, " %14.3g", topo.MaxHosts(dev, n))
		}
		fmt.Fprintln(w)
	}
	hostCounts := []int{100e3, 200e3, 400e3, 600e3, 800e3, 1000e3}
	fmt.Fprintln(w, "\n== Fig 2(b): network devices for a given host count ==")
	fmt.Fprintf(w, "%-22s", "device")
	for _, h := range hostCounts {
		fmt.Fprintf(w, " %9.1gM", float64(h)/1e6)
	}
	fmt.Fprintln(w)
	for _, dev := range topo.Fig2Devices {
		fmt.Fprintf(w, "%-22s", dev.Name)
		for _, h := range hostCounts {
			fmt.Fprintf(w, " %10d", topo.Plan(dev, h).Devices)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n== Fig 2(c): serial links for a given host count ==")
	for _, dev := range topo.Fig2Devices {
		fmt.Fprintf(w, "%-22s", dev.Name)
		for _, h := range hostCounts {
			fmt.Fprintf(w, " %10d", topo.Plan(dev, h).SerialLinks)
		}
		fmt.Fprintln(w)
	}
}

// WriteTable2 prints the element-count table for the given parameters.
func WriteTable2(w io.Writer, p topo.Params) {
	fmt.Fprintf(w, "== Table 2 (k=%d, t=%d, l=%d) ==\n", p.K, p.T, p.L)
	fmt.Fprintf(w, "%5s %12s %14s %14s %14s %12s\n",
		"tiers", "max ToRs", "max switches", "switches/ToR", "link bundles", "links/ToR")
	for n := 1; n <= 4; n++ {
		ec := topo.Table2(p, n)
		fmt.Fprintf(w, "%5d %12.0f %14.1f %14.2f %14.0f %12.1f\n",
			n, ec.MaxToRs, ec.MaxSwitches, ec.SwitchesPerToR, ec.LinkBundles, ec.LinksPerToR)
	}
}

// WriteFig3 prints the required-parallelism curves.
func WriteFig3(w io.Writer, sizes []int) {
	if sizes == nil {
		sizes = []int{64, 128, 256, 257, 512, 513, 768, 1024, 1025, 1500, 2048, 2500}
	}
	m := analytic.DefaultSwitch
	fmt.Fprintln(w, "== Fig 3: required parallel processing (12.8 Tbps, 256B bus, 1 GHz) ==")
	fmt.Fprintf(w, "%8s %12s %12s\n", "pkt[B]", "standard", "stardust")
	for _, r := range analytic.Fig3(m, sizes) {
		fmt.Fprintf(w, "%8d %12.2f %12.2f\n", r.PacketBytes, r.Standard, r.Stardust)
	}
}

// WriteFig8a prints the packing-throughput curves at the given clock.
func WriteFig8a(w io.Writer, clockHz float64, sizes []int) {
	if sizes == nil {
		sizes = []int{64, 65, 97, 129, 192, 250, 256, 512, 513, 750, 1024, 1250, 1518}
	}
	fmt.Fprintf(w, "== Fig 8(a): throughput at %.0f MHz, 4x10GE ==\n", clockHz/1e6)
	fmt.Fprintf(w, "%8s", "pkt[B]")
	for _, d := range device.AllDesigns {
		fmt.Fprintf(w, " %24s", d)
	}
	fmt.Fprintln(w)
	for _, row := range device.Fig8a(clockHz, sizes) {
		fmt.Fprintf(w, "%8d", row.PacketBytes)
		for _, d := range device.AllDesigns {
			fmt.Fprintf(w, " %23.2fG", row.Gbps[d])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig8b prints the trace-mix throughput comparison.
func WriteFig8b(w io.Writer, clockHz float64) {
	fmt.Fprintf(w, "== Fig 8(b): trace throughput at %.0f MHz ==\n", clockHz/1e6)
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "trace", "Switch", "Cell", "Stardust")
	for _, tr := range workload.Traces {
		sizes, weights := workload.PacketMix(tr)
		ref := device.NetFPGA(device.Reference, clockHz).MixThroughput(sizes, weights)
		cel := device.NetFPGA(device.Cells, clockHz).MixThroughput(sizes, weights)
		pak := device.NetFPGA(device.Packed, clockHz).MixThroughput(sizes, weights)
		fmt.Fprintf(w, "%-8s %9.1f%% %9.1f%% %9.1f%%\n", tr, 100*ref, 100*cel, 100*pak)
	}
}

// WriteFig9 runs the 2-tier fabric simulation at the paper's utilizations
// and prints latency and queue-distribution summaries with the M/D/1
// reference.
func WriteFig9(w io.Writer, scale int, utils []float64) error {
	if utils == nil {
		utils = []float64{0.66, 0.8, 0.92, 0.95, 1.2}
	}
	fmt.Fprintf(w, "== Fig 9: 2-tier fabric (scale 1/%d of 256 FAs x 32 links) ==\n", scale)
	fmt.Fprintf(w, "%6s %9s %9s %9s %9s %10s %9s %11s\n",
		"util", "lat p50", "lat p99", "lat p999", "maxQ p99", "mean queue", "eff util", "M/D/1 meanQ")
	for _, u := range utils {
		var cfg fabricsim.Config
		if scale <= 1 {
			cfg = fabricsim.Fig9Config(u)
		} else {
			cfg = fabricsim.Scaled(u, scale)
		}
		res, err := fabricsim.Run(cfg)
		if err != nil {
			return err
		}
		md1Mean := "-"
		if u < 1 {
			m, _ := queueing.NewMD1(u)
			md1Mean = fmt.Sprintf("%.2f", m.MeanQueue())
		}
		fmt.Fprintf(w, "%6.2f %8.2fu %8.2fu %8.2fu %9.0f %10.2f %8.1f%% %11s\n",
			u,
			res.Latency.Quantile(0.5), res.Latency.Quantile(0.99), res.Latency.Quantile(0.999),
			res.QueueHist.Quantile(0.99), res.MeanQueue, 100*res.EffectiveUtil, md1Mean)
	}
	return nil
}

// WriteFig10d prints the silicon area table.
func WriteFig10d(w io.Writer) {
	r := analytic.PaperAreaRatios
	fmt.Fprintln(w, "== Fig 10(d): Fabric Element (B) vs standard switch (A) ==")
	fmt.Fprintf(w, "%-22s %8s\n", "block", "B/A")
	fmt.Fprintf(w, "%-22s %7.0f%%\n", "Header Processing", 100*r.HeaderProcessing)
	fmt.Fprintf(w, "%-22s %7.0f%%\n", "Network Interface", 100*r.NetworkInterface)
	fmt.Fprintf(w, "%-22s %7.0f%%\n", "Other logic", 100*r.OtherLogic)
	fmt.Fprintf(w, "%-22s %7.1f%%\n", "I/O", 100*r.IO)
	fmt.Fprintf(w, "%-22s %7.1f%%\n", "Relative area/Tbps", 100*r.RelAreaPerTbps)
	fmt.Fprintf(w, "%-22s %7.1f%%\n", "Relative power/Tbps", 100*r.RelPowerPerTbps)
	model := analytic.DefaultAreaBreakdown.RelativeAreaPerTbps(r)
	fmt.Fprintf(w, "(compositional die model reproduces area/Tbps at %.1f%%)\n", 100*model)
}

// WriteFig11 prints the relative cost and power curves.
func WriteFig11(w io.Writer, hostCounts []int) error {
	if hostCounts == nil {
		hostCounts = []int{1000, 4000, 10000, 40000, 100000, 400000, 1000000}
	}
	fmt.Fprintln(w, "== Fig 11(a): Stardust DCN cost relative to fat-tree [%] ==")
	fmt.Fprintf(w, "%10s", "hosts")
	for _, d := range analytic.Fig11aDevices {
		fmt.Fprintf(w, " %14s", d.Name)
	}
	fmt.Fprintln(w)
	rows, err := analytic.Fig11a(hostCounts)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%10d", row.Hosts)
		for _, d := range analytic.Fig11aDevices {
			fmt.Fprintf(w, " %13.1f%%", row.Relative[d.Name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n== Fig 11(b): Stardust DCN power relative to fat-tree [%] ==")
	fmt.Fprintf(w, "%10s", "hosts")
	for _, d := range topo.Fig2Devices {
		fmt.Fprintf(w, " %18s", d.Name)
	}
	fmt.Fprintln(w)
	for _, row := range analytic.Fig11b(hostCounts) {
		fmt.Fprintf(w, "%10d", row.Hosts)
		for _, d := range topo.Fig2Devices {
			fmt.Fprintf(w, " %17.1f%%", row.Relative[d.Name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(fabric-only power saving at 10K hosts vs %s: %.0f%%)\n",
		topo.FT400Gx32.Name, analytic.FabricPowerSaving(topo.FT400Gx32, 10000))
	return nil
}

// WriteAppendixE prints the resilience timing model.
func WriteAppendixE(w io.Writer) {
	p := analytic.DefaultResilience
	fmt.Fprintln(w, "== Appendix E: reachability-driven failure recovery ==")
	fmt.Fprintf(w, "message interval t'      : %v us\n", p.MessageInterval().Microseconds())
	fmt.Fprintf(w, "messages per table M     : %d\n", p.MessagesPerTable())
	fmt.Fprintf(w, "propagation (no fiber)   : %v us (§5.9: 210us)\n", p.PropagationTime().Microseconds())
	fmt.Fprintf(w, "recovery time t*th       : %.2f us (paper: 652us)\n", p.RecoveryTime().Microseconds())
	fmt.Fprintf(w, "bandwidth overhead       : %.4f%% (paper: 0.04%%)\n", 100*p.BandwidthOverhead())
}
