package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=10: {5}; le=100: {50}; +Inf: {500, 5000}.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 || s.Sum != 5556.5 {
		t.Fatalf("count %d sum %g", s.Count, s.Sum)
	}
	// Snapshot is a copy: further observations must not leak into it.
	h.Observe(1)
	if s.Counts[0] != 2 {
		t.Fatal("snapshot aliased live counts")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(2, 4, 4)
	want := []float64{2, 8, 32, 128}
	if len(b) != len(want) {
		t.Fatalf("len %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestWritePromCumulative(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var sb strings.Builder
	WriteProm(&sb, "x_seconds", "test family", h.Snapshot())
	out := sb.String()
	for _, line := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="1"} 1`,
		`x_seconds_bucket{le="10"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_sum 55.5",
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestBufferCap(t *testing.T) {
	b := NewBuffer(10)
	if n, err := b.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("write: %d, %v", n, err)
	}
	if _, err := b.Write([]byte("12345")); err != ErrStreamFull {
		t.Fatalf("over-cap write: %v", err)
	}
	if !b.Truncated() || b.Len() != 8 {
		t.Fatalf("truncated=%v len=%d", b.Truncated(), b.Len())
	}
	// Bytes is a copy.
	got := b.Bytes()
	got[0] = 'X'
	if b.Bytes()[0] != '1' {
		t.Fatal("Bytes aliased the buffer")
	}
	// Default cap is applied.
	if d := NewBuffer(0); d.Truncated() {
		t.Fatal("fresh default buffer truncated")
	}
}
