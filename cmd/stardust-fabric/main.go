// Command stardust-fabric regenerates Fig 9: latency and queue-size
// distributions of the two-tier cell fabric at several utilizations, with
// the M/D/1 analytical reference. Each utilization is an independent
// scenario instance, so -workers=N runs the sweep in parallel.
package main

import (
	"flag"
	"fmt"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	scale := flag.Int("scale", 4, "scale divisor of the 256-FA topology (1 = paper scale)")
	util := flag.Float64("util", 0, "run a single utilization instead of the paper's set")
	dist := flag.Bool("dist", false, "dump the full latency/queue distributions (TSV)")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	p := engine.Params{
		"scale": fmt.Sprint(*scale),
		"dist":  fmt.Sprint(*dist),
	}
	if *util > 0 {
		p["utils"] = fmt.Sprint(*util)
	}
	engine.Main(eng, []engine.Job{{Scenario: "fabric/fig9", Params: p}})
}
