// Quickstart: build a small Stardust network (4 Fabric Adapters over a
// 2-tier fabric of Fabric Elements), let the reachability protocol
// converge, push a burst of traffic through the scheduled fabric, and
// inspect the end-to-end behaviour.
package main

import (
	"fmt"
	"log"

	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

func main() {
	// A 2-tier Clos: 8 adapters x 4 uplinks, 4 first-tier elements, 2 spines.
	clos, err := topo.NewClos2(8, 4, 4, 8, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	// Two 100G host ports per adapter against 4x50G uplinks: no ingress
	// over-subscription into the fabric (§3.1).
	cfg.HostPortsPerFA = 2
	net, err := core.New(cfg, clos)
	if err != nil {
		log.Fatal(err)
	}

	// The fabric self-constructs its reachability tables in hardware; no
	// routing protocol, no SDN controller (§5.8).
	if !net.WarmUp(5 * sim.Millisecond) {
		log.Fatal("fabric did not converge")
	}
	fmt.Println("reachability converged: every adapter sees every other adapter")

	// Send a burst of mixed-size packets from FA0 to ports on FA5.
	var delivered int
	var totalLat sim.Time
	net.OnDeliver = func(p *core.Packet) {
		delivered++
		totalLat += p.Latency()
	}
	sizes := []int{64, 200, 576, 1500, 9000}
	const count = 200
	for i := 0; i < count; i++ {
		size := sizes[i%len(sizes)]
		if ok, _ := net.Inject(0, uint8(i%2), 5, uint8(i%2), 0, size); !ok {
			log.Fatalf("ingress dropped packet %d", i)
		}
	}
	net.Run(net.Sim.Now() + 2*sim.Millisecond)

	fmt.Printf("delivered %d/%d packets\n", delivered, count)
	fmt.Printf("mean end-to-end latency: %.2f us (credit round trip + cell fabric)\n",
		(totalLat / sim.Time(delivered)).Microseconds())
	fmt.Printf("cells sent by FA0: %d (packet packing on: multiple small packets share cells)\n",
		net.FAs[0].CellsSent)
	for _, fe := range net.FEs {
		if fe.Dropped != 0 {
			log.Fatalf("fabric dropped cells at %v", fe.ID)
		}
	}
	fmt.Println("fabric drops: 0 (lossless scheduled fabric)")
}
