package cell

import "fmt"

// Fragmenter chops credit-worth batches of packets into cells (§3.4).
//
// With packing enabled the whole batch is treated as one byte stream: a
// cell may carry multiple packets or fragments of several packets, and only
// the final cell of a batch can be shorter than the maximum payload. With
// packing disabled every packet starts on a fresh cell sequence and its
// final cell is short (variable-size cells, as in pre-packing Fabric
// Adapters such as Arad, §6.1.2) — the waste is the per-cell header and
// the partially-filled data-path beats quantified in Fig 8(a)'s
// "Switch - Cells" curve.
type Fragmenter struct {
	maxPayload int  // cell payload capacity in bytes (cell size - header)
	packing    bool // pack multiple packets per cell within a batch
	seq        uint16
}

// NewFragmenter returns a fragmenter producing cells with the given total
// cell size (header included).
func NewFragmenter(cellSize int, packing bool) *Fragmenter {
	if cellSize <= HeaderSize {
		panic(fmt.Sprintf("cell: cell size %d does not fit a header", cellSize))
	}
	if cellSize > HeaderSize+256 {
		panic(fmt.Sprintf("cell: payload %d exceeds the 256B header limit", cellSize-HeaderSize))
	}
	return &Fragmenter{maxPayload: cellSize - HeaderSize, packing: packing}
}

// MaxPayload returns the per-cell payload capacity in bytes.
func (f *Fragmenter) MaxPayload() int { return f.maxPayload }

// StreamBytes returns the number of stream bytes (framing included) a batch
// of packets occupies.
func StreamBytes(batch []PacketRef) int {
	total := 0
	for _, p := range batch {
		total += p.Size + FrameOverhead
	}
	return total
}

// Fragment chops one credit batch into cells addressed to dst. The batch is
// a dequeue of whole packets from a single VOQ (packing is feasible only
// within the same VOQ, §3.4). Returns the cells in stream order.
func (f *Fragmenter) Fragment(src, dst uint16, tc uint8, batch []PacketRef) []*Cell {
	if len(batch) == 0 {
		return nil
	}
	var cells []*Cell
	var cur *Cell
	open := func() *Cell {
		c := &Cell{Header: Header{Src: src, Dst: dst, TC: tc & 0x0f, Seq: f.seq}}
		f.seq++
		cells = append(cells, c)
		return c
	}
	room := func() int {
		if cur == nil {
			return 0
		}
		return f.maxPayload - cur.PayloadSize
	}
	for _, p := range batch {
		if !f.packing && cur != nil {
			// Each packet starts a fresh cell; the open cell closes short
			// (variable cell size).
			cur = nil
		}
		remaining := p.Size + FrameOverhead // framing travels with byte 0
		offset := 0
		first := true
		for remaining > 0 {
			if room() == 0 {
				cur = open()
			}
			n := remaining
			if n > room() {
				n = room()
			}
			seg := Segment{
				Packet: p,
				Offset: offset,
				Len:    n,
				First:  first,
				Last:   remaining == n,
			}
			cur.Segments = append(cur.Segments, seg)
			cur.PayloadSize += n
			offset += n
			remaining -= n
			first = false
			if cur.PayloadSize == f.maxPayload {
				cur = nil
			}
		}
	}
	// The credit-worth tail may be shorter (§5.3); close it.
	for _, c := range cells {
		c.Header.SetPayloadBytes(c.PayloadSize)
	}
	return cells
}

// Seq returns the next sequence number the fragmenter will assign; it is
// the reassembly cursor position expected at the peer.
func (f *Fragmenter) Seq() uint16 { return f.seq }

// CellCount returns how many cells a batch will produce without producing
// them — used for fast accounting in the slotted simulator.
func (f *Fragmenter) CellCount(batch []PacketRef) int {
	if len(batch) == 0 {
		return 0
	}
	if f.packing {
		total := StreamBytes(batch)
		return (total + f.maxPayload - 1) / f.maxPayload
	}
	n := 0
	for _, p := range batch {
		n += (p.Size + FrameOverhead + f.maxPayload - 1) / f.maxPayload
	}
	return n
}
