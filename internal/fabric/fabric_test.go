package fabric

import (
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

func TestClosForShapes(t *testing.T) {
	for _, k := range []int{4, 6, 8, 12} {
		c, err := ClosFor(k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if c.NumFA != k*k/2 || c.FAUplinks != k/2 {
			t.Fatalf("K=%d: %d FAs x %d uplinks", k, c.NumFA, c.FAUplinks)
		}
		if c.FE1Up < c.FE1Down {
			t.Fatalf("K=%d: oversubscribed FE1 tier (%d up < %d down)", k, c.FE1Up, c.FE1Down)
		}
	}
	if _, err := ClosFor(5); err == nil {
		t.Fatal("odd K must error")
	}
}

// newTestNet builds a K=4 fabric (8 FAs, 4 FE1s, 4 FE2s).
func newTestNet(t *testing.T, seed int64) (*sim.Simulator, *Net) {
	t.Helper()
	c, err := ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	n, err := New(s, DefaultConfig(10e9, sim.Microsecond, seed), c)
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

// inject paces cells from every FA to a permutation destination; rate is
// well under the per-FA uplink capacity so queues never overflow.
func injectAll(s *sim.Simulator, n *Net, cells int) {
	numFA := n.Topo.NumFA
	gap := 2 * sim.Microsecond // 512B at 10G is ~410ns; x5 headroom over 2 uplinks
	for i := 0; i < cells; i++ {
		i := i
		src := i % numFA
		dst := (src + 1 + (i/numFA)%(numFA-1)) % numFA
		s.At(sim.Time(i/numFA)*gap, func() {
			c := netsim.NewPacket()
			c.Size = 512
			n.Inject(c, src, dst)
		})
	}
}

func TestFabricDeliversEverything(t *testing.T) {
	s, n := newTestNet(t, 1)
	const cells = 4000
	injectAll(s, n, cells)
	s.Run()
	if n.Injected() != cells {
		t.Fatalf("injected %d, want %d", n.Injected(), cells)
	}
	if n.Delivered() != cells {
		t.Fatalf("delivered %d of %d (drops: dead=%d noroute=%d queue=%d)",
			n.Delivered(), cells, n.DeadDrops(), n.NoRouteDrops(), n.QueueDrops())
	}
	if n.Drops() != 0 {
		t.Fatalf("healthy fabric dropped %d cells", n.Drops())
	}
}

func TestFabricHairpin(t *testing.T) {
	s, n := newTestNet(t, 1)
	got := 0
	n.OnDeliver = func(c *netsim.Packet) { got++; c.Release() }
	c := netsim.NewPacket()
	c.Size = 512
	n.Inject(c, 3, 3)
	s.Run()
	if got != 1 || n.Delivered() != 1 {
		t.Fatalf("hairpin delivered %d", got)
	}
}

// §5.3: under sustained traffic the source FA's uplinks must carry byte
// counts within a few percent of each other.
func TestFabricSprayBalance(t *testing.T) {
	s, n := newTestNet(t, 7)
	const cells = 6000
	injectAll(s, n, cells)
	s.Run()
	perFA := n.Topo.FAUplinks
	bytes := n.FAUplinkBytes()
	for fa := 0; fa < n.Topo.NumFA; fa++ {
		var min, max uint64
		for p := 0; p < perFA; p++ {
			b := bytes[fa*perFA+p]
			if p == 0 || b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if min == 0 {
			t.Fatalf("FA%d: an uplink carried nothing", fa)
		}
		if spread := float64(max-min) / float64(max); spread > 0.05 {
			t.Fatalf("FA%d: uplink spread %.1f%% exceeds 5%% (min=%d max=%d)", fa, 100*spread, min, max)
		}
	}
}

func TestFabricDeterminism(t *testing.T) {
	run := func() (uint64, []uint64) {
		s, n := newTestNet(t, 42)
		injectAll(s, n, 3000)
		s.Run()
		return n.Delivered(), n.FAUplinkBytes()
	}
	d1, b1 := run()
	d2, b2 := run()
	if d1 != d2 {
		t.Fatalf("delivered %d vs %d", d1, d2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("link %d: %d vs %d bytes", i, b1[i], b2[i])
		}
	}
}

// Failing links mid-run must lose only in-flight cells, keep the
// reachability invariant, and leak nothing: every injected cell is
// either delivered or released through a counted drop path.
func TestFabricFailureBalanceAndRecovery(t *testing.T) {
	s, n := newTestNet(t, 3)
	const cells = 8000
	injectAll(s, n, cells)
	// Kill two links mid-traffic: one FA-FE1 link and one FE1-FE2 link.
	var faLink, feLink = -1, -1
	for i, lk := range n.Topo.Links {
		if lk.A.Kind == topo.KindFA && faLink < 0 {
			faLink = i
		}
		if lk.A.Kind == topo.KindFE1 && feLink < 0 {
			feLink = i
		}
	}
	s.At(200*sim.Microsecond, func() {
		n.FailLink(faLink)
		n.FailLink(feLink)
	})
	s.Run()
	if n.Injected() != cells {
		t.Fatalf("injected %d", n.Injected())
	}
	if got := n.Delivered() + n.Drops(); got != cells {
		t.Fatalf("cell leak: delivered %d + dropped %d != injected %d",
			n.Delivered(), n.Drops(), cells)
	}
	if n.Drops() == 0 {
		t.Fatal("expected some loss from the failed links")
	}
	// With only two failures every FA keeps live uplinks and every spine
	// keeps a path to every FA: the fabric self-heals (§5.9).
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("unreachable pairs after healing: %d", u)
	}
	// Traffic injected after convergence must get through untouched.
	pre := n.Delivered()
	preDrops := n.Drops()
	injectAll(s, n, 2000)
	s.Run()
	if gotDrops := n.Drops() - preDrops; gotDrops != 0 {
		t.Fatalf("post-recovery traffic dropped %d cells", gotDrops)
	}
	if n.Delivered()-pre != 2000 {
		t.Fatalf("post-recovery delivered %d of 2000", n.Delivered()-pre)
	}
}

func TestFabricRestoreLink(t *testing.T) {
	s, n := newTestNet(t, 5)
	n.FailLink(0)
	n.FailLink(1)
	s.Run()
	n.RestoreLink(0)
	n.RestoreLink(1)
	s.Run()
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("unreachable after restore: %d", u)
	}
	injectAll(s, n, 2000)
	s.Run()
	if n.Drops() != 0 {
		t.Fatalf("restored fabric dropped %d", n.Drops())
	}
}

// Isolating an FA (all uplinks down) must surface in the reachability
// cross-check and drop its traffic through counted paths, not hang.
func TestFabricIsolatedFA(t *testing.T) {
	s, n := newTestNet(t, 9)
	for i, lk := range n.Topo.Links {
		if lk.A.Kind == topo.KindFA && lk.A.Index == 0 {
			n.FailLink(i)
		}
	}
	s.Run() // let withdrawals propagate
	if u := n.UnreachablePairs(); u == 0 {
		t.Fatal("isolated FA not visible in reachability cross-check")
	}
	c := netsim.NewPacket()
	c.Size = 512
	n.Inject(c, 0, 5) // no live uplink
	c2 := netsim.NewPacket()
	c2.Size = 512
	n.Inject(c2, 5, 0) // reachable nowhere after convergence
	s.Run()
	if n.Delivered() != 0 {
		t.Fatalf("delivered %d to/from an isolated FA", n.Delivered())
	}
	if n.Injected() != n.Drops() {
		t.Fatalf("leak: injected %d, dropped %d", n.Injected(), n.Drops())
	}
}

// The per-cell path must stay allocation-free in steady state (pooled
// cells, prebuilt routes, in-place reshuffles).
func TestFabricAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless")
	}
	s, n := newTestNet(t, 11)
	// Warm the pools and rings.
	injectAll(s, n, 2000)
	s.Run()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 64; i++ {
			c := netsim.NewPacket()
			c.Size = 512
			n.Inject(c, i%8, (i+3)%8)
		}
		s.Run()
	})
	// 64 cells x 4 hops per run; allow a tiny residue for heap growth.
	if avg > 2 {
		t.Fatalf("fabric hot path allocates: %.1f allocs per 64 cells", avg)
	}
}

// Overlapping failures and recoveries inside one ReachDelay window must
// coalesce: every delayed withdrawal recomputes the FE1's reachable set
// at delivery time, so a stale message can never overwrite newer truth
// at the spine (the §5.8 propagation protocol under interleaving).
func TestWithdrawalInterleavingCoalesces(t *testing.T) {
	s, n := newTestNet(t, 13)
	// Two FA links landing on the same FE1.
	var lks []int
	for i, lk := range n.Topo.Links {
		if lk.A.Kind == topo.KindFA && lk.B.Kind == topo.KindFE1 && lk.B.Index == 0 {
			lks = append(lks, i)
		}
	}
	if len(lks) < 2 {
		t.Fatalf("FE1-0 serves %d FA links", len(lks))
	}
	lk1, lk2 := lks[0], lks[1]
	full := n.Topo.FE1Down // FAs one FE1 advertises when healthy

	type upd struct {
		at        sim.Time
		fe1       int
		reachable int
	}
	var got []upd
	n.OnReachUpdate = func(fe1, reachable int) {
		got = append(got, upd{s.Now(), fe1, reachable})
	}
	d := n.Cfg.ReachDelay
	s.At(0, func() { n.FailLink(lk1) })
	s.At(d/5, func() { n.FailLink(lk2) })
	s.At(2*d/5, func() { n.RestoreLink(lk1) }) // before any withdrawal lands
	s.Run()

	// Three state changes -> three delayed deliveries, every one carrying
	// the truth at its own delivery time: lk1 healed, lk2 still down.
	if len(got) != 3 {
		t.Fatalf("got %d reach updates, want 3: %v", len(got), got)
	}
	for i, u := range got {
		if u.fe1 != 0 {
			t.Fatalf("update %d from FE1-%d, want 0", i, u.fe1)
		}
		if u.reachable != full-1 {
			t.Fatalf("update %d advertises %d FAs, want %d (stale withdrawal delivered): %v",
				i, u.reachable, full-1, got)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("updates out of order: %v", got)
		}
	}
	// lk2's FA stays reachable through its other FE1: no hole.
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("unreachable pairs %d during single-link outage", u)
	}

	// Heal lk2: the final readvertisement restores the full set.
	n.RestoreLink(lk2)
	s.Run()
	last := got[len(got)-1]
	if last.reachable != full {
		t.Fatalf("final advertisement %d FAs, want %d", last.reachable, full)
	}
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("unreachable pairs %d after healing", u)
	}
}

// Failing the same link twice must not double-fire hooks or withdrawals,
// and restore of a never-failed link is a no-op.
func TestLinkStateIdempotent(t *testing.T) {
	s, n := newTestNet(t, 17)
	var transitions int
	n.OnLinkState = func(int, bool) { transitions++ }
	n.FailLink(0)
	n.FailLink(0)
	n.RestoreLink(0)
	n.RestoreLink(0)
	n.RestoreLink(1)
	s.Run()
	if transitions != 2 {
		t.Fatalf("%d transitions for one fail+restore, want 2", transitions)
	}
}
