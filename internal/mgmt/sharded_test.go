package mgmt

import (
	"sync"
	"testing"

	"stardust/internal/sim"
)

// Tests for the sharded management path: the telemetry scrape crossing
// every shard's queues must be synchronized by the parsim window barrier.
//
// The latent race this guards against: Controller.scrape reads
// Queue.FwdBytes/occupancy of every directed link while, in a sharded
// fabric, those counters are being written by the shard goroutines
// mid-window. Before the barrier-scrape fix (Attach scheduling the scrape
// as an ordinary simulator event on shard 0), TestShardedScrapeRaceFree
// fails under -race the moment the fabric spans more than one shard; with
// AttachSharded the scrape runs in barrier context — every shard
// quiescent — and the race is structurally impossible. Attach now panics
// on a sharded fabric (TestAttachPanicsOnShardedFabric) so the racy
// configuration cannot be reintroduced silently.

func newShardedRun(t *testing.T, shards int, seed int64) *FabricRun {
	t.Helper()
	fr, err := NewFabricRun(FabricRunConfig{
		K:         4,
		Load:      0.4,
		FailEvery: 300 * sim.Microsecond,
		HealAfter: 500 * sim.Microsecond,
		Seed:      seed,
		Shards:    shards,
		Controller: Config{
			ScrapeEvery: 100 * sim.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestShardedScrapeRaceFree drives a chaos-laden sharded fabric while a
// reader goroutine hammers the controller's HTTP-facing snapshots. Run
// under -race (the CI race job does) this is the regression test for the
// scrape data race described above.
func TestShardedScrapeRaceFree(t *testing.T) {
	fr := newShardedRun(t, 4, 1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = fr.Ctl.Stats()
			_ = fr.Ctl.Telemetry()
			_ = fr.Ctl.Anomalies()
			_, _ = fr.Ctl.LinkSeries(0, 0)
		}
	}()
	for i := 0; i < 20; i++ {
		fr.Advance(200 * sim.Microsecond)
	}
	close(done)
	wg.Wait()

	st := fr.Ctl.Stats()
	if st.Scrapes == 0 {
		t.Fatal("no barrier scrapes happened")
	}
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic observed: %+v", st)
	}
	if st.LinkFailures == 0 {
		t.Fatal("chaos never fired")
	}
}

// TestShardedFabricRunDeterministic: with chaos and scrapes quantized to
// window boundaries, the same seed must produce identical management
// statistics at different shard counts.
func TestShardedFabricRunDeterministic(t *testing.T) {
	run := func(shards int) FabricStats {
		fr := newShardedRun(t, shards, 7)
		fr.Advance(3 * sim.Millisecond)
		return fr.Ctl.Stats()
	}
	a, b := run(2), run(4)
	if a != b {
		t.Fatalf("sharded FabricRun diverged across shard counts:\n  2: %+v\n  4: %+v", a, b)
	}
	if a.LinkFailures == 0 || a.Scrapes == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

// Attach on a sharded fabric must refuse loudly: scheduling the scrape as
// a plain simulator event is exactly the data race the barrier exists to
// prevent.
func TestAttachPanicsOnShardedFabric(t *testing.T) {
	fr := newShardedRun(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted a sharded fabric")
		}
	}()
	Attach(fr.Fab, Config{})
}

// The sharded fabric's reach updates are delivered through the barrier in
// deterministic order; the bus sequence observed by the controller must
// therefore be identical across shard counts.
func TestShardedReachEventsConsistent(t *testing.T) {
	collect := func(shards int) []Event {
		fr := newShardedRun(t, shards, 11)
		fr.Advance(4 * sim.Millisecond)
		var evs []Event
		for _, e := range fr.Ctl.Bus().Since(0, 4096) {
			if e.Kind == EventReachUpdate || e.Kind == EventLinkDown || e.Kind == EventLinkUp {
				evs = append(evs, e)
			}
		}
		return evs
	}
	a, b := collect(2), collect(4)
	if len(a) == 0 {
		t.Fatal("no link/reach events observed")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Kind != b[i].Kind || a[i].Device != b[i].Device || a[i].Detail != b[i].Detail {
			t.Fatalf("event %d differs:\n  2: %+v\n  4: %+v", i, a[i], b[i])
		}
	}
}
