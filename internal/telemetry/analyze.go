package telemetry

import (
	"fmt"
	"io"
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// WindowView is one scrape window presented to analyzers: per-direction
// deltas since the previous window plus instantaneous occupancy and link
// state. The same view shape is produced online (by the Recorder) and
// offline (by Analyze over a recorded stream), so analyzer stages are
// indifferent to where the data comes from.
type WindowView struct {
	Index uint64
	T     sim.Time

	DFwdBytes  []uint64 // per dir, bytes forwarded this window
	DFwdCells  []uint64 // per dir, cells forwarded this window
	DDrops     []uint64 // per dir, cells dropped this window
	QueueBytes []uint64 // per dir, queue occupancy at the scrape instant
	Up         []bool   // per dir, link administrative state

	DSinkCells []uint64 // per destination FA, cells delivered this window
	DSinkBytes []uint64 // per destination FA, bytes delivered this window

	Meta *Meta
}

// Meta is the topology context analyzers need to group directed-link
// series by device: which dirs are a given FA's uplinks, which dirs leave
// a given spine. Built once per stream, never per window.
type Meta struct {
	Dirs int
	FAs  int
	// FAUplinks[fa] lists the dir indices carrying traffic from fa into
	// tier 1 — the spray set whose balance Stardust's per-link spraying
	// is supposed to guarantee.
	FAUplinks [][]int
	// SpineDown[s] lists the dir indices leaving spine (FE2) s toward
	// tier 1. All of them down means the spine is a black hole.
	SpineDown [][]int
	// DirNames[d] is a human label like "FA3->FE1_1", for findings.
	DirNames []string
}

// MetaFor derives analyzer metadata from a Clos instance. scrape-period
// and counters are not needed: Meta is pure wiring.
func MetaFor(cl *topo.Clos) *Meta {
	m := &Meta{
		Dirs:      2 * len(cl.Links),
		FAs:       cl.NumFA,
		FAUplinks: make([][]int, cl.NumFA),
		SpineDown: make([][]int, cl.NumFE2),
		DirNames:  make([]string, 2*len(cl.Links)),
	}
	for i, lk := range cl.Links {
		m.DirNames[2*i] = fmt.Sprintf("%s->%s", lk.A, lk.B)
		m.DirNames[2*i+1] = fmt.Sprintf("%s->%s", lk.B, lk.A)
		if lk.A.Kind == topo.KindFA {
			fa := lk.A.Index
			m.FAUplinks[fa] = append(m.FAUplinks[fa], 2*i)
		}
		if lk.B.Kind == topo.KindFE2 {
			s := lk.B.Index
			m.SpineDown[s] = append(m.SpineDown[s], 2*i+1)
		}
	}
	return m
}

// MetaForGraph derives analyzer metadata from any topo.Graph. Uplink
// groups come from the edge devices' outbound directions; SpineDown
// groups the outbound directions of top-tier transit nodes (the spines
// of a Clos, the switches of a star-replaced graph; empty on a flat
// fabric, where there is no core to black-hole).
func MetaForGraph(g topo.Graph) *Meta {
	links := g.GraphLinks()
	m := &Meta{
		Dirs:      2 * len(links),
		FAs:       g.NumEdge(),
		FAUplinks: topo.EdgeUplinkDirs(g),
		DirNames:  make([]string, 2*len(links)),
	}
	topTier := g.NumTiers() - 1
	spineOf := map[int]int{} // node -> SpineDown index
	edge := topo.EdgeOfNode(g)
	for i := 0; i < g.NumNodes(); i++ {
		if edge[i] < 0 && g.Node(i).Tier == topTier {
			spineOf[i] = len(m.SpineDown)
			m.SpineDown = append(m.SpineDown, nil)
		}
	}
	for i, lk := range links {
		m.DirNames[2*i] = fmt.Sprintf("%s->%s", g.Node(lk.A).Name, g.Node(lk.B).Name)
		m.DirNames[2*i+1] = fmt.Sprintf("%s->%s", g.Node(lk.B).Name, g.Node(lk.A).Name)
		if s, ok := spineOf[lk.A]; ok {
			m.SpineDown[s] = append(m.SpineDown[s], 2*i)
		}
		if s, ok := spineOf[lk.B]; ok {
			m.SpineDown[s] = append(m.SpineDown[s], 2*i+1)
		}
	}
	return m
}

// MetaFromHeader rebuilds Meta from a stream header. A header carrying
// the canonical topology spec regenerates the exact wiring for any
// family — and fails loudly on a spec this build does not know, rather
// than silently assuming a Clos shaped by K (the bug that mislabeled
// every non-Clos stream). Older Clos-only streams carry K instead;
// headerless shapes degrade to device-less metadata (analyzers that
// need grouping see no groups).
func MetaFromHeader(hdr StreamHeader) (*Meta, error) {
	if hdr.Topo != "" {
		g, err := topo.ParseSpec(hdr.Topo)
		if err != nil {
			return nil, fmt.Errorf("telemetry: stream topology: %w", err)
		}
		var m *Meta
		if cl, ok := g.(*topo.Clos); ok {
			m = MetaFor(cl) // legacy Clos labels (FA3->FE11), matching online runs
		} else {
			m = MetaForGraph(g)
		}
		if m.Dirs != hdr.Dirs || m.FAs != hdr.FAs {
			return nil, fmt.Errorf("telemetry: header topo %q implies %d dirs/%d sinks, stream has %d/%d",
				hdr.Topo, m.Dirs, m.FAs, hdr.Dirs, hdr.FAs)
		}
		return m, nil
	}
	if hdr.K > 0 {
		cl, err := fabric.ClosFor(hdr.K)
		if err != nil {
			return nil, err
		}
		m := MetaFor(cl)
		if m.Dirs != hdr.Dirs || m.FAs != hdr.FAs {
			return nil, fmt.Errorf("telemetry: header K=%d implies %d dirs/%d FAs, stream has %d/%d",
				hdr.K, m.Dirs, m.FAs, hdr.Dirs, hdr.FAs)
		}
		return m, nil
	}
	return &Meta{Dirs: hdr.Dirs, FAs: hdr.FAs}, nil
}

// Finding is one analyzer observation. Seq is assigned when the finding
// enters a FindingLog; offline analysis leaves it zero.
type Finding struct {
	Seq      uint64   `json:"seq,omitempty"`
	Window   uint64   `json:"window"`
	T        sim.Time `json:"t_ps"`
	Stage    string   `json:"stage"`
	Severity string   `json:"severity"`
	Detail   string   `json:"detail"`
	Value    float64  `json:"value,omitempty"`
}

// Severity levels. Plain strings so findings serialize readably.
const (
	SevInfo     = "info"
	SevWarn     = "warn"
	SevCritical = "critical"
)

// Analyzer is one composable analytics stage. Window is called once per
// scrape window in stream order; Finish is called once at end of stream
// (or never, for an online run that is still going) for whole-run
// summaries. Implementations may keep state; they are driven from a
// single goroutine.
type Analyzer interface {
	Name() string
	Window(v *WindowView) []Finding
	Finish() []Finding
}

// Analyze runs analyzer stages over a recorded stream. meta may be nil,
// in which case it is derived from the stream header. Returns all
// findings in stream order (Finish findings last).
func Analyze(r io.Reader, meta *Meta, stages ...Analyzer) ([]Finding, error) {
	sr := NewReader(r)
	hdr, err := sr.Header()
	if err != nil {
		return nil, err
	}
	if meta == nil {
		if meta, err = MetaFromHeader(hdr); err != nil {
			return nil, err
		}
	}
	v := WindowView{
		DFwdBytes:  make([]uint64, hdr.Dirs),
		DFwdCells:  make([]uint64, hdr.Dirs),
		DDrops:     make([]uint64, hdr.Dirs),
		QueueBytes: make([]uint64, hdr.Dirs),
		Up:         make([]bool, hdr.Dirs),
		DSinkCells: make([]uint64, hdr.FAs),
		DSinkBytes: make([]uint64, hdr.FAs),
		Meta:       meta,
	}
	var out []Finding
	for {
		win, _, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		if win == nil {
			continue // event record; the up bitmap already carries link state
		}
		v.Index = win.Index
		v.T = win.T
		copy(v.DFwdBytes, win.DFwdBytes)
		copy(v.DFwdCells, win.DFwdCells)
		copy(v.DDrops, win.DDrops)
		for d := range win.Dirs {
			v.QueueBytes[d] = win.Dirs[d].QueueBytes
			v.Up[d] = win.Dirs[d].Up
		}
		copy(v.DSinkCells, win.DSinkCells)
		copy(v.DSinkBytes, win.DSinkBytes)
		for _, a := range stages {
			out = append(out, a.Window(&v)...)
		}
	}
	for _, a := range stages {
		out = append(out, a.Finish()...)
	}
	return out, nil
}

// FindingLog is a bounded, sequence-numbered finding ring safe for
// concurrent append (simulation side) and read (HTTP tailers). Old
// findings are evicted when the ring fills; Since reports from any
// sequence number so a tailer can detect its own gap.
type FindingLog struct {
	mu    sync.Mutex
	ring  []Finding
	next  uint64 // seq of the next finding appended
	first uint64 // seq of the oldest finding still in the ring
}

// NewFindingLog builds a log keeping the most recent cap findings.
func NewFindingLog(capacity int) *FindingLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &FindingLog{ring: make([]Finding, 0, capacity)}
}

// Append stamps sequence numbers and stores the findings.
func (l *FindingLog) Append(fs ...Finding) {
	if len(fs) == 0 {
		return
	}
	l.mu.Lock()
	for _, f := range fs {
		f.Seq = l.next
		l.next++
		if len(l.ring) < cap(l.ring) {
			l.ring = append(l.ring, f)
		} else {
			l.ring[int(f.Seq)%cap(l.ring)] = f
			l.first = f.Seq + 1 - uint64(cap(l.ring))
		}
	}
	l.mu.Unlock()
}

// Total returns how many findings have ever been appended.
func (l *FindingLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Since returns up to max findings with seq >= from, in order, plus the
// sequence number the caller should resume from.
func (l *FindingLog) Since(from uint64, max int) (out []Finding, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.first {
		from = l.first // tailer fell behind; it can see the gap via seq
	}
	for s := from; s < l.next && len(out) < max; s++ {
		out = append(out, l.ring[int(s)%cap(l.ring)])
	}
	return out, from + uint64(len(out))
}

// SprayImbalance flags windows where one FA's uplink spray diverges:
// (max-min)/mean of per-uplink cells this window above Threshold, over
// live uplinks only (a failed link legitimately carries nothing). It also
// tracks the worst ratio seen per FA for the end-of-stream summary.
type SprayImbalance struct {
	Threshold float64 // default 0.25
	MinCells  uint64  // ignore windows with less traffic than this per FA

	worst   []float64
	worstFA int
}

func (a *SprayImbalance) Name() string { return "spray-imbalance" }

func (a *SprayImbalance) Window(v *WindowView) []Finding {
	if v.Meta == nil || len(v.Meta.FAUplinks) == 0 {
		return nil
	}
	th := a.Threshold
	if th <= 0 {
		th = 0.25
	}
	minCells := a.MinCells
	if minCells == 0 {
		minCells = 16
	}
	if a.worst == nil {
		a.worst = make([]float64, len(v.Meta.FAUplinks))
		a.worstFA = -1
	}
	var out []Finding
	for fa, ups := range v.Meta.FAUplinks {
		var min, max, sum uint64
		live := 0
		min = ^uint64(0)
		for _, d := range ups {
			if !v.Up[d] {
				continue
			}
			c := v.DFwdCells[d]
			sum += c
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			live++
		}
		if live < 2 || sum < minCells {
			continue
		}
		mean := float64(sum) / float64(live)
		ratio := float64(max-min) / mean
		if ratio > a.worst[fa] {
			a.worst[fa] = ratio
			if a.worstFA < 0 || ratio > a.worst[a.worstFA] {
				a.worstFA = fa
			}
		}
		if ratio > th {
			out = append(out, Finding{
				Window: v.Index, T: v.T, Stage: a.Name(), Severity: SevWarn,
				Detail: fmt.Sprintf("FA%d uplink spray imbalance %.3f over %d live links (max-min %d cells, mean %.1f)",
					fa, ratio, live, max-min, mean),
				Value: ratio,
			})
		}
	}
	return out
}

func (a *SprayImbalance) Finish() []Finding {
	if a.worstFA < 0 {
		return nil
	}
	return []Finding{{
		Stage: a.Name(), Severity: SevInfo,
		Detail: fmt.Sprintf("worst spray imbalance %.3f at FA%d", a.worst[a.worstFA], a.worstFA),
		Value:  a.worst[a.worstFA],
	}}
}

// CongestionOnset detects the transition into congestion per directed
// link: the first window where drops appear after a drop-free window, and
// occupancy ramps (queue strictly rising for RampWindows consecutive
// windows above MinQueueBytes).
type CongestionOnset struct {
	RampWindows   int    // default 3
	MinQueueBytes uint64 // default 4096

	prevDrops []uint64
	prevQueue []uint64
	rising    []int
	onsets    int
}

func (a *CongestionOnset) Name() string { return "congestion-onset" }

func (a *CongestionOnset) Window(v *WindowView) []Finding {
	ramp := a.RampWindows
	if ramp <= 0 {
		ramp = 3
	}
	floor := a.MinQueueBytes
	if floor == 0 {
		floor = 4096
	}
	n := len(v.DDrops)
	if a.prevDrops == nil {
		a.prevDrops = make([]uint64, n)
		a.prevQueue = make([]uint64, n)
		a.rising = make([]int, n)
	}
	var out []Finding
	for d := 0; d < n; d++ {
		if v.DDrops[d] > 0 && a.prevDrops[d] == 0 {
			a.onsets++
			out = append(out, Finding{
				Window: v.Index, T: v.T, Stage: a.Name(), Severity: SevCritical,
				Detail: fmt.Sprintf("%s started dropping: %d cells this window, queue %dB",
					dirLabel(v.Meta, d), v.DDrops[d], v.QueueBytes[d]),
				Value: float64(v.DDrops[d]),
			})
		}
		if v.QueueBytes[d] > a.prevQueue[d] && v.QueueBytes[d] >= floor {
			a.rising[d]++
			if a.rising[d] == ramp {
				out = append(out, Finding{
					Window: v.Index, T: v.T, Stage: a.Name(), Severity: SevWarn,
					Detail: fmt.Sprintf("%s occupancy rising %d windows, now %dB",
						dirLabel(v.Meta, d), ramp, v.QueueBytes[d]),
					Value: float64(v.QueueBytes[d]),
				})
			}
		} else {
			a.rising[d] = 0
		}
		a.prevDrops[d] = v.DDrops[d]
		a.prevQueue[d] = v.QueueBytes[d]
	}
	return out
}

func (a *CongestionOnset) Finish() []Finding {
	return []Finding{{
		Stage: a.Name(), Severity: SevInfo,
		Detail: fmt.Sprintf("%d congestion onsets over the stream", a.onsets),
		Value:  float64(a.onsets),
	}}
}

// ReachHoles reports windows during which a device is unreachable at the
// link layer: an FA with every uplink down (isolated edge) or a spine
// with every down-link down (dead spine). Findings mark the transitions
// in and out of the hole.
type ReachHoles struct {
	faHole    []bool
	spineHole []bool
	holes     int
}

func (a *ReachHoles) Name() string { return "reach-holes" }

func (a *ReachHoles) Window(v *WindowView) []Finding {
	if v.Meta == nil {
		return nil
	}
	if a.faHole == nil {
		a.faHole = make([]bool, len(v.Meta.FAUplinks))
		a.spineHole = make([]bool, len(v.Meta.SpineDown))
	}
	var out []Finding
	check := func(holes []bool, dirs [][]int, what string, i int) {
		if len(dirs[i]) == 0 {
			return
		}
		down := true
		for _, d := range dirs[i] {
			if v.Up[d] {
				down = false
				break
			}
		}
		switch {
		case down && !holes[i]:
			holes[i] = true
			a.holes++
			out = append(out, Finding{
				Window: v.Index, T: v.T, Stage: a.Name(), Severity: SevCritical,
				Detail: fmt.Sprintf("%s%d reachability hole opened: all %d links down", what, i, len(dirs[i])),
			})
		case !down && holes[i]:
			holes[i] = false
			out = append(out, Finding{
				Window: v.Index, T: v.T, Stage: a.Name(), Severity: SevInfo,
				Detail: fmt.Sprintf("%s%d reachability hole closed", what, i),
			})
		}
	}
	for fa := range v.Meta.FAUplinks {
		check(a.faHole, v.Meta.FAUplinks, "FA", fa)
	}
	for s := range v.Meta.SpineDown {
		check(a.spineHole, v.Meta.SpineDown, "FE2_", s)
	}
	return out
}

func (a *ReachHoles) Finish() []Finding {
	return []Finding{{
		Stage: a.Name(), Severity: SevInfo,
		Detail: fmt.Sprintf("%d reachability holes over the stream", a.holes),
		Value:  float64(a.holes),
	}}
}

// FAHeatmap accumulates a per-FA × window heat matrix of delivered bytes
// (the per-FA delivery series), downsampled to at most MaxCols columns.
// Rows are exposed for the HTTP endpoint; Finish summarizes the hottest
// and coldest destinations.
type FAHeatmap struct {
	MaxCols int // default 64

	rows    [][]uint64 // rows[fa][col]
	col     int
	perCol  int // windows folded into one column so far this column
	fold    int // windows per column (doubles when MaxCols is hit)
	windows int
}

func (a *FAHeatmap) Name() string { return "fa-heatmap" }

func (a *FAHeatmap) Window(v *WindowView) []Finding {
	if len(v.DSinkBytes) == 0 {
		return nil
	}
	maxCols := a.MaxCols
	if maxCols <= 0 {
		maxCols = 64
	}
	if a.rows == nil {
		a.rows = make([][]uint64, len(v.DSinkBytes))
		for i := range a.rows {
			a.rows[i] = make([]uint64, 0, maxCols)
		}
		a.fold = 1
	}
	// Start a new column when the previous one has absorbed `fold`
	// windows; halve resolution in place when the matrix is full.
	if a.perCol == 0 {
		if len(a.rows[0]) == maxCols {
			for fa := range a.rows {
				half := a.rows[fa][:0]
				for c := 0; c+1 < maxCols; c += 2 {
					half = append(half, a.rows[fa][c]+a.rows[fa][c+1])
				}
				a.rows[fa] = half
			}
			a.fold *= 2
			a.col = len(a.rows[0])
		}
		for fa := range a.rows {
			a.rows[fa] = append(a.rows[fa], 0)
		}
		a.col = len(a.rows[0]) - 1
	}
	for fa, b := range v.DSinkBytes {
		a.rows[fa][a.col] += b
	}
	a.perCol = (a.perCol + 1) % a.fold
	a.windows++
	return nil
}

func (a *FAHeatmap) Finish() []Finding {
	if a.windows == 0 {
		return nil
	}
	totals := make([]uint64, len(a.rows))
	var hot, cold int
	for fa, row := range a.rows {
		for _, v := range row {
			totals[fa] += v
		}
		if totals[fa] > totals[hot] {
			hot = fa
		}
		if totals[fa] < totals[cold] {
			cold = fa
		}
	}
	return []Finding{{
		Stage: a.Name(), Severity: SevInfo,
		Detail: fmt.Sprintf("heatmap over %d windows: hottest FA%d (%dB), coldest FA%d (%dB)",
			a.windows, hot, totals[hot], cold, totals[cold]),
		Value: float64(totals[hot]),
	}}
}

// Rows exposes the accumulated heat matrix (per FA, per column, bytes).
func (a *FAHeatmap) Rows() [][]uint64 { return a.rows }

// DefaultAnalyzers is the standard online pipeline.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		&SprayImbalance{},
		&CongestionOnset{},
		&ReachHoles{},
		&FAHeatmap{},
	}
}

func dirLabel(m *Meta, d int) string {
	if m != nil && d < len(m.DirNames) && m.DirNames[d] != "" {
		return m.DirNames[d]
	}
	return fmt.Sprintf("dir%d", d)
}
