package netsim_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// Transport-level rebalancing invariants: the full VOQ → credit → cell →
// reassembly pipeline must keep byte-identical digests across shard
// counts while the adaptive planner migrates whole edge groups — hosts,
// split-VOQ halves, credit loops, reassembly timers — between event
// loops, including across link fail/heal windows.

// rebalFlow is a self-rescheduling packet source that survives
// migrations: its chain starts group-tagged (ScheduleHost) and re-resolves
// the host's shard per event instead of caching a Simulator.
type rebalFlow struct {
	net   *netsim.ShardedStardustNet
	fi    int
	src   int
	route []netsim.Handler
	rec   *flowRec
	rng   *rand.Rand
	gap   sim.Time
	size  int
	count int
	n     int
}

// Act implements sim.Action: inject one packet and reschedule.
func (f *rebalFlow) Act(uint64) {
	if f.n >= f.count {
		return
	}
	f.n++
	id := uint64(f.fi)<<32 | uint64(f.n)
	f.rec.sent = append(f.rec.sent, id)
	p := netsim.NewPacket()
	p.Size = f.size
	p.Seq = int64(id)
	p.SetRoute(f.route)
	p.SendOn()
	f.net.HostSim(f.src).AfterAction(f.gap+sim.Time(f.rng.Intn(2000))*sim.Nanosecond, f, 0)
}

// runTransportRebalance executes a hotspot transport program — sources on
// the first quarter of the FAs send 6x faster — on `shards` event loops
// with adaptive rebalancing enabled, checks the transport invariants, and
// returns (canonical outcome, migration count).
func runTransportRebalance(t *testing.T, seed int64, shards, failN int) (transportOutcome, uint64) {
	t.Helper()
	cl, err := fabric.ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	const hostsPer = 2
	hosts := cl.NumFA * hostsPer
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: shards, Lookahead: look})
	fab, err := fabric.NewSharded(eng, fabric.DefaultConfig(netsim.Bps(10e9*1.05), look, seed), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewShardedStardustNet(fab, netsim.DefaultStardust(10e9, cl.FAUplinks, look), hosts, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.EnableRebalancing(fabric.DefaultRebalance()); err != nil {
		t.Fatal(err)
	}

	drops := &lockedIDs{}
	discards := &lockedIDs{}
	net.OnVOQDrop = drops.record
	net.OnReasmDiscard = discards.record
	net.VisitQueues(func(q *netsim.Queue) { q.OnDrop = drops.record })

	hotHosts := hosts / 4
	recs := make([]*flowRec, hosts)
	for src := 0; src < hosts; src++ {
		src := src
		dst := (src + 3) % hosts
		rec := &flowRec{src: src, dst: dst}
		recs[src] = rec
		f := &rebalFlow{
			net: net, fi: src, src: src, rec: rec,
			rng:   rand.New(rand.NewSource(seed ^ int64(src)*104729)),
			gap:   24 * sim.Microsecond,
			size:  2000,
			count: 60,
		}
		if src < hotHosts {
			f.gap = 4 * sim.Microsecond
		}
		f.route = append(net.Route(src, dst), netsim.HandlerFunc(func(p *netsim.Packet) {
			rec.got = append(rec.got, uint64(p.Seq))
			p.Release()
		}))
		net.ScheduleHost(src, sim.Time(src)*sim.Microsecond/2, f, 0)
	}

	rng := rand.New(rand.NewSource(seed ^ 0x4eba))
	const dur = 1500 * sim.Microsecond
	for i := 0; i < failN; i++ {
		lk := rng.Intn(fab.NumLinks())
		failAt := dur/4 + sim.Time(rng.Int63n(int64(dur/4)))
		healAt := failAt + sim.Time(rng.Int63n(int64(dur/4))) + 20*look
		eng.At(failAt, func() { fab.FailLink(lk) })
		eng.At(healAt, func() { fab.RestoreLink(lk) })
	}

	eng.OnBarrier(func(now sim.Time) {
		if err := net.CheckInvariants(); err != nil {
			t.Errorf("t=%d shards=%d: %v", now, shards, err)
		}
	})

	eng.Run(dur + 60*24*sim.Microsecond + 4*sim.Millisecond)

	if got := net.InFlight(); got != 0 {
		t.Fatalf("shards=%d: %d packets still in flight at drain", shards, got)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}

	var injected, delivered uint64
	seen := make(map[uint64]int)
	for _, rec := range recs {
		injected += uint64(len(rec.sent))
		delivered += uint64(len(rec.got))
		for _, id := range rec.got {
			seen[id]++
		}
		for i := 1; i < len(rec.got); i++ {
			if rec.got[i] <= rec.got[i-1] {
				t.Fatalf("shards=%d: flow %d->%d delivered %x after %x (reordered across migration)",
					shards, rec.src, rec.dst, rec.got[i], rec.got[i-1])
			}
		}
	}
	for _, id := range drops.ids {
		seen[id]++
	}
	for _, id := range discards.ids {
		seen[id]++
	}
	if uint64(len(seen)) != injected {
		t.Fatalf("shards=%d: %d distinct packet fates for %d injected", shards, len(seen), injected)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("shards=%d: packet %x accounted %d times", shards, id, cnt)
		}
	}
	var tc netsim.TransportCounters
	net.ReadCounters(&tc)
	if tc.CellsDelivered+tc.FabricDrops != tc.CellsSent {
		t.Fatalf("shards=%d: cell leak: %d delivered + %d lost != %d sent",
			shards, tc.CellsDelivered, tc.FabricDrops, tc.CellsSent)
	}

	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, rec := range recs {
		w(uint64(len(rec.got)))
		for _, id := range rec.got {
			w(id)
		}
	}
	for _, id := range drops.sorted() {
		w(id)
	}
	for _, id := range discards.sorted() {
		w(id)
	}
	w(tc.CellsSent)
	w(tc.CellsDelivered)
	w(tc.CreditsSent)
	w(tc.CreditBytes)
	w(tc.VOQDrops)
	w(tc.ReasmTimeouts)
	w(tc.ShippedBytes)
	w(tc.DeliveredBytes)
	net.VisitQueues(func(q *netsim.Queue) {
		w(q.FwdBytes)
		w(q.Forwarded)
		w(q.Drops)
	})
	var lc [2]fabric.LinkCounters
	for i := 0; i < fab.NumLinks(); i++ {
		fab.ReadLinkCounters(i, &lc)
		for d := 0; d < 2; d++ {
			w(lc[d].FwdBytes)
			w(lc[d].FwdCells)
			w(lc[d].Drops)
		}
	}
	return transportOutcome{
		injected:  injected,
		delivered: delivered,
		dropped:   uint64(len(drops.ids)),
		discarded: uint64(len(discards.ids)),
		digest:    h.Sum64(),
	}, fab.Migrations()
}

// TestTransportRebalanceDeterminism: the hotspot transport program with
// adaptive rebalancing must produce byte-identical digests at shards
// {1, 2, 4}, and the multi-shard runs must actually migrate edge groups.
func TestTransportRebalanceDeterminism(t *testing.T) {
	seeds := []int64{9, 27}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref, m1 := runTransportRebalance(t, seed, 1, 0)
			if m1 != 0 {
				t.Fatalf("single-shard run migrated %d times", m1)
			}
			for _, shards := range []int{2, 4} {
				got, m := runTransportRebalance(t, seed, shards, 0)
				if got != ref {
					t.Fatalf("shards=%d diverged from shards=1:\n  1: %v\n  %d: %v",
						shards, ref, shards, got)
				}
				if m == 0 {
					t.Fatalf("shards=%d: hotspot transport run never migrated", shards)
				}
			}
		})
	}
}

// TestTransportRebalanceUnderFailHeal: transport fate accounting (VOQ
// drops, reassembly discards, in-order delivery) must survive migrations
// interleaved with fabric link failures.
func TestTransportRebalanceUnderFailHeal(t *testing.T) {
	const seed = 33
	ref, _ := runTransportRebalance(t, seed, 1, 3)
	got, m := runTransportRebalance(t, seed, 4, 3)
	if got != ref {
		t.Fatalf("shards=4 diverged from shards=1 under fail/heal:\n  1: %v\n  4: %v", ref, got)
	}
	if m == 0 {
		t.Fatal("fail/heal transport run never migrated")
	}
}
