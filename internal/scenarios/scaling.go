package scenarios

import (
	"fmt"
	"strings"

	"stardust/internal/analytic"
	"stardust/internal/engine"
	"stardust/internal/experiments"
	"stardust/internal/topo"
)

func init() {
	engine.Register(engine.Scenario{
		Name: "scaling/fig2",
		Desc: "Fig 2 scalability: max hosts vs tiers, devices and serial links vs host count",
		Run: func(c engine.Context) (engine.Result, error) {
			var res engine.Result
			for _, dev := range topo.Fig2Devices {
				p := topo.Plan(dev, 1_000_000)
				res.Add(fmt.Sprintf("devices_1m_%s", sanitize(dev.Name)), float64(p.Devices), "")
				res.Add(fmt.Sprintf("links_1m_%s", sanitize(dev.Name)), float64(p.SerialLinks), "")
			}
			var b strings.Builder
			experiments.WriteFig2(&b)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name:     "scaling/table2",
		Desc:     "Table 2 element counts for (k, t, l)",
		Defaults: engine.Params{"k": "8", "t": "4", "l": "2"},
		Docs: map[string]string{
			"k": "FE radix factor k of Table 2",
			"t": "ToR downlinks per FA",
			"l": "FA fabric links",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			p := topo.Params{
				K: c.Params.Int("k", 8),
				T: c.Params.Int("t", 4),
				L: c.Params.Int("l", 2),
			}
			var res engine.Result
			for n := 1; n <= 4; n++ {
				ec := topo.Table2(p, n)
				res.Add(fmt.Sprintf("max_tors_%dtier", n), ec.MaxToRs, "")
				res.Add(fmt.Sprintf("max_switches_%dtier", n), ec.MaxSwitches, "")
			}
			var b strings.Builder
			experiments.WriteTable2(&b, p)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "scaling/fig3",
		Desc: "Fig 3 required parallel processing, standard vs Stardust",
		Run: func(c engine.Context) (engine.Result, error) {
			var res engine.Result
			for _, r := range analytic.Fig3(analytic.DefaultSwitch, []int{64, 1500}) {
				res.Add(fmt.Sprintf("standard_%dB", r.PacketBytes), r.Standard, "")
				res.Add(fmt.Sprintf("stardust_%dB", r.PacketBytes), r.Stardust, "")
			}
			var b strings.Builder
			experiments.WriteFig3(&b, nil)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "scaling/fig10d",
		Desc: "Fig 10(d) silicon area of a Fabric Element vs a standard switch",
		Run: func(c engine.Context) (engine.Result, error) {
			var res engine.Result
			r := analytic.PaperAreaRatios
			res.Add("rel_area_per_tbps_pct", 100*r.RelAreaPerTbps, "%")
			res.Add("rel_power_per_tbps_pct", 100*r.RelPowerPerTbps, "%")
			res.Add("model_area_per_tbps_pct", 100*analytic.DefaultAreaBreakdown.RelativeAreaPerTbps(r), "%")
			var b strings.Builder
			experiments.WriteFig10d(&b)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "scaling/fig11",
		Desc: "Fig 11 relative DCN cost and power vs fat-tree",
		Run: func(c engine.Context) (engine.Result, error) {
			var res engine.Result
			res.Add("fabric_power_saving_10k_pct",
				analytic.FabricPowerSaving(topo.FT400Gx32, 10000), "%")
			var b strings.Builder
			if err := experiments.WriteFig11(&b, nil); err != nil {
				return engine.Result{}, err
			}
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "scaling/appendixE",
		Desc: "Appendix E reachability-driven failure recovery model",
		Run: func(c engine.Context) (engine.Result, error) {
			p := analytic.DefaultResilience
			var res engine.Result
			res.Add("recovery_us", p.RecoveryTime().Microseconds(), "us")
			res.Add("propagation_us", p.PropagationTime().Microseconds(), "us")
			res.Add("bandwidth_overhead_pct", 100*p.BandwidthOverhead(), "%")
			var b strings.Builder
			experiments.WriteAppendixE(&b)
			res.Text = b.String()
			return res, nil
		},
	})
}
