package scenarios

import (
	"fmt"
	"strings"

	"stardust/internal/device"
	"stardust/internal/engine"
	"stardust/internal/experiments"
	"stardust/internal/workload"
)

func init() {
	engine.Register(engine.Scenario{
		Name:     "pack/fig8a",
		Desc:     "Fig 8(a) NetFPGA packing throughput vs packet size, four designs",
		Defaults: engine.Params{"clock_hz": "150000000"},
		Docs:     map[string]string{"clock_hz": "NetFPGA datapath clock in Hz"},
		Run: func(c engine.Context) (engine.Result, error) {
			clock := c.Params.Float("clock_hz", 150e6)
			var res engine.Result
			for _, row := range device.Fig8a(clock, nil) {
				for _, d := range device.AllDesigns {
					res.Add(fmt.Sprintf("gbps_%s_%dB", sanitize(fmt.Sprint(d)), row.PacketBytes), row.Gbps[d], "Gbps")
				}
			}
			var b strings.Builder
			experiments.WriteFig8a(&b, clock, nil)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name:     "pack/fig8b",
		Desc:     "Fig 8(b) production-trace throughput mixes",
		Defaults: engine.Params{"clock_hz": "150000000"},
		Docs:     map[string]string{"clock_hz": "NetFPGA datapath clock in Hz"},
		Run: func(c engine.Context) (engine.Result, error) {
			clock := c.Params.Float("clock_hz", 150e6)
			var res engine.Result
			for _, tr := range workload.Traces {
				sizes, weights := workload.PacketMix(tr)
				res.Add(fmt.Sprintf("switch_pct_%s", sanitize(string(tr))),
					100*device.NetFPGA(device.Reference, clock).MixThroughput(sizes, weights), "%")
				res.Add(fmt.Sprintf("cell_pct_%s", sanitize(string(tr))),
					100*device.NetFPGA(device.Cells, clock).MixThroughput(sizes, weights), "%")
				res.Add(fmt.Sprintf("stardust_pct_%s", sanitize(string(tr))),
					100*device.NetFPGA(device.Packed, clock).MixThroughput(sizes, weights), "%")
			}
			var b strings.Builder
			experiments.WriteFig8b(&b, clock)
			res.Text = b.String()
			return res, nil
		},
	})
}

// sanitize lowercases a label and folds non-alphanumerics to '_' so it
// can serve as a metric-name component.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
