package core

import (
	"math"
	"testing"

	"stardust/internal/sched"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// End-to-end QoS: two traffic classes share one oversubscribed egress
// port with WRR weights 3:1; delivered bytes must split accordingly
// (§3.3: "typically a combination of round-robin, strict priority and
// weighted among VOQs of different Traffic Classes").
func TestEndToEndWeightedClasses(t *testing.T) {
	cfg := testConfig()
	cfg.Credit.Classes = map[uint8]sched.ClassConfig{
		0: {Priority: 0, Weight: 3},
		1: {Priority: 0, Weight: 1},
	}
	n := newTestNet(t, cfg, clos1(t))
	delivered := map[uint8]int64{}
	n.OnDeliver = func(p *Packet) { delivered[p.TC] += int64(p.Size) }

	// Two sources each blast one class at the same destination port, well
	// above its 100G capacity, for a fixed window.
	const pkt = 1500
	stop := n.Sim.Now() + 400*sim.Microsecond
	inject := func(src uint16, tc uint8) {
		var loop func()
		loop = func() {
			if n.Sim.Now() >= stop {
				return
			}
			n.Inject(src, 0, 0, 0, tc, pkt)
			n.Sim.After(60*sim.Nanosecond, loop) // 200G offered per class
		}
		n.Sim.After(0, loop)
	}
	inject(1, 0)
	inject(2, 1)
	n.Run(stop + 100*sim.Microsecond)

	if delivered[0] == 0 || delivered[1] == 0 {
		t.Fatalf("a class starved: %v", delivered)
	}
	ratio := float64(delivered[0]) / float64(delivered[1])
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("WRR 3:1 not honored end to end: ratio %.2f (%v)", ratio, delivered)
	}
}

// Strict priority end to end: the high class takes the whole port while
// backlogged; the low class drains only from leftover capacity.
func TestEndToEndStrictPriority(t *testing.T) {
	cfg := testConfig()
	cfg.Credit.Classes = map[uint8]sched.ClassConfig{
		0: {Priority: 1, Weight: 1}, // high
		1: {Priority: 0, Weight: 1}, // low
	}
	n := newTestNet(t, cfg, clos1(t))
	delivered := map[uint8]int64{}
	n.OnDeliver = func(p *Packet) { delivered[p.TC] += int64(p.Size) }

	const pkt = 1500
	stop := n.Sim.Now() + 300*sim.Microsecond
	inject := func(src uint16, tc uint8) {
		var loop func()
		loop = func() {
			if n.Sim.Now() >= stop {
				return
			}
			n.Inject(src, 0, 0, 0, tc, pkt)
			n.Sim.After(110*sim.Nanosecond, loop) // ~109G offered per class
		}
		n.Sim.After(0, loop)
	}
	inject(1, 0)
	inject(2, 1)
	// Measure the split at the end of the contention window; afterwards
	// the high VOQ drains, withdraws, and the low class legitimately gets
	// the port.
	n.Run(stop)
	if delivered[0] == 0 {
		t.Fatal("high class starved")
	}
	frac := float64(delivered[1]) / float64(delivered[0]+delivered[1])
	if frac > 0.05 {
		t.Fatalf("low class got %.1f%% during strict-priority contention", 100*frac)
	}
	lowAtStop := delivered[1]
	n.Run(stop + 200*sim.Microsecond)
	if delivered[1] <= lowAtStop {
		t.Fatal("low class never drained after the high class finished")
	}
}

// Determinism: identical seeds must produce byte-identical outcomes.
func TestNetworkDeterminism(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		cfg := testConfig()
		c, _ := topo.NewClos2(8, 4, 4, 8, 8, 2)
		n, err := New(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		n.WarmUp(5 * sim.Millisecond)
		var last sim.Time
		n.OnDeliver = func(p *Packet) { last = p.Delivered }
		for i := 0; i < 300; i++ {
			n.Inject(uint16(i%8), 0, uint16((i+3)%8), uint8(i%2), 0, 200+i%1300)
		}
		n.Run(n.Sim.Now() + 2*sim.Millisecond)
		return n.Delivered, n.DeliveredB, last
	}
	d1, b1, t1 := run()
	d2, b2, t2 := run()
	if d1 != d2 || b1 != b2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", d1, b1, t1, d2, b2, t2)
	}
}

// §8's vision: Fabric Adapters reduced to single-port smart NICs attached
// directly to Fabric Elements — "connecting a NIC to a Fabric Element is
// the same as to a ToR". The same core machinery must run a NIC-per-host
// network.
func TestNICVisionSinglePortAdapters(t *testing.T) {
	cfg := testConfig()
	cfg.HostPortsPerFA = 1 // the Fabric Adapter *is* the NIC
	cfg.HostPortBps = 100e9
	// 16 NICs x 2 uplinks over 4 single-tier elements.
	c, err := topo.NewClos1(16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if !n.WarmUp(5 * sim.Millisecond) {
		t.Fatal("NIC fabric did not converge")
	}
	delivered := 0
	n.OnDeliver = func(p *Packet) { delivered++ }
	for i := 0; i < 15; i++ {
		n.Inject(uint16(i), 0, uint16(i+1), 0, 0, 1500)
	}
	n.Run(n.Sim.Now() + 2*sim.Millisecond)
	if delivered != 15 {
		t.Fatalf("NIC-mode delivered %d of 15", delivered)
	}
}

// The FE's mean queue depth accessor must reflect load.
func TestFEQueueDepthAccessor(t *testing.T) {
	n := newTestNet(t, testConfig(), clos1(t))
	for i := 0; i < 200; i++ {
		n.Inject(0, 0, 1, 0, 0, 1500)
	}
	n.Run(n.Sim.Now() + sim.Millisecond)
	any := false
	for _, fe := range n.FEs {
		if fe.MeanQueueDepth() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no FE recorded queue occupancy")
	}
}

// §5.10: a link whose error rate crosses the threshold marks itself
// faulty on reachability cells; receivers exclude it from forwarding, and
// it rejoins only after the threshold of clean keepalives.
func TestFaultyLinkExclusionAndRecovery(t *testing.T) {
	cfg := testConfig()
	n := newTestNet(t, cfg, clos2(t))
	id := topo.NodeID{Kind: topo.KindFA, Index: 0}
	if err := n.SetLinkFaulty(id, 2, true); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Sim.Now() + 5*cfg.ReachInterval)
	if n.FAs[0].Table().Links(5).Get(2) {
		t.Fatal("faulty link still eligible for forwarding")
	}
	// Traffic keeps flowing over the clean links.
	delivered := 0
	n.OnDeliver = func(*Packet) { delivered++ }
	for i := 0; i < 100; i++ {
		n.Inject(0, 0, 5, 0, 0, 900)
	}
	n.Run(n.Sim.Now() + 2*sim.Millisecond)
	if delivered != 100 {
		t.Fatalf("delivered %d of 100 with one faulty link", delivered)
	}
	// Clear the fault: after threshold clean messages the link rejoins.
	if err := n.SetLinkFaulty(id, 2, false); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Sim.Now() + 10*cfg.ReachInterval)
	if !n.FAs[0].Table().Links(5).Get(2) {
		t.Fatal("recovered link not re-admitted")
	}
}
