package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketMixesWellFormed(t *testing.T) {
	for _, name := range Traces {
		sizes, weights := PacketMix(name)
		if len(sizes) != len(weights) || len(sizes) == 0 {
			t.Fatalf("%s: malformed mix", name)
		}
		var sum float64
		for i, w := range weights {
			if w <= 0 || sizes[i] < 64 || sizes[i] > 1500 {
				t.Fatalf("%s: bad entry %d", name, i)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: weights sum to %v", name, sum)
		}
	}
}

func TestTraceCharacter(t *testing.T) {
	// Hadoop must skew large, Web small (the property Fig 8b relies on).
	hadoop := PacketSampler(TraceHadoop).Mean()
	web := PacketSampler(TraceWeb).Mean()
	db := PacketSampler(TraceDB).Mean()
	if hadoop < 1000 {
		t.Fatalf("hadoop mean %v too small", hadoop)
	}
	if web > 600 {
		t.Fatalf("web mean %v too large", web)
	}
	if db < web || db > hadoop {
		t.Fatalf("db mean %v should sit between web and hadoop", db)
	}
}

func TestWebFlowSizes(t *testing.T) {
	d := WebFlowSizes()
	rng := rand.New(rand.NewSource(1))
	small, large := 0, 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := d.Sample(rng)
		if v < 300 || v > 1e7 {
			t.Fatalf("flow size %v out of range", v)
		}
		if v <= 10e3 {
			small++
		}
		if v >= 1e6 {
			large++
		}
	}
	if frac := float64(small) / draws; frac < 0.55 || frac > 0.75 {
		t.Fatalf("P(<=10KB) = %v, want ~0.65", frac)
	}
	if frac := float64(large) / draws; frac > 0.05 {
		t.Fatalf("P(>=1MB) = %v, want <= 0.05 (heavy tail, not heavy body)", frac)
	}
}

func TestNewIncast(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inc := NewIncast(rng, 100, 10, 450_000)
	if len(inc.Backends) != 10 {
		t.Fatalf("backends = %d", len(inc.Backends))
	}
	seen := map[int]bool{inc.Frontend: true}
	for _, b := range inc.Backends {
		if seen[b] {
			t.Fatalf("duplicate node %d", b)
		}
		seen[b] = true
	}
	// Clamp: n >= nodes.
	inc = NewIncast(rng, 5, 10, 1)
	if len(inc.Backends) != 4 {
		t.Fatalf("clamped backends = %d", len(inc.Backends))
	}
}

func TestHotspotMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const nodes = 128
	flows, hot := Hotspot(rng, nodes, 3, 0.5)
	if len(flows) != nodes {
		t.Fatalf("flows = %d, want one per node", len(flows))
	}
	if len(hot) != 3 {
		t.Fatalf("hot = %v", hot)
	}
	isHot := map[int]bool{}
	for _, h := range hot {
		if isHot[h] {
			t.Fatalf("duplicate hot node %d", h)
		}
		isHot[h] = true
	}
	hotFlows := 0
	seenSrc := map[int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
		if f.Src < 0 || f.Src >= nodes || f.Dst < 0 || f.Dst >= nodes {
			t.Fatalf("out of range flow %v", f)
		}
		if seenSrc[f.Src] {
			t.Fatalf("node %d sends twice", f.Src)
		}
		seenSrc[f.Src] = true
		if isHot[f.Dst] {
			hotFlows++
		}
	}
	// Distribution shape: with hotFraction 0.5 roughly half the senders
	// (plus permutation coincidences) aim at a hot node.
	if frac := float64(hotFlows) / nodes; frac < 0.35 || frac > 0.7 {
		t.Fatalf("hot fan-in fraction %.2f, want ~0.5", frac)
	}

	// Determinism: the same seed reproduces the same matrix.
	rng2 := rand.New(rand.NewSource(4))
	flows2, hot2 := Hotspot(rng2, nodes, 3, 0.5)
	for i := range flows {
		if flows[i] != flows2[i] {
			t.Fatalf("flow %d differs across identical seeds", i)
		}
	}
	for i := range hot {
		if hot[i] != hot2[i] {
			t.Fatal("hot set differs across identical seeds")
		}
	}

	// Clamping: more hotspots than nodes.
	flows, hot = Hotspot(rand.New(rand.NewSource(5)), 4, 10, 1.0)
	if len(hot) != 3 || len(flows) != 4 {
		t.Fatalf("clamp: %d hot, %d flows", len(hot), len(flows))
	}
}

func TestAllToAllMatrix(t *testing.T) {
	const nodes = 9
	flows := AllToAll(nodes)
	if len(flows) != nodes*(nodes-1) {
		t.Fatalf("flows = %d, want %d", len(flows), nodes*(nodes-1))
	}
	seen := map[Flow]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
		if seen[f] {
			t.Fatalf("duplicate pair %v", f)
		}
		seen[f] = true
	}
}

func TestIncastMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	flows, frontend := IncastMatrix(rng, 64, 12)
	if len(flows) != 12 {
		t.Fatalf("flows = %d", len(flows))
	}
	srcs := map[int]bool{}
	for _, f := range flows {
		if f.Dst != frontend {
			t.Fatalf("flow %v not aimed at frontend %d", f, frontend)
		}
		if f.Src == frontend || srcs[f.Src] {
			t.Fatalf("bad backend %v", f)
		}
		srcs[f.Src] = true
	}
	// Determinism under a fixed seed.
	flows2, fe2 := IncastMatrix(rand.New(rand.NewSource(6)), 64, 12)
	if fe2 != frontend {
		t.Fatal("frontend differs across identical seeds")
	}
	for i := range flows {
		if flows[i] != flows2[i] {
			t.Fatal("backends differ across identical seeds")
		}
	}
}

func TestFlowArrivalsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	next := FlowArrivals(rng, 1000) // 1000 flows/s -> mean 1ms
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += next()
	}
	mean := sum / n
	if mean < 0.0009 || mean > 0.0011 {
		t.Fatalf("mean inter-arrival %v, want ~0.001", mean)
	}
}

// Property: SplitFlow conserves bytes, respects the MTU, and only the last
// packet is short.
func TestPropertySplitFlow(t *testing.T) {
	f := func(bytesRaw uint32, mtuRaw uint16) bool {
		bytes := int64(bytesRaw % 10_000_000)
		mtu := int(mtuRaw%9000) + 1
		pkts := SplitFlow(bytes, mtu)
		if bytes == 0 {
			return len(pkts) == 0
		}
		var sum int64
		for i, p := range pkts {
			if p <= 0 || p > mtu {
				return false
			}
			if i < len(pkts)-1 && p != mtu {
				return false
			}
			sum += int64(p)
		}
		return sum == bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
