// Command stardust-htsim regenerates the §6.3 protocol comparison
// (Fig 10a-c): permutation throughput, flow-completion times under
// background load, and incast completion, for MPTCP, DCTCP, DCQCN and
// Stardust. Each protocol (and incast fan-in) is an independent scenario
// instance, so -workers=N runs them in parallel.
package main

import (
	"flag"
	"fmt"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	exp := flag.String("exp", "perm", "experiment: perm, fct, incast, hotspot, alltoall, parperm")
	k := flag.Int("k", 8, "fat-tree K (12 = the paper's 432 hosts)")
	durMs := flag.Int("dur", 20, "measurement window in ms")
	protos := flag.String("protos", "all", "comma-separated protocols or all")
	flows := flag.Int("flows", 100, "measured flows for -exp fct")
	incastN := flag.String("incastN", "4,8,16,32", "backend counts for -exp incast")
	fabric := flag.Bool("fabric", false, "run Stardust over the per-link cell fabric (internal/fabric)")
	hot := flag.Int("hot", 2, "hot destinations for -exp hotspot")
	frac := flag.Float64("frac", 0.4, "fraction of senders aimed at a hot destination")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	base := engine.Params{
		"k":      fmt.Sprint(*k),
		"dur_ms": fmt.Sprint(*durMs),
		"proto":  *protos,
		"fabric": fmt.Sprint(*fabric),
	}
	var job engine.Job
	switch *exp {
	case "perm":
		job = engine.Job{Scenario: "htsim/permutation", Params: base}
	case "fct":
		job = engine.Job{Scenario: "htsim/fct", Params: base.With("flows", fmt.Sprint(*flows))}
	case "incast":
		job = engine.Job{Scenario: "htsim/incast", Params: base.With("n", *incastN)}
	case "hotspot":
		job = engine.Job{Scenario: "htsim/hotspot", Params: base.Merge(engine.Params{
			"hot": fmt.Sprint(*hot), "frac": fmt.Sprint(*frac),
		})}
	case "alltoall":
		job = engine.Job{Scenario: "htsim/alltoall", Params: base}
	default:
		job = engine.Job{Scenario: "htsim/" + *exp, Params: base} // engine reports the unknown name
	}
	engine.Main(eng, []engine.Job{job})
}
