package telemetry

import (
	"errors"
	"sync"
)

// ErrStreamFull is returned by a capped Buffer that ran out of room.
var ErrStreamFull = errors.New("telemetry: stream buffer full")

// Buffer is a mutex-guarded append-only byte buffer with a hard cap: the
// stream sink for live runs, written from the simulation goroutine at
// barriers and downloaded concurrently over HTTP. When the cap is hit
// the buffer stops accepting bytes (the recorder latches the error) —
// a capped trace beats an unbounded heap.
type Buffer struct {
	mu        sync.Mutex
	data      []byte
	max       int
	truncated bool
}

// NewBuffer builds a buffer refusing to grow past max bytes (0 means
// 64 MiB).
func NewBuffer(max int) *Buffer {
	if max <= 0 {
		max = 64 << 20
	}
	return &Buffer{max: max}
}

// Write implements io.Writer.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.data)+len(p) > b.max {
		b.truncated = true
		return 0, ErrStreamFull
	}
	b.data = append(b.data, p...)
	return len(p), nil
}

// Bytes returns a copy of the buffered stream.
func (b *Buffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.data...)
}

// Len returns the buffered size.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

// Truncated reports whether a write was ever refused for space.
func (b *Buffer) Truncated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.truncated
}
