package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"stardust/internal/mgmt"
)

// Config wires one stardustd process into the ring.
type Config struct {
	Self   string   // this node's advertised base URL (must be in Peers)
	Peers  []string // every ring member's base URL, self included
	VNodes int      // virtual points per node (0 = DefaultVNodes)

	// Forwarding policy: each candidate peer gets Attempts tries with
	// Backoff doubling between them before placement walks to the next
	// ring node.
	Attempts int           // 0 = 2
	Backoff  time.Duration // 0 = 50ms

	// Client is the HTTP client for peer traffic. Nil builds one with
	// sane timeouts and a keep-alive pool sized for peer fan-in.
	Client *http.Client
}

// Stats counts the node's peer traffic.
type Stats struct {
	Forwards       uint64 `json:"forwards_total"`         // submissions relayed to a peer
	ForwardRetries uint64 `json:"forward_retries_total"`  // per-candidate retry attempts
	Fallbacks      uint64 `json:"fallbacks_total"`        // placements that walked past the owner
	LocalFallbacks uint64 `json:"local_fallbacks_total"`  // placements that fell through to this node
	PeerFetches    uint64 `json:"peer_fetches_total"`     // results pulled from a peer
	PeerFetchMiss  uint64 `json:"peer_fetch_miss_total"`  // keys no peer had
	PeerFetchBytes uint64 `json:"peer_fetch_bytes_total"` // result bytes pulled from peers
}

// Node is the cluster face of one stardustd: consistent-hash placement
// plus the peer HTTP client. It implements mgmt.Cluster.
type Node struct {
	cfg    Config
	ring   *Ring
	client *http.Client

	mu    sync.Mutex
	stats Stats
}

// New validates the membership and builds the node.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address required")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	selfIn := false
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			selfIn = true
		}
	}
	if !selfIn {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", cfg.Self, ring.Nodes())
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &Node{cfg: cfg, ring: ring, client: client}, nil
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// Stats returns a snapshot of the node's peer-traffic counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Ring exposes the placement ring (for tests and diagnostics).
func (n *Node) Ring() *Ring { return n.ring }

// Owner implements mgmt.Cluster.
func (n *Node) Owner(key string) (string, bool) {
	owner := n.ring.Owner(key)
	return owner, owner == n.cfg.Self
}

// count applies a stats bump under the lock.
func (n *Node) count(f func(*Stats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// ForwardSubmit implements mgmt.Cluster: POST the request to the key's
// owner, retrying with doubling backoff, then walk ring successors.
// Any HTTP response — including the owner's own 429 backpressure — is
// final and proxied back verbatim; only transport errors and 5xx move
// placement along the ring. When the walk reaches this node (or every
// peer is unreachable), ErrPlaceLocal tells the caller to run the job
// here.
func (n *Node) ForwardSubmit(ctx context.Context, req mgmt.RunRequest, client string) (*mgmt.ForwardResult, error) {
	key := req.CacheKey()
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding forward: %w", err)
	}
	var lastErr error
	for i, addr := range n.ring.Order(key) {
		if addr == n.cfg.Self {
			// Deterministic fallback lands here: this node is next in ring
			// order, so it accepts the job itself.
			n.count(func(s *Stats) { s.LocalFallbacks++ })
			return nil, mgmt.ErrPlaceLocal
		}
		if i > 0 {
			n.count(func(s *Stats) { s.Fallbacks++ })
		}
		res, err := n.postRun(ctx, addr, blob, client)
		if err == nil {
			n.count(func(s *Stats) { s.Forwards++ })
			res.Served = addr
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	// Every ring member is a remote peer and none answered; the caller
	// falls back to local execution rather than failing the submission.
	n.count(func(s *Stats) { s.LocalFallbacks++ })
	return nil, fmt.Errorf("%w (no peer reachable: %v)", mgmt.ErrPlaceLocal, lastErr)
}

// postRun tries one peer Attempts times with doubling backoff. A 5xx
// answer is treated as peer failure so placement can move on; anything
// else is a definitive answer.
func (n *Node) postRun(ctx context.Context, addr string, blob []byte, client string) (*mgmt.ForwardResult, error) {
	backoff := n.cfg.Backoff
	var lastErr error
	for try := 0; try < n.cfg.Attempts; try++ {
		if try > 0 {
			n.count(func(s *Stats) { s.ForwardRetries++ })
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/api/v1/runs", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("X-Stardust-Forwarded", n.cfg.Self)
		hr.Header.Set("X-Stardust-Client", client)
		resp, err := n.client.Do(hr)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("peer %s: %s", addr, resp.Status)
			continue
		}
		return &mgmt.ForwardResult{
			Status:     resp.StatusCode,
			Body:       body,
			RetryAfter: resp.Header.Get("Retry-After"),
		}, nil
	}
	return nil, lastErr
}

// FetchResult implements mgmt.Cluster: walk the ring from the key's
// owner and return the first peer-held result. A 404 moves on without
// retrying (the peer answered: it does not have the key); transport
// errors retry with backoff before moving on.
func (n *Node) FetchResult(ctx context.Context, key string) ([]byte, string, error) {
	var lastErr error
	for _, addr := range n.ring.Order(key) {
		if addr == n.cfg.Self {
			continue
		}
		backoff := n.cfg.Backoff
		for try := 0; try < n.cfg.Attempts; try++ {
			if try > 0 {
				select {
				case <-ctx.Done():
					return nil, "", ctx.Err()
				case <-time.After(backoff):
				}
				backoff *= 2
			}
			out, err := n.getCache(ctx, addr, key)
			if err == nil {
				n.count(func(s *Stats) { s.PeerFetches++; s.PeerFetchBytes += uint64(len(out)) })
				return out, addr, nil
			}
			lastErr = err
			if err == errPeerMiss {
				break // definitive answer, try the next ring node
			}
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
		}
	}
	n.count(func(s *Stats) { s.PeerFetchMiss++ })
	return nil, "", fmt.Errorf("cluster: no peer holds %s: %v", key, lastErr)
}

// errPeerMiss is a peer's definitive "I don't have that key".
var errPeerMiss = fmt.Errorf("cluster: peer cache miss")

func (n *Node) getCache(ctx context.Context, addr, key string) ([]byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/api/v1/cache/"+key+"?local=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("peer %s: %s", addr, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Info implements mgmt.Cluster: membership, placement shares and
// forwarding counters for /api/v1/cluster.
func (n *Node) Info() any {
	n.mu.Lock()
	stats := n.stats
	n.mu.Unlock()
	return map[string]any{
		"self":   n.cfg.Self,
		"peers":  n.ring.Nodes(),
		"vnodes": n.cfg.VNodes,
		"shares": n.ring.Shares(),
		"stats":  stats,
	}
}
