package telemetry

import (
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// SinkFunc reads one destination FA's cumulative delivery counters at a
// scrape instant. nil means the stream carries no sink series.
type SinkFunc func(fa int) (cells, bytes uint64)

// LinkSource is the slice of a fabric the recorder scrapes — satisfied
// by every fabric.Fabric, whatever the topology.
type LinkSource interface {
	NumLinks() int
	ReadLinkCounters(i int, out *[2]fabric.LinkCounters)
}

// Emitter turns absolute fabric snapshots into canonical stream records:
// link-state transition events (derived from the up bitmap, one per
// topology link) followed by the window itself. Both the in-process
// recorder and the distributed coordinator go through an Emitter, so the
// two pipelines cannot drift apart byte-wise.
type Emitter struct {
	W      *Writer
	prevUp []bool // per topology link (even dir), primed on first window
	primed bool
}

// NewEmitter wraps w.
func NewEmitter(w *Writer) *Emitter {
	return &Emitter{W: w, prevUp: make([]bool, w.hdr.Dirs/2)}
}

// Emit appends snap to the stream. Link-state changes against the
// previous window are recorded as events stamped with the window time —
// the stream is window-quantized, so sub-window timing is deliberately
// not preserved. The first window primes the baseline silently (links
// start up; a link already down at the first scrape is an event).
func (e *Emitter) Emit(snap *Snapshot) error {
	for lk := range e.prevUp {
		up := snap.Dirs[2*lk].Up
		if !e.primed {
			if !up {
				if err := e.W.WriteEvent(snap.T, EvLinkDown, lk); err != nil {
					return err
				}
			}
			e.prevUp[lk] = up
			continue
		}
		if up != e.prevUp[lk] {
			kind := EvLinkDown
			if up {
				kind = EvLinkUp
			}
			if err := e.W.WriteEvent(snap.T, kind, lk); err != nil {
				return err
			}
			e.prevUp[lk] = up
		}
	}
	e.primed = true
	return e.W.WriteWindow(snap)
}

// RecorderStats is the recorder's own telemetry, safe to read while the
// simulation advances.
type RecorderStats struct {
	Windows  uint64   `json:"windows"`
	Bytes    uint64   `json:"bytes"`
	LastT    sim.Time `json:"last_sim_ps"`
	Findings uint64   `json:"findings"`
	Err      string   `json:"error,omitempty"`
}

// Recorder scrapes a fabric at a fixed simulated period and exports every
// scrape as one STREC1 window, flushed in barrier context on a sharded
// engine (so the stream is byte-identical at any shard count) or as an
// ordinary self-rescheduling event on a solo simulator. It can feed the
// same windows to online analyzers.
type Recorder struct {
	emit  *Emitter
	net   LinkSource
	sinks SinkFunc
	every sim.Time
	next  sim.Time

	snap    Snapshot
	scratch [2]fabric.LinkCounters
	view    WindowView
	prev    Snapshot // delta baseline for the online analyzer view
	index   uint64

	mu        sync.Mutex
	stats     RecorderStats
	err       error
	analyzers []Analyzer
	log       *FindingLog
}

// NewRecorder builds a recorder over net writing through w. every is the
// scrape period (must be positive; on a sharded engine it should be a
// multiple of the lookahead so scrape boundaries land on barriers).
// sinks may be nil when the header declares zero FAs.
func NewRecorder(w *Writer, net LinkSource, sinks SinkFunc, every sim.Time) *Recorder {
	if every <= 0 {
		every = sim.Millisecond
	}
	hdr := w.Header()
	r := &Recorder{
		emit:  NewEmitter(w),
		net:   net,
		sinks: sinks,
		every: every,
		next:  every,
	}
	r.snap.Dirs = make([]DirSample, hdr.Dirs)
	r.snap.Sinks = make([]SinkSample, hdr.FAs)
	r.prev.Dirs = make([]DirSample, hdr.Dirs)
	r.prev.Sinks = make([]SinkSample, hdr.FAs)
	r.view = WindowView{
		DFwdBytes:  make([]uint64, hdr.Dirs),
		DFwdCells:  make([]uint64, hdr.Dirs),
		DDrops:     make([]uint64, hdr.Dirs),
		QueueBytes: make([]uint64, hdr.Dirs),
		Up:         make([]bool, hdr.Dirs),
		DSinkCells: make([]uint64, hdr.FAs),
		DSinkBytes: make([]uint64, hdr.FAs),
	}
	return r
}

// Observe attaches online analyzers: every captured window is fed to
// each, and their findings land in the returned FindingLog (bounded,
// safe for concurrent readers — the NDJSON tail endpoint polls it).
func (r *Recorder) Observe(meta *Meta, as ...Analyzer) *FindingLog {
	r.view.Meta = meta
	r.analyzers = append(r.analyzers, as...)
	if r.log == nil {
		r.log = NewFindingLog(1024)
	}
	return r.log
}

// AttachEngine registers the scrape on a sharded engine's barrier: every
// shard quiescent, so reading cross-shard counters cannot race and the
// capture instants (scrape-period boundaries) are identical for every
// shard count and process placement.
func (r *Recorder) AttachEngine(eng *parsim.Engine) {
	eng.OnBarrier(func(now sim.Time) {
		for now >= r.next {
			r.Capture(r.next)
			r.next += r.every
		}
	})
}

// AttachSim schedules the scrape as a self-rescheduling event on a solo
// simulator — the unsharded live-fabric path. The rescheduling keeps the
// simulator permanently non-quiet; use AttachEngine for bounded runs.
func (r *Recorder) AttachSim(s *sim.Simulator) {
	var tick func()
	tick = func() {
		r.Capture(s.Now())
		s.After(r.every, tick)
	}
	s.After(r.every, tick)
}

// Capture scrapes the fabric now and appends one window stamped at. It
// must run with the fabric quiescent (barrier context, or the solo
// simulation goroutine). Errors latch: the first write error stops the
// stream and surfaces in Stats.
func (r *Recorder) Capture(at sim.Time) {
	if r.err != nil {
		return
	}
	n := r.net.NumLinks()
	for i := 0; i < n; i++ {
		r.net.ReadLinkCounters(i, &r.scratch)
		for d := 0; d < 2; d++ {
			lc := &r.scratch[d]
			r.snap.Dirs[2*i+d] = DirSample{
				FwdBytes:   lc.FwdBytes,
				FwdCells:   lc.FwdCells,
				Drops:      lc.Drops,
				QueueBytes: uint64(lc.QueueBytes),
				Up:         lc.Up,
			}
		}
	}
	for fa := range r.snap.Sinks {
		c, b := r.sinks(fa)
		r.snap.Sinks[fa] = SinkSample{Cells: c, Bytes: b}
	}
	r.snap.T = at
	err := r.emit.Emit(&r.snap)

	if len(r.analyzers) > 0 && err == nil {
		r.analyze(at)
	}

	r.mu.Lock()
	if err != nil && r.err == nil {
		r.err = err
		r.stats.Err = err.Error()
	}
	r.stats.Windows = r.emit.W.Windows
	r.stats.Bytes = r.emit.W.Bytes
	r.stats.LastT = at
	if r.log != nil {
		r.stats.Findings = r.log.Total()
	}
	r.mu.Unlock()
}

// analyze feeds the freshly captured window to the online analyzers.
func (r *Recorder) analyze(at sim.Time) {
	v := &r.view
	v.Index = r.index
	v.T = at
	for d := range r.snap.Dirs {
		cur, old := &r.snap.Dirs[d], &r.prev.Dirs[d]
		v.DFwdBytes[d] = cur.FwdBytes - old.FwdBytes
		v.DFwdCells[d] = cur.FwdCells - old.FwdCells
		v.DDrops[d] = cur.Drops - old.Drops
		v.QueueBytes[d] = cur.QueueBytes
		v.Up[d] = cur.Up
	}
	for f := range r.snap.Sinks {
		cur, old := &r.snap.Sinks[f], &r.prev.Sinks[f]
		v.DSinkCells[f] = cur.Cells - old.Cells
		v.DSinkBytes[f] = cur.Bytes - old.Bytes
	}
	copy(r.prev.Dirs, r.snap.Dirs)
	copy(r.prev.Sinks, r.snap.Sinks)
	r.index++
	for _, a := range r.analyzers {
		r.log.Append(a.Window(v)...)
	}
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Err returns the latched stream error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
