// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds, which is fine enough to express a
// single byte on a 100 Gbps serial link (80 ps) exactly while still allowing
// simulations that span days of virtual time in an int64.
//
// Events are ordered by (time, sequence-of-scheduling), so two events
// scheduled for the same instant fire in the order they were scheduled; this
// makes every simulation in this repository reproducible bit-for-bit.
package sim

import "container/heap"

// Time is a point in simulated time, in picoseconds.
type Time int64

// Convenient duration constants, all expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1].fn = nil
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Simulator struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events executed so far; useful for budgeting runs.
	Processed uint64
}

// New returns a Simulator starting at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events waiting to run.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now()) runs the event at the current time instead, preserving causality.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes events with timestamps <= deadline. The clock is left at
// min(deadline, time of last event executed); if events remain they stay
// queued for a later Run/RunUntil call.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

func (s *Simulator) step() {
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.Processed++
	e.fn()
}

// Timer is a cancellable, re-armable timer bound to a Simulator.
type Timer struct {
	sim     *Simulator
	gen     int
	armed   bool
	expires Time
}

// NewTimer returns an unarmed timer.
func NewTimer(s *Simulator) *Timer { return &Timer{sim: s} }

// Arm (re)schedules fn to fire after d. Any previously armed deadline is
// cancelled.
func (t *Timer) Arm(d Time, fn func()) {
	t.gen++
	gen := t.gen
	t.armed = true
	t.expires = t.sim.Now() + d
	t.sim.After(d, func() {
		if t.gen != gen || !t.armed {
			return
		}
		t.armed = false
		fn()
	})
}

// Cancel disarms the timer. It is safe to call on an unarmed timer.
func (t *Timer) Cancel() { t.armed = false; t.gen++ }

// Armed reports whether the timer is currently armed.
func (t *Timer) Armed() bool { return t.armed }

// Expires returns the absolute deadline of the last Arm call.
func (t *Timer) Expires() Time { return t.expires }
