package cluster

import (
	"fmt"
	"testing"
)

func ringOf(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r, err := NewRing(nodes, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Every member must build the identical ring regardless of the order
// (or duplication) of the peer list it was configured with.
func TestRingDeterministicAcrossMembers(t *testing.T) {
	a := ringOf(t, "http://n1:8080", "http://n2:8080", "http://n3:8080")
	b := ringOf(t, "http://n3:8080", "http://n1:8080", "http://n2:8080", "http://n1:8080")
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("members disagree on owner of %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		ao, bo := a.Order(key), b.Order(key)
		if len(ao) != 3 || len(bo) != 3 {
			t.Fatalf("order length: %v %v", ao, bo)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("members disagree on order of %q: %v vs %v", key, ao, bo)
			}
		}
	}
}

// Order starts at the owner, visits every node exactly once, and is
// stable for a fixed key.
func TestRingOrder(t *testing.T) {
	r := ringOf(t, "http://n1:8080", "http://n2:8080", "http://n3:8080", "http://n4:8080")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := r.Order(key)
		if order[0] != r.Owner(key) {
			t.Fatalf("order %v does not start at owner %s", order, r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("order %v repeats %s", order, n)
			}
			seen[n] = true
		}
		if len(seen) != 4 {
			t.Fatalf("order %v misses nodes", order)
		}
	}
}

// Removing a node only moves keys that the dead node owned; survivors'
// keys stay put (the point of consistent hashing).
func TestRingStabilityUnderNodeLoss(t *testing.T) {
	full := ringOf(t, "http://n1:8080", "http://n2:8080", "http://n3:8080")
	reduced := ringOf(t, "http://n1:8080", "http://n2:8080")
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := full.Owner(key)
		now := reduced.Owner(key)
		if was != "http://n3:8080" {
			if was != now {
				t.Fatalf("key %q moved from surviving node %s to %s", key, was, now)
			}
			continue
		}
		moved++
		// An orphaned key must land on the dead node's ring successor.
		order := full.Order(key)
		if order[1] != now {
			t.Fatalf("orphaned key %q went to %s, ring successor is %s", key, now, order[1])
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by n3 in the sample — test is vacuous")
	}
}

// Virtual nodes keep placement roughly balanced.
func TestRingShares(t *testing.T) {
	r := ringOf(t, "http://n1:8080", "http://n2:8080", "http://n3:8080")
	shares := r.Shares()
	var sum float64
	for node, s := range shares {
		sum += s
		if s < 0.15 || s > 0.55 {
			t.Fatalf("node %s share %.3f is badly unbalanced", node, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %.4f", sum)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, DefaultVNodes); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, DefaultVNodes); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := ringOf(t, "http://solo:8080")
	if r.Owner("anything") != "http://solo:8080" {
		t.Fatal("single node does not own everything")
	}
	if o := r.Order("anything"); len(o) != 1 || o[0] != "http://solo:8080" {
		t.Fatalf("order %v", o)
	}
}
