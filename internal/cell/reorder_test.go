package cell

import (
	"math/rand"
	"testing"

	"stardust/internal/sim"
)

// skewShuffle reorders cells within a bounded window: cell i may only
// arrive up to skew positions away from its slot. This is the reorder
// profile per-link spraying actually produces (bounded by Fabric Element
// queue depth, §4.1), unlike a full permutation.
func skewShuffle(rng *rand.Rand, n, skew int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := range order {
		j := i + rng.Intn(skew)
		if j >= n {
			j = n - 1
		}
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Streaming out-of-order arrival across many consecutive batches: the
// cursor must advance through thousands of cells (wrapping the 16-bit
// sequence space) with every packet completing in order.
func TestReassembleStreamingBoundedSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFragmenter(DefaultCellSize, true)
	r := NewReassembler(256, sim.Millisecond)
	now := sim.Time(0)
	var completed uint64
	const batches = 3500 // enough cells to wrap the uint16 sequence space
	var nextID uint64
	for b := 0; b < batches; b++ {
		var batch []PacketRef
		for i := 0; i < rng.Intn(6)+1; i++ {
			nextID++
			batch = append(batch, PacketRef{ID: nextID, Size: rng.Intn(4000) + 1})
		}
		cells := f.Fragment(0, 1, 0, batch)
		for _, i := range skewShuffle(rng, len(cells), 16) {
			now += sim.Microsecond
			for _, p := range r.Push(now, cells[i]) {
				completed++
				if p.ID != completed {
					t.Fatalf("batch %d: packet %d completed at position %d", b, p.ID, completed)
				}
			}
		}
	}
	if completed != nextID {
		t.Fatalf("completed %d of %d packets", completed, nextID)
	}
	if r.Discarded != 0 || r.Resyncs != 0 {
		t.Fatalf("loss-free stream discarded: %+v", r)
	}
	if r.CellsSeen <= 1<<16 {
		// The point of the test is exercising wraparound; make sure the
		// stream was actually long enough.
		t.Fatalf("stream too short to wrap: %d cells", r.CellsSeen)
	}
}

// Same seed, same arrival order => identical completions and stats; the
// reassembler must be deterministic for the engine's byte-identical
// guarantee.
func TestReassembleReorderDeterministic(t *testing.T) {
	run := func() (uint64, uint64, uint16) {
		rng := rand.New(rand.NewSource(77))
		f := NewFragmenter(DefaultCellSize, true)
		r := NewReassembler(128, sim.Millisecond)
		var done uint64
		for b := 0; b < 50; b++ {
			var batch []PacketRef
			for i := 0; i < rng.Intn(4)+1; i++ {
				batch = append(batch, PacketRef{ID: uint64(b*10 + i + 1), Size: rng.Intn(2000) + 1})
			}
			cells := f.Fragment(0, 1, 0, batch)
			for _, i := range skewShuffle(rng, len(cells), 8) {
				done += uint64(len(r.Push(sim.Time(b), cells[i])))
			}
		}
		return done, r.CellsSeen, r.Cursor()
	}
	d1, c1, s1 := run()
	d2, c2, s2 := run()
	if d1 != d2 || c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, c1, s1, d2, c2, s2)
	}
}

// Two interleaved (source, TC) streams each get their own reassembler at
// the destination FA; arbitrary interleaving of the two arrival orders
// must not cross-contaminate them.
func TestReassembleTwoStreamsInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fA := NewFragmenter(DefaultCellSize, true)
	fB := NewFragmenter(DefaultCellSize, true)
	cellsA := fA.Fragment(0, 1, 0, refs(900, 64, 2000, 333))
	cellsB := fB.Fragment(2, 1, 0, refs(128, 5000))
	rA := NewReassembler(64, sim.Millisecond)
	rB := NewReassembler(64, sim.Millisecond)

	type arrival struct {
		r *Reassembler
		c *Cell
	}
	var arrivals []arrival
	for _, i := range skewShuffle(rng, len(cellsA), 4) {
		arrivals = append(arrivals, arrival{rA, cellsA[i]})
	}
	for _, i := range skewShuffle(rng, len(cellsB), 4) {
		arrivals = append(arrivals, arrival{rB, cellsB[i]})
	}
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

	var doneA, doneB []PacketRef
	for i, a := range arrivals {
		out := a.r.Push(sim.Time(i), a.c)
		if a.r == rA {
			doneA = append(doneA, out...)
		} else {
			doneB = append(doneB, out...)
		}
	}
	wantA := []int{900, 64, 2000, 333}
	if len(doneA) != len(wantA) {
		t.Fatalf("stream A completed %d of %d", len(doneA), len(wantA))
	}
	for i, p := range doneA {
		if p.Size != wantA[i] {
			t.Fatalf("stream A order: got %v", doneA)
		}
	}
	wantB := []int{128, 5000}
	if len(doneB) != len(wantB) {
		t.Fatalf("stream B completed %d of %d", len(doneB), len(wantB))
	}
	for i, p := range doneB {
		if p.Size != wantB[i] {
			t.Fatalf("stream B order: got %v", doneB)
		}
	}
}
