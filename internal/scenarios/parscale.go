package scenarios

import (
	"encoding/binary"
	"fmt"
	"hash"
	"os"
	"strings"
	"time"

	"stardust/internal/distsim"
	"stardust/internal/engine"
	"stardust/internal/fabric"
	"stardust/internal/sim"
)

// digest64 folds v into h little-endian — the one serialization both the
// parscale and parperm digests use, so their encodings can never drift.
func digest64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// Scenarios over the sharded (parallel) fabric engine: parscale sweeps
// shards×K and reports the deterministic traffic outcome — plus, in
// timings mode, events/sec and the speedup over one shard; parheal drives
// a scripted fail/heal schedule through the sharded engine and checks the
// conservation and self-healing invariants. Both emit a canonical digest
// of every per-link counter, so the CI determinism matrix can compare the
// full fabric state, not just aggregate counts, across {workers}×{shards}.

// parRun is the outcome of one sharded fabric run. Everything except wall
// is a deterministic function of (seed, parameters) — independent of the
// shard count, which is the whole point.
type parRun struct {
	injected    uint64
	delivered   uint64
	drops       uint64
	events      uint64
	unreachable int
	digest      uint64
	wall        time.Duration
	shardEvents []uint64
	migrations  uint64
}

// parSpec assembles the distsim Spec shared by the parscale family: the
// model construction itself lives in distsim.NewModel so the in-process,
// coordinator, and remote-peer replicas are one code path.
func parSpec(seed int64, topo string, k, shards int, dur sim.Time, load float64, pattern string, cellBytes int, hotspot float64, failN int, failAt, healAt sim.Time) distsim.Spec {
	return distsim.Spec{
		K: k, Topo: topo, Seed: seed, Shards: shards, Dur: dur, Load: load,
		Pattern: pattern, CellBytes: cellBytes, Hotspot: hotspot,
		FailN: failN, FailAt: failAt, HealAt: healAt,
	}
}

func fromOutcome(out distsim.Outcome, wall time.Duration, migrations uint64) parRun {
	return parRun{
		injected:    out.Injected,
		delivered:   out.Delivered,
		drops:       out.Drops,
		events:      out.Events,
		unreachable: out.Unreachable,
		digest:      out.Digest,
		wall:        wall,
		shardEvents: out.ShardEvents,
		migrations:  migrations,
	}
}

// runShardedFabric executes spec with in-process goroutine shards.
// rebalance turns on the adaptive group planner, which must not change
// any deterministic output — only the per-shard event split.
func runShardedFabric(spec distsim.Spec, rebalance bool) (parRun, error) {
	m, err := distsim.NewModel(spec)
	if err != nil {
		return parRun{}, err
	}
	if rebalance {
		if err := m.Net.EnableRebalancing(fabric.DefaultRebalance()); err != nil {
			return parRun{}, err
		}
	}
	t0 := time.Now()
	out, err := m.RunLocal()
	if err != nil {
		return parRun{}, err
	}
	return fromOutcome(out, time.Since(t0), m.Net.Migrations()), nil
}

// runDistFabric executes spec as a distributed coordinator: it listens on
// c.DistListen, waits for c.DistPeers peer processes (started with -join
// or devnet), and drives the run over the wire. The outcome is
// byte-identical to runShardedFabric on the same spec — that equivalence
// is what the distributed CI job diffs.
func runDistFabric(spec distsim.Spec, c engine.Context) (parRun, error) {
	l, err := distsim.Listen(c.DistListen)
	if err != nil {
		return parRun{}, err
	}
	// The resolved address goes to stderr: with -listen :0 the peers need
	// it, and stdout must stay byte-identical to the in-process run.
	fmt.Fprintf(os.Stderr, "distsim: coordinator listening on %s for %d peer(s)\n", l.Addr(), c.DistPeers)
	t0 := time.Now()
	out, err := distsim.Serve(l, distsim.CoordConfig{
		Spec:   spec,
		Peers:  c.DistPeers,
		Rejoin: true,
	})
	if err != nil {
		return parRun{}, err
	}
	return fromOutcome(out, time.Since(t0), 0), nil
}

// addShardSplit emits the per-shard event counts, the imbalance ratio
// (max shard's share over the even split, 1.0 = perfectly balanced) and
// the migration count — deterministic, but a function of the shard
// count, so they follow the same rule as the shards echo in
// addParMetrics: emitted only when the shard count was an explicit
// scenario parameter, never when it came from the -shards flag the CI
// determinism matrix sweeps.
func addShardSplit(res *engine.Result, b *strings.Builder, r parRun) {
	var sum, max uint64
	for _, ev := range r.shardEvents {
		sum += ev
		if ev > max {
			max = ev
		}
	}
	if sum == 0 {
		return
	}
	imb := float64(max) * float64(len(r.shardEvents)) / float64(sum)
	for i, ev := range r.shardEvents {
		res.Add(fmt.Sprintf("shard%d_events", i), float64(ev), "")
	}
	res.Add("imbalance", imb, "x")
	res.Add("migrations", float64(r.migrations), "")
	fmt.Fprintf(b, "  shard events %d", r.shardEvents)
	fmt.Fprintf(b, ", imbalance %.3fx, migrations %d\n", imb, r.migrations)
}

// addParMetrics emits the deterministic half of a parRun. shardsParam is
// the *requested* shard count (0 = the -shards flag): echoing the
// resolved count would make otherwise byte-identical runs differ by their
// label alone, defeating the CI determinism diff across -shards values.
func addParMetrics(res *engine.Result, k, shardsParam int, r parRun) {
	res.Add("k", float64(k), "")
	if shardsParam != 0 {
		res.Add("shards", float64(shardsParam), "")
	}
	res.Add("injected_cells", float64(r.injected), "")
	res.Add("delivered_cells", float64(r.delivered), "")
	res.Add("dropped_cells", float64(r.drops), "")
	res.Add("unreachable_pairs", float64(r.unreachable), "")
	res.Add("events", float64(r.events), "")
	res.Add("digest_lo", float64(uint32(r.digest)), "")
	res.Add("digest_hi", float64(r.digest>>32), "")
}

// parVariants expands comma-separated k, shards and topo lists into one
// instance per combination. An empty topo list means "the -topo flag",
// one unexpanded instance.
func parVariants(p engine.Params) []engine.Params {
	topos := splitList(p.Str("topo", ""))
	if len(topos) == 0 {
		topos = []string{""}
	}
	var out []engine.Params
	for _, t := range topos {
		for _, k := range splitList(p.Str("k", "4")) {
			for _, s := range splitList(p.Str("shards", "0")) {
				out = append(out, p.With("topo", t).With("k", k).With("shards", s))
			}
		}
	}
	return out
}

// shardLabel renders the requested shard count for the text report —
// empty when it comes from the -shards flag, so runs differing only in
// that flag stay byte-identical (the CI determinism matrix diffs them).
func shardLabel(c engine.Context) string {
	if s := c.Params.Int("shards", 0); s != 0 {
		return fmt.Sprintf(" shards=%d", s)
	}
	return ""
}

// effectiveShards resolves the shards parameter: 0 means "use the -shards
// flag", and anything below 1 clamps to 1.
func effectiveShards(c engine.Context) int {
	s := c.Params.Int("shards", 0)
	if s == 0 {
		s = c.Shards
	}
	if s < 1 {
		s = 1
	}
	return s
}

// effectiveTopo resolves the topo parameter: empty means "use the -topo
// flag" (which itself defaults to the Clos).
func effectiveTopo(c engine.Context) string {
	if t := c.Params.Str("topo", ""); t != "" {
		return t
	}
	return c.Topo
}

// topoLabel renders the requested topology for the text report — empty
// when it comes from the -topo flag, following the same rule as
// shardLabel: runs differing only in a swept flag stay byte-identical,
// and the CI determinism matrix sweeps -topo alongside -shards.
func topoLabel(c engine.Context) string {
	if t := c.Params.Str("topo", ""); t != "" {
		return fmt.Sprintf(" topo=%s", t)
	}
	return ""
}

func init() {
	engine.Register(engine.Scenario{
		Name: "fabric/parscale",
		Desc: "sharded-engine scaling sweep: shards×K, deterministic traffic digest (+ events/sec and speedup with timings=true)",
		Defaults: engine.Params{
			"k": "4", "shards": "0", "topo": "", "pattern": "", "dur_ms": "5", "load": "0.5", "cell": "512",
			"hotspot": "1", "rebalance": "false", "timings": "false",
		},
		Docs: map[string]string{
			"k":         "fat-tree K sizing the Clos (comma list sweeps)",
			"shards":    "event-loop shards; 0 = the -shards flag (comma list sweeps). Explicit values also report the per-shard event split",
			"topo":      "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag (comma list sweeps)",
			"pattern":   "traffic matrix: rotate (all-to-all over time, the default), permutation, incast",
			"dur_ms":    "injection duration in ms",
			"load":      "offered load per FA as a fraction of its uplink capacity",
			"cell":      "cell size in bytes",
			"hotspot":   "boost factor for the first quarter of the FAs (>1 = skewed matrix, changes the offered traffic)",
			"rebalance": "true enables adaptive shard rebalancing; every deterministic output stays byte-identical, only the per-shard split moves",
			"timings":   "true adds wall-clock events/sec (total and per core) and speedup vs one shard — nondeterministic output, keep off when diffing runs",
		},
		Variants: parVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			shards := effectiveShards(c)
			dur := msTime(c.Params.Int("dur_ms", 5))
			load := c.Params.Float("load", 0.5)
			cell := c.Params.Int("cell", 512)
			hotspot := c.Params.Float("hotspot", 1)
			rebalance := c.Params.Bool("rebalance", false)
			spec := parSpec(c.Seed, effectiveTopo(c), k, shards, dur, load,
				c.Params.Str("pattern", ""), cell, hotspot, 0, 0, 0)
			var r parRun
			var err error
			if c.DistPeers > 0 {
				if rebalance {
					return engine.Result{}, fmt.Errorf("parscale: adaptive rebalancing is in-process only (drop rebalance=true or -peers)")
				}
				if c.Params.Bool("timings", false) {
					return engine.Result{}, fmt.Errorf("parscale: timings compare against an in-process reference and are unavailable with -peers")
				}
				r, err = runDistFabric(spec, c)
			} else {
				r, err = runShardedFabric(spec, rebalance)
			}
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			addParMetrics(&res, k, c.Params.Int("shards", 0), r)
			var b strings.Builder
			fmt.Fprintf(&b, "parscale K=%d%s%s: %d cells injected, %d delivered, %d dropped, %d events, digest %016x\n",
				k, topoLabel(c), shardLabel(c), r.injected, r.delivered, r.drops, r.events, r.digest)
			if c.Params.Int("shards", 0) != 0 {
				addShardSplit(&res, &b, r)
			}
			if c.Params.Bool("timings", false) {
				ref := r
				if shards != 1 {
					ref1 := spec
					ref1.Shards = 1
					if ref, err = runShardedFabric(ref1, rebalance); err != nil {
						return engine.Result{}, err
					}
					if ref.digest != r.digest {
						return engine.Result{}, fmt.Errorf("parscale: shards=%d digest %016x diverged from shards=1 %016x",
							shards, r.digest, ref.digest)
					}
				}
				evps := float64(r.events) / r.wall.Seconds()
				speedup := ref.wall.Seconds() / r.wall.Seconds()
				res.Add("events_per_sec", evps, "1/s")
				res.Add("events_per_sec_per_core", evps/float64(shards), "1/s")
				res.Add("speedup_vs_1", speedup, "x")
				fmt.Fprintf(&b, "  wall %v, %.0f events/sec (%.0f per core), %.2fx vs one shard (byte-identical digest)\n",
					r.wall.Round(time.Millisecond), evps, evps/float64(shards), speedup)
			}
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "fabric/parheal",
		Desc: "sharded fail/heal schedule: conservation and §5.9 self-healing under the parallel engine, deterministic digest",
		Defaults: engine.Params{
			"k": "4", "shards": "0", "topo": "", "pattern": "", "dur_ms": "6", "load": "0.4", "cell": "512",
			"fail": "3", "fail_ms": "2", "heal_ms": "4",
		},
		Docs: map[string]string{
			"k":       "fat-tree K sizing the Clos",
			"shards":  "event-loop shards; 0 = the -shards flag",
			"topo":    "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag",
			"pattern": "traffic matrix: rotate (all-to-all over time, the default), permutation, incast",
			"dur_ms":  "injection duration in ms",
			"load":    "offered load per FA as a fraction of its uplink capacity",
			"cell":    "cell size in bytes",
			"fail":    "seed-chosen links to fail",
			"fail_ms": "failure instant in ms",
			"heal_ms": "heal instant in ms",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			shards := effectiveShards(c)
			spec := parSpec(c.Seed, effectiveTopo(c), k, shards,
				msTime(c.Params.Int("dur_ms", 6)),
				c.Params.Float("load", 0.4),
				c.Params.Str("pattern", ""),
				c.Params.Int("cell", 512),
				1,
				c.Params.Int("fail", 3),
				msTime(c.Params.Int("fail_ms", 2)),
				msTime(c.Params.Int("heal_ms", 4)))
			var r parRun
			var err error
			if c.DistPeers > 0 {
				r, err = runDistFabric(spec, c)
			} else {
				r, err = runShardedFabric(spec, false)
			}
			if err != nil {
				return engine.Result{}, err
			}
			if leak := r.injected - r.delivered - r.drops; leak != 0 {
				return engine.Result{}, fmt.Errorf("parheal: %d cells unaccounted for", leak)
			}
			if r.unreachable != 0 {
				return engine.Result{}, fmt.Errorf("parheal: %d unreachable pairs after heal", r.unreachable)
			}
			var res engine.Result
			addParMetrics(&res, k, c.Params.Int("shards", 0), r)
			res.Text = fmt.Sprintf("parheal K=%d%s%s: %d injected, %d delivered, %d dropped (conserved), 0 unreachable after heal, digest %016x\n",
				k, topoLabel(c), shardLabel(c), r.injected, r.delivered, r.drops, r.digest)
			return res, nil
		},
	})
}
