package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Histogram is a fixed-bucket concurrent histogram in the Prometheus
// style: Bounds are upper bucket edges, observations above the last
// bound land in the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n bounds starting at start, each factor× the last —
// the usual latency/byte-size ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket (not cumulative), last is +Inf
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// WriteProm renders the snapshot as a Prometheus text-format histogram
// family (cumulative le buckets, _sum, _count).
func WriteProm(w io.Writer, name, help string, s HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
