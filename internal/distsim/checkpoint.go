// Checkpointing by deterministic replay.
//
// Because every peer is a deterministic function of (Spec, partition map,
// inbound mail sequence), a checkpoint does not need event heaps or
// device state: the coordinator simply retains, per peer, the mail batch
// it delivered going into every window. A replacement peer rebuilds the
// model from the Spec, replays windows [0, W) by re-injecting the logged
// batches and re-executing — discarding its outbound mail, which the
// other peers already received — and arrives at the exact barrier state
// the dead peer held, ready to go live at window W. The other peers
// simply block at the barrier until the replacement's DONE arrives;
// barriers are global sync points, so no rollback is ever needed and the
// final digest is unchanged.
//
// The log lives in coordinator memory for the duration of the run. With
// CheckpointDir set it is additionally streamed to one append-only file
// per peer:
//
//	file   := "SDCKPT1\n" | uvarint len | header-JSON | record*
//	record := uvarint window | uvarint len | mailbatch
//
// so a run's full mail history survives the coordinator for post-mortem
// replay (time-travel debugging of invariant failures).
package distsim

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const ckptMagic = "SDCKPT1\n"

// ckptHeader identifies what a checkpoint file replays.
type ckptHeader struct {
	Spec   Spec  `json:"spec"`
	Peer   int   `json:"peer"`
	NPeers int   `json:"npeers"`
	Owners []int `json:"owners"`
}

// mailLog is the in-memory checkpoint: per peer, the inbound mail batch
// of every window, in window order.
type mailLog struct {
	windows [][][]byte // [peer][window] -> mail batch
	files   []*os.File // nil without CheckpointDir
}

func newMailLog(npeers int, dir string, spec Spec, owners []int) (*mailLog, error) {
	l := &mailLog{windows: make([][][]byte, npeers)}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l.files = make([]*os.File, npeers)
	for p := range l.files {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("peer%d.ckpt", p)))
		if err != nil {
			l.close()
			return nil, err
		}
		hdr, err := json.Marshal(ckptHeader{Spec: spec, Peer: p, NPeers: npeers, Owners: owners})
		if err != nil {
			l.close()
			return nil, err
		}
		buf := append([]byte(ckptMagic), binary.AppendUvarint(nil, uint64(len(hdr)))...)
		buf = append(buf, hdr...)
		if _, err := f.Write(buf); err != nil {
			l.close()
			return nil, err
		}
		l.files[p] = f
	}
	return l, nil
}

// log records the batch delivered to peer p going into window w. Windows
// are logged densely in order — the barrier loop guarantees it.
func (l *mailLog) log(p, w int, batch []byte) error {
	if w != len(l.windows[p]) {
		return fmt.Errorf("distsim: checkpoint log out of order: peer %d window %d, have %d", p, w, len(l.windows[p]))
	}
	l.windows[p] = append(l.windows[p], batch)
	if l.files != nil {
		rec := binary.AppendUvarint(nil, uint64(w))
		rec = binary.AppendUvarint(rec, uint64(len(batch)))
		rec = append(rec, batch...)
		if _, err := l.files[p].Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// mailFor returns peer p's logged batches for windows [0, w).
func (l *mailLog) mailFor(p, w int) [][]byte {
	return l.windows[p][:w]
}

func (l *mailLog) close() {
	for _, f := range l.files {
		if f != nil {
			f.Close()
		}
	}
}

// LoadCheckpoint reads one peer's checkpoint file back: the header and
// the per-window mail batches, exactly the resume payload a WELCOME
// carries. It is the offline half of the format — what a post-mortem
// replay tool feeds to a fresh Model.
func LoadCheckpoint(path string) (ckptHeader, [][]byte, error) {
	var hdr ckptHeader
	data, err := os.ReadFile(path)
	if err != nil {
		return hdr, nil, err
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return hdr, nil, fmt.Errorf("distsim: %s: not a checkpoint file", path)
	}
	data = data[len(ckptMagic):]
	hlen, k := binary.Uvarint(data)
	if k <= 0 || uint64(len(data[k:])) < hlen {
		return hdr, nil, fmt.Errorf("distsim: %s: truncated checkpoint header", path)
	}
	if err := json.Unmarshal(data[k:k+int(hlen)], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("distsim: %s: %w", path, err)
	}
	data = data[k+int(hlen):]
	var batches [][]byte
	for len(data) > 0 {
		w, k1 := binary.Uvarint(data)
		if k1 <= 0 {
			return hdr, nil, fmt.Errorf("distsim: %s: truncated record", path)
		}
		blen, k2 := binary.Uvarint(data[k1:])
		if k2 <= 0 || uint64(len(data[k1+k2:])) < blen {
			return hdr, nil, io.ErrUnexpectedEOF
		}
		if int(w) != len(batches) {
			return hdr, nil, fmt.Errorf("distsim: %s: window %d out of order", path, w)
		}
		batches = append(batches, data[k1+k2:k1+k2+int(blen)])
		data = data[k1+k2+int(blen):]
	}
	return hdr, batches, nil
}
