// The pluggable topology contract. A Graph is any device/link graph the
// cell fabric can run on: it names its devices (with stable labels, roles
// and tiers for the management inventory), enumerates its full-duplex
// links, and — the routing seam — computes loop-free multipath forwarding
// tables for any live-link mask. topo.Clos is one implementation (the
// paper's fabric); SpaceShuffle and StarReplaced are structurally
// different graphs the same scenarios run on unchanged.
//
// Every Graph also renders a canonical Spec string ("family:k=v,..."),
// parseable by ParseSpec. The spec is the single source of truth for
// sizing: content addressing, telemetry stream headers and distsim model
// hashes all embed it, so two processes given the same spec can never
// build different models.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NodeInfo describes one device of a Graph.
type NodeInfo struct {
	Name  string // stable device label, e.g. "FA3", "SS5", "SRV9"
	Role  string // device role, e.g. "FA", "FE1", "FE2", "SS", "SW", "SRV"
	Tier  int    // 0 = edge tier, increasing toward the core
	Ports int    // local port count; every link endpoint names one
}

// GraphLink is one full-duplex link between two flat node indices. The
// directed-link convention everywhere in the repo: for topology link i,
// directed link 2i is A->B and 2i+1 is B->A.
type GraphLink struct {
	A, B         int
	APort, BPort int
}

// Graph is the topology surface the fabric, management inventory,
// telemetry metadata and distsim specs operate over.
//
// Routes is the routing seam. For the live-link mask up (indexed like
// GraphLinks), it returns:
//
//   - descend[n][e]: the ports of node n that make guaranteed progress
//     toward edge device e's node over live links. Following any descend
//     candidate strictly decreases a potential (ring distance, BFS
//     distance, tier), so any spray over the set is loop-free.
//   - climb[n]: detour ports a cell may use only while it has never
//     descended (the Clos no-valley rule generalized). Climb hops must be
//     strictly tier-ascending so they cannot loop either; graphs without
//     a detour tier return nil entries.
//
// The result must be a pure function of (graph, up) with every port list
// sorted ascending — byte-determinism across shard counts and processes
// depends on it.
type Graph interface {
	Spec() string
	NumNodes() int
	Node(i int) NodeInfo
	NumTiers() int
	// NumEdge counts the edge devices — the traffic sources/sinks
	// ("Fabric Adapters" in Clos terms). EdgeNode maps edge index to
	// node index.
	NumEdge() int
	EdgeNode(e int) int
	GraphLinks() []GraphLink
	Routes(up []bool) (descend [][][]int, climb [][]int)
}

// EdgeOfNode returns a node-index -> edge-index lookup (-1 for interior
// nodes).
func EdgeOfNode(g Graph) []int {
	m := make([]int, g.NumNodes())
	for i := range m {
		m[i] = -1
	}
	for e := 0; e < g.NumEdge(); e++ {
		m[g.EdgeNode(e)] = e
	}
	return m
}

// EdgeUplinkDirs groups the directed links leaving each edge device:
// out[e] lists, ascending, every dir index whose sending endpoint is
// EdgeNode(e). This is the spray set whose per-link balance the linkload
// experiment and the telemetry imbalance analyzer measure, derived one
// way for every topology.
func EdgeUplinkDirs(g Graph) [][]int {
	edgeOf := EdgeOfNode(g)
	out := make([][]int, g.NumEdge())
	for i, lk := range g.GraphLinks() {
		if e := edgeOf[lk.A]; e >= 0 {
			out[e] = append(out[e], 2*i)
		}
		if e := edgeOf[lk.B]; e >= 0 {
			out[e] = append(out[e], 2*i+1)
		}
	}
	return out
}

// portPeers builds the port-indexed adjacency of g over live links:
// peer[n][p] is the far-end node of port p (-1 when unwired or the link
// is down). Shared by the BFS route builder and the graph validators.
func portPeers(g Graph, up []bool) [][]int {
	peer := make([][]int, g.NumNodes())
	for i := range peer {
		peer[i] = make([]int, g.Node(i).Ports)
		for p := range peer[i] {
			peer[i][p] = -1
		}
	}
	for i, lk := range g.GraphLinks() {
		if up != nil && !up[i] {
			continue
		}
		peer[lk.A][lk.APort] = lk.B
		peer[lk.B][lk.BPort] = lk.A
	}
	return peer
}

// bfsRoutes computes distance-decreasing multipath tables toward every
// edge device over the live subgraph: descend[n][e] lists node n's live
// ports whose far end is strictly closer (by live-graph BFS hop count) to
// EdgeNode(e). Any walk over the candidates strictly decreases the BFS
// distance, so the tables are loop-free for any live mask; nodes cut off
// from the destination get an empty list (the fabric counts the drop).
func bfsRoutes(g Graph, up []bool) [][][]int {
	nn := g.NumNodes()
	peer := portPeers(g, up)
	descend := make([][][]int, nn)
	for n := range descend {
		descend[n] = make([][]int, g.NumEdge())
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, nn)
	queue := make([]int, 0, nn)
	for e := 0; e < g.NumEdge(); e++ {
		t := g.EdgeNode(e)
		for i := range dist {
			dist[i] = inf
		}
		dist[t] = 0
		queue = append(queue[:0], t)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range peer[u] {
				if v >= 0 && dist[v] == inf {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for n := 0; n < nn; n++ {
			if n == t || dist[n] == inf {
				continue
			}
			for p, v := range peer[n] {
				if v >= 0 && dist[v] < dist[n] {
					descend[n][e] = append(descend[n][e], p)
				}
			}
		}
	}
	return descend
}

// ByName sizes a named topology family comparably to the Clos fronting a
// k-ary fat-tree (fabric.ClosFor): every family gets k²/2 edge devices,
// so the same scenario parameters offer the same aggregate load on each.
//
//	clos      — the paper's two-tier Clos (ClosForK)
//	sshuffle  — Space Shuffle: k²/2 switches on 3 random ring spaces
//	star      — star-replaced circulant: k²/2 dual-port servers
func ByName(name string, k int) (Graph, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topo: k must be even and >= 4, got %d", k)
	}
	switch name {
	case "", "clos":
		return ClosForK(k)
	case "sshuffle":
		return NewSpaceShuffle(k*k/2, 3, 1)
	case "star":
		servers := k * k / 2
		d := 2 * (k / 4)
		if d < 2 || servers%d != 0 || servers/d <= d {
			d = 2
		}
		return NewStarReplaced(servers/d, d)
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (want clos, sshuffle or star)", name)
	}
}

// ParseSpec rebuilds a Graph from its canonical Spec string. Round-trip
// invariant: ParseSpec(g.Spec()).Spec() == g.Spec() for every Graph this
// package builds. Unknown families and malformed parameters are errors —
// a telemetry stream or distsim handshake carrying a spec this build
// cannot reproduce must fail loudly, not mislabel the data.
func ParseSpec(spec string) (Graph, error) {
	family := spec
	rest := ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		family, rest = spec[:i], spec[i+1:]
	}
	kv := map[string]int64{}
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			eq := strings.IndexByte(f, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("topo: malformed spec parameter %q in %q", f, spec)
			}
			v, err := strconv.ParseInt(f[eq+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("topo: bad value in spec parameter %q: %v", f, err)
			}
			kv[f[:eq]] = v
		}
	}
	need := func(keys ...string) error {
		if len(kv) != len(keys) {
			return fmt.Errorf("topo: spec %q wants exactly parameters %v", spec, keys)
		}
		for _, k := range keys {
			if _, ok := kv[k]; !ok {
				return fmt.Errorf("topo: spec %q missing parameter %q", spec, k)
			}
		}
		return nil
	}
	switch family {
	case "clos":
		if err := need("k"); err != nil {
			return nil, err
		}
		return ClosForK(int(kv["k"]))
	case "clos1":
		if err := need("fa", "up", "fe1"); err != nil {
			return nil, err
		}
		return NewClos1(int(kv["fa"]), int(kv["up"]), int(kv["fe1"]))
	case "clos2":
		if err := need("fa", "up", "fe1", "dn", "fe1up", "fe2"); err != nil {
			return nil, err
		}
		return NewClos2(int(kv["fa"]), int(kv["up"]), int(kv["fe1"]), int(kv["dn"]), int(kv["fe1up"]), int(kv["fe2"]))
	case "sshuffle":
		if err := need("n", "s", "seed"); err != nil {
			return nil, err
		}
		return NewSpaceShuffle(int(kv["n"]), int(kv["s"]), kv["seed"])
	case "star":
		if err := need("m", "d"); err != nil {
			return nil, err
		}
		return NewStarReplaced(int(kv["m"]), int(kv["d"]))
	default:
		return nil, fmt.Errorf("topo: unknown topology family %q in spec %q", family, spec)
	}
}

// ValidateGraph checks the structural invariants every Graph must hold:
// ports in range and used at most once, edge indices well-formed, and —
// with all links up — a non-empty route (descend, or climb toward one)
// from every node to every edge device.
func ValidateGraph(g Graph) error {
	nn := g.NumNodes()
	links := g.GraphLinks()
	type portKey struct{ n, p int }
	seen := make(map[portKey]bool)
	check := func(n, p int) error {
		if n < 0 || n >= nn {
			return fmt.Errorf("topo: link endpoint node %d out of range [0,%d)", n, nn)
		}
		if ports := g.Node(n).Ports; p < 0 || p >= ports {
			return fmt.Errorf("topo: port %s:%d out of range [0,%d)", g.Node(n).Name, p, ports)
		}
		k := portKey{n, p}
		if seen[k] {
			return fmt.Errorf("topo: port %s:%d used twice", g.Node(n).Name, p)
		}
		seen[k] = true
		return nil
	}
	for _, lk := range links {
		if lk.A == lk.B {
			return fmt.Errorf("topo: self-link on node %d", lk.A)
		}
		if err := check(lk.A, lk.APort); err != nil {
			return err
		}
		if err := check(lk.B, lk.BPort); err != nil {
			return err
		}
	}
	edgeSeen := make(map[int]bool)
	for e := 0; e < g.NumEdge(); e++ {
		n := g.EdgeNode(e)
		if n < 0 || n >= nn {
			return fmt.Errorf("topo: edge %d maps to node %d out of range", e, n)
		}
		if edgeSeen[n] {
			return fmt.Errorf("topo: node %d is two edge devices", n)
		}
		edgeSeen[n] = true
	}
	up := make([]bool, len(links))
	for i := range up {
		up[i] = true
	}
	descend, climb := g.Routes(up)
	for n := 0; n < nn; n++ {
		for e := 0; e < g.NumEdge(); e++ {
			if n == g.EdgeNode(e) {
				continue
			}
			if len(descend[n][e]) == 0 && len(climb[n]) == 0 {
				return fmt.Errorf("topo: no route from %s to edge %d on the intact graph", g.Node(n).Name, e)
			}
			if !sort.IntsAreSorted(descend[n][e]) {
				return fmt.Errorf("topo: descend ports of %s toward edge %d not sorted", g.Node(n).Name, e)
			}
		}
	}
	return nil
}
