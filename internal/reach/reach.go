// Package reach implements the hardware reachability protocol of
// §4.2/§5.8/§5.9: every device periodically advertises the set of Fabric
// Adapters it can reach on each of its links; receivers maintain a
// forwarding table mapping destination Fabric Adapter to the set of local
// links that reach it, monitor link health by the keepalive stream, and
// load-balance cells over the reachable set with a periodically reshuffled
// round-robin permutation (§5.3).
package reach

import (
	"fmt"
	"math/rand"
)

// Bitmap is a dense bit set over Fabric Adapter (or link) indices.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Or merges o into b (b |= o); the bitmaps must be the same length.
func (b Bitmap) Or(o Bitmap) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Reset clears all bits.
func (b Bitmap) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Clone returns a copy.
func (b Bitmap) Clone() Bitmap {
	o := make(Bitmap, len(b))
	copy(o, b)
	return o
}

// ChunkBits is the number of Fabric Adapters covered by one reachability
// message (Appendix E's b parameter).
const ChunkBits = 128

// MessageBytes is the nominal on-wire size of one reachability message
// (Appendix E's B parameter: 24 bytes = origin + chunk + 16B bitmap +
// framing).
const MessageBytes = 24

// Message is one reachability advertisement: "FAs [Chunk*128,
// Chunk*128+128) reachable through the sender" as a bitmap.
type Message struct {
	Origin uint16 // advertising device's id (opaque to the receiver)
	Chunk  uint16
	Faulty bool // sender marks itself faulty (error rate crossed, §5.10)
	Bits   [ChunkBits / 64]uint64
}

// MessagesPerTable returns how many messages cover numFA adapters.
func MessagesPerTable(numFA int) int { return (numFA + ChunkBits - 1) / ChunkBits }

// BuildMessages encodes a full reachability set into its message sequence.
func BuildMessages(origin uint16, reachable Bitmap, numFA int) []Message {
	n := MessagesPerTable(numFA)
	msgs := make([]Message, n)
	for c := 0; c < n; c++ {
		m := Message{Origin: origin, Chunk: uint16(c)}
		for w := 0; w < ChunkBits/64; w++ {
			idx := c*ChunkBits/64 + w
			if idx < len(reachable) {
				m.Bits[w] = reachable[idx]
			}
		}
		msgs[c] = m
	}
	return msgs
}

// Table is a device's forwarding table: destination Fabric Adapter -> set
// of local links through which it is reachable. Its size is
// Number-of-Fabric-Adapters entries of Number-of-Links bits (§5.8) — two
// orders of magnitude smaller than an IP table (Appendix C).
type Table struct {
	numFA   int
	numLink int
	perFA   []Bitmap // indexed by FA, bits = links
	perLink []Bitmap // indexed by link, bits = FAs (the advertised set)
}

// NewTable creates an empty table for numFA destinations over numLink
// local links.
func NewTable(numFA, numLink int) *Table {
	t := &Table{numFA: numFA, numLink: numLink}
	t.perFA = make([]Bitmap, numFA)
	for i := range t.perFA {
		t.perFA[i] = NewBitmap(numLink)
	}
	t.perLink = make([]Bitmap, numLink)
	for i := range t.perLink {
		t.perLink[i] = NewBitmap(numFA)
	}
	return t
}

// NumFA returns the table's destination count.
func (t *Table) NumFA() int { return t.numFA }

// NumLinks returns the table's link count.
func (t *Table) NumLinks() int { return t.numLink }

// ApplyMessage merges one advertisement received on link. It replaces the
// chunk's bits for that link, so withdrawn destinations disappear.
func (t *Table) ApplyMessage(link int, m Message) error {
	if link < 0 || link >= t.numLink {
		return fmt.Errorf("reach: link %d out of range", link)
	}
	base := int(m.Chunk) * ChunkBits
	if base >= t.numFA && m.Chunk != 0 {
		return fmt.Errorf("reach: chunk %d beyond %d FAs", m.Chunk, t.numFA)
	}
	for w := 0; w < ChunkBits/64; w++ {
		idx := base/64 + w
		if idx >= len(t.perLink[link]) {
			break
		}
		old := t.perLink[link][idx]
		bits := m.Bits[w]
		if m.Faulty {
			bits = 0 // a self-declared faulty link advertises nothing
		}
		t.perLink[link][idx] = bits
		changed := old ^ bits
		if changed == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if changed&(1<<b) == 0 {
				continue
			}
			fa := idx*64 + b
			if fa >= t.numFA {
				break
			}
			if bits&(1<<b) != 0 {
				t.perFA[fa].Set(link)
			} else {
				t.perFA[fa].Clear(link)
			}
		}
	}
	return nil
}

// LinkDown withdraws every destination learned through link (keepalive
// loss, §5.9).
func (t *Table) LinkDown(link int) {
	for fa := 0; fa < t.numFA; fa++ {
		if t.perLink[link].Get(fa) {
			t.perFA[fa].Clear(link)
		}
	}
	t.perLink[link].Reset()
}

// Links returns the set of links reaching fa (shared; do not mutate).
func (t *Table) Links(fa int) Bitmap { return t.perFA[fa] }

// LinkSet returns the set of FAs advertised on link (shared; do not
// mutate).
func (t *Table) LinkSet(link int) Bitmap { return t.perLink[link] }

// Reachable reports whether any link reaches fa.
func (t *Table) Reachable(fa int) bool {
	for _, w := range t.perFA[fa] {
		if w != 0 {
			return true
		}
	}
	return false
}

// ReachableSet returns the union of destinations reachable via any link —
// the set this device advertises upstream/downstream.
func (t *Table) ReachableSet() Bitmap {
	out := NewBitmap(t.numFA)
	for _, lb := range t.perLink {
		out.Or(lb)
	}
	return out
}

// Spreader implements §5.3's cell load balancer: a round-robin arbiter
// that traverses the links in a random permutation order, replaced every
// few rounds so that recurrent synchronization with packet arrival times
// cannot bias any link persistently.
type Spreader struct {
	perm      []int
	pos       int
	rounds    int
	maxRounds int
	rng       *rand.Rand
}

// NewSpreader creates a spreader over numLink links reshuffling its
// permutation every reshuffleRounds full traversals.
func NewSpreader(numLink, reshuffleRounds int, seed int64) *Spreader {
	if numLink <= 0 {
		panic("reach: spreader needs links")
	}
	if reshuffleRounds < 1 {
		reshuffleRounds = 4
	}
	s := &Spreader{rng: rand.New(rand.NewSource(seed)), maxRounds: reshuffleRounds}
	s.perm = s.rng.Perm(numLink)
	return s
}

// reshuffle replaces the traversal order with a fresh permutation
// in place (Fisher-Yates), so the periodic reshuffle allocates nothing —
// the spreader sits on the per-cell fabric hot path.
func (s *Spreader) reshuffle() {
	for i := len(s.perm) - 1; i > 0; i-- {
		j := s.rng.Intn(i + 1)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
}

// Next returns the next link to use among the eligible set (bits over
// links). Returns -1 when the set is empty. The permutation is only
// replaced between traversals, never while a scan is in progress, so a
// single call always examines every link once.
func (s *Spreader) Next(eligible Bitmap) int {
	n := len(s.perm)
	if s.pos == 0 && s.rounds >= s.maxRounds {
		s.rounds = 0
		s.reshuffle()
	}
	for scanned := 0; scanned < n; scanned++ {
		link := s.perm[s.pos]
		s.pos++
		if s.pos == n {
			s.pos = 0
			s.rounds++
		}
		if eligible.Get(link) {
			return link
		}
	}
	return -1
}
