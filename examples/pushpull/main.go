// Push vs pull (Fig 7 and Fig 12): the canonical example of why a
// scheduled ("pull") fabric beats an autonomous Ethernet ("push") fabric:
// congested ports must not steal throughput from uncongested ones.
package main

import (
	"fmt"
	"os"

	"stardust/internal/experiments"
)

func main() {
	experiments.WritePushPull(os.Stdout, experiments.PushPull(false))
	fmt.Println()
	experiments.WritePushPull(os.Stdout, experiments.PushPull(true))
}
