package scenarios

import (
	"fmt"
	"hash/fnv"
	"strings"

	"stardust/internal/engine"
	"stardust/internal/experiments"
)

// htsim/parperm: the sharded end-to-end counterpart of fabric/parscale —
// a shards×K sweep of the Fig 10(a) permutation with unmodified TCP over
// the sharded Stardust transport, emitting a digest of the full per-flow
// delivered-byte vector and transport counters. The digest is a
// deterministic function of (seed, K) alone, so the CI matrix diffs it
// across {workers}×{shards}, and check=true re-runs the instance at one
// shard and refuses to emit a result whose digest diverged.

// permDigest folds a permutation result's observable transport state.
func permDigest(r *experiments.PermutationResult) uint64 {
	h := fnv.New64a()
	w := func(v uint64) { digest64(h, v) }
	for _, d := range r.Delivered {
		w(uint64(d))
	}
	w(r.CellsSent)
	w(r.CreditsSent)
	w(r.VOQDrops)
	w(r.ReasmTimeouts)
	w(r.FabricDrops)
	return h.Sum64()
}

func init() {
	engine.Register(engine.Scenario{
		Name: "htsim/parperm",
		Desc: "sharded-transport permutation sweep: TCP over the sharded Stardust substrate, shards×K, deterministic transport digest",
		Defaults: engine.Params{
			"k": "4", "shards": "0", "dur_ms": "5", "warmup_ms": "2", "check": "false",
		},
		Docs: map[string]string{
			"k":         "fat-tree K sizing hosts and the Clos (comma list sweeps)",
			"shards":    "event-loop shards; 0 = the -shards flag (comma list sweeps)",
			"dur_ms":    "measurement window in ms, after warmup",
			"warmup_ms": "warmup before measurement starts, in ms",
			"check":     "true re-runs at one shard and fails unless the digests are byte-identical",
		},
		Variants: parVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			shards := effectiveShards(c)
			cfg := experiments.DefaultHtsim()
			cfg.K = k
			cfg.Duration = msTime(c.Params.Int("dur_ms", 5))
			cfg.Warmup = msTime(c.Params.Int("warmup_ms", 2))
			cfg.FullFabric = true
			cfg.Shards = shards
			cfg.Seed = c.Seed
			r, err := experiments.Permutation(cfg, experiments.ProtoStardust)
			if err != nil {
				return engine.Result{}, err
			}
			digest := permDigest(r)
			if c.Params.Bool("check", false) && shards != 1 {
				ref := cfg
				ref.Shards = 1
				rr, err := experiments.Permutation(ref, experiments.ProtoStardust)
				if err != nil {
					return engine.Result{}, err
				}
				if got := permDigest(rr); got != digest {
					return engine.Result{}, fmt.Errorf("parperm: shards=%d digest %016x diverged from shards=1 %016x",
						shards, digest, got)
				}
			}
			var res engine.Result
			res.Add("k", float64(k), "")
			if sp := c.Params.Int("shards", 0); sp != 0 {
				res.Add("shards", float64(sp), "")
			}
			n := len(r.Gbps)
			res.Add("mean_util_pct", r.MeanUtilPct, "%")
			res.Add("p5_gbps", r.Gbps[n/20], "Gbps")
			res.Add("median_gbps", r.Gbps[n/2], "Gbps")
			res.Add("cells_sent", float64(r.CellsSent), "")
			res.Add("credits_sent", float64(r.CreditsSent), "")
			res.Add("voq_drops", float64(r.VOQDrops), "")
			res.Add("reasm_timeouts", float64(r.ReasmTimeouts), "")
			res.Add("fabric_drops", float64(r.FabricDrops), "")
			res.Add("digest_lo", float64(uint32(digest)), "")
			res.Add("digest_hi", float64(digest>>32), "")
			var b strings.Builder
			fmt.Fprintf(&b, "parperm K=%d%s: util %.1f%%, %d cells, %d credits, %d drops, digest %016x\n",
				k, shardLabel(c), r.MeanUtilPct, r.CellsSent, r.CreditsSent,
				r.VOQDrops+r.ReasmTimeouts+r.FabricDrops, digest)
			experiments.WritePermutation(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})
}
