// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds, which is fine enough to express a
// single byte on a 100 Gbps serial link (80 ps) exactly while still allowing
// simulations that span days of virtual time in an int64.
//
// Events are ordered by (time, lane, sequence-of-scheduling). Ordinary
// scheduling (At/After and friends) uses the default lane, so two events
// scheduled for the same instant fire in the order they were scheduled; this
// makes every simulation in this repository reproducible bit-for-bit.
//
// Lanes exist for sharded (parallel) simulation: the scheduling-order
// tie-break depends on the global interleaving of earlier events, which a
// partitioned simulation cannot reproduce, so shardable components instead
// tag same-instant events with an explicit lane (AtLane) — a small integer
// naming a stable entity such as a directed link. Events on distinct lanes
// at the same instant fire in lane order, and events on one lane are always
// scheduled causally by a single owner, so the total order is a function of
// the simulated system alone, not of how it was partitioned across event
// loops. All explicit lanes sort before the default lane.
//
// The kernel offers two scheduling forms: At/After take an ordinary
// func() closure, while AtAction/AfterAction take a pre-bound Action plus a
// uint64 argument. The Action form exists for hot paths (queues draining,
// packets propagating, timers re-arming): it stores the callback and its
// argument inline in the event, so scheduling allocates nothing.
//
// # Event store
//
// Events live in a near-future bucket ladder (a calendar queue) instead of
// one big binary heap. The ladder covers a sliding window of ladderBuckets
// buckets of 2^bucketShift picoseconds each; an event scheduled inside the
// window is appended to its bucket in O(1), and a whole bucket is sorted
// once by (time, lane, seq) when its turn comes, so draining a window's
// worth of events costs O(1) amortized heap traffic — the run-combining the
// single heap could not do. Two small binary heaps back the ladder up: the
// "young" heap absorbs events scheduled into the bucket currently draining
// (they must interleave with the sorted run), and the "overflow" heap holds
// events beyond the ladder horizon (long timers), migrating into the ladder
// as the window slides. The sort key is exactly the old heap's comparison,
// so the execution order — and therefore every simulation in the repository
// — is bit-identical to the single-heap kernel.
//
// Each bucket stores events as a struct-of-arrays split: a hot array of
// 24-byte keys (time, seq, lane, index) that the sort and the drain loop
// touch, and a cold array of bodies (callback, argument, group) read once
// per execution. Keys pack 2.6 to a cache line where the old 56-byte event
// fit one, which is what makes the bucket sort cheap.
//
// # Groups
//
// Every event carries a group tag — a small integer naming the model entity
// cluster (e.g. "FA 3 and its hosts") the event belongs to. Tags propagate
// causally: an event scheduled while another executes inherits the running
// event's group, and lane-keyed events take the lane owner's group from a
// shared lane table (SetLaneGroups). Groups are what make adaptive shard
// rebalancing possible: ExtractGroup removes one group's pending events in
// (time, lane, seq) order so they can be re-injected into another shard's
// Simulator at a quiescent barrier (InjectOrdered), and per-group executed
// event counts (GroupProcessed) give the rebalancer a deterministic,
// sim-state-only load meter.
package sim

import (
	"math/bits"
	"slices"
)

// Time is a point in simulated time, in picoseconds.
type Time int64

// Convenient duration constants, all expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Action is a pre-bound event callback. Scheduling an Action avoids the
// per-event closure allocation of At/After; the arg passed to
// AtAction/AfterAction is handed back verbatim, letting one long-lived
// object serve many in-flight events.
type Action interface {
	Act(arg uint64)
}

// ActionFunc adapts a plain function to the Action interface (for cold
// paths where the closure allocation does not matter).
type ActionFunc func(arg uint64)

// Act implements Action.
func (f ActionFunc) Act(arg uint64) { f(arg) }

// DefaultLane is the lane of events scheduled without an explicit lane
// (At/After/AtAction/AfterAction). Explicit lanes must be smaller, so they
// always sort before default-lane events at the same instant.
const DefaultLane int32 = 1<<31 - 1

// LaneScheduler is the scheduling surface a shardable simulation component
// needs: the current time plus lane-keyed event insertion. *Simulator
// implements it directly for intra-shard work; parsim's cross-shard ports
// implement it with mailboxes that are flushed at the window barrier.
type LaneScheduler interface {
	Now() Time
	AtLane(t Time, lane int32, a Action, arg uint64)
}

// Ladder geometry. A bucket spans 2^bucketShift picoseconds (65.5 ns) and
// the ladder holds ladderBuckets of them — a 16.8 µs horizon, which covers
// the link/control delays and serialization times of every hot simulation
// in this repository; longer timers ride the overflow heap. The width is
// tuned on the transport benchmark: narrower buckets spend their time in
// ladder advances, wider ones in the per-bucket sort.
const (
	bucketShift   = 16
	ladderBuckets = 256
	ladderMask    = ladderBuckets - 1
)

// eventKey is the hot half of an event: the full (time, lane, seq) ordering
// key plus the index of the cold body in the same region. 24 bytes, so the
// bucket sort streams 2.6 keys per cache line.
type eventKey struct {
	at   Time
	seq  uint64
	lane int32
	idx  int32
}

// keyLess is the one ordering every region agrees on: (time, lane, seq),
// bit-identical to the retired single-heap kernel.
func keyLess(a, b *eventKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}

// eventBody is the cold half of an event: read once, at execution.
type eventBody struct {
	fn    func()
	act   Action
	arg   uint64
	group int32
}

// bucket is one ladder slot: parallel key/body arrays, appended in
// scheduling order and sorted by key only when the bucket's turn comes.
// Drained slots hand their arrays back to the Simulator's buffer pool
// rather than keeping them: the set of live slots slides with the clock,
// so per-slot capacity would have to be re-grown for every new window
// position, while a shared LIFO pool converges once to the largest bucket
// load and then never allocates again.
type bucket struct {
	keys   []eventKey
	bodies []eventBody
}

// event is the AoS form used by the young/overflow heaps and by group
// extraction, where events are few and cache density does not pay.
type event struct {
	at    Time
	seq   uint64
	lane  int32
	group int32
	fn    func()
	act   Action
	arg   uint64
}

func (e *event) key() eventKey { return eventKey{at: e.at, seq: e.seq, lane: e.lane} }

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (time, lane, seq) — no interface boxing, no allocation per push.
type eventHeap struct{ ev []event }

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	e := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // drop callback references for the GC
	h.ev = h.ev[:n]
	h.siftDown(0)
	return e
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Distinct Simulators are fully independent, so many can run
// concurrently (one per goroutine) without sharing state.
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	npend   int
	// Processed counts events executed so far; useful for budgeting runs.
	Processed uint64

	// Bucket ladder: ladder[b&ladderMask] holds the events of absolute
	// bucket b for b in (curB, curB+ladderBuckets). occupied is the
	// nonempty-slot bitmap the advance scan walks with TrailingZeros.
	curB     int64
	ladder   []bucket
	occupied [ladderBuckets / 64]uint64

	// Current sorted run: the events of bucket curB, drained by cursor.
	run    bucket
	runPos int

	// young absorbs events scheduled at or before the draining bucket —
	// they must interleave with the sorted run; overflow holds events
	// beyond the ladder horizon.
	young    eventHeap
	overflow eventHeap

	// Recycled slot buffers (see bucket).
	freeKeys   [][]eventKey
	freeBodies [][]eventBody

	// Group machinery (see the package comment). curGroup is the running
	// event's group, inherited by everything it schedules; laneGroups maps
	// explicit lanes to their owner's group; groupCount is the per-group
	// executed-event meter (present only after EnsureGroups).
	curGroup   int32
	laneGroups []int32
	groupCount []uint64
}

// New returns a Simulator starting at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events waiting to run.
func (s *Simulator) Pending() int { return s.npend }

func (s *Simulator) bucketOf(t Time) int64 { return int64(t) >> bucketShift }

func (s *Simulator) markOccupied(b int64) {
	slot := uint64(b) & ladderMask
	s.occupied[slot>>6] |= 1 << (slot & 63)
}

func (s *Simulator) clearOccupied(b int64) {
	slot := uint64(b) & ladderMask
	s.occupied[slot>>6] &^= 1 << (slot & 63)
}

// bucketAdd appends one event to ladder bucket b, pulling recycled arrays
// from the pool when the slot is bare.
func (s *Simulator) bucketAdd(b int64, k eventKey, body eventBody) {
	if s.ladder == nil {
		s.ladder = make([]bucket, ladderBuckets)
	}
	slot := &s.ladder[b&ladderMask]
	if slot.keys == nil {
		if n := len(s.freeKeys); n > 0 {
			slot.keys = s.freeKeys[n-1]
			slot.bodies = s.freeBodies[n-1]
			s.freeKeys = s.freeKeys[:n-1]
			s.freeBodies = s.freeBodies[:n-1]
		}
	}
	k.idx = int32(len(slot.bodies))
	slot.bodies = append(slot.bodies, body)
	slot.keys = append(slot.keys, k)
	s.markOccupied(b)
}

func (s *Simulator) schedule(t Time, lane int32, fn func(), act Action, arg uint64) {
	if t < s.now {
		t = s.now
	}
	group := s.curGroup
	// DefaultLane and unmapped lanes fall through to the inherited group;
	// the len test rejects DefaultLane (the table never reaches 2^31-1), so
	// the sign test only runs for mapped explicit lanes.
	if int(lane) < len(s.laneGroups) && lane >= 0 {
		group = s.laneGroups[lane]
	}
	s.seq++
	s.npend++
	b := s.bucketOf(t)
	// Single unsigned compare for the common case: b in (curB, curB+NB).
	if uint64(b-s.curB-1) < ladderBuckets-1 {
		s.bucketAdd(b,
			eventKey{at: t, seq: s.seq, lane: lane},
			eventBody{fn: fn, act: act, arg: arg, group: group})
	} else if b <= s.curB {
		s.young.push(event{at: t, seq: s.seq, lane: lane, group: group, fn: fn, act: act, arg: arg})
	} else {
		s.overflow.push(event{at: t, seq: s.seq, lane: lane, group: group, fn: fn, act: act, arg: arg})
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now()) runs the event at the current time instead, preserving causality.
func (s *Simulator) At(t Time, fn func()) { s.schedule(t, DefaultLane, fn, nil, 0) }

// After schedules fn to run d picoseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.schedule(s.now+d, DefaultLane, fn, nil, 0) }

// AtAction schedules a.Act(arg) at absolute time t without allocating.
func (s *Simulator) AtAction(t Time, a Action, arg uint64) { s.schedule(t, DefaultLane, nil, a, arg) }

// AfterAction schedules a.Act(arg) d picoseconds from now without
// allocating.
func (s *Simulator) AfterAction(d Time, a Action, arg uint64) {
	s.schedule(s.now+d, DefaultLane, nil, a, arg)
}

// AtLane schedules a.Act(arg) at absolute time t on an explicit event lane
// (see the package comment: same-instant events fire in lane order, which
// is what makes sharded execution order-independent of the partitioning).
// Lanes must be non-negative and below DefaultLane. Implements
// LaneScheduler; allocates nothing.
func (s *Simulator) AtLane(t Time, lane int32, a Action, arg uint64) {
	s.schedule(t, lane, nil, a, arg)
}

// AtLaneFunc is AtLane for a plain closure (cold paths).
func (s *Simulator) AtLaneFunc(t Time, lane int32, fn func()) {
	s.schedule(t, lane, fn, nil, 0)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// nextBucket finds the smallest absolute bucket in (curB, curB+ladderBuckets)
// with pending events, or -1. The occupancy bitmap makes the scan a handful
// of word tests.
func (s *Simulator) nextBucket() int64 {
	for b := s.curB + 1; b < s.curB+ladderBuckets; {
		slot := uint64(b) & ladderMask
		word := s.occupied[slot>>6] >> (slot & 63)
		if word != 0 {
			return b + int64(bits.TrailingZeros64(word))
		}
		// Jump to the next word boundary (still circular in absolute terms).
		b += int64(64 - (slot & 63))
	}
	return -1
}

// sortKeys orders a bucket's keys by (time, lane, seq). Buckets are small —
// a ladder slot spans tens of ns — and appended in near-ascending time
// order (adaptive: ~O(n)), so a hand-rolled insertion sort with the
// comparison inlined beats the generic sort's comparator indirection;
// pathological buckets fall back to slices.SortFunc.
func sortKeys(keys []eventKey) {
	if len(keys) > 96 {
		slices.SortFunc(keys, func(a, b eventKey) int {
			if keyLess(&a, &b) {
				return -1
			}
			return 1
		})
		return
	}
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keyLess(&k, &keys[j]) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// advance slides the ladder to the next nonempty bucket and loads it as the
// sorted run. Returns false when nothing is pending anywhere.
func (s *Simulator) advance() bool {
	for {
		next := s.nextBucket()
		if s.overflow.len() > 0 {
			ob := s.bucketOf(s.overflow.ev[0].at)
			if next < 0 || ob < next {
				next = ob
			}
		}
		if next < 0 {
			return false
		}
		s.curB = next
		// Events parked in overflow may now fall inside the window; migrate
		// them before loading the run so the new bucket is complete.
		horizon := s.curB + ladderBuckets
		for s.overflow.len() > 0 && s.bucketOf(s.overflow.ev[0].at) < horizon {
			e := s.overflow.pop()
			b := s.bucketOf(e.at)
			if b <= s.curB {
				s.young.push(e)
				continue
			}
			s.bucketAdd(b, e.key(), eventBody{fn: e.fn, act: e.act, arg: e.arg, group: e.group})
		}
		var slot *bucket
		if s.ladder != nil {
			slot = &s.ladder[s.curB&ladderMask]
		}
		if (slot == nil || len(slot.keys) == 0) && s.young.len() == 0 {
			// The candidate bucket was emptied (group extraction); retry.
			if slot != nil {
				if slot.keys != nil {
					s.freeKeys = append(s.freeKeys, slot.keys[:0])
					s.freeBodies = append(s.freeBodies, slot.bodies[:0])
					slot.keys, slot.bodies = nil, nil
				}
				s.clearOccupied(s.curB)
			}
			continue
		}
		if slot != nil && slot.keys != nil {
			// Take the bucket's arrays as the new run and recycle the drained
			// run's arrays through the pool (see bucket). Executed bodies had
			// their callback references dropped in step, so the returned
			// arrays hold nothing for the GC.
			s.freeKeys = append(s.freeKeys, s.run.keys[:0])
			s.freeBodies = append(s.freeBodies, s.run.bodies[:0])
			s.run.keys, s.run.bodies = slot.keys, slot.bodies
			slot.keys, slot.bodies = nil, nil
			s.clearOccupied(s.curB)
		} else {
			s.run.keys = s.run.keys[:0]
			s.run.bodies = s.run.bodies[:0]
		}
		s.runPos = 0
		if len(s.run.keys) > 1 {
			sortKeys(s.run.keys)
		}
		return true
	}
}

// drain is the one event loop behind Run/RunBefore/RunUntil: it executes
// events in (time, lane, seq) order until the store empties, Stop is
// called, or the next event's time reaches the limit (at >= limit with
// haveLimit; RunUntil passes deadline+1 to make the bound inclusive).
// Fusing the select-next and execute steps keeps the run/young comparison
// and the region bookkeeping to one pass per event — this loop is the
// single hottest code in the repository.
func (s *Simulator) drain(limit Time, haveLimit bool) {
	s.stopped = false
	for !s.stopped {
		if s.runPos >= len(s.run.keys) && s.young.len() == 0 {
			if !s.advance() {
				return
			}
		}
		var at Time
		var group int32
		var fn func()
		var act Action
		var arg uint64
		haveRun := s.runPos < len(s.run.keys)
		useYoung := s.young.len() > 0
		if haveRun && useYoung {
			rk, yk := &s.run.keys[s.runPos], s.young.ev[0].key()
			useYoung = !keyLess(rk, &yk)
		}
		if useYoung {
			e := &s.young.ev[0]
			at = e.at
			if haveLimit && at >= limit {
				return
			}
			group, fn, act, arg = e.group, e.fn, e.act, e.arg
			s.young.pop()
		} else {
			k := &s.run.keys[s.runPos]
			at = k.at
			if haveLimit && at >= limit {
				return
			}
			body := &s.run.bodies[k.idx]
			group, fn, act, arg = body.group, body.fn, body.act, body.arg
			body.fn, body.act = nil, nil // drop callback references for the GC
			s.runPos++
		}
		s.now = at
		s.npend--
		s.Processed++
		s.curGroup = group
		if int(group) < len(s.groupCount) && group >= 0 {
			s.groupCount[group]++
		}
		if fn != nil {
			fn()
		} else if act != nil {
			act.Act(arg)
		}
	}
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() { s.drain(0, false) }

// RunBefore executes every event with a timestamp strictly below end and
// leaves the clock exactly at end. It is the window-stepping primitive of
// conservative parallel simulation: events at end itself belong to the next
// window (they may still be joined by cross-shard arrivals with the same
// timestamp but a smaller lane).
func (s *Simulator) RunBefore(end Time) {
	s.drain(end, true)
	if s.now < end {
		s.now = end
	}
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at deadline if it has not passed it; if events remain they stay queued
// for a later Run/RunUntil call.
func (s *Simulator) RunUntil(deadline Time) {
	s.drain(deadline+1, deadline+1 > deadline) // overflow ⇒ unbounded
	if s.now < deadline {
		s.now = deadline
	}
}

// SkipTo advances the clock to t without executing anything. It exists for
// distributed replicas: a process that owns only some shards of a parsim
// engine keeps its unowned shards' clocks in lock-step (so barrier-context
// code reading Now() behaves identically on every replica) while their
// pending events are executed by the shard's real owner elsewhere. Events
// already queued before t stay queued and are simply never run here.
func (s *Simulator) SkipTo(t Time) {
	if s.now < t {
		s.now = t
	}
}

// SetGroup sets the group tag stamped on events scheduled from now on —
// until the next executed event overrides it with its own group (tags
// propagate causally). Use it at construction time to pin a model entity's
// initial events to its group.
func (s *Simulator) SetGroup(g int32) { s.curGroup = g }

// Group returns the current group tag (the running event's group, inside an
// event).
func (s *Simulator) Group() int32 { return s.curGroup }

// SetLaneGroups installs the shared lane-ownership table: events scheduled
// on explicit lane l take group tbl[l] (the lane owner's group) instead of
// the scheduler's current group. Typically one table is shared by every
// Simulator of a parsim engine. The slice is retained, not copied.
func (s *Simulator) SetLaneGroups(tbl []int32) { s.laneGroups = tbl }

// EnsureGroups sizes the per-group executed-event meter to at least n
// groups. Without it GroupProcessed reports zero and execution skips the
// meter entirely.
func (s *Simulator) EnsureGroups(n int) {
	if n > len(s.groupCount) {
		grown := make([]uint64, n)
		copy(grown, s.groupCount)
		s.groupCount = grown
	}
}

// GroupProcessed returns the number of executed events tagged with group g
// (zero when the meter was never sized past g). Deterministic: the executed
// event multiset is a function of the model alone, not the partitioning.
func (s *Simulator) GroupProcessed(g int32) uint64 {
	if int(g) < len(s.groupCount) && g >= 0 {
		return s.groupCount[g]
	}
	return 0
}

// Event is one extracted pending event, opaque except for its ordering key
// and group; it exists to move a group's events between Simulators at a
// migration barrier.
type Event struct {
	At    Time
	Lane  int32
	Group int32
	seq   uint64
	fn    func()
	act   Action
	arg   uint64
}

// ExtractGroup removes every pending event tagged with group g and returns
// them sorted by (time, lane, seq) — the order they would have executed in.
// Cold path: it scans every region of the store. The extracted events'
// callbacks keep their bindings; hand them to another Simulator with
// InjectOrdered at a quiescent barrier.
func (s *Simulator) ExtractGroup(g int32) []Event {
	var out []Event
	take := func(e event) {
		out = append(out, Event{At: e.at, Lane: e.lane, Group: e.group, seq: e.seq, fn: e.fn, act: e.act, arg: e.arg})
	}
	// Current run remainder.
	if s.runPos < len(s.run.keys) {
		kept := s.run.keys[:s.runPos]
		for _, k := range s.run.keys[s.runPos:] {
			body := &s.run.bodies[k.idx]
			if body.group == g {
				take(event{at: k.at, seq: k.seq, lane: k.lane, group: body.group, fn: body.fn, act: body.act, arg: body.arg})
				body.fn, body.act = nil, nil
				continue
			}
			kept = append(kept, k)
		}
		s.run.keys = kept
	}
	// Young and overflow heaps.
	for _, h := range []*eventHeap{&s.young, &s.overflow} {
		kept := h.ev[:0]
		for _, e := range h.ev {
			if e.group == g {
				take(e)
				continue
			}
			kept = append(kept, e)
		}
		for i := len(kept); i < len(h.ev); i++ {
			h.ev[i] = event{}
		}
		h.ev = kept
		for i := len(h.ev)/2 - 1; i >= 0; i-- {
			h.siftDown(i)
		}
	}
	// Ladder buckets.
	for i := range s.ladder {
		b := &s.ladder[i]
		kept := b.keys[:0]
		for _, k := range b.keys {
			body := &b.bodies[k.idx]
			if body.group == g {
				take(event{at: k.at, seq: k.seq, lane: k.lane, group: body.group, fn: body.fn, act: body.act, arg: body.arg})
				body.fn, body.act = nil, nil
				continue
			}
			kept = append(kept, k)
		}
		if len(kept) == 0 && len(b.keys) > 0 {
			// Slot fully drained by extraction; its occupancy bit goes stale
			// and advance()'s empty-slot retry tolerates that.
			b.keys = kept
			continue
		}
		b.keys = kept
	}
	s.npend -= len(out)
	slices.SortFunc(out, func(a, b Event) int {
		ak := eventKey{at: a.At, seq: a.seq, lane: a.Lane}
		bk := eventKey{at: b.At, seq: b.seq, lane: b.Lane}
		if keyLess(&ak, &bk) {
			return -1
		}
		return 1
	})
	return out
}

// InjectOrdered schedules extracted events onto s, preserving their
// relative order (they are assigned fresh, ascending sequence numbers).
// Events whose time has passed are clamped to now, like At. Call it with
// the receiving Simulator quiescent at the same barrier the events were
// extracted.
func (s *Simulator) InjectOrdered(evs []Event) {
	for i := range evs {
		e := &evs[i]
		save := s.curGroup
		s.curGroup = e.Group
		s.schedule(e.At, e.Lane, e.fn, e.act, e.arg)
		s.curGroup = save
	}
}

// Timer is a cancellable, re-armable timer bound to a Simulator. Arming a
// timer schedules one kernel event tagged with the timer's generation;
// cancelling or re-arming bumps the generation so stale events fall through
// without firing. Arm does not allocate (the Timer itself is the scheduled
// Action), so per-packet retransmission timers are free.
type Timer struct {
	sim     *Simulator
	gen     uint64
	armed   bool
	expires Time
	fn      func()
}

// NewTimer returns an unarmed timer.
func NewTimer(s *Simulator) *Timer { return &Timer{sim: s} }

// Rebind points the timer at a different Simulator — the migration hook: a
// timer whose owning entity moves shards keeps its generation (so an event
// still pending on the old shard, once migrated, keeps firing or staying
// stale exactly as before) but arms future events on the new event loop.
func (t *Timer) Rebind(s *Simulator) { t.sim = s }

// Arm (re)schedules fn to fire after d. Any previously armed deadline is
// cancelled. Callers on hot paths should pass the same stored func value on
// every Arm to avoid re-creating a method-value closure.
func (t *Timer) Arm(d Time, fn func()) {
	t.gen++
	t.armed = true
	t.fn = fn
	t.expires = t.sim.Now() + d
	t.sim.AfterAction(d, t, t.gen)
}

// Act implements Action; it fires the timer if the scheduled generation is
// still current.
func (t *Timer) Act(gen uint64) {
	if gen != t.gen || !t.armed {
		return
	}
	t.armed = false
	t.fn()
}

// Cancel disarms the timer. It is safe to call on an unarmed timer.
func (t *Timer) Cancel() { t.armed = false; t.gen++ }

// Armed reports whether the timer is currently armed.
func (t *Timer) Armed() bool { return t.armed }

// Expires returns the absolute deadline of the last Arm call.
func (t *Timer) Expires() Time { return t.expires }
