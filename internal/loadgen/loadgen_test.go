package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// cacheLike mimics the stardustd cache-hit path: fixed bytes with an
// explicit Content-Length.
func cacheLike(body []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body)
	})
}

func TestRunSmoke(t *testing.T) {
	body := []byte(`{"result":"cached bytes for the load generator"}`)
	servers := make([]*httptest.Server, 3)
	targets := make([]string, 3)
	for i := range servers {
		servers[i] = httptest.NewServer(cacheLike(body))
		targets[i] = servers[i].URL
		defer servers[i].Close()
	}
	rep, err := Run(context.Background(), Config{
		Targets:  targets,
		Path:     "/api/v1/cache/smoke",
		Clients:  60,
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.DialErrors != 0 {
		t.Fatalf("errors in smoke run: %+v", rep)
	}
	if rep.Bytes != rep.Requests*uint64(len(body)) {
		t.Fatalf("byte accounting: %d bytes for %d requests of %d", rep.Bytes, rep.Requests, len(body))
	}
	if rep.P50ms <= 0 || rep.P999ms < rep.P50ms || rep.MaxMs < rep.P999ms {
		t.Fatalf("quantiles out of order: %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	if rep.String() == "" {
		t.Fatal("empty report text")
	}
}

// Non-200 answers are counted as errors, not silently dropped.
func TestRunCountsBadStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such key", http.StatusNotFound)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Path:     "/api/v1/cache/missing",
		Clients:  4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatalf("404 answers not counted as errors: %+v", rep)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	cases := []Config{
		{Targets: []string{"http://h:1"}, Path: "/x", Clients: 0, Duration: time.Second},
		{Targets: []string{"http://h:1"}, Path: "/x", Clients: 1},
		{Targets: nil, Path: "/x", Clients: 1, Duration: time.Second},
		{Targets: []string{"https://h:1"}, Path: "/x", Clients: 1, Duration: time.Second},
		{Targets: []string{"http://h:1"}, Path: "x", Clients: 1, Duration: time.Second},
	}
	for i, cfg := range cases {
		if _, err := Run(ctx, cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
