package analytic

import (
	"fmt"

	"stardust/internal/topo"
)

// Appendix D / Table 3: indicative component list prices (USD, Sep 2018).
const (
	PriceSwitch64x100G  = 16200.0 // Edgecore AS7816-64X
	PriceSwitch65x100G  = 16200.0 // Edgecore Wedge 100BF-65X
	PriceDAC100G2m      = 84.0
	PriceOptic100G      = 435.0
	PriceOptic50G       = 280.0
	PriceOptic25G       = 125.0
	PriceFiber10m       = 8.0
	PriceFiber100m      = 62.0
	FabricPlatformRatio = 0.666 // Fabric Element box cost vs Ethernet switch (silicon-area ratio, §7)
)

// OpticPrice returns the transceiver price for a bundle of l 25G lanes.
func OpticPrice(lanes int) (float64, error) {
	switch lanes {
	case 1:
		return PriceOptic25G, nil
	case 2:
		return PriceOptic50G, nil
	case 4:
		return PriceOptic100G, nil
	}
	return 0, fmt.Errorf("analytic: no optic for %d lanes", lanes)
}

// CostModel prices a DCN instance per Appendix D: equal-cost ToR and Fabric
// Adapter platforms, Fabric Element platforms at the silicon-area ratio,
// 40 servers per ToR on direct-attach copper, 100 m fiber in the last tier
// and 10 m fiber elsewhere.
type CostModel struct {
	ToRPlatform    float64
	FabricPlatform float64 // per fabric switch; Ethernet price or FE-discounted
	ServerDAC      float64
}

// EthernetCost is the cost model for a classic fat-tree DCN.
var EthernetCost = CostModel{
	ToRPlatform:    PriceSwitch64x100G,
	FabricPlatform: PriceSwitch64x100G,
	ServerDAC:      PriceDAC100G2m,
}

// StardustCost is the cost model for a Stardust DCN (FE boxes cheaper by
// the silicon-area ratio).
var StardustCost = CostModel{
	ToRPlatform:    PriceSwitch64x100G,
	FabricPlatform: PriceSwitch64x100G * FabricPlatformRatio,
	ServerDAC:      PriceDAC100G2m,
}

// NetworkCost returns the total cost of a network plan. Each transceiver
// position needs two optics and one fiber; positions in the topmost tier
// use 100 m fiber (except in a 1-tier network), all others 10 m.
//
// An Ethernet fat-tree must use the transceiver matching its link bundle.
// Stardust devices "are oblivious to whether bundling was used in the
// transceiver" (§7): an l=1 fabric still packs its serial links into
// whichever transceiver is cheapest per lane, so pass cheapestLane=true
// for Stardust plans.
func NetworkCost(m CostModel, plan topo.NetworkPlan, cheapestLane bool) (float64, error) {
	lanes := plan.Device.LinkBundle
	if cheapestLane {
		lanes = cheapestLanes()
	}
	optic, err := OpticPrice(lanes)
	if err != nil {
		return 0, err
	}
	platforms := float64(plan.ToRs)*m.ToRPlatform + float64(plan.Switches)*m.FabricPlatform
	servers := float64(plan.Hosts) * m.ServerDAC

	// Transceiver positions: serial links grouped into `lanes` per optic.
	positions := float64((plan.SerialLinks + lanes - 1) / lanes)
	perBoundary := positions / float64(plan.Tiers)
	longFiber := perBoundary
	if plan.Tiers == 1 {
		longFiber = 0
	}
	shortFiber := positions - longFiber
	links := positions*2*optic + longFiber*PriceFiber100m + shortFiber*PriceFiber10m
	return platforms + servers + links, nil
}

// cheapestLanes returns the bundle width with the lowest per-lane optic
// price (100G at $435/4 lanes for Table 3's prices).
func cheapestLanes() int {
	best, bestCost := 1, PriceOptic25G
	for _, l := range []int{2, 4} {
		p, _ := OpticPrice(l)
		if p/float64(l) < bestCost/float64(best) {
			best, bestCost = l, p
		}
	}
	return best
}

// Fig11aDevices are the 6.4 Tbps device families of Fig 11(a): 25G serial
// lanes with bundles of 4, 2 and 1.
var Fig11aDevices = []topo.DeviceConfig{
	{Name: "FT 100Gx64", Ports: 64, PortGbps: 100, LinkBundle: 4},
	{Name: "FT 50Gx128", Ports: 128, PortGbps: 50, LinkBundle: 2},
	{Name: "FT 25Gx256", Ports: 256, PortGbps: 25, LinkBundle: 1},
}

// Fig11aStardust is the Stardust device (same 6.4 Tbps, discrete 25G links)
// whose cost is expressed relative to each fat-tree option.
var Fig11aStardust = topo.DeviceConfig{Name: "Stardust 25Gx256", Ports: 256, PortGbps: 25, LinkBundle: 1}

// RelativeCost returns cost(Stardust DCN)/cost(fat-tree DCN with ftDev) as
// a percentage, for a network of the given number of end hosts (one point
// of Fig 11a).
func RelativeCost(ftDev topo.DeviceConfig, hosts int) (float64, error) {
	sd, err := NetworkCost(StardustCost, topo.Plan(Fig11aStardust, hosts), true)
	if err != nil {
		return 0, err
	}
	ft, err := NetworkCost(EthernetCost, topo.Plan(ftDev, hosts), false)
	if err != nil {
		return 0, err
	}
	return 100 * sd / ft, nil
}

// Fig11aRow is one x-position of Fig 11(a): the Stardust network cost as a
// percentage of each fat-tree alternative.
type Fig11aRow struct {
	Hosts    int
	Relative map[string]float64
}

// Fig11a evaluates the figure for the given host counts (nil = a log sweep
// of 1e3..1e6 as in the paper).
func Fig11a(hostCounts []int) ([]Fig11aRow, error) {
	if hostCounts == nil {
		for h := 1000; h <= 1000000; h = h * 10 / 4 {
			hostCounts = append(hostCounts, h)
		}
	}
	rows := make([]Fig11aRow, 0, len(hostCounts))
	for _, h := range hostCounts {
		row := Fig11aRow{Hosts: h, Relative: map[string]float64{}}
		for _, dev := range Fig11aDevices {
			rc, err := RelativeCost(dev, h)
			if err != nil {
				return nil, err
			}
			row.Relative[dev.Name] = rc
		}
		rows = append(rows, row)
	}
	return rows, nil
}
