package mgmt

import (
	"fmt"
	"sort"
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Config sizes the controller.
type Config struct {
	// ScrapeEvery is the telemetry scrape period in simulated time.
	ScrapeEvery sim.Time // default 1ms
	// HistoryLen is the ring capacity of each per-link series.
	HistoryLen int // default 128
	// EventLog is the bus's retained-event capacity.
	EventLog int // default 1024
	// SprayThreshold flags a spray-imbalance anomaly when one FA's
	// per-uplink byte spread over the last scrape interval exceeds this
	// fraction of the per-uplink mean ((max-min)/mean, §5.3).
	SprayThreshold float64 // default 0.25
	// MinSprayBytes is the per-uplink mean (bytes per interval) below
	// which spray balance is not judged — idle or barely loaded FAs
	// produce meaningless ratios.
	MinSprayBytes float64 // default 64 KiB
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ScrapeEvery <= 0 {
		c.ScrapeEvery = sim.Millisecond
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 128
	}
	if c.EventLog <= 0 {
		c.EventLog = 1024
	}
	if c.SprayThreshold <= 0 {
		c.SprayThreshold = 0.25
	}
	if c.MinSprayBytes <= 0 {
		c.MinSprayBytes = 64 << 10
	}
	return c
}

// Anomaly is one active finding of the detector.
type Anomaly struct {
	Kind   string   `json:"kind"` // "spray-imbalance" or "reachability-hole"
	Device string   `json:"device,omitempty"`
	Detail string   `json:"detail"`
	Since  sim.Time `json:"since_ps"`
}

// AnomalySprayImbalance and AnomalyReachHole are the detector's finding
// kinds.
const (
	AnomalySprayImbalance = "spray-imbalance"
	AnomalyReachHole      = "reachability-hole"
)

// FabricStats is an aggregate snapshot of the fabric, taken at the last
// scrape (so HTTP readers never race the simulation).
type FabricStats struct {
	Time         sim.Time `json:"sim_ps"`
	Scrapes      uint64   `json:"scrapes"`
	Injected     uint64   `json:"injected_cells"`
	Delivered    uint64   `json:"delivered_cells"`
	Drops        uint64   `json:"dropped_cells"`
	QueueBytes   uint64   `json:"queue_bytes"`
	Links        int      `json:"links"`
	LinksDown    int      `json:"links_down"`
	Unreachable  int      `json:"unreachable_pairs"`
	LinkFailures uint64   `json:"link_failures_total"`
	LinkRecovers uint64   `json:"link_recoveries_total"`
	ReachUpdates uint64   `json:"reach_updates_total"`
}

// LinkTelemetry is the latest state of one directed link plus its rate
// over the last scrape interval, the HTTP-facing summary row.
type LinkTelemetry struct {
	Link     int     `json:"link"`
	Dir      int     `json:"dir"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	Last     Sample  `json:"last"`
	RateBps  float64 `json:"rate_bps"`    // over the last scrape interval
	DropRate float64 `json:"drops_per_s"` // over the last scrape interval
}

// Controller is the chassis supervisor of one fabric (Clos or any other
// topo.Graph): inventory, telemetry scraping, event publication and
// anomaly detection. Attach it before running the simulation.
type Controller struct {
	cfg Config
	fab fabric.Fabric
	sim *sim.Simulator
	inv *Inventory
	bus *Bus

	numFA     int
	faIDs     []string             // per edge device: its inventory ID
	reachID   func(dev int) string // device label for reach-update events
	pairKind  string               // what UnreachablePairs counts, for anomaly text
	faUplinks [][]int              // per edge device: directed link index of each uplink

	mu         sync.RWMutex
	series     []*Series // per directed link, indexed 2*link+dir
	stats      FabricStats
	anomalies  map[string]Anomaly // active findings, keyed kind+device
	scratch    [2]fabric.LinkCounters
	nextScrape sim.Time // sharded mode: next barrier-scrape instant
}

// Attach builds a controller over fab, hooks the fabric's link-state and
// reachability-update paths into the event bus, and schedules the
// periodic telemetry scrape on the fabric's simulator. The first scrape
// happens at time zero (one full period in).
//
// A sharded fabric must use AttachSharded instead: this scrape runs as an
// ordinary simulator event on one shard and would read every other
// shard's live queue counters mid-window — a data race the race detector
// duly reports. The panic makes the misuse impossible rather than latent.
func Attach(fab fabric.Fabric, cfg Config) *Controller {
	if fab.Sharded() {
		panic("mgmt: sharded fabric telemetry must go through the shard barrier; use AttachSharded")
	}
	c := newController(fab, cfg)
	c.armScrape()
	return c
}

// AttachSharded builds the controller over a sharded fabric. The
// telemetry scrape runs in the engine's barrier context — every shard
// quiescent at a synchronized instant — so reading the per-shard queue
// and fabric counters cannot race the simulation, and the scrape times
// (window boundaries) are identical for every shard count, keeping the
// management plane's view consistent across shards.
func AttachSharded(fab fabric.Fabric, cfg Config) *Controller {
	eng := fab.Engine()
	if eng == nil {
		panic("mgmt: AttachSharded needs a fabric built on a parsim engine")
	}
	c := newController(fab, cfg)
	c.nextScrape = c.cfg.ScrapeEvery
	eng.OnBarrier(func(now sim.Time) {
		for now >= c.nextScrape {
			c.scrape()
			c.nextScrape += c.cfg.ScrapeEvery
		}
	})
	return c
}

func newController(fab fabric.Fabric, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	g := fab.Graph()
	c := &Controller{
		cfg:       cfg,
		fab:       fab,
		sim:       fab.Simulator(),
		inv:       NewInventory(g),
		bus:       NewBus(cfg.EventLog),
		anomalies: make(map[string]Anomaly),
		numFA:     g.NumEdge(),
	}
	c.series = make([]*Series, 2*fab.NumLinks())
	for i := range c.series {
		c.series[i] = newSeries(cfg.HistoryLen)
	}
	c.stats.Links = fab.NumLinks()
	c.faUplinks = topo.EdgeUplinkDirs(g)
	c.faIDs = make([]string, c.numFA)
	if _, isClos := g.(*topo.Clos); isClos {
		// The Clos fabric's reach hook reports FE1 indices; keep the legacy
		// inventory IDs on both labels.
		c.pairKind = "(spine, FA) pairs"
		for fa := range c.faIDs {
			c.faIDs[fa] = deviceID(topo.NodeID{Kind: topo.KindFA, Index: fa})
		}
		c.reachID = func(dev int) string {
			return deviceID(topo.NodeID{Kind: topo.KindFE1, Index: dev})
		}
	} else {
		c.pairKind = "(edge, edge) pairs"
		// Graph fabrics report reach updates by node index; label through
		// the inventory, which is in node order.
		for fa := range c.faIDs {
			c.faIDs[fa] = g.Node(g.EdgeNode(fa)).Name
		}
		c.reachID = func(dev int) string {
			if dev >= 0 && dev < len(c.inv.Devices) {
				return c.inv.Devices[dev].ID
			}
			return fmt.Sprintf("dev%d", dev)
		}
	}

	prevLink := fab.HookOnLinkState()
	fab.SetOnLinkState(func(link int, up bool) {
		if prevLink != nil {
			prevLink(link, up)
		}
		c.onLinkState(link, up)
	})
	prevReach := fab.HookOnReachUpdate()
	fab.SetOnReachUpdate(func(dev, reachable int) {
		if prevReach != nil {
			prevReach(dev, reachable)
		}
		c.onReachUpdate(dev, reachable)
	})
	return c
}

// Bus returns the event bus.
func (c *Controller) Bus() *Bus { return c.bus }

// Inventory returns the chassis inventory (immutable after Attach).
func (c *Controller) Inventory() *Inventory { return c.inv }

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) armScrape() {
	c.sim.After(c.cfg.ScrapeEvery, func() {
		c.scrape()
		c.armScrape()
	})
}

// onLinkState runs in the simulation goroutine (fabric hook).
func (c *Controller) onLinkState(link int, up bool) {
	lk := c.inv.Links[link]
	kind := EventLinkDown
	c.mu.Lock()
	if up {
		kind = EventLinkUp
		c.stats.LinkRecovers++
		c.stats.LinksDown--
	} else {
		c.stats.LinkFailures++
		c.stats.LinksDown++
	}
	c.mu.Unlock()
	c.bus.Publish(Event{
		Time: c.sim.Now(), Kind: kind, Link: link,
		Device: lk.A,
		Detail: fmt.Sprintf("%s:%d <-> %s:%d", lk.A, lk.APort, lk.B, lk.BPort),
	})
}

// onReachUpdate runs in the simulation goroutine (fabric hook). dev is an
// FE1 index on the Clos fabric and a node index on graph fabrics; reachID
// resolves the right label for either.
func (c *Controller) onReachUpdate(dev, reachable int) {
	c.mu.Lock()
	c.stats.ReachUpdates++
	c.mu.Unlock()
	c.bus.Publish(Event{
		Time: c.sim.Now(), Kind: EventReachUpdate, Link: -1,
		Device: c.reachID(dev),
		Detail: fmt.Sprintf("advertises %d/%d FAs", reachable, c.numFA),
	})
}

// scrape runs in the simulation goroutine: it snapshots every directed
// link's counters into its series, refreshes the aggregate snapshot, and
// re-runs the anomaly detector.
func (c *Controller) scrape() {
	now := c.sim.Now()
	c.mu.Lock()
	var queued uint64
	for i := 0; i < c.fab.NumLinks(); i++ {
		c.fab.ReadLinkCounters(i, &c.scratch)
		for d := 0; d < 2; d++ {
			lc := &c.scratch[d]
			c.series[2*i+d].Push(Sample{
				T:          now,
				FwdBytes:   lc.FwdBytes,
				FwdCells:   lc.FwdCells,
				Drops:      lc.Drops,
				QueueBytes: lc.QueueBytes,
				Up:         lc.Up,
			})
			queued += uint64(lc.QueueBytes)
		}
	}
	c.stats.Time = now
	c.stats.Scrapes++
	c.stats.Injected = c.fab.Injected()
	c.stats.Delivered = c.fab.Delivered()
	c.stats.Drops = c.fab.Drops()
	c.stats.QueueBytes = queued
	c.stats.Unreachable = c.fab.UnreachablePairs()
	c.mu.Unlock()
	c.detect(now)
}

// detect re-evaluates the anomaly set and publishes raise/clear events.
func (c *Controller) detect(now sim.Time) {
	found := make(map[string]Anomaly)

	// Reachability holes: the §5.9 self-healing invariant is violated —
	// some (spine, FA) pair has no live down path, or an FA lost every
	// uplink.
	c.mu.RLock()
	unreachable := c.stats.Unreachable
	c.mu.RUnlock()
	if unreachable > 0 {
		a := Anomaly{
			Kind:   AnomalyReachHole,
			Detail: fmt.Sprintf("%d unreachable %s", unreachable, c.pairKind),
			Since:  now,
		}
		found[a.Kind+"/"+a.Device] = a
	}

	// Spray imbalance: §5.3 promises near-perfect per-device balance;
	// a spread above the threshold on a loaded FA means the spreader or
	// the liveness masks are wrong.
	for fa, ups := range c.faUplinks {
		var minD, maxD, sum float64
		n := 0
		ok := true
		for _, li := range ups {
			s := c.series[li]
			last, haveLast := s.Last()
			prev, havePrev := s.Prev()
			if !haveLast || !havePrev || !last.Up {
				ok = false // a down or unsampled uplink: balance not judged
				break
			}
			d := float64(last.FwdBytes - prev.FwdBytes)
			if n == 0 || d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
			sum += d
			n++
		}
		if !ok || n < 2 {
			continue
		}
		mean := sum / float64(n)
		if mean < c.cfg.MinSprayBytes {
			continue
		}
		if spread := (maxD - minD) / mean; spread > c.cfg.SprayThreshold {
			dev := c.faIDs[fa]
			a := Anomaly{
				Kind:   AnomalySprayImbalance,
				Device: dev,
				Detail: fmt.Sprintf("uplink spread %.1f%% over last interval (min=%.0fB max=%.0fB)", 100*spread, minD, maxD),
				Since:  now,
			}
			found[a.Kind+"/"+dev] = a
		}
	}

	c.mu.Lock()
	var raised, cleared []Anomaly
	for k, a := range found {
		if prev, ok := c.anomalies[k]; ok {
			a.Since = prev.Since // keep the original onset
			found[k] = a
		} else {
			raised = append(raised, a)
		}
	}
	for k, a := range c.anomalies {
		if _, ok := found[k]; !ok {
			cleared = append(cleared, a)
		}
	}
	c.anomalies = found
	c.mu.Unlock()

	for _, a := range raised {
		c.bus.Publish(Event{
			Time: now, Kind: EventAnomaly, Link: -1,
			Device: a.Device, Detail: a.Kind + ": " + a.Detail,
		})
	}
	for _, a := range cleared {
		c.bus.Publish(Event{
			Time: now, Kind: EventAnomalyCleared, Link: -1,
			Device: a.Device, Detail: a.Kind,
		})
	}
}

// Stats returns the aggregate snapshot of the last scrape.
func (c *Controller) Stats() FabricStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Anomalies returns the active findings sorted by kind then device.
func (c *Controller) Anomalies() []Anomaly {
	c.mu.RLock()
	out := make([]Anomaly, 0, len(c.anomalies))
	for _, a := range c.anomalies {
		out = append(out, a)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// Telemetry returns the latest per-directed-link summaries.
func (c *Controller) Telemetry() []LinkTelemetry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]LinkTelemetry, 0, len(c.series))
	for i, s := range c.series {
		last, ok := s.Last()
		if !ok {
			continue
		}
		lk := c.inv.Links[i/2]
		t := LinkTelemetry{Link: i / 2, Dir: i % 2, A: lk.A, B: lk.B, Last: last}
		if i%2 == 1 {
			t.A, t.B = lk.B, lk.A
		}
		if prev, ok := s.Prev(); ok && last.T > prev.T {
			dt := (last.T - prev.T).Seconds()
			t.RateBps = float64(last.FwdBytes-prev.FwdBytes) * 8 / dt
			t.DropRate = float64(last.Drops-prev.Drops) / dt
		}
		out = append(out, t)
	}
	return out
}

// LinkSeries returns the retained samples of one directed link.
func (c *Controller) LinkSeries(link, dir int) ([]Sample, error) {
	if link < 0 || link >= c.fab.NumLinks() || dir < 0 || dir > 1 {
		return nil, fmt.Errorf("mgmt: no directed link (%d, %d)", link, dir)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.series[2*link+dir].Snapshot(), nil
}
