package tcp

import (
	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// DCQCN implements the rate-based congestion control of [82] as used in
// the §6.3 comparison: ECN-marked packets trigger CNPs from the
// notification point (receiver) at most once per CNP interval; the
// reaction point (sender) cuts its rate multiplicatively by alpha/2 and
// recovers through fast-recovery halving steps followed by additive
// increase.
type DCQCN struct {
	Sim  *sim.Simulator
	Name string

	MSS       int
	LineRate  netsim.Bps
	FlowBytes int64 // 0 = long-running
	// MaxInflight is the PFC-style pause point: the sender stops injecting
	// new data while more than this many bytes are unacked, the way a
	// PFC-paused NIC stops draining its queue. Deployed DCQCN runs over a
	// lossless (PFC) fabric, so a sender can never have unbounded data
	// outstanding in full queues; without this bound a lossy simulated
	// fabric livelocks under heavy fan-in (flows keep blasting new data at
	// line rate while every cumulative ack is stalled behind a loss hole).
	// NewDCQCN initializes it to DefaultMaxInflight; setting it to 0
	// afterwards disables the pause entirely.
	MaxInflight int64

	fwd []netsim.Handler

	rate      netsim.Bps
	target    netsim.Bps
	alpha     float64
	g         float64
	stage     int // fast-recovery iterations since last CNP
	rAI       netsim.Bps
	minRate   netsim.Bps
	incTimer  *sim.Timer
	alphaTmr  *sim.Timer
	cnpSeen   bool
	sending   bool
	chain     bool // a pace() chain is scheduled
	highest   int64
	cumAck    int64
	dupAcks   int
	recover   int64 // highest byte outstanding at the last loss escape
	rtoTimer  *sim.Timer
	rtoPeriod sim.Time

	Done       bool
	DoneAt     sim.Time
	OnComplete func(*DCQCN)
	startAt    sim.Time

	// Cached method values so per-packet pacing and per-period timer
	// re-arms do not allocate closures.
	paceFn     func()
	increaseFn func()
	alphaFn    func()
	rtoFn      func()

	// Stats
	CNPs        uint64
	Retransmits uint64
	FastRecov   uint64 // dup-ack loss escapes (see lossEscape)
	DeliveredB  int64
}

// DCQCNTimer is the rate-increase and alpha-update period (55us in [82]).
const DCQCNTimer = 55 * sim.Microsecond

// DefaultMaxInflight is the default PFC-style pause point (see
// DCQCN.MaxInflight): roughly one 100-packet switch buffer of 9KB MTUs.
const DefaultMaxInflight = 256 << 10

// CNPInterval is the minimum gap between CNPs from the notification point
// (50us in [82]).
const CNPInterval = 50 * sim.Microsecond

// NewDCQCN creates a sender at line rate.
func NewDCQCN(s *sim.Simulator, name string, mss int, lineRate netsim.Bps, flowBytes int64, fwd []netsim.Handler) *DCQCN {
	d := &DCQCN{
		Sim:       s,
		Name:      name,
		MSS:       mss,
		LineRate:  lineRate,
		FlowBytes: flowBytes,
		fwd:       fwd,
		rate:      lineRate,
		target:    lineRate,
		g:         1.0 / 256,
		rAI:       40e6, // 40 Mbps additive step [82]
		minRate:   1e6,
		rtoPeriod: 4 * sim.Millisecond,
	}
	d.MaxInflight = DefaultMaxInflight
	d.incTimer = sim.NewTimer(s)
	d.alphaTmr = sim.NewTimer(s)
	d.rtoTimer = sim.NewTimer(s)
	d.paceFn = d.pace
	d.increaseFn = d.increase
	d.alphaFn = d.onAlphaDecay
	d.rtoFn = d.onRTO
	return d
}

// SetRoute installs the forward route (must end at the DCQCNSink).
func (d *DCQCN) SetRoute(route []netsim.Handler) { d.fwd = route }

// Start begins paced transmission.
func (d *DCQCN) Start() {
	d.startAt = d.Sim.Now()
	d.sending = true
	d.pace()
	d.armAlphaDecay()
	d.armRTO()
}

// StartAt schedules Start.
func (d *DCQCN) StartAt(t sim.Time) { d.Sim.At(t, d.Start) }

// FCT returns the completion time.
func (d *DCQCN) FCT() sim.Time { return d.DoneAt - d.startAt }

// Rate returns the current sending rate.
func (d *DCQCN) Rate() netsim.Bps { return d.rate }

func (d *DCQCN) pace() {
	if d.Done || !d.sending {
		d.chain = false
		return
	}
	if d.FlowBytes > 0 && d.highest >= d.FlowBytes {
		// Everything sent; wait for acks (retransmit timer handles loss).
		d.chain = false
		return
	}
	if d.MaxInflight > 0 && d.highest-d.cumAck >= d.MaxInflight {
		// PFC-style pause: too much unacked data outstanding. OnAck
		// resumes the chain as soon as the window drains.
		d.chain = false
		return
	}
	d.chain = true
	size := int64(d.MSS)
	if d.FlowBytes > 0 && d.highest+size > d.FlowBytes {
		size = d.FlowBytes - d.highest
	}
	p := netsim.NewPacket()
	p.Size = int(size)
	p.Seq = d.highest
	p.Flow = d
	p.SetRoute(d.fwd)
	p.SendOn()
	d.highest += size
	gap := sim.Time(float64(size*8) / float64(d.rate) * float64(sim.Second))
	d.Sim.After(gap, d.paceFn)
}

// OnAck handles a cumulative ack from the notification point.
func (d *DCQCN) OnAck(ack int64) {
	if d.Done {
		return
	}
	if ack > d.cumAck {
		d.cumAck = ack
		d.DeliveredB = ack
		d.dupAcks = 0
		d.armRTO()
		if !d.chain && d.sending {
			d.pace() // resume after a PFC-style pause
		}
	} else if ack == d.cumAck && d.highest > d.cumAck {
		// A packet landed beyond a hole: the hole was lost, not delayed.
		// Three duplicates trigger the loss escape at RTT timescale
		// instead of waiting out the full retransmission timeout.
		d.dupAcks++
		if d.dupAcks >= 3 && d.cumAck >= d.recover {
			d.dupAcks = 0
			d.FastRecov++
			d.lossEscape()
			d.highest = d.cumAck
			if !d.chain {
				d.pace()
			}
			d.armRTO()
		}
	}
	if d.FlowBytes > 0 && d.cumAck >= d.FlowBytes {
		d.Done = true
		d.DoneAt = d.Sim.Now()
		d.incTimer.Cancel()
		d.alphaTmr.Cancel()
		d.rtoTimer.Cancel()
		if d.OnComplete != nil {
			d.OnComplete(d)
		}
	}
}

// OnCNP handles a congestion notification packet: multiplicative decrease
// and reset of the recovery state machine.
func (d *DCQCN) OnCNP() {
	if d.Done {
		return
	}
	d.CNPs++
	d.cnpSeen = true
	d.alpha = (1-d.g)*d.alpha + d.g
	d.target = d.rate
	d.rate = netsim.Bps(float64(d.rate) * (1 - d.alpha/2))
	if d.rate < d.minRate {
		d.rate = d.minRate
	}
	d.stage = 0
	d.incTimer.Arm(DCQCNTimer, d.increaseFn)
}

func (d *DCQCN) increase() {
	if d.Done {
		return
	}
	if d.stage < 5 {
		// Fast recovery: halve toward the target.
		d.rate = (d.rate + d.target) / 2
		d.stage++
	} else {
		// Additive increase.
		d.target += d.rAI
		if d.target > d.LineRate {
			d.target = d.LineRate
		}
		d.rate = (d.rate + d.target) / 2
	}
	if d.rate > d.LineRate {
		d.rate = d.LineRate
	}
	d.incTimer.Arm(DCQCNTimer, d.increaseFn)
}

func (d *DCQCN) armAlphaDecay() {
	d.alphaTmr.Arm(DCQCNTimer, d.alphaFn)
}

func (d *DCQCN) onAlphaDecay() {
	if !d.cnpSeen {
		d.alpha *= 1 - d.g
	}
	d.cnpSeen = false
	d.armAlphaDecay()
}

func (d *DCQCN) armRTO() {
	d.rtoTimer.Arm(d.rtoPeriod, d.rtoFn)
}

func (d *DCQCN) onRTO() {
	if d.Done {
		return
	}
	// No cumulative progress for a full period: go back to the hole.
	// DCQCN fabrics are near-lossless so this is a rare recovery path.
	d.Retransmits++
	d.lossEscape()
	d.highest = d.cumAck
	if !d.chain {
		d.pace()
	}
	d.armRTO()
}

// lossEscape is the rate-recovery escape for detected packet loss: a loss
// (dup-acks or a retransmission timeout) means packets died in a full
// queue before the ECN marker could slow us down — congestion more severe
// than any CNP can signal (deployed DCQCN never sees this because PFC
// keeps the fabric lossless). Saturate alpha and cut hard so the offered
// load falls below the loss point and the normal CNP/alpha control loop
// can take over again. Further escapes are suppressed until the hole
// outstanding at this escape is repaired (NewReno-style), so one loss
// burst is answered by one cut.
func (d *DCQCN) lossEscape() {
	d.recover = d.highest
	d.alpha = 1
	d.target = d.rate
	d.rate /= 2
	if d.rate < d.minRate {
		d.rate = d.minRate
	}
	d.stage = 0
	d.incTimer.Arm(DCQCNTimer, d.increaseFn)
}

// DCQCNSink is the notification point: cumulative acks per packet plus
// CNPs for marked packets, rate-limited to one per CNPInterval.
type DCQCNSink struct {
	Sim     *sim.Simulator
	Src     *DCQCN
	rev     []netsim.Handler
	cumAck  int64
	ooo     map[int64]int
	lastCNP sim.Time

	ReceivedB int64
}

// NewDCQCNSink builds the receiver; rev must end at DCQCNAck.
func NewDCQCNSink(s *sim.Simulator, src *DCQCN, rev []netsim.Handler) *DCQCNSink {
	return &DCQCNSink{Sim: s, Src: src, rev: rev, ooo: make(map[int64]int), lastCNP: -1 << 60}
}

// Receive implements netsim.Handler.
func (k *DCQCNSink) Receive(p *netsim.Packet) {
	k.ReceivedB += int64(p.Size)
	if p.Seq == k.cumAck {
		k.cumAck += int64(p.Size)
		for {
			sz, ok := k.ooo[k.cumAck]
			if !ok {
				break
			}
			delete(k.ooo, k.cumAck)
			k.cumAck += int64(sz)
		}
	} else if p.Seq > k.cumAck {
		k.ooo[p.Seq] = p.Size
	}
	ce := p.CE
	p.Release()
	ack := netsim.NewPacket()
	ack.Size = 64
	ack.Ack = true
	ack.Seq = k.cumAck
	ack.Flow = k.Src
	if ce && k.Sim.Now()-k.lastCNP >= CNPInterval {
		k.lastCNP = k.Sim.Now()
		ack.Echo = true // congestion notification packet
	}
	ack.SetRoute(k.rev)
	ack.SendOn()
}

// DCQCNAckEndpoint terminates the reverse route for DCQCN flows.
type DCQCNAckEndpoint struct{}

// Receive implements netsim.Handler.
func (DCQCNAckEndpoint) Receive(p *netsim.Packet) {
	src, ok := p.Flow.(*DCQCN)
	seq, echo := p.Seq, p.Echo
	p.Release()
	if ok {
		if echo {
			src.OnCNP()
		}
		src.OnAck(seq)
	}
}

// DCQCNAck is a shared endpoint.
var DCQCNAck DCQCNAckEndpoint
