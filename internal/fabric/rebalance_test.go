package fabric

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// Rebalancing invariants: hotspot-skewed workloads run with the adaptive
// planner enabled must produce byte-identical digests at every shard
// count (migrations may differ per shard count — the *outcome* may not),
// keep exact cell-fate accounting across migration barriers even while
// links fail and heal, and actually shrink the max-shard event share
// versus static contiguous assignment.

// hotInjector paces cells out of one FA with a skewed rate: hot FAs send
// `boost` times faster. Unlike propInjector it resolves its FA's shard on
// every event and tags its chain with the FA's migration group, so it
// follows the FA through rebalancing migrations.
type hotInjector struct {
	net   *Net
	fa    int
	numFA int
	rng   *rand.Rand
	gap   sim.Time
	stop  sim.Time
	next  uint64
	sent  uint64
}

func (j *hotInjector) start(at sim.Time) {
	sm := j.net.shards[j.net.assign.FA[j.fa]].sm
	prev := sm.Group()
	sm.SetGroup(j.net.GroupOfFA(j.fa))
	sm.AtAction(at, j, 0)
	sm.SetGroup(prev)
}

// Act implements sim.Action: inject one uniquely-tagged cell, reschedule.
func (j *hotInjector) Act(uint64) {
	sm := j.net.shards[j.net.assign.FA[j.fa]].sm
	if sm.Now() >= j.stop {
		return
	}
	c := netsim.NewPacket()
	c.Size = 512
	j.next++
	c.Seq = int64(uint64(j.fa)<<32 | j.next)
	j.net.Inject(c, j.fa, j.rng.Intn(j.numFA))
	j.sent++
	sm.AfterAction(j.gap+sim.Time(j.rng.Intn(500))*sim.Nanosecond, j, 0)
}

// rebalResult is the canonical outcome of one hotspot run plus the
// per-run telemetry the imbalance assertions need.
type rebalResult struct {
	outcome    propResult
	migrations uint64
	maxShare   float64 // max shard's fraction of all executed events
}

// runHotspot executes a hotspot-skewed randomized program: the first
// quarter of the FAs inject 6x faster than the rest, so contiguous
// assignment piles them onto the low shards. failN links fail and heal
// mid-run. With rebalance, the adaptive planner is enabled.
func runHotspot(t *testing.T, seed int64, shards int, rebalance bool, failN int) rebalResult {
	t.Helper()
	cl, err := ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: shards, Lookahead: look})
	cfg := DefaultConfig(10e9, look, seed)
	n, err := NewSharded(eng, cfg, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rebalance {
		if err := n.EnableRebalancing(DefaultRebalance()); err != nil {
			t.Fatal(err)
		}
	}

	sinks := make([]*idSink, cl.NumFA)
	for fa := range sinks {
		sinks[fa] = &idSink{}
		n.SetEgress(fa, sinks[fa])
	}
	drops := &dropLog{}
	n.OnCellDrop = drops.record
	n.VisitQueues(func(q *netsim.Queue) { q.OnDrop = drops.record })

	const dur = 2 * sim.Millisecond
	hot := cl.NumFA / 4
	injectors := make([]*hotInjector, cl.NumFA)
	for fa := 0; fa < cl.NumFA; fa++ {
		gap := 12 * sim.Microsecond
		if fa < hot {
			gap = 2 * sim.Microsecond
		}
		j := &hotInjector{
			net: n, fa: fa, numFA: cl.NumFA,
			rng:  rand.New(rand.NewSource(seed ^ int64(fa)*7919)),
			gap:  gap,
			stop: dur,
		}
		injectors[fa] = j
		j.start(sim.Time(fa) * sim.Microsecond / 4)
	}

	rng := rand.New(rand.NewSource(seed ^ 0x4eba))
	for i := 0; i < failN; i++ {
		lk := rng.Intn(n.NumLinks())
		failAt := dur/4 + sim.Time(rng.Int63n(int64(dur/4)))
		healAt := failAt + sim.Time(rng.Int63n(int64(dur/4))) + 10*look
		eng.At(failAt, func() { n.FailLink(lk) })
		eng.At(healAt, func() { n.RestoreLink(lk) })
	}

	eng.OnBarrier(func(now sim.Time) {
		inj, del, drp := n.Injected(), n.Delivered(), n.Drops()
		if del+drp > inj {
			t.Errorf("t=%d: delivered %d + dropped %d exceeds injected %d", now, del, drp, inj)
		}
	})

	eng.RunUntilQuiet(dur + 20*cfg.ReachDelay)
	if !eng.Quiet() {
		t.Fatalf("shards=%d rebalance=%v: fabric did not drain", shards, rebalance)
	}

	// Exact cell-fate accounting across every migration barrier: the union
	// of delivered and dropped ids is precisely the injected id set.
	var wantInjected uint64
	for _, j := range injectors {
		wantInjected += j.sent
	}
	inj, del, drp := n.Injected(), n.Delivered(), n.Drops()
	if inj != wantInjected {
		t.Fatalf("shards=%d: fabric counted %d injected, injectors sent %d", shards, inj, wantInjected)
	}
	if del+drp != inj {
		t.Fatalf("shards=%d rebalance=%v: conservation violated: %d delivered + %d dropped != %d injected",
			shards, rebalance, del, drp, inj)
	}
	seen := make(map[uint64]int, inj)
	for _, s := range sinks {
		for _, id := range s.ids {
			seen[id]++
		}
	}
	for _, id := range drops.ids {
		seen[id]++
	}
	if uint64(len(seen)) != inj {
		t.Fatalf("shards=%d rebalance=%v: %d distinct cell ids for %d injected",
			shards, rebalance, len(seen), inj)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("shards=%d rebalance=%v: cell %x seen %d times", shards, rebalance, id, cnt)
		}
	}
	if failN > 0 {
		if u := n.UnreachablePairs(); u != 0 {
			t.Fatalf("shards=%d: %d unreachable pairs after full heal", shards, u)
		}
	}

	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range sinks {
		w(uint64(len(s.ids)))
		for _, id := range s.ids {
			w(id)
		}
	}
	dropped := append([]uint64(nil), drops.ids...)
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	for _, id := range dropped {
		w(id)
	}
	var lc [2]LinkCounters
	for i := 0; i < n.NumLinks(); i++ {
		n.ReadLinkCounters(i, &lc)
		for d := 0; d < 2; d++ {
			w(lc[d].FwdBytes)
			w(lc[d].FwdCells)
			w(lc[d].Drops)
		}
	}

	var maxEv, totEv uint64
	for _, ev := range n.ShardEvents() {
		totEv += ev
		if ev > maxEv {
			maxEv = ev
		}
	}
	return rebalResult{
		outcome: propResult{
			injected:  inj,
			delivered: del,
			dropped:   drp,
			events:    eng.Processed(),
			digest:    h.Sum64(),
		},
		migrations: n.Migrations(),
		maxShare:   float64(maxEv) / float64(totEv),
	}
}

// TestRebalanceDigestDeterminism: with the adaptive planner enabled, the
// same hotspot seed must yield byte-identical canonical outcomes at
// shards {1, 2, 4} — and the multi-shard runs must actually migrate, or
// the test would be vacuous.
func TestRebalanceDigestDeterminism(t *testing.T) {
	seeds := []int64{5, 19}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runHotspot(t, seed, 1, true, 0)
			if ref.migrations != 0 {
				t.Fatalf("single-shard run migrated %d times", ref.migrations)
			}
			for _, shards := range []int{2, 4} {
				got := runHotspot(t, seed, shards, true, 0)
				if got.outcome != ref.outcome {
					t.Fatalf("shards=%d diverged from shards=1:\n  1: %v\n  %d: %v",
						shards, ref.outcome, shards, got.outcome)
				}
				if got.migrations == 0 {
					t.Fatalf("shards=%d: hotspot run never migrated — rebalancing untested", shards)
				}
			}
		})
	}
}

// TestRebalanceMigrationUnderFailHeal: exact cell-fate accounting must
// survive migrations interleaved with link failures and heals — including
// a forced migration of a hot FA in the middle of the failure window.
func TestRebalanceMigrationUnderFailHeal(t *testing.T) {
	const seed = 23
	ref := runHotspot(t, seed, 1, true, 3)
	got := runHotspot(t, seed, 4, true, 3)
	if got.outcome != ref.outcome {
		t.Fatalf("shards=4 diverged from shards=1 under fail/heal:\n  1: %v\n  4: %v",
			ref.outcome, got.outcome)
	}
	if got.migrations == 0 {
		t.Fatal("fail/heal hotspot run never migrated — rebalancing untested")
	}
}

// TestForcedMigrationKeepsAccounting drives an explicit MigrateFA of the
// hottest adapter back and forth across a barrier while a link it uses is
// down — the sharpest version of the migration path, with runHotspot's
// exact fate accounting as the oracle.
func TestForcedMigrationKeepsAccounting(t *testing.T) {
	const seed = 31
	cl, err := ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: 2, Lookahead: look})
	cfg := DefaultConfig(10e9, look, seed)
	n, err := NewSharded(eng, cfg, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]*idSink, cl.NumFA)
	for fa := range sinks {
		sinks[fa] = &idSink{}
		n.SetEgress(fa, sinks[fa])
	}
	drops := &dropLog{}
	n.OnCellDrop = drops.record
	n.VisitQueues(func(q *netsim.Queue) { q.OnDrop = drops.record })

	const dur = sim.Millisecond
	injectors := make([]*hotInjector, cl.NumFA)
	for fa := 0; fa < cl.NumFA; fa++ {
		j := &hotInjector{
			net: n, fa: fa, numFA: cl.NumFA,
			rng:  rand.New(rand.NewSource(seed ^ int64(fa)*7919)),
			gap:  3 * sim.Microsecond,
			stop: dur,
		}
		injectors[fa] = j
		j.start(0)
	}
	// Fail FA 0's first uplink, migrate FA 0 while the link is down,
	// migrate it back, then heal.
	eng.At(dur/4, func() { n.FailLink(0) })
	eng.At(dur/4+20*look, func() {
		if err := n.MigrateFA(0, 1); err != nil {
			t.Error(err)
		}
	})
	eng.At(dur/2, func() {
		if err := n.MigrateFA(0, 0); err != nil {
			t.Error(err)
		}
	})
	eng.At(3*dur/4, func() { n.RestoreLink(0) })

	eng.RunUntilQuiet(dur + 20*cfg.ReachDelay)
	if !eng.Quiet() {
		t.Fatal("fabric did not drain")
	}
	if got := n.Migrations(); got != 2 {
		t.Fatalf("expected 2 migrations, counted %d", got)
	}
	var wantInjected uint64
	for _, j := range injectors {
		wantInjected += j.sent
	}
	inj, del, drp := n.Injected(), n.Delivered(), n.Drops()
	if inj != wantInjected {
		t.Fatalf("fabric counted %d injected, injectors sent %d", inj, wantInjected)
	}
	if del+drp != inj {
		t.Fatalf("conservation violated across forced migration: %d + %d != %d", del, drp, inj)
	}
	seen := make(map[uint64]int, inj)
	for _, s := range sinks {
		for _, id := range s.ids {
			seen[id]++
		}
	}
	for _, id := range drops.ids {
		seen[id]++
	}
	if uint64(len(seen)) != inj {
		t.Fatalf("%d distinct cell ids for %d injected", len(seen), inj)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("cell %x seen %d times", id, cnt)
		}
	}
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("%d unreachable pairs after heal", u)
	}
}

// TestRebalanceReducesImbalance: at the same shard count, the adaptive
// planner must execute a smaller max-shard share of events than static
// contiguous assignment on the hotspot workload — the scheduler is doing
// its one job.
func TestRebalanceReducesImbalance(t *testing.T) {
	const seed = 5
	static := runHotspot(t, seed, 2, false, 0)
	adaptive := runHotspot(t, seed, 2, true, 0)
	if adaptive.outcome != static.outcome {
		t.Fatalf("rebalancing changed the outcome:\n  off: %v\n  on:  %v",
			static.outcome, adaptive.outcome)
	}
	if adaptive.migrations == 0 {
		t.Fatal("adaptive run never migrated")
	}
	if adaptive.maxShare >= static.maxShare {
		t.Fatalf("rebalancing did not reduce imbalance: max share %.3f (adaptive) vs %.3f (static)",
			adaptive.maxShare, static.maxShare)
	}
	t.Logf("max-shard event share: static %.3f, adaptive %.3f (%d migrations)",
		static.maxShare, adaptive.maxShare, adaptive.migrations)
}
