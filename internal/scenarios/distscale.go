package scenarios

import (
	"fmt"
	"strconv"
	"strings"

	"stardust/internal/distsim"
	"stardust/internal/distsim/devnet"
	"stardust/internal/engine"
)

// fabric/distscale is the distributed-runtime acceptance sweep: it runs
// one spec with in-process goroutine shards, then re-runs it against real
// forked peer processes at each requested peer count, and fails unless
// every distributed outcome — digest included — is byte-identical to the
// in-process one. The scenario forks the current binary, so the hosting
// main() (or TestMain) must call distsim.MaybeRunPeer first; engine.Main
// documents the same requirement.

// distOne serves spec to npeers forked peers and returns the outcome.
func distOne(spec distsim.Spec, npeers int) (distsim.Outcome, error) {
	l, err := distsim.Listen("127.0.0.1:0")
	if err != nil {
		return distsim.Outcome{}, fmt.Errorf("distscale: loopback listen: %w", err)
	}
	addr := l.Addr().String()
	peers := make([]*devnet.Peer, 0, npeers)
	defer func() {
		for _, p := range peers {
			p.Kill()
			p.Wait()
		}
	}()
	for i := 0; i < npeers; i++ {
		p, err := devnet.Spawn(addr)
		if err != nil {
			l.Close()
			return distsim.Outcome{}, err
		}
		peers = append(peers, p)
	}
	out, err := distsim.Serve(l, distsim.CoordConfig{Spec: spec, Peers: npeers})
	if err != nil {
		return distsim.Outcome{}, err
	}
	for _, p := range peers {
		if werr := p.Wait(); werr != nil {
			return distsim.Outcome{}, fmt.Errorf("distscale: peer exited uncleanly: %w", werr)
		}
	}
	peers = nil
	return out, nil
}

func init() {
	engine.Register(engine.Scenario{
		Name: "fabric/distscale",
		Desc: "distributed runtime sweep: forks real peer processes and requires byte-identical outcomes vs in-process shards",
		Defaults: engine.Params{
			"k": "4", "shards": "4", "topo": "", "dur_ms": "1", "load": "0.5", "cell": "512", "peers": "2,4",
		},
		Docs: map[string]string{
			"k":      "fat-tree K sizing the Clos",
			"shards": "event-loop shards to partition over the peers (must be >= every peer count)",
			"topo":   "topology family sized by k: clos, sshuffle, star, or a full spec string; empty = the -topo flag",
			"dur_ms": "injection duration in ms",
			"load":   "offered load per FA as a fraction of its uplink capacity",
			"cell":   "cell size in bytes",
			"peers":  "comma list of peer-process counts to verify against the in-process run",
		},
		Run: func(c engine.Context) (engine.Result, error) {
			k := c.Params.Int("k", 4)
			shards := c.Params.Int("shards", 4)
			spec := parSpec(c.Seed, effectiveTopo(c), k, shards,
				msTime(c.Params.Int("dur_ms", 1)),
				c.Params.Float("load", 0.5),
				"",
				c.Params.Int("cell", 512),
				1, 0, 0, 0)
			m, err := distsim.NewModel(spec)
			if err != nil {
				return engine.Result{}, err
			}
			want, err := m.RunLocal()
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("k", float64(k), "")
			res.Add("shards", float64(shards), "")
			res.Add("injected_cells", float64(want.Injected), "")
			res.Add("delivered_cells", float64(want.Delivered), "")
			res.Add("events", float64(want.Events), "")
			res.Add("digest_lo", float64(uint32(want.Digest)), "")
			res.Add("digest_hi", float64(want.Digest>>32), "")
			var b strings.Builder
			fmt.Fprintf(&b, "distscale K=%d shards=%d: local digest %016x (%d cells, %d events)\n",
				k, shards, want.Digest, want.Delivered, want.Events)
			for _, ps := range splitList(c.Params.Str("peers", "2,4")) {
				np, aerr := strconv.Atoi(ps)
				if aerr != nil || np < 1 || np > shards {
					return engine.Result{}, fmt.Errorf("distscale: peer count %q must be in [1, shards=%d]", ps, shards)
				}
				got, err := distOne(spec, np)
				if err != nil {
					return engine.Result{}, err
				}
				if got.Digest != want.Digest || got.Injected != want.Injected ||
					got.Delivered != want.Delivered || got.Drops != want.Drops ||
					got.Events != want.Events || got.Unreachable != want.Unreachable {
					return engine.Result{}, fmt.Errorf("distscale: %d-peer outcome diverged: digest %016x vs local %016x (delivered %d vs %d, events %d vs %d)",
						np, got.Digest, want.Digest, got.Delivered, want.Delivered, got.Events, want.Events)
				}
				res.Add(fmt.Sprintf("match_%dpeers", np), 1, "")
				fmt.Fprintf(&b, "  %d peer processes: byte-identical\n", np)
			}
			res.Text = b.String()
			return res, nil
		},
	})
}
