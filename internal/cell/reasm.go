package cell

import (
	"fmt"

	"stardust/internal/sim"
)

// DebugExpire, when set, observes expiry flushes (test hook).
var DebugExpire func(now, stallAt sim.Time, window, started, cursor int)

// Reassembler rebuilds packets from cells arriving out of order (§4.1).
//
// One Reassembler serves one (source FA, traffic class) stream at the
// destination Fabric Adapter. Cells are admitted into a sliding window
// keyed by sequence number; the in-order cursor advances over contiguous
// cells, completing packets as their final segments pass the cursor. If the
// stream stalls for longer than the configured timeout (e.g. a cell lost to
// a link error), the window is flushed and the packets it touched are
// discarded, mirroring the paper's reassembly-timer behaviour.
type Reassembler struct {
	window  map[uint16]*Cell
	started map[uint64]bool // packets whose first segment passed the cursor
	cursor  uint16          // next expected sequence number
	maxSkew int             // maximum out-of-order distance accepted
	timeout sim.Time
	stallAt sim.Time // time the current head-of-line gap appeared
	stalled bool

	// Stats
	Completed  uint64 // packets fully reassembled
	Discarded  uint64 // packets dropped on timeout/overflow
	CellsSeen  uint64
	CellsStale uint64 // cells behind the cursor (dropped)
	Resyncs    uint64 // stream jumps after loss bursts
}

// NewReassembler creates a reassembler accepting cells up to maxSkew ahead
// of the in-order cursor (bounded by Fabric Element queue sizes, §4.1) and
// flushing streams stalled longer than timeout.
func NewReassembler(maxSkew int, timeout sim.Time) *Reassembler {
	if maxSkew < 1 || maxSkew > 1<<14 {
		panic(fmt.Sprintf("cell: maxSkew %d out of range", maxSkew))
	}
	return &Reassembler{
		window:  make(map[uint16]*Cell),
		started: make(map[uint64]bool),
		maxSkew: maxSkew,
		timeout: timeout,
	}
}

// seqAhead returns how far s is ahead of the cursor in modular arithmetic,
// interpreting distances >= 2^15 as "behind".
func (r *Reassembler) seqAhead(s uint16) int {
	d := uint16(s - r.cursor)
	if d < 1<<15 {
		return int(d)
	}
	return int(d) - 1<<16
}

// Push admits a cell at the given time and returns any packets completed by
// the in-order advance.
func (r *Reassembler) Push(now sim.Time, c *Cell) []PacketRef {
	r.CellsSeen++
	ahead := r.seqAhead(c.Header.Seq)
	if ahead < 0 {
		r.CellsStale++
		// A stale cell can carry the tail of a packet we once started;
		// account the loss so started does not leak.
		for _, seg := range c.Segments {
			if seg.Last && r.started[seg.Packet.ID] {
				delete(r.started, seg.Packet.ID)
				r.Discarded++
			}
		}
		return nil
	}
	if ahead >= r.maxSkew {
		// The stream has jumped far beyond the window — a burst of cells
		// was lost (e.g. a device died with cells in flight, §5.10).
		// Normal spraying cannot reorder past the skew bound, so
		// resynchronize: flush everything pending and resume at the
		// arriving cell. Waiting for the timer instead would deadlock
		// against a live stream that keeps advancing.
		r.Resyncs++
		r.flush()
		r.cursor = c.Header.Seq
	}
	r.window[c.Header.Seq] = c

	var done []PacketRef
	for {
		nc, ok := r.window[r.cursor]
		if !ok {
			break
		}
		delete(r.window, r.cursor)
		r.cursor++
		for _, seg := range nc.Segments {
			if seg.First {
				r.started[seg.Packet.ID] = true
			}
			if seg.Last {
				if r.started[seg.Packet.ID] {
					delete(r.started, seg.Packet.ID)
					done = append(done, seg.Packet)
					r.Completed++
				} else {
					// The head of this packet was flushed earlier; the
					// tail alone cannot form a packet.
					r.Discarded++
				}
			}
		}
	}
	if len(r.window) == 0 {
		r.stalled = false
	} else if !r.stalled {
		r.stalled = true
		r.stallAt = now
	}
	return done
}

// Expire flushes the window if the head-of-line gap has persisted past the
// timeout (a reassembly-timer expiry, §4.1: "the packet is discarded").
// Returns the number of packets discarded.
func (r *Reassembler) Expire(now sim.Time) int {
	if !r.stalled || now-r.stallAt < r.timeout {
		return 0
	}
	if DebugExpire != nil {
		DebugExpire(now, r.stallAt, len(r.window), len(r.started), int(r.cursor))
	}
	maxAhead := 0
	for s := range r.window {
		if a := r.seqAhead(s); a > maxAhead {
			maxAhead = a
		}
	}
	n := r.flush()
	// Skip the cursor past the flushed region; the next in-flight cell
	// resynchronizes the stream.
	r.cursor += uint16(maxAhead + 1)
	return n
}

// flush drops every pending cell and every incomplete packet, returning
// the number of packets discarded.
func (r *Reassembler) flush() int {
	discarded := make(map[uint64]bool)
	for s, c := range r.window {
		for _, seg := range c.Segments {
			discarded[seg.Packet.ID] = true
		}
		delete(r.window, s)
	}
	// Packets mid-flight across the gap (head seen, tail not yet arrived)
	// can never complete either.
	for id := range r.started {
		discarded[id] = true
		delete(r.started, id)
	}
	r.stalled = false
	r.Discarded += uint64(len(discarded))
	return len(discarded)
}

// Pending returns the number of cells parked in the out-of-order window.
func (r *Reassembler) Pending() int { return len(r.window) }

// Cursor returns the next expected sequence number.
func (r *Reassembler) Cursor() uint16 { return r.cursor }
