package mgmt

import (
	"log"
	"sync"

	"stardust/internal/sim"
)

// EventKind classifies management-plane events.
type EventKind string

// The event kinds the controller publishes.
const (
	// EventLinkDown: a serial link failed; the adjacent devices detected
	// it immediately (keepalive, §5.9).
	EventLinkDown EventKind = "link-down"
	// EventLinkUp: a failed serial link recovered.
	EventLinkUp EventKind = "link-up"
	// EventReachUpdate: an FE1's reachable set landed on the spine tier —
	// the delayed withdrawal (after a failure) or readvertisement (after
	// a recovery) of §5.8 / Appendix E.
	EventReachUpdate EventKind = "reach-update"
	// EventAnomaly: the detector raised an anomaly.
	EventAnomaly EventKind = "anomaly"
	// EventAnomalyCleared: a previously raised anomaly stopped firing.
	EventAnomalyCleared EventKind = "anomaly-cleared"
)

// Event is one management-plane notification. Seq is a strictly
// increasing sequence number assigned by the bus at publish time; Time is
// the simulated instant the event describes. Link is the topology link
// index for link-scoped events and -1 otherwise.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   sim.Time  `json:"sim_ps"`
	Kind   EventKind `json:"kind"`
	Link   int       `json:"link"`
	Device string    `json:"device,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Bus is the management-plane event bus: a bounded ring of recent events
// (the queryable log) plus fan-out to live subscribers. Publishing never
// blocks — a subscriber that stops draining its channel loses events and
// the loss is counted — so the simulation goroutine can publish from
// inside fabric hooks without ever stalling on a slow HTTP client.
type Bus struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event
	head int // index of the oldest retained event
	n    int
	subs map[int]chan Event
	next int

	// Dropped counts events lost to full subscriber channels.
	Dropped uint64

	subDrops map[int]uint64 // per-subscriber losses (live subscribers only)
	evicted  uint64         // retained-log entries overwritten by ring wrap
	warned   bool           // one-shot loss warning emitted
}

// NewBus returns a bus retaining the last capacity events.
func NewBus(capacity int) *Bus {
	if capacity < 1 {
		capacity = 1
	}
	return &Bus{
		ring:     make([]Event, capacity),
		subs:     make(map[int]chan Event),
		subDrops: make(map[int]uint64),
	}
}

// Publish stamps e with the next sequence number, appends it to the ring
// and fans it out. It returns the stamped event.
func (b *Bus) Publish(e Event) Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	e.Seq = b.seq
	i := b.head + b.n
	if i >= len(b.ring) {
		i -= len(b.ring)
	}
	if b.n == len(b.ring) {
		b.head++ // overwrite the oldest
		if b.head == len(b.ring) {
			b.head = 0
		}
		b.evicted++
	} else {
		b.n++
	}
	b.ring[i] = e
	for id, ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.Dropped++
			b.subDrops[id]++
			if !b.warned {
				b.warned = true
				log.Printf("mgmt: event bus dropping events (subscriber %d not draining); further losses are counted, not logged", id)
			}
		}
	}
	return e
}

// Subscribe returns a channel receiving every event published after the
// call, buffered to buf, and a cancel function that unsubscribes and
// closes the channel. Events overflowing the buffer are dropped.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			delete(b.subDrops, id)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// Since returns up to max retained events with Seq > seq, oldest first.
// max <= 0 means all retained.
func (b *Bus) Since(seq uint64, max int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for i := 0; i < b.n; i++ {
		j := b.head + i
		if j >= len(b.ring) {
			j -= len(b.ring)
		}
		if b.ring[j].Seq <= seq {
			continue
		}
		out = append(out, b.ring[j])
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}

// LastSeq returns the sequence number of the most recent event.
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// BusStats is the bus's own loss accounting: events published, retained
// in the queryable ring, evicted from it by wrap-around, and dropped on
// the live fan-out — in total and per still-connected subscriber. Before
// this existed both loss paths were silent.
type BusStats struct {
	Published     uint64         `json:"published"`
	Retained      int            `json:"retained"`
	Capacity      int            `json:"capacity"`
	Evicted       uint64         `json:"evicted"`
	Dropped       uint64         `json:"dropped"`
	Subscribers   int            `json:"subscribers"`
	PerSubscriber map[int]uint64 `json:"dropped_per_subscriber,omitempty"`
}

// Stats snapshots the loss counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BusStats{
		Published:   b.seq,
		Retained:    b.n,
		Capacity:    len(b.ring),
		Evicted:     b.evicted,
		Dropped:     b.Dropped,
		Subscribers: len(b.subs),
	}
	if len(b.subDrops) > 0 {
		st.PerSubscriber = make(map[int]uint64, len(b.subDrops))
		for id, n := range b.subDrops {
			st.PerSubscriber[id] = n
		}
	}
	return st
}
