package distsim

import (
	"bytes"
	"strings"
	"testing"

	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// telemSpec is the standard recording workload for these tests: the small
// hotspot spec with a 20us scrape window.
func telemSpec(shards int) Spec {
	s := smallSpec(shards)
	s.Telem = 20 * sim.Microsecond
	return s
}

// recordBytes runs Record and returns the stream.
func recordBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Record(spec, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecordRequiresTelem(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(smallSpec(1), &buf); err == nil {
		t.Fatal("Record accepted a spec with Telem=0")
	}
}

// TestRecordShardInvariance is the core determinism claim of the stream
// format: the recorded bytes are a pure function of the spec minus its
// shard count. Identical streams at 1, 2 and 4 shards, with a sane
// self-describing header.
func TestRecordShardInvariance(t *testing.T) {
	var streams [][]byte
	for _, shards := range []int{1, 2, 4} {
		streams = append(streams, recordBytes(t, telemSpec(shards)))
	}
	for i := 1; i < len(streams); i++ {
		if !bytes.Equal(streams[0], streams[i]) {
			t.Fatalf("stream at %d shards differs from 1 shard (%d vs %d bytes)",
				[]int{1, 2, 4}[i], len(streams[i]), len(streams[0]))
		}
	}

	hdr, err := telemetry.NewReader(bytes.NewReader(streams[0])).Header()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.K != 4 || hdr.Seed != 7 || hdr.Dirs == 0 || hdr.FAs == 0 {
		t.Fatalf("header does not describe the run: %+v", hdr)
	}
	spec, err := SpecOf(streams[0])
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 0 {
		t.Fatalf("embedded spec leaks the shard count: %d", spec.Shards)
	}
	if spec.K != 4 || spec.Seed != 7 || spec.Telem != 20*sim.Microsecond {
		t.Fatalf("embedded spec mangled: %+v", spec)
	}
}

// An unchanged replay of a recorded stream must reproduce it byte for
// byte — the digital twin's zero-divergence baseline.
func TestReplayUnchangedIsByteIdentical(t *testing.T) {
	stream := recordBytes(t, telemSpec(1))
	div, _, replayed, err := Replay(stream, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if !div.ByteIdentical || !div.Zero {
		t.Fatalf("unchanged replay diverged: %s", div)
	}
	if !bytes.Equal(stream, replayed) {
		t.Fatal("replayed stream bytes differ despite ByteIdentical report")
	}
	// Shards is an execution knob, not a world knob: replaying sharded
	// must still be byte-identical.
	div2, _, _, err := Replay(stream, Overrides{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !div2.ByteIdentical {
		t.Fatalf("sharded replay changed the stream: %s", div2)
	}
}

// A what-if replay that injects a failure must diverge, and the report
// must localize the divergence.
func TestReplayWhatIfFailureDiverges(t *testing.T) {
	stream := recordBytes(t, telemSpec(1))
	div, _, _, err := Replay(stream, Overrides{FailLinks: []int{0}, FailAt: 50 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if div.ByteIdentical || div.Zero {
		t.Fatalf("failing a link produced no divergence: %s", div)
	}
	if !div.ShapeMatch {
		t.Fatalf("same-K what-if lost shape match: %s", div)
	}
	if div.DivergentWindows == 0 || div.FirstDivergentWindow < 0 || div.DirsDiverged == 0 {
		t.Fatalf("divergence not localized: %+v", div)
	}
	// The failure lands at 50us; windows before it are identical, so the
	// first divergent window cannot be window 0 (first scrape at 20us).
	if div.FirstDivergentWindow == 0 {
		t.Fatalf("divergence before the injected failure: %+v", div)
	}
}

func TestReplayRejectsSpeclessStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := telemetry.NewWriter(&buf, telemetry.StreamHeader{Dirs: 2, FAs: 1, ScrapePs: sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	if _, _, _, err := Replay(buf.Bytes(), Overrides{}); err == nil ||
		!strings.Contains(err.Error(), "no spec") {
		t.Fatalf("spec-less stream accepted for replay: %v", err)
	}
}

// The recorded stream feeds the offline analyzer pipeline: the hotspot
// workload must yield findings without errors.
func TestRecordedStreamAnalyzes(t *testing.T) {
	spec := telemSpec(1)
	spec.FailN = 1
	spec.FailAt = 80 * sim.Microsecond
	stream := recordBytes(t, spec)
	findings, err := telemetry.Analyze(bytes.NewReader(stream), nil, telemetry.DefaultAnalyzers()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("analyzers silent over a hotspot run with a link failure")
	}
}

// TestDistStreamMatchesLocal closes the loop across process placements: a
// coordinator with two in-process peers must emit the exact bytes the
// local goroutine-sharded run produces, while accounting the run in
// CoordStats.
func TestDistStreamMatchesLocal(t *testing.T) {
	spec := healSpec(4)
	spec.Telem = 20 * sim.Microsecond

	var local bytes.Buffer
	if _, err := Record(spec, &local); err != nil {
		t.Fatal(err)
	}

	var dist bytes.Buffer
	stats := NewCoordStats()
	if _, err := serveWith(t, spec, 2, CoordConfig{Stream: &dist, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		t.Fatalf("distributed stream differs from local (%d vs %d bytes)",
			dist.Len(), local.Len())
	}

	snap := stats.Snapshot()
	if snap.Runs != 1 || snap.Windows == 0 || snap.TelemetryWindows == 0 {
		t.Fatalf("coordinator stats missed the run: %+v", snap)
	}
	if snap.WireBytes == 0 || snap.MailFrames == 0 {
		t.Fatalf("wire accounting empty: %+v", snap)
	}
	if snap.BarrierLatency.Count == 0 || snap.WindowMailBytes.Count == 0 {
		t.Fatalf("histograms never observed: barrier=%d mail=%d",
			snap.BarrierLatency.Count, snap.WindowMailBytes.Count)
	}
}
