package device

import (
	"testing"
	"testing/quick"
)

func TestStardustNearLineRateAllSizes(t *testing.T) {
	sw := NetFPGA(Packed, 150e6)
	for s := 64; s <= 1518; s++ {
		if th := sw.Throughput(s); th < 0.965 {
			t.Fatalf("Stardust at %dB: %.3f of line rate", s, th)
		}
	}
}

func TestReferenceFullLineRateOnlyAt180MHz(t *testing.T) {
	// §6.1.1: "The Reference Switch achieves full line rate for all packet
	// sizes only at a clock frequency of 180MHz".
	at180 := NetFPGA(Reference, 180e6)
	for s := 64; s <= 1518; s++ {
		if at180.Throughput(s) < 0.9999 {
			t.Fatalf("reference at 180MHz below line rate at %dB", s)
		}
	}
	at150 := NetFPGA(Reference, 150e6)
	worst := 1.0
	for s := 64; s <= 1518; s++ {
		if th := at150.Throughput(s); th < worst {
			worst = th
		}
	}
	if worst > 0.95 {
		t.Fatalf("reference at 150MHz should miss line rate somewhere, worst=%.3f", worst)
	}
	at175 := NetFPGA(Reference, 175e6)
	ok := true
	for s := 64; s <= 1518; s++ {
		if at175.Throughput(s) < 0.9999 {
			ok = false
		}
	}
	if ok {
		t.Fatal("reference already at line rate below 180MHz; anchor too loose")
	}
}

func TestNDPFailsAt65_97_129EvenAt200MHz(t *testing.T) {
	sw := NetFPGA(NDP, 200e6)
	for _, s := range []int{65, 97, 129} {
		if sw.Throughput(s) >= 0.9999 {
			t.Fatalf("NDP at %dB reached line rate at 200MHz", s)
		}
	}
}

func TestFig8aAnchorsAt150MHz(t *testing.T) {
	pack := NetFPGA(Packed, 150e6)
	ref := NetFPGA(Reference, 150e6)
	ndp := NetFPGA(NDP, 150e6)
	cells := NetFPGA(Cells, 150e6)

	maxGain := func(other Switch) float64 {
		worst := 0.0
		for s := 64; s <= 1518; s++ {
			g := pack.Throughput(s)/other.Throughput(s) - 1
			if g > worst {
				worst = g
			}
		}
		return worst
	}
	// "up to 15%, 30% and 49% better than the Reference Switch, NDP, and
	// non-packed cells" — shape anchors with tolerance for the model.
	if g := maxGain(ref); g < 0.10 || g > 0.25 {
		t.Fatalf("gain vs reference = %.2f, want ~0.15", g)
	}
	// The printed "up to 30%" is over Fig 8a's plotted range; the 65B
	// anchor (NDP misses line rate even at 200 MHz) forces a worst case
	// beyond 33% at 150 MHz, so accept the wider band and record the
	// divergence in EXPERIMENTS.md.
	if g := maxGain(ndp); g < 0.25 || g > 0.70 {
		t.Fatalf("gain vs NDP = %.2f, want ~0.30-0.60", g)
	}
	if g := maxGain(cells); g < 0.40 || g > 0.70 {
		t.Fatalf("gain vs cells = %.2f, want ~0.49", g)
	}
}

func TestCellQuantizationSawtooth(t *testing.T) {
	// A packet one byte over the cell payload boundary wastes almost a full
	// cell in the non-packed design (§3.4) but not in the packed one.
	cells := NetFPGA(Cells, 150e6)
	// With 64B cells and 4B framing the boundary is at S+4 = 64 -> S=60.
	atBoundary := cells.CyclesPerPacket(60)
	overBoundary := cells.CyclesPerPacket(61)
	if overBoundary <= atBoundary {
		t.Fatal("no quantization jump")
	}
	pack := NetFPGA(Packed, 150e6)
	if pack.CyclesPerPacket(61)-pack.CyclesPerPacket(60) > 0.04 {
		t.Fatal("packed design should be smooth across the boundary")
	}
}

// Property: throughput is in (0,1], goodput never exceeds the wire
// goodput, and the packed design never loses to the non-packed design.
func TestPropertyThroughputBounds(t *testing.T) {
	f := func(sRaw uint16, clkRaw uint8) bool {
		s := int(sRaw%1455) + 64
		clk := float64(clkRaw%150+50) * 1e6
		for _, d := range AllDesigns {
			sw := NetFPGA(d, clk)
			th := sw.Throughput(s)
			if th <= 0 || th > 1 {
				return false
			}
			if sw.GoodputBps(s) > sw.LineGoodputBps(s)+1 {
				return false
			}
		}
		return NetFPGA(Packed, clk).Throughput(s) >= NetFPGA(Cells, clk).Throughput(s)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixThroughputOrdering(t *testing.T) {
	// Fig 8b: on every trace mix, Stardust >= Switch >= Cells.
	sizes := []int{64, 256, 575, 1500}
	weights := []float64{0.4, 0.2, 0.2, 0.2}
	pack := NetFPGA(Packed, 150e6).MixThroughput(sizes, weights)
	ref := NetFPGA(Reference, 150e6).MixThroughput(sizes, weights)
	cells := NetFPGA(Cells, 150e6).MixThroughput(sizes, weights)
	if !(pack >= ref && ref >= cells) {
		t.Fatalf("ordering violated: pack=%.3f ref=%.3f cells=%.3f", pack, ref, cells)
	}
	if pack < 0.97 {
		t.Fatalf("Stardust mix throughput %.3f, want ~1", pack)
	}
}

func TestFig8aRows(t *testing.T) {
	rows := Fig8a(150e6, []int{64, 512, 1500})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Gbps) != 4 {
			t.Fatalf("missing designs at %dB", r.PacketBytes)
		}
		if r.Gbps[Packed] > 40.0 {
			t.Fatalf("goodput above 40G at %dB", r.PacketBytes)
		}
	}
}
