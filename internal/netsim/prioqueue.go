package netsim

import "stardust/internal/sim"

// PriorityQueue is a two-band strict-priority output queue (Appendix F's
// traffic-class scenario): band-0 (high) packets always transmit before
// band-1 (low). Bands share the byte budget; when full, low-priority
// packets are dropped first, then arriving highs tail-drop.
type PriorityQueue struct {
	Name     string
	Sim      *sim.Simulator
	Rate     Bps
	MaxBytes int

	// Classify returns the band (0 = high, 1 = low) for a packet.
	Classify func(*Packet) int

	bands [2][]*Packet
	bytes int
	busy  bool

	Drops     [2]uint64
	Forwarded [2]uint64
}

// NewPriorityQueue builds a two-band strict priority queue.
func NewPriorityQueue(s *sim.Simulator, name string, rate Bps, maxBytes int, classify func(*Packet) int) *PriorityQueue {
	return &PriorityQueue{Name: name, Sim: s, Rate: rate, MaxBytes: maxBytes, Classify: classify}
}

// Receive implements Handler.
func (q *PriorityQueue) Receive(p *Packet) {
	band := 0
	if q.Classify != nil {
		band = q.Classify(p) & 1
	}
	if q.bytes+p.Size > q.MaxBytes {
		// Evict queued low-priority bytes for an arriving high.
		if band == 0 {
			for len(q.bands[1]) > 0 && q.bytes+p.Size > q.MaxBytes {
				victim := q.bands[1][len(q.bands[1])-1]
				q.bands[1] = q.bands[1][:len(q.bands[1])-1]
				q.bytes -= victim.Size
				q.Drops[1]++
			}
		}
		if q.bytes+p.Size > q.MaxBytes {
			q.Drops[band]++
			return
		}
	}
	q.bands[band] = append(q.bands[band], p)
	q.bytes += p.Size
	if !q.busy {
		q.busy = true
		q.serve()
	}
}

func (q *PriorityQueue) serve() {
	var p *Packet
	var band int
	for b := 0; b < 2; b++ {
		if len(q.bands[b]) > 0 {
			p = q.bands[b][0]
			q.bands[b] = q.bands[b][1:]
			band = b
			break
		}
	}
	if p == nil {
		q.busy = false
		return
	}
	tx := sim.Time(float64(p.Size*8) / float64(q.Rate) * float64(sim.Second))
	q.Sim.After(tx, func() {
		q.bytes -= p.Size
		q.Forwarded[band]++
		p.SendOn()
		q.serve()
	})
}
