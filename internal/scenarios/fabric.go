package scenarios

import (
	"fmt"
	"strings"

	"stardust/internal/engine"
	"stardust/internal/experiments"
	"stardust/internal/fabricsim"
	"stardust/internal/queueing"
)

func init() {
	engine.Register(engine.Scenario{
		Name: "fabric/fig9",
		Desc: "Fig 9 two-tier cell fabric: latency and queue distributions vs utilization",
		Defaults: engine.Params{
			"scale": "4", "utils": "0.66,0.8,0.92,0.95,1.2", "dist": "false",
		},
		Docs: map[string]string{
			"scale": "linear downscale of the Fig 9 topology (1 = paper size)",
			"utils": "comma list of offered utilizations (one instance each)",
			"dist":  "also emit the full latency and queue-size distributions",
		},
		Variants: func(p engine.Params) []engine.Params {
			var out []engine.Params
			for _, u := range p.Floats("utils", []float64{0.8}) {
				out = append(out, p.With("util", fmt.Sprintf("%g", u)))
			}
			return out
		},
		Run: func(c engine.Context) (engine.Result, error) {
			util := c.Params.Float("util", 0.8)
			scale := c.Params.Int("scale", 4)
			var cfg fabricsim.Config
			if scale <= 1 {
				cfg = fabricsim.Fig9Config(util)
			} else {
				cfg = fabricsim.Scaled(util, scale)
			}
			cfg.Seed = c.Seed
			r, err := fabricsim.Run(cfg)
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("lat_p50_us", r.Latency.Quantile(0.5), "us")
			res.Add("lat_p99_us", r.Latency.Quantile(0.99), "us")
			res.Add("lat_p999_us", r.Latency.Quantile(0.999), "us")
			res.Add("queue_p99_cells", r.QueueHist.Quantile(0.99), "cells")
			res.Add("mean_queue_cells", r.MeanQueue, "cells")
			res.Add("effective_util_pct", 100*r.EffectiveUtil, "%")
			res.Add("cells_dropped", float64(r.CellsDropped), "")
			md1 := "-"
			if util < 1 {
				if m, err := queueing.NewMD1(util); err == nil {
					md1 = fmt.Sprintf("%.2f", m.MeanQueue())
					res.Add("md1_mean_queue_cells", m.MeanQueue(), "cells")
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "util %4.2f (scale 1/%d): lat p50=%.2fus p99=%.2fus p999=%.2fus  maxQ p99=%.0f  meanQ=%.2f  eff-util=%.1f%%  M/D/1 meanQ=%s\n",
				util, scale,
				r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999),
				r.QueueHist.Quantile(0.99), r.MeanQueue, 100*r.EffectiveUtil, md1)
			if c.Params.Bool("dist", false) {
				b.WriteString("# latency distribution (us, probability)\n")
				r.Latency.WriteTSV(&b)
				b.WriteString("# queue-size distribution (cells, probability)\n")
				r.QueueHist.WriteTSV(&b)
			}
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name:     "fabric/pushpull",
		Desc:     "Fig 7 / Fig 12 push-vs-pull fabric: congested ports must not steal throughput",
		Defaults: engine.Params{"tc": "both"},
		Docs: map[string]string{
			"tc": "traffic classes on the congested port: true, false, or both",
		},
		Variants: func(p engine.Params) []engine.Params {
			switch p.Str("tc", "both") {
			case "true":
				return []engine.Params{p.With("tc", "true")}
			case "false":
				return []engine.Params{p.With("tc", "false")}
			}
			return []engine.Params{p.With("tc", "false"), p.With("tc", "true")}
		},
		Run: func(c engine.Context) (engine.Result, error) {
			r := experiments.PushPull(c.Params.Bool("tc", false))
			var res engine.Result
			res.Add("ethernet_a1_pct", 100*r.EthernetA1, "%")
			res.Add("ethernet_a2_pct", 100*r.EthernetA2, "%")
			res.Add("ethernet_b_pct", 100*r.EthernetB, "%")
			res.Add("ethernet_egress_pct", 100*r.EthernetTotal, "%")
			res.Add("stardust_a1_pct", 100*r.StardustA1, "%")
			res.Add("stardust_a2_pct", 100*r.StardustA2, "%")
			res.Add("stardust_b_pct", 100*r.StardustB, "%")
			res.Add("stardust_egress_pct", 100*r.StardustTotal, "%")
			var b strings.Builder
			experiments.WritePushPull(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "fabric/recovery",
		Desc: "Appendix E self-healing: measured link-failure withdrawal vs the closed form",
		Run: func(c engine.Context) (engine.Result, error) {
			r, err := experiments.Recovery()
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("local_us", r.LocalUs, "us")
			res.Add("propagated_us", r.PropagatedUs, "us")
			res.Add("analytic_us", r.AnalyticUs, "us")
			res.Add("detect_bound_us", r.DetectUs, "us")
			var b strings.Builder
			experiments.WriteRecovery(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})
}
