// Wire protocol: length-prefixed frames over TCP.
//
//	frame   := u32be length | u8 type | u8 flags | body
//	length  counts type+flags+body. flags bit0 = body is DEFLATE-compressed.
//
// Control frames (HELLO, WELCOME, READY, REPORT, ERROR) carry JSON — they
// happen once per run. The per-window frames (GO, DONE) carry a compact
// varint batch: one frame per peer per window in each direction, however
// much mail the window produced, optionally compressed when large.
//
//	GO    := uvarint window | mailbatch
//	DONE  := uvarint window | uvarint ownedPending | mailbatch
//	batch := uvarint count | count * entry
//	entry := uvarint dstShard | uvarint at | uvarint lane |
//	         u8 kind | uvarint arg | uvarint len | payload
//
// Entries preserve send order per (source, destination) pair; the (time,
// lane) event key makes cross-source interleaving irrelevant, which is
// what lets the receiver inject a batch with plain heap insertions and
// still match the in-process execution byte for byte.
package distsim

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"stardust/internal/sim"
)

// protoVersion 2 added the optional telemetry section on DONE frames
// (present whenever Spec.Telem > 0).
const protoVersion = 2

// Frame types.
const (
	tHello   byte = 1 // peer -> coord: version check
	tWelcome byte = 2 // coord -> peer: spec, identity, partition map, resume log
	tReady   byte = 3 // peer -> coord: model hash after (re)build and replay
	tGo      byte = 4 // coord -> peer: start window w, inbound mail attached
	tDone    byte = 5 // peer -> coord: window w finished, outbound mail attached
	tFinish  byte = 6 // coord -> peer: run complete, report requested
	tReport  byte = 7 // peer -> coord: owned counters
	tError   byte = 8 // either way: deterministic failure, connection ends
)

const (
	flagDeflate byte = 1 << 0

	maxFrame      = 1 << 28 // hard cap against corrupt length prefixes
	compressFloor = 512     // don't bother deflating tiny frames
)

type helloMsg struct {
	Version int `json:"v"`
}

type welcomeMsg struct {
	Spec   Spec  `json:"spec"`
	PeerID int   `json:"peer"`
	NPeers int   `json:"npeers"`
	Owners []int `json:"owners"`
	// Resume asks the peer to rebuild and replay windows [0, Resume)
	// from Mail before going live: Mail[w] is the batch the peer's shards
	// received going into window w (the checkpoint, see checkpoint.go).
	Resume int      `json:"resume,omitempty"`
	Mail   [][]byte `json:"mail,omitempty"`
}

type readyMsg struct {
	Hash uint64 `json:"hash"`
}

type shardReport struct {
	ID           int    `json:"id"`
	Injected     uint64 `json:"inj"`
	Delivered    uint64 `json:"del"`
	DeadDrops    uint64 `json:"dead"`
	NoRouteDrops uint64 `json:"noroute"`
	Processed    uint64 `json:"events"`
}

type sinkReport struct {
	FA    int    `json:"fa"`
	Cells uint64 `json:"cells"`
	Bytes uint64 `json:"bytes"`
}

type dirReport struct {
	Dir      int    `json:"dir"`
	FwdBytes uint64 `json:"bytes"`
	FwdCells uint64 `json:"cells"`
	Drops    uint64 `json:"drops"`
}

type spineReport struct {
	Spine       int `json:"spine"`
	Unreachable int `json:"unreach"`
}

// peerReport is everything a peer owns of the final outcome: each entity
// (shard, FA sink, directed link, spine table) is owned by exactly one
// peer, and the coordinator verifies full disjoint coverage when merging.
type peerReport struct {
	Shards []shardReport `json:"shards"`
	Sinks  []sinkReport  `json:"sinks"`
	Dirs   []dirReport   `json:"dirs"`
	Spines []spineReport `json:"spines"`
}

// writeFrame emits one frame. When compress is set and the body clears
// the floor, the body is DEFLATE-compressed (and kept only if smaller).
func writeFrame(w io.Writer, typ byte, body []byte, compress bool) error {
	flags := byte(0)
	if compress && len(body) >= compressFloor {
		var zb bytes.Buffer
		zw, err := flate.NewWriter(&zb, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := zw.Write(body); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if zb.Len() < len(body) {
			body = zb.Bytes()
			flags = flagDeflate
		}
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(2+len(body)))
	hdr[4] = typ
	hdr[5] = flags
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame and returns its type and decompressed body.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 || n > maxFrame {
		return 0, nil, fmt.Errorf("distsim: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	typ, flags, body := buf[0], buf[1], buf[2:]
	if flags&flagDeflate != 0 {
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(body)))
		if err != nil {
			return 0, nil, fmt.Errorf("distsim: corrupt compressed frame: %w", err)
		}
		body = out
	}
	return typ, body, nil
}

// mailEntry is one cross-shard message in wire form.
type mailEntry struct {
	dst  int
	at   sim.Time
	lane int32
	kind byte
	arg  uint64
	pay  []byte
}

func appendEntry(b []byte, e mailEntry) []byte {
	b = binary.AppendUvarint(b, uint64(e.dst))
	b = binary.AppendUvarint(b, uint64(e.at))
	b = binary.AppendUvarint(b, uint64(e.lane))
	b = append(b, e.kind)
	b = binary.AppendUvarint(b, e.arg)
	b = binary.AppendUvarint(b, uint64(len(e.pay)))
	b = append(b, e.pay...)
	return b
}

func readEntry(b []byte) (mailEntry, []byte, error) {
	var e mailEntry
	dst, k := binary.Uvarint(b)
	if k <= 0 {
		return e, nil, fmt.Errorf("distsim: truncated mail entry dst")
	}
	b = b[k:]
	at, k := binary.Uvarint(b)
	if k <= 0 {
		return e, nil, fmt.Errorf("distsim: truncated mail entry time")
	}
	b = b[k:]
	lane, k := binary.Uvarint(b)
	if k <= 0 {
		return e, nil, fmt.Errorf("distsim: truncated mail entry lane")
	}
	b = b[k:]
	if len(b) < 1 {
		return e, nil, fmt.Errorf("distsim: truncated mail entry kind")
	}
	kind := b[0]
	b = b[1:]
	arg, k := binary.Uvarint(b)
	if k <= 0 {
		return e, nil, fmt.Errorf("distsim: truncated mail entry arg")
	}
	b = b[k:]
	plen, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b[k:])) < plen {
		return e, nil, fmt.Errorf("distsim: truncated mail entry payload")
	}
	e = mailEntry{
		dst:  int(dst),
		at:   sim.Time(at),
		lane: int32(lane),
		kind: kind,
		arg:  arg,
		pay:  b[k : k+int(plen)],
	}
	return e, b[k+int(plen):], nil
}

// emptyBatch is a zero-entry mail batch.
var emptyBatch = []byte{0}

// Telemetry section (appended to DONE after the mail batch when
// Spec.Telem > 0): the absolute counter values of every entity the peer
// owns, captured at each scrape boundary inside the window. A window of
// one lookahead contains at most one boundary, but the count keeps the
// format self-describing:
//
//	telem    := uvarint nboundaries | nboundaries * boundary
//	boundary := uvarint t |
//	            uvarint ndirs  | ndirs  * (uvarint dir | uvarint fwdBytes |
//	                                       uvarint fwdCells | uvarint drops |
//	                                       uvarint queueBytes) |
//	            uvarint nsinks | nsinks * (uvarint fa | uvarint cells | uvarint bytes)
//
// Absolute values (not deltas) make re-shipment after a peer
// death/restore idempotent: the coordinator simply overwrites.

// appendTelemSection captures the peer's owned counters for every scrape
// boundary in (end-look, end] and appends the section to b.
func appendTelemSection(b []byte, m *Model, ownedDirs, ownedFAs []int, end, look, every sim.Time) []byte {
	start := end - look
	first := (start/every + 1) * every
	if first > end {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(first))
	b = binary.AppendUvarint(b, uint64(len(ownedDirs)))
	for _, d := range ownedDirs {
		fb, fc, dr, qb := m.Net.DirTelemetry(d)
		b = binary.AppendUvarint(b, uint64(d))
		b = binary.AppendUvarint(b, fb)
		b = binary.AppendUvarint(b, fc)
		b = binary.AppendUvarint(b, dr)
		b = binary.AppendUvarint(b, uint64(qb))
	}
	b = binary.AppendUvarint(b, uint64(len(ownedFAs)))
	for _, fa := range ownedFAs {
		s := m.Sinks[fa]
		b = binary.AppendUvarint(b, uint64(fa))
		b = binary.AppendUvarint(b, s.Cells)
		b = binary.AppendUvarint(b, s.Bytes)
	}
	return b
}

// telemUv reads one uvarint off a telemetry section.
func telemUv(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("distsim: truncated telemetry section")
	}
	return v, b[k:], nil
}

// batchCount reads the entry count off the front of a mail batch.
func batchCount(b []byte) (int, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("distsim: truncated mail batch")
	}
	return int(n), b[k:], nil
}
