// Package cluster turns stardustd into a horizontally scalable serving
// tier: nodes form a static peer ring with consistent-hash job
// placement keyed by the run request's content address
// (mgmt.RunRequest.CacheKey), so any node accepts a submission,
// forwards it to the ring owner (with bounded retry/backoff and
// deterministic fallback to the next ring node when the owner is down),
// and serves cached results for any key by fetching the bytes from a
// peer into its local content-addressed store.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a static node set. Each node is
// hashed at VNodes virtual points; a key is owned by the first point at
// or after the key's hash (wrapping). The ring is a pure function of
// the sorted node list, so every node computes the same placement.
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVNodes is the virtual-point count per node: enough for a
// <15% ownership spread at 3 nodes while keeping Order cheap.
const DefaultVNodes = 128

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds the ring. Node addresses are deduplicated and sorted,
// so every member builds the identical ring from the same set no
// matter the flag order.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the sorted member list.
func (r *Ring) Nodes() []string { return r.nodes }

// start returns the index of the first ring point at or after the
// key's hash (wrapping past the top).
func (r *Ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node that owns a key.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Order returns every node in ring order starting from the key's
// owner: the deterministic failover sequence — owner first, then each
// distinct successor as it appears walking the ring.
func (r *Ring) Order(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.start(key), len(r.points); len(out) < len(r.nodes) && n > 0; i, n = (i+1)%len(r.points), n-1 {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	// A pathological vnode layout could leave a node unvisited within one
	// lap; append any stragglers in sorted order to keep Order total.
	for i, n := range r.nodes {
		if !seen[i] {
			out = append(out, n)
		}
	}
	return out
}

// Shares returns the fraction of a uniform key population each node
// owns, for the /api/v1/cluster diagnostics.
func (r *Ring) Shares() map[string]float64 {
	arc := make([]uint64, len(r.nodes))
	for i, p := range r.points {
		next := r.points[(i+1)%len(r.points)].hash
		width := next - p.hash // wraps correctly in uint64 arithmetic
		arc[p.node] += width
	}
	out := make(map[string]float64, len(r.nodes))
	for i, n := range r.nodes {
		out[n] = float64(arc[i]) / (1 << 63) / 2
	}
	return out
}
