package reach

import "testing"

// FuzzReachApplyMessage fuzzes the hardware reachability table's message
// application (§5.8): arbitrary messages on arbitrary links must never
// panic, must reject out-of-range input with an error, and must leave the
// two table projections (per-FA link sets and per-link FA sets) exactly
// consistent. It also checks idempotence, the BuildMessages/ApplyMessage
// round trip, and LinkDown's full withdrawal.
func FuzzReachApplyMessage(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint8(1), uint16(0), false, uint64(0b1011), uint64(0))
	f.Add(uint8(200), uint8(31), uint8(30), uint16(1), false, ^uint64(0), ^uint64(0))
	f.Add(uint8(1), uint8(1), uint8(0), uint16(9), true, uint64(1), uint64(0))
	f.Add(uint8(130), uint8(16), uint8(200), uint16(0), false, uint64(42), uint64(7))
	f.Fuzz(func(t *testing.T, numFA, numLink, link uint8, chunk uint16, faulty bool, w0, w1 uint64) {
		nFA := int(numFA)%200 + 1
		nLink := int(numLink)%32 + 1
		tbl := NewTable(nFA, nLink)

		m := Message{Origin: 3, Chunk: chunk, Faulty: faulty}
		m.Bits[0], m.Bits[1] = w0, w1
		err := tbl.ApplyMessage(int(link), m)
		if int(link) >= nLink {
			if err == nil {
				t.Fatalf("link %d accepted by a %d-link table", link, nLink)
			}
			return
		}
		if base := int(chunk) * ChunkBits; base >= nFA && chunk != 0 {
			if err == nil {
				t.Fatalf("chunk %d accepted by a %d-FA table", chunk, nFA)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range message rejected: %v", err)
		}

		checkConsistent := func() {
			t.Helper()
			for fa := 0; fa < nFA; fa++ {
				viaAny := false
				for l := 0; l < nLink; l++ {
					viaLink := tbl.LinkSet(l).Get(fa)
					if tbl.Links(fa).Get(l) != viaLink {
						t.Fatalf("projections disagree at (fa=%d, link=%d)", fa, l)
					}
					viaAny = viaAny || viaLink
				}
				if tbl.Reachable(fa) != viaAny {
					t.Fatalf("Reachable(%d)=%v but per-link union says %v", fa, tbl.Reachable(fa), viaAny)
				}
			}
		}
		checkConsistent()

		// Idempotence: applying the same advertisement again is a no-op.
		before := tbl.ReachableSet().Clone()
		if err := tbl.ApplyMessage(int(link), m); err != nil {
			t.Fatalf("re-apply rejected: %v", err)
		}
		checkConsistent()
		after := tbl.ReachableSet()
		for i := range before {
			if before[i] != after[i] {
				t.Fatal("re-applying the same message changed the table")
			}
		}

		// Round trip: a full advertised set must survive encode + apply.
		set := NewBitmap(nFA)
		for fa := 0; fa < nFA; fa++ {
			w := w0
			if fa >= 64 {
				w = w1
			}
			if w&(1<<(fa%64)) != 0 {
				set.Set(fa)
			}
		}
		for _, bm := range BuildMessages(7, set, nFA) {
			if err := tbl.ApplyMessage(int(link), bm); err != nil {
				t.Fatalf("round-trip apply: %v", err)
			}
		}
		got := tbl.LinkSet(int(link))
		for fa := 0; fa < nFA; fa++ {
			if got.Get(fa) != set.Get(fa) {
				t.Fatalf("round trip lost fa %d: sent %v, table has %v", fa, set.Get(fa), got.Get(fa))
			}
		}
		checkConsistent()

		// LinkDown withdraws everything learned through the link (§5.9).
		tbl.LinkDown(int(link))
		if tbl.LinkSet(int(link)).Count() != 0 {
			t.Fatal("LinkDown left advertised destinations behind")
		}
		for fa := 0; fa < nFA; fa++ {
			if tbl.Links(fa).Get(int(link)) {
				t.Fatalf("LinkDown left fa %d routed via the dead link", fa)
			}
		}
		checkConsistent()
	})
}
