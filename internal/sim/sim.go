// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds, which is fine enough to express a
// single byte on a 100 Gbps serial link (80 ps) exactly while still allowing
// simulations that span days of virtual time in an int64.
//
// Events are ordered by (time, lane, sequence-of-scheduling). Ordinary
// scheduling (At/After and friends) uses the default lane, so two events
// scheduled for the same instant fire in the order they were scheduled; this
// makes every simulation in this repository reproducible bit-for-bit.
//
// Lanes exist for sharded (parallel) simulation: the scheduling-order
// tie-break depends on the global interleaving of earlier events, which a
// partitioned simulation cannot reproduce, so shardable components instead
// tag same-instant events with an explicit lane (AtLane) — a small integer
// naming a stable entity such as a directed link. Events on distinct lanes
// at the same instant fire in lane order, and events on one lane are always
// scheduled causally by a single owner, so the total order is a function of
// the simulated system alone, not of how it was partitioned across event
// loops. All explicit lanes sort before the default lane.
//
// The kernel offers two scheduling forms: At/After take an ordinary
// func() closure, while AtAction/AfterAction take a pre-bound Action plus a
// uint64 argument. The Action form exists for hot paths (queues draining,
// packets propagating, timers re-arming): it stores the callback and its
// argument inline in the event, so scheduling allocates nothing.
package sim

// Time is a point in simulated time, in picoseconds.
type Time int64

// Convenient duration constants, all expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Action is a pre-bound event callback. Scheduling an Action avoids the
// per-event closure allocation of At/After; the arg passed to
// AtAction/AfterAction is handed back verbatim, letting one long-lived
// object serve many in-flight events.
type Action interface {
	Act(arg uint64)
}

// ActionFunc adapts a plain function to the Action interface (for cold
// paths where the closure allocation does not matter).
type ActionFunc func(arg uint64)

// Act implements Action.
func (f ActionFunc) Act(arg uint64) { f(arg) }

// DefaultLane is the lane of events scheduled without an explicit lane
// (At/After/AtAction/AfterAction). Explicit lanes must be smaller, so they
// always sort before default-lane events at the same instant.
const DefaultLane int32 = 1<<31 - 1

// LaneScheduler is the scheduling surface a shardable simulation component
// needs: the current time plus lane-keyed event insertion. *Simulator
// implements it directly for intra-shard work; parsim's cross-shard ports
// implement it with mailboxes that are flushed at the window barrier.
type LaneScheduler interface {
	Now() Time
	AtLane(t Time, lane int32, a Action, arg uint64)
}

type event struct {
	at   Time
	seq  uint64
	lane int32
	fn   func()
	act  Action
	arg  uint64
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Distinct Simulators are fully independent, so many can run
// concurrently (one per goroutine) without sharing state.
type Simulator struct {
	now     Time
	seq     uint64
	events  []event // binary min-heap ordered by (at, seq)
	stopped bool
	// Processed counts events executed so far; useful for budgeting runs.
	Processed uint64
}

// New returns a Simulator starting at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events waiting to run.
func (s *Simulator) Pending() int { return len(s.events) }

func (s *Simulator) less(i, j int) bool {
	if s.events[i].at != s.events[j].at {
		return s.events[i].at < s.events[j].at
	}
	if s.events[i].lane != s.events[j].lane {
		return s.events[i].lane < s.events[j].lane
	}
	return s.events[i].seq < s.events[j].seq
}

// push inserts e into the heap. The heap is hand-rolled rather than built on
// container/heap so events are stored by value: no interface boxing, no
// allocation per scheduled event.
func (s *Simulator) push(e event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.events[i], s.events[parent] = s.events[parent], s.events[i]
		i = parent
	}
}

func (s *Simulator) pop() event {
	e := s.events[0]
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events[n] = event{} // drop callback references for the GC
	s.events = s.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s.events[i], s.events[min] = s.events[min], s.events[i]
		i = min
	}
	return e
}

func (s *Simulator) schedule(t Time, lane int32, fn func(), act Action, arg uint64) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, lane: lane, fn: fn, act: act, arg: arg})
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now()) runs the event at the current time instead, preserving causality.
func (s *Simulator) At(t Time, fn func()) { s.schedule(t, DefaultLane, fn, nil, 0) }

// After schedules fn to run d picoseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.schedule(s.now+d, DefaultLane, fn, nil, 0) }

// AtAction schedules a.Act(arg) at absolute time t without allocating.
func (s *Simulator) AtAction(t Time, a Action, arg uint64) { s.schedule(t, DefaultLane, nil, a, arg) }

// AfterAction schedules a.Act(arg) d picoseconds from now without
// allocating.
func (s *Simulator) AfterAction(d Time, a Action, arg uint64) {
	s.schedule(s.now+d, DefaultLane, nil, a, arg)
}

// AtLane schedules a.Act(arg) at absolute time t on an explicit event lane
// (see the package comment: same-instant events fire in lane order, which
// is what makes sharded execution order-independent of the partitioning).
// Lanes must be non-negative and below DefaultLane. Implements
// LaneScheduler; allocates nothing.
func (s *Simulator) AtLane(t Time, lane int32, a Action, arg uint64) {
	s.schedule(t, lane, nil, a, arg)
}

// AtLaneFunc is AtLane for a plain closure (cold paths).
func (s *Simulator) AtLaneFunc(t Time, lane int32, fn func()) {
	s.schedule(t, lane, fn, nil, 0)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
}

// RunBefore executes every event with a timestamp strictly below end and
// leaves the clock exactly at end. It is the window-stepping primitive of
// conservative parallel simulation: events at end itself belong to the next
// window (they may still be joined by cross-shard arrivals with the same
// timestamp but a smaller lane).
func (s *Simulator) RunBefore(end Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at >= end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}

// RunUntil executes events with timestamps <= deadline. The clock is left at
// min(deadline, time of last event executed); if events remain they stay
// queued for a later Run/RunUntil call.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

func (s *Simulator) step() {
	e := s.pop()
	s.now = e.at
	s.Processed++
	if e.fn != nil {
		e.fn()
	} else if e.act != nil {
		e.act.Act(e.arg)
	}
}

// Timer is a cancellable, re-armable timer bound to a Simulator. Arming a
// timer schedules one kernel event tagged with the timer's generation;
// cancelling or re-arming bumps the generation so stale events fall through
// without firing. Arm does not allocate (the Timer itself is the scheduled
// Action), so per-packet retransmission timers are free.
type Timer struct {
	sim     *Simulator
	gen     uint64
	armed   bool
	expires Time
	fn      func()
}

// NewTimer returns an unarmed timer.
func NewTimer(s *Simulator) *Timer { return &Timer{sim: s} }

// Arm (re)schedules fn to fire after d. Any previously armed deadline is
// cancelled. Callers on hot paths should pass the same stored func value on
// every Arm to avoid re-creating a method-value closure.
func (t *Timer) Arm(d Time, fn func()) {
	t.gen++
	t.armed = true
	t.fn = fn
	t.expires = t.sim.Now() + d
	t.sim.AfterAction(d, t, t.gen)
}

// Act implements Action; it fires the timer if the scheduled generation is
// still current.
func (t *Timer) Act(gen uint64) {
	if gen != t.gen || !t.armed {
		return
	}
	t.armed = false
	t.fn()
}

// Cancel disarms the timer. It is safe to call on an unarmed timer.
func (t *Timer) Cancel() { t.armed = false; t.gen++ }

// Armed reports whether the timer is currently armed.
func (t *Timer) Armed() bool { return t.armed }

// Expires returns the absolute deadline of the last Arm call.
func (t *Timer) Expires() Time { return t.expires }
