package netsim

import (
	"testing"

	"stardust/internal/sim"
)

// blackholeFabric implements CellFabric by losing every cell — the
// worst-case failed-link scenario where no cell of a packet survives.
type blackholeFabric struct{ dropped uint64 }

func (b *blackholeFabric) Inject(c *Packet, src, dst int) {
	b.dropped++
	c.Release()
}

func (b *blackholeFabric) Drops() uint64 { return b.dropped }

// A packet whose cells are ALL lost must still be discarded by the
// reassembly timer even though no later completion ever calls into the
// delivery path: the timer itself has to fire (§4.1).
func TestReasmTimerFiresWithoutLaterCompletions(t *testing.T) {
	s := sim.New()
	cfg := DefaultStardust(10e9, 2, sim.Microsecond)
	n, err := NewStardustNet(s, cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bh := &blackholeFabric{}
	n.UseFabric(bh)

	var got Counter
	route := append(n.Route(0, 2), &got)
	p := NewPacket()
	p.Size = 9000
	p.SetRoute(route)
	p.SendOn()

	// Let credits flow and the packet ship into the black hole, then run
	// well past the reassembly timeout with NO other traffic.
	s.RunUntil(10*sim.Millisecond + 10*cfg.ReasmTimeout)
	if bh.dropped == 0 {
		t.Fatal("packet never shipped as cells")
	}
	if got.Packets != 0 {
		t.Fatal("a fully-lost packet was delivered")
	}
	if n.ReasmTimeouts != 1 {
		t.Fatalf("ReasmTimeouts = %d, want 1 (timer-driven discard)", n.ReasmTimeouts)
	}
	if n.FabricDrops() != bh.dropped {
		t.Fatalf("FabricDrops = %d, want %d", n.FabricDrops(), bh.dropped)
	}
}

// With the fluid trunk (no fabric installed) nothing is lost and the
// timer must never discard anything.
func TestReasmTimerIdleOnHealthyPath(t *testing.T) {
	s := sim.New()
	cfg := DefaultStardust(10e9, 2, sim.Microsecond)
	n, err := NewStardustNet(s, cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got Counter
	route := append(n.Route(0, 2), &got)
	for i := 0; i < 5; i++ {
		p := NewPacket()
		p.Size = 9000
		p.SetRoute(route)
		p.SendOn()
	}
	s.RunUntil(10*sim.Millisecond + 10*cfg.ReasmTimeout)
	if got.Packets != 5 {
		t.Fatalf("delivered %d of 5", got.Packets)
	}
	if n.ReasmTimeouts != 0 {
		t.Fatalf("healthy path discarded %d packets", n.ReasmTimeouts)
	}
}
