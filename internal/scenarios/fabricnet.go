package scenarios

import (
	"strings"

	"stardust/internal/engine"
	"stardust/internal/experiments"
)

// Scenarios over the topology-faithful per-link cell fabric
// (internal/fabric) and the new traffic matrices: per-link load balance
// (spraying vs ECMP), goodput through link failures, hotspot fan-in and
// all-to-all.

func init() {
	engine.Register(engine.Scenario{
		Name: "fabric/linkload",
		Desc: "per-uplink byte counts under a permutation: cell spraying vs per-flow ECMP (§5.3)",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "10", "warmup_ms": "5", "mode": "both",
		},
		Docs: pickDocs([]string{"k", "dur_ms", "warmup_ms"}, map[string]string{
			"mode": "spray (Stardust cells), ecmp (per-flow hashing), or both",
		}),
		Variants: func(p engine.Params) []engine.Params {
			switch p.Str("mode", "both") {
			case "spray", "ecmp":
				return []engine.Params{p}
			}
			return []engine.Params{p.With("mode", "spray"), p.With("mode", "ecmp")}
		},
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			r, err := experiments.LinkLoad(cfg, c.Params.Str("mode", "spray"))
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("links", float64(r.Links), "")
			res.Add("mean_bytes", r.MeanBytes, "B")
			res.Add("dev_spread_pct", r.DevSpreadPct, "%")
			res.Add("spread_pct", r.SpreadPct, "%")
			res.Add("cov_pct", r.CoVPct, "%")
			res.Add("min_bytes", r.MinBytes, "B")
			res.Add("max_bytes", r.MaxBytes, "B")
			res.Add("mean_util_pct", r.MeanUtilPct, "%")
			var b strings.Builder
			experiments.WriteLinkLoad(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "fabric/failures",
		Desc: "kill N random fabric links mid-run: goodput dip and self-healing recovery (§5.9, App E)",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "30", "warmup_ms": "10",
			"fail": "4", "fail_ms": "10", "bin_ms": "1",
		},
		Docs: pickDocs([]string{"k", "dur_ms", "warmup_ms"}, map[string]string{
			"fail":    "random fabric links to kill mid-run",
			"fail_ms": "failure instant relative to end of warmup, in ms",
			"bin_ms":  "goodput aggregation bin, in ms",
		}),
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			r, err := experiments.FabricFailures(cfg,
				c.Params.Int("fail", 4),
				msTime(c.Params.Int("fail_ms", 10)),
				msTime(c.Params.Int("bin_ms", 1)))
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			res.Add("failed_links", float64(r.FailedLinks), "")
			res.Add("pre_gbps", r.PreGbps, "Gbps")
			res.Add("dip_gbps", r.DipGbps, "Gbps")
			res.Add("recovered_gbps", r.RecoveredGbps, "Gbps")
			res.Add("unreachable_pairs", float64(r.Unreachable), "")
			res.Add("fabric_drops", float64(r.FabricDrops), "")
			res.Add("reasm_timeouts", float64(r.ReasmTimeouts), "")
			var b strings.Builder
			experiments.WriteFailures(&b, r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "htsim/hotspot",
		Desc: "hotspot fan-in matrix: aggregate goodput into hot egress ports vs the rest, per protocol",
		Defaults: engine.Params{
			"k": "8", "dur_ms": "20", "warmup_ms": "10", "proto": "all",
			"hot": "2", "frac": "0.4", "fabric": "false",
		},
		Docs: withDocs(htsimDocs, map[string]string{
			"hot":  "number of hot destination hosts",
			"frac": "fraction of senders aimed at a hot destination",
		}),
		Variants: protoVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			proto := experiments.Protocol(c.Params.Str("proto", string(experiments.ProtoStardust)))
			r, hot, err := experiments.HotspotRun(cfg, proto,
				c.Params.Int("hot", 2), c.Params.Float("frac", 0.4))
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			n := len(r.Gbps)
			res.Add("flows", float64(r.Flows), "")
			res.Add("hotspots", float64(len(hot)), "")
			res.Add("hot_agg_gbps", r.HotGbps, "Gbps")
			res.Add("cold_mean_gbps", r.ColdMeanGps, "Gbps")
			res.Add("mean_util_pct", r.MeanUtilPct, "%")
			res.Add("p5_gbps", r.Gbps[n/20], "Gbps")
			res.Add("median_gbps", r.Gbps[n/2], "Gbps")
			var b strings.Builder
			experiments.WriteMatrix(&b, "hotspot", r)
			res.Text = b.String()
			return res, nil
		},
	})

	engine.Register(engine.Scenario{
		Name: "htsim/alltoall",
		Desc: "all-to-all matrix (n*(n-1) flows): per-flow goodput distribution, per protocol",
		Defaults: engine.Params{
			"k": "4", "dur_ms": "20", "warmup_ms": "10", "proto": "all", "fabric": "false",
		},
		Docs:     htsimDocs,
		Variants: protoVariants,
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := htsimConfig(c)
			proto := experiments.Protocol(c.Params.Str("proto", string(experiments.ProtoStardust)))
			r, err := experiments.AllToAllRun(cfg, proto)
			if err != nil {
				return engine.Result{}, err
			}
			var res engine.Result
			n := len(r.Gbps)
			res.Add("flows", float64(r.Flows), "")
			res.Add("mean_util_pct", r.MeanUtilPct, "%")
			res.Add("p5_gbps", r.Gbps[n/20], "Gbps")
			res.Add("median_gbps", r.Gbps[n/2], "Gbps")
			res.Add("min_gbps", r.Gbps[0], "Gbps")
			var b strings.Builder
			experiments.WriteMatrix(&b, "alltoall", r)
			res.Text = b.String()
			return res, nil
		},
	})
}
