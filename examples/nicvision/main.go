// NIC vision (§8): the paper's proposed end state — no ToRs at all. Every
// host carries a Fabric-Adapter-like smart NIC with a single port and a
// couple of fabric uplinks, attached directly to Fabric Elements. The
// "network" is nothing but cell switches; all packet intelligence lives
// at the hosts.
package main

import (
	"fmt"
	"log"

	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

func main() {
	// 16 smart NICs, each with 2x50G uplinks, over 2 Fabric Elements.
	const nics = 16
	clos, err := topo.NewClos1(nics, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.HostPortsPerFA = 1 // the adapter IS the NIC: one host port
	cfg.HostPortBps = 100e9
	net, err := core.New(cfg, clos)
	if err != nil {
		log.Fatal(err)
	}
	if !net.WarmUp(5 * sim.Millisecond) {
		log.Fatal("fabric did not converge")
	}
	fmt.Printf("%d smart NICs self-organized over a pure cell fabric (no ToRs, no routing protocol)\n", nics)

	// All-to-all exchange: every NIC sends one message to every other.
	delivered := 0
	var worst sim.Time
	net.OnDeliver = func(p *core.Packet) {
		delivered++
		if p.Latency() > worst {
			worst = p.Latency()
		}
	}
	for s := 0; s < nics; s++ {
		for d := 0; d < nics; d++ {
			if s == d {
				continue
			}
			net.Inject(uint16(s), 0, uint16(d), 0, 0, 4096)
		}
	}
	net.Run(net.Sim.Now() + 2*sim.Millisecond)
	fmt.Printf("all-to-all: %d/%d messages delivered, worst latency %.1f us\n",
		delivered, nics*(nics-1), worst.Microseconds())
	fmt.Println("the NIC reachability table holds", nics, "entries — NIC-scale, not network-scale (§8)")
}
