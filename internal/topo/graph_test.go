package topo

import (
	"math/rand"
	"reflect"
	"testing"
)

// testGraphs builds one instance of every family at comparable size.
func testGraphs(t *testing.T) map[string]Graph {
	t.Helper()
	out := map[string]Graph{}
	for _, name := range []string{"clos", "sshuffle", "star"} {
		g, err := ByName(name, 4)
		if err != nil {
			t.Fatalf("ByName(%q, 4): %v", name, err)
		}
		out[name] = g
	}
	return out
}

func TestGraphStructuralInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		if err := ValidateGraph(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumEdge() != 8 {
			t.Errorf("%s: ByName k=4 should size 8 edge devices, got %d", name, g.NumEdge())
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		spec := g.Spec()
		g2, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: ParseSpec(%q): %v", name, spec, err)
		}
		if g2.Spec() != spec {
			t.Errorf("%s: spec round-trip %q -> %q", name, spec, g2.Spec())
		}
		if g2.NumNodes() != g.NumNodes() || len(g2.GraphLinks()) != len(g.GraphLinks()) {
			t.Errorf("%s: rebuilt graph differs: %d/%d nodes, %d/%d links",
				name, g2.NumNodes(), g.NumNodes(), len(g2.GraphLinks()), len(g.GraphLinks()))
		}
		if !reflect.DeepEqual(g2.GraphLinks(), g.GraphLinks()) {
			t.Errorf("%s: rebuilt wiring differs from original", name)
		}
	}
	// The full-parameter Clos forms round-trip too.
	for _, spec := range []string{"clos1:fa=4,up=2,fe1=2", "clos2:fa=8,up=2,fe1=4,dn=4,fe1up=4,fe2=4"} {
		g, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if g.Spec() != spec {
			t.Errorf("spec %q round-trips to %q", spec, g.Spec())
		}
	}
}

func TestParseSpecRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"hypercube:d=4", "clos:k=5", "sshuffle:n=8", "clos:k=abc", "star:m=4,d=3", ""} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) should fail", spec)
		}
	}
}

// TestRoutesLoopFree walks random sprays over the candidate tables and
// checks every cell reaches its destination within a hop bound — the
// loop-freedom/progress contract Routes promises, on the intact graph
// and under every single-link failure.
func TestRoutesLoopFree(t *testing.T) {
	for name, g := range testGraphs(t) {
		links := g.GraphLinks()
		peer := portPeers(g, nil)
		rng := rand.New(rand.NewSource(7))
		masks := [][]bool{allUp(len(links))}
		for i := 0; i < len(links); i++ {
			m := allUp(len(links))
			m[i] = false
			masks = append(masks, m)
		}
		for _, up := range masks {
			descend, climb := g.Routes(up)
			livePeer := portPeers(g, up)
			for trial := 0; trial < 50; trial++ {
				src := rng.Intn(g.NumEdge())
				dst := rng.Intn(g.NumEdge())
				if src == dst {
					continue
				}
				n := g.EdgeNode(src)
				target := g.EdgeNode(dst)
				descended := false
				for hops := 0; ; hops++ {
					if n == target {
						break
					}
					if hops > 2*g.NumNodes() {
						t.Fatalf("%s: loop or detour from edge %d to %d", name, src, dst)
					}
					var port int
					if cand := descend[n][dst]; len(cand) > 0 {
						port = cand[rng.Intn(len(cand))]
						descended = true
					} else if !descended && len(climb[n]) > 0 {
						port = climb[n][rng.Intn(len(climb[n]))]
					} else {
						break // converged drop — legal under failures
					}
					if livePeer[n][port] < 0 {
						t.Fatalf("%s: table offers dead/unwired port %d on node %d", name, port, n)
					}
					n = peer[n][port]
				}
			}
		}
	}
}

// TestRoutesDeterministic rebuilds tables twice (and the graph itself
// twice from its spec) and demands identical candidate sets — the
// determinism contract distsim model hashing leans on.
func TestRoutesDeterministic(t *testing.T) {
	for name, g := range testGraphs(t) {
		up := allUp(len(g.GraphLinks()))
		up[0] = false
		d1, c1 := g.Routes(up)
		g2, err := ParseSpec(g.Spec())
		if err != nil {
			t.Fatal(err)
		}
		d2, c2 := g2.Routes(up)
		if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(c1, c2) {
			t.Errorf("%s: Routes not reproducible from spec", name)
		}
	}
}

func TestEdgeUplinkDirs(t *testing.T) {
	for name, g := range testGraphs(t) {
		groups := EdgeUplinkDirs(g)
		if len(groups) != g.NumEdge() {
			t.Fatalf("%s: %d groups for %d edges", name, len(groups), g.NumEdge())
		}
		seen := map[int]bool{}
		for e, dirs := range groups {
			if len(dirs) == 0 {
				t.Errorf("%s: edge %d has no uplink dirs", name, e)
			}
			for _, d := range dirs {
				if seen[d] {
					t.Errorf("%s: dir %d in two edge groups", name, d)
				}
				seen[d] = true
				if d < 0 || d >= 2*len(g.GraphLinks()) {
					t.Errorf("%s: dir %d out of range", name, d)
				}
			}
		}
	}
	// Clos groups must match the legacy derivation: FAUplinks dirs per FA.
	cl, _ := ClosForK(4)
	for fa, dirs := range EdgeUplinkDirs(cl) {
		if len(dirs) != cl.FAUplinks {
			t.Errorf("clos FA%d: %d uplink dirs, want %d", fa, len(dirs), cl.FAUplinks)
		}
	}
}

func allUp(n int) []bool {
	up := make([]bool, n)
	for i := range up {
		up[i] = true
	}
	return up
}
