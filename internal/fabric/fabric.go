// Package fabric is the topology-faithful cell fabric: every Fabric
// Adapter and Fabric Element of a topo.Clos instance is its own device,
// every serial link its own serialization queue + propagation pipe, and
// cells are sprayed per-link at every tier with the §5.3 round-robin
// permutation arbiter (reach.Spreader). It replaces the abstract
// FabricHops-deep pipe of netsim's fluid Stardust model for experiments
// that need per-link load balance, tier-by-tier buffering or link
// failures: it implements netsim.CellFabric, so the Stardust transport
// substrate plugs in unchanged.
//
// Routing is the up/down scheme of §3.1: the source FA sprays each cell
// over its live uplinks; a first-tier FE delivers directly when it has a
// live down link to the destination FA and sprays upward otherwise; a
// spine FE sprays over the down links that reach the destination. The
// per-device forwarding state is the hardware reachability table of
// §5.8 (reach.Table): link failures are detected locally at once
// (keepalive, §5.9) and the lost reachability propagates to the spine
// after Cfg.ReachDelay via reach messages, exactly the protocol the paper
// sizes in Appendix E.
//
// The per-cell hot path allocates nothing: cells are pooled
// netsim.Packets, every directed link's route is prebuilt once, spreader
// reshuffles are in place, and forwarding state lives in dense bitmaps.
//
// A fabric runs in one of two modes. New builds the classic single-event-
// loop fabric on one sim.Simulator. NewSharded (sharded.go) partitions the
// devices across the shards of a parsim.Engine — every device's events run
// on its owning shard, cells cross shard cuts through conservative-
// lookahead mailboxes, and every link delivery is ordered by a per-link
// event lane so the results are byte-identical for any shard count.
package fabric

import (
	"fmt"
	"math/rand"

	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Config sizes the fabric's links and control plane.
type Config struct {
	LinkRate  netsim.Bps // per serial link (the paper runs the fabric ~5% over the edge)
	LinkDelay sim.Time   // per-hop propagation
	LinkBytes int        // per-link queue capacity
	// ReshuffleRounds is how many full traversals a spreader keeps one
	// permutation before reshuffling (§5.3's anti-synchronization).
	ReshuffleRounds int
	// ReachDelay is the latency for a reachability withdrawal to reach the
	// spine tier after a local failure (Appendix E's propagation step).
	ReachDelay sim.Time
	Seed       int64
}

// DefaultConfig returns a fabric configuration for the given link speed
// and hop delay.
func DefaultConfig(rate netsim.Bps, delay sim.Time, seed int64) Config {
	return Config{
		LinkRate:        rate,
		LinkDelay:       delay,
		LinkBytes:       256 << 10,
		ReshuffleRounds: 64,
		ReachDelay:      50 * sim.Microsecond,
		Seed:            seed,
	}
}

// ClosFor returns a two-tier Clos sized to front a k-ary fat-tree's
// edge. The sizing lives in topo.ClosForK — the single source of the
// K -> dimensions derivation shared by cmd binaries, distsim specs and
// telemetry headers, so two peers can never hash different models from
// the same flags.
func ClosFor(k int) (*topo.Clos, error) { return topo.ClosForK(k) }

// shardState is the per-shard slice of a Net: the shard's event heap plus
// the counters its devices increment. A solo fabric has exactly one; a
// sharded fabric has one per parsim shard, so the hot path never writes a
// counter another shard's goroutine could be writing concurrently.
// Aggregate accessors (Injected, Delivered, ...) sum across shards and are
// only meaningful when the fabric is quiescent: between runs in solo mode,
// in barrier context in sharded mode.
type shardState struct {
	id int
	sm *sim.Simulator

	injected     uint64
	delivered    uint64
	deadDrops    uint64
	noRouteDrops uint64

	reach []reachEvent // sharded mode: buffered spine-landing notifications
}

// reachEvent is one buffered OnReachUpdate notification (sharded mode):
// the update lands on the spine tier at `at`; the engine's barrier drains
// the buffers in deterministic (at, fe1) order.
type reachEvent struct {
	at        sim.Time
	fe1       int
	reachable int
}

// link is one direction of a physical serial link: a serialization queue,
// the propagation crossing, and an arrival gate (the link itself) that
// loses cells when the link is down — cells already serialized into a
// failed link are lost on the wire, like the real thing. The queue lives
// on the sending device's shard; Receive runs on the receiving device's.
type link struct {
	net   *Net
	sh    *shardState // receiving device's shard
	q     *netsim.Queue
	to    netsim.Handler // receiving device
	route []netsim.Handler
	up    bool
}

// Receive implements netsim.Handler: the cell reaches the far end.
func (l *link) Receive(c *netsim.Packet) {
	if !l.up {
		l.sh.deadDrops++
		l.net.dropCell(c)
		return
	}
	l.to.Receive(c)
}

func (l *link) send(c *netsim.Packet) {
	c.SetRoute(l.route)
	c.SendOn()
}

// faDev is a Fabric Adapter's fabric-facing side: the uplink sprayer.
type faDev struct {
	net  *Net
	sh   *shardState
	id   int
	up   []*link
	live reach.Bitmap // uplinks passing keepalive
	spr  *reach.Spreader
}

// faEgress terminates cells at their destination Fabric Adapter.
type faEgress struct {
	net *Net
	sh  *shardState
	id  int
	to  netsim.Handler // optional per-FA endpoint (SetEgress)
}

// Receive implements netsim.Handler.
func (e *faEgress) Receive(c *netsim.Packet) {
	e.sh.delivered++
	if e.to != nil {
		e.to.Receive(c)
		return
	}
	if fn := e.net.OnDeliver; fn != nil {
		fn(c)
		return
	}
	c.Release()
}

// spinePort locates one FE1 uplink's far end: spine index and the spine's
// local down-port. Prebuilt so a reachability re-advertisement does not
// rescan the wiring.
type spinePort struct {
	spine int
	port  int
}

// feDev is a Fabric Element (either tier). FE1s have both down links
// (to FAs) and uplinks (to FE2s); FE2s have down links only (to FE1s).
type feDev struct {
	net      *Net
	sh       *shardState
	id       topo.NodeID
	down     []*link
	ups      []*link      // nil on FE2s and in single-tier fabrics
	downPeer []int        // peer device index per down port
	spines   []spinePort  // FE1 only: far end of each uplink
	tbl      *reach.Table // destination FA -> down links that reach it
	liveUp   reach.Bitmap // FE1 only: uplinks passing keepalive
	sprDown  *reach.Spreader
	sprUp    *reach.Spreader
}

// Receive implements netsim.Handler: forward one cell. Down beats up
// (shortest path); a cell that already descended must not climb again
// (no valleys), so during reachability convergence a mis-steered cell is
// discarded rather than looped — the paper's packet-discard window.
func (d *feDev) Receive(c *netsim.Packet) {
	if l := d.sprDown.Next(d.tbl.Links(int(c.Dst))); l >= 0 {
		c.Down = true
		d.down[l].send(c)
		return
	}
	if d.ups != nil && !c.Down {
		if l := d.sprUp.Next(d.liveUp); l >= 0 {
			d.ups[l].send(c)
			return
		}
	}
	d.sh.noRouteDrops++
	d.net.dropCell(c)
}

// Net owns every device and directed link of one Clos instance. It
// implements netsim.CellFabric.
type Net struct {
	Cfg  Config
	Sim  *sim.Simulator // solo event heap; shard 0's heap when sharded
	Topo *topo.Clos

	eng    *parsim.Engine // nil in solo mode
	shards []*shardState  // len 1 in solo mode
	assign Sharding

	// Rebalancing state (sharded mode; see rebalance.go).
	laneGroups   []int32 // lane -> owning event group (FA index + 1; 0 = FEs)
	migrateHooks []func(fa, from, to int)
	migrations   uint64

	fas    []*faDev
	egress []faEgress
	fe1    []*feDev
	fe2    []*feDev
	// links holds both directions of every topology link: 2i is A->B,
	// 2i+1 is B->A.
	links    []*link
	linkDown []bool             // per topology link
	pipe     *netsim.Pipe       // solo mode: the shared propagation delay
	hairpin  [][]netsim.Handler // per FA: local switching path (src FA == dst FA)

	// OnDeliver receives every cell that reaches its destination FA and
	// owns it (must forward or Release it). When nil, delivered cells are
	// Released. In sharded mode it runs on the destination FA's shard, so
	// it must only touch per-FA state — prefer SetEgress there.
	OnDeliver func(*netsim.Packet)

	// OnCellDrop, when non-nil, observes every cell the fabric drops
	// (failed link, no live route) just before it is released, so a
	// harness can account the fate of every injected cell. It does not see
	// link-queue tail drops; install netsim Queue.OnDrop hooks (via
	// VisitQueues) for those. In sharded mode it is called from the
	// dropping device's shard and must be safe for concurrent use.
	OnCellDrop func(*netsim.Packet)

	// OnLinkState, when non-nil, observes every administrative state
	// change of a topology link (FailLink/RestoreLink), at the sim time
	// the adjacent devices detect it (keepalive, §5.9). The management
	// plane's event bus hangs off this hook.
	OnLinkState func(link int, up bool)
	// OnReachUpdate, when non-nil, observes every reachability update
	// landing on the spine tier: the delayed withdrawal/readvertisement
	// of an FE1's reachable set (§5.8). reachable is the FA count the FE1
	// advertises after the update. In sharded mode it is invoked in
	// barrier context, in deterministic (time, FE1) order.
	OnReachUpdate func(fe1 int, reachable int)
}

// dropCell releases a cell lost inside the fabric, after showing it to
// the accounting hook.
func (n *Net) dropCell(c *netsim.Packet) {
	if n.OnCellDrop != nil {
		n.OnCellDrop(c)
	}
	c.Release()
}

// Sharded reports whether the fabric runs on a parsim engine.
func (n *Net) Sharded() bool { return n.eng != nil }

// Engine returns the parsim engine of a sharded fabric (nil in solo mode).
func (n *Net) Engine() *parsim.Engine { return n.eng }

// Injected counts cells handed to Inject. Aggregated across shards; call
// it only when the fabric is quiescent (between runs / in barrier context).
func (n *Net) Injected() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.injected
	}
	return v
}

// Delivered counts cells that reached their destination FA (same
// quiescence caveat as Injected).
func (n *Net) Delivered() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.delivered
	}
	return v
}

// DeadDrops counts cells lost on a failed link (same quiescence caveat).
func (n *Net) DeadDrops() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.deadDrops
	}
	return v
}

// NoRouteDrops counts cells discarded with no live next hop — the
// convergence window (same quiescence caveat).
func (n *Net) NoRouteDrops() uint64 {
	var v uint64
	for _, sh := range n.shards {
		v += sh.noRouteDrops
	}
	return v
}

// New builds all devices and links of the Clos instance c on the single
// event loop s.
func New(s *sim.Simulator, cfg Config, c *topo.Clos) (*Net, error) {
	solo := &shardState{id: 0, sm: s}
	n, err := build(cfg, c, []*shardState{solo}, Sharding{}, nil)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// build wires devices and links. shards is the shard table (one entry in
// solo mode); assign maps devices onto it (ignored when eng is nil, where
// everything lands on shards[0]); eng is the parsim engine or nil.
func build(cfg Config, c *topo.Clos, shards []*shardState, assign Sharding, eng *parsim.Engine) (*Net, error) {
	if cfg.LinkRate <= 0 || cfg.LinkBytes <= 0 {
		return nil, fmt.Errorf("fabric: need positive link rate and capacity")
	}
	if cfg.ReshuffleRounds < 1 {
		cfg.ReshuffleRounds = 64
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := &Net{
		Cfg:      cfg,
		Sim:      shards[0].sm,
		Topo:     c,
		eng:      eng,
		shards:   shards,
		assign:   assign,
		linkDown: make([]bool, len(c.Links)),
	}
	if eng == nil {
		n.pipe = netsim.NewPipe(n.Sim, cfg.LinkDelay)
	}
	faShard := func(i int) *shardState {
		if eng == nil {
			return shards[0]
		}
		return shards[assign.FA[i]]
	}
	fe1Shard := func(i int) *shardState {
		if eng == nil {
			return shards[0]
		}
		return shards[assign.FE1[i]]
	}
	fe2Shard := func(i int) *shardState {
		if eng == nil {
			return shards[0]
		}
		return shards[assign.FE2[i]]
	}
	seeds := rand.New(rand.NewSource(cfg.Seed))

	n.fas = make([]*faDev, c.NumFA)
	n.egress = make([]faEgress, c.NumFA)
	n.hairpin = make([][]netsim.Handler, c.NumFA)
	for i := range n.fas {
		sh := faShard(i)
		n.egress[i] = faEgress{net: n, sh: sh, id: i}
		n.fas[i] = &faDev{
			net:  n,
			sh:   sh,
			id:   i,
			up:   make([]*link, c.FAUplinks),
			live: reach.NewBitmap(c.FAUplinks),
			spr:  reach.NewSpreader(c.FAUplinks, cfg.ReshuffleRounds, seeds.Int63()),
		}
		if eng == nil {
			n.hairpin[i] = []netsim.Handler{n.pipe, &n.egress[i]}
		} else {
			lp := &netsim.LanePipe{Sched: sh.sm, Delay: cfg.LinkDelay, Lane: n.hairpinLane(i)}
			n.hairpin[i] = []netsim.Handler{lp, &n.egress[i]}
		}
	}
	mkFE := func(sh *shardState, id topo.NodeID, downs, ups int) *feDev {
		d := &feDev{
			net:      n,
			sh:       sh,
			id:       id,
			down:     make([]*link, downs),
			downPeer: make([]int, downs),
			tbl:      reach.NewTable(c.NumFA, downs),
			sprDown:  reach.NewSpreader(downs, cfg.ReshuffleRounds, seeds.Int63()),
		}
		if ups > 0 {
			d.ups = make([]*link, ups)
			d.spines = make([]spinePort, ups)
			d.liveUp = reach.NewBitmap(ups)
			d.sprUp = reach.NewSpreader(ups, cfg.ReshuffleRounds, seeds.Int63())
		}
		return d
	}
	n.fe1 = make([]*feDev, c.NumFE1)
	for i := range n.fe1 {
		n.fe1[i] = mkFE(fe1Shard(i), topo.NodeID{Kind: topo.KindFE1, Index: i}, c.FE1Down, c.FE1Up)
	}
	n.fe2 = make([]*feDev, c.NumFE2)
	for i := range n.fe2 {
		n.fe2[i] = mkFE(fe2Shard(i), topo.NodeID{Kind: topo.KindFE2, Index: i}, c.FE2Down, 0)
	}

	// mkLink builds one directed link from a device on shard `from` to a
	// receiver on shard `to`. Solo mode: the legacy shared pipe (default
	// event lane). Sharded mode: a LanePipe on the directed link's own
	// lane, crossing shards through the engine's mailboxes when needed.
	mkLink := func(from topo.NodeID, port int, fromSh, toSh *shardState, to netsim.Handler) *link {
		l := &link{
			net: n,
			sh:  toSh,
			q:   netsim.NewQueue(fromSh.sm, fmt.Sprintf("%v:%d", from, port), cfg.LinkRate, cfg.LinkBytes, 0),
			to:  to,
			up:  true,
		}
		if eng == nil {
			l.route = []netsim.Handler{l.q, n.pipe, l}
		} else {
			lane := int32(len(n.links))
			lp := &netsim.LanePipe{
				Sched: eng.Shard(fromSh.id).To(toSh.id),
				Delay: cfg.LinkDelay,
				Lane:  lane,
			}
			l.route = []netsim.Handler{l.q, lp, l}
		}
		n.links = append(n.links, l)
		return l
	}
	for _, lk := range c.Links {
		switch {
		case lk.A.Kind == topo.KindFA && lk.B.Kind == topo.KindFE1:
			fa, fe := n.fas[lk.A.Index], n.fe1[lk.B.Index]
			upL := mkLink(lk.A, lk.APort, fa.sh, fe.sh, fe)
			fa.up[lk.APort] = upL
			fa.live.Set(lk.APort)
			dnL := mkLink(lk.B, lk.BPort, fe.sh, fa.sh, &n.egress[lk.A.Index])
			fe.down[lk.BPort] = dnL
			fe.downPeer[lk.BPort] = lk.A.Index
		case lk.A.Kind == topo.KindFE1 && lk.B.Kind == topo.KindFE2:
			fe, sp := n.fe1[lk.A.Index], n.fe2[lk.B.Index]
			u := lk.APort - c.FE1Down
			upL := mkLink(lk.A, lk.APort, fe.sh, sp.sh, sp)
			fe.ups[u] = upL
			fe.liveUp.Set(u)
			fe.spines[u] = spinePort{spine: lk.B.Index, port: lk.BPort}
			dnL := mkLink(lk.B, lk.BPort, sp.sh, fe.sh, fe)
			sp.down[lk.BPort] = dnL
			sp.downPeer[lk.BPort] = lk.A.Index
		default:
			return nil, fmt.Errorf("fabric: unsupported link %v-%v", lk.A, lk.B)
		}
	}

	if eng != nil {
		// Lane -> event-group table for adaptive rebalancing (rebalance.go):
		// deliveries onto an FA — its down links and its hairpin path — belong
		// to that FA's migratable group; everything landing on an FE (uplink
		// deliveries, FE<->FE links, reach flows) stays in immovable group 0.
		tbl := make([]int32, n.Lanes())
		for li, lk := range c.Links {
			if lk.A.Kind == topo.KindFA {
				tbl[2*li+1] = n.GroupOfFA(lk.A.Index) // FE1 -> FA delivery
			}
		}
		for i := 0; i < c.NumFA; i++ {
			tbl[n.hairpinLane(i)] = n.GroupOfFA(i)
		}
		n.laneGroups = tbl
		for _, sh := range shards {
			sh.sm.SetLaneGroups(tbl)
			sh.sm.EnsureGroups(c.NumFA + 1)
		}
	}

	// Seed the reachability tables from the wiring: each FE1 down port
	// advertises its attached FA; each FE2 down port carries the full
	// reachable set of the FE1 behind it (§5.8).
	one := reach.NewBitmap(c.NumFA)
	for _, fe := range n.fe1 {
		for p, fa := range fe.downPeer {
			one.Reset()
			one.Set(fa)
			applySet(fe.tbl, p, one, c.NumFA)
		}
	}
	for _, sp := range n.fe2 {
		for p, f := range sp.downPeer {
			applySet(sp.tbl, p, n.fe1[f].tbl.ReachableSet(), c.NumFA)
		}
	}
	return n, nil
}

// reachLane is the event lane of FE1 i's reachability updates: after every
// directed link's lane, so at the same instant cells arrive before
// forwarding state changes (a fixed, partition-independent rule).
func (n *Net) reachLane(i int) int32 { return int32(2*len(n.Topo.Links) + i) }

// hairpinLane is the event lane of FA i's local switching path.
func (n *Net) hairpinLane(i int) int32 {
	return int32(2*len(n.Topo.Links) + n.Topo.NumFE1 + i)
}

// Lanes returns the first event lane not used by the fabric: the lane
// space [0, Lanes()) names the fabric's directed links, reach flows and
// hairpin paths. A transport layered on top of a sharded fabric (the
// sharded Stardust substrate) allocates its own lanes from Lanes() up, so
// the two layers' same-instant events never collide on one lane.
func (n *Net) Lanes() int32 {
	return int32(2*len(n.Topo.Links) + n.Topo.NumFE1 + n.Topo.NumFA)
}

// NumFA returns the number of Fabric Adapters (edge devices).
func (n *Net) NumFA() int { return n.Topo.NumFA }

// applySet installs set as the advertised reachability of one link via
// the wire-format message sequence (exercising the real protocol path).
func applySet(t *reach.Table, port int, set reach.Bitmap, numFA int) {
	for _, m := range reach.BuildMessages(0, set, numFA) {
		if err := t.ApplyMessage(port, m); err != nil {
			panic(err) // construction-time wiring bug
		}
	}
}

// SetEgress installs h as the delivery endpoint of destination FA fa,
// taking precedence over OnDeliver. The handler owns delivered cells
// (forward or Release). In sharded mode h runs pinned to fa's shard, so a
// per-FA endpoint needs no locking.
func (n *Net) SetEgress(fa int, h netsim.Handler) { n.egress[fa].to = h }

// Inject sends one cell from srcFA toward dstFA. The cell's Flow field is
// opaque to the fabric and travels with it; delivered cells are handed to
// the egress endpoint (SetEgress/OnDeliver), lost cells are Released.
// Implements netsim.CellFabric. In sharded mode it must be called from
// srcFA's shard (an event scheduled on that shard's Simulator).
func (n *Net) Inject(c *netsim.Packet, srcFA, dstFA int) {
	d := n.fas[srcFA]
	d.sh.injected++
	c.Dst = int32(dstFA)
	c.Down = false
	if srcFA == dstFA {
		// Local switching inside the adapter: no fabric crossing.
		c.SetRoute(n.hairpin[srcFA])
		c.SendOn()
		return
	}
	if l := d.spr.Next(d.live); l >= 0 {
		d.up[l].send(c)
		return
	}
	d.sh.noRouteDrops++
	n.dropCell(c)
}

// Drops counts every cell lost inside the fabric: failed-link losses,
// no-route discards during convergence, and link-queue tail drops.
// Implements netsim.CellFabric. Same quiescence caveat as Injected.
func (n *Net) Drops() uint64 {
	d := n.DeadDrops() + n.NoRouteDrops()
	for _, l := range n.links {
		d += l.q.Drops
	}
	return d
}

// FailLink takes down both directions of topology link i (an index into
// Topo.Links). The adjacent devices detect the loss immediately
// (keepalive, §5.9); withdrawal of any lost FA reachability reaches the
// spine tier after Cfg.ReachDelay (§5.8, Appendix E). In sharded mode it
// mutates state on several shards and must therefore run in barrier
// context (parsim Engine.At / OnBarrier).
func (n *Net) FailLink(i int) {
	n.checkBarrier()
	if n.linkDown[i] {
		return
	}
	n.linkDown[i] = true
	n.links[2*i].up = false
	n.links[2*i+1].up = false
	n.applyLinkState(n.Topo.Links[i], false)
	if n.OnLinkState != nil {
		n.OnLinkState(i, false)
	}
}

// RestoreLink brings topology link i back up and re-advertises the
// recovered reachability after the same propagation delay. The sharded-
// mode barrier-context requirement of FailLink applies.
func (n *Net) RestoreLink(i int) {
	n.checkBarrier()
	if !n.linkDown[i] {
		return
	}
	n.linkDown[i] = false
	n.links[2*i].up = true
	n.links[2*i+1].up = true
	n.applyLinkState(n.Topo.Links[i], true)
	if n.OnLinkState != nil {
		n.OnLinkState(i, true)
	}
}

// checkBarrier panics when multi-shard state is mutated outside barrier
// context — the misuse that would otherwise be a silent data race.
func (n *Net) checkBarrier() {
	if n.eng != nil && !n.eng.InBarrier() {
		panic("fabric: sharded link state must be changed in barrier context (parsim Engine.At/OnBarrier)")
	}
}

func (n *Net) applyLinkState(lk topo.Link, up bool) {
	switch lk.A.Kind {
	case topo.KindFA: // FA <-> FE1
		fa, fe := n.fas[lk.A.Index], n.fe1[lk.B.Index]
		if up {
			fa.live.Set(lk.APort)
			one := reach.NewBitmap(n.Topo.NumFA)
			one.Set(lk.A.Index)
			applySet(fe.tbl, lk.BPort, one, n.Topo.NumFA)
		} else {
			fa.live.Clear(lk.APort)
			fe.tbl.LinkDown(lk.BPort)
		}
		n.readvertise(fe)
	case topo.KindFE1: // FE1 <-> FE2
		fe, sp := n.fe1[lk.A.Index], n.fe2[lk.B.Index]
		u := lk.APort - n.Topo.FE1Down
		if up {
			fe.liveUp.Set(u)
			applySet(sp.tbl, lk.BPort, fe.tbl.ReachableSet(), n.Topo.NumFA)
		} else {
			fe.liveUp.Clear(u)
			sp.tbl.LinkDown(lk.BPort)
		}
	}
}

// readvertise propagates fe's (changed) reachable set to every spine it
// still has a live link to, after the protocol's propagation delay. Solo
// mode recomputes the set at delivery time, so overlapping failures
// coalesce into the latest truth; sharded mode builds one lookahead
// before delivery (sharded.go) so the messages can cross shards.
func (n *Net) readvertise(fe *feDev) {
	if len(n.fe2) == 0 {
		return // single-tier fabric: FAs spray blindly, nothing upstream
	}
	if n.eng != nil {
		n.readvertiseSharded(fe)
		return
	}
	n.Sim.After(n.Cfg.ReachDelay, func() {
		set := fe.tbl.ReachableSet()
		msgs := reach.BuildMessages(uint16(fe.id.Index), set, n.Topo.NumFA)
		for _, sp := range n.fe2 {
			for p, peer := range sp.downPeer {
				if peer != fe.id.Index || !sp.down[p].up {
					continue
				}
				for _, m := range msgs {
					if err := sp.tbl.ApplyMessage(p, m); err != nil {
						panic(err)
					}
				}
			}
		}
		if n.OnReachUpdate != nil {
			n.OnReachUpdate(fe.id.Index, set.Count())
		}
	})
}

// UnreachablePairs cross-checks the reachability state after failures: it
// counts (spine, destination FA) pairs with no live down path plus FAs
// with no live uplink at all. Zero means every destination is still
// deliverable from everywhere — the §5.9 self-healing invariant. Sharded
// mode: barrier context only.
func (n *Net) UnreachablePairs() int {
	bad := 0
	for _, sp := range n.fe2 {
		for fa := 0; fa < n.Topo.NumFA; fa++ {
			if !sp.tbl.Reachable(fa) {
				bad++
			}
		}
	}
	for _, d := range n.fas {
		if d.live.Count() == 0 {
			bad++
		}
	}
	return bad
}

// FAUplinkBytes returns the forwarded byte count of every FA uplink
// queue in device-major order — the per-link load-balance evidence for
// the linkload experiment.
func (n *Net) FAUplinkBytes() []uint64 {
	out := make([]uint64, 0, n.Topo.NumFA*n.Topo.FAUplinks)
	for _, d := range n.fas {
		for _, l := range d.up {
			out = append(out, l.q.FwdBytes)
		}
	}
	return out
}

// LinkCounters is a point-in-time snapshot of one directed link's
// counters — the raw material of the management plane's telemetry scrape.
type LinkCounters struct {
	Link       int  // topology link index (into Topo.Links)
	Dir        int  // 0 = A->B, 1 = B->A
	Up         bool // administrative state
	FwdBytes   uint64
	FwdCells   uint64
	Drops      uint64 // serialization-queue tail drops
	QueueBytes int    // instantaneous occupancy
	PeakBytes  int
}

// NumLinks returns the number of full-duplex topology links.
func (n *Net) NumLinks() int { return len(n.linkDown) }

// LinkUp reports the administrative state of topology link i.
func (n *Net) LinkUp(i int) bool { return !n.linkDown[i] }

// ReadLinkCounters snapshots both directions of topology link i into out
// (a 2-element window), so a periodic scraper can read the whole fabric
// without allocating. out[0] is the A->B direction. Sharded mode: barrier
// context only (the scrape crosses every shard's queues).
func (n *Net) ReadLinkCounters(i int, out *[2]LinkCounters) {
	for d := 0; d < 2; d++ {
		l := n.links[2*i+d]
		out[d] = LinkCounters{
			Link:       i,
			Dir:        d,
			Up:         l.up,
			FwdBytes:   l.q.FwdBytes,
			FwdCells:   l.q.Forwarded,
			Drops:      l.q.Drops,
			QueueBytes: l.q.Bytes(),
			PeakBytes:  l.q.PeakBytes,
		}
	}
}

// VisitQueues visits every directed link's serialization queue (for
// aggregate statistics). Sharded mode: barrier context only.
func (n *Net) VisitQueues(fn func(q *netsim.Queue)) {
	for _, l := range n.links {
		fn(l.q)
	}
}

// QueueDrops sums tail drops across all link queues.
func (n *Net) QueueDrops() uint64 {
	var d uint64
	n.VisitQueues(func(q *netsim.Queue) { d += q.Drops })
	return d
}
