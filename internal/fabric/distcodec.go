// Distributed support: the wire codec for cross-shard mailbox messages
// and the ownership/report accessors the distributed runtime
// (internal/distsim) aggregates counters through.
//
// A distributed run replicates the whole deterministic model on every
// process and executes only an owned subset of the shards per process, so
// a cross-shard message never needs to carry model objects — only enough
// to rebind the message to the receiver's replica. Exactly two action
// kinds cross shard cuts in a fabric simulation, and both are compact:
//
//   - a cell (*netsim.Packet) in flight on a directed link's propagation
//     lane — the lane IS the directed link index, so the receiver rebinds
//     the decoded cell to its own replica's link route;
//   - a reachability re-advertisement (applyReach) on an FE1's reach
//     lane — spine index, down port and the reach.Message batch.
//
// A transport overlay (packets with Flow state, closure actions) cannot
// be rebound to a remote replica; EncodeMail rejects it with a
// deterministic error rather than guessing.
package fabric

import (
	"encoding/binary"
	"fmt"

	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Wire kinds of a cross-shard mail payload.
const (
	MailCell  byte = 1 // *netsim.Packet on a directed link's lane
	MailReach byte = 2 // applyReach on an FE1's reach lane
)

// Cell flag bits.
const (
	cellAck  = 1 << 0
	cellCE   = 1 << 1
	cellEcho = 1 << 2
	cellDown = 1 << 3
)

// EncodeMail serializes one cross-shard message for the wire. It consumes
// the message: an encoded cell is released back to the packet pool, so
// the caller must not touch m.Act afterwards. Messages the codec cannot
// rebind on a remote replica (transport packets with Flow state, unknown
// action types) return an error — the distributed runtime turns that into
// a deterministic "not distributable" failure instead of silent
// corruption.
func (n *Net) EncodeMail(m parsim.Mail) (kind byte, payload []byte, err error) {
	switch a := m.Act.(type) {
	case *netsim.Packet:
		if a.Flow != nil {
			return 0, nil, fmt.Errorf("fabric: cell on lane %d carries transport flow state; the transport overlay is not distributable", m.Lane)
		}
		if int(m.Lane) >= 2*len(n.Topo.Links) {
			return 0, nil, fmt.Errorf("fabric: packet on non-link lane %d is not distributable", m.Lane)
		}
		return MailCell, encodeCell(a), nil
	case applyReach:
		buf := make([]byte, 0, 8+20*len(a.msgs))
		buf = binary.AppendUvarint(buf, uint64(a.sp.id.Index))
		buf = binary.AppendUvarint(buf, uint64(a.port))
		buf = binary.AppendUvarint(buf, uint64(len(a.msgs)))
		for _, msg := range a.msgs {
			buf = binary.AppendUvarint(buf, uint64(msg.Origin))
			buf = binary.AppendUvarint(buf, uint64(msg.Chunk))
			f := byte(0)
			if msg.Faulty {
				f = 1
			}
			buf = append(buf, f)
			for _, w := range msg.Bits {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
		return MailReach, buf, nil
	default:
		return 0, nil, fmt.Errorf("fabric: cross-shard action %T on lane %d is not distributable", m.Act, m.Lane)
	}
}

// encodeCell serializes one in-flight cell for the wire and releases it
// back to the packet pool — shared by the Clos and graph fabric codecs.
func encodeCell(a *netsim.Packet) []byte {
	var flags byte
	if a.Ack {
		flags |= cellAck
	}
	if a.CE {
		flags |= cellCE
	}
	if a.Echo {
		flags |= cellEcho
	}
	if a.Down {
		flags |= cellDown
	}
	buf := make([]byte, 0, 16)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(a.Size))
	buf = binary.AppendUvarint(buf, uint64(a.Dst))
	buf = binary.AppendVarint(buf, a.Seq)
	a.Release()
	return buf
}

// decodeCell rebuilds a pooled cell from its wire form; the caller
// rebinds it to the receiving replica's link route.
func decodeCell(payload []byte) (*netsim.Packet, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("fabric: truncated cell payload")
	}
	flags := payload[0]
	rest := payload[1:]
	size, k1 := binary.Uvarint(rest)
	if k1 <= 0 {
		return nil, fmt.Errorf("fabric: truncated cell size")
	}
	dst, k2 := binary.Uvarint(rest[k1:])
	if k2 <= 0 {
		return nil, fmt.Errorf("fabric: truncated cell dst")
	}
	seq, k3 := binary.Varint(rest[k1+k2:])
	if k3 <= 0 {
		return nil, fmt.Errorf("fabric: truncated cell seq")
	}
	p := netsim.NewPacket()
	p.Size = int(size)
	p.Dst = int32(dst)
	p.Seq = seq
	p.Ack = flags&cellAck != 0
	p.CE = flags&cellCE != 0
	p.Echo = flags&cellEcho != 0
	p.Down = flags&cellDown != 0
	return p, nil
}

// DecodeMail rebinds one wire payload to this replica of the model,
// returning the action and argument to inject on the destination shard at
// the original (time, lane) key.
func (n *Net) DecodeMail(kind byte, lane int32, payload []byte) (sim.Action, uint64, error) {
	switch kind {
	case MailCell:
		if int(lane) >= 2*len(n.Topo.Links) || lane < 0 {
			return nil, 0, fmt.Errorf("fabric: cell on bad link lane %d", lane)
		}
		p, err := decodeCell(payload)
		if err != nil {
			return nil, 0, err
		}
		// A cell crossing a shard cut was scheduled by the link's LanePipe
		// with the queue and pipe hops already behind it: rebind it to the
		// tail of this replica's route so the next hop is the link itself.
		p.SetRoute(n.links[lane].route[2:])
		return p, 0, nil
	case MailReach:
		spine, k1 := binary.Uvarint(payload)
		if k1 <= 0 || int(spine) >= len(n.fe2) {
			return nil, 0, fmt.Errorf("fabric: bad reach spine")
		}
		port, k2 := binary.Uvarint(payload[k1:])
		if k2 <= 0 {
			return nil, 0, fmt.Errorf("fabric: truncated reach port")
		}
		cnt, k3 := binary.Uvarint(payload[k1+k2:])
		if k3 <= 0 {
			return nil, 0, fmt.Errorf("fabric: truncated reach count")
		}
		rest := payload[k1+k2+k3:]
		msgs := make([]reach.Message, cnt)
		for i := range msgs {
			origin, a := binary.Uvarint(rest)
			if a <= 0 {
				return nil, 0, fmt.Errorf("fabric: truncated reach origin")
			}
			chunk, b := binary.Uvarint(rest[a:])
			if b <= 0 {
				return nil, 0, fmt.Errorf("fabric: truncated reach chunk")
			}
			rest = rest[a+b:]
			if len(rest) < 1+8*len(msgs[i].Bits) {
				return nil, 0, fmt.Errorf("fabric: truncated reach bitmap")
			}
			msgs[i].Origin = uint16(origin)
			msgs[i].Chunk = uint16(chunk)
			msgs[i].Faulty = rest[0] != 0
			rest = rest[1:]
			for w := range msgs[i].Bits {
				msgs[i].Bits[w] = binary.LittleEndian.Uint64(rest)
				rest = rest[8:]
			}
		}
		return applyReach{sp: n.fe2[spine], port: int(port), msgs: msgs}, 0, nil
	default:
		return nil, 0, fmt.Errorf("fabric: unknown mail kind %d", kind)
	}
}

// ShardOfNode returns the shard owning a device (0 in solo mode).
func (n *Net) ShardOfNode(id topo.NodeID) int {
	if n.eng == nil {
		return 0
	}
	switch id.Kind {
	case topo.KindFA:
		return n.assign.FA[id.Index]
	case topo.KindFE1:
		return n.assign.FE1[id.Index]
	default:
		return n.assign.FE2[id.Index]
	}
}

// OwnerOfLinkDir returns the shard owning directed link d (2i = A->B of
// topology link i, 2i+1 = B->A): the sending device's shard, where the
// direction's serialization queue — and therefore its counters — lives.
func (n *Net) OwnerOfLinkDir(d int) int {
	lk := n.Topo.Links[d/2]
	if d%2 == 0 {
		return n.ShardOfNode(lk.A)
	}
	return n.ShardOfNode(lk.B)
}

// ShardOfFE2 returns the shard owning spine i — the shard whose replica
// holds the authoritative copy of that spine's reachability table.
func (n *Net) ShardOfFE2(i int) int {
	if n.eng == nil {
		return 0
	}
	return n.assign.FE2[i]
}

// SpineUnreachable counts the destination FAs spine i currently has no
// live down path to — the per-spine half of UnreachablePairs, reported by
// the spine's owner in a distributed run. Barrier context only.
func (n *Net) SpineUnreachable(i int) int {
	bad := 0
	sp := n.fe2[i]
	for fa := 0; fa < n.Topo.NumFA; fa++ {
		if !sp.tbl.Reachable(fa) {
			bad++
		}
	}
	return bad
}

// DeadFAs counts the FAs with no live uplink at all — the other half of
// UnreachablePairs. FA liveness is administrative state mutated only by
// barrier controls, which every distributed replica runs identically, so
// any replica can report it.
func (n *Net) DeadFAs() int {
	bad := 0
	for _, d := range n.fas {
		if d.live.Count() == 0 {
			bad++
		}
	}
	return bad
}

// ShardTraffic is one shard's slice of the fabric's traffic accounting —
// written only by that shard's event loop, so in a distributed run only
// the shard's owner holds real values and reports them.
type ShardTraffic struct {
	Injected     uint64
	Delivered    uint64
	DeadDrops    uint64
	NoRouteDrops uint64
}

// TrafficOfShard snapshots shard s's counters. Barrier context only.
func (n *Net) TrafficOfShard(s int) ShardTraffic {
	sh := n.shards[s]
	return ShardTraffic{
		Injected:     sh.injected,
		Delivered:    sh.delivered,
		DeadDrops:    sh.deadDrops,
		NoRouteDrops: sh.noRouteDrops,
	}
}

// DirCounters snapshots directed link d's forwarding counters (the
// digest-relevant subset of ReadLinkCounters). Barrier context only.
func (n *Net) DirCounters(d int) (fwdBytes, fwdCells, drops uint64) {
	l := n.links[d]
	return l.q.FwdBytes, l.q.Forwarded, l.q.Drops
}

// DirTelemetry snapshots directed link d's telemetry tuple: DirCounters
// plus instantaneous queue occupancy. This is what a distributed peer
// ships per owned dir at a scrape boundary. Barrier context only.
func (n *Net) DirTelemetry(d int) (fwdBytes, fwdCells, drops uint64, queueBytes int) {
	l := n.links[d]
	return l.q.FwdBytes, l.q.Forwarded, l.q.Drops, l.q.Bytes()
}
