package mgmt

import "stardust/internal/sim"

// Sample is one telemetry scrape of one directed link: the cumulative
// counters at T plus the instantaneous queue occupancy. Rates are derived
// by differencing consecutive samples.
type Sample struct {
	T          sim.Time `json:"t_ps"`
	FwdBytes   uint64   `json:"fwd_bytes"`
	FwdCells   uint64   `json:"fwd_cells"`
	Drops      uint64   `json:"drops"`
	QueueBytes int      `json:"queue_bytes"`
	Up         bool     `json:"up"`
}

// Series is a fixed-capacity ring of samples: the newest HistoryLen
// scrapes of one directed link. The zero value is unusable; make one
// with newSeries.
type Series struct {
	buf  []Sample
	head int // index of the oldest sample
	n    int
}

func newSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{buf: make([]Sample, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (s *Series) Push(x Sample) {
	i := s.head + s.n
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	if s.n == len(s.buf) {
		s.head++
		if s.head == len(s.buf) {
			s.head = 0
		}
	} else {
		s.n++
	}
	s.buf[i] = x
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.n }

// At returns retained sample i, 0 being the oldest.
func (s *Series) At(i int) Sample {
	j := s.head + i
	if j >= len(s.buf) {
		j -= len(s.buf)
	}
	return s.buf[j]
}

// Last returns the newest sample, if any.
func (s *Series) Last() (Sample, bool) {
	if s.n == 0 {
		return Sample{}, false
	}
	return s.At(s.n - 1), true
}

// Prev returns the second-newest sample, if any — the other end of the
// latest scrape interval.
func (s *Series) Prev() (Sample, bool) {
	if s.n < 2 {
		return Sample{}, false
	}
	return s.At(s.n - 2), true
}

// Snapshot copies the retained samples oldest-first.
func (s *Series) Snapshot() []Sample {
	out := make([]Sample, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.At(i)
	}
	return out
}
