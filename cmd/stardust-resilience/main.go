// Command stardust-resilience regenerates Appendix E: the closed-form
// recovery-time model, plus a measured link-failure withdrawal on the
// event-driven fabric and the Fig 7 / Fig 12 push-vs-pull comparisons.
package main

import (
	"flag"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	engine.Main(eng, []engine.Job{
		{Scenario: "scaling/appendixE"},
		{Scenario: "fabric/recovery"},
		{Scenario: "fabric/pushpull"},
	})
}
