// Package topo implements the Fat-tree topology mathematics of the paper's
// Appendix A (Table 2, Fig 2) and builds the concrete topology instances
// used by the simulators: 1- and 2-tier Stardust Clos fabrics and k-ary
// fat-trees.
//
// Terminology follows the paper: a network has edge devices (ToRs / Fabric
// Adapters) plus n tiers of fabric switches; k is the switch radix in ports
// (link bundles), t the number of ToR uplink ports, l the number of serial
// links per bundle.
package topo

import "fmt"

// Params describes a fat-tree family per Table 1 of the paper.
type Params struct {
	K int // switch radix (ports = link bundles per switch)
	T int // ToR uplink ports
	L int // serial links per bundle
}

// ElementCounts holds one row of Table 2 for a given number of tiers.
type ElementCounts struct {
	Tiers          int
	MaxToRs        float64 // k^n / 2^(n-1)
	MaxSwitches    float64 // (2n-1)/2^(n-1) * t * k^(n-1)
	SwitchesPerToR float64 // (2n-1) * t / k
	LinkBundles    float64 // as printed in Table 2
	LinksPerToR    float64 // LinkBundles * l / MaxToRs
}

func pow(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

// Table2 reproduces one row of the paper's Table 2 exactly as printed.
//
// Note: the printed table is not self-consistent for every n — the printed
// link-bundle entries for n=1,2 (t*k and t*k^2) do not follow the printed
// general-n formula (1-1/2^(n-1))*t*k^n. We reproduce the printed rows for
// n=1..4 and use the printed general formula beyond, which is what the
// paper reports.
func Table2(p Params, tiers int) ElementCounts {
	if tiers < 1 {
		panic("topo: tiers must be >= 1")
	}
	k, t, l := float64(p.K), float64(p.T), float64(p.L)
	n := tiers
	ec := ElementCounts{
		Tiers:          n,
		MaxToRs:        pow(k, n) / pow(2, n-1),
		MaxSwitches:    float64(2*n-1) / pow(2, n-1) * t * pow(k, n-1),
		SwitchesPerToR: float64(2*n-1) * t / k,
	}
	switch n {
	case 1:
		ec.LinkBundles = t * k
	case 2:
		ec.LinkBundles = t * k * k
	default:
		ec.LinkBundles = (1 - 1/pow(2, n-1)) * t * pow(k, n)
	}
	ec.LinksPerToR = ec.LinkBundles * l / ec.MaxToRs
	return ec
}

// DerivedCounts returns the physically self-consistent element counts for an
// n-tier fully provisioned fat-tree built from radix-k switches: every tier
// boundary carries exactly the total ToR uplink bandwidth, so the number of
// link bundles is n * t * k^n / 2^(n-1). These are the counts used by the
// cost, power, and device-count models (Fig 2b, 2c, Fig 11), where internal
// consistency matters.
func DerivedCounts(p Params, tiers int) ElementCounts {
	if tiers < 1 {
		panic("topo: tiers must be >= 1")
	}
	k, t, l := float64(p.K), float64(p.T), float64(p.L)
	n := tiers
	ec := ElementCounts{
		Tiers:          n,
		MaxToRs:        pow(k, n) / pow(2, n-1),
		MaxSwitches:    float64(2*n-1) / pow(2, n-1) * t * pow(k, n-1),
		SwitchesPerToR: float64(2*n-1) * t / k,
		LinkBundles:    float64(n) * t * pow(k, n) / pow(2, n-1),
	}
	ec.LinksPerToR = ec.LinkBundles * l / ec.MaxToRs
	return ec
}

// DeviceConfig describes a single switch device used to build a network, in
// the style of §2.2's 12.8 Tbps example.
type DeviceConfig struct {
	Name       string
	Ports      int     // radix k (number of link bundles)
	PortGbps   float64 // bandwidth per port
	LinkBundle int     // serial links per port (l)
}

// TotalTbps returns the device's aggregate bandwidth.
func (d DeviceConfig) TotalTbps() float64 {
	return float64(d.Ports) * d.PortGbps / 1000
}

// String implements fmt.Stringer.
func (d DeviceConfig) String() string {
	return fmt.Sprintf("%s %dx%.0fG (l=%d)", d.Name, d.Ports, d.PortGbps, d.LinkBundle)
}

// The four 12.8 Tbps configurations compared throughout §2.2 and Fig 2.
var (
	FT400Gx32   = DeviceConfig{Name: "FT 400Gx32", Ports: 32, PortGbps: 400, LinkBundle: 8}
	FT200Gx64   = DeviceConfig{Name: "FT 200Gx64", Ports: 64, PortGbps: 200, LinkBundle: 4}
	FT100Gx128  = DeviceConfig{Name: "FT 100Gx128", Ports: 128, PortGbps: 100, LinkBundle: 2}
	Stardust50G = DeviceConfig{Name: "Stardust 50Gx256", Ports: 256, PortGbps: 50, LinkBundle: 1}

	// Fig2Devices lists the series plotted in Fig 2 in the paper's order.
	Fig2Devices = []DeviceConfig{FT400Gx32, FT200Gx64, FT100Gx128, Stardust50G}
)

// NetworkPlan captures the sizing of a DCN instance built from one device
// family for a given number of end hosts, following Fig 2's assumptions:
// each edge device connects HostsPerToR servers (100G each in the paper),
// and the remaining device bandwidth feeds the fabric.
type NetworkPlan struct {
	Device      DeviceConfig
	Tiers       int
	Hosts       int
	ToRs        int
	Switches    int
	Devices     int // ToRs + Switches
	LinkBundles int // inter-switch bundles (ToR downlinks excluded)
	SerialLinks int // LinkBundles * l
}

// HostsPerToR is the paper's assumption of 40 servers per edge device.
const HostsPerToR = 40

// HostGbps is the per-server access rate assumed in Fig 2 (100G, l=2).
const HostGbps = 100

// UplinkPorts returns t: the number of fabric-facing ports on an edge device
// built from dev, after HostsPerToR*HostGbps of downlink capacity is
// reserved, assuming no over-subscription.
func UplinkPorts(dev DeviceConfig) int {
	down := float64(HostsPerToR * HostGbps)
	up := dev.TotalTbps()*1000 - down
	if up < 0 {
		return 0
	}
	return int(up / dev.PortGbps)
}

// MaxHosts returns the maximum number of end hosts in an n-tier network of
// the given device family (Fig 2a).
func MaxHosts(dev DeviceConfig, tiers int) float64 {
	return HostsPerToR * pow(float64(dev.Ports), tiers) / pow(2, tiers-1)
}

// MinTiers returns the smallest number of tiers able to connect hosts end
// hosts, capped at max (returns max+1 if even max tiers are insufficient).
func MinTiers(dev DeviceConfig, hosts float64, max int) int {
	for n := 1; n <= max; n++ {
		if MaxHosts(dev, n) >= hosts {
			return n
		}
	}
	return max + 1
}

// Plan sizes a (possibly partially populated) network connecting hosts end
// hosts with the given device family, using the minimal number of tiers
// (Fig 2b, 2c). Partial population scales switch and link counts with the
// actual number of ToRs, per §5.1's gradual-growth property.
func Plan(dev DeviceConfig, hosts int) NetworkPlan {
	n := MinTiers(dev, float64(hosts), 8)
	p := Params{K: dev.Ports, T: UplinkPorts(dev), L: dev.LinkBundle}
	ec := DerivedCounts(p, n)
	tors := (hosts + HostsPerToR - 1) / HostsPerToR
	switches := int(ec.SwitchesPerToR*float64(tors) + 0.9999)
	// Bundles per ToR times the actual ToR count (partial population).
	bundles := int(ec.LinkBundles / ec.MaxToRs * float64(tors))
	return NetworkPlan{
		Device:      dev,
		Tiers:       n,
		Hosts:       hosts,
		ToRs:        tors,
		Switches:    switches,
		Devices:     tors + switches,
		LinkBundles: bundles,
		SerialLinks: bundles * p.L,
	}
}
