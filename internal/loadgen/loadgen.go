// Package loadgen drives very large numbers of concurrent keep-alive
// HTTP clients against a stardustd serving tier and reports latency
// percentiles and throughput. Each client is one goroutine holding one
// persistent TCP connection speaking hand-rolled HTTP/1.1 — a few KB
// per client instead of net/http's two goroutines and pooled buffers
// per connection — so 10⁵+ concurrent clients fit in one process.
package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config describes one load run.
type Config struct {
	Targets []string // base URLs (http://host:port), round-robined across clients
	Path    string   // request path, e.g. /api/v1/cache/<key>
	Clients int      // concurrent keep-alive clients

	Duration time.Duration // measured run length
	Warmup   time.Duration // initial slice excluded from the stats
	Think    time.Duration // per-client pause between requests (0 = closed loop)

	// DialStagger spreads connection establishment over this window so
	// huge client counts don't SYN-flood the listener backlog
	// (0 = min(Duration/4, 2s)).
	DialStagger time.Duration
}

// Report is the run's outcome. Latency quantiles are measured per
// request, connection setup excluded.
type Report struct {
	Clients    int     `json:"clients"`
	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	DialErrors uint64  `json:"dial_errors"`
	Bytes      uint64  `json:"body_bytes"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"requests_per_sec"`
	P50ms      float64 `json:"p50_ms"`
	P90ms      float64 `json:"p90_ms"`
	P99ms      float64 `json:"p99_ms"`
	P999ms     float64 `json:"p999_ms"`
	MaxMs      float64 `json:"max_ms"`
}

func (r Report) String() string {
	return fmt.Sprintf(
		"clients=%d requests=%d errors=%d dial_errors=%d elapsed=%.1fs throughput=%.0f req/s\n"+
			"latency p50=%.3fms p90=%.3fms p99=%.3fms p99.9=%.3fms max=%.3fms body_bytes=%d",
		r.Clients, r.Requests, r.Errors, r.DialErrors, r.Seconds, r.Throughput,
		r.P50ms, r.P90ms, r.P99ms, r.P999ms, r.MaxMs, r.Bytes)
}

// client is one keep-alive connection's state and sample store.
type client struct {
	addr    string // host:port
	request []byte // prebuilt GET request bytes

	lat        []uint32 // recorded latencies, microseconds
	requests   uint64
	errors     uint64
	dialErrors uint64
	bytes      uint64
}

// Run executes the load. It returns an error only for configuration
// problems; request failures are counted in the report.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Clients <= 0 {
		return Report{}, fmt.Errorf("loadgen: need at least 1 client")
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("loadgen: need a positive duration")
	}
	if len(cfg.Targets) == 0 {
		return Report{}, fmt.Errorf("loadgen: need at least one target")
	}
	if !strings.HasPrefix(cfg.Path, "/") {
		return Report{}, fmt.Errorf("loadgen: path must start with /: %q", cfg.Path)
	}
	addrs := make([]string, len(cfg.Targets))
	hosts := make([]string, len(cfg.Targets))
	for i, t := range cfg.Targets {
		u, err := url.Parse(t)
		if err != nil || u.Scheme != "http" || u.Host == "" {
			return Report{}, fmt.Errorf("loadgen: target %q is not an http://host:port URL", t)
		}
		hosts[i] = u.Host
		addrs[i] = u.Host
		if u.Port() == "" {
			addrs[i] = net.JoinHostPort(u.Hostname(), "80")
		}
	}
	stagger := cfg.DialStagger
	if stagger <= 0 {
		stagger = min(cfg.Duration/4, 2*time.Second)
	}

	clients := make([]*client, cfg.Clients)
	for i := range clients {
		t := i % len(addrs)
		clients[i] = &client{
			addr: addrs[t],
			request: []byte("GET " + cfg.Path + " HTTP/1.1\r\nHost: " + hosts[t] +
				"\r\nUser-Agent: stardust-loadgen\r\n\r\n"),
		}
	}

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	deadline := measureFrom.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			// Spread dials over the stagger window, deterministically by
			// client index.
			if d := stagger * time.Duration(i) / time.Duration(len(clients)); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
			c.run(ctx, measureFrom, deadline, cfg.Think)
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)
	if elapsed > cfg.Duration {
		elapsed = cfg.Duration
	}

	rep := Report{Clients: cfg.Clients, Seconds: elapsed.Seconds()}
	var all []uint32
	for _, c := range clients {
		rep.Requests += c.requests
		rep.Errors += c.errors
		rep.DialErrors += c.dialErrors
		rep.Bytes += c.bytes
		all = append(all, c.lat...)
	}
	if rep.Seconds > 0 {
		rep.Throughput = float64(rep.Requests) / rep.Seconds
	}
	if len(all) > 0 {
		slices.Sort(all)
		q := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i]) / 1000
		}
		rep.P50ms, rep.P90ms, rep.P99ms, rep.P999ms = q(0.50), q(0.90), q(0.99), q(0.999)
		rep.MaxMs = float64(all[len(all)-1]) / 1000
	}
	return rep, nil
}

// run is one client's life: dial (with retry), then request/response
// until the deadline. Requests before measureFrom warm the path but are
// not recorded.
func (c *client) run(ctx context.Context, measureFrom, deadline time.Time, think time.Duration) {
	var conn net.Conn
	var rd *bufio.Reader
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	dial := func() bool {
		backoff := 10 * time.Millisecond
		for try := 0; try < 6; try++ {
			if time.Now().After(deadline) || ctx.Err() != nil {
				return false
			}
			var err error
			conn, err = net.DialTimeout("tcp", c.addr, 5*time.Second)
			if err == nil {
				// A small read buffer keeps per-client memory at 10⁵ scale
				// around 6KB including the goroutine stack.
				rd = bufio.NewReaderSize(conn, 2048)
				return true
			}
			c.dialErrors++
			select {
			case <-ctx.Done():
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		return false
	}
	if !dial() {
		return
	}
	for {
		if ctx.Err() != nil {
			return
		}
		t0 := time.Now()
		if t0.After(deadline) {
			return
		}
		conn.SetDeadline(deadline.Add(10 * time.Second))
		_, werr := conn.Write(c.request)
		var rerr error
		var n int64
		if werr == nil {
			n, rerr = readResponse(rd)
		}
		t1 := time.Now()
		if werr != nil || rerr != nil {
			if t1.After(measureFrom) {
				c.errors++
			}
			// Keep-alive connection went bad: reconnect and carry on.
			conn.Close()
			if !dial() {
				return
			}
			continue
		}
		if t1.After(measureFrom) {
			c.requests++
			c.bytes += uint64(n)
			us := t1.Sub(t0).Microseconds()
			if us > int64(^uint32(0)) {
				us = int64(^uint32(0))
			}
			c.lat = append(c.lat, uint32(us))
		}
		if think > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(think):
			}
		}
	}
}

// readResponse parses one HTTP/1.1 response with a Content-Length body
// (the cache-hit path always sets one) and returns the body length. A
// non-200 status or a missing/invalid Content-Length is an error.
func readResponse(rd *bufio.Reader) (int64, error) {
	line, err := rd.ReadString('\n')
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(line, "HTTP/1.1 200") && !strings.HasPrefix(line, "HTTP/1.0 200") {
		// Drain headers (and a known-length body) so the connection could
		// survive, but report the status as an error.
		cl, derr := drainHeaders(rd)
		if derr == nil && cl >= 0 {
			io.CopyN(io.Discard, rd, cl)
		}
		return 0, fmt.Errorf("status %q", strings.TrimSpace(line))
	}
	cl, err := drainHeaders(rd)
	if err != nil {
		return 0, err
	}
	if cl < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if _, err := io.CopyN(io.Discard, rd, cl); err != nil {
		return 0, err
	}
	return cl, nil
}

// drainHeaders consumes header lines up to the blank separator and
// returns the Content-Length (-1 when absent).
func drainHeaders(rd *bufio.Reader) (int64, error) {
	cl := int64(-1)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return cl, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			return cl, nil
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return -1, fmt.Errorf("bad Content-Length %q", v)
			}
			cl = n
		}
	}
}
