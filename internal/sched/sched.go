// Package sched implements the distributed egress credit scheduler of
// §3.3/§4.1: each Fabric Adapter runs one PortScheduler per egress port,
// aware of every requesting ingress VOQ in the network that targets the
// port. It releases credits at slightly above the port rate (compensating
// for propagation and processing delays) and slightly below the fabric
// speed-up, applies QoS across traffic classes (strict priority and
// weighted round-robin) and round-robin across ingress adapters within a
// class, and throttles under Fabric-Congestion-Indication feedback (§4.2).
package sched

import (
	"fmt"

	"stardust/internal/sim"
)

// Requester identifies an ingress VOQ requesting credit from this port.
type Requester struct {
	SrcFA uint16
	TC    uint8
}

// Credit is one credit grant: the addressed ingress VOQ may release
// Bytes of data toward this port.
type Credit struct {
	To    Requester
	Bytes int64
}

// ClassConfig configures one traffic class at an egress port.
type ClassConfig struct {
	Priority int // higher = served strictly first
	Weight   int // WRR weight among classes at the same priority (>=1)
}

// Config parameterizes a PortScheduler.
type Config struct {
	PortRateBps float64 // egress port rate
	CreditBytes int64   // credit quantum (e.g. 4KB; minimum per §4.1)
	// SpeedupFraction sets credit rate = port rate * (1+fraction), "e.g.
	// 2%" (§4.1), keeping the egress buffer busy.
	SpeedupFraction float64
	// Classes maps traffic class -> QoS config. Nil = single best-effort
	// class.
	Classes map[uint8]ClassConfig
	// FCIBeta is the multiplicative throttle applied per FCI-marked cell.
	FCIBeta float64
	// FCIRecover is the additive throttle recovery per credit interval.
	FCIRecover float64
	// MinThrottle bounds the FCI back-off.
	MinThrottle float64
}

// DefaultConfig returns the paper's canonical settings for a port of the
// given rate: 4KB credits, 2% speedup.
func DefaultConfig(rateBps float64) Config {
	return Config{
		PortRateBps:     rateBps,
		CreditBytes:     4096,
		SpeedupFraction: 0.02,
		FCIBeta:         0.05,
		FCIRecover:      0.01,
		MinThrottle:     0.1,
	}
}

type classState struct {
	cfg     ClassConfig
	ring    []Requester      // activation order (credit arrival order, §3.3)
	backlog map[uint16]int64 // per-source estimated backlog bytes
	next    int              // round-robin cursor
	deficit int              // WRR deficit counter
}

// PortScheduler issues credits for one egress port.
type PortScheduler struct {
	cfg      Config
	classes  map[uint8]*classState
	tcOrder  []uint8 // deterministic class iteration order
	prios    []int   // distinct priorities, descending
	throttle float64
	fciPend  bool          // an FCI mark arrived since the last credit tick
	paused   bool          // egress buffer back-pressure (§4.1)
	scratch  []*classState // reused eligible-class buffer: NextCredit allocates nothing

	// Stats
	Issued      uint64
	IssuedBytes uint64
	FCISeen     uint64
	Starved     uint64 // intervals with no eligible requester
}

// New creates a port scheduler.
func New(cfg Config) *PortScheduler {
	if cfg.PortRateBps <= 0 || cfg.CreditBytes <= 0 {
		panic("sched: rate and credit size must be positive")
	}
	if cfg.Classes == nil {
		cfg.Classes = map[uint8]ClassConfig{0: {Priority: 0, Weight: 1}}
	}
	if cfg.MinThrottle <= 0 {
		cfg.MinThrottle = 0.1
	}
	s := &PortScheduler{cfg: cfg, classes: make(map[uint8]*classState), throttle: 1}
	seen := map[int]bool{}
	for tc := 0; tc < 256; tc++ {
		cc, ok := cfg.Classes[uint8(tc)]
		if !ok {
			continue
		}
		if cc.Weight < 1 {
			cc.Weight = 1
		}
		s.classes[uint8(tc)] = &classState{cfg: cc, backlog: make(map[uint16]int64)}
		s.tcOrder = append(s.tcOrder, uint8(tc))
		if !seen[cc.Priority] {
			seen[cc.Priority] = true
			s.prios = append(s.prios, cc.Priority)
		}
	}
	// Sort priorities descending (insertion sort; the set is tiny).
	for i := 1; i < len(s.prios); i++ {
		for j := i; j > 0 && s.prios[j] > s.prios[j-1]; j-- {
			s.prios[j], s.prios[j-1] = s.prios[j-1], s.prios[j]
		}
	}
	return s
}

// CreditInterval returns the time between credit grants at full speed:
// creditBytes / (portRate * (1+speedup)), scaled up when FCI throttling is
// active.
func (s *PortScheduler) CreditInterval() sim.Time {
	rate := s.cfg.PortRateBps * (1 + s.cfg.SpeedupFraction) * s.throttle
	secs := float64(s.cfg.CreditBytes*8) / rate
	return sim.Time(secs * float64(sim.Second))
}

// Request records (or refreshes) an ingress VOQ's demand toward this port.
// backlogBytes is the VOQ's current queued byte count; a request with zero
// backlog withdraws the VOQ.
func (s *PortScheduler) Request(r Requester, backlogBytes int64) error {
	cs, ok := s.classes[r.TC]
	if !ok {
		return fmt.Errorf("sched: unknown traffic class %d", r.TC)
	}
	_, present := cs.backlog[r.SrcFA]
	if backlogBytes <= 0 {
		if present {
			delete(cs.backlog, r.SrcFA)
			cs.removeFromRing(r)
		}
		return nil
	}
	cs.backlog[r.SrcFA] = backlogBytes
	if !present {
		cs.ring = append(cs.ring, r) // credit-arrival order
	}
	return nil
}

func (cs *classState) removeFromRing(r Requester) {
	for i, x := range cs.ring {
		if x == r {
			cs.ring = append(cs.ring[:i], cs.ring[i+1:]...)
			if cs.next > i {
				cs.next--
			}
			if len(cs.ring) > 0 {
				cs.next %= len(cs.ring)
			} else {
				cs.next = 0
			}
			return
		}
	}
}

// OnFCI records one FCI-marked cell arriving at this port's Fabric
// Adapter. The back-off is applied once per credit tick no matter how many
// cells of the interval were marked — FCI bits are piggybacked on *all*
// cells passing a congested queue (§4.2), so per-cell multiplicative cuts
// would overshoot far below the congestion point.
func (s *PortScheduler) OnFCI() {
	s.FCISeen++
	s.fciPend = true
}

// Pause suspends credit generation (egress buffer close to full, §4.1).
func (s *PortScheduler) Pause() { s.paused = true }

// Resume re-enables credit generation as the egress buffer drains.
func (s *PortScheduler) Resume() { s.paused = false }

// Paused reports whether the scheduler is paused.
func (s *PortScheduler) Paused() bool { return s.paused }

// Throttle returns the current FCI throttle factor in (0,1].
func (s *PortScheduler) Throttle() float64 { return s.throttle }

// NextCredit selects the next VOQ to credit, honoring strict priority
// across classes, WRR among classes of equal priority, and round-robin
// among sources within a class. Returns ok=false when no VOQ is eligible
// or the scheduler is paused.
func (s *PortScheduler) NextCredit() (Credit, bool) {
	// One multiplicative cut per tick when marks arrived; otherwise a
	// small additive recovery (§4.2's control loop).
	if s.fciPend {
		s.fciPend = false
		s.throttle *= 1 - s.cfg.FCIBeta
		if s.throttle < s.cfg.MinThrottle {
			s.throttle = s.cfg.MinThrottle
		}
	} else {
		s.throttle += s.cfg.FCIRecover
		if s.throttle > 1 {
			s.throttle = 1
		}
	}
	if s.paused {
		return Credit{}, false
	}
	for _, prio := range s.prios {
		// Gather classes at this priority with demand, in deterministic
		// traffic-class order.
		eligible := s.scratch[:0]
		for _, tc := range s.tcOrder {
			cs := s.classes[tc]
			if cs.cfg.Priority == prio && len(cs.ring) > 0 {
				eligible = append(eligible, cs)
			}
		}
		s.scratch = eligible // keep the grown backing array for the next tick
		if len(eligible) == 0 {
			continue
		}
		// Weighted selection: pick the class with the highest accumulated
		// deficit, then charge it. Deterministic and strictly
		// work-conserving.
		for _, cs := range eligible {
			cs.deficit += cs.cfg.Weight
		}
		best := eligible[0]
		for _, cs := range eligible[1:] {
			if cs.deficit > best.deficit {
				best = cs
			}
		}
		best.deficit -= totalWeight(eligible)
		r := best.ring[best.next%len(best.ring)]
		best.next = (best.next + 1) % len(best.ring)
		// Charge the estimated backlog, flooring at zero. A requester
		// leaves the ring only on an explicit zero-backlog report: the
		// estimate lags the VOQ by a control round trip, and evicting on
		// the estimate starves backlogged classes during the gap (a few
		// credits to an already-empty VOQ are forfeited harmlessly,
		// mirroring hardware unused-credit handling).
		rem := best.backlog[r.SrcFA] - s.cfg.CreditBytes
		if rem < 0 {
			rem = 0
		}
		best.backlog[r.SrcFA] = rem
		s.Issued++
		s.IssuedBytes += uint64(s.cfg.CreditBytes)
		return Credit{To: r, Bytes: s.cfg.CreditBytes}, true
	}
	s.Starved++
	return Credit{}, false
}

func totalWeight(cs []*classState) int {
	w := 0
	for _, c := range cs {
		w += c.cfg.Weight
	}
	return w
}

// Demand returns the number of requesting sources across all classes.
func (s *PortScheduler) Demand() int {
	n := 0
	for _, cs := range s.classes {
		n += len(cs.ring)
	}
	return n
}

// MinCreditBytes returns the minimum credit size for a Fabric Adapter of
// the given aggregate bandwidth whose scheduler generates one credit every
// cycles clock cycles at clockHz (§4.1's worked example: 10 Tbps, 1 GHz,
// one credit per two clocks -> 2000 B).
func MinCreditBytes(adapterBps, clockHz float64, cycles float64) int64 {
	return int64(adapterBps / (clockHz / cycles) / 8)
}
