package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"stardust/internal/sim"
)

// writeStream encodes windows of per-window deltas into a fresh stream.
func writeStream(t *testing.T, hdr StreamHeader, deltas [][]uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Dirs: make([]DirSample, hdr.Dirs), Sinks: make([]SinkSample, hdr.FAs)}
	for d := range snap.Dirs {
		snap.Dirs[d].Up = true
	}
	for i, win := range deltas {
		snap.T = sim.Time(i+1) * sim.Microsecond
		for d, v := range win {
			snap.Dirs[d].FwdCells += v
			snap.Dirs[d].FwdBytes += v * 512
		}
		if hdr.FAs > 0 {
			snap.Sinks[0].Cells += win[0]
			snap.Sinks[0].Bytes += win[0] * 512
		}
		if err := w.WriteWindow(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestCompareIdentical(t *testing.T) {
	hdr := StreamHeader{Dirs: 2, FAs: 1, ScrapePs: sim.Microsecond}
	deltas := [][]uint64{{10, 20}, {30, 40}, {50, 60}}
	a := writeStream(t, hdr, deltas)
	b := writeStream(t, hdr, deltas)
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ByteIdentical || !d.Zero || !d.ShapeMatch {
		t.Fatalf("identical streams misreported: %+v", d)
	}
	if d.RecordedWindows != 3 || d.ComparedWindows != 3 || d.FirstDivergentWindow != -1 {
		t.Fatalf("window accounting wrong: %+v", d)
	}
	if !strings.Contains(d.String(), "byte-identical") {
		t.Fatalf("verdict: %s", d)
	}
}

func TestCompareZeroDivergenceDifferentHeader(t *testing.T) {
	deltas := [][]uint64{{10, 20}, {30, 40}}
	a := writeStream(t, StreamHeader{Dirs: 2, FAs: 1, ScrapePs: sim.Microsecond, Seed: 1}, deltas)
	b := writeStream(t, StreamHeader{Dirs: 2, FAs: 1, ScrapePs: sim.Microsecond, Seed: 2}, deltas)
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.ByteIdentical || !d.Zero || !d.ShapeMatch {
		t.Fatalf("same counters, different header misreported: %+v", d)
	}
	if !strings.Contains(d.String(), "zero divergence") {
		t.Fatalf("verdict: %s", d)
	}
}

func TestCompareLocalizesDivergence(t *testing.T) {
	hdr := StreamHeader{Dirs: 3, FAs: 1, ScrapePs: sim.Microsecond}
	a := writeStream(t, hdr, [][]uint64{{10, 20, 5}, {30, 40, 5}, {50, 60, 5}})
	b := writeStream(t, hdr, [][]uint64{{10, 20, 5}, {37, 40, 5}, {50, 25, 5}})
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.ByteIdentical || d.Zero {
		t.Fatalf("divergence missed: %+v", d)
	}
	if d.DivergentWindows != 2 || d.FirstDivergentWindow != 1 || d.FirstDivergentT != 2*sim.Microsecond {
		t.Fatalf("localization wrong: %+v", d)
	}
	// Dirs 0 and 1 diverged (in different windows); dir 2 never did.
	if d.DirsDiverged != 2 {
		t.Fatalf("DirsDiverged = %d, want 2: %+v", d.DirsDiverged, d)
	}
	if d.MaxCellDelta != 35 { // |60-25|
		t.Fatalf("MaxCellDelta = %d, want 35", d.MaxCellDelta)
	}
	if !strings.Contains(d.String(), "diverged in 2/3 windows") {
		t.Fatalf("verdict: %s", d)
	}
}

func TestCompareShapeChange(t *testing.T) {
	a := writeStream(t, StreamHeader{Dirs: 2, FAs: 1, ScrapePs: sim.Microsecond}, [][]uint64{{10, 20}})
	b := writeStream(t, StreamHeader{Dirs: 4, FAs: 2, ScrapePs: sim.Microsecond}, [][]uint64{{1, 2, 3, 4}})
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.ShapeMatch || d.Zero {
		t.Fatalf("shape change missed: %+v", d)
	}
	if d.RecordedCells != 10 || d.ReplayedCells != 1 {
		t.Fatalf("aggregate totals wrong: %+v", d)
	}
	if !strings.Contains(d.String(), "shape change") {
		t.Fatalf("verdict: %s", d)
	}
}

func TestCompareRejectsCorruptInput(t *testing.T) {
	good := writeStream(t, StreamHeader{Dirs: 2, FAs: 0, ScrapePs: sim.Microsecond}, [][]uint64{{1, 2}})
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := Compare(good, bad); err == nil {
		t.Fatal("corrupt replayed stream accepted")
	}
	if _, err := Compare(bad, good); err == nil {
		t.Fatal("corrupt recorded stream accepted")
	}
}

// Unequal window counts: the shorter prefix compares clean but Zero must
// be false (the replay ended early or ran long).
func TestCompareLengthMismatch(t *testing.T) {
	hdr := StreamHeader{Dirs: 2, FAs: 0, ScrapePs: sim.Microsecond}
	a := writeStream(t, hdr, [][]uint64{{1, 2}, {3, 4}, {5, 6}})
	b := writeStream(t, hdr, [][]uint64{{1, 2}, {3, 4}})
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Zero || d.DivergentWindows != 0 || d.ComparedWindows != 2 {
		t.Fatalf("length mismatch misreported: %+v", d)
	}
}
