// Incast (§5.4): seven adapters burst 100KB each toward one 100G port.
// The egress credit scheduler admits the aggregate at exactly the port
// rate, the excess waits in the *source* adapters' deep buffers, nothing
// is lost in the fabric, and service is round-robin fair.
package main

import (
	"fmt"
	"log"

	"stardust/internal/core"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

func main() {
	clos, err := topo.NewClos2(8, 4, 4, 8, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.HostPortsPerFA = 2
	net, err := core.New(cfg, clos)
	if err != nil {
		log.Fatal(err)
	}
	if !net.WarmUp(5 * sim.Millisecond) {
		log.Fatal("no convergence")
	}

	perSource := map[uint16]int64{}
	var firstDone, lastDone sim.Time
	remaining := map[uint16]int64{}
	net.OnDeliver = func(p *core.Packet) {
		perSource[p.SrcFA] += int64(p.Size)
		remaining[p.SrcFA] -= int64(p.Size)
		if remaining[p.SrcFA] == 0 {
			if firstDone == 0 {
				firstDone = net.Sim.Now()
			}
			lastDone = net.Sim.Now()
		}
	}

	const burst = 100 << 10
	const pkt = 1000
	start := net.Sim.Now()
	for src := uint16(1); src < 8; src++ {
		for b := 0; b < burst; b += pkt {
			if ok, _ := net.Inject(src, 0, 0, 0, 0, pkt); !ok {
				log.Fatalf("ingress buffer overflow at source %d", src)
			}
			remaining[src] += pkt
		}
	}
	net.Run(start + 2*sim.Millisecond)

	fmt.Println("7-to-1 incast of 100KB bursts into one 100G port:")
	for src := uint16(1); src < 8; src++ {
		fmt.Printf("  source FA%-2d delivered %3dKB\n", src, perSource[src]>>10)
	}
	var feDrops uint64
	for _, fe := range net.FEs {
		feDrops += fe.Dropped
	}
	fmt.Printf("fabric drops: %d\n", feDrops)
	if firstDone == 0 || lastDone == 0 {
		log.Fatal("incast did not complete")
	}
	fmt.Printf("first source finished at %.1f us, last at %.1f us (fair round-robin credits)\n",
		(firstDone - start).Microseconds(), (lastDone - start).Microseconds())
}
