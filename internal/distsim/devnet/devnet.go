// Package devnet forks real peer processes for distributed-simulation
// tests. It re-executes the current binary with STARDUST_PEER_JOIN set;
// any binary whose main (or TestMain) calls distsim.MaybeRunPeer first
// branches into the peer loop in the child, so the coordinator under test
// talks to genuinely separate OS processes over real TCP — the same code
// path a multi-host deployment exercises, minus the network distance.
package devnet

import (
	"fmt"
	"os"
	"os/exec"

	"stardust/internal/distsim"
)

// Peer is one forked peer process.
type Peer struct {
	cmd *exec.Cmd
}

// Spawn forks the current executable as a peer joining the coordinator at
// addr. The child inherits stderr so peer-side failures surface in test
// output.
func Spawn(addr string) (*Peer, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("devnet: locating own binary: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), distsim.EnvJoin+"="+addr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("devnet: forking peer: %w", err)
	}
	return &Peer{cmd: cmd}, nil
}

// Kill delivers SIGKILL — an unclean death, no TCP goodbye beyond the
// kernel's RST. This is the crash the checkpoint/restore path must absorb.
func (p *Peer) Kill() error {
	return p.cmd.Process.Kill()
}

// Wait reaps the child and returns its exit error, if any. After Kill the
// error reports the signal; callers expecting a clean exit check nil.
func (p *Peer) Wait() error {
	return p.cmd.Wait()
}
