package mgmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"stardust/internal/engine"
)

func init() {
	// A scenario that takes real wall time, for queue-occupancy and
	// streaming-timeout tests.
	engine.Register(engine.Scenario{
		Name:     "mgmttest/sleep",
		Desc:     "sleeps ms then echoes",
		Defaults: engine.Params{"ms": "100"},
		Docs:     map[string]string{"ms": "wall sleep in milliseconds"},
		Run: func(c engine.Context) (engine.Result, error) {
			time.Sleep(time.Duration(c.Params.Int("ms", 100)) * time.Millisecond)
			var r engine.Result
			r.Add("seed", float64(c.Seed), "")
			r.Text = fmt.Sprintf("slept ms=%s seed=%d\n", c.Params["ms"], c.Seed)
			return r, nil
		},
	})
}

// POST /api/v1/runs with a body over the cap must be refused with 413
// and a JSON error, not read to completion.
func TestOversizedSubmitBodyRejected(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	big := append([]byte(`{"scenario":"`), bytes.Repeat([]byte("a"), maxBodyBytes+1024)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit gave %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body is not a JSON error: %v %v", err, e)
	}
}

// The replay endpoint has the same cap and the same 413 shape.
func TestOversizedReplayBodyRejected(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	resp, err := http.Post(ts.URL+"/api/v1/replay", "application/octet-stream",
		bytes.NewReader(make([]byte, maxBodyBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized replay gave %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body is not a JSON error: %v %v", err, e)
	}
}

// Fair-share admission, deterministically: with the worker pinned by a
// slow job, a client over its share is rejected with a fairness (not
// global) OverloadError while the queue still has room, and a full
// queue rejects globally with errors.Is(..., ErrQueueFull). Both carry
// Retry-After estimates.
func TestFairShareAdmission(t *testing.T) {
	q := NewRunQueue(8, 1, 1)
	defer q.Shutdown()
	slow := func(seed int64) RunRequest {
		return RunRequest{Scenario: "mgmttest/sleep", Params: engine.Params{"ms": "200"}, Seed: seed}
	}
	// Greedy takes 4 of 8 slots (1 running + 3 queued).
	for i := int64(1); i <= 4; i++ {
		if _, _, err := q.Submit(slow(i), "greedy"); err != nil {
			t.Fatalf("greedy submit %d: %v", i, err)
		}
	}
	// A second client activates fairness: share = ceil(8/2) = 4.
	if _, _, err := q.Submit(slow(100), "fair"); err != nil {
		t.Fatalf("fair submit: %v", err)
	}
	// Greedy is now at its share: rejected even though the queue has room.
	_, _, err := q.Submit(slow(5), "greedy")
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Global || ov.Share != 4 {
		t.Fatalf("over-share submit: want fairness OverloadError share=4, got %v", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("fairness rejection must not read as a global queue-full")
	}
	if ov.RetryAfter < time.Second {
		t.Fatalf("Retry-After estimate too small: %v", ov.RetryAfter)
	}
	// Fair fills its share; the 9th pending submission is a global full.
	for i := int64(101); i <= 103; i++ {
		if _, _, err := q.Submit(slow(i), "fair"); err != nil {
			t.Fatalf("fair submit %d: %v", i, err)
		}
	}
	_, _, err = q.Submit(slow(104), "fair")
	if !errors.As(err, &ov) || !ov.Global || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: want global OverloadError, got %v", err)
	}
	st := q.Stats()
	if st.RejectedFair != 1 || st.Rejected != 2 || st.ActiveClients != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Depth != st.Capacity-st.Running {
		t.Fatalf("depth %d inconsistent with capacity %d running %d", st.Depth, st.Capacity, st.Running)
	}
}

// Over HTTP: a greedy client saturating the queue cannot starve a
// second client — as slots drain, the greedy's resubmissions bounce off
// the fair-share ceiling and the fair client is admitted. 429s carry
// Retry-After.
func TestGreedyClientCannotStarve(t *testing.T) {
	q := NewRunQueue(4, 1, 1)
	t.Cleanup(q.Shutdown)
	ts := httptest.NewServer(NewServer(q, nil))
	t.Cleanup(ts.Close)

	post := func(client string, seed int64) *http.Response {
		blob, _ := json.Marshal(RunRequest{
			Scenario: "mgmttest/sleep", Params: engine.Params{"ms": "50"}, Seed: seed,
		})
		req, _ := http.NewRequest("POST", ts.URL+"/api/v1/runs", bytes.NewReader(blob))
		req.Header.Set("X-Stardust-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Greedy floods until the queue rejects it.
	seed := int64(1)
	saw429 := false
	for ; seed < 64; seed++ {
		resp := post("greedy", seed)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("429 without a usable Retry-After: %q", resp.Header.Get("Retry-After"))
			}
			saw429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("greedy submit %d: %d", seed, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("greedy never hit backpressure")
	}
	// The fair client keeps retrying while greedy keeps flooding; it must
	// be admitted well before the greedy backlog would have drained.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for gs := int64(1000); ; gs++ {
			select {
			case <-stop:
				return
			default:
			}
			resp := post("greedy", gs)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for fs := int64(5000); ; fs++ {
		if time.Now().After(deadline) {
			t.Fatal("fair client starved by greedy client")
		}
		resp := post("fair", fs)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			return // admitted: no starvation
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startTimeoutServer serves h on a real TCP listener through
// NewHTTPServer, so connection timeouts are live.
func startTimeoutServer(t *testing.T, h http.Handler, tmo HTTPTimeouts) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer("", h, tmo)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// A client that stalls mid-headers must be disconnected by
// ReadHeaderTimeout — it cannot hold the connection forever.
func TestStalledClientDisconnected(t *testing.T) {
	q := NewRunQueue(4, 1, 1)
	t.Cleanup(q.Shutdown)
	addr := startTimeoutServer(t, NewServer(q, nil), HTTPTimeouts{
		ReadHeader: 200 * time.Millisecond,
		Read:       500 * time.Millisecond,
		Write:      time.Second,
		Idle:       time.Second,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence.
	if _, err := conn.Write([]byte("GET /healthz HTT")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	// The server may answer with a 4xx before closing; what matters is
	// that the connection reaches EOF quickly instead of hanging. A
	// deadline error here means it was never closed.
	blob, err := io.ReadAll(conn)
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled connection still open after %v", time.Since(start))
	}
	if err != nil {
		t.Fatalf("reading from stalled connection: %v", err)
	}
	if held := time.Since(start); held > 3*time.Second {
		t.Fatalf("connection held %v before close", held)
	}
	if len(blob) > 0 && !bytes.HasPrefix(blob, []byte("HTTP/1.1 4")) {
		t.Fatalf("unexpected server answer to stalled request: %q", blob[:min(len(blob), 40)])
	}
}

// The NDJSON progress stream must outlive a server WriteTimeout shorter
// than the run: the handler extends its own write deadline each poll
// tick via http.ResponseController.
func TestStreamOutlivesWriteTimeout(t *testing.T) {
	q := NewRunQueue(4, 1, 1)
	t.Cleanup(q.Shutdown)
	addr := startTimeoutServer(t, NewServer(q, nil), HTTPTimeouts{
		ReadHeader: time.Second,
		Read:       time.Second,
		Write:      300 * time.Millisecond, // far shorter than the run below
		Idle:       time.Second,
	})
	j, _, err := q.Submit(RunRequest{
		Scenario: "mgmttest/sleep", Params: engine.Params{"ms": "1200"}, Seed: 42,
	}, "test")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/api/v1/runs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream died before the run finished (WriteTimeout not extended): %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
	var final Job
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil || final.State != JobDone {
		t.Fatalf("stream did not end with the done snapshot: %v %s", err, blob)
	}
}

// The cache endpoint serves local results by content address as pure
// bytes, 404s unknown keys, and rejects malformed keys.
func TestCacheEndpointLocal(t *testing.T) {
	ts, q, _ := newTestDaemon(t, false)
	req := RunRequest{Scenario: "mgmttest/echo", Params: engine.Params{"x": "9"}, Seed: 3}
	j, _, err := q.Submit(req, "test")
	if err != nil {
		t.Fatal(err)
	}
	want := fetchResult(t, ts, q, j.ID)
	resp, err := http.Get(ts.URL + "/api/v1/cache/" + req.CacheKey())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("cache endpoint: %d, %d vs %d bytes", resp.StatusCode, len(got), len(want))
	}
	if resp.Header.Get("X-Stardust-Cache") != "hit" {
		t.Fatalf("cache header %q", resp.Header.Get("X-Stardust-Cache"))
	}
	if cl, _ := strconv.Atoi(resp.Header.Get("Content-Length")); cl != len(want) {
		t.Fatalf("Content-Length %d, want %d", cl, len(want))
	}
	for _, bad := range []string{strings.Repeat("0", 64), "nothex", strings.Repeat("a", 63)} {
		resp, err := http.Get(ts.URL + "/api/v1/cache/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("bogus key %q served", bad)
		}
	}
}

// A peer-fetched result installed by PutRemote serves identical bytes
// and coalesces later submissions of the same key as cache hits.
func TestRemoteResultStore(t *testing.T) {
	q := NewRunQueue(4, 1, 1)
	defer q.Shutdown()
	req := RunRequest{Scenario: "mgmttest/echo", Seed: 77}
	key := req.CacheKey()
	out := []byte(`{"fake":"peer result"}`)
	q.PutRemote(key, out)
	got, ok := q.ResultByKey(key)
	if !ok || !bytes.Equal(got, out) {
		t.Fatalf("remote store miss: %v %q", ok, got)
	}
	j, cached, err := q.Submit(req, "test")
	if err != nil || !cached {
		t.Fatalf("submission of peer-held key did not coalesce: %v %v", err, cached)
	}
	res, state, ok := q.Result(j.ID)
	if !ok || state != JobDone || !bytes.Equal(res, out) {
		t.Fatalf("remote-backed job result: ok=%v state=%s %q", ok, state, res)
	}
	if st := q.Stats(); st.RemoteHits != 1 || st.RemoteResults != 1 || st.RemoteBytes != len(out) {
		t.Fatalf("remote stats: %+v", st)
	}
	// The store is byte-capped with FIFO eviction. (The evicted key's
	// bytes remain reachable through the done job it coalesced into —
	// only the peer-fetched copy is dropped.)
	q.maxRemote = len(out) + 4
	q.PutRemote(strings.Repeat("b", 64), []byte("12345"))
	if st := q.Stats(); st.RemoteResults != 1 || st.RemoteBytes != 5 {
		t.Fatalf("FIFO eviction did not drop the oldest remote result: %+v", st)
	}
}
