package engine

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// The global scenario registry. Registration happens in package init
// functions (internal/scenarios); lookups happen from cmd binaries and
// tests. The mutex makes the registry safe for parallel tests.
var (
	regMu    sync.RWMutex
	registry = make(map[string]*Scenario)
)

// Register adds a scenario to the global registry. It panics on a
// duplicate or malformed registration — both are programmer errors.
func Register(s Scenario) {
	if s.Name == "" || s.Run == nil {
		panic("engine: scenario needs a name and a Run function")
	}
	for k := range s.Docs {
		if _, ok := s.Defaults[k]; !ok {
			panic("engine: " + s.Name + " documents parameter " + k + " that has no default")
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("engine: duplicate scenario " + s.Name)
	}
	sc := s
	registry[s.Name] = &sc
}

// Lookup returns the named scenario.
func Lookup(name string) (*Scenario, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	sc, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown scenario %q (run with -list to see the registry)", name)
	}
	return sc, nil
}

// List returns all registered scenarios sorted by name.
func List() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Match resolves a pattern to scenario names, sorted. A pattern is an
// exact name, a family prefix ("htsim" matches "htsim/*"), or a
// path.Match glob ("fabric/*", "*/fig*").
func Match(pattern string) ([]string, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if _, ok := registry[pattern]; ok {
		return []string{pattern}, nil
	}
	var names []string
	for name := range registry {
		if strings.HasPrefix(name, pattern+"/") {
			names = append(names, name)
			continue
		}
		if ok, err := path.Match(pattern, name); err == nil && ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("engine: no scenario matches %q", pattern)
	}
	sort.Strings(names)
	return names, nil
}
