package analytic

import "stardust/internal/topo"

// Fig 11(b): relative power of a Stardust DCN vs. fat-tree variants.
//
// The model follows §7: power is accounted per active serial link, every
// 12.8 Tbps device carries 256 50G serdes regardless of bundling, Fabric
// Element devices burn RelPowerPerTbps (64.8%) of the per-link power of an
// Ethernet switch, and cross-section bandwidth is held equal.

// PowerModel prices a network in per-link power units.
type PowerModel struct {
	ToRLinkPower    float64 // per serial link on a ToR / Fabric Adapter
	FabricLinkPower float64 // per serial link on a fabric switch
}

// EthernetPower is the model for a classic fat-tree (all devices identical).
var EthernetPower = PowerModel{ToRLinkPower: 1, FabricLinkPower: 1}

// StardustPower applies the Fig 10(d) power ratio to fabric devices.
var StardustPower = PowerModel{ToRLinkPower: 1, FabricLinkPower: PaperAreaRatios.RelPowerPerTbps}

// NetworkPower returns the total power (arbitrary per-link units) of a
// network plan: every ToR burns power for its host-facing serial links and
// fabric-facing serial links; every fabric device burns power for all its
// serial links, discounted by the model's fabric factor.
func NetworkPower(m PowerModel, plan topo.NetworkPlan) float64 {
	hostLinks := float64(plan.Hosts) * float64(topo.HostGbps) / 50.0 // 50G serdes per host link lane
	// Each inter-switch serial link has two ends; attribute the ToR end of
	// tier-0/1 links to the ToR and everything else to fabric devices.
	perBoundary := float64(plan.SerialLinks) / float64(plan.Tiers)
	torEnds := perBoundary
	fabricEnds := 2*float64(plan.SerialLinks) - torEnds
	return m.ToRLinkPower*(hostLinks+torEnds) + m.FabricLinkPower*fabricEnds
}

// RelativePower returns power(Stardust)/power(fat-tree with ftDev) as a
// percentage for a network of the given size (one point of Fig 11b).
func RelativePower(ftDev topo.DeviceConfig, hosts int) float64 {
	sd := NetworkPower(StardustPower, topo.Plan(topo.Stardust50G, hosts))
	ft := NetworkPower(EthernetPower, topo.Plan(ftDev, hosts))
	return 100 * sd / ft
}

// FabricPowerSaving returns the percentage power saving inside the network
// fabric only (excluding ToRs and host links) for a network of the given
// size vs. the given fat-tree device — the "78% saving within the network
// fabric" anchor of §7.
func FabricPowerSaving(ftDev topo.DeviceConfig, hosts int) float64 {
	sp := topo.Plan(topo.Stardust50G, hosts)
	fp := topo.Plan(ftDev, hosts)
	// Fabric power ~ number of fabric devices x per-device power; every
	// 12.8T device has 256 serdes, FEs at the 64.8% ratio.
	sd := float64(sp.Switches) * 256 * PaperAreaRatios.RelPowerPerTbps
	ft := float64(fp.Switches) * 256
	return 100 * (1 - sd/ft)
}

// Fig11bRow is one x-position of Fig 11(b).
type Fig11bRow struct {
	Hosts    int
	Relative map[string]float64
}

// Fig11b evaluates the figure for the given host counts (nil = log sweep).
func Fig11b(hostCounts []int) []Fig11bRow {
	if hostCounts == nil {
		for h := 1000; h <= 1000000; h = h * 10 / 4 {
			hostCounts = append(hostCounts, h)
		}
	}
	rows := make([]Fig11bRow, 0, len(hostCounts))
	for _, h := range hostCounts {
		row := Fig11bRow{Hosts: h, Relative: map[string]float64{}}
		for _, dev := range topo.Fig2Devices {
			row.Relative[dev.Name] = RelativePower(dev, h)
		}
		rows = append(rows, row)
	}
	return rows
}
