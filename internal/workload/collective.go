package workload

import (
	"math"
	"math/rand"

	"stardust/internal/stats"
)

// ML-collective and storage workloads: the traffic families that stress a
// cell fabric differently from the paper's Fig 10 matrices. Collectives
// are phase-synchronized neighbor exchanges (every rank busy, but along a
// fixed sparse pattern), storage traffic mixes tiny metadata operations
// with multi-megabyte chunk transfers, and diurnal open-loop arrivals
// modulate the offered load through a daily cycle. All generators are
// deterministic functions of their arguments (plus an explicit rng where
// randomness is wanted), so they compose with the byte-identical
// digest discipline of the sharded engine.

// CollectiveFlow is one src->dst transfer of a collective phase.
type CollectiveFlow struct {
	Src, Dst int
	Bytes    int64
}

// RingAllReduce returns the phase schedule of a ring all-reduce over
// nodes ranks carrying a total payload of bytes: 2*(nodes-1) phases
// (reduce-scatter then all-gather), each phase sending one chunk of
// bytes/nodes from every rank to its ring successor. The per-phase flow
// list is the classic bandwidth-optimal pattern: every link of the ring
// carries exactly one chunk per phase.
func RingAllReduce(nodes int, bytes int64) [][]CollectiveFlow {
	if nodes < 2 || bytes <= 0 {
		return nil
	}
	chunk := bytes / int64(nodes)
	if chunk < 1 {
		chunk = 1
	}
	phases := make([][]CollectiveFlow, 0, 2*(nodes-1))
	for p := 0; p < 2*(nodes-1); p++ {
		flows := make([]CollectiveFlow, 0, nodes)
		for src := 0; src < nodes; src++ {
			flows = append(flows, CollectiveFlow{Src: src, Dst: (src + 1) % nodes, Bytes: chunk})
		}
		phases = append(phases, flows)
	}
	return phases
}

// TreeAllReduce returns the phase schedule of a binomial-tree all-reduce
// rooted at rank 0: ceil(log2 nodes) reduce phases where the upper half
// of each active range sends its full payload to the lower half, then the
// mirror-image broadcast phases. Latency-optimal (2*log2 n phases) but
// with fan-in at the root — the incast-like counterpart to the ring.
func TreeAllReduce(nodes int, bytes int64) [][]CollectiveFlow {
	if nodes < 2 || bytes <= 0 {
		return nil
	}
	var reduce [][]CollectiveFlow
	for stride := 1; stride < nodes; stride *= 2 {
		var flows []CollectiveFlow
		for dst := 0; dst+stride < nodes; dst += 2 * stride {
			flows = append(flows, CollectiveFlow{Src: dst + stride, Dst: dst, Bytes: bytes})
		}
		reduce = append(reduce, flows)
	}
	phases := append([][]CollectiveFlow(nil), reduce...)
	for i := len(reduce) - 1; i >= 0; i-- {
		bcast := make([]CollectiveFlow, 0, len(reduce[i]))
		for _, f := range reduce[i] {
			bcast = append(bcast, CollectiveFlow{Src: f.Dst, Dst: f.Src, Bytes: f.Bytes})
		}
		phases = append(phases, bcast)
	}
	return phases
}

// StorageFlowSizes is a storage-style mixed-size flow distribution:
// dominated by small metadata and key-value operations (hundreds of bytes
// to a few KB) with a fat tail of chunk reads/writes up to 64MB — the
// bimodal shape that makes storage backends hard on fabrics tuned for
// either mice or elephants alone.
func StorageFlowSizes() *stats.EmpiricalCDF {
	return stats.NewEmpiricalCDF(
		[]float64{256, 1e3, 4e3, 16e3, 64e3, 512e3, 4e6, 16e6, 64e6},
		[]float64{0.00, 0.25, 0.50, 0.62, 0.72, 0.80, 0.90, 0.96, 1.00},
	)
}

// DiurnalArrivals precomputes an open-loop arrival process over [0, dur)
// seconds whose instantaneous rate follows a daily cycle: a sinusoid
// between peakRate and peakRate*trough (trough in [0,1]) with the given
// period in seconds. The process is a Poisson stream thinned against the
// modulation, so burstiness survives; the returned times are strictly
// increasing. Deterministic for a fixed rng state.
func DiurnalArrivals(rng *rand.Rand, peakRate, trough, periodSec, dur float64) []float64 {
	if peakRate <= 0 || dur <= 0 || periodSec <= 0 {
		return nil
	}
	if trough < 0 {
		trough = 0
	}
	if trough > 1 {
		trough = 1
	}
	var out []float64
	t := 0.0
	mean := 1 / peakRate
	for {
		// Candidate from the peak-rate Poisson process, then thin by the
		// instantaneous modulation m(t) in [trough, 1].
		t += stats.Exp(rng, mean)
		if t >= dur {
			return out
		}
		m := trough + (1-trough)*(0.5+0.5*math.Sin(2*math.Pi*t/periodSec))
		if rng.Float64() < m {
			out = append(out, t)
		}
	}
}
