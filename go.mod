module stardust

go 1.24
