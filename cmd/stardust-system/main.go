// Command stardust-system regenerates the §6.1.2 single-tier system
// measurement: line rate and latency versus packet size on an
// Arista-7500E-style platform of Fabric Adapters and Fabric Elements.
// Each packet size is an independent scenario instance, so -workers=N
// runs the sweep in parallel.
package main

import (
	"flag"
	"fmt"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	numFA := flag.Int("fa", 6, "number of Fabric Adapters")
	ports := flag.Int("ports", 16, "host ports per adapter")
	packing := flag.Bool("packing", false, "enable packet packing (Arad: off)")
	durUs := flag.Int("dur", 300, "measurement duration per size in us")
	sizes := flag.String("sizes", "64,128,256,384,512,1024,1518", "comma-separated packet sizes")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	engine.Main(eng, []engine.Job{{Scenario: "system/arista", Params: engine.Params{
		"fa":      fmt.Sprint(*numFA),
		"ports":   fmt.Sprint(*ports),
		"packing": fmt.Sprint(*packing),
		"dur_us":  fmt.Sprint(*durUs),
		"sizes":   *sizes,
	}}})
}
