package telemetry

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"

	"stardust/internal/sim"
)

// randStream writes nwin windows of random monotonic counters (plus a few
// link events) and returns the encoded stream alongside the absolute
// snapshots that produced it.
func randStream(t *testing.T, rng *rand.Rand, dirs, fas, nwin int) ([]byte, []Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, StreamHeader{
		Dirs: dirs, FAs: fas, K: 0, Seed: 42, ScrapePs: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Dirs: make([]DirSample, dirs), Sinks: make([]SinkSample, fas)}
	for d := range snap.Dirs {
		snap.Dirs[d].Up = true
	}
	var truth []Snapshot
	for i := 0; i < nwin; i++ {
		snap.T = sim.Time(i+1) * 10 * sim.Microsecond
		for d := range snap.Dirs {
			snap.Dirs[d].FwdBytes += uint64(rng.Intn(1 << 16))
			snap.Dirs[d].FwdCells += uint64(rng.Intn(64))
			snap.Dirs[d].Drops += uint64(rng.Intn(3))
			snap.Dirs[d].QueueBytes = uint64(rng.Intn(1 << 20))
			if rng.Intn(8) == 0 {
				snap.Dirs[d].Up = !snap.Dirs[d].Up
			}
		}
		for f := range snap.Sinks {
			snap.Sinks[f].Cells += uint64(rng.Intn(32))
			snap.Sinks[f].Bytes += uint64(rng.Intn(1 << 14))
		}
		if rng.Intn(4) == 0 && dirs > 0 {
			if err := w.WriteEvent(snap.T, EvLinkDown, rng.Intn(dirs/2+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteWindow(&snap); err != nil {
			t.Fatal(err)
		}
		cp := Snapshot{
			T:     snap.T,
			Dirs:  append([]DirSample(nil), snap.Dirs...),
			Sinks: append([]SinkSample(nil), snap.Sinks...),
		}
		truth = append(truth, cp)
	}
	return buf.Bytes(), truth
}

// TestRoundTripProperty drives random counter histories through the codec
// at assorted shapes and checks the decoded absolutes and deltas against
// the source snapshots exactly.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		dirs := 1 + rng.Intn(24)
		fas := rng.Intn(6)
		nwin := 1 + rng.Intn(12)
		stream, truth := randStream(t, rng, dirs, fas, nwin)

		sr := NewReader(bytes.NewReader(stream))
		hdr, err := sr.Header()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if hdr.Dirs != dirs || hdr.FAs != fas || hdr.Format != Format || hdr.Seed != 42 {
			t.Fatalf("trial %d: header mangled: %+v", trial, hdr)
		}
		var prev Snapshot
		prev.Dirs = make([]DirSample, dirs)
		prev.Sinks = make([]SinkSample, fas)
		wi := 0
		for {
			win, ev, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("trial %d window %d: %v", trial, wi, err)
			}
			if ev != nil {
				if ev.Kind != EvLinkDown {
					t.Fatalf("trial %d: unexpected event kind %d", trial, ev.Kind)
				}
				continue
			}
			want := &truth[wi]
			if win.Index != uint64(wi) || win.T != want.T {
				t.Fatalf("trial %d: window stamp (%d, %v) want (%d, %v)",
					trial, win.Index, win.T, wi, want.T)
			}
			for d := 0; d < dirs; d++ {
				if win.Dirs[d] != want.Dirs[d] {
					t.Fatalf("trial %d window %d dir %d: %+v want %+v",
						trial, wi, d, win.Dirs[d], want.Dirs[d])
				}
				if win.DFwdCells[d] != want.Dirs[d].FwdCells-prev.Dirs[d].FwdCells {
					t.Fatalf("trial %d window %d dir %d: delta wrong", trial, wi, d)
				}
			}
			for f := 0; f < fas; f++ {
				if win.Sinks[f] != want.Sinks[f] {
					t.Fatalf("trial %d window %d sink %d: %+v want %+v",
						trial, wi, f, win.Sinks[f], want.Sinks[f])
				}
			}
			prev.Dirs = append(prev.Dirs[:0], want.Dirs...)
			wi++
		}
		if wi != nwin {
			t.Fatalf("trial %d: decoded %d windows, wrote %d", trial, wi, nwin)
		}
	}
}

// readToEnd consumes a stream, returning windows decoded and the first
// error (io.EOF for a clean end).
func readToEnd(stream []byte) (int, error) {
	sr := NewReader(bytes.NewReader(stream))
	n := 0
	for {
		win, _, err := sr.Next()
		if err != nil {
			return n, err
		}
		if win != nil {
			n++
		}
	}
}

func TestBadMagic(t *testing.T) {
	for _, stream := range [][]byte{nil, []byte("STREC"), []byte("NOTRIGHT"), []byte("STREC2\x00xxxx")} {
		if _, err := readToEnd(stream); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("stream %q: got %v, want ErrBadMagic", stream, err)
		}
	}
}

// TestTruncationDetected cuts a valid stream at every byte offset: every
// prefix must end in ErrTruncated, ErrBadMagic (inside the magic), or a
// clean io.EOF strictly short of the full record count — never a
// successful full decode.
func TestTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stream, _ := randStream(t, rng, 5, 2, 4)
	fullWins, err := readToEnd(stream)
	if err != io.EOF {
		t.Fatal(err)
	}
	for cut := 0; cut < len(stream); cut++ {
		n, err := readToEnd(stream[:cut])
		switch {
		case errors.Is(err, ErrTruncated), errors.Is(err, ErrBadMagic):
		case err == io.EOF:
			if n == fullWins {
				t.Fatalf("cut at %d/%d decoded the full stream", cut, len(stream))
			}
		default:
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
	}
}

// TestCorruptionDetected flips each byte after the magic in turn: no
// single-byte corruption may decode cleanly to the full record count.
func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stream, _ := randStream(t, rng, 4, 1, 3)
	fullWins, err := readToEnd(stream)
	if err != io.EOF {
		t.Fatal(err)
	}
	sawCorrupt := false
	for i := len(Magic); i < len(stream); i++ {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x40
		n, err := readToEnd(mut)
		if err == io.EOF && n == fullWins {
			t.Fatalf("flipping byte %d went undetected", i)
		}
		if errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no corruption ever surfaced as ErrCorrupt")
	}
}

// appendFrame replicates the frame encoding for hand-built streams.
func appendFrame(b []byte, typ byte, body []byte) []byte {
	b = append(b, typ)
	b = binary.AppendUvarint(b, uint64(len(body)))
	b = append(b, body...)
	crc := crc32.ChecksumIEEE([]byte{typ})
	crc = crc32.Update(crc, crc32.IEEETable, body)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// A well-formed frame of an unknown type (a newer writer) is skipped; a
// duplicate header or an oversized body is an error.
func TestUnknownTypeSkippedAndHardErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	stream, _ := randStream(t, rng, 3, 0, 2)

	withUnknown := append(append([]byte(nil), stream...), appendFrame(nil, 99, []byte("future"))...)
	if n, err := readToEnd(withUnknown); err != io.EOF || n != 2 {
		t.Fatalf("unknown type not skipped: %d windows, %v", n, err)
	}

	hdrFrame := stream[len(Magic):]
	dup := append(append([]byte(nil), stream...), hdrFrame[:frameLen(t, hdrFrame)]...)
	if _, err := readToEnd(dup); err == nil || err == io.EOF {
		t.Fatal("duplicate header accepted")
	}

	huge := append([]byte(Magic), 2, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := readToEnd(huge); err == nil || errors.Is(err, io.EOF) {
		t.Fatal("oversized frame body accepted")
	}
}

// frameLen measures the first frame in b (type + uvarint len + body + crc).
func frameLen(t *testing.T, b []byte) int {
	t.Helper()
	n, k := binary.Uvarint(b[1:])
	if k <= 0 {
		t.Fatal("bad frame for frameLen")
	}
	return 1 + k + int(n) + 4
}

func TestHeaderValidation(t *testing.T) {
	// Wrong format version.
	bad := []byte(Magic)
	bad = appendFrame(bad, recHeader, []byte(`{"format":9,"dirs":2,"fas":0,"scrape_ps":1}`))
	if _, err := readToEnd(bad); err == nil {
		t.Fatal("format 9 accepted by a format-1 reader")
	}
	// Implausible dims.
	bad = []byte(Magic)
	bad = appendFrame(bad, recHeader, []byte(`{"format":1,"dirs":99999999,"fas":0,"scrape_ps":1}`))
	if _, err := readToEnd(bad); err == nil {
		t.Fatal("implausible dims accepted")
	}
	// First record is not a header.
	bad = []byte(Magic)
	bad = appendFrame(bad, recEvent, []byte{1, EvLinkUp, 0})
	if _, err := readToEnd(bad); err == nil {
		t.Fatal("headerless stream accepted")
	}
}

func TestWriteWindowShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, StreamHeader{Dirs: 4, FAs: 2, ScrapePs: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Dirs: make([]DirSample, 3), Sinks: make([]SinkSample, 2)}
	if err := w.WriteWindow(&snap); err == nil {
		t.Fatal("mismatched snapshot accepted")
	}
}

// The steady-state encode path must not allocate: this is the hot-path
// guarantee the scrape loop relies on (also enforced as a guarded
// benchmark at the repo root).
func TestWriteWindowDoesNotAllocate(t *testing.T) {
	w, err := NewWriter(io.Discard, StreamHeader{Dirs: 48, FAs: 8, ScrapePs: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Dirs: make([]DirSample, 48), Sinks: make([]SinkSample, 8)}
	for d := range snap.Dirs {
		snap.Dirs[d].Up = true
	}
	// Warm the scratch buffers.
	for i := 0; i < 3; i++ {
		snap.T += sim.Microsecond
		if err := w.WriteWindow(&snap); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		snap.T += sim.Microsecond
		for d := range snap.Dirs {
			snap.Dirs[d].FwdBytes += 512
			snap.Dirs[d].FwdCells++
		}
		if err := w.WriteWindow(&snap); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteWindow allocates %.1f per op in steady state", allocs)
	}
}
