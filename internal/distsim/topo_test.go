package distsim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"stardust/internal/sim"
	"stardust/internal/telemetry"
)

// Cross-topology invariant suite: every topology family and traffic
// pattern the Spec can name must satisfy the same three contracts the
// Clos does — exact cell-fate accounting (injected = delivered + drops),
// a byte-identical digest at shard counts {1, 2, 4}, and zero
// unreachable pairs after a heal. These are the determinism and
// conservation claims of the sharded engine, verified per topology
// rather than assumed to transfer.

// topoSpec builds one short run of the given family and pattern.
func topoSpec(topoName, pattern string, shards int) Spec {
	return Spec{
		K: 4, Topo: topoName, Seed: 7, Shards: shards,
		Dur: 150 * sim.Microsecond, Load: 0.5, Pattern: pattern,
		CellBytes: 512, Hotspot: 1,
	}
}

var topoFamilies = []string{"clos", "sshuffle", "star"}

func TestTopoShardInvariance(t *testing.T) {
	for _, topoName := range topoFamilies {
		for _, pattern := range []string{"", "permutation", "incast"} {
			name := topoName + "/" + pattern
			if pattern == "" {
				name = topoName + "/rotate"
			}
			t.Run(name, func(t *testing.T) {
				ref := localOutcome(t, topoSpec(topoName, pattern, 1))
				if ref.Injected == 0 {
					t.Fatalf("%s %q injected no cells", topoName, pattern)
				}
				if leak := ref.Injected - ref.Delivered - ref.Drops; leak != 0 {
					t.Fatalf("%s %q: %d cells unaccounted for (injected %d, delivered %d, dropped %d)",
						topoName, pattern, leak, ref.Injected, ref.Delivered, ref.Drops)
				}
				for _, shards := range []int{2, 4} {
					got := localOutcome(t, topoSpec(topoName, pattern, shards))
					// ShardEvents legitimately varies with the split; every
					// other field is the determinism contract.
					got.ShardEvents, ref.ShardEvents = nil, nil
					got.Events, ref.Events = 0, 0
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("%s %q diverged at shards=%d:\n got %+v\nwant %+v",
							topoName, pattern, shards, got, ref)
					}
				}
			})
		}
	}
}

func TestTopoFailHealInvariants(t *testing.T) {
	for _, topoName := range topoFamilies {
		t.Run(topoName, func(t *testing.T) {
			mk := func(shards int) Spec {
				s := topoSpec(topoName, "", shards)
				s.FailN = 2
				s.FailAt = 50 * sim.Microsecond
				s.HealAt = 100 * sim.Microsecond
				return s
			}
			ref := localOutcome(t, mk(1))
			if leak := ref.Injected - ref.Delivered - ref.Drops; leak != 0 {
				t.Fatalf("%s fail/heal: %d cells unaccounted for", topoName, leak)
			}
			if ref.Unreachable != 0 {
				t.Fatalf("%s: %d unreachable pairs after heal", topoName, ref.Unreachable)
			}
			for _, shards := range []int{2, 4} {
				got := localOutcome(t, mk(shards))
				got.ShardEvents, ref.ShardEvents = nil, nil
				got.Events, ref.Events = 0, 0
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s fail/heal diverged at shards=%d:\n got %+v\nwant %+v",
						topoName, shards, got, ref)
				}
			}
		})
	}
}

// TestTopoDistributedMatchesLocal: the non-Clos families must survive the
// real coordinator/peer protocol too — same digest as in-process shards.
func TestTopoDistributedMatchesLocal(t *testing.T) {
	for _, topoName := range []string{"sshuffle", "star"} {
		t.Run(topoName, func(t *testing.T) {
			spec := topoSpec(topoName, "permutation", 4)
			want := localOutcome(t, spec)
			got, err := serveWith(t, spec, 2, CoordConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("distributed outcome diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestTopoUnknownPattern: a bad pattern must fail model construction, not
// silently fall back to rotation.
func TestTopoUnknownPattern(t *testing.T) {
	if _, err := NewModel(topoSpec("clos", "elephant", 1)); err == nil {
		t.Fatal("NewModel accepted an unknown traffic pattern")
	}
	if _, err := NewModel(topoSpec("moebius", "", 1)); err == nil {
		t.Fatal("NewModel accepted an unknown topology family")
	}
}

// TestTopoSpecString: the canonical spec string survives the Spec — what
// the telemetry header and the distsim handshake embed.
func TestTopoSpecString(t *testing.T) {
	want := map[string]string{
		"clos":     "clos:k=4",
		"sshuffle": "sshuffle:n=8,s=3,seed=1",
		"star":     "star:m=4,d=2",
	}
	for _, topoName := range topoFamilies {
		m, err := NewModel(topoSpec(topoName, "", 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Graph.Spec(); got != want[topoName] {
			t.Fatalf("%s: spec %q, want %q", topoName, got, want[topoName])
		}
	}
}

// TestTopoStreamRoundTrip: a telemetry stream recorded on any topology
// family must be shard-invariant byte-for-byte, carry the canonical
// topology spec in its header, and let MetaFromHeader rebuild the exact
// wiring — the bugfix for headers that only carried the Clos K.
func TestTopoStreamRoundTrip(t *testing.T) {
	for _, topoName := range topoFamilies {
		t.Run(topoName, func(t *testing.T) {
			mk := func(shards int) Spec {
				s := topoSpec(topoName, "", shards)
				s.Telem = 20 * sim.Microsecond
				return s
			}
			ref := recordBytes(t, mk(1))
			for _, shards := range []int{2, 4} {
				if got := recordBytes(t, mk(shards)); !bytes.Equal(got, ref) {
					t.Fatalf("%s stream at %d shards differs from 1 shard (%d vs %d bytes)",
						topoName, shards, len(got), len(ref))
				}
			}
			r := telemetry.NewReader(bytes.NewReader(ref))
			hdr, err := r.Header()
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewModel(mk(1))
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Topo != m.Graph.Spec() {
				t.Fatalf("%s header topo %q, want %q", topoName, hdr.Topo, m.Graph.Spec())
			}
			meta, err := telemetry.MetaFromHeader(hdr)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Dirs != hdr.Dirs || meta.FAs != hdr.FAs {
				t.Fatalf("%s meta dims %d/%d do not match header %d/%d",
					topoName, meta.Dirs, meta.FAs, hdr.Dirs, hdr.FAs)
			}
			if len(meta.FAUplinks) != meta.FAs {
				t.Fatalf("%s meta groups %d uplink sets for %d edge devices",
					topoName, len(meta.FAUplinks), meta.FAs)
			}
			// The rebuilt wiring must label every direction.
			for d, name := range meta.DirNames {
				if name == "" {
					t.Fatalf("%s meta left dir %d unnamed", topoName, d)
				}
			}
		})
	}
}

// TestTopoStreamUnknownSpec: a header naming a topology this build cannot
// rebuild must fail loudly, never mislabel the data as a Clos.
func TestTopoStreamUnknownSpec(t *testing.T) {
	if _, err := telemetry.MetaFromHeader(telemetry.StreamHeader{
		Topo: "torus:x=4,y=4", Dirs: 8, FAs: 4,
	}); err == nil {
		t.Fatal("MetaFromHeader accepted an unknown topology spec")
	}
	// A spec that parses but disagrees with the stream dimensions is a
	// corrupt or mismatched stream, not something to analyze anyway.
	if _, err := telemetry.MetaFromHeader(telemetry.StreamHeader{
		Topo: "clos:k=4", Dirs: 2, FAs: 1,
	}); err == nil {
		t.Fatal("MetaFromHeader accepted mismatched stream dimensions")
	}
}

func init() {
	// Guard against accidental K drift in topoSpec: the families are sized
	// by the same K, so their edge counts agree (k*k/2 = 8 at K=4).
	if s := topoSpec("clos", "", 1); s.K != 4 {
		panic(fmt.Sprintf("topoSpec K drifted to %d", s.K))
	}
}
