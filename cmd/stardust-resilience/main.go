// Command stardust-resilience regenerates Appendix E: the closed-form
// recovery-time model, plus a measured link-failure withdrawal on the
// event-driven fabric and the Fig 7 / Fig 12 push-vs-pull comparisons.
package main

import (
	"fmt"
	"os"

	"stardust/internal/experiments"
)

func main() {
	experiments.WriteAppendixE(os.Stdout)
	fmt.Println()
	r, err := experiments.Recovery()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experiments.WriteRecovery(os.Stdout, r)
	fmt.Println()
	experiments.WritePushPull(os.Stdout, experiments.PushPull(false))
	fmt.Println()
	experiments.WritePushPull(os.Stdout, experiments.PushPull(true))
}
