package reach

import "stardust/internal/sim"

// LinkState is the health of one link as seen by its receiver.
type LinkState int

// Link states.
const (
	LinkDownState LinkState = iota
	LinkUpState
)

// Monitor tracks one link's keepalive stream (§5.9, §5.10): a link is
// declared down when no reachability message arrives for Threshold
// intervals, and declared valid again only after Threshold consecutive
// good messages.
type Monitor struct {
	Interval  sim.Time // expected message spacing (c/f)
	Threshold int      // consecutive evidence required to flip state (th)

	state    LinkState
	lastSeen sim.Time
	goodRun  int
}

// NewMonitor returns a monitor that starts in the down state (a link must
// prove itself before use).
func NewMonitor(interval sim.Time, threshold int) *Monitor {
	if threshold < 1 {
		threshold = 1
	}
	return &Monitor{Interval: interval, Threshold: threshold, lastSeen: -1 << 62}
}

// State returns the current link state.
func (m *Monitor) State() LinkState { return m.state }

// OnMessage records a good reachability message (or a faulty
// self-declaration, which counts as bad evidence). It returns true when
// the link state flipped.
func (m *Monitor) OnMessage(now sim.Time, faulty bool) bool {
	m.lastSeen = now
	if faulty {
		m.goodRun = 0
		if m.state == LinkUpState {
			m.state = LinkDownState
			return true
		}
		return false
	}
	if m.state == LinkUpState {
		return false
	}
	m.goodRun++
	if m.goodRun >= m.Threshold {
		m.state = LinkUpState
		m.goodRun = 0
		return true
	}
	return false
}

// Tick checks for keepalive loss at the given time. It returns true when
// the link just transitioned to down.
func (m *Monitor) Tick(now sim.Time) bool {
	if m.state == LinkDownState {
		return false
	}
	if now-m.lastSeen > sim.Time(int64(m.Interval)*int64(m.Threshold)) {
		m.state = LinkDownState
		m.goodRun = 0
		return true
	}
	return false
}
