package netsim

import (
	"fmt"
	"sync"

	"stardust/internal/sched"
	"stardust/internal/sim"
)

// StardustConfig parameterizes the abstract Stardust model used in the
// §6.3 htsim comparison (Appendix G): 512B cells, 4KB credits, 3% credit
// speed-up, ingress VOQs at the source Fabric Adapter and a round-robin
// egress scheduler per destination port.
type StardustConfig struct {
	CellBytes   int     // cell size on the wire (512)
	CellHeader  int     // header bytes within each cell (8)
	CreditBytes int64   // credit quantum (4096)
	SpeedUp     float64 // credit rate / port rate (1.03)

	HostRate   Bps      // edge port rate (10G)
	TrunkRate  Bps      // aggregate uplink rate per Fabric Adapter
	LinkDelay  sim.Time // per-hop propagation
	FabricHops int      // hops across the fabric (4 in a 2-tier Clos)
	CtrlDelay  sim.Time // control-message (request/credit) one-way delay

	VOQBytes   int // per-VOQ ingress buffer (§3.3: MBs to GBs at the FA)
	NICBytes   int // host NIC queue into the source FA
	TrunkBytes int // trunk queue capacity
	PortBytes  int // egress port queue capacity
	// Egress watermarks (§4.1): the port's credit scheduler pauses above
	// PauseBytes and resumes below ResumeBytes, keeping the egress buffer
	// just full enough to ride through scheduling jitter.
	PauseBytes  int
	ResumeBytes int
	// ReasmTimeout is the destination adapter's reassembly timer (§4.1): a
	// packet whose cells stall the in-order delivery stream longer than
	// this (a cell lost to a failed link) is discarded so the stream can
	// resume. 0 disables discarding (safe only in loss-free fabrics).
	ReasmTimeout sim.Time
}

// DefaultStardust returns the Appendix G configuration for a fat-tree with
// uplinks aggregate uplink capacity per edge device.
func DefaultStardust(hostRate Bps, uplinks int, linkDelay sim.Time) StardustConfig {
	return StardustConfig{
		CellBytes:   512,
		CellHeader:  8,
		CreditBytes: 4096,
		SpeedUp:     1.03,
		HostRate:    hostRate,
		// The fabric runs with a small speed-up over the edge (§6.2 uses
		// 1.05), so the 3% credit speed-up cannot slowly flood the trunks.
		TrunkRate:   Bps(float64(hostRate) * float64(uplinks) * 1.05),
		LinkDelay:   linkDelay,
		FabricHops:  4,
		CtrlDelay:   2 * linkDelay,
		VOQBytes:    8 << 20, // the FA's deep ingress buffer absorbs bursts (§5.4)
		NICBytes:    2 << 20,
		TrunkBytes:  1 << 20,
		PortBytes:   100 * 9000,
		PauseBytes:  4 * 9000,
		ResumeBytes: 2 * 9000,
		// A few fabric RTTs: long enough that spraying skew never trips it,
		// short enough that a lost cell does not stall a stream visibly.
		ReasmTimeout: 500 * sim.Microsecond,
	}
}

// CellFabric is a pluggable fabric crossing for cells: a topology-faithful
// per-link transport (internal/fabric) replacing the fluid trunk+pipe
// abstraction. Inject carries one cell from the source edge device to the
// destination edge device; the fabric hands delivered cells to the
// function it was given (DeliverCell) and Releases lost ones.
type CellFabric interface {
	Inject(c *Packet, srcFA, dstFA int)
	Drops() uint64
}

// StardustNet models the Stardust data center as a transport substrate:
// host packets enter a per-flow VOQ at their source Fabric Adapter, wait
// for credits from the destination port's scheduler, and cross the fabric
// as cells sprayed over the adapter's uplinks (modelled as a fluid trunk —
// §5.3's measured near-perfect balancing). Reassembled packets continue on
// their original route, so TCP endpoints plug in unchanged.
type StardustNet struct {
	Cfg StardustConfig
	Sim *sim.Simulator

	hosts    int
	hostsPer int // hosts per edge device (ToR / Fabric Adapter)

	upTrunk   []*Queue // per edge device: into the fabric
	downTrunk []*Queue // per edge device: out of the fabric
	port      []*Queue // per host: egress port
	hostUp    []*Queue // per host: NIC into the source FA
	fabric    *Pipe
	reasmH    HandlerFunc // shared terminal handler for cells

	scheds  []*sched.PortScheduler // per destination host
	credits []creditDelivery       // per destination host (sim.Action)
	timers  []*sim.Timer
	voqs    map[voqKey]*stardustVOQ
	nextVID uint16
	fab     CellFabric // nil = fluid trunk model

	// Stats
	CellsSent      uint64
	CellsDelivered uint64 // cells that reached the destination adapter
	CreditsSent    uint64
	VOQDrops       uint64
	ReasmTimeouts  uint64 // packets discarded by the reassembly timer
}

// UseFabric routes cells through f instead of the fluid trunk model.
// Install it before creating flows and point the fabric's delivery
// callback at DeliverCell.
func (n *StardustNet) UseFabric(f CellFabric) { n.fab = f }

// DeliverCell is the destination-adapter cell sink for an external
// CellFabric.
func (n *StardustNet) DeliverCell(c *Packet) { n.reassemble(c) }

type voqKey struct {
	src, dst int // host indices
}

// NewStardustNet builds the substrate for hosts end hosts with hostsPer
// hosts per edge device.
func NewStardustNet(s *sim.Simulator, cfg StardustConfig, hosts, hostsPer int) (*StardustNet, error) {
	if hosts < 2 || hostsPer < 1 || hosts%hostsPer != 0 {
		return nil, fmt.Errorf("netsim: bad stardust sizing %d/%d", hosts, hostsPer)
	}
	if cfg.CellBytes <= cfg.CellHeader {
		return nil, fmt.Errorf("netsim: cell too small")
	}
	n := &StardustNet{
		Cfg:      cfg,
		Sim:      s,
		hosts:    hosts,
		hostsPer: hostsPer,
		fabric:   NewPipe(s, sim.Time(cfg.FabricHops)*cfg.LinkDelay),
		voqs:     make(map[voqKey]*stardustVOQ),
	}
	n.reasmH = n.reassemble
	edges := hosts / hostsPer
	for e := 0; e < edges; e++ {
		n.upTrunk = append(n.upTrunk, NewQueue(s, fmt.Sprintf("sd-up%d", e), cfg.TrunkRate, cfg.TrunkBytes, 0))
		n.downTrunk = append(n.downTrunk, NewQueue(s, fmt.Sprintf("sd-dn%d", e), cfg.TrunkRate, cfg.TrunkBytes, 0))
	}
	for h := 0; h < hosts; h++ {
		n.port = append(n.port, NewQueue(s, fmt.Sprintf("sd-port%d", h), cfg.HostRate, cfg.PortBytes, 0))
		n.hostUp = append(n.hostUp, NewQueue(s, fmt.Sprintf("sd-nic%d", h), cfg.HostRate, cfg.NICBytes, 0))
		sc := sched.New(sched.Config{
			PortRateBps:     float64(cfg.HostRate),
			CreditBytes:     cfg.CreditBytes,
			SpeedupFraction: cfg.SpeedUp - 1,
		})
		n.scheds = append(n.scheds, sc)
	}
	n.credits = make([]creditDelivery, hosts)
	// Credit generation loops, one per destination host port.
	for h := 0; h < hosts; h++ {
		h := h
		n.credits[h] = creditDelivery{net: n, dst: h}
		tmr := sim.NewTimer(s)
		n.timers = append(n.timers, tmr)
		var loop func()
		loop = func() {
			sc := n.scheds[h]
			// Egress-buffer watermarks gate credit generation (§4.1).
			if occ := n.port[h].Bytes(); occ > n.Cfg.PauseBytes {
				sc.Pause()
			} else if occ < n.Cfg.ResumeBytes {
				sc.Resume()
			}
			if c, ok := sc.NextCredit(); ok {
				n.CreditsSent++
				// Pack (source host, credit bytes) into the action arg so
				// delivering a credit does not allocate.
				arg := uint64(c.To.SrcFA)<<32 | uint64(uint32(c.Bytes))
				s.AfterAction(n.Cfg.CtrlDelay, &n.credits[h], arg)
			}
			tmr.Arm(sc.CreditInterval(), loop)
		}
		tmr.Arm(n.scheds[h].CreditInterval(), loop)
	}
	return n, nil
}

// creditDelivery delivers a granted credit to the source VOQ after the
// control-plane delay; it implements sim.Action with the source host and
// byte count packed into the arg.
type creditDelivery struct {
	net *StardustNet
	dst int
}

// Act implements sim.Action.
func (c *creditDelivery) Act(arg uint64) {
	src := int(arg >> 32)
	bytes := int64(uint32(arg))
	if v := c.net.voqs[voqKey{src: src, dst: c.dst}]; v != nil {
		v.grant(bytes)
	}
}

// edge returns the edge device of a host.
func (n *StardustNet) edge(h int) int { return h / n.hostsPer }

// Route returns the forward route for a flow src -> dst: NIC queue, VOQ
// capture, then (after reassembly) the destination port queue and a final
// propagation hop. The caller appends the receiving endpoint.
func (n *StardustNet) Route(src, dst int) []Handler {
	v := n.voq(src, dst)
	final := NewPipe(n.Sim, n.Cfg.LinkDelay)
	return []Handler{n.hostUp[src], NewPipe(n.Sim, n.Cfg.LinkDelay), v, n.port[dst], final}
}

func (n *StardustNet) voq(src, dst int) *stardustVOQ {
	k := voqKey{src, dst}
	if v, ok := n.voqs[k]; ok {
		return v
	}
	n.nextVID++
	v := &stardustVOQ{
		net: n, key: k, id: n.nextVID,
		reasmTmr: sim.NewTimer(n.Sim),
	}
	v.reasmFn = v.deliver
	// The cell route across the fabric is fixed per VOQ; build it once.
	v.cellRoute = []Handler{n.upTrunk[n.edge(src)], n.fabric, n.downTrunk[n.edge(dst)], n.reasmH}
	n.voqs[k] = v
	return v
}

// TotalDrops counts drops across all Stardust queues.
func (n *StardustNet) TotalDrops() uint64 {
	var d uint64
	for _, q := range n.upTrunk {
		d += q.Drops
	}
	for _, q := range n.downTrunk {
		d += q.Drops
	}
	for _, q := range n.port {
		d += q.Drops
	}
	for _, q := range n.hostUp {
		d += q.Drops
	}
	if n.fab != nil {
		d += n.fab.Drops()
	}
	return d + n.VOQDrops
}

// FabricDrops counts drops inside the fabric only (§5.5: must stay zero
// under credit pacing on a healthy fabric). With an external CellFabric
// installed it reports that fabric's losses instead of the fluid trunks'.
func (n *StardustNet) FabricDrops() uint64 {
	if n.fab != nil {
		return n.fab.Drops()
	}
	var d uint64
	for _, q := range n.upTrunk {
		d += q.Drops
	}
	for _, q := range n.downTrunk {
		d += q.Drops
	}
	return d
}

// stardustVOQ captures packets at the source Fabric Adapter until credits
// release them as cells (§3.3).
type stardustVOQ struct {
	net *StardustNet
	key voqKey
	id  uint16

	q         pktRing
	bytes     int64
	credit    int64
	cellRoute []Handler
	flight    ring[*reasmState] // in-flight packets, ship order (in-order delivery)
	// reasmTmr keeps the §4.1 reassembly timer armed while packets are
	// outstanding: it is the only thing that can unwedge a head-of-line
	// packet whose cells were all lost (no later completion would ever
	// call deliver otherwise).
	reasmTmr *sim.Timer
	reasmFn  func()
}

// Receive implements Handler: a packet arrives from the host NIC.
func (v *stardustVOQ) Receive(p *Packet) {
	if v.bytes+int64(p.Size) > int64(v.net.Cfg.VOQBytes) {
		v.net.VOQDrops++
		p.Release()
		return // ingress tail-drop, as a ToR would (§3.1)
	}
	v.q.push(p)
	v.bytes += int64(p.Size)
	v.refreshRequest()
	// Consume any banked credit immediately.
	if v.credit > 0 {
		v.release()
	}
}

// refreshRequest advertises the current backlog to the destination port's
// scheduler after the control-plane delay. The VOQ itself is the scheduled
// action with the backlog in the arg, so requesting does not allocate.
func (v *stardustVOQ) refreshRequest() {
	v.net.Sim.AfterAction(v.net.Cfg.CtrlDelay, v, uint64(v.bytes))
}

// Act implements sim.Action: the backlog advertisement arrives at the
// destination scheduler.
func (v *stardustVOQ) Act(backlog uint64) {
	v.net.scheds[v.key.dst].Request(sched.Requester{SrcFA: uint16(v.key.src), TC: 0}, int64(backlog))
}

func (v *stardustVOQ) grant(bytes int64) {
	v.credit += bytes
	v.release()
	v.refreshRequest()
}

// release dequeues whole packets against the credit balance and ships them
// as cells across the fabric (§3.4 packing: the batch is fragmented as one
// unit; we account the cell-header tax on each cell).
func (v *stardustVOQ) release() {
	for v.credit > 0 && v.q.len() > 0 {
		p := v.q.pop()
		v.bytes -= int64(p.Size)
		v.credit -= int64(p.Size)
		v.ship(p)
	}
	if v.q.len() == 0 && v.credit > 0 {
		v.credit = 0 // unused credit on an empty VOQ is forfeited
	}
}

// reasmState tracks one packet's cells at the destination adapter.
type reasmState struct {
	orig      *Packet
	remaining int
	voq       *stardustVOQ
	shippedAt sim.Time
	done      bool // all cells arrived, waiting for in-order delivery
	discarded bool // reassembly timer fired; late cells just drain
}

var reasmPool = sync.Pool{New: func() any { return new(reasmState) }}

func (v *stardustVOQ) ship(p *Packet) {
	n := v.net
	payload := n.Cfg.CellBytes - n.Cfg.CellHeader
	state := reasmPool.Get().(*reasmState)
	state.orig = p
	state.remaining = p.Size
	state.voq = v
	state.shippedAt = n.Sim.Now()
	state.done = false
	state.discarded = false
	v.flight.push(state)
	// An armed timer always expires at or before the current head's
	// deadline (heads ship in order), so arming only when disarmed keeps
	// exactly one outstanding event per VOQ per timeout window.
	if n.Cfg.ReasmTimeout > 0 && !v.reasmTmr.Armed() {
		v.reasmTmr.Arm(n.Cfg.ReasmTimeout, v.reasmFn)
	}
	srcFA, dstFA := n.edge(v.key.src), n.edge(v.key.dst)
	for sent := 0; sent < p.Size; sent += payload {
		chunk := payload
		if sent+chunk > p.Size {
			chunk = p.Size - sent
		}
		c := NewPacket()
		c.Size = chunk + n.Cfg.CellHeader
		c.Flow = state
		n.CellsSent++
		if n.fab != nil {
			n.fab.Inject(c, srcFA, dstFA)
			continue
		}
		c.SetRoute(v.cellRoute)
		c.SendOn()
	}
}

// reassemble runs at the destination adapter: cells tick their packet's
// outstanding byte count down; completed packets are handed to the owning
// VOQ's in-order delivery stream.
func (n *StardustNet) reassemble(c *Packet) {
	state, ok := c.Flow.(*reasmState)
	if !ok {
		c.Release() // foreign cell from a misbehaving fabric: not ours, not counted
		return
	}
	payload := c.Size - n.Cfg.CellHeader
	c.Release()
	n.CellsDelivered++
	state.remaining -= payload
	if state.remaining > 0 {
		return
	}
	if state.discarded {
		// The reassembly timer gave up on this packet and its stragglers
		// have now all drained; the state can be reused.
		reasmPool.Put(state)
		return
	}
	state.done = true
	state.voq.deliver()
}

// deliver releases completed packets in ship order (§4.1 in-order
// reassembly at the destination FA). A head-of-line packet whose cells
// were lost in the fabric would stall the stream forever, so it is
// discarded once it outlives the reassembly timer.
func (v *stardustVOQ) deliver() {
	n := v.net
	now := n.Sim.Now()
	for v.flight.len() > 0 {
		head := v.flight.peek()
		if head.done {
			v.flight.pop()
			orig := head.orig
			head.orig = nil
			reasmPool.Put(head)
			orig.SendOn()
			continue
		}
		if n.Cfg.ReasmTimeout > 0 && now-head.shippedAt > n.Cfg.ReasmTimeout {
			v.flight.pop()
			head.discarded = true
			head.orig.Release()
			head.orig = nil
			n.ReasmTimeouts++
			continue
		}
		break
	}
	// Re-arm for the blocked head's deadline so the discard fires even if
	// nothing else ever completes on this VOQ.
	if n.Cfg.ReasmTimeout > 0 && v.flight.len() > 0 && !v.reasmTmr.Armed() {
		head := v.flight.peek()
		v.reasmTmr.Arm(head.shippedAt+n.Cfg.ReasmTimeout-now+sim.Nanosecond, v.reasmFn)
	}
}
