// Sharded construction: partitioning one Clos instance's devices across
// the event loops of a parsim.Engine.
//
// Every device (FA, FE1, FE2) is owned by exactly one shard: all of its
// events — arrivals on its inbound links, drains of its outbound serial
// queues, injections — run on that shard's Simulator. A directed link
// whose endpoints live on different shards is a "cut" link: its
// serialization queue stays with the sender, and the propagation hop
// crosses through the engine's conservative-lookahead mailboxes instead
// of a local heap insertion. Because every link delivery (cut or not)
// carries the directed link's own event lane, the execution order of
// same-instant events at any device is a function of the topology alone,
// and the simulation is byte-identical for every shard count — verified
// by the invariants suite and the CI determinism matrix, not assumed.
//
// Reachability withdrawals are the one control-plane flow that crosses
// shards mid-run: an FE1 builds its reach messages one lookahead before
// the delivery instant (so the messages can traverse a mailbox) and every
// spine applies them at fail-time + ReachDelay on the FE1's reach lane —
// the same instant as solo mode, only the build happens early. Administrative link state (FailLink/RestoreLink) mutates
// devices on several shards at once and therefore runs in barrier context
// only, quantized to window boundaries — which are a function of the
// lookahead alone, hence identical at every shard count.
package fabric

import (
	"fmt"
	"sort"

	"stardust/internal/parsim"
	"stardust/internal/reach"
	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Sharding maps every device of a Clos onto a parsim shard.
type Sharding struct {
	FA  []int // shard of each Fabric Adapter
	FE1 []int // shard of each first-tier Fabric Element
	FE2 []int // shard of each spine Fabric Element
}

// AssignShards distributes the devices of c over n shards in contiguous
// index blocks, each tier independently — a deterministic function of
// (topology, n), so two runs at the same shard count always cut the same
// links.
func AssignShards(c *topo.Clos, n int) Sharding {
	block := func(count int) []int {
		out := make([]int, count)
		for i := range out {
			out[i] = i * n / count
		}
		return out
	}
	return Sharding{FA: block(c.NumFA), FE1: block(c.NumFE1), FE2: block(c.NumFE2)}
}

// NewSharded builds the fabric across the shards of eng. assign may be
// nil, in which case AssignShards over all of eng's shards is used. The
// engine's lookahead must not exceed the link delay (a cell crossing a
// cut link must arrive at least one window later) and the reach delay
// must be at least two lookaheads (build + deliver).
func NewSharded(eng *parsim.Engine, cfg Config, c *topo.Clos, assign *Sharding) (*Net, error) {
	if eng.Lookahead() > cfg.LinkDelay {
		return nil, fmt.Errorf("fabric: engine lookahead %d exceeds link delay %d", eng.Lookahead(), cfg.LinkDelay)
	}
	if cfg.ReachDelay < 2*eng.Lookahead() {
		return nil, fmt.Errorf("fabric: reach delay %d below two lookaheads (%d)", cfg.ReachDelay, 2*eng.Lookahead())
	}
	var a Sharding
	if assign != nil {
		a = *assign
	} else {
		a = AssignShards(c, eng.Shards())
	}
	if len(a.FA) != c.NumFA || len(a.FE1) != c.NumFE1 || len(a.FE2) != c.NumFE2 {
		return nil, fmt.Errorf("fabric: sharding shape (%d,%d,%d) does not match topology (%d,%d,%d)",
			len(a.FA), len(a.FE1), len(a.FE2), c.NumFA, c.NumFE1, c.NumFE2)
	}
	for _, tier := range [][]int{a.FA, a.FE1, a.FE2} {
		for _, s := range tier {
			if s < 0 || s >= eng.Shards() {
				return nil, fmt.Errorf("fabric: shard %d out of range [0,%d)", s, eng.Shards())
			}
		}
	}
	shards := make([]*shardState, eng.Shards())
	for i := range shards {
		shards[i] = &shardState{id: i, sm: eng.Shard(i).Sim()}
	}
	n, err := build(cfg, c, shards, a, eng)
	if err != nil {
		return nil, err
	}
	eng.OnBarrier(n.drainReach)
	return n, nil
}

// ShardOfFA returns the shard owning Fabric Adapter fa — the shard whose
// Simulator injection events and egress endpoints for fa must run on.
func (n *Net) ShardOfFA(fa int) int {
	if n.eng == nil {
		return 0
	}
	return n.assign.FA[fa]
}

// applyReach applies one FE1's reach messages to a spine's table — the
// cross-shard payload of a sharded re-advertisement.
type applyReach struct {
	sp   *feDev
	port int
	msgs []reach.Message
}

// Act implements sim.Action.
func (a applyReach) Act(uint64) {
	for _, m := range a.msgs {
		if err := a.sp.tbl.ApplyMessage(a.port, m); err != nil {
			panic(err)
		}
	}
}

// readvertiseSharded is the sharded counterpart of the solo readvertise
// closure: build the message set one lookahead early on the FE1's shard,
// deliver to every connected spine — local or across a mailbox — at the
// same instant on the FE1's reach lane.
func (n *Net) readvertiseSharded(fe *feDev) {
	look := n.eng.Lookahead()
	lane := n.reachLane(fe.id.Index)
	src := n.eng.Shard(fe.sh.id)
	fe.sh.sm.AtLaneFunc(fe.sh.sm.Now()+n.Cfg.ReachDelay-look, lane, func() {
		deliver := fe.sh.sm.Now() + look
		set := fe.tbl.ReachableSet()
		msgs := reach.BuildMessages(uint16(fe.id.Index), set, n.Topo.NumFA)
		for _, sl := range fe.spines {
			sp := n.fe2[sl.spine]
			// The spine-side down-link state only changes in barrier
			// context, so this cross-shard read is synchronized by the
			// window barrier and identical at every shard count.
			if !sp.down[sl.port].up {
				continue
			}
			src.To(sp.sh.id).AtLane(deliver, lane, applyReach{sp: sp, port: sl.port, msgs: msgs}, 0)
		}
		fe.sh.reach = append(fe.sh.reach, reachEvent{at: deliver, fe1: fe.id.Index, reachable: set.Count()})
	})
}

// drainReach runs at every window barrier: collect the spine-landing
// notifications whose instant has passed, sort them into the canonical
// (time, FE1) order, and hand them to OnReachUpdate. Buffering per shard
// and sorting at the quiescent barrier is what keeps the management
// plane's view consistent — and deterministic — across shards.
func (n *Net) drainReach(now sim.Time) {
	var due []reachEvent
	for _, sh := range n.shards {
		keep := sh.reach[:0]
		for _, ev := range sh.reach {
			if ev.at <= now {
				due = append(due, ev)
			} else {
				keep = append(keep, ev)
			}
		}
		sh.reach = keep
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].fe1 < due[j].fe1
	})
	if n.OnReachUpdate == nil {
		return
	}
	for _, ev := range due {
		n.OnReachUpdate(ev.fe1, ev.reachable)
	}
}
