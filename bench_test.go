// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact. Each benchmark runs a reduced
// configuration sized for continuous integration; the cmd/ tools run the
// paper-scale versions (see EXPERIMENTS.md for recorded results).
package stardust_test

import (
	"fmt"
	"io"
	"testing"

	"stardust/internal/analytic"
	"stardust/internal/device"
	"stardust/internal/experiments"
	"stardust/internal/fabric"
	"stardust/internal/fabricsim"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/queueing"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
	"stardust/internal/topo"
	"stardust/internal/workload"
)

// BenchmarkPacketPath measures the per-packet cost (time and allocations)
// of the netsim hot path: a saturated serialization queue draining into a
// propagation pipe, a second queue, and a terminal counter. With the
// packet free-list and the ring-buffer queue this path is allocation-free
// in steady state.
func BenchmarkPacketPath(b *testing.B) {
	s := sim.New()
	q1 := netsim.NewQueue(s, "q1", 100e9, 1<<20, 0)
	q2 := netsim.NewQueue(s, "q2", 100e9, 1<<20, 0)
	pipe := netsim.NewPipe(s, sim.Microsecond)
	var sink netsim.Counter
	route := []netsim.Handler{q1, pipe, q2, &sink}
	pkt := 1500
	gap := sim.Time(float64(pkt*8) / 100e9 * float64(sim.Second))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netsim.NewPacket()
		p.Size = pkt
		p.SetRoute(route)
		s.AtAction(sim.Time(i)*gap, p, 0)
		if s.Pending() > 512 {
			s.RunUntil(sim.Time(i) * gap)
		}
	}
	s.Run()
	b.StopTimer()
	if sink.Packets != uint64(b.N) {
		b.Fatalf("delivered %d of %d packets", sink.Packets, b.N)
	}
}

// BenchmarkFabricCellPath measures the per-cell cost of the
// topology-faithful fabric: source-FA spray, FE1 up/down decision, spine
// spray, egress delivery — four per-link queue+pipe hops per cell. It
// doubles as the cell-accounting leak check: every injected cell must
// leave through a counted path (delivered or dropped), or the packet pool
// is leaking.
func BenchmarkFabricCellPath(b *testing.B) {
	s := sim.New()
	cl, err := fabric.ClosFor(4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := fabric.New(s, fabric.DefaultConfig(100e9, sim.Microsecond, 1), cl)
	if err != nil {
		b.Fatal(err)
	}
	cellSz := 512
	// Pace injection at half of one FA's aggregate uplink rate, spread
	// over all 8 FAs, so no queue ever overflows.
	gap := sim.Time(float64(cellSz*8) / 100e9 * float64(sim.Second))
	inj := &fabricInjector{n: n}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arg := uint64(i%8)<<32 | uint64((i+3)%8)
		s.AtAction(sim.Time(i/8)*gap, inj, arg)
		if s.Pending() > 512 {
			s.RunUntil(sim.Time(i/8) * gap)
		}
	}
	s.Run()
	b.StopTimer()
	if n.Injected() != uint64(b.N) {
		b.Fatalf("injected %d of %d", n.Injected(), b.N)
	}
	if n.Delivered()+n.Drops() != n.Injected() {
		b.Fatalf("cell leak: %d delivered + %d dropped != %d injected",
			n.Delivered(), n.Drops(), n.Injected())
	}
	if n.Drops() != 0 {
		b.Fatalf("healthy fabric dropped %d cells", n.Drops())
	}
}

// reportEventRate attaches the kernel-throughput metric benchguard gates
// alongside ns/op: simulator events per wall-clock second divided by the
// shard count, so the number measures per-core event-kernel speed rather
// than how many loops ran. Lower is worse; the CI gate fails when the
// median drops more than the tolerance below the committed baseline.
func reportEventRate(b *testing.B, events uint64, shards int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec/float64(shards), "events/sec/core")
	}
}

// fabricInjector injects one 512B cell per scheduled event (src and dst
// packed into the action arg), keeping the benchmark loop allocation-free.
type fabricInjector struct{ n *fabric.Net }

// Act implements sim.Action.
func (f *fabricInjector) Act(arg uint64) {
	c := netsim.NewPacket()
	c.Size = 512
	f.n.Inject(c, int(arg>>32), int(uint32(arg)))
}

// BenchmarkFabricCellPathSharded measures the same per-cell fabric path
// through the parsim conservative-lookahead engine at two shards: lane-
// ordered link crossings, window barriers and cross-shard mailboxes
// included. The steady-state path must stay allocation-free just like the
// solo engine's (the window machinery amortizes to zero); benchguard
// gates both the allocs/op and median ns/op of this benchmark.
func BenchmarkFabricCellPathSharded(b *testing.B) {
	eng := parsim.New(parsim.Config{Shards: 2, Lookahead: sim.Microsecond})
	cl, err := fabric.ClosFor(4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := fabric.NewSharded(eng, fabric.DefaultConfig(100e9, sim.Microsecond, 1), cl, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Same pacing as the solo benchmark: every FA injects one 512B cell
	// per cell-serialization time, half of its two-uplink capacity.
	const numFA = 8
	gap := sim.Time(float64(512*8) / 100e9 * float64(sim.Second))
	for fa := 0; fa < numFA; fa++ {
		quota := b.N / numFA
		if fa < b.N%numFA {
			quota++
		}
		n.NewInjector(fa, gap, 512, 0, quota).Start(0)
	}
	deadline := sim.Time(b.N/numFA+2)*gap + sim.Millisecond
	b.ReportAllocs()
	ev0 := eng.Processed()
	b.ResetTimer()
	eng.RunUntilQuiet(deadline)
	b.StopTimer()
	reportEventRate(b, eng.Processed()-ev0, 2)
	if n.Injected() != uint64(b.N) {
		b.Fatalf("injected %d of %d", n.Injected(), b.N)
	}
	if n.Delivered()+n.Drops() != n.Injected() {
		b.Fatalf("cell leak: %d delivered + %d dropped != %d injected",
			n.Delivered(), n.Drops(), n.Injected())
	}
	if n.Drops() != 0 {
		b.Fatalf("healthy sharded fabric dropped %d cells", n.Drops())
	}
}

// BenchmarkFabricCellPathSShuffle measures the per-cell cost of the
// graph fabric's hot path on a Space Shuffle topology: greedy ring-space
// next-hop selection, per-cell spraying over the candidate set, and
// possible edge-device relay hops — the pluggable-topology counterpart
// of BenchmarkFabricCellPath. The steady-state path must stay
// allocation-free like the Clos one; benchguard gates both numbers.
func BenchmarkFabricCellPathSShuffle(b *testing.B) {
	s := sim.New()
	g, err := topo.ByName("sshuffle", 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := fabric.NewFabric(s, fabric.DefaultConfig(100e9, sim.Microsecond, 1), g)
	if err != nil {
		b.Fatal(err)
	}
	// Rotate destinations at a conservative pace — one cell-serialization
	// time per cell per edge device keeps every relay queue shallow.
	numFA := g.NumEdge()
	gap := sim.Time(float64(512*8)/100e9*float64(sim.Second)) * 4
	for fa := 0; fa < numFA; fa++ {
		quota := b.N / numFA
		if fa < b.N%numFA {
			quota++
		}
		n.NewInjector(fa, gap, 512, 0, quota).Start(sim.Time(fa) * gap / sim.Time(numFA))
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	if n.Injected() != uint64(b.N) {
		b.Fatalf("injected %d of %d", n.Injected(), b.N)
	}
	if n.Delivered()+n.Drops() != n.Injected() {
		b.Fatalf("cell leak: %d delivered + %d dropped != %d injected",
			n.Delivered(), n.Drops(), n.Injected())
	}
	if n.Drops() != 0 {
		b.Fatalf("lightly loaded graph fabric dropped %d cells", n.Drops())
	}
}

// BenchmarkTransportPathSharded measures the per-packet cost of the full
// sharded transport pipeline at two shards: NIC queue, VOQ capture,
// cross-shard request/grant on the pair lanes, cell fragmentation, the
// per-link fabric crossing, in-order reassembly and egress. The
// steady-state VOQ/credit hot path must stay allocation-free — packets,
// cells and reassembly states are pooled and every control message reuses
// a pre-bound action; benchguard gates the allocs/op.
func BenchmarkTransportPathSharded(b *testing.B) {
	eng := parsim.New(parsim.Config{Shards: 2, Lookahead: sim.Microsecond})
	cl, err := fabric.ClosFor(4)
	if err != nil {
		b.Fatal(err)
	}
	fab, err := fabric.NewSharded(eng, fabric.DefaultConfig(netsim.Bps(10e9*1.05), sim.Microsecond, 1), cl, nil)
	if err != nil {
		b.Fatal(err)
	}
	const hostsPer = 2
	hosts := cl.NumFA * hostsPer
	sdc := netsim.DefaultStardust(10e9, cl.FAUplinks, sim.Microsecond)
	net, err := netsim.NewShardedStardustNet(fab, sdc, hosts, hostsPer)
	if err != nil {
		b.Fatal(err)
	}
	const pktSize = 4096
	// Half the host rate: 4KB every two serialization times.
	gap := 2 * sim.Time(float64(pktSize*8)/10e9*float64(sim.Second))
	sinks := make([]*netsim.Counter, hosts)
	injs := make([]*transportInjector, hosts)
	for h := 0; h < hosts; h++ {
		dst := (h + 3) % hosts
		sinks[h] = &netsim.Counter{}
		injs[h] = &transportInjector{
			sm:    net.HostSim(h),
			route: append(net.Route(h, dst), sinks[h]),
			gap:   gap,
			size:  pktSize,
		}
	}
	run := func(quota int, horizon sim.Time) {
		for h, j := range injs {
			j.quota = quota
			j.sm.AtAction(eng.Now()+sim.Time(h)*gap/sim.Time(hosts), j, 0)
		}
		eng.Run(horizon)
	}
	delivered := func() uint64 {
		var d uint64
		for _, s := range sinks {
			d += s.Packets
		}
		return d
	}
	// Warm the pools, rings, mailboxes and scheduler state before
	// measuring, so one-time growth does not count against the hot path.
	run(32, eng.Now()+sim.Time(40)*gap+sim.Millisecond)
	warm := delivered()
	if warm == 0 {
		b.Fatal("warmup delivered nothing")
	}

	quota := b.N / hosts
	extra := b.N % hosts
	b.ReportAllocs()
	ev0 := eng.Processed()
	b.ResetTimer()
	for h, j := range injs {
		q := quota
		if h < extra {
			q++
		}
		j.quota = q
		if q > 0 {
			j.sm.AtAction(eng.Now()+sim.Time(h)*gap/sim.Time(hosts), j, 0)
		}
	}
	deadline := eng.Now() + sim.Time(quota+2)*gap + sim.Millisecond
	eng.Run(deadline)
	for tries := 0; delivered()-warm < uint64(b.N) && tries < 50; tries++ {
		eng.Run(eng.Now() + sim.Millisecond)
	}
	b.StopTimer()
	reportEventRate(b, eng.Processed()-ev0, 2)
	if got := delivered() - warm; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d packets (voq drops %d, fabric drops %d, timeouts %d)",
			got, b.N, net.VOQDrops(), net.FabricDrops(), net.ReasmTimeouts())
	}
	if net.TotalDrops() != 0 {
		b.Fatalf("healthy sharded transport dropped %d", net.TotalDrops())
	}
}

// transportInjector feeds one host's flow with pooled packets, itself the
// scheduled action so the benchmark loop allocates nothing.
type transportInjector struct {
	sm    *sim.Simulator
	route []netsim.Handler
	gap   sim.Time
	size  int
	quota int
}

// Act implements sim.Action.
func (j *transportInjector) Act(uint64) {
	if j.quota <= 0 {
		return
	}
	j.quota--
	p := netsim.NewPacket()
	p.Size = j.size
	p.SetRoute(j.route)
	p.SendOn()
	if j.quota > 0 {
		j.sm.AfterAction(j.gap, j, 0)
	}
}

// BenchmarkTelemetryExport measures the per-scrape cost of the telemetry
// hot path: one Capture reads every link direction of a loaded K=4
// fabric into the recorder's reused snapshot, delta-encodes the window
// into the STREC1 stream, and runs the event emitter. The recorder and
// writer reuse all scratch buffers, so steady-state export must stay
// allocation-free — a scrape that allocates would perturb the very
// simulation it observes; benchguard gates the allocs/op.
func BenchmarkTelemetryExport(b *testing.B) {
	s := sim.New()
	cl, err := fabric.ClosFor(4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := fabric.New(s, fabric.DefaultConfig(10e9, sim.Microsecond, 1), cl)
	if err != nil {
		b.Fatal(err)
	}
	// Put real traffic on the fabric so every window encodes nonzero
	// per-direction deltas (the worst case for the varint encoder).
	for i := 0; i < 4096; i++ {
		i := i
		s.At(sim.Time(i/8)*2*sim.Microsecond, func() {
			c := netsim.NewPacket()
			c.Size = 512
			n.Inject(c, i%8, (i+3)%8)
		})
	}
	s.Run()
	w, err := telemetry.NewWriter(io.Discard, telemetry.StreamHeader{
		Dirs: 2 * n.NumLinks(), K: 4, ScrapePs: sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := telemetry.NewRecorder(w, n, nil, sim.Microsecond)
	// Warm the snapshot and encode buffers: first captures grow them once.
	for i := 0; i < 3; i++ {
		rec.Capture(sim.Time(i+1) * sim.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Capture(sim.Time(i+4) * sim.Microsecond)
	}
	b.StopTimer()
	if rec.Err() != nil {
		b.Fatal(rec.Err())
	}
	if st := rec.Stats(); st.Windows != uint64(b.N)+3 {
		b.Fatalf("captured %d windows, want %d", st.Windows, b.N+3)
	}
}

// BenchmarkFabricFailurePath exercises the failure machinery under load
// and asserts the same no-leak invariant when links die mid-traffic (the
// Release() audit for dropped and failed-link cells).
func BenchmarkFabricFailurePath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		cl, err := fabric.ClosFor(4)
		if err != nil {
			b.Fatal(err)
		}
		n, err := fabric.New(s, fabric.DefaultConfig(10e9, sim.Microsecond, 1), cl)
		if err != nil {
			b.Fatal(err)
		}
		const cells = 2000
		for j := 0; j < cells; j++ {
			j := j
			s.At(sim.Time(j/8)*2*sim.Microsecond, func() {
				c := netsim.NewPacket()
				c.Size = 512
				n.Inject(c, j%8, (j+3)%8)
			})
		}
		s.At(100*sim.Microsecond, func() { n.FailLink(0); n.FailLink(17) })
		s.Run()
		if n.Delivered()+n.Drops() != n.Injected() {
			b.Fatalf("cell leak under failure: %d delivered + %d dropped != %d injected",
				n.Delivered(), n.Drops(), n.Injected())
		}
	}
}

// BenchmarkFullFabricPermutation runs the Fig 10(a) permutation for the
// Stardust substrate over the per-link fabric (reduced fat-tree) — the
// topology-faithful counterpart of BenchmarkFig10aPermutation.
func BenchmarkFullFabricPermutation(b *testing.B) {
	cfg := experiments.QuickHtsim()
	cfg.Duration = 5 * sim.Millisecond
	cfg.Warmup = 2 * sim.Millisecond
	cfg.FullFabric = true
	for i := 0; i < b.N; i++ {
		r, err := experiments.Permutation(cfg, experiments.ProtoStardust)
		if err != nil {
			b.Fatal(err)
		}
		if r.MeanUtilPct < 50 {
			b.Fatalf("utilization collapsed: %v", r.MeanUtilPct)
		}
		if r.FabricDrops != 0 {
			b.Fatalf("fabric dropped %d cells", r.FabricDrops)
		}
	}
}

// BenchmarkFig2Scaling evaluates the Fig 2 scalability series: end hosts
// vs tiers, and device/link counts for networks up to one million hosts.
func BenchmarkFig2Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range topo.Fig2Devices {
			for n := 1; n <= 4; n++ {
				_ = topo.MaxHosts(dev, n)
			}
			for _, h := range []int{1e4, 1e5, 1e6} {
				p := topo.Plan(dev, h)
				if p.Devices <= 0 || p.SerialLinks <= 0 {
					b.Fatal("degenerate plan")
				}
			}
		}
	}
}

// BenchmarkTable2Elements evaluates the Table 2 element-count rows.
func BenchmarkTable2Elements(b *testing.B) {
	p := topo.Params{K: 32, T: 22, L: 8}
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 4; n++ {
			ec := topo.Table2(p, n)
			if ec.MaxToRs <= 0 {
				b.Fatal("bad row")
			}
		}
	}
}

// BenchmarkFig3Parallelism sweeps the required-parallelism curves.
func BenchmarkFig3Parallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := analytic.Fig3(analytic.DefaultSwitch, nil)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig7PushPull runs the push-vs-pull fabric comparison.
func BenchmarkFig7PushPull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PushPull(false)
		if r.StardustB < 0.9 {
			b.Fatalf("pull fabric broke: %v", r.StardustB)
		}
	}
}

// BenchmarkFig8aPacking evaluates the four NetFPGA designs across the
// packet-size sweep.
func BenchmarkFig8aPacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := device.Fig8a(150e6, nil)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig8bTraces evaluates the production-trace mixes.
func BenchmarkFig8bTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tr := range workload.Traces {
			sizes, weights := workload.PacketMix(tr)
			th := device.NetFPGA(device.Packed, 150e6).MixThroughput(sizes, weights)
			if th <= 0 {
				b.Fatal("no throughput")
			}
		}
	}
}

// BenchmarkAristaSystem runs a short §6.1.2 single-tier line-rate and
// latency measurement.
func BenchmarkAristaSystem(b *testing.B) {
	cfg := experiments.ScaledArista()
	cfg.Duration = 50 * sim.Microsecond
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Arista(cfg, []int{384})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].LineRatePct < 90 {
			b.Fatalf("384B below line rate: %v", rows[0].LineRatePct)
		}
	}
}

// BenchmarkFig9Fabric runs the two-tier cell fabric at 80% load
// (reduced scale).
func BenchmarkFig9Fabric(b *testing.B) {
	cfg := fabricsim.Scaled(0.8, 8)
	cfg.Slots = 1000
	cfg.WarmupSlots = 200
	for i := 0; i < b.N; i++ {
		res, err := fabricsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.CellsDropped != 0 {
			b.Fatal("fabric dropped")
		}
	}
}

// BenchmarkMD1Model computes the §4.2.1 M/D/1 queue distributions.
func BenchmarkMD1Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, rho := range []float64{0.66, 0.8, 0.92, 0.95} {
			m, err := queueing.NewMD1(rho)
			if err != nil {
				b.Fatal(err)
			}
			ccdf := m.QueueCCDF(80)
			if ccdf[0] < 0.99 {
				b.Fatal("bad CCDF")
			}
		}
	}
}

// BenchmarkFig10aPermutation runs the permutation-throughput experiment
// for the Stardust substrate (reduced fat-tree).
func BenchmarkFig10aPermutation(b *testing.B) {
	cfg := experiments.QuickHtsim()
	cfg.Duration = 5 * sim.Millisecond
	cfg.Warmup = 2 * sim.Millisecond
	for i := 0; i < b.N; i++ {
		r, err := experiments.Permutation(cfg, experiments.ProtoStardust)
		if err != nil {
			b.Fatal(err)
		}
		if r.MeanUtilPct < 50 {
			b.Fatalf("utilization collapsed: %v", r.MeanUtilPct)
		}
	}
}

// BenchmarkFig10bFCT runs the Web-workload FCT experiment under
// background load.
func BenchmarkFig10bFCT(b *testing.B) {
	cfg := experiments.QuickHtsim()
	cfg.Duration = 5 * sim.Millisecond
	cfg.Warmup = 2 * sim.Millisecond
	for i := 0; i < b.N; i++ {
		r, err := experiments.FCT(cfg, experiments.ProtoStardust, 10)
		if err != nil {
			b.Fatal(err)
		}
		if r.Ms.N() == 0 {
			b.Fatal("no measured flows")
		}
	}
}

// BenchmarkFig10cIncast runs one incast point for the Stardust substrate.
func BenchmarkFig10cIncast(b *testing.B) {
	cfg := experiments.QuickHtsim()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Incast(cfg, experiments.ProtoStardust, 8, 450_000)
		if err != nil {
			b.Fatal(err)
		}
		if r.LastMs <= 0 {
			b.Fatal("no completion")
		}
	}
}

// BenchmarkFig10dArea evaluates the silicon area model.
func BenchmarkFig10dArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		got := analytic.DefaultAreaBreakdown.RelativeAreaPerTbps(analytic.PaperAreaRatios)
		if got <= 0 {
			b.Fatal("bad area")
		}
	}
}

// BenchmarkFig11Cost evaluates the relative-cost curves.
func BenchmarkFig11Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := analytic.Fig11a(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig11Power evaluates the relative-power curves.
func BenchmarkFig11Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := analytic.Fig11b(nil)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAppEResilience evaluates the recovery-time model and formula.
func BenchmarkAppEResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := analytic.DefaultResilience
		if p.RecoveryTime() <= 0 || p.BandwidthOverhead() <= 0 {
			b.Fatal("bad model")
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationPacking compares cell counts with packing on and off
// for small-packet traffic (§3.4).
func BenchmarkAblationPacking(b *testing.B) {
	for _, packing := range []bool{true, false} {
		name := "off"
		if packing {
			name = "on"
		}
		b.Run("packing="+name, func(b *testing.B) {
			sw := device.NetFPGA(device.Packed, 150e6)
			if !packing {
				sw = device.NetFPGA(device.Cells, 150e6)
			}
			var sum float64
			for i := 0; i < b.N; i++ {
				for s := 64; s <= 1518; s += 16 {
					sum += sw.Throughput(s)
				}
			}
			_ = sum
		})
	}
}

// BenchmarkAblationCreditSize sweeps the credit quantum (§4.1's
// memory-vs-fairness trade-off) on the incast experiment: smaller credits
// improve fairness (first-vs-last spread) at a higher scheduling rate.
func BenchmarkAblationCreditSize(b *testing.B) {
	for _, credit := range []int64{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("credit=%dB", credit), func(b *testing.B) {
			cfg := experiments.QuickHtsim()
			cfg.StardustCredit = credit
			for i := 0; i < b.N; i++ {
				r, err := experiments.Incast(cfg, experiments.ProtoStardust, 8, 200_000)
				if err != nil {
					b.Fatal(err)
				}
				if r.LastMs <= 0 {
					b.Fatal("incast incomplete")
				}
			}
		})
	}
}

// BenchmarkAblationFCI compares the over-subscribed fabric with and
// without FCI (Fig 9's 1.2 curve vs an unprotected fabric).
func BenchmarkAblationFCI(b *testing.B) {
	for _, fci := range []bool{true, false} {
		name := "off"
		if fci {
			name = "on"
		}
		b.Run("fci="+name, func(b *testing.B) {
			cfg := fabricsim.Scaled(1.2, 8)
			cfg.FCI = fci
			cfg.Slots = 1500
			cfg.WarmupSlots = 300
			for i := 0; i < b.N; i++ {
				res, err := fabricsim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if fci && float64(res.CellsDropped) > 0.05*float64(res.CellsOffered) {
					b.Fatal("FCI failed to protect the fabric")
				}
			}
		})
	}
}

// BenchmarkAblationLinkBundling compares device counts for identical
// aggregate bandwidth at bundle widths 1 and 8 (§2.2).
func BenchmarkAblationLinkBundling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bundled := topo.Plan(topo.FT400Gx32, 100000)
		discrete := topo.Plan(topo.Stardust50G, 100000)
		if discrete.Devices >= bundled.Devices {
			b.Fatal("bundling ablation inverted")
		}
	}
}

// BenchmarkAblationCreditSpeedup sweeps the credit speed-up ratio (§4.1
// sets it "slightly above the egress port bandwidth", §6.2 uses ~1.05):
// too little starves the egress buffer, too much leans on the FCI loop.
func BenchmarkAblationCreditSpeedup(b *testing.B) {
	for _, su := range []float64{1.0, 1.03, 1.08} {
		b.Run(fmt.Sprintf("speedup=%.2f", su), func(b *testing.B) {
			cfg := experiments.QuickHtsim()
			cfg.Duration = 5 * sim.Millisecond
			cfg.Warmup = 2 * sim.Millisecond
			cfg.StardustSpeedup = su
			for i := 0; i < b.N; i++ {
				r, err := experiments.Permutation(cfg, experiments.ProtoStardust)
				if err != nil {
					b.Fatal(err)
				}
				if r.MeanUtilPct < 40 {
					b.Fatalf("speedup %.2f collapsed: %.1f%%", su, r.MeanUtilPct)
				}
			}
		})
	}
}
