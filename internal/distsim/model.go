// Package distsim runs one sharded fabric simulation across multiple OS
// processes over TCP, preserving the repo's byte-identical-digest
// guarantee: the same seed produces the same bytes whether the shards are
// goroutines in one process or spread over remote peers.
//
// The design is a replicated deterministic model. Go closures cannot
// cross a process boundary, so instead of shipping state, every process —
// the coordinator and each peer — builds the identical fabric model from
// a compact Spec and executes only the shards it owns. Unowned shards'
// event heaps accumulate dead build-time events (harmless: never run) and
// their clocks advance in lock-step via sim.Simulator.SkipTo, so
// barrier-context code reading Now() behaves identically on every
// replica. Barrier controls (link fail/heal schedules) run identically on
// every replica; only the mailbox messages that leave a process's owned
// shard set cross the wire, batched into one frame per peer per window.
//
// The coordinator is a devolved controller in the paper's sense: it owns
// no shards, relays mail between peers in a star, drives the lock-step
// window loop, and aggregates counters and the digest at the end. Its own
// replica tracks the control schedule and administrative state, so it can
// report control-replicated quantities (dead FAs) itself.
package distsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
	"stardust/internal/topo"
	"stardust/internal/workload"
)

// Spec is the complete, JSON-serializable recipe for one fabric
// simulation: every process that builds a Model from an identical Spec
// holds an identical replica. It mirrors the parameters of the
// fabric/parscale and fabric/parheal scenarios.
type Spec struct {
	K int `json:"k"`
	// Topo selects the topology family sized by K ("clos", "sshuffle",
	// "star" — see topo.ByName). Empty means clos, keeping older specs
	// (and recorded streams) valid.
	Topo   string   `json:"topo,omitempty"`
	Seed   int64    `json:"seed"`
	Shards int      `json:"shards"`
	Dur    sim.Time `json:"dur"`
	Load   float64  `json:"load"`
	// Pattern selects the traffic matrix: "" or "rotate" (each edge
	// cycles through every other edge — all-to-all over time),
	// "permutation" (a seed-chosen fixed one-to-one matrix), "incast"
	// (every edge sends to edge 0). Like every Spec field it is part of
	// the replica recipe and the model hash.
	Pattern   string   `json:"pattern,omitempty"`
	CellBytes int      `json:"cell"`
	Hotspot   float64  `json:"hotspot"`
	FailN     int      `json:"failN"`
	FailAt    sim.Time `json:"failAt"`
	HealAt    sim.Time `json:"healAt"`
	// Telem, when positive, turns on telemetry export: one STREC1 window
	// per Telem of simulated time (rounded up to whole lookahead windows
	// so scrape instants land exactly on barriers).
	Telem sim.Time `json:"telem,omitempty"`
	// FailLinks names specific topology links to fail at FailAt (and heal
	// at HealAt when HealAt > FailAt) — the replay what-if knob, as
	// opposed to FailN's seed-random chaos.
	FailLinks []int `json:"failLinks,omitempty"`
}

// telemEvery returns the effective scrape period: Telem rounded up to a
// whole number of lookahead windows (0 when telemetry is off). Scrape
// instants must land exactly on barriers so every shard count and
// process placement captures identical state.
func (s Spec) telemEvery(look sim.Time) sim.Time {
	if s.Telem <= 0 {
		return 0
	}
	return (s.Telem + look - 1) / look * look
}

// CellSink counts delivered cells for one destination FA. Installed with
// SetEgress it runs pinned to the FA's shard: no locking, and in a
// distributed run only the FA's owner accumulates real counts.
type CellSink struct {
	Cells uint64
	Bytes uint64
}

// Receive implements netsim.Handler.
func (s *CellSink) Receive(c *netsim.Packet) {
	s.Cells++
	s.Bytes += uint64(c.Size)
	c.Release()
}

// Model is one process's replica of the simulation: the sharded fabric,
// its engine, the per-edge delivery sinks, and the run horizon.
type Model struct {
	Spec    Spec
	Graph   topo.Graph
	Eng     *parsim.Engine
	Net     fabric.Fabric
	Sinks   []*CellSink
	Horizon sim.Time
	Drain   sim.Time
}

// NewModel builds the replica deterministically from spec: same spec,
// same replica, on every process. The construction order (seed
// consumption, injector scheduling, control registration) is part of the
// determinism contract — change it and remote digests diverge from local
// ones.
func NewModel(spec Spec) (*Model, error) {
	graph, err := topo.ByName(spec.Topo, spec.K)
	if err != nil {
		return nil, err
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: shards, Lookahead: look})
	cfg := fabric.DefaultConfig(10e9, look, spec.Seed)
	n, err := fabric.NewShardedFabric(eng, cfg, graph)
	if err != nil {
		return nil, err
	}
	numFA := graph.NumEdge()
	sinks := make([]*CellSink, numFA)
	for fa := range sinks {
		sinks[fa] = &CellSink{}
		n.SetEgress(fa, sinks[fa])
	}
	// Offered load scales with each edge device's own uplink count (every
	// FA has FAUplinks on a Clos; ring-space and server-centric graphs
	// vary per device), so Load=1.0 saturates every edge everywhere.
	uplinks := topo.EdgeUplinkDirs(graph)
	gapOf := func(fa int) sim.Time {
		perFA := spec.Load * float64(len(uplinks[fa])) * float64(cfg.LinkRate)
		g := sim.Time(float64(spec.CellBytes*8) / perFA * float64(sim.Second))
		if g < sim.Nanosecond {
			g = sim.Nanosecond
		}
		return g
	}
	hotFAs := 0
	if spec.Hotspot > 1 {
		hotFAs = (numFA + 3) / 4
	}
	var perm []int
	switch spec.Pattern {
	case "", "rotate", "alltoall":
		// The default rotation: every edge cycles through every other edge.
	case "permutation":
		perm = workload.Permutation(rand.New(rand.NewSource(spec.Seed^0x9e3779b9)), numFA)
	case "incast":
		// Everyone converges on edge 0; edge 0 itself stays silent.
	default:
		return nil, fmt.Errorf("distsim: unknown traffic pattern %q (want rotate, permutation, incast or alltoall)", spec.Pattern)
	}
	for fa := 0; fa < numFA; fa++ {
		gap := gapOf(fa)
		g := gap
		if fa < hotFAs {
			g = sim.Time(float64(gap) / spec.Hotspot)
			if g < sim.Nanosecond {
				g = sim.Nanosecond
			}
		}
		j := n.NewInjector(fa, g, spec.CellBytes, spec.Dur, -1)
		switch {
		case perm != nil:
			if perm[fa] == fa {
				continue
			}
			j.FixDst(perm[fa])
		case spec.Pattern == "incast":
			if fa == 0 {
				continue
			}
			j.FixDst(0)
		}
		j.Start(sim.Time(fa) * gap / sim.Time(numFA))
	}
	if spec.FailN > 0 {
		rng := rand.New(rand.NewSource(spec.Seed ^ 0xfa11))
		for i := 0; i < spec.FailN; i++ {
			lk := rng.Intn(n.NumLinks())
			eng.At(spec.FailAt, func() { n.FailLink(lk) })
			eng.At(spec.HealAt, func() { n.RestoreLink(lk) })
		}
	}
	for _, lk := range spec.FailLinks {
		if lk < 0 || lk >= n.NumLinks() {
			return nil, fmt.Errorf("distsim: fail-link %d out of range (fabric has %d links)", lk, n.NumLinks())
		}
		lk := lk
		eng.At(spec.FailAt, func() { n.FailLink(lk) })
		if spec.HealAt > spec.FailAt {
			eng.At(spec.HealAt, func() { n.RestoreLink(lk) })
		}
	}
	// Drain past the last scheduled action: a heal scheduled beyond the
	// horizon would otherwise silently never run.
	horizon := spec.Dur
	if spec.FailAt > horizon {
		horizon = spec.FailAt
	}
	if spec.HealAt > horizon {
		horizon = spec.HealAt
	}
	drain := 4 * cfg.ReachDelay
	_, isClos := graph.(*topo.Clos)
	if !isClos || spec.Hotspot > 1 || spec.Pattern == "permutation" || spec.Pattern == "incast" {
		// A hotspot overloads its FAs' uplink queues, the fixed matrices
		// concentrate load the same way (incast on the victim's downlink,
		// permutation on relay links), and the irregular graphs carry
		// transit traffic over shared relay links under any matrix — so
		// cells keep draining well past the injection stop: allow every
		// queue on a four-hop path to empty completely at line rate.
		drain += 8 * sim.Time(float64(cfg.LinkBytes*8)/float64(cfg.LinkRate)*float64(sim.Second))
	}
	return &Model{
		Spec:    spec,
		Graph:   graph,
		Eng:     eng,
		Net:     n,
		Sinks:   sinks,
		Horizon: horizon,
		Drain:   drain,
	}, nil
}

// Outcome is the deterministic result of one run — a pure function of the
// Spec, identical however the shards were placed.
type Outcome struct {
	Injected    uint64
	Delivered   uint64
	Drops       uint64
	Events      uint64
	Unreachable int
	Digest      uint64
	ShardEvents []uint64
}

// foldDigest computes the canonical fabric digest: per-FA sink counters
// followed by both directions of every topology link's forwarding
// counters, each folded little-endian into FNV-64a. dirs[d] is
// {FwdBytes, FwdCells, Drops} of directed link d.
func foldDigest(sinkCells, sinkBytes []uint64, dirs [][3]uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}
	for i := range sinkCells {
		w(sinkCells[i])
		w(sinkBytes[i])
	}
	for _, d := range dirs {
		w(d[0])
		w(d[1])
		w(d[2])
	}
	return h.Sum64()
}

// gather snapshots the digest inputs from this replica. Quiescent /
// barrier context only; in a distributed run each index is only valid on
// its owner.
func (m *Model) gather() (sinkCells, sinkBytes []uint64, dirs [][3]uint64) {
	numFA := m.Graph.NumEdge()
	sinkCells = make([]uint64, numFA)
	sinkBytes = make([]uint64, numFA)
	for fa, s := range m.Sinks {
		sinkCells[fa] = s.Cells
		sinkBytes[fa] = s.Bytes
	}
	dirs = make([][3]uint64, 2*m.Net.NumLinks())
	for d := range dirs {
		b, c, dr := m.Net.DirCounters(d)
		dirs[d] = [3]uint64{b, c, dr}
	}
	return sinkCells, sinkBytes, dirs
}

// RunLocal executes the whole model in this process (the classic
// goroutine-sharded path) and returns the canonical outcome.
func (m *Model) RunLocal() (Outcome, error) {
	m.Eng.RunUntilQuiet(m.Horizon + m.Drain)
	if !m.Eng.Quiet() {
		return Outcome{}, fmt.Errorf("fabric did not drain: work still pending past t=%d (%d heap events)",
			m.Horizon+m.Drain, m.Eng.Pending())
	}
	sinkCells, sinkBytes, dirs := m.gather()
	return Outcome{
		Injected:    m.Net.Injected(),
		Delivered:   m.Net.Delivered(),
		Drops:       m.Net.Drops(),
		Events:      m.Eng.Processed(),
		Unreachable: m.Net.UnreachablePairs(),
		Digest:      foldDigest(sinkCells, sinkBytes, dirs),
		ShardEvents: m.Net.ShardEvents(),
	}, nil
}

// OwnersFor partitions spec.Shards shards over npeers peers in contiguous
// blocks — the same deterministic rule fabric.AssignShards uses for
// devices over shards, so two runs with the same (spec, npeers) always
// cut identically.
func OwnersFor(shards, npeers int) []int {
	owners := make([]int, shards)
	for s := range owners {
		owners[s] = s * npeers / shards
	}
	return owners
}

// modelHash fingerprints everything the peers must agree on before the
// first window: the spec, the partition map, and the replica's derived
// topology — the canonical topology spec string plus the graph and lane
// dimensions, so two peers that sized different graphs from the same
// flags fail the READY handshake instead of diverging digests half an
// hour into a run.
func modelHash(spec Spec, owners []int, m *Model) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v/%v/%s/%d/%d/%d", spec, owners, m.Graph.Spec(), m.Graph.NumNodes(), m.Graph.NumEdge(), m.Net.Lanes())
	return h.Sum64()
}
