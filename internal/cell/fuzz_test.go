package cell

import (
	"bytes"
	"testing"
)

// FuzzCellHeader fuzzes the wire codec round trips: header decode/encode,
// the framed stream packer, and the stream-to-cells fragmentation. No
// input may panic; every successfully decoded value must survive a
// re-encode byte-for-byte.
func FuzzCellHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x12, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03, 0x1f})
	f.Add([]byte("go test fuzz corpus seed payload: stardust cells"))
	f.Add(bytes.Repeat([]byte{0xa5}, 600))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Header round trip: any 8 decodable bytes re-encode identically.
		if h, err := Decode(b); err == nil {
			var buf [HeaderSize]byte
			h.Encode(buf[:])
			h2, err := Decode(buf[:])
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if h2 != h {
				t.Fatalf("header round trip: %+v -> %+v", h, h2)
			}
		} else if len(b) >= HeaderSize {
			t.Fatalf("%d-byte header rejected: %v", len(b), err)
		}

		// Packet framing round trip: a packet survives the framed stream.
		stream := PackStream([][]byte{b, {}, b})
		pkts, err := UnpackStream(stream)
		if err != nil {
			t.Fatalf("packed stream does not unpack: %v", err)
		}
		if len(pkts) != 3 || !bytes.Equal(pkts[0], b) || len(pkts[1]) != 0 || !bytes.Equal(pkts[2], b) {
			t.Fatal("framing round trip lost packet boundaries")
		}

		// Fragmentation round trip: chop the input into cells and rebuild.
		if len(b) == 0 {
			return
		}
		const cellSize = DefaultCellSize
		cells, err := EncodeCells(1, 2, 3, 100, b, cellSize)
		if err != nil {
			t.Fatalf("EncodeCells: %v", err)
		}
		rebuilt, hdrs, err := DecodeCells(cells)
		if err != nil {
			t.Fatalf("DecodeCells: %v", err)
		}
		if !bytes.Equal(rebuilt, b) {
			t.Fatalf("stream round trip: %d bytes in, %d out", len(b), len(rebuilt))
		}
		for i, h := range hdrs {
			if h.Seq != uint16(100+i) {
				t.Fatalf("cell %d carries seq %d, want %d", i, h.Seq, 100+i)
			}
			if h.Src != 1 || h.Dst != 2 || h.TC != 3 {
				t.Fatalf("cell %d header corrupted: %+v", i, h)
			}
			if i < len(hdrs)-1 && h.PayloadBytes() != cellSize-HeaderSize {
				t.Fatalf("non-final cell %d holds %d bytes, want full %d", i, h.PayloadBytes(), cellSize-HeaderSize)
			}
		}
	})
}
