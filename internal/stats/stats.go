// Package stats provides the small statistics toolkit used throughout the
// Stardust reproduction: streaming moments, fixed-bin histograms, empirical
// CDFs and discrete distributions for workload generation.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	bins   []int64
	n      int64
	sum    float64
}

// NewHistogram creates a histogram with nbins equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: NewHistogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
	h.sum += x
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the mean of the raw observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int64 {
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + (float64(i)+0.5)*w
}

// PMF returns the fraction of observations in each bin.
func (h *Histogram) PMF() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, c := range h.bins {
		out[i] = float64(c) / float64(h.n)
	}
	return out
}

// Quantile returns an approximate q-quantile (0<=q<=1) using bin midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum > target {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.bins) - 1)
}

// WriteTSV dumps "bin-center<TAB>probability" rows for plotting.
func (h *Histogram) WriteTSV(w io.Writer) error {
	for i, p := range h.PMF() {
		if _, err := fmt.Fprintf(w, "%g\t%g\n", h.BinCenter(i), p); err != nil {
			return err
		}
	}
	return nil
}

// CCDF returns, for each bin i, the probability of an observation falling in
// bin i or any later bin (a survival function over bins). This is the form
// used by Fig 9(right) of the paper.
func (h *Histogram) CCDF() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	var cum int64
	for i := len(h.bins) - 1; i >= 0; i-- {
		cum += h.bins[i]
		out[i] = float64(cum) / float64(h.n)
	}
	return out
}

// Sample is an exact collection of observations supporting quantiles and
// CDF export. Use it when the cardinality is modest (e.g. per-flow FCTs).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x); s.sorted = false }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the exact q-quantile by nearest-rank.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := int(q * float64(len(s.xs)))
	if i >= len(s.xs) {
		i = len(s.xs) - 1
	}
	if i < 0 {
		i = 0
	}
	return s.xs[i]
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Sorted returns the observations in ascending order (shared slice; do not
// mutate).
func (s *Sample) Sorted() []float64 {
	s.sort()
	return s.xs
}

// CDF returns (values, cumulative fractions) suitable for plotting a CDF.
func (s *Sample) CDF() (xs, ps []float64) {
	s.sort()
	xs = make([]float64, len(s.xs))
	ps = make([]float64, len(s.xs))
	copy(xs, s.xs)
	for i := range ps {
		ps[i] = float64(i+1) / float64(len(s.xs))
	}
	return xs, ps
}

// FractionAtLeast returns the fraction of observations >= x.
func (s *Sample) FractionAtLeast(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(len(s.xs)-i) / float64(len(s.xs))
}
