package telemetry

import (
	"bytes"
	"fmt"
	"io"

	"stardust/internal/sim"
)

// Divergence is the recorded-vs-replayed comparison report. Zero
// divergence means every window's counter deltas match exactly; byte
// identity is the stronger (and expected, for an unchanged replay)
// condition.
type Divergence struct {
	ByteIdentical bool `json:"byte_identical"`
	ShapeMatch    bool `json:"shape_match"` // same dirs/FAs; false for what-if runs that changed K
	Zero          bool `json:"zero"`        // no counter divergence at all

	RecordedWindows int `json:"recorded_windows"`
	ReplayedWindows int `json:"replayed_windows"`
	ComparedWindows int `json:"compared_windows"`

	DivergentWindows     int      `json:"divergent_windows"`
	FirstDivergentWindow int      `json:"first_divergent_window"` // -1 when none
	FirstDivergentT      sim.Time `json:"first_divergent_t_ps"`
	DirsDiverged         int      `json:"dirs_diverged"` // dirs that differed in any window
	MaxCellDelta         uint64   `json:"max_cell_delta"`
	MaxDropDelta         uint64   `json:"max_drop_delta"`

	RecordedCells uint64 `json:"recorded_cells"` // total delivered (sink) cells
	ReplayedCells uint64 `json:"replayed_cells"`
	RecordedDrops uint64 `json:"recorded_drops"`
	ReplayedDrops uint64 `json:"replayed_drops"`
}

// String renders the one-line verdict.
func (d *Divergence) String() string {
	switch {
	case d.ByteIdentical:
		return fmt.Sprintf("byte-identical (%d windows)", d.RecordedWindows)
	case d.Zero && d.ShapeMatch:
		return fmt.Sprintf("zero divergence over %d windows (streams differ only in header)", d.ComparedWindows)
	case !d.ShapeMatch:
		return fmt.Sprintf("shape change: cells %d -> %d, drops %d -> %d",
			d.RecordedCells, d.ReplayedCells, d.RecordedDrops, d.ReplayedDrops)
	default:
		return fmt.Sprintf("diverged in %d/%d windows (first at window %d, t=%dps), %d dirs, max cell delta %d",
			d.DivergentWindows, d.ComparedWindows, d.FirstDivergentWindow, d.FirstDivergentT, d.DirsDiverged, d.MaxCellDelta)
	}
}

func absDelta(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

type streamTotals struct {
	windows []Window // deep-copied per window
	cells   uint64
	drops   uint64
}

func readAll(stream []byte) (*streamTotals, StreamHeader, error) {
	sr := NewReader(bytes.NewReader(stream))
	hdr, err := sr.Header()
	if err != nil {
		return nil, hdr, err
	}
	t := &streamTotals{}
	for {
		win, _, err := sr.Next()
		if err == io.EOF {
			return t, hdr, nil
		}
		if err != nil {
			return nil, hdr, err
		}
		if win == nil {
			continue
		}
		cp := Window{
			Index:      win.Index,
			T:          win.T,
			DFwdBytes:  append([]uint64(nil), win.DFwdBytes...),
			DFwdCells:  append([]uint64(nil), win.DFwdCells...),
			DDrops:     append([]uint64(nil), win.DDrops...),
			DSinkCells: append([]uint64(nil), win.DSinkCells...),
			DSinkBytes: append([]uint64(nil), win.DSinkBytes...),
		}
		t.windows = append(t.windows, cp)
		for _, c := range win.DSinkCells {
			t.cells += c
		}
		for _, d := range win.DDrops {
			t.drops += d
		}
	}
}

// Compare diffs a recorded stream against a replayed one, window by
// window. Streams with different shapes (a what-if replay that changed
// K) are compared on aggregate totals only.
func Compare(recorded, replayed []byte) (*Divergence, error) {
	d := &Divergence{FirstDivergentWindow: -1, ByteIdentical: bytes.Equal(recorded, replayed)}

	rec, rhdr, err := readAll(recorded)
	if err != nil {
		return nil, fmt.Errorf("telemetry: recorded stream: %w", err)
	}
	rep, phdr, err := readAll(replayed)
	if err != nil {
		return nil, fmt.Errorf("telemetry: replayed stream: %w", err)
	}
	d.RecordedWindows = len(rec.windows)
	d.ReplayedWindows = len(rep.windows)
	d.RecordedCells, d.RecordedDrops = rec.cells, rec.drops
	d.ReplayedCells, d.ReplayedDrops = rep.cells, rep.drops
	d.ShapeMatch = rhdr.Dirs == phdr.Dirs && rhdr.FAs == phdr.FAs
	if !d.ShapeMatch {
		d.Zero = false
		return d, nil
	}

	n := len(rec.windows)
	if len(rep.windows) < n {
		n = len(rep.windows)
	}
	d.ComparedWindows = n
	diverged := make([]bool, rhdr.Dirs)
	for w := 0; w < n; w++ {
		a, b := &rec.windows[w], &rep.windows[w]
		bad := false
		for dir := 0; dir < rhdr.Dirs; dir++ {
			dc := absDelta(a.DFwdCells[dir], b.DFwdCells[dir])
			dd := absDelta(a.DDrops[dir], b.DDrops[dir])
			if dc == 0 && dd == 0 && a.DFwdBytes[dir] == b.DFwdBytes[dir] {
				continue
			}
			bad = true
			diverged[dir] = true
			if dc > d.MaxCellDelta {
				d.MaxCellDelta = dc
			}
			if dd > d.MaxDropDelta {
				d.MaxDropDelta = dd
			}
		}
		for fa := 0; fa < rhdr.FAs; fa++ {
			if a.DSinkCells[fa] != b.DSinkCells[fa] || a.DSinkBytes[fa] != b.DSinkBytes[fa] {
				bad = true
			}
		}
		if bad {
			d.DivergentWindows++
			if d.FirstDivergentWindow < 0 {
				d.FirstDivergentWindow = w
				d.FirstDivergentT = a.T
			}
		}
	}
	for _, v := range diverged {
		if v {
			d.DirsDiverged++
		}
	}
	d.Zero = d.DivergentWindows == 0 && len(rec.windows) == len(rep.windows)
	return d, nil
}
