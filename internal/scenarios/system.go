package scenarios

import (
	"fmt"

	"stardust/internal/engine"
	"stardust/internal/experiments"
)

func init() {
	engine.Register(engine.Scenario{
		Name: "system/arista",
		Desc: "§6.1.2 single-tier system: line rate and latency vs packet size",
		Defaults: engine.Params{
			"fa": "6", "ports": "16", "packing": "false", "dur_us": "300",
			"sizes": "64,128,256,384,512,1024,1518",
		},
		Docs: map[string]string{
			"fa":      "Fabric Adapters in the single-tier system",
			"ports":   "front-panel ports per FA",
			"packing": "enable cell packing on the FA ingress",
			"dur_us":  "measurement window in us",
			"sizes":   "comma list of packet sizes in bytes (one instance each)",
		},
		// One instance per packet size: the sweep points are independent
		// simulations, so they parallelize.
		Variants: func(p engine.Params) []engine.Params {
			var out []engine.Params
			for _, s := range p.Ints("sizes", []int{384}) {
				out = append(out, p.With("size", fmt.Sprint(s)))
			}
			return out
		},
		Run: func(c engine.Context) (engine.Result, error) {
			cfg := experiments.ScaledArista()
			cfg.NumFA = c.Params.Int("fa", cfg.NumFA)
			cfg.PortsPerFA = c.Params.Int("ports", cfg.PortsPerFA)
			cfg.Packing = c.Params.Bool("packing", cfg.Packing)
			cfg.Duration = usTime(c.Params.Int("dur_us", 300))
			cfg.Seed = c.Seed
			size := c.Params.Int("size", 384)
			rows, err := experiments.Arista(cfg, []int{size})
			if err != nil {
				return engine.Result{}, err
			}
			r := rows[0]
			var res engine.Result
			res.Add("line_rate_pct", r.LineRatePct, "%")
			res.Add("lat_min_us", r.MinUs, "us")
			res.Add("lat_avg_us", r.AvgUs, "us")
			res.Add("lat_max_us", r.MaxUs, "us")
			res.Add("jitter_ns", r.JitterNs, "ns")
			res.Text = fmt.Sprintf("%8d B: line-rate=%5.1f%%  lat min/avg/max=%.2f/%.2f/%.2f us  jitter=%.0f ns\n",
				r.PacketBytes, r.LineRatePct, r.MinUs, r.AvgUs, r.MaxUs, r.JitterNs)
			return res, nil
		},
	})
}
