package mgmt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"stardust/internal/engine"
)

// RunRequest is one scenario-run submission.
type RunRequest struct {
	Scenario string        `json:"scenario"`
	Params   engine.Params `json:"params,omitempty"`
	Seed     int64         `json:"seed,omitempty"` // 0 = 1, the engine default
}

// normalized returns the request with the default seed applied, so
// equivalent requests share one cache entry.
func (r RunRequest) normalized() RunRequest {
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// CacheKey content-addresses the request: the SHA-256 of the scenario
// name, the seed, and the sorted parameter assignments. Engine runs are
// deterministic at any worker count, so (scenario, params, seed) fully
// determines the result bytes — the key is the result's address.
func (r RunRequest) CacheKey() string {
	r = r.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", r.Scenario, r.Seed)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\x00", k, r.Params[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobState is the lifecycle of a submitted run.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ProgressEvent is one line of a job's progress stream.
type ProgressEvent struct {
	Seq     int       `json:"seq"`
	Wall    time.Time `json:"wall"`
	Msg     string    `json:"msg"`
	Elapsed float64   `json:"elapsed_s,omitempty"` // instance wall time
}

// Job is one queued/running/finished scenario run. All fields are
// guarded by the owning queue's mutex; handlers read Snapshots.
type Job struct {
	ID        string          `json:"id"`
	Req       RunRequest      `json:"request"`
	Key       string          `json:"cache_key"`
	State     JobState        `json:"state"`
	Cached    bool            `json:"cached"` // served by coalescing onto an earlier submission
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started,omitzero"`
	Finished  time.Time       `json:"finished,omitzero"`
	Error     string          `json:"error,omitempty"`
	Progress  []ProgressEvent `json:"progress,omitempty"`

	output []byte // rendered engine JSON; served byte-identical
	client string // admission-accounting identity of the submitter
	done   chan struct{}
}

// QueueStats is the run queue's counter snapshot. Depth and Running are
// computed at snapshot time, never cached, so /metrics always reports
// the live queue state.
type QueueStats struct {
	Depth         int    `json:"depth"`
	Capacity      int    `json:"capacity"`
	Running       int    `json:"running"`
	ActiveClients int    `json:"active_clients"`
	Submitted     uint64 `json:"submitted_total"`
	CacheHits     uint64 `json:"cache_hits_total"`
	RemoteHits    uint64 `json:"remote_hits_total"`
	Completed     uint64 `json:"completed_total"`
	Failed        uint64 `json:"failed_total"`
	Rejected      uint64 `json:"rejected_total"`
	RejectedFair  uint64 `json:"rejected_fair_total"`
	RemoteResults int    `json:"remote_results"`
	RemoteBytes   int    `json:"remote_bytes"`
}

// clientAcct is one API client's admission state: how many of its jobs
// are pending (queued or running) plus lifetime counters. Clients are
// identified by the X-Stardust-Client header or the remote host.
type clientAcct struct {
	pending   int
	submitted uint64
	rejected  uint64
	lastSeen  time.Time
}

// RunQueue executes scenario runs on a bounded queue over the engine
// worker pool, deduplicating through a content-addressed result cache:
// a submission whose (scenario, params, seed) digest matches a live or
// completed job is coalesced onto that job instead of re-simulating, so
// repeated requests — concurrent or later — serve the identical bytes.
type RunQueue struct {
	engineWorkers int
	workers       int
	maxRetained   int // finished jobs kept (results + progress); older ones evicted
	maxRemote     int // byte cap for peer-fetched results

	mu          sync.Mutex
	queue       chan *Job
	jobs        map[string]*Job
	order       []string        // submission order, for listing
	byKey       map[string]*Job // content-addressed cache (queued, running or done)
	clients     map[string]*clientAcct
	remote      map[string][]byte // peer-fetched results by cache key
	remoteOrder []string          // FIFO eviction order for remote results
	remoteBytes int
	nextID      int
	pending     int // queued + running jobs (admission-controlled total)
	running     int
	ewmaRunSec  float64 // smoothed job duration, for Retry-After estimates
	stats       QueueStats

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewRunQueue starts workers goroutines serving a queue of the given
// depth; each job runs through engine.Run with engineWorkers parallel
// instances. Close it with Shutdown.
func NewRunQueue(depth, workers, engineWorkers int) *RunQueue {
	if depth < 1 {
		depth = 16
	}
	if workers < 1 {
		workers = 1
	}
	// engineWorkers <= 0 passes through: engine.Run reads it as "all
	// CPUs" (GOMAXPROCS), the daemon's documented -run-workers default.
	q := &RunQueue{
		engineWorkers: engineWorkers,
		workers:       workers,
		maxRetained:   256,
		maxRemote:     256 << 20,
		queue:         make(chan *Job, depth),
		jobs:          make(map[string]*Job),
		byKey:         make(map[string]*Job),
		clients:       make(map[string]*clientAcct),
		remote:        make(map[string][]byte),
		ewmaRunSec:    1,
		stop:          make(chan struct{}),
	}
	q.stats.Capacity = depth
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Shutdown stops accepting jobs and waits for workers to drain.
func (q *RunQueue) Shutdown() {
	close(q.stop)
	q.wg.Wait()
}

// ErrQueueFull is the admission-control sentinel: errors.Is(err,
// ErrQueueFull) holds for a globally full queue (every slot taken,
// regardless of owner).
var ErrQueueFull = fmt.Errorf("mgmt: run queue full")

// OverloadError is Submit's backpressure signal. Global rejections mean
// the whole queue is at capacity; fairness rejections mean this client
// is over its fair share while other clients still have room. Either
// way RetryAfter estimates when a slot should free up, sized from the
// smoothed job duration and the backlog ahead of the client.
type OverloadError struct {
	Global     bool
	Client     string
	Share      int // the fair-share ceiling that was hit (fairness rejections)
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Global {
		return fmt.Sprintf("mgmt: run queue full (retry after %s)", e.RetryAfter)
	}
	return fmt.Sprintf("mgmt: client %q over fair share of %d pending runs (retry after %s)", e.Client, e.Share, e.RetryAfter)
}

// Is reports global rejections as ErrQueueFull for errors.Is callers.
func (e *OverloadError) Is(target error) bool { return target == ErrQueueFull && e.Global }

// acctLocked returns (creating if needed) the accounting slot for a
// client, sweeping long-idle zero-pending entries when the table grows
// past a bound so an open-world client population cannot leak memory.
func (q *RunQueue) acctLocked(client string) *clientAcct {
	a, ok := q.clients[client]
	if !ok {
		if len(q.clients) >= 4096 {
			for id, old := range q.clients {
				if old.pending == 0 && time.Since(old.lastSeen) > time.Minute {
					delete(q.clients, id)
				}
			}
		}
		a = &clientAcct{}
		q.clients[client] = a
	}
	a.lastSeen = time.Now()
	return a
}

// activeClientsLocked counts clients with work in flight.
func (q *RunQueue) activeClientsLocked() int {
	n := 0
	for _, a := range q.clients {
		if a.pending > 0 {
			n++
		}
	}
	return n
}

// retryAfterLocked estimates how long until a queue slot frees: the
// backlog ahead, divided across workers, times the smoothed per-job
// duration, clamped to [1s, 30s].
func (q *RunQueue) retryAfterLocked() time.Duration {
	batches := (q.pending + q.workers - 1) / q.workers
	if batches < 1 {
		batches = 1
	}
	d := time.Duration(float64(batches) * q.ewmaRunSec * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Submit validates and enqueues a run request on behalf of a client.
// When the request's cache key matches a queued, running or completed
// job — or a peer-fetched result — that job is returned with
// cached=true and nothing is enqueued: the caller observes the
// identical result bytes. Admission is fair-share per client: the queue
// holds at most Capacity pending (queued+running) jobs in total, and
// with k clients active no single client may hold more than
// ceil(Capacity/k) of them, so a greedy client saturating the queue
// cannot starve others — as slots drain, its resubmissions bounce off
// the share ceiling while newcomers are admitted. Rejections return
// *OverloadError carrying a Retry-After estimate.
func (q *RunQueue) Submit(req RunRequest, client string) (Job, bool, error) {
	req = req.normalized()
	if _, err := engine.Lookup(req.Scenario); err != nil {
		return Job{}, false, err
	}
	key := req.CacheKey()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats.Submitted++
	acct := q.acctLocked(client)
	acct.submitted++
	if j, ok := q.byKey[key]; ok && j.State != JobFailed {
		q.stats.CacheHits++
		snap := q.snapshotLocked(j)
		snap.Cached = true
		return snap, true, nil
	}
	if out, ok := q.remote[key]; ok {
		// A peer already computed this key: serve its bytes as a local
		// completed job so follow-up status/result reads work as usual.
		q.stats.CacheHits++
		q.stats.RemoteHits++
		j := q.installLocked(req, key)
		j.State = JobDone
		j.Cached = true
		j.Finished = j.Submitted
		j.output = out
		close(j.done)
		snap := q.snapshotLocked(j)
		return snap, true, nil
	}
	if q.pending >= cap(q.queue) {
		q.stats.Rejected++
		acct.rejected++
		return Job{}, false, &OverloadError{Global: true, Client: client, RetryAfter: q.retryAfterLocked()}
	}
	active := q.activeClientsLocked()
	if acct.pending == 0 {
		active++
	}
	share := (cap(q.queue) + active - 1) / active
	if share < 1 {
		share = 1
	}
	if acct.pending >= share {
		q.stats.Rejected++
		q.stats.RejectedFair++
		acct.rejected++
		return Job{}, false, &OverloadError{Client: client, Share: share, RetryAfter: q.retryAfterLocked()}
	}
	j := q.installLocked(req, key)
	j.client = client
	acct.pending++
	q.pending++
	q.queue <- j // never blocks: pending < cap(queue) implies a free slot
	return q.snapshotLocked(j), false, nil
}

// installLocked registers a fresh job under the next run id.
func (q *RunQueue) installLocked(req RunRequest, key string) *Job {
	q.nextID++
	j := &Job{
		ID:        fmt.Sprintf("run-%06d", q.nextID),
		Req:       req,
		Key:       key,
		State:     JobQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.byKey[key] = j
	q.evictLocked()
	return j
}

// evictLocked bounds total retention: when more than maxRetained jobs
// are tracked, the oldest *finished* jobs (and their cached result
// bytes) are dropped. Queued and running jobs are never evicted, so the
// map can only exceed the cap by the bounded queue depth plus the
// worker count.
func (q *RunQueue) evictLocked() {
	excess := len(q.order) - q.maxRetained
	if excess <= 0 {
		return
	}
	kept := q.order[:0]
	for _, id := range q.order {
		j := q.jobs[id]
		if excess > 0 && (j.State == JobDone || j.State == JobFailed) {
			delete(q.jobs, id)
			if q.byKey[j.Key] == j {
				delete(q.byKey, j.Key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

func (q *RunQueue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stop:
			return
		case j := <-q.queue:
			q.run(j)
		}
	}
}

func (q *RunQueue) run(j *Job) {
	q.mu.Lock()
	j.State = JobRunning
	j.Started = time.Now()
	q.running++
	q.addProgressLocked(j, fmt.Sprintf("running %s (%s) seed=%d", j.Req.Scenario, j.Req.Params, j.Req.Seed), 0)
	q.mu.Unlock()

	var out bytes.Buffer
	_, err := engine.Run(engine.Options{
		Workers: q.engineWorkers,
		Seed:    j.Req.Seed,
		Format:  "json",
		Out:     &out,
		Progress: func(r engine.RunResult) {
			q.mu.Lock()
			msg := fmt.Sprintf("instance %s (%s) finished", r.Name, r.Params)
			if r.Err != nil {
				msg = fmt.Sprintf("instance %s (%s) failed: %v", r.Name, r.Params, r.Err)
			}
			q.addProgressLocked(j, msg, r.Elapsed.Seconds())
			q.mu.Unlock()
		},
	}, []engine.Job{{Scenario: j.Req.Scenario, Params: j.Req.Params, Seed: j.Req.Seed}})

	q.mu.Lock()
	j.Finished = time.Now()
	q.running--
	q.pending--
	if a, ok := q.clients[j.client]; ok && a.pending > 0 {
		a.pending--
	}
	// Smooth the observed job duration for Retry-After estimates.
	q.ewmaRunSec = 0.8*q.ewmaRunSec + 0.2*j.Finished.Sub(j.Started).Seconds()
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		q.stats.Failed++
		// A failed job must not pin the cache slot: let a retry re-run.
		if q.byKey[j.Key] == j {
			delete(q.byKey, j.Key)
		}
		q.addProgressLocked(j, "failed: "+j.Error, 0)
	} else {
		j.State = JobDone
		j.output = out.Bytes()
		q.stats.Completed++
		q.addProgressLocked(j, fmt.Sprintf("done (%d result bytes)", len(j.output)), 0)
	}
	q.mu.Unlock()
	close(j.done)
}

func (q *RunQueue) addProgressLocked(j *Job, msg string, elapsed float64) {
	j.Progress = append(j.Progress, ProgressEvent{
		Seq: len(j.Progress) + 1, Wall: time.Now(), Msg: msg, Elapsed: elapsed,
	})
}

// snapshotLocked copies a job for handler consumption.
func (q *RunQueue) snapshotLocked(j *Job) Job {
	snap := *j
	snap.Progress = append([]ProgressEvent(nil), j.Progress...)
	snap.output = nil
	snap.done = nil
	return snap
}

// Get returns a snapshot of job id.
func (q *RunQueue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return q.snapshotLocked(j), true
}

// Result returns the stored result bytes of a completed job.
func (q *RunQueue) Result(id string) ([]byte, JobState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.output, j.State, true
}

// Wait blocks until job id leaves the queue/running states or the
// timeout elapses; it returns the final snapshot.
func (q *RunQueue) Wait(id string, timeout time.Duration) (Job, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	select {
	case <-j.done:
	case <-time.After(timeout):
	}
	return q.Get(id)
}

// List returns snapshots of the newest max jobs (all when max <= 0),
// newest first.
func (q *RunQueue) List(max int) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.order)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Job, 0, n)
	for i := len(q.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, q.snapshotLocked(q.jobs[q.order[i]]))
	}
	return out
}

// Stats returns the queue counters. Depth, Running, ActiveClients and
// the remote-store gauges are computed here, at snapshot time, so the
// metrics endpoint never reports a stale value.
func (q *RunQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = q.pending - q.running
	s.Running = q.running
	s.ActiveClients = q.activeClientsLocked()
	s.RemoteResults = len(q.remote)
	s.RemoteBytes = q.remoteBytes
	return s
}

// Cached returns the live or completed job for a cache key, if any.
// Failed jobs do not count: a retry must re-run.
func (q *RunQueue) Cached(key string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byKey[key]
	if !ok || j.State == JobFailed {
		return Job{}, false
	}
	snap := q.snapshotLocked(j)
	snap.Cached = true
	return snap, true
}

// ResultByKey returns the result bytes stored under a cache key — a
// locally completed run, or a result fetched from a peer. This is the
// cluster's pure byte-serving cache-hit path: no JSON re-encoding.
func (q *RunQueue) ResultByKey(key string) ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.byKey[key]; ok && j.State == JobDone {
		return j.output, true
	}
	if out, ok := q.remote[key]; ok {
		return out, true
	}
	return nil, false
}

// PutRemote stores a peer-fetched result under its cache key so later
// reads (and submissions) of that key are served locally. The store is
// byte-capped with FIFO eviction; locally computed results take
// precedence on read.
func (q *RunQueue) PutRemote(key string, out []byte) {
	if len(out) == 0 || len(out) > q.maxRemote {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.remote[key]; ok {
		return
	}
	q.remote[key] = out
	q.remoteOrder = append(q.remoteOrder, key)
	q.remoteBytes += len(out)
	for q.remoteBytes > q.maxRemote && len(q.remoteOrder) > 0 {
		old := q.remoteOrder[0]
		q.remoteOrder = q.remoteOrder[1:]
		q.remoteBytes -= len(q.remote[old])
		delete(q.remote, old)
	}
}
