// Package voq implements the Fabric Adapter's ingress virtual output
// queues (§3.3): one queue per (destination Fabric Adapter, destination
// port, traffic class), backed by a shared buffer with tail-drop on
// long-term over-subscription, and credit-driven dequeue with surplus
// accounting (§4.1).
package voq

import (
	"fmt"

	"stardust/internal/cell"
)

// Key identifies one VOQ: destination Fabric Adapter, destination port on
// that adapter, and traffic class. The number of VOQs is determined by the
// total number of downlink ports on Fabric Adapters and the number of
// traffic classes, not by routable addresses (§4.1).
type Key struct {
	DstFA   uint16
	DstPort uint8
	TC      uint8
}

func (k Key) String() string { return fmt.Sprintf("FA%d:p%d:tc%d", k.DstFA, k.DstPort, k.TC) }

// Queue is a single VOQ. Empty VOQs consume no buffering resources (§3.3);
// the Manager creates them lazily and prunes them when drained.
type Queue struct {
	Key     Key
	packets []cell.PacketRef
	head    int
	bytes   int64
	// credit is the byte balance granted by the egress scheduler and not
	// yet consumed; it may go negative when a whole packet overshoots the
	// grant, which is the paper's "surplus data stored for later
	// accounting" (§3.3).
	credit int64
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.packets) - q.head }

// Bytes returns the queued bytes.
func (q *Queue) Bytes() int64 { return q.bytes }

// CreditBalance returns the unconsumed credit (negative = surplus already
// sent).
func (q *Queue) CreditBalance() int64 { return q.credit }

func (q *Queue) push(p cell.PacketRef) {
	q.packets = append(q.packets, p)
	q.bytes += int64(p.Size)
}

func (q *Queue) pop() (cell.PacketRef, bool) {
	if q.Len() == 0 {
		return cell.PacketRef{}, false
	}
	p := q.packets[q.head]
	q.head++
	q.bytes -= int64(p.Size)
	// Compact occasionally so memory tracks occupancy.
	if q.head > 64 && q.head*2 >= len(q.packets) {
		q.packets = append(q.packets[:0], q.packets[q.head:]...)
		q.head = 0
	}
	return p, true
}

// Manager owns all VOQs of one Fabric Adapter and the shared ingress
// buffer.
type Manager struct {
	capacity int64 // shared ingress buffer in bytes (megabytes to gigabytes, §3.3)
	used     int64
	queues   map[Key]*Queue

	// OnActivate, when non-nil, fires when a VOQ transitions from empty to
	// non-empty — the moment the FA must request credits from the
	// destination's egress scheduler (§3.3).
	OnActivate func(Key, *Queue)

	// Stats
	Enqueued   uint64
	Dropped    uint64 // tail drops: long-term over-subscription (§3.1)
	DroppedB   uint64
	DequeuedB  uint64
	MaxUsedB   int64
	ActivePeak int
}

// NewManager creates a manager with the given shared buffer capacity in
// bytes.
func NewManager(capacityBytes int64) *Manager {
	if capacityBytes <= 0 {
		panic("voq: capacity must be positive")
	}
	return &Manager{capacity: capacityBytes, queues: make(map[Key]*Queue)}
}

// Used returns the occupied buffer bytes.
func (m *Manager) Used() int64 { return m.used }

// Capacity returns the shared buffer size in bytes.
func (m *Manager) Capacity() int64 { return m.capacity }

// Active returns the number of non-empty VOQs.
func (m *Manager) Active() int { return len(m.queues) }

// Queue returns the VOQ for k, or nil if it is empty/absent.
func (m *Manager) Queue(k Key) *Queue { return m.queues[k] }

// Enqueue stores a packet arriving from a host. It returns false when the
// shared buffer is exhausted and the packet is dropped, exactly as a ToR
// would drop under persistent over-subscription (§3.1).
func (m *Manager) Enqueue(k Key, p cell.PacketRef) bool {
	if m.used+int64(p.Size) > m.capacity {
		m.Dropped++
		m.DroppedB += uint64(p.Size)
		return false
	}
	q := m.queues[k]
	fresh := false
	if q == nil {
		q = &Queue{Key: k}
		m.queues[k] = q
		fresh = true
	} else if q.Len() == 0 {
		fresh = true
	}
	q.push(p)
	m.used += int64(p.Size)
	m.Enqueued++
	if m.used > m.MaxUsedB {
		m.MaxUsedB = m.used
	}
	if len(m.queues) > m.ActivePeak {
		m.ActivePeak = len(m.queues)
	}
	if fresh && m.OnActivate != nil {
		m.OnActivate(k, q)
	}
	return true
}

// Grant applies a credit of creditBytes to VOQ k and dequeues the packets
// it entitles: whole packets are released while the queue's credit balance
// is positive; the final packet may overshoot, leaving a negative balance
// (surplus) that future credits repay (§3.3, §4.1). Returns the released
// batch (possibly empty when the VOQ is empty or still repaying surplus).
func (m *Manager) Grant(k Key, creditBytes int64) []cell.PacketRef {
	q := m.queues[k]
	if q == nil {
		return nil
	}
	q.credit += creditBytes
	var batch []cell.PacketRef
	for q.credit > 0 {
		p, ok := q.pop()
		if !ok {
			break
		}
		q.credit -= int64(p.Size)
		m.used -= int64(p.Size)
		m.DequeuedB += uint64(p.Size)
		batch = append(batch, p)
	}
	if q.Len() == 0 {
		// Unused positive credit on an empty queue is forfeited; empty
		// VOQs must not consume resources.
		delete(m.queues, k)
	}
	return batch
}

// Backlog returns the queued bytes for k (0 if empty).
func (m *Manager) Backlog(k Key) int64 {
	if q := m.queues[k]; q != nil {
		return q.bytes
	}
	return 0
}

// Keys returns the keys of all non-empty VOQs (order unspecified).
func (m *Manager) Keys() []Key {
	out := make([]Key, 0, len(m.queues))
	for k := range m.queues {
		out = append(out, k)
	}
	return out
}
