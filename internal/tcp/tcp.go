// Package tcp implements the transport endpoints compared in §6.3
// (Fig 10): TCP NewReno, DCTCP (ECN-fraction congestion control), MPTCP
// with LIA coupling, and DCQCN rate-based control, all running over
// package netsim.
package tcp

import (
	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// Config holds per-flow transport parameters.
type Config struct {
	MSS        int      // segment size (paper: 9000B for the TCP variants)
	InitialWnd int      // initial window in segments
	MaxCwnd    int      // receive-window cap in bytes (htsim-style maxcwnd)
	RTOMin     sim.Time // minimum retransmission timeout
	DCTCP      bool     // enable ECN-fraction window scaling
	DCTCPGain  float64  // g (1/16 by default)
	AckBytes   int      // ACK packet size on the wire
}

// DefaultConfig returns the htsim-style defaults used in §6.3.
func DefaultConfig() Config {
	return Config{
		MSS:        9000,
		InitialWnd: 2,
		MaxCwnd:    1 << 20, // ~116 segments of 9000B
		RTOMin:     1 * sim.Millisecond,
		DCTCPGain:  1.0 / 16,
		AckBytes:   64,
	}
}

// Source is a TCP NewReno sender (optionally DCTCP). One Source drives one
// flow over a fixed route.
type Source struct {
	Sim  *sim.Simulator
	Cfg  Config
	Name string

	FlowBytes int64 // total bytes to send; 0 = unbounded (long-running)

	// Quota-fed mode (MPTCP subflows): the sender pulls byte permissions
	// from a shared pool instead of owning a fixed FlowBytes.
	quota *Quota
	end   int64 // current assigned end of this sender's byte stream

	fwd []netsim.Handler // route to the sink (sink included)

	cwnd      float64 // bytes
	ssthresh  float64
	highest   int64 // next byte to send
	cumAck    int64
	recover   int64
	dupacks   int
	inFastRec bool

	srtt, rttvar sim.Time
	rto          sim.Time
	timedSeq     int64
	timedAt      sim.Time
	rtoTimer     *sim.Timer
	backoff      int

	// DCTCP state.
	alpha       float64
	bytesAcked  int64
	bytesMarked int64
	obsWindowHi int64
	lastCutHi   int64

	// MPTCP hook: called on each in-CA ACK to let the coupled controller
	// override the additive increase (nil = standalone NewReno increase).
	couple func(s *Source, ackedBytes int64)

	// Completion.
	Done       bool
	DoneAt     sim.Time
	OnComplete func(*Source)
	// OnAcked observes every cumulative-ack advance (bytes newly acked).
	OnAcked func(int64)

	// Stats
	Retransmits uint64
	Timeouts    uint64
	DeliveredB  int64 // cumulative acked bytes
	startAt     sim.Time
	started     bool

	// onTimeoutFn caches the onTimeout method value so re-arming the RTO
	// timer on every ACK does not allocate a closure.
	onTimeoutFn func()
}

// NewSource creates a sender; route is the forward path and must end at
// the flow's Sink.
func NewSource(s *sim.Simulator, cfg Config, name string, flowBytes int64, route []netsim.Handler) *Source {
	src := &Source{
		Sim:       s,
		Cfg:       cfg,
		Name:      name,
		FlowBytes: flowBytes,
		fwd:       route,
		cwnd:      float64(cfg.InitialWnd * cfg.MSS),
		ssthresh:  1 << 30,
		rto:       cfg.RTOMin,
		timedSeq:  -1,
		alpha:     0,
	}
	if flowBytes > 0 {
		src.end = flowBytes
	} else {
		src.end = 1 << 62
	}
	src.rtoTimer = sim.NewTimer(s)
	src.onTimeoutFn = src.onTimeout
	return src
}

// SetRoute installs the forward route (must end at the flow's Sink).
func (s *Source) SetRoute(route []netsim.Handler) { s.fwd = route }

// Start begins transmission at the current simulation time.
func (s *Source) Start() {
	s.startAt = s.Sim.Now()
	s.started = true
	s.sendMore()
}

// StartAt schedules Start at time t.
func (s *Source) StartAt(t sim.Time) { s.Sim.At(t, s.Start) }

// StartTime returns when the flow started.
func (s *Source) StartTime() sim.Time { return s.startAt }

// FCT returns the flow completion time (valid once Done).
func (s *Source) FCT() sim.Time { return s.DoneAt - s.startAt }

// Cwnd returns the congestion window in bytes.
func (s *Source) Cwnd() float64 { return s.cwnd }

func (s *Source) flight() int64 { return s.highest - s.cumAck }

func (s *Source) sendMore() {
	if s.Done {
		return
	}
	for s.flight()+int64(s.Cfg.MSS) <= int64(s.cwnd) {
		if s.highest >= s.end {
			if s.quota == nil {
				break
			}
			grab := s.quota.Take(int64(s.Cfg.MSS))
			if grab == 0 {
				break
			}
			s.end += grab
		}
		size := int64(s.Cfg.MSS)
		if s.highest+size > s.end {
			size = s.end - s.highest
		}
		s.transmit(s.highest, int(size), false)
		s.highest += size
	}
	s.armRTO()
}

func (s *Source) transmit(seq int64, size int, rtx bool) {
	p := netsim.NewPacket()
	p.Size = size
	p.Seq = seq
	p.Flow = s
	p.SetRoute(s.fwd)
	if !rtx && s.timedSeq < 0 {
		s.timedSeq = seq
		s.timedAt = s.Sim.Now()
	}
	if rtx {
		s.Retransmits++
	}
	p.SendOn()
}

func (s *Source) armRTO() {
	if s.flight() > 0 {
		s.rtoTimer.Arm(s.rto<<uint(s.backoff), s.onTimeoutFn)
	} else {
		s.rtoTimer.Cancel()
	}
}

func (s *Source) onTimeout() {
	if s.Done || s.flight() == 0 {
		return
	}
	s.Timeouts++
	s.ssthresh = max64f(float64(s.flight())/2, float64(2*s.Cfg.MSS))
	s.cwnd = float64(s.Cfg.MSS)
	s.inFastRec = false
	s.dupacks = 0
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	s.highest = s.cumAck // go-back-N from the hole
	s.timedSeq = -1
	s.sendMore()
}

// OnAck processes a cumulative ACK (called by the Sink's ACK packet
// arriving back at the source).
func (s *Source) OnAck(ack int64, echo bool) {
	if s.Done {
		return
	}
	// RTT sampling (Karn's algorithm: only segments sent once).
	if s.timedSeq >= 0 && ack > s.timedSeq {
		sample := s.Sim.Now() - s.timedAt
		if s.srtt == 0 {
			s.srtt = sample
			s.rttvar = sample / 2
		} else {
			diff := s.srtt - sample
			if diff < 0 {
				diff = -diff
			}
			s.rttvar = (3*s.rttvar + diff) / 4
			s.srtt = (7*s.srtt + sample) / 8
		}
		s.rto = s.srtt + 4*s.rttvar
		if s.rto < s.Cfg.RTOMin {
			s.rto = s.Cfg.RTOMin
		}
		s.timedSeq = -1
		s.backoff = 0
	}

	// DCTCP accounting (per-ACK echo of CE marks).
	if s.Cfg.DCTCP {
		adv := ack - s.cumAck
		if adv < 0 {
			adv = 0
		}
		s.bytesAcked += adv
		if echo {
			s.bytesMarked += adv
			s.maybeCutDCTCP()
		}
		if ack >= s.obsWindowHi {
			g := s.Cfg.DCTCPGain
			frac := 0.0
			if s.bytesAcked > 0 {
				frac = float64(s.bytesMarked) / float64(s.bytesAcked)
			}
			s.alpha = (1-g)*s.alpha + g*frac
			s.bytesAcked, s.bytesMarked = 0, 0
			s.obsWindowHi = s.highest
		}
	}

	switch {
	case ack > s.cumAck:
		acked := ack - s.cumAck
		s.cumAck = ack
		s.DeliveredB = ack
		s.dupacks = 0
		if s.inFastRec {
			if ack >= s.recover {
				s.inFastRec = false
				s.cwnd = s.ssthresh
			} else {
				// Partial ACK: retransmit the next hole, deflate.
				s.transmit(s.cumAck, s.Cfg.MSS, true)
				s.cwnd = max64f(s.cwnd-float64(acked)+float64(s.Cfg.MSS), float64(s.Cfg.MSS))
			}
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
		} else if s.couple != nil {
			s.couple(s, acked)
		} else {
			s.cwnd += float64(acked) * float64(s.Cfg.MSS) / s.cwnd // CA
		}
		if s.OnAcked != nil {
			s.OnAcked(acked)
		}
		if s.limited() && s.cumAck >= s.end {
			s.Done = true
			s.DoneAt = s.Sim.Now()
			s.rtoTimer.Cancel()
			if s.OnComplete != nil {
				s.OnComplete(s)
			}
			return
		}
	case ack == s.cumAck && s.flight() > 0:
		s.dupacks++
		if s.inFastRec {
			s.cwnd += float64(s.Cfg.MSS) // window inflation
		} else if s.dupacks == 3 {
			s.inFastRec = true
			s.recover = s.highest
			s.ssthresh = max64f(float64(s.flight())/2, float64(2*s.Cfg.MSS))
			s.cwnd = s.ssthresh + 3*float64(s.Cfg.MSS)
			s.transmit(s.cumAck, s.Cfg.MSS, true)
		}
	}
	if s.Cfg.MaxCwnd > 0 && s.cwnd > float64(s.Cfg.MaxCwnd) {
		s.cwnd = float64(s.Cfg.MaxCwnd)
	}
	s.sendMore()
}

// maybeCutDCTCP applies the alpha-scaled reduction at most once per
// window of data.
func (s *Source) maybeCutDCTCP() {
	if s.cumAck < s.lastCutHi {
		return
	}
	s.lastCutHi = s.highest
	s.cwnd = max64f(s.cwnd*(1-s.alpha/2), float64(s.Cfg.MSS))
	s.ssthresh = s.cwnd
}

// limited reports whether this sender's byte stream has a known end.
func (s *Source) limited() bool {
	if s.quota != nil {
		return s.quota.Remaining() == 0
	}
	return s.FlowBytes > 0
}

// Quota is a shared pool of bytes pulled by MPTCP subflows on demand.
type Quota struct {
	total    int64
	assigned int64
}

// NewQuota creates a pool of total bytes.
func NewQuota(total int64) *Quota { return &Quota{total: total} }

// Take grabs up to n bytes from the pool.
func (q *Quota) Take(n int64) int64 {
	rem := q.total - q.assigned
	if rem <= 0 {
		return 0
	}
	if n > rem {
		n = rem
	}
	q.assigned += n
	return n
}

// Remaining returns the unassigned bytes.
func (q *Quota) Remaining() int64 { return q.total - q.assigned }

func max64f(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Sink is the receiving endpoint: it reassembles the byte stream
// cumulatively and returns one ACK per data packet along the reverse
// route, echoing CE marks per-packet (DCTCP-style).
type Sink struct {
	Sim *sim.Simulator
	Cfg Config
	Src *Source
	rev []netsim.Handler // reverse route back to the source (ends at ackReceiver)

	cumAck int64
	ooo    map[int64]int // out-of-order segments: seq -> size

	ReceivedB int64
}

// NewSink builds the receiving side; rev is the reverse route and must end
// at a handler that calls Src.OnAck (use AckEndpoint).
func NewSink(s *sim.Simulator, cfg Config, src *Source, rev []netsim.Handler) *Sink {
	return &Sink{Sim: s, Cfg: cfg, Src: src, rev: rev, ooo: make(map[int64]int)}
}

// Receive implements netsim.Handler for data packets.
func (k *Sink) Receive(p *Packet) { k.receive(p) }

// Packet aliases netsim.Packet for the Handler implementations here.
type Packet = netsim.Packet

func (k *Sink) receive(p *Packet) {
	k.ReceivedB += int64(p.Size)
	if p.Seq == k.cumAck {
		k.cumAck += int64(p.Size)
		for {
			sz, ok := k.ooo[k.cumAck]
			if !ok {
				break
			}
			delete(k.ooo, k.cumAck)
			k.cumAck += int64(sz)
		}
	} else if p.Seq > k.cumAck {
		k.ooo[p.Seq] = p.Size
	}
	echo := p.CE
	p.Release()
	ack := netsim.NewPacket()
	ack.Size = k.Cfg.AckBytes
	ack.Seq = k.cumAck
	ack.Ack = true
	ack.Echo = echo
	ack.Flow = k.Src
	ack.SetRoute(k.rev)
	ack.SendOn()
}

// AckEndpoint terminates the reverse route, delivering ACKs to sources.
type AckEndpoint struct{}

// Receive implements netsim.Handler.
func (AckEndpoint) Receive(p *Packet) {
	src, ok := p.Flow.(*Source)
	seq, echo := p.Seq, p.Echo
	p.Release()
	if ok {
		src.OnAck(seq, echo)
	}
}

// Ack is a shared AckEndpoint.
var Ack AckEndpoint
