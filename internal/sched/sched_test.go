package sched

import (
	"math"
	"testing"

	"stardust/internal/sim"
)

func TestCreditInterval(t *testing.T) {
	// 50Gbps port, 4KB credit, 2% speedup: 4096*8/(50e9*1.02) = 642.5ns.
	s := New(DefaultConfig(50e9))
	got := s.CreditInterval()
	secs := float64(4096*8) / (50e9 * 1.02)
	want := sim.Time(secs * float64(sim.Second))
	if math.Abs(float64(got-want)) > 2 {
		t.Fatalf("interval = %v, want %v", got, want)
	}
}

func TestMinCreditBytes(t *testing.T) {
	// §4.1 worked example: 10 Tbps FA, 1 GHz, credit every 2 clocks -> 2000B.
	if got := MinCreditBytes(10e12, 1e9, 2); got != 2500 {
		// 10e12/(1e9/2)/8 = 2500... the paper's arithmetic says 2000B by
		// treating 10T/(0.5G)=20000 bits = 2500B; the printed value 2000B
		// presumably rounds 16Kb. Assert our self-consistent math.
		t.Fatalf("MinCreditBytes = %d, want 2500 (self-consistent)", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	s := New(DefaultConfig(50e9))
	for src := uint16(0); src < 4; src++ {
		if err := s.Request(Requester{SrcFA: src}, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[uint16]int{}
	for i := 0; i < 400; i++ {
		c, ok := s.NextCredit()
		if !ok {
			t.Fatal("starved with demand present")
		}
		counts[c.To.SrcFA]++
	}
	for src, n := range counts {
		if n != 100 {
			t.Fatalf("src %d got %d credits, want 100 (counts=%v)", src, n, counts)
		}
	}
}

func TestBacklogPersistsUntilWithdraw(t *testing.T) {
	s := New(DefaultConfig(50e9))
	s.Request(Requester{SrcFA: 1}, 10000)
	// The estimate exhausts after ~3 credits, but the requester stays
	// enrolled until it explicitly reports empty — evicting on the
	// estimate would starve the VOQ during the control round trip.
	for i := 0; i < 10; i++ {
		if _, ok := s.NextCredit(); !ok {
			t.Fatalf("credit %d withheld before withdraw", i)
		}
	}
	if s.Demand() != 1 {
		t.Fatalf("demand = %d, want 1", s.Demand())
	}
	s.Request(Requester{SrcFA: 1}, 0) // the VOQ drained: withdraw
	if _, ok := s.NextCredit(); ok {
		t.Fatal("credit issued after withdraw")
	}
	if s.Demand() != 0 {
		t.Fatal("demand should be zero")
	}
}

func TestWithdraw(t *testing.T) {
	s := New(DefaultConfig(50e9))
	s.Request(Requester{SrcFA: 1}, 1<<20)
	s.Request(Requester{SrcFA: 2}, 1<<20)
	s.Request(Requester{SrcFA: 1}, 0) // withdraw
	for i := 0; i < 10; i++ {
		c, ok := s.NextCredit()
		if !ok {
			t.Fatal("starved")
		}
		if c.To.SrcFA != 2 {
			t.Fatalf("credit to withdrawn source %d", c.To.SrcFA)
		}
	}
}

func TestUnknownClassRejected(t *testing.T) {
	s := New(DefaultConfig(50e9))
	if err := s.Request(Requester{SrcFA: 1, TC: 5}, 100); err == nil {
		t.Fatal("unknown TC must be rejected")
	}
}

func TestStrictPriority(t *testing.T) {
	cfg := DefaultConfig(50e9)
	cfg.Classes = map[uint8]ClassConfig{
		0: {Priority: 0, Weight: 1}, // low
		1: {Priority: 1, Weight: 1}, // high
	}
	s := New(cfg)
	s.Request(Requester{SrcFA: 1, TC: 0}, 1<<20)
	s.Request(Requester{SrcFA: 2, TC: 1}, 1<<20)
	for i := 0; i < 20; i++ {
		c, ok := s.NextCredit()
		if !ok || c.To.TC != 1 {
			t.Fatalf("strict priority violated at %d: %+v", i, c)
		}
	}
	// Withdraw the high class; low must now be served.
	s.Request(Requester{SrcFA: 2, TC: 1}, 0)
	c, ok := s.NextCredit()
	if !ok || c.To.TC != 0 {
		t.Fatalf("low class starved after high withdrew: %+v", c)
	}
}

func TestWeightedRoundRobin(t *testing.T) {
	cfg := DefaultConfig(50e9)
	cfg.Classes = map[uint8]ClassConfig{
		0: {Priority: 0, Weight: 3},
		1: {Priority: 0, Weight: 1},
	}
	s := New(cfg)
	s.Request(Requester{SrcFA: 1, TC: 0}, 1<<30)
	s.Request(Requester{SrcFA: 2, TC: 1}, 1<<30)
	counts := map[uint8]int{}
	for i := 0; i < 400; i++ {
		c, ok := s.NextCredit()
		if !ok {
			t.Fatal("starved")
		}
		counts[c.To.TC]++
	}
	if counts[0] != 300 || counts[1] != 100 {
		t.Fatalf("WRR split = %v, want 3:1", counts)
	}
}

func TestFCIThrottleAndRecovery(t *testing.T) {
	s := New(DefaultConfig(50e9))
	base := s.CreditInterval()
	// Many marked cells within one interval count as a single cut,
	// applied at the next credit tick.
	for i := 0; i < 50; i++ {
		s.OnFCI()
	}
	s.NextCredit()
	afterOne := s.Throttle()
	if afterOne >= 1 {
		t.Fatal("FCI cut not applied at the tick")
	}
	if want := 1 - DefaultConfig(50e9).FCIBeta; afterOne < want-1e-9 {
		t.Fatalf("burst of marks must cut once per tick: throttle %v, want %v", afterOne, want)
	}
	// Sustained marks keep cutting tick after tick.
	for i := 0; i < 30; i++ {
		s.OnFCI()
		s.NextCredit()
	}
	throttled := s.CreditInterval()
	if throttled <= base {
		t.Fatalf("FCI did not slow credits: %v <= %v", throttled, base)
	}
	if s.Throttle() < 0.1 {
		t.Fatalf("throttle %v below floor", s.Throttle())
	}
	// Recovery: ticks without FCI restore the rate.
	s.Request(Requester{SrcFA: 1}, 1<<30)
	for i := 0; i < 200; i++ {
		s.NextCredit()
	}
	if got := s.CreditInterval(); got != base {
		t.Fatalf("throttle did not recover: %v != %v", got, base)
	}
}

func TestPauseResume(t *testing.T) {
	s := New(DefaultConfig(50e9))
	s.Request(Requester{SrcFA: 1}, 1<<20)
	s.Pause()
	if _, ok := s.NextCredit(); ok {
		t.Fatal("credit issued while paused")
	}
	if !s.Paused() {
		t.Fatal("Paused() wrong")
	}
	s.Resume()
	if _, ok := s.NextCredit(); !ok {
		t.Fatal("no credit after resume")
	}
}

func TestStarvationCounter(t *testing.T) {
	s := New(DefaultConfig(50e9))
	if _, ok := s.NextCredit(); ok {
		t.Fatal("credit from empty scheduler")
	}
	if s.Starved != 1 {
		t.Fatalf("Starved = %d", s.Starved)
	}
}

// The aggregate credit rate toward a port must match the port rate
// (1+speedup) regardless of how many sources share it — §5.4's incast
// guarantee that sources split the egress bandwidth evenly.
func TestIncastCreditSplit(t *testing.T) {
	s := New(DefaultConfig(50e9))
	const sources = 128
	for src := uint16(0); src < sources; src++ {
		s.Request(Requester{SrcFA: src}, 1<<30)
	}
	counts := map[uint16]int{}
	const grants = sources * 10
	for i := 0; i < grants; i++ {
		c, ok := s.NextCredit()
		if !ok {
			t.Fatal("starved")
		}
		counts[c.To.SrcFA]++
	}
	for src, n := range counts {
		if n != 10 {
			t.Fatalf("src %d received %d credits, want 10", src, n)
		}
	}
}
